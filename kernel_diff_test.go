package tss

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/exp"
)

// TestKernelMatchesScalarLargeN runs the dominance kernel against the
// scalar reference on paper-shaped N=5K datasets. The byte-driven fuzz
// harness stays under a few dozen points, so it can never reach the
// kernel's large-window machinery — multi-block zone maps and, above
// all, window compaction (which needs ≥ 512 members with half evicted);
// this test covers exactly that regime. It caught a compaction aliasing
// bug that silently dropped the oldest window members.
func TestKernelMatchesScalarLargeN(t *testing.T) {
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		cfg := exp.StaticDefaults(0.005) // N = 5K
		cfg.Dist = dist
		ds := exp.BuildDataset(cfg)
		want := sortedCopy(core.BNL(ds, core.Options{NoKernel: true}).SkylineIDs)
		for _, v := range []struct {
			name string
			opt  core.Options
		}{
			{"kernel", core.Options{}},
			{"kernel-noclosure", core.Options{ClosureBudget: -1}},
		} {
			got := sortedCopy(core.BNL(ds, v.opt).SkylineIDs)
			if !equalIDs(got, want) {
				t.Errorf("%s/%s: BNL kernel %d ids, scalar reference %d ids",
					dist, v.name, len(got), len(want))
			}
		}
		sfsK := sortedCopy(core.SFS(ds, core.Options{}).SkylineIDs)
		sfsS := sortedCopy(core.SFS(ds, core.Options{NoKernel: true}).SkylineIDs)
		if !equalIDs(sfsK, want) || !equalIDs(sfsS, want) {
			t.Errorf("%s: SFS kernel %d / scalar %d ids, want %d",
				dist, len(sfsK), len(sfsS), len(want))
		}
	}
}

func sortedCopy(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
