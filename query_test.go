package tss

import (
	"context"
	"testing"

	"repro/internal/plan"
)

// queryTestTable builds a small mixed table: price/stops TO columns and
// one diamond-ordered PO column a→{b,c}→d.
func queryTestTable(t *testing.T) *Table {
	t.Helper()
	o := NewOrder("a", "b", "c", "d")
	o.Prefer("a", "b").Prefer("a", "c").Prefer("b", "d").Prefer("c", "d")
	table := NewTable([]string{"price", "stops"}, o)
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < 80; i++ {
		table.MustAdd([]int64{int64((i * 37) % 100), int64((i*11 + 5) % 60)}, labels[i%4])
	}
	return table
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestQueryFullMatchesSkyline: the zero query is the full skyline.
func TestQueryFullMatchesSkyline(t *testing.T) {
	table := queryTestTable(t)
	res, ex, err := table.Query(plan.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Variant != "full" {
		t.Fatalf("variant %q", ex.Variant)
	}
	if !equalInts(sortedInts(res.Rows), sortedInts(table.Skyline())) {
		t.Fatalf("full query %v != Skyline %v", sortedInts(res.Rows), sortedInts(table.Skyline()))
	}
	if ex.Algorithm == "" || ex.EstSeconds < 0 || ex.ObservedSeconds < 0 {
		t.Fatalf("explain not filled: %+v", ex)
	}
}

// TestQueryConstrainedMatchesFilter: a constrained skyline equals the
// skyline of the Filter()ed table mapped back to original row indexes —
// an oracle entirely at the tss layer (the plan package's own oracle is
// exercised by its fuzz harness).
func TestQueryConstrainedMatchesFilter(t *testing.T) {
	table := queryTestTable(t)
	for _, pred := range []plan.Predicate{
		{Kind: plan.TORange, Dim: 0, HasHi: true, Hi: 40},
		{Kind: plan.TORange, Dim: 0, HasLo: true, Lo: 60},
		{Kind: plan.POIn, Dim: 0, In: []int32{0, 1}},
	} {
		keep := func(row int) bool {
			to, po := table.RowValues(row)
			switch pred.Kind {
			case plan.TORange:
				v := to[pred.Dim]
				if pred.HasHi && v > pred.Hi {
					return false
				}
				if pred.HasLo && v < pred.Lo {
					return false
				}
				return true
			default:
				for _, a := range pred.In {
					if po[pred.Dim] == table.orders[pred.Dim].labels[a] {
						return true
					}
				}
				return false
			}
		}
		var keptRows []int
		for i := 0; i < table.Len(); i++ {
			if keep(i) {
				keptRows = append(keptRows, i)
			}
		}
		var want []int
		for _, r := range table.Filter(keep).Skyline() {
			want = append(want, keptRows[r])
		}
		res, _, err := table.Query(plan.Query{Where: []plan.Predicate{pred}})
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(sortedInts(res.Rows), sortedInts(want)) {
			t.Fatalf("pred %+v: got %v want %v", pred, sortedInts(res.Rows), sortedInts(want))
		}
	}
}

// TestQuerySubspaceMatchesRebuiltTable: a subspace skyline equals the
// skyline of a table built from only the kept columns.
func TestQuerySubspaceMatchesRebuiltTable(t *testing.T) {
	table := queryTestTable(t)
	sub := NewTable([]string{"price"})
	for i := 0; i < table.Len(); i++ {
		to, _ := table.RowValues(i)
		sub.MustAdd([]int64{to[0]})
	}
	want := sub.Skyline()
	res, ex, err := table.Query(plan.Query{Subspace: &plan.Subspace{TO: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Variant != "subspace" {
		t.Fatalf("variant %q", ex.Variant)
	}
	if !equalInts(sortedInts(res.Rows), sortedInts(want)) {
		t.Fatalf("subspace: got %v want %v", sortedInts(res.Rows), sortedInts(want))
	}
}

// TestQueryTopK: ranked top-k returns K skyline members; unranked top-k
// takes the cursor route.
func TestQueryTopK(t *testing.T) {
	table := queryTestTable(t)
	full := table.Skyline()
	member := make(map[int]bool, len(full))
	for _, r := range full {
		member[r] = true
	}
	for _, q := range []plan.Query{
		{TopK: 3},
		{TopK: 3, Rank: plan.RankDomCount},
		{TopK: 3, Rank: plan.RankIdeal, Ideal: []int64{0, 0}},
	} {
		res, ex, err := table.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want := 3
		if len(full) < want {
			want = len(full)
		}
		if len(res.Rows) != want {
			t.Fatalf("rank %q: %d rows, want %d", q.Rank, len(res.Rows), want)
		}
		for _, r := range res.Rows {
			if !member[r] {
				t.Fatalf("rank %q: row %d not in the skyline", q.Rank, r)
			}
		}
		if q.Rank == plan.RankNone && ex.Route != plan.RouteCursor {
			t.Fatalf("unranked top-k took route %q", ex.Route)
		}
	}
}

// TestQueryStatsMaintainedByApplyBatch: batches advance the planner
// statistics without a fresh full scan being observable (bounds stay
// exact through adds and boundary removals).
func TestQueryStatsMaintainedByApplyBatch(t *testing.T) {
	table := queryTestTable(t)
	s := table.Stats()
	if s.Rows != table.Len() {
		t.Fatalf("stats rows %d, table %d", s.Rows, table.Len())
	}
	next, _, err := table.ApplyBatch(nil, []TableRow{{TO: []int64{5000, 1}, PO: []string{"a"}}})
	if err != nil {
		t.Fatal(err)
	}
	s2 := next.Stats()
	if s2.Rows != table.Len()+1 || s2.TO[0].Max != 5000 {
		t.Fatalf("advanced stats %+v", s2.TO[0])
	}
	// Remove the outlier again: the boundary removal forces a rescan
	// back to the true maximum.
	back, _, err := next.ApplyBatch([]int{table.Len()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Stats().TO[0].Max, s.TO[0].Max; got != want {
		t.Fatalf("max after boundary removal %d, want %d", got, want)
	}
	if table.Learned() != back.Learned() {
		t.Fatal("learned store not shared across ApplyBatch")
	}
}

// TestQueryCacheOnTable: an attached query cache serves the repeat full
// skyline without recomputation and keeps answers exact.
func TestQueryCacheOnTable(t *testing.T) {
	table := queryTestTable(t)
	table.SetQueryCache(plan.NewMemoCache())
	first, ex1, err := table.Query(plan.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if ex1.CacheHit {
		t.Fatal("cold query hit the cache")
	}
	second, ex2, err := table.Query(plan.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !ex2.CacheHit || !second.CacheHit {
		t.Fatalf("repeat full query missed the cache: %+v", ex2)
	}
	if !equalInts(sortedInts(first.Rows), sortedInts(second.Rows)) {
		t.Fatal("cached answer differs")
	}
}

// TestQueryContextCancel: a canceled context aborts before work.
func TestQueryContextCancel(t *testing.T) {
	table := queryTestTable(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := table.QueryContext(ctx, plan.Query{}); err == nil {
		t.Fatal("canceled query succeeded")
	}
}
