package tss

import (
	"sort"
	"testing"
)

// flightsTable builds the paper's introduction example through the
// public API.
func flightsTable(o *Order) *Table {
	t := NewTable([]string{"price", "stops"}, o)
	rows := []struct {
		price, stops int64
		airline      string
	}{
		{1800, 0, "a"}, {2000, 0, "a"}, {1800, 0, "b"}, {1200, 1, "b"}, {1400, 1, "a"},
		{1000, 1, "b"}, {1000, 1, "d"}, {1800, 1, "c"}, {500, 2, "d"}, {1200, 2, "c"},
	}
	for _, r := range rows {
		t.MustAdd([]int64{r.price, r.stops}, r.airline)
	}
	return t
}

func order1() *Order {
	return NewOrder("a", "b", "c", "d").
		Prefer("a", "b").Prefer("a", "c").Prefer("b", "d").Prefer("c", "d")
}

func sortedRows(rows []int) []int {
	out := append([]int(nil), rows...)
	sort.Ints(out)
	return out
}

func equalRows(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuickstartFlights(t *testing.T) {
	table := flightsTable(order1())
	// Paper rows p1..p10 are our rows 0..9; Table I first order gives
	// {p1, p5, p6, p9, p10} = rows {0, 4, 5, 8, 9}.
	want := []int{0, 4, 5, 8, 9}
	if got := sortedRows(table.Skyline()); !equalRows(got, want) {
		t.Fatalf("Skyline() = %v, want %v", got, want)
	}
	// Every method agrees.
	for _, m := range []Method{MethodSTSS, MethodBBSPlus, MethodSDC, MethodSDCPlus, MethodBNL, MethodSFS} {
		res := table.SkylineResult(m)
		if got := sortedRows(res.Rows); !equalRows(got, want) {
			t.Errorf("%v = %v, want %v", m, got, want)
		}
	}
}

func TestOrderSemantics(t *testing.T) {
	o := order1()
	if !o.Preferred("a", "d") {
		t.Error("preference must be transitive: a→b→d")
	}
	if o.Preferred("b", "c") || o.Preferred("c", "b") {
		t.Error("b and c are incomparable")
	}
	if o.Preferred("a", "a") {
		t.Error("preference is irreflexive")
	}
	if o.Preferred("z", "a") || o.Preferred("a", "z") {
		t.Error("unknown labels are never preferred")
	}
	vals := o.Values()
	if len(vals) != 4 || vals[0] != "a" {
		t.Errorf("Values() = %v", vals)
	}
}

func TestOrderErrors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate labels must panic")
		}
	}()
	NewOrder("x", "x")
}

func TestOrderCyclicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("cyclic preferences must panic at compile")
		}
	}()
	o := NewOrder("x", "y").Prefer("x", "y").Prefer("y", "x")
	NewTable(nil, o)
}

func TestOrderFrozenAfterUse(t *testing.T) {
	o := order1()
	NewTable([]string{"x"}, o)
	defer func() {
		if recover() == nil {
			t.Error("Prefer after compile must panic")
		}
	}()
	o.Prefer("a", "d")
}

func TestAddValidation(t *testing.T) {
	table := NewTable([]string{"x"}, NewOrder("u", "v"))
	if err := table.Add([]int64{1, 2}, "u"); err == nil {
		t.Error("wrong TO arity must fail")
	}
	if err := table.Add([]int64{1}); err == nil {
		t.Error("missing PO value must fail")
	}
	if err := table.Add([]int64{1}, "w"); err == nil {
		t.Error("unknown PO label must fail")
	}
	if err := table.Add([]int64{-1}, "u"); err == nil {
		t.Error("negative TO value must fail")
	}
	if err := table.Add([]int64{1}, "u"); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if table.Len() != 1 {
		t.Errorf("Len() = %d", table.Len())
	}
}

func TestRowRendering(t *testing.T) {
	table := flightsTable(order1())
	s := table.Row(0)
	if s != "row 0: price=1800 stops=0 po0=a" {
		t.Errorf("Row(0) = %q", s)
	}
}

func TestStats(t *testing.T) {
	table := flightsTable(order1())
	res := table.SkylineResult(MethodSTSS)
	if res.Stats.PageReads == 0 {
		t.Error("stats must report page reads")
	}
	if res.Stats.TotalSeconds() <= res.Stats.CPUSeconds {
		t.Error("TotalSeconds must include the IO charge")
	}
}

func TestDynamicQueries(t *testing.T) {
	table := flightsTable(order1())
	dyn := table.PrepareDynamic()
	if dyn.Groups() != 4 {
		t.Errorf("Groups() = %d, want 4 (a,b,c,d)", dyn.Groups())
	}

	// Table I second order, supplied dynamically: only b preferred to a.
	q := NewOrder("a", "b", "c", "d").Prefer("b", "a")
	res, err := dyn.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 5, 6, 7, 8, 9} // p3, p6, p7, p8, p9, p10
	if got := sortedRows(res.Rows); !equalRows(got, want) {
		t.Fatalf("dynamic skyline = %v, want %v", got, want)
	}

	// The baseline agrees but pays for its rebuild.
	base, err := dyn.QueryBaseline(NewOrder("a", "b", "c", "d").Prefer("b", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(base.Rows); !equalRows(got, want) {
		t.Fatalf("baseline skyline = %v, want %v", got, want)
	}
	if base.Stats.PageWrites == 0 {
		t.Error("baseline must charge rebuild writes")
	}

	// Re-querying with a different order needs no re-preparation.
	res2, err := dyn.Query(order1())
	if err != nil {
		t.Fatal(err)
	}
	want2 := []int{0, 4, 5, 8, 9}
	if got := sortedRows(res2.Rows); !equalRows(got, want2) {
		t.Fatalf("second dynamic skyline = %v, want %v", got, want2)
	}
}

func TestDynamicQueryValidation(t *testing.T) {
	table := flightsTable(order1())
	dyn := table.PrepareDynamic()
	if _, err := dyn.Query(); err == nil {
		t.Error("missing orders must fail")
	}
	if _, err := dyn.Query(NewOrder("a", "b")); err == nil {
		t.Error("mis-sized order must fail")
	}
	if _, err := dyn.Query(NewOrder("a", "b", "c", "x")); err == nil {
		t.Error("mismatched labels must fail")
	}
}

func TestEachSkylineStreams(t *testing.T) {
	table := flightsTable(order1())
	full := table.Skyline()
	var streamed []int
	table.EachSkyline(func(row int) bool {
		streamed = append(streamed, row)
		return true
	})
	if !equalRows(streamed, full) {
		t.Fatalf("streamed %v, batch %v", streamed, full)
	}
	// Early stop after two rows.
	var first2 []int
	table.EachSkyline(func(row int) bool {
		first2 = append(first2, row)
		return len(first2) < 2
	})
	if len(first2) != 2 || first2[0] != full[0] || first2[1] != full[1] {
		t.Fatalf("first2 = %v, want prefix of %v", first2, full)
	}
}

func TestPureTOTable(t *testing.T) {
	table := NewTable([]string{"x", "y"})
	table.MustAdd([]int64{1, 4})
	table.MustAdd([]int64{2, 2})
	table.MustAdd([]int64{4, 1})
	table.MustAdd([]int64{3, 3}) // dominated by (2,2)
	want := []int{0, 1, 2}
	if got := sortedRows(table.Skyline()); !equalRows(got, want) {
		t.Fatalf("pure-TO skyline = %v, want %v", got, want)
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodSTSS: "sTSS", MethodBBSPlus: "BBS+", MethodSDC: "SDC",
		MethodSDCPlus: "SDC+", MethodBNL: "BNL", MethodSFS: "SFS", Method(99): "unknown",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("Method(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

// TestSkylineWith: every registered algorithm is reachable by name from
// the public API; PO-capable ones agree on the flights example, TO-only
// ones surface their rejection as an error.
func TestSkylineWith(t *testing.T) {
	table := flightsTable(order1())
	want := sortedRows(table.Skyline())
	algos := Algorithms()
	if len(algos) < 8 {
		t.Fatalf("Algorithms() lists %d entries, want >= 8", len(algos))
	}
	for _, info := range algos {
		res, err := table.SkylineWith(info.Name)
		if !info.POCapable {
			if err == nil {
				t.Errorf("%s: expected PO rejection", info.Name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", info.Name, err)
			continue
		}
		if got := sortedRows(res.Rows); !equalRows(got, want) {
			t.Errorf("%s = %v, want %v", info.Name, got, want)
		}
	}
	if _, err := table.SkylineWith("nope"); err == nil {
		t.Error("unknown algorithm must error")
	}
}

// TestSkylineParallel: the partition-and-merge executor matches the
// sequential result through the public API.
func TestSkylineParallel(t *testing.T) {
	table := flightsTable(order1())
	want := sortedRows(table.Skyline())
	for _, p := range []int{0, 1, 2, 4} {
		res, err := table.SkylineParallel("stss", p)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if got := sortedRows(res.Rows); !equalRows(got, want) {
			t.Errorf("parallelism %d: %v, want %v", p, got, want)
		}
	}
	if _, err := table.SkylineParallel("nope", 2); err == nil {
		t.Error("unknown algorithm must error")
	}
	if _, err := table.SkylineParallel("salsa", 2); err == nil {
		t.Error("parallel(salsa) on PO table must error")
	}
}

// TestMethodsViaRegistry: the legacy Method enum is served by the
// registry and still returns correct results.
func TestMethodsViaRegistry(t *testing.T) {
	table := flightsTable(order1())
	want := sortedRows(table.Skyline())
	for _, m := range []Method{MethodSTSS, MethodBBSPlus, MethodSDC, MethodSDCPlus, MethodBNL, MethodSFS} {
		res := table.SkylineResult(m)
		if got := sortedRows(res.Rows); !equalRows(got, want) {
			t.Errorf("%v = %v, want %v", m, got, want)
		}
	}
}
