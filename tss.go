// Package tss is a library for skyline queries over data with partially
// ordered attribute domains, implementing "Topologically Sorted Skylines
// for Partially Ordered Domains" (Sacharidis, Papadopoulos, Papadias;
// ICDE 2009).
//
// A skyline query returns the tuples not dominated by any other tuple:
// at least as good everywhere and strictly better somewhere. Totally
// ordered (TO) attributes are int64 columns where smaller is better;
// partially ordered (PO) attributes take values from a finite domain
// whose preferences form a DAG (an Order): value x is preferred to y
// when a directed path x→y exists, and values without a path are
// incomparable — neither can rule the other out of the skyline.
//
// The library's core algorithm, sTSS, maps every PO domain onto a
// topological sort (for precedence: dominators are always examined
// first) and an exact interval encoding (for exactness: dominance checks
// never produce false hits), which makes it optimally progressive:
// every skyline tuple is emitted the moment it is examined. Dynamic
// skyline queries — where each query brings its own preference DAGs —
// are served by a prepared Dynamic database that never rebuilds its
// indexes between queries.
//
// Quick start:
//
//	airline := tss.NewOrder("a", "b", "c", "d")
//	airline.Prefer("a", "b")
//	airline.Prefer("a", "c")
//	airline.Prefer("b", "d")
//	airline.Prefer("c", "d")
//
//	table := tss.NewTable([]string{"price", "stops"}, airline)
//	table.MustAdd([]int64{1800, 0}, "a")
//	table.MustAdd([]int64{1200, 1}, "b")
//	// ...
//	for _, row := range table.Skyline() {
//	    fmt.Println(table.Row(row))
//	}
package tss

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/poset"
)

// Order is a partially ordered attribute domain under construction: a
// set of labelled values plus preference edges. Orders are mutable
// until first use by a Table or Query, at which point they are compiled
// and frozen.
type Order struct {
	labels []string
	index  map[string]int
	edges  [][2]int
	dom    *poset.Domain // compiled form; nil until frozen
}

// NewOrder creates a domain with the given distinct value labels and no
// preferences (all values incomparable).
func NewOrder(labels ...string) *Order {
	o := &Order{index: make(map[string]int, len(labels))}
	for _, l := range labels {
		if _, dup := o.index[l]; dup {
			panic(fmt.Sprintf("tss: duplicate value label %q", l))
		}
		o.index[l] = len(o.labels)
		o.labels = append(o.labels, l)
	}
	return o
}

// Prefer records that value better is preferred to value worse.
// Preferences are transitive: a→b and b→c imply a is preferred to c.
// Panics on unknown labels or after the order has been compiled.
func (o *Order) Prefer(better, worse string) *Order {
	if o.dom != nil {
		panic("tss: Order is frozen (already used by a Table or Query)")
	}
	bi, ok := o.index[better]
	if !ok {
		panic(fmt.Sprintf("tss: unknown value %q", better))
	}
	wi, ok := o.index[worse]
	if !ok {
		panic(fmt.Sprintf("tss: unknown value %q", worse))
	}
	o.edges = append(o.edges, [2]int{bi, wi})
	return o
}

// Values returns the value labels in declaration order.
func (o *Order) Values() []string { return append([]string(nil), o.labels...) }

// compile freezes the order into a poset.Domain.
func (o *Order) compile() (*poset.Domain, error) {
	if o.dom != nil {
		return o.dom, nil
	}
	dag := poset.NewDAG(len(o.labels))
	for i, l := range o.labels {
		dag.SetLabel(i, l)
	}
	for _, e := range o.edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("tss: self-preference on %q", o.labels[e[0]])
		}
		if err := dag.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	dom, err := poset.NewDomain(dag)
	if err != nil {
		if errors.Is(err, poset.ErrCycle) {
			return nil, fmt.Errorf("tss: preferences contain a cycle")
		}
		return nil, err
	}
	o.dom = dom
	return dom, nil
}

// Preferred reports whether value better is (transitively) preferred to
// worse under this order. Compiles the order on first use.
func (o *Order) Preferred(better, worse string) bool {
	dom, err := o.compile()
	if err != nil {
		panic(err)
	}
	bi, ok := o.index[better]
	if !ok {
		return false
	}
	wi, ok := o.index[worse]
	if !ok {
		return false
	}
	return dom.TPrefers(int32(bi), int32(wi))
}

// Method selects a skyline algorithm.
type Method int

const (
	// MethodSTSS is the paper's contribution: exact, optimally
	// progressive best-first search (the default).
	MethodSTSS Method = iota
	// MethodBBSPlus is the non-progressive m-dominance baseline.
	MethodBBSPlus
	// MethodSDC is the two-strata baseline.
	MethodSDC
	// MethodSDCPlus is the strongest baseline (stratum per uncovered
	// level).
	MethodSDCPlus
	// MethodBNL is block-nested-loops with the exact dominance oracle.
	MethodBNL
	// MethodSFS is sort-filter-skyline with the exact dominance oracle.
	MethodSFS
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodSTSS:
		return "sTSS"
	case MethodBBSPlus:
		return "BBS+"
	case MethodSDC:
		return "SDC"
	case MethodSDCPlus:
		return "SDC+"
	case MethodBNL:
		return "BNL"
	case MethodSFS:
		return "SFS"
	default:
		return "unknown"
	}
}

// Table is an in-memory relation with totally ordered and partially
// ordered columns, ready for skyline queries. Rows are identified by
// their insertion index.
type Table struct {
	toNames []string
	orders  []*Order
	ds      *core.Dataset

	// stats holds the planner's table statistics: maintained
	// incrementally by ApplyBatch, computed lazily on first Query
	// otherwise, invalidated by Add. Atomic so lazily computing it may
	// race concurrent queries on a shared (sealed) table.
	stats atomic.Pointer[plan.Stats]
	// learned is the planner's cost-feedback store, shared by every
	// table derived through Clone/Filter/ApplyBatch — it describes the
	// data's behavior, not one row-set version.
	learned *plan.Learned
	// queryCache optionally memoises the full skyline for the planner's
	// cache routing (see SetQueryCache).
	queryCache plan.Cache
}

// NewTable creates a table with the given TO column names followed by
// one PO column per Order. Orders are compiled (and frozen) here.
func NewTable(toNames []string, orders ...*Order) *Table {
	t := &Table{toNames: toNames, orders: orders, ds: &core.Dataset{}, learned: plan.NewLearned()}
	for _, o := range orders {
		dom, err := o.compile()
		if err != nil {
			panic(err)
		}
		t.ds.Domains = append(t.ds.Domains, dom)
	}
	return t
}

// Add appends a row: to holds the TO column values (smaller = better),
// po the PO column value labels, one per Order.
func (t *Table) Add(to []int64, po ...string) error {
	if len(to) != len(t.toNames) {
		return fmt.Errorf("tss: %d TO values, table has %d TO columns", len(to), len(t.toNames))
	}
	if len(po) != len(t.orders) {
		return fmt.Errorf("tss: %d PO values, table has %d PO columns", len(po), len(t.orders))
	}
	p := core.Point{ID: int32(len(t.ds.Pts))}
	p.TO = make([]int32, len(to))
	for d, v := range to {
		if v < 0 || v > 1<<30 {
			return fmt.Errorf("tss: TO value %d out of supported range [0, 2^30]", v)
		}
		p.TO[d] = int32(v)
	}
	if len(po) > 0 {
		p.PO = make([]int32, len(po))
		for d, label := range po {
			vi, ok := t.orders[d].index[label]
			if !ok {
				return fmt.Errorf("tss: unknown value %q for PO column %d", label, d)
			}
			p.PO[d] = int32(vi)
		}
	}
	t.ds.Pts = append(t.ds.Pts, p)
	t.stats.Store(nil) // row set changed; recomputed lazily
	return nil
}

// MustAdd is Add that panics on error.
func (t *Table) MustAdd(to []int64, po ...string) {
	if err := t.Add(to, po...); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.ds.Pts) }

// TONames returns the totally ordered column names in declaration
// order.
func (t *Table) TONames() []string { return append([]string(nil), t.toNames...) }

// Orders returns the table's partially ordered column domains. The
// returned Orders are the table's own (compiled and frozen): inspect
// them with Values/Preferred, but further Prefer calls panic.
func (t *Table) Orders() []*Order { return append([]*Order(nil), t.orders...) }

// RowValues returns row i's raw values: the TO column values and the PO
// column value labels. The slices are fresh copies.
func (t *Table) RowValues(i int) (to []int64, po []string) {
	p := &t.ds.Pts[i]
	to = make([]int64, len(p.TO))
	for d, v := range p.TO {
		to[d] = int64(v)
	}
	po = make([]string, len(p.PO))
	for d, v := range p.PO {
		po[d] = t.orders[d].labels[v]
	}
	return to, po
}

// Clone returns a copy-on-write snapshot of the table: the new table
// shares the compiled (frozen, immutable) orders and the existing rows'
// storage, but appending to either table never affects the other. This
// is the snapshot hook the serving layer's batched mutations build on —
// clone, append, publish — while readers keep querying the original.
//
// Seal state propagates through Clone: the clone shares the compiled
// domains, so the dyadic indexes a Seal built (on either table, before
// or after cloning) serve both. Sealing a clone while the original is
// answering queries is safe — the index is built once and published
// atomically (see poset.Domain.EnableDyadic).
func (t *Table) Clone() *Table {
	pts := make([]core.Point, len(t.ds.Pts))
	copy(pts, t.ds.Pts)
	nt := &Table{
		toNames: t.toNames,
		orders:  t.orders,
		ds:      &core.Dataset{Pts: pts, Domains: t.ds.Domains},
		learned: t.learned,
	}
	nt.stats.Store(t.stats.Load()) // same rows, same statistics
	return nt
}

// Filter returns a copy-on-write snapshot containing only the rows the
// keep predicate admits, renumbered to consecutive row indexes in
// their original order. Like Clone, the result shares the compiled
// orders and the surviving rows' value storage — and, with them, any
// seal state (see Clone).
func (t *Table) Filter(keep func(row int) bool) *Table {
	nt := &Table{
		toNames: t.toNames,
		orders:  t.orders,
		ds:      &core.Dataset{Domains: t.ds.Domains},
		learned: t.learned,
	}
	for i := range t.ds.Pts {
		if !keep(i) {
			continue
		}
		p := t.ds.Pts[i]
		p.ID = int32(len(nt.ds.Pts))
		nt.ds.Pts = append(nt.ds.Pts, p)
	}
	return nt
}

// Seal precompiles every per-domain auxiliary index (the dyadic range
// index, and the transitive-closure bitset when the domain fits the
// default memory budget — the dominance kernel's single-word TPrefers
// fast path) that skyline runs would otherwise build lazily on first
// use. A sealed table can serve any number of concurrent Skyline* calls
// without mutating shared state; call it once before sharing a table
// across goroutines. Sealing is idempotent, concurrency-safe (it may
// race queries and other Seal calls, including through Clone/Filter
// copies that share the same compiled domains) and does not freeze
// rows — but rows must not be added while queries are in flight.
func (t *Table) Seal() *Table {
	for _, dom := range t.ds.Domains {
		dom.EnableDyadic()
		dom.EnableClosure(0)
	}
	return t
}

// TableRow is one table row in plain form: the TO column values plus
// one PO value label per Order — the unit ApplyBatch appends.
type TableRow struct {
	TO []int64
	PO []string
}

// BatchDelta records how an ApplyBatch moved rows around: the mapping
// from old to new row indexes and the count of appended rows. It is
// the contract between a table mutation and the incremental index
// maintenance of Dynamic.ApplyDelta.
type BatchDelta struct {
	// OldLen and NewLen are the row counts before and after the batch.
	OldLen, NewLen int
	// OldToNew maps each old row index to its new index, -1 if removed.
	OldToNew []int32
	// Added is the number of appended rows, occupying the new indexes
	// NewLen-Added … NewLen-1.
	Added int
}

// ApplyBatch returns a copy-on-write snapshot with the rows named in
// removes (current row indexes, duplicates tolerated) dropped,
// survivors renumbered to consecutive indexes in their original order,
// and the adds appended — plus the BatchDelta describing the move.
// The receiver is unchanged; like Clone, the result shares the
// compiled orders (and their seal state) and the surviving rows' value
// storage. Point work is O(N + batch); pair it with
// Dynamic.ApplyDelta to avoid rebuilding prepared indexes.
func (t *Table) ApplyBatch(removes []int, adds []TableRow) (*Table, *BatchDelta, error) {
	oldLen := len(t.ds.Pts)
	drop := make([]bool, oldLen)
	for _, r := range removes {
		if r < 0 || r >= oldLen {
			return nil, nil, fmt.Errorf("tss: remove index %d out of range [0, %d)", r, oldLen)
		}
		drop[r] = true
	}
	delta := &BatchDelta{OldLen: oldLen, OldToNew: make([]int32, oldLen), Added: len(adds)}
	nt := &Table{
		toNames: t.toNames,
		orders:  t.orders,
		ds:      &core.Dataset{Domains: t.ds.Domains},
		learned: t.learned,
	}
	nt.ds.Pts = make([]core.Point, 0, oldLen-countTrue(drop)+len(adds))
	for i := range t.ds.Pts {
		if drop[i] {
			delta.OldToNew[i] = -1
			continue
		}
		p := t.ds.Pts[i]
		p.ID = int32(len(nt.ds.Pts))
		delta.OldToNew[i] = p.ID
		nt.ds.Pts = append(nt.ds.Pts, p)
	}
	for i, r := range adds {
		if err := nt.Add(r.TO, r.PO...); err != nil {
			return nil, nil, fmt.Errorf("tss: add row %d: %w", i, err)
		}
	}
	delta.NewLen = len(nt.ds.Pts)
	// Planner statistics ride along incrementally: appended rows widen
	// the maintained bounds in O(batch); only boundary removals or the
	// periodic sampled-statistics refresh re-scan (see plan.Stats.Advance).
	// nt.Add above cleared the fresh table's stats, so store last.
	if old := t.stats.Load(); old != nil {
		nt.stats.Store(old.Advance(t.ds, nt.ds, delta.OldToNew, delta.Added))
	}
	// The skyline memo rides along too: instead of the derived table
	// starting cold, a MemoCache is advanced across the delta — its
	// entries are re-certified by the incremental maintainer rather than
	// recomputed (plan.MemoCache.Advance). Other Cache implementations
	// stay snapshot-scoped and are not inherited.
	if mc, ok := t.queryCache.(*plan.MemoCache); ok {
		nt.queryCache = mc.Advance(t.ds, nt.ds, &core.Delta{OldToNew: delta.OldToNew, Added: delta.Added})
	}
	return nt, delta, nil
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// Row renders row i as a human-readable string.
func (t *Table) Row(i int) string {
	p := &t.ds.Pts[i]
	s := fmt.Sprintf("row %d:", i)
	for d, name := range t.toNames {
		s += fmt.Sprintf(" %s=%d", name, p.TO[d])
	}
	for d := range t.orders {
		s += fmt.Sprintf(" po%d=%s", d, t.orders[d].labels[p.PO[d]])
	}
	return s
}

// Skyline returns the skyline row indexes using sTSS, in emission
// (discovery) order.
func (t *Table) Skyline() []int {
	return t.SkylineResult(MethodSTSS).Rows
}

// EachSkyline streams skyline rows to fn as they are certified, in
// discovery order; fn returning false stops the enumeration. Because
// sTSS is optimally progressive, stopping after k rows costs only the
// traversal needed for those k rows — use this for top-k-style
// consumption over large tables.
func (t *Table) EachSkyline(fn func(row int) bool) {
	cur := core.NewSTSSCursor(t.ds, core.Options{UseMemTree: true})
	for {
		id, ok := cur.Next()
		if !ok {
			return
		}
		if !fn(int(id)) {
			return
		}
	}
}

// name maps a Method constant to its algorithm-registry name.
func (m Method) name() string {
	switch m {
	case MethodBBSPlus:
		return "bbs+"
	case MethodSDC:
		return "sdc"
	case MethodSDCPlus:
		return "sdc+"
	case MethodBNL:
		return "bnl"
	case MethodSFS:
		return "sfs"
	default:
		return "stss"
	}
}

// SkylineResult runs the chosen algorithm and returns the skyline with
// its run statistics.
func (t *Table) SkylineResult(m Method) *SkylineResult {
	res, err := t.SkylineWith(m.name())
	if err != nil {
		panic(err) // Method constants name PO-capable algorithms; Run cannot fail
	}
	return res
}

// AlgorithmInfo describes one entry of the skyline-algorithm registry.
type AlgorithmInfo struct {
	// Name is the registry key, usable with Table.SkylineWith and the
	// tssquery -method flag.
	Name string
	// POCapable algorithms handle partially ordered columns; the others
	// (the classic sort-based baselines) require TO-only tables.
	POCapable bool
	// Progressive algorithms emit skyline rows while the run is still
	// in flight.
	Progressive bool
	// PaperRef cites where the algorithm is described.
	PaperRef string
}

// Algorithms lists every registered skyline algorithm, sorted by name.
func Algorithms() []AlgorithmInfo {
	var out []AlgorithmInfo
	for _, a := range core.Algorithms() {
		caps := a.Capabilities()
		out = append(out, AlgorithmInfo{
			Name:        a.Name(),
			POCapable:   caps.POCapable,
			Progressive: caps.Progressive,
			PaperRef:    caps.PaperRef,
		})
	}
	return out
}

// lookupAlgo resolves a registry name, listing the known names on
// failure.
func lookupAlgo(name string) (core.Algorithm, error) {
	a, ok := core.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("tss: unknown algorithm %q (have: %s)",
			name, strings.Join(core.AlgorithmNames(), ", "))
	}
	return a, nil
}

// SkylineWith runs the named registered algorithm (see Algorithms) and
// returns the skyline with its run statistics. TO-only algorithms
// return an error when the table has PO columns. It is a thin wrapper
// over Query with the algorithm forced, a sequential run pinned and
// cache routing disabled — exactly the historical behavior.
func (t *Table) SkylineWith(algo string) (*SkylineResult, error) {
	if _, err := lookupAlgo(algo); err != nil {
		return nil, err
	}
	res, _, err := t.Query(plan.Query{Hints: plan.Hints{
		Algorithm: algo, Parallelism: -1, NoCache: true,
	}})
	return res, err
}

// SkylineParallel runs the named algorithm behind the partition-and-
// merge executor: the table is split into parallelism shards (0 = one
// per CPU), local skylines are computed concurrently and merged with a
// final t-dominance elimination pass. The result set always equals the
// sequential one; on multi-core hosts and large tables the wall-clock
// time drops. Like SkylineWith, it is a Query wrapper with the
// algorithm and shard count forced.
func (t *Table) SkylineParallel(algo string, parallelism int) (*SkylineResult, error) {
	if _, err := lookupAlgo(algo); err != nil {
		return nil, err
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	res, _, err := t.Query(plan.Query{Hints: plan.Hints{
		Algorithm: algo, Parallelism: parallelism, NoCache: true,
	}})
	return res, err
}

// Query plans and executes a logical skyline query — full, subspace,
// constrained, top-k, in any combination (see plan.Query for the exact
// semantics) — through the cost-based optimizer: per-table statistics
// and the registry's capability metadata pick the algorithm,
// parallelism, predicate placement and cache routing, and the run's
// observed cost feeds the statistics for the next query. The returned
// Explain documents every decision.
func (t *Table) Query(q plan.Query) (*SkylineResult, *plan.Explain, error) {
	return t.QueryContext(context.Background(), q)
}

// QueryContext is Query with cooperative cancellation: ctx is checked
// between pipeline stages and inside the executor's scan loops (an
// algorithm already running is not interrupted mid-run).
func (t *Table) QueryContext(ctx context.Context, q plan.Query) (*SkylineResult, *plan.Explain, error) {
	env := plan.Env{Stats: t.Stats(), Learned: t.learned, Cache: t.queryCache}
	p, err := plan.New(t.ds, q, env)
	if err != nil {
		return nil, nil, err
	}
	res, err := p.Run(ctx, t.ds, env)
	if err != nil {
		return nil, &p.Explain, err
	}
	return wrapResult(res), &p.Explain, nil
}

// QueryStream is QueryContext with progressive delivery: result rows
// are passed to emit the moment they are certified, in stream order,
// before the full result exists. Unranked queries stream through the
// sTSS cursor (an unranked top-k stops the traversal after K rows, and
// a first-K stream is a prefix of the full stream); origin-ideal ranked
// top-k stops on a sound score threshold; everything else computes the
// buffered result and replays it through emit. The returned
// SkylineResult carries the same rows emit saw plus the run's metrics.
// An emit error aborts the run and is returned verbatim.
func (t *Table) QueryStream(ctx context.Context, q plan.Query, emit func(plan.StreamRow) error) (*SkylineResult, *plan.Explain, error) {
	env := plan.Env{Stats: t.Stats(), Learned: t.learned, Cache: t.queryCache}
	p, err := plan.New(t.ds, q, env)
	if err != nil {
		return nil, nil, err
	}
	res, err := p.RunStream(ctx, t.ds, env, emit)
	if err != nil {
		return nil, &p.Explain, err
	}
	return wrapResult(res), &p.Explain, nil
}

// DomCounts counts, per candidate row, how many rows of R — the table
// filtered by q.Where — the candidate dominates on q.Subspace's kept
// dimensions. Candidates are value-addressed TableRows rather than row
// indexes: this is the shard-side scoring half of distributed top-k by
// dominance count, where the coordinator's merged skyline rows carry no
// usable ids for any one shard. q's TopK/Rank fields are ignored.
func (t *Table) DomCounts(ctx context.Context, q plan.Query, rows []TableRow) ([]int64, error) {
	cands, err := t.wireCandidates(rows)
	if err != nil {
		return nil, err
	}
	q.TopK, q.Rank, q.Ideal = 0, plan.RankNone, nil
	return plan.DomCounts(ctx, t.ds, q, cands)
}

// RankPartials computes, per candidate row, this table's partial
// contribution to the named ranking's global score — the generalized
// form of DomCounts the distributed ranked top-k scatter uses (rankings
// that define per-shard partials answer here; see plan.PartialScorer).
// Candidates are value-addressed like DomCounts; q's TopK/Rank/Ideal/
// FWeights fields are ignored.
func (t *Table) RankPartials(ctx context.Context, q plan.Query, rank string, rows []TableRow) (plan.Partials, error) {
	cands, err := t.wireCandidates(rows)
	if err != nil {
		return plan.Partials{}, err
	}
	q.TopK, q.Rank, q.Ideal, q.FWeights = 0, plan.RankNone, nil, nil
	return plan.RankPartials(ctx, t.ds, q, rank, cands)
}

// wireCandidates converts value-addressed rows into storage-encoded
// points (ID -1: the candidates are not rows of this table).
func (t *Table) wireCandidates(rows []TableRow) ([]core.Point, error) {
	cands := make([]core.Point, len(rows))
	for i, r := range rows {
		if len(r.TO) != len(t.toNames) {
			return nil, fmt.Errorf("tss: candidate %d has %d TO values, table has %d columns",
				i, len(r.TO), len(t.toNames))
		}
		if len(r.PO) != len(t.orders) {
			return nil, fmt.Errorf("tss: candidate %d has %d PO values, table has %d columns",
				i, len(r.PO), len(t.orders))
		}
		p := core.Point{ID: -1, TO: make([]int32, len(r.TO))}
		for d, v := range r.TO {
			if v < 0 || v > 1<<30 {
				return nil, fmt.Errorf("tss: candidate %d TO value %d out of supported range [0, 2^30]", i, v)
			}
			p.TO[d] = int32(v)
		}
		if len(r.PO) > 0 {
			p.PO = make([]int32, len(r.PO))
			for d, label := range r.PO {
				vi, ok := t.orders[d].index[label]
				if !ok {
					return nil, fmt.Errorf("tss: candidate %d: unknown value %q for PO column %d", i, label, d)
				}
				p.PO[d] = int32(vi)
			}
		}
		cands[i] = p
	}
	return cands, nil
}

// Stats returns the planner's statistics for the current rows,
// computing them on first use (ApplyBatch maintains them incrementally
// across batches). The returned value is immutable.
func (t *Table) Stats() *plan.Stats {
	if s := t.stats.Load(); s != nil {
		return s
	}
	s := plan.Analyze(t.ds)
	// A concurrent query may have raced the computation; either result
	// describes the same rows.
	t.stats.CompareAndSwap(nil, s)
	return s
}

// Learned returns the planner's cost-feedback store — shared across
// every table derived by Clone, Filter or ApplyBatch, and safe for
// concurrent use. Expose it for persistence (see SetLearned).
func (t *Table) Learned() *plan.Learned { return t.learned }

// SetLearned replaces the feedback store — the recovery hook for
// serving layers that persist Export()ed planner feedback across
// restarts. Call before the table is shared across goroutines.
func (t *Table) SetLearned(l *plan.Learned) {
	if l != nil {
		t.learned = l
	}
}

// SetQueryCache attaches a full-skyline cache for the planner's cache
// routing: Query memoises the full-table skyline there and answers
// repeat full queries — and provably-sound post-filter constrained
// queries — from it. The cache must describe this table's exact row
// set; attach it before the table is shared across goroutines, and
// never after rows change. When the cache is a *plan.MemoCache,
// ApplyBatch carries it across mutations by delta maintenance (the
// derived table gets an Advance'd memo); any other implementation is
// snapshot-scoped and not inherited.
func (t *Table) SetQueryCache(c plan.Cache) { t.queryCache = c }

// QueryCache returns the cache attached with SetQueryCache, or the
// maintained memo ApplyBatch derived — nil when the table has none.
func (t *Table) QueryCache() plan.Cache { return t.queryCache }

// SkylineResult is the outcome of a skyline computation.
type SkylineResult struct {
	// Rows holds skyline row indexes in emission order.
	Rows []int
	// EmissionSeconds[i] is the virtual time (CPU + 5 ms per page IO)
	// at which Rows[i] was output — the progressiveness profile. An
	// optimally progressive method (sTSS) emits throughout the run; a
	// non-progressive one (BBS+) stamps everything at the end.
	EmissionSeconds []float64
	// Stats summarises the run's simulated cost.
	Stats Stats
	// Metrics is the full JSON-ready counter export of the run (a
	// superset of Stats), as attached to server query responses.
	Metrics core.MetricsExport
	// CacheHit marks a dynamic query answered from the past-result
	// cache (see Dynamic.EnableCache) without touching any index.
	CacheHit bool
}

// Stats summarises a run: simulated page IOs, dominance checks and
// measured CPU time. TotalSeconds charges each IO at the paper's 5 ms.
type Stats struct {
	PageReads  int64
	PageWrites int64
	DomChecks  int64
	CPUSeconds float64
}

// TotalSeconds is CPU plus the simulated IO charge (5 ms per page).
func (s Stats) TotalSeconds() float64 {
	return s.CPUSeconds + float64(s.PageReads+s.PageWrites)*core.DefaultIOCost.Seconds()
}

func wrapResult(res *core.Result) *SkylineResult {
	out := &SkylineResult{
		Stats: Stats{
			PageReads:  res.Metrics.ReadIOs,
			PageWrites: res.Metrics.WriteIOs,
			DomChecks:  res.Metrics.DomChecks,
			CPUSeconds: res.Metrics.CPU.Seconds(),
		},
		Metrics:  res.Metrics.Export(core.DefaultIOCost),
		CacheHit: res.FromCache,
	}
	for _, id := range res.SkylineIDs {
		out.Rows = append(out.Rows, int(id))
	}
	for _, e := range res.Metrics.Emissions {
		out.EmissionSeconds = append(out.EmissionSeconds, e.Time(core.DefaultIOCost).Seconds())
	}
	return out
}
