package tss

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// randOrderT builds a random acyclic preference order over k labelled
// values ("0".."k-1"): edges always point from earlier to later in a
// random permutation.
func randOrderT(rng *rand.Rand, k int, p float64) *Order {
	labels := make([]string, k)
	for i := range labels {
		labels[i] = fmt.Sprint(i)
	}
	o := NewOrder(labels...)
	perm := rng.Perm(k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if rng.Float64() < p {
				o.Prefer(labels[perm[i]], labels[perm[j]])
			}
		}
	}
	return o
}

func randTableT(rng *rand.Rand, n, nTO, poSize int) *Table {
	names := make([]string, nTO)
	for i := range names {
		names[i] = fmt.Sprintf("to%d", i)
	}
	t := NewTable(names, randOrderT(rng, poSize, 0.4))
	for i := 0; i < n; i++ {
		t.MustAdd(randRowT(rng, nTO, poSize).TO, randRowT(rng, nTO, poSize).PO...)
	}
	return t
}

func randRowT(rng *rand.Rand, nTO, poSize int) TableRow {
	r := TableRow{TO: make([]int64, nTO)}
	for d := range r.TO {
		r.TO[d] = int64(rng.Intn(8))
	}
	r.PO = []string{fmt.Sprint(rng.Intn(poSize))}
	return r
}

// TestApplyBatchSemantics checks renumbering, the delta mapping, and
// input validation.
func TestApplyBatchSemantics(t *testing.T) {
	airline := NewOrder("a", "b", "c").Prefer("a", "b").Prefer("b", "c")
	tab := NewTable([]string{"price"}, airline)
	for i, v := range []string{"a", "b", "c", "a"} {
		tab.MustAdd([]int64{int64(10 * i)}, v)
	}

	next, delta, err := tab.ApplyBatch([]int{1, 1, 3}, []TableRow{{TO: []int64{99}, PO: []string{"c"}}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 4 {
		t.Fatalf("receiver mutated: len %d", tab.Len())
	}
	if next.Len() != 3 {
		t.Fatalf("next len %d, want 3", next.Len())
	}
	if delta.OldLen != 4 || delta.NewLen != 3 || delta.Added != 1 {
		t.Fatalf("delta %+v", delta)
	}
	wantMap := []int32{0, -1, 1, -1}
	for i, w := range wantMap {
		if delta.OldToNew[i] != w {
			t.Fatalf("OldToNew[%d] = %d, want %d", i, delta.OldToNew[i], w)
		}
	}
	to, po := next.RowValues(2)
	if to[0] != 99 || po[0] != "c" {
		t.Fatalf("appended row reads %v %v", to, po)
	}

	if _, _, err := tab.ApplyBatch([]int{4}, nil); err == nil {
		t.Fatal("out-of-range remove accepted")
	}
	if _, _, err := tab.ApplyBatch(nil, []TableRow{{TO: []int64{1}, PO: []string{"zz"}}}); err == nil {
		t.Fatal("unknown PO label accepted")
	}
}

// TestApplyDeltaMatchesReprepare: across a chain of random batches the
// incrementally maintained Dynamic answers exactly like a full
// Reprepare, for plain, ideal-point and repeated (cached) queries.
func TestApplyDeltaMatchesReprepare(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := randTableT(rng, 30+rng.Intn(30), 2, 4)
		tab.Seal()
		dyn := tab.PrepareDynamic()
		dyn.EnableCache(8)

		for batch := 0; batch < 5; batch++ {
			var removes []int
			for i := 0; i < tab.Len(); i++ {
				if rng.Intn(4) == 0 {
					removes = append(removes, i)
				}
			}
			var adds []TableRow
			for k := rng.Intn(5); k > 0; k-- {
				adds = append(adds, randRowT(rng, 2, 4))
			}
			next, delta, err := tab.ApplyBatch(removes, adds)
			if err != nil {
				t.Fatal(err)
			}
			next.Seal()
			inc := dyn.ApplyDelta(next, delta)
			full := dyn.Reprepare(next)

			for q := 0; q < 3; q++ {
				order := randOrderT(rng, 4, 0.5)
				a, err := inc.Query(order)
				if err != nil {
					t.Fatal(err)
				}
				b, err := full.Query(order)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(sortedInts(a.Rows)) != fmt.Sprint(sortedInts(b.Rows)) {
					t.Fatalf("seed %d batch %d: incremental %v, reprepare %v", seed, batch, a.Rows, b.Rows)
				}
				if next.Len() > 0 {
					ai, err := inc.QueryAt([]int64{3, 3}, order)
					if err != nil {
						t.Fatal(err)
					}
					bi, err := full.QueryAt([]int64{3, 3}, order)
					if err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(sortedInts(ai.Rows)) != fmt.Sprint(sortedInts(bi.Rows)) {
						t.Fatalf("seed %d batch %d: ideal-point queries diverge", seed, batch)
					}
				}
			}
			// The cache carried over its capacity but not stale entries:
			// a repeat of the same query must now hit.
			order := randOrderT(rng, 4, 0.5)
			if _, err := inc.Query(order); err != nil {
				t.Fatal(err)
			}
			res, err := inc.Query(order)
			if err != nil {
				t.Fatal(err)
			}
			if !res.CacheHit {
				t.Fatalf("seed %d batch %d: repeated query missed the carried-over cache", seed, batch)
			}
			tab, dyn = next, inc
		}
	}
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestCloneSealRaceRegression is the regression test for seal-state
// propagation: sealing a cloned-then-mutated table must be safe while
// the original — sharing the same compiled domains — is answering
// queries. Before Domain.EnableDyadic published the dyadic index
// atomically, this raced under -race.
func TestCloneSealRaceRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := randTableT(rng, 60, 2, 6) // deliberately NOT sealed
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Queries lazily build the dyadic index via UseDyadic.
				if got := tab.Skyline(); len(got) == 0 {
					t.Error("empty skyline")
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		next, delta, err := tab.ApplyBatch([]int{i % tab.Len()}, []TableRow{randRowT(rng, 2, 6)})
		if err != nil {
			t.Fatal(err)
		}
		next.Seal() // shares domains with tab: must not race its queries
		_ = delta
	}
	close(stop)
	wg.Wait()
}
