package tss

import "testing"

// orderStep builds one query order over the flights labels a..d from an
// edge list; edges is applied in slice order, so the same preference
// set can be constructed in different ways.
type orderStep struct {
	edges    [][2]string
	wantHit  bool
	wantRows int // expected skyline size (0 = don't check)
}

func buildOrder(edges [][2]string) *Order {
	o := NewOrder("a", "b", "c", "d")
	for _, e := range edges {
		o.Prefer(e[0], e[1])
	}
	return o
}

// TestCacheTableDriven pins the facade cache's contract: FIFO eviction
// order, hit/miss accounting, capacity clamping, and the canonical-form
// keying promise — the same preference DAG rebuilt differently (edge
// order permuted, duplicate edges) must hit.
func TestCacheTableDriven(t *testing.T) {
	// Distinct single-edge preference orders used as cache keys.
	qA := [][2]string{{"a", "b"}}
	qB := [][2]string{{"b", "a"}}
	qC := [][2]string{{"c", "d"}}
	qD := [][2]string{{"d", "c"}}

	cases := []struct {
		name       string
		capacity   int
		steps      []orderStep
		wantHits   int64
		wantMisses int64
	}{
		{
			name:     "repeat hits",
			capacity: 4,
			steps: []orderStep{
				{edges: qA}, {edges: qA, wantHit: true}, {edges: qA, wantHit: true},
			},
			wantHits: 2, wantMisses: 1,
		},
		{
			name:     "fifo eviction order",
			capacity: 2,
			steps: []orderStep{
				{edges: qA},                // cache: [A]
				{edges: qB},                // cache: [A B]
				{edges: qC},                // A evicted, cache: [B C]
				{edges: qB, wantHit: true}, // FIFO, not LRU: B stays put
				{edges: qC, wantHit: true},
				{edges: qA},                // miss: evicts B, cache: [C A]
				{edges: qC, wantHit: true}, // C still resident
				{edges: qB},                // miss again
			},
			wantHits: 3, wantMisses: 5,
		},
		{
			name:     "capacity clamps to one",
			capacity: 0, // EnableCache clamps < 1 to 1
			steps: []orderStep{
				{edges: qA},
				{edges: qA, wantHit: true},
				{edges: qB}, // evicts A
				{edges: qA}, // miss
			},
			wantHits: 1, wantMisses: 3,
		},
		{
			name:     "canonical form keying",
			capacity: 4,
			steps: []orderStep{
				{edges: [][2]string{{"a", "b"}, {"c", "d"}, {"a", "c"}}},
				// Same DAG, edges permuted.
				{edges: [][2]string{{"a", "c"}, {"a", "b"}, {"c", "d"}}, wantHit: true},
				// Same DAG, duplicate edge inserted.
				{edges: [][2]string{{"c", "d"}, {"a", "b"}, {"a", "b"}, {"a", "c"}}, wantHit: true},
				// A genuinely different DAG misses.
				{edges: [][2]string{{"a", "b"}, {"c", "d"}}},
			},
			wantHits: 2, wantMisses: 2,
		},
		{
			name:     "empty order is a key too",
			capacity: 2,
			steps: []orderStep{
				{edges: nil, wantRows: 8},
				{edges: nil, wantHit: true, wantRows: 8},
				{edges: qD},
				{edges: qD, wantHit: true},
			},
			wantHits: 2, wantMisses: 2,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dyn := flightsTable(order1()).PrepareDynamic()
			dyn.EnableCache(c.capacity)
			for i, step := range c.steps {
				res, err := dyn.Query(buildOrder(step.edges))
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				if res.CacheHit != step.wantHit {
					t.Fatalf("step %d: CacheHit=%v, want %v", i, res.CacheHit, step.wantHit)
				}
				if step.wantHit && res.Stats.PageReads != 0 {
					t.Fatalf("step %d: cache hit charged %d page reads", i, res.Stats.PageReads)
				}
				if step.wantRows > 0 && len(res.Rows) != step.wantRows {
					t.Fatalf("step %d: %d rows, want %d", i, len(res.Rows), step.wantRows)
				}
			}
			hits, misses := dyn.CacheStats()
			if hits != c.wantHits || misses != c.wantMisses {
				t.Fatalf("stats hits=%d misses=%d, want %d/%d", hits, misses, c.wantHits, c.wantMisses)
			}
		})
	}
}

// TestCacheHitMatchesComputation: a cached answer must equal the
// freshly computed one, row for row.
func TestCacheHitMatchesComputation(t *testing.T) {
	dyn := flightsTable(order1()).PrepareDynamic()
	dyn.EnableCache(2)
	q := func() *Order { return buildOrder([][2]string{{"d", "a"}, {"c", "a"}}) }
	fresh, err := dyn.Query(q())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := dyn.Query(q())
	if err != nil {
		t.Fatal(err)
	}
	if !cached.CacheHit || fresh.CacheHit {
		t.Fatalf("hit flags: fresh=%v cached=%v", fresh.CacheHit, cached.CacheHit)
	}
	if len(fresh.Rows) != len(cached.Rows) {
		t.Fatalf("cached %d rows, fresh %d", len(cached.Rows), len(fresh.Rows))
	}
	for i := range fresh.Rows {
		if fresh.Rows[i] != cached.Rows[i] {
			t.Fatalf("row %d differs: %d vs %d", i, fresh.Rows[i], cached.Rows[i])
		}
	}
}

// TestCacheIgnoresIdealQueries: fully dynamic (ideal-point) queries
// bypass the preference-DAG cache entirely — they never hit and never
// pollute the stats.
func TestCacheIgnoresIdealQueries(t *testing.T) {
	dyn := flightsTable(order1()).PrepareDynamic()
	dyn.EnableCache(4)
	q := func() *Order { return buildOrder([][2]string{{"a", "b"}}) }
	if _, err := dyn.QueryAt([]int64{1200, 1}, q()); err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.QueryAt([]int64{1200, 1}, q()); err != nil {
		t.Fatal(err)
	}
	if hits, misses := dyn.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("ideal queries touched the cache: hits=%d misses=%d", hits, misses)
	}
}

// TestReprepareCarriesCacheConfig: the re-prepare hook starts with a
// fresh cache of the same capacity.
func TestReprepareCarriesCacheConfig(t *testing.T) {
	table := flightsTable(order1())
	dyn := table.PrepareDynamic()
	dyn.EnableCache(3)
	if _, err := dyn.Query(buildOrder(nil)); err != nil {
		t.Fatal(err)
	}

	grown := table.Clone()
	grown.MustAdd([]int64{100, 0}, "a")
	nd := dyn.Reprepare(grown)
	if nd.Table() != grown {
		t.Fatal("Reprepare must bind the new table")
	}
	if hits, misses := nd.CacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("re-prepared cache not fresh: %d/%d", hits, misses)
	}
	// The cache is live (capacity carried over): repeat query hits.
	if _, err := nd.Query(buildOrder(nil)); err != nil {
		t.Fatal(err)
	}
	res, err := nd.Query(buildOrder(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("capacity not carried over: repeat query missed")
	}
	// And the new snapshot sees the new row.
	found := false
	for _, r := range res.Rows {
		if to, _ := grown.RowValues(r); to[0] == 100 {
			found = true
		}
	}
	if !found {
		t.Fatal("re-prepared database misses the appended row")
	}
	// The original Dynamic still answers from the old rows.
	old, err := dyn.Query(buildOrder(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(old.Rows) == len(res.Rows) {
		t.Fatalf("old snapshot changed: %d rows vs %d", len(old.Rows), len(res.Rows))
	}
}

// TestFilterSnapshot: Filter copies surviving rows with consecutive
// renumbering and leaves the original untouched.
func TestFilterSnapshot(t *testing.T) {
	table := flightsTable(order1())
	kept := table.Filter(func(row int) bool { return row%2 == 0 })
	if table.Len() != 10 || kept.Len() != 5 {
		t.Fatalf("lens: %d / %d", table.Len(), kept.Len())
	}
	for i := 0; i < kept.Len(); i++ {
		wantTO, wantPO := table.RowValues(2 * i)
		gotTO, gotPO := kept.RowValues(i)
		if wantTO[0] != gotTO[0] || wantTO[1] != gotTO[1] || wantPO[0] != gotPO[0] {
			t.Fatalf("row %d: got %v/%v want %v/%v", i, gotTO, gotPO, wantTO, wantPO)
		}
	}
	// Renumbered ids stay consistent with skyline row indexes.
	for _, r := range kept.Skyline() {
		if r < 0 || r >= kept.Len() {
			t.Fatalf("skyline row %d out of range", r)
		}
	}
	// Appending to the filtered snapshot leaves the original alone.
	kept.MustAdd([]int64{1, 1}, "a")
	if table.Len() != 10 {
		t.Fatalf("original grew to %d", table.Len())
	}
}
