package tss

import "testing"

func TestQueryAtFullyDynamic(t *testing.T) {
	table := flightsTable(order1())
	dyn := table.PrepareDynamic()

	// A traveller who wants a fare close to 1200 with exactly one stop
	// (maybe a deliberate layover) and prefers airline a to everyone.
	pref := NewOrder("a", "b", "c", "d").
		Prefer("a", "b").Prefer("a", "c").Prefer("a", "d")
	res, err := dyn.QueryAt([]int64{1200, 1}, pref)
	if err != nil {
		t.Fatal(err)
	}
	// p4 (1200, 1, b) sits exactly on the ideal point: distance (0,0).
	// Only an a-ticket at distance (0,0) could beat it; none exists, so
	// p4 must be in the skyline.
	found := false
	for _, row := range res.Rows {
		if row == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("row 3 (p4, on the ideal point) missing from %v", res.Rows)
	}
	// p2 (2000, 0, a) is dominated by p1 (1800, 0, a): both 1 stop away
	// from the ideal stops, p1 closer in price (600 vs 800).
	for _, row := range res.Rows {
		if row == 1 {
			t.Errorf("row 1 (p2) should be dominated in the dynamic space")
		}
	}
}

func TestQueryAtValidation(t *testing.T) {
	table := flightsTable(order1())
	dyn := table.PrepareDynamic()
	q := NewOrder("a", "b", "c", "d")
	if _, err := dyn.QueryAt([]int64{1}, q); err == nil {
		t.Error("wrong ideal arity must fail")
	}
	if _, err := dyn.QueryAt([]int64{-1, 0}, q); err == nil {
		t.Error("negative ideal must fail")
	}
	if _, err := dyn.QueryAt([]int64{0, 0}); err == nil {
		t.Error("missing orders must fail")
	}
}

func TestFacadeCache(t *testing.T) {
	table := flightsTable(order1())
	dyn := table.PrepareDynamic()
	dyn.EnableCache(8)

	q := func() *Order { return NewOrder("a", "b", "c", "d").Prefer("b", "a") }
	r1, err := dyn.Query(q())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dyn.Query(q())
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := dyn.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatal("cached result differs")
	}
	if r2.Stats.PageReads != 0 {
		t.Error("cache hit must not read pages")
	}
}
