package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSnapshot(version int64, n int) *Snapshot {
	s := &Snapshot{
		Version: version,
		Schema: Schema{
			TOColumns: []string{"price", "stops"},
			Orders: []OrderSchema{{
				Name:   "airline",
				Values: []string{"a", "b", "c", "d"},
				Edges:  [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}},
			}},
		},
		CacheCapacity: 16,
	}
	rng := rand.New(rand.NewSource(version))
	to0 := make([]int64, n)
	to1 := make([]int64, n)
	po0 := make([]int32, n)
	for i := 0; i < n; i++ {
		to0[i] = int64(rng.Intn(2000))
		to1[i] = int64(rng.Intn(4))
		po0[i] = int32(rng.Intn(4))
	}
	s.Rows = Rows{TO: [][]int64{to0, to1}, PO: [][]int32{po0}}
	return s
}

func sampleMutation(version int64, remove []int32, add int) *Mutation {
	m := &Mutation{Version: version, Remove: remove}
	rng := rand.New(rand.NewSource(version * 31))
	to0 := make([]int64, add)
	to1 := make([]int64, add)
	po0 := make([]int32, add)
	for i := 0; i < add; i++ {
		to0[i] = int64(rng.Intn(2000))
		to1[i] = int64(rng.Intn(4))
		po0[i] = int32(rng.Intn(4))
	}
	m.Add = Rows{TO: [][]int64{to0, to1}, PO: [][]int32{po0}}
	return m
}

func engines(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	diskNoSync, err := OpenDisk(t.TempDir(), DiskOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { diskNoSync.Close() })
	return map[string]Store{"mem": NewMem(), "disk": disk, "disk-nofsync": diskNoSync}
}

// TestStoreRoundTrip: snapshot + logged mutations load back as the
// mutations' net effect, for every engine.
func TestStoreRoundTrip(t *testing.T) {
	for engine, st := range engines(t) {
		t.Run(engine, func(t *testing.T) {
			if _, err := st.Load("absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load(absent) = %v, want ErrNotFound", err)
			}
			s := sampleSnapshot(0, 10)
			if err := st.SaveSnapshot("flights", s); err != nil {
				t.Fatal(err)
			}
			// Two batches: drop rows 0,3, add 2; then add 1.
			if err := st.AppendMutation("flights", sampleMutation(1, []int32{0, 3}, 2)); err != nil {
				t.Fatal(err)
			}
			if err := st.AppendMutation("flights", sampleMutation(2, nil, 1)); err != nil {
				t.Fatal(err)
			}

			got, err := st.Load("flights")
			if err != nil {
				t.Fatal(err)
			}
			// Independently replay over the original.
			want := sampleSnapshot(0, 10)
			if err := applyMutation(want, sampleMutation(1, []int32{0, 3}, 2)); err != nil {
				t.Fatal(err)
			}
			if err := applyMutation(want, sampleMutation(2, nil, 1)); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("loaded state diverges:\n got %+v\nwant %+v", got, want)
			}
			if got.Version != 2 || got.Rows.N() != 11 {
				t.Fatalf("version %d rows %d", got.Version, got.Rows.N())
			}

			names, err := st.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != "flights" {
				t.Fatalf("List = %v", names)
			}

			// Checkpoint: save at current state, log truncates.
			if err := st.SaveSnapshot("flights", got); err != nil {
				t.Fatal(err)
			}
			size, err := st.LogSize("flights")
			if err != nil {
				t.Fatal(err)
			}
			if size > int64(len(walHeader())) {
				t.Fatalf("log not truncated: %d bytes", size)
			}
			reloaded, err := st.Load("flights")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(reloaded, got) {
				t.Fatal("checkpointed state diverges")
			}

			if err := st.Drop("flights"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Load("flights"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Load after Drop = %v", err)
			}
		})
	}
}

// TestAppendWithoutSnapshot: the WAL only exists below a snapshot.
func TestAppendWithoutSnapshot(t *testing.T) {
	for engine, st := range engines(t) {
		t.Run(engine, func(t *testing.T) {
			err := st.AppendMutation("ghost", sampleMutation(1, nil, 1))
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("append to missing table = %v", err)
			}
		})
	}
}

// TestDiskSurvivesReopen: a fresh Disk over the same directory sees
// everything — the actual restart path.
func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot("t", sampleSnapshot(0, 5)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMutation("t", sampleMutation(1, []int32{1}, 3)); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s, err := st2.Load("t")
	if err != nil {
		t.Fatal(err)
	}
	if s.Version != 1 || s.Rows.N() != 7 {
		t.Fatalf("reopened state: version %d rows %d", s.Version, s.Rows.N())
	}
	// Appends continue where the log left off.
	if err := st2.AppendMutation("t", sampleMutation(2, nil, 1)); err != nil {
		t.Fatal(err)
	}
	s2, err := st2.Load("t")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 2 || s2.Rows.N() != 8 {
		t.Fatalf("after second epoch: version %d rows %d", s2.Version, s2.Rows.N())
	}
}

// TestCrashWindowSnapshotAheadOfLog: a crash between snapshot
// replacement and WAL truncation leaves log records the snapshot
// already absorbed; recovery skips them.
func TestCrashWindowSnapshotAheadOfLog(t *testing.T) {
	base := sampleSnapshot(0, 6)
	m1 := sampleMutation(1, []int32{2}, 2)
	checkpointed := sampleSnapshot(0, 6)
	if err := applyMutation(checkpointed, sampleMutation(1, []int32{2}, 2)); err != nil {
		t.Fatal(err)
	}
	snapImg, err := EncodeSnapshot(checkpointed) // version 1 snapshot
	if err != nil {
		t.Fatal(err)
	}
	wal := AppendWALRecord(walHeader(), m1) // stale record, version 1
	got, _, err := loadImages(snapImg, wal)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, checkpointed) {
		t.Fatal("stale WAL record was re-applied")
	}
	_ = base

	// A gap, by contrast, is corruption: snapshot v0 + record v2.
	baseImg, err := EncodeSnapshot(sampleSnapshot(0, 6))
	if err != nil {
		t.Fatal(err)
	}
	walGap := AppendWALRecord(walHeader(), sampleMutation(2, nil, 1))
	if _, _, err := loadImages(baseImg, walGap); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("version gap accepted: %v", err)
	}
}

// TestWALTailCorruption: every flavour of damaged tail errors with
// ErrCorrupt and never panics.
func TestWALTailCorruption(t *testing.T) {
	wal := walHeader()
	wal = AppendWALRecord(wal, sampleMutation(1, nil, 2))
	wal = AppendWALRecord(wal, sampleMutation(2, []int32{0}, 1))
	count := func(b []byte) (int, error) {
		n := 0
		err := ReplayWAL(b, func(*Mutation) error { n++; return nil })
		return n, err
	}
	if n, err := count(wal); err != nil || n != 2 {
		t.Fatalf("intact WAL: n=%d err=%v", n, err)
	}
	// Truncations at every byte offset inside the records must error —
	// except exactly at a record boundary, where the shorter log is
	// simply a valid WAL with fewer records.
	boundaries := map[int]bool{}
	off := len(walHeader())
	boundaries[off] = true
	for off < len(wal) {
		n := int(binary.LittleEndian.Uint32(wal[off:]))
		off += 8 + n
		boundaries[off] = true
	}
	for cut := len(walHeader()) + 1; cut < len(wal); cut++ {
		n, err := count(wal[:cut])
		if boundaries[cut] {
			if err != nil {
				t.Fatalf("clean prefix at %d rejected: %v", cut, err)
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d accepted: n=%d err=%v", cut, n, err)
		}
	}
	// Flip one payload byte: checksum must catch it.
	flipped := append([]byte(nil), wal...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := count(flipped); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip accepted: %v", err)
	}
	// Hostile length prefix.
	hostile := append(append([]byte(nil), walHeader()...), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	if _, err := count(hostile); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile length accepted: %v", err)
	}
	// Bad magic / missing header.
	if _, err := count([]byte("XXXX\x01\x00")); !errors.Is(err, ErrCorrupt) {
		t.Fatal("bad magic accepted")
	}
	if _, err := count(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("empty WAL accepted")
	}
}

// TestSnapshotCorruption: header, checksum and structural damage all
// error with ErrCorrupt.
func TestSnapshotCorruption(t *testing.T) {
	img, err := EncodeSnapshot(sampleSnapshot(3, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSnapshot(img); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 5, len(img) / 2, len(img) - 1} {
		if _, err := DecodeSnapshot(img[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for _, pos := range []int{0, 6, len(img) / 2, len(img) - 5} {
		bad := append([]byte(nil), img...)
		bad[pos] ^= 0x01
		if _, err := DecodeSnapshot(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
	// Trailing garbage breaks the checksum-over-prefix property.
	if _, err := DecodeSnapshot(append(append([]byte(nil), img...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing byte accepted")
	}
}

// TestEncodingsAreCanonical: decode ∘ encode is the identity on
// values, and encode ∘ decode is the identity on accepted bytes.
func TestEncodingsAreCanonical(t *testing.T) {
	s := sampleSnapshot(7, 12)
	img, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := EncodeSnapshot(dec)
	if err != nil {
		t.Fatal(err)
	}
	if string(img) != string(img2) {
		t.Fatal("snapshot re-encoding diverges")
	}

	m := sampleMutation(4, []int32{1, 2}, 3)
	mb := EncodeMutation(m)
	md, err := DecodeMutation(mb)
	if err != nil {
		t.Fatal(err)
	}
	if string(EncodeMutation(md)) != string(mb) {
		t.Fatal("mutation re-encoding diverges")
	}
}

// TestStatsRecordRoundTrip: the planner-feedback section survives the
// encode/decode cycle, a full engine save/append/load cycle (WAL replay
// leaves it untouched — mutations carry no observations), and rejects
// the non-canonical orderings the encoder refuses to produce.
func TestStatsRecordRoundTrip(t *testing.T) {
	s := sampleSnapshot(0, 6)
	s.Stats = &TableStatsRecord{
		SkyFrac: 0.25, SkyFracN: 7,
		Algos: []AlgoCostRecord{{Name: "bnl", Mult: 2.5, N: 4}, {Name: "stss", Mult: 0.5, N: 11}},
	}
	img, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Stats, s.Stats) {
		t.Fatalf("stats round-trip: got %+v want %+v", dec.Stats, s.Stats)
	}
	if img2, err := EncodeSnapshot(dec); err != nil || string(img2) != string(img) {
		t.Fatalf("stats re-encoding diverges (err %v)", err)
	}

	for engine, st := range engines(t) {
		t.Run(engine, func(t *testing.T) {
			save := sampleSnapshot(0, 6)
			save.Stats = s.Stats
			if err := st.SaveSnapshot("flights", save); err != nil {
				t.Fatal(err)
			}
			if err := st.AppendMutation("flights", sampleMutation(1, []int32{0}, 1)); err != nil {
				t.Fatal(err)
			}
			got, err := st.Load("flights")
			if err != nil {
				t.Fatal(err)
			}
			if got.Version != 1 || !reflect.DeepEqual(got.Stats, s.Stats) {
				t.Fatalf("engine round-trip: version %d stats %+v", got.Version, got.Stats)
			}
		})
	}

	unsorted := sampleSnapshot(0, 2)
	unsorted.Stats = &TableStatsRecord{Algos: []AlgoCostRecord{{Name: "stss"}, {Name: "bnl"}}}
	if _, err := EncodeSnapshot(unsorted); err == nil {
		t.Fatal("unsorted stats algos encoded")
	}
	dup := sampleSnapshot(0, 2)
	dup.Stats = &TableStatsRecord{Algos: []AlgoCostRecord{{Name: "bnl"}, {Name: "bnl"}}}
	if _, err := EncodeSnapshot(dup); err == nil {
		t.Fatal("duplicate stats algos encoded")
	}
}

// v1SnapshotImage derives a pre-planner (format 1) snapshot image by
// byte surgery on the v2 encoding: drop the stats flag byte, rewrite
// the version field, restamp the CRC. This is exactly what PR 3's
// encoder produced.
func v1SnapshotImage(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	if s.Stats != nil {
		t.Fatal("v1 images cannot carry stats")
	}
	img, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	return asV1Snapshot(img)
}

// asV1Snapshot rewrites a stats-less v2 image into its v1 form: drop
// the stats flag byte, rewrite the version, restamp the CRC.
func asV1Snapshot(img []byte) []byte {
	const statsFlagOff = 4 + 2 + 8 + 4
	body := append([]byte(nil), img[:statsFlagOff]...)
	body = append(body, img[statsFlagOff+1:len(img)-4]...)
	binary.LittleEndian.PutUint16(body[4:6], 1)
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// v1WALImage rewrites a WAL image's header version to 1 (the record
// encoding never changed between the formats).
func v1WALImage(w []byte) []byte {
	out := append([]byte(nil), w...)
	binary.LittleEndian.PutUint16(out[4:6], 1)
	return out
}

// TestFormatV1BackCompat: pre-planner stores stay loadable — a format-1
// snapshot decodes (Stats nil), re-encodes byte-identically (canonical
// encoding), replays format-1 WAL records, and a fresh save upgrades to
// format 2.
func TestFormatV1BackCompat(t *testing.T) {
	want := sampleSnapshot(3, 8)
	img1 := v1SnapshotImage(t, want)

	dec, err := DecodeSnapshot(img1)
	if err != nil {
		t.Fatalf("format-1 snapshot rejected: %v", err)
	}
	if dec.Stats != nil || dec.Version != want.Version || !reflect.DeepEqual(dec.Rows, want.Rows) {
		t.Fatalf("format-1 decode mismatch: %+v", dec)
	}
	re, err := EncodeSnapshot(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re, img1) {
		t.Fatal("format-1 snapshot does not re-encode canonically")
	}

	// WAL replay over the v1 pair, through the shared recovery path.
	wal := walHeader()
	wal = AppendWALRecord(wal, sampleMutation(4, []int32{0}, 2))
	s, _, err := loadImages(img1, v1WALImage(wal))
	if err != nil {
		t.Fatalf("v1 snapshot + v1 WAL failed recovery: %v", err)
	}
	if s.Version != 4 {
		t.Fatalf("recovered version %d, want 4", s.Version)
	}

	// A disk store seeded with v1 files loads, and the next checkpoint
	// rewrites format 2.
	dir := t.TempDir()
	tdir := filepath.Join(dir, "flights")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tdir, "snapshot.tss"), img1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tdir, "wal.log"), v1WALImage(wal), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	loaded, err := st.Load("flights")
	if err != nil {
		t.Fatalf("load v1 table: %v", err)
	}
	if loaded.Version != 4 {
		t.Fatalf("loaded version %d, want 4", loaded.Version)
	}
	loaded.Stats = &TableStatsRecord{SkyFrac: 0.5, SkyFracN: 1}
	if err := st.SaveSnapshot("flights", loaded); err != nil {
		t.Fatal(err)
	}
	upgraded, err := os.ReadFile(filepath.Join(tdir, "snapshot.tss"))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint16(upgraded[4:6]); v != 2 {
		t.Fatalf("checkpoint left format %d, want 2", v)
	}
}

// TestStatsRecordRejectsHostileFloats: CRC-valid images carrying NaN or
// out-of-range stats floats must not reach the planner.
func TestStatsRecordRejectsHostileFloats(t *testing.T) {
	for name, st := range map[string]*TableStatsRecord{
		"nan-frac":  {SkyFrac: math.NaN(), SkyFracN: 1},
		"neg-frac":  {SkyFrac: -0.5, SkyFracN: 1},
		"big-frac":  {SkyFrac: 1.5, SkyFracN: 1},
		"nan-mult":  {Algos: []AlgoCostRecord{{Name: "stss", Mult: math.NaN(), N: 1}}},
		"inf-mult":  {Algos: []AlgoCostRecord{{Name: "stss", Mult: math.Inf(1), N: 1}}},
		"neg-mult":  {Algos: []AlgoCostRecord{{Name: "stss", Mult: -1, N: 1}}},
		"neg-count": {SkyFracN: -1},
	} {
		t.Run(name, func(t *testing.T) {
			s := sampleSnapshot(0, 2)
			s.Stats = st
			if _, err := EncodeSnapshot(s); err == nil {
				t.Fatal("encoder accepted a hostile stats record")
			}
			// Force the bytes past the encoder via a valid image and
			// surgical float replacement, then re-CRC: the decoder must
			// reject what the encoder refuses to produce.
			good := sampleSnapshot(0, 2)
			good.Stats = &TableStatsRecord{SkyFrac: 0.5, SkyFracN: 1,
				Algos: []AlgoCostRecord{{Name: "stss", Mult: 1, N: 1}}}
			img, err := EncodeSnapshot(good)
			if err != nil {
				t.Fatal(err)
			}
			const fracOff = 4 + 2 + 8 + 4 + 1
			binary.LittleEndian.PutUint64(img[fracOff:], math.Float64bits(math.NaN()))
			body := img[:len(img)-4]
			img = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
			if _, err := DecodeSnapshot(img); err == nil || !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decoder accepted NaN stats: %v", err)
			}
		})
	}
}

// TestDiskCrashTornAppend simulates a crash mid-append: the torn
// (unacknowledged) final record is discarded, the log is truncated
// back to its last complete record, every acknowledged batch survives,
// and appending continues cleanly after the cut.
func TestDiskCrashTornAppend(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSnapshot("t", sampleSnapshot(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMutation("t", sampleMutation(1, nil, 1)); err != nil { // acknowledged
		t.Fatal(err)
	}
	if err := st.AppendMutation("t", sampleMutation(2, nil, 2)); err != nil { // will be torn
		t.Fatal(err)
	}
	st.Close()

	walPath := filepath.Join(dir, "t", "wal.log")
	img, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, img[:len(img)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s, err := st2.Load("t")
	if err != nil {
		t.Fatalf("torn tail not recovered: %v", err)
	}
	if s.Version != 1 || s.Rows.N() != 5 {
		t.Fatalf("recovered version %d rows %d, want 1 / 5 (torn batch dropped)", s.Version, s.Rows.N())
	}
	// The garbage is gone from disk: re-appending version 2 and
	// reloading must see it, not abort at mid-file damage.
	if err := st2.AppendMutation("t", sampleMutation(2, nil, 2)); err != nil {
		t.Fatal(err)
	}
	s2, err := st2.Load("t")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 2 || s2.Rows.N() != 7 {
		t.Fatalf("after re-append: version %d rows %d", s2.Version, s2.Rows.N())
	}

	// A *complete* final record with a flipped payload byte is
	// corruption of possibly-acknowledged state — never tolerated.
	img, err = os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-1] ^= 0xff
	if err := os.WriteFile(walPath, img, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if _, err := st3.Load("t"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CRC-corrupt tail loaded: %v", err)
	}
}

// TestWALRecordFrame pins the frame layout: length, CRC, payload.
func TestWALRecordFrame(t *testing.T) {
	m := sampleMutation(1, nil, 0)
	payload := EncodeMutation(m)
	rec := AppendWALRecord(nil, m)
	if got := binary.LittleEndian.Uint32(rec); int(got) != len(payload) {
		t.Fatalf("length prefix %d, payload %d", got, len(payload))
	}
	if got := binary.LittleEndian.Uint32(rec[4:]); got != crc32.ChecksumIEEE(payload) {
		t.Fatal("CRC prefix mismatch")
	}
	if string(rec[8:]) != string(payload) {
		t.Fatal("payload mismatch")
	}
}

// TestTableNameEscaping: names with separators and dots stay inside
// the data dir.
func TestTableNameEscaping(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	weird := []string{"a/b", "..", "c d", "π"}
	for _, name := range weird {
		if err := st.SaveSnapshot(name, sampleSnapshot(0, 1)); err != nil {
			t.Fatalf("save %q: %v", name, err)
		}
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(names) != fmt.Sprint([]string{"..", "a/b", "c d", "π"}) {
		t.Fatalf("List = %v", names)
	}
	for _, name := range weird {
		if _, err := st.Load(name); err != nil {
			t.Fatalf("load %q: %v", name, err)
		}
	}
	// Nothing escaped the root.
	entries, err := os.ReadDir(filepath.Join(dir, ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(dir) {
			t.Fatalf("stray entry %q outside data dir", e.Name())
		}
	}
}
