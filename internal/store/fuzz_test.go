package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzz seeds: a few valid images plus systematic corruptions of them,
// so the fuzzer starts from both sides of the accept/reject boundary.
func snapshotSeeds() [][]byte {
	var seeds [][]byte
	withStats := sampleSnapshot(5, 4)
	withStats.Stats = &TableStatsRecord{
		SkyFrac: 0.125, SkyFracN: 9,
		Algos: []AlgoCostRecord{{Name: "bnl", Mult: 1.5, N: 3}, {Name: "stss", Mult: 0.75, N: 12}},
	}
	for _, s := range []*Snapshot{
		sampleSnapshot(0, 0),
		sampleSnapshot(3, 8),
		withStats,
		{Version: 1, Schema: Schema{TOColumns: []string{"x"}}, Rows: Rows{TO: [][]int64{{1, 2, 3}}}},
	} {
		img, err := EncodeSnapshot(s)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, img)
		seeds = append(seeds, img[:len(img)/2])
		flipped := append([]byte(nil), img...)
		flipped[len(flipped)/3] ^= 0x40
		seeds = append(seeds, flipped)
		if s.Stats == nil {
			seeds = append(seeds, asV1Snapshot(img)) // pre-planner format
		}
	}
	return seeds
}

func walSeeds() [][]byte {
	w := walHeader()
	w = AppendWALRecord(w, sampleMutation(1, nil, 2))
	w = AppendWALRecord(w, sampleMutation(2, []int32{0, 1}, 1))
	flipped := append([]byte(nil), w...)
	flipped[len(flipped)-2] ^= 0x01
	return [][]byte{
		walHeader(),
		w,
		w[:len(w)-5],
		flipped,
		v1WALImage(w), // pre-planner header, identical records
	}
}

// TestRegenSeedCorpus rewrites the committed seed corpora under
// testdata/fuzz (run with STORE_REGEN_CORPUS=1 after changing the
// encodings or the seed constructors). The committed files let CI and
// plain `go test` exercise the boundary cases without -fuzz.
func TestRegenSeedCorpus(t *testing.T) {
	if os.Getenv("STORE_REGEN_CORPUS") == "" {
		t.Skip("set STORE_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	for target, seeds := range map[string][][]byte{
		"FuzzSnapshotRoundTrip": snapshotSeeds(),
		"FuzzWALReplay":         walSeeds(),
	} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, b := range seeds {
			content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// FuzzSnapshotRoundTrip: DecodeSnapshot must never panic; every image
// it accepts must re-encode to exactly the input bytes (canonical
// encoding), and every rejection must be a wrapped ErrCorrupt.
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, s := range snapshotSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSnapshot(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not ErrCorrupt: %v", err)
			}
			return
		}
		img, err := EncodeSnapshot(s)
		if err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		if !bytes.Equal(img, b) {
			t.Fatalf("non-canonical encoding accepted:\n in  %x\n out %x", b, img)
		}
	})
}

// FuzzWALReplay: ReplayWAL must never panic on arbitrary bytes —
// truncated or corrupt tails error with ErrCorrupt — and any accepted
// image must re-frame, record by record, to exactly the input.
func FuzzWALReplay(f *testing.F) {
	for _, s := range walSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		var muts []*Mutation
		err := ReplayWAL(b, func(m *Mutation) error {
			muts = append(muts, m)
			return nil
		})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection not ErrCorrupt: %v", err)
			}
			return
		}
		// Re-frame under the input's own header (format 1 WALs are
		// accepted and must round-trip byte-identically too).
		out := append([]byte(nil), b[:6]...)
		for _, m := range muts {
			out = AppendWALRecord(out, m)
		}
		if !bytes.Equal(out, b) {
			t.Fatalf("non-canonical WAL accepted:\n in  %x\n out %x", b, out)
		}
	})
}
