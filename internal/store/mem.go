package store

import (
	"fmt"
	"sort"
	"sync"
)

// Mem is the in-memory engine: durable only for the process lifetime,
// but byte-for-byte faithful to the disk engine — it stores the same
// encoded snapshot and WAL images and replays them on Load, so tests
// of recovery semantics run against real encodings without touching a
// filesystem.
type Mem struct {
	mu     sync.Mutex
	tables map[string]*memTable
	meta   map[string][]byte // framed metadata blobs, by key
}

type memTable struct {
	snap []byte // EncodeSnapshot image
	wal  []byte // header + records
}

// NewMem creates an empty in-memory store.
func NewMem() *Mem { return &Mem{tables: map[string]*memTable{}, meta: map[string][]byte{}} }

// List implements Store.
func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.tables))
	for name := range m.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Load implements Store.
func (m *Mem) Load(name string) (*Snapshot, error) {
	m.mu.Lock()
	t, ok := m.tables[name]
	var snap, wal []byte
	if ok {
		snap = append([]byte(nil), t.snap...)
		wal = append([]byte(nil), t.wal...)
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	s, _, err := loadImages(snap, wal)
	return s, err
}

// loadImages decodes a snapshot image and replays a WAL image over it
// — the recovery path shared by both engines. Records at or below the
// snapshot's version are skipped: they re-describe state the snapshot
// already holds (the legitimate crash window between snapshot
// replacement and log truncation). An incomplete final frame — an
// append torn by a crash before it was acknowledged — is discarded;
// its byte count is returned so the disk engine can truncate it away
// before appending anything after it.
func loadImages(snapImg, walImg []byte) (*Snapshot, int, error) {
	s, err := DecodeSnapshot(snapImg)
	if err != nil {
		return nil, 0, err
	}
	if len(walImg) == 0 {
		return s, 0, nil
	}
	dropped, err := replayWALRecover(walImg, func(mu *Mutation) error {
		if mu.Version <= s.Version {
			return nil
		}
		return applyMutation(s, mu)
	})
	if err != nil {
		return nil, 0, err
	}
	return s, dropped, nil
}

// SaveSnapshot implements Store.
func (m *Mem) SaveSnapshot(name string, s *Snapshot) error {
	img, err := EncodeSnapshot(s)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tables[name] = &memTable{snap: img, wal: walHeader()}
	return nil
}

// AppendMutation implements Store.
func (m *Mem) AppendMutation(name string, mu *Mutation) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if len(t.wal) == 0 {
		t.wal = walHeader()
	}
	t.wal = AppendWALRecord(t.wal, mu)
	return nil
}

// LogSize implements Store.
func (m *Mem) LogSize(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return int64(len(t.wal)), nil
}

// ReadLog implements Store.
func (m *Mem) ReadLog(name string, after int64) ([]*Mutation, error) {
	m.mu.Lock()
	t, ok := m.tables[name]
	var snap, wal []byte
	if ok {
		snap = append([]byte(nil), t.snap...)
		wal = append([]byte(nil), t.wal...)
	}
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	base, err := peekSnapshotVersion(snap)
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	return readLogTail(base, wal, after)
}

// SaveMeta implements Store.
func (m *Mem) SaveMeta(key string, data []byte) error {
	img := encodeMeta(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.meta[key] = img
	return nil
}

// LoadMeta implements Store.
func (m *Mem) LoadMeta(key string) ([]byte, error) {
	m.mu.Lock()
	img, ok := m.meta[key]
	img = append([]byte(nil), img...)
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: meta %q", ErrNotFound, key)
	}
	return decodeMeta(img)
}

// Drop implements Store.
func (m *Mem) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.tables, name)
	return nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
