package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Disk persists each table in its own directory under the data dir:
//
//	<dir>/<escaped name>/snapshot.tss   columnar snapshot (CRC-checked)
//	<dir>/<escaped name>/wal.log        write-ahead log of mutations
//
// Snapshot replacement is atomic (write-to-temp + rename, directory
// fsynced), and the WAL is truncated only *after* the new snapshot is
// in place; a crash between the two leaves a snapshot ahead of its log,
// which recovery handles by skipping already-absorbed records. With
// Fsync enabled (the default) every WAL append reaches stable storage
// before the batch is acknowledged.
type Disk struct {
	dir   string
	fsync bool

	mu   sync.Mutex
	wals map[string]*os.File // open append handles, one per table
}

// DiskOptions tunes the disk engine.
type DiskOptions struct {
	// NoFsync skips the fsync after each WAL append and snapshot write.
	// Batches then survive process crashes (the page cache persists)
	// but not OS or power failures. The store benchmark quantifies the
	// latency difference.
	NoFsync bool
}

// OpenDisk opens (creating if necessary) a disk store rooted at dir.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Disk{dir: dir, fsync: !opts.NoFsync, wals: map[string]*os.File{}}, nil
}

func (d *Disk) tableDir(name string) string {
	return filepath.Join(d.dir, escapeName(name))
}

// escapeName maps an arbitrary table name to a directory-safe form:
// every byte outside [A-Za-z0-9_-] is %XX-escaped — including dots, so
// "." and ".." cannot traverse out of the data dir (url.PathEscape
// leaves them intact, which would).
func escapeName(name string) string {
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			b = append(b, c)
		} else {
			b = append(b, '%', "0123456789ABCDEF"[c>>4], "0123456789ABCDEF"[c&0xf])
		}
	}
	return string(b)
}

// List implements Store.
func (d *Disk) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, err := url.PathUnescape(e.Name())
		if err != nil || escapeName(name) != e.Name() {
			continue // not a directory this engine created
		}
		if _, err := os.Stat(filepath.Join(d.dir, e.Name(), "snapshot.tss")); err == nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// Load implements Store.
func (d *Disk) Load(name string) (*Snapshot, error) {
	td := d.tableDir(name)
	snapImg, err := os.ReadFile(filepath.Join(td, "snapshot.tss"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	walPath := filepath.Join(td, "wal.log")
	walImg, err := os.ReadFile(walPath)
	if errors.Is(err, fs.ErrNotExist) {
		walImg = nil
	} else if err != nil {
		return nil, err
	}
	s, dropped, err := loadImages(snapImg, walImg)
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	if dropped > 0 {
		// A crash tore the final (unacknowledged) append. Cut it off so
		// nothing is ever appended after garbage; if the truncate fails
		// the CRC check will still catch the damage on the next load.
		d.mu.Lock()
		d.closeWALLocked(name)
		_ = os.Truncate(walPath, int64(len(walImg)-dropped))
		d.mu.Unlock()
	}
	return s, nil
}

// SaveSnapshot implements Store: atomically replaces the snapshot,
// then truncates the WAL to an empty (header-only) log.
func (d *Disk) SaveSnapshot(name string, s *Snapshot) error {
	img, err := EncodeSnapshot(s)
	if err != nil {
		return err
	}
	td := d.tableDir(name)
	if err := os.MkdirAll(td, 0o755); err != nil {
		return err
	}
	// Truncating the log goes through the handle cache: drop any open
	// append handle so later appends reopen the fresh file.
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closeWALLocked(name)
	if err := d.writeFileAtomic(filepath.Join(td, "snapshot.tss"), img); err != nil {
		return err
	}
	return d.writeFileAtomic(filepath.Join(td, "wal.log"), walHeader())
}

// writeFileAtomic writes via a temp file + rename, fsyncing file and
// directory when the engine is in fsync mode.
func (d *Disk) writeFileAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if d.fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return d.syncDir(filepath.Dir(path))
}

func (d *Disk) syncDir(dir string) error {
	if !d.fsync {
		return nil
	}
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// AppendMutation implements Store. A failed append must not leave torn
// bytes *mid-file* — a later successful append would land after them
// and recovery would abort at the garbage, losing acknowledged batches
// — so on any write/sync error the log is truncated back to its
// pre-append size and the handle dropped.
func (d *Disk) AppendMutation(name string, m *Mutation) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, err := d.walLocked(name)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		d.closeWALLocked(name)
		return err
	}
	appendErr := func() error {
		if _, err := f.Write(AppendWALRecord(nil, m)); err != nil {
			return err
		}
		if d.fsync {
			return f.Sync()
		}
		return nil
	}()
	if appendErr != nil {
		_ = f.Truncate(st.Size())
		d.closeWALLocked(name)
		return appendErr
	}
	return nil
}

// walLocked returns the open append handle for name's WAL, opening
// (and writing the header of) the file as needed. The snapshot must
// exist — appending to a never-saved table is an error.
func (d *Disk) walLocked(name string) (*os.File, error) {
	if f, ok := d.wals[name]; ok {
		return f, nil
	}
	td := d.tableDir(name)
	if _, err := os.Stat(filepath.Join(td, "snapshot.tss")); err != nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	path := filepath.Join(td, "wal.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(walHeader()); err != nil {
			f.Close()
			return nil, err
		}
	}
	d.wals[name] = f
	return f, nil
}

func (d *Disk) closeWALLocked(name string) {
	if f, ok := d.wals[name]; ok {
		f.Close()
		delete(d.wals, name)
	}
}

// LogSize implements Store.
func (d *Disk) LogSize(name string) (int64, error) {
	st, err := os.Stat(filepath.Join(d.tableDir(name), "wal.log"))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ReadLog implements Store. The WAL file may be read while an append
// is in flight; recover-mode replay (inside readLogTail) treats a torn
// final frame as not-yet-part-of-the-tail rather than corruption.
func (d *Disk) ReadLog(name string, after int64) ([]*Mutation, error) {
	td := d.tableDir(name)
	f, err := os.Open(filepath.Join(td, "snapshot.tss"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 14) // magic + format + version — all the peek needs
	_, rerr := io.ReadFull(f, hdr)
	f.Close()
	if rerr != nil {
		return nil, fmt.Errorf("table %q: %w: snapshot too short", name, ErrCorrupt)
	}
	base, err := peekSnapshotVersion(hdr)
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	walImg, err := os.ReadFile(filepath.Join(td, "wal.log"))
	if errors.Is(err, fs.ErrNotExist) {
		walImg = nil
	} else if err != nil {
		return nil, err
	}
	muts, err := readLogTail(base, walImg, after)
	if err != nil {
		return nil, fmt.Errorf("table %q: %w", name, err)
	}
	return muts, nil
}

// metaPath places blobs as root-level "<escaped key>.meta" files;
// escaped names never contain '.', so a blob can never collide with a
// table directory (and List, which only scans directories, never sees
// them).
func (d *Disk) metaPath(key string) string {
	return filepath.Join(d.dir, escapeName(key)+".meta")
}

// SaveMeta implements Store.
func (d *Disk) SaveMeta(key string, data []byte) error {
	return d.writeFileAtomic(d.metaPath(key), encodeMeta(data))
}

// LoadMeta implements Store.
func (d *Disk) LoadMeta(key string) ([]byte, error) {
	b, err := os.ReadFile(d.metaPath(key))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: meta %q", ErrNotFound, key)
	}
	if err != nil {
		return nil, err
	}
	data, err := decodeMeta(b)
	if err != nil {
		return nil, fmt.Errorf("meta %q: %w", key, err)
	}
	return data, nil
}

// Drop implements Store.
func (d *Disk) Drop(name string) error {
	d.mu.Lock()
	d.closeWALLocked(name)
	d.mu.Unlock()
	return os.RemoveAll(d.tableDir(name))
}

// Close implements Store.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var firstErr error
	for name, f := range d.wals {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(d.wals, name)
	}
	return firstErr
}
