package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary encodings. Everything is little-endian and fixed-width, so
// encodings are canonical: decode(encode(x)) == x and
// encode(decode(b)) == b for every accepted b — the property the
// round-trip fuzz targets enforce.
//
// Snapshot file (format 2; format 1 — identical minus the stats
// section — is still decoded, and re-encodes byte-identically so the
// canonical-encoding property holds; fresh snapshots always write
// format 2, so checkpoints upgrade old files in place):
//
//	magic "TSSS" | u16 format | u64 version | u32 cacheCapacity
//	u8 hasStats | if 1:                       (planner feedback)
//	    u64 skyFrac (float64 bits) | u64 skyFracN
//	    u32 nAlgos | nAlgos × (str name, u64 mult float64 bits, u64 n)
//	                                          (names strictly ascending)
//	u32 nTO | nTO × str                       (column names)
//	u32 nPO | per PO column:
//	    str name
//	    u32 nValues | nValues × str           (value labels)
//	    u32 nEdges  | nEdges × (u32 better, u32 worse)
//	u64 N
//	per TO column: N × u64 (int64 bits)       (columnar row data)
//	per PO column: N × u32 (value ids)
//	u32 CRC-32 (IEEE) of all preceding bytes
//
// str is u16 length + bytes. The WAL is a "TSSW" | u16 format header
// followed by length-prefixed records (see wal.go); each record's
// payload is an encoded Mutation:
//
//	u64 version
//	u32 nRemove | nRemove × u32               (prior-version row indexes)
//	u32 nTO | u32 nPO | u32 nAdd
//	per TO column: nAdd × u64
//	per PO column: nAdd × u32

const (
	snapMagic     = "TSSS"
	walMagic      = "TSSW"
	formatVersion = 2
	// formatVersionV1 is the pre-planner snapshot/WAL format, accepted
	// on read (the WAL record encoding never changed; a v1 snapshot is
	// a v2 snapshot without the stats section).
	formatVersionV1 = 1

	// maxDim caps decoded column/value/edge counts; together with the
	// remaining-length checks it keeps hostile headers from forcing
	// large allocations.
	maxDim = 1 << 20
)

// EncodeSnapshot serializes s.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	if err := s.Rows.check(&s.Schema); err != nil {
		return nil, err
	}
	version := uint16(formatVersion)
	if s.formatV1 && s.Stats == nil {
		version = formatVersionV1
	}
	var b []byte
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint16(b, version)
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Version))
	b = binary.LittleEndian.AppendUint32(b, uint32(s.CacheCapacity))

	switch {
	case version == formatVersionV1:
		// no stats section in format 1
	case s.Stats == nil:
		b = append(b, 0)
	default:
		st := s.Stats
		if err := st.check(); err != nil {
			return nil, err
		}
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(st.SkyFrac))
		b = binary.LittleEndian.AppendUint64(b, uint64(st.SkyFracN))
		b = binary.LittleEndian.AppendUint32(b, uint32(len(st.Algos)))
		for _, a := range st.Algos {
			b = appendStr(b, a.Name)
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(a.Mult))
			b = binary.LittleEndian.AppendUint64(b, uint64(a.N))
		}
	}

	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Schema.TOColumns)))
	for _, name := range s.Schema.TOColumns {
		b = appendStr(b, name)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Schema.Orders)))
	for _, o := range s.Schema.Orders {
		b = appendStr(b, o.Name)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(o.Values)))
		for _, v := range o.Values {
			b = appendStr(b, v)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(o.Edges)))
		for _, e := range o.Edges {
			b = binary.LittleEndian.AppendUint32(b, uint32(e[0]))
			b = binary.LittleEndian.AppendUint32(b, uint32(e[1]))
		}
	}

	n := s.Rows.N()
	b = binary.LittleEndian.AppendUint64(b, uint64(n))
	for _, col := range s.Rows.TO {
		for _, v := range col {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	}
	for _, col := range s.Rows.PO {
		for _, v := range col {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b, nil
}

// peekSnapshotVersion reads the version field from the head of an
// encoded snapshot without validating the full image — just magic,
// format and version. Log-tail reads use it to learn a snapshot's base
// version without decoding (or, on disk, even reading) the columnar
// body; any damage the peek can't see is caught by the full CRC check
// the moment the snapshot is actually loaded.
func peekSnapshotVersion(b []byte) (int64, error) {
	if len(b) < len(snapMagic)+2+8 {
		return 0, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != formatVersion && v != formatVersionV1 {
		return 0, fmt.Errorf("%w: unsupported snapshot format %d", ErrCorrupt, v)
	}
	ver := int64(binary.LittleEndian.Uint64(b[6:14]))
	if ver < 0 {
		return 0, fmt.Errorf("%w: negative version or cache capacity", ErrCorrupt)
	}
	return ver, nil
}

// DecodeSnapshot parses and validates an EncodeSnapshot result,
// verifying the trailing CRC before trusting any field. All failures
// wrap ErrCorrupt; hostile inputs never panic or over-allocate.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < len(snapMagic)+2+4 {
		return nil, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch", ErrCorrupt)
	}
	r := &reader{buf: body}
	if string(r.take(4)) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	version := r.u16()
	if version != formatVersion && version != formatVersionV1 {
		return nil, fmt.Errorf("%w: unsupported snapshot format %d", ErrCorrupt, version)
	}
	s := &Snapshot{Version: int64(r.u64()), CacheCapacity: int(int32(r.u32())), formatV1: version == formatVersionV1}
	if s.Version < 0 || s.CacheCapacity < 0 {
		return nil, fmt.Errorf("%w: negative version or cache capacity", ErrCorrupt)
	}

	if version == formatVersion {
		switch hasStats := r.take(1); {
		case r.err != nil:
			return nil, fmt.Errorf("%w: truncated stats flag", ErrCorrupt)
		case hasStats[0] > 1:
			return nil, fmt.Errorf("%w: bad stats flag %d", ErrCorrupt, hasStats[0])
		case hasStats[0] == 1:
			st := &TableStatsRecord{
				SkyFrac:  math.Float64frombits(r.u64()),
				SkyFracN: int64(r.u64()),
			}
			nAlgos := int(r.u32())
			if r.err == nil && nAlgos > maxDim {
				return nil, fmt.Errorf("%w: implausible stats algo count %d", ErrCorrupt, nAlgos)
			}
			for i := 0; i < nAlgos && r.err == nil; i++ {
				st.Algos = append(st.Algos, AlgoCostRecord{
					Name: r.str(), Mult: math.Float64frombits(r.u64()), N: int64(r.u64()),
				})
			}
			if r.err != nil {
				return nil, fmt.Errorf("%w: truncated stats", ErrCorrupt)
			}
			// The same structural rules the encoder enforces (sorted
			// names for canonicality, finite in-range floats so hostile
			// bytes cannot plant NaNs in the planner).
			if err := st.check(); err != nil {
				return nil, err
			}
			s.Stats = st
		}
	}

	nTO := int(r.u32())
	if nTO > maxDim {
		return nil, fmt.Errorf("%w: implausible TO column count %d", ErrCorrupt, nTO)
	}
	for i := 0; i < nTO && r.err == nil; i++ {
		s.Schema.TOColumns = append(s.Schema.TOColumns, r.str())
	}
	nPO := int(r.u32())
	if nPO > maxDim {
		return nil, fmt.Errorf("%w: implausible PO column count %d", ErrCorrupt, nPO)
	}
	for i := 0; i < nPO && r.err == nil; i++ {
		o := OrderSchema{Name: r.str()}
		nVal := int(r.u32())
		if nVal > maxDim {
			return nil, fmt.Errorf("%w: implausible value count %d", ErrCorrupt, nVal)
		}
		for v := 0; v < nVal && r.err == nil; v++ {
			o.Values = append(o.Values, r.str())
		}
		nEdge := int(r.u32())
		if r.err == nil && r.remaining() < nEdge*8 {
			return nil, fmt.Errorf("%w: truncated edge list", ErrCorrupt)
		}
		for e := 0; e < nEdge && r.err == nil; e++ {
			a, b := int32(r.u32()), int32(r.u32())
			if a < 0 || int(a) >= nVal || b < 0 || int(b) >= nVal {
				return nil, fmt.Errorf("%w: edge (%d,%d) outside %d values", ErrCorrupt, a, b, nVal)
			}
			o.Edges = append(o.Edges, [2]int32{a, b})
		}
		s.Schema.Orders = append(s.Schema.Orders, o)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated schema", ErrCorrupt)
	}

	n64 := r.u64()
	if r.err == nil && (n64 > uint64(r.remaining()) || int(n64)*(8*nTO+4*nPO) > r.remaining()) {
		return nil, fmt.Errorf("%w: %d rows cannot fit in %d bytes", ErrCorrupt, n64, r.remaining())
	}
	n := int(n64)
	for c := 0; c < nTO; c++ {
		col := make([]int64, n)
		for i := range col {
			col[i] = int64(r.u64())
		}
		s.Rows.TO = append(s.Rows.TO, col)
	}
	for c := 0; c < nPO; c++ {
		col := make([]int32, n)
		for i := range col {
			col[i] = int32(r.u32())
		}
		s.Rows.PO = append(s.Rows.PO, col)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated row data", ErrCorrupt)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, r.remaining())
	}
	if err := s.Rows.check(&s.Schema); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeMutation serializes a WAL record payload.
func EncodeMutation(m *Mutation) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Version))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Remove)))
	for _, r := range m.Remove {
		b = binary.LittleEndian.AppendUint32(b, uint32(r))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Add.TO)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Add.PO)))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Add.N()))
	for _, col := range m.Add.TO {
		for _, v := range col {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	}
	for _, col := range m.Add.PO {
		for _, v := range col {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
	}
	return b
}

// DecodeMutation parses a WAL record payload. All failures wrap
// ErrCorrupt.
func DecodeMutation(b []byte) (*Mutation, error) {
	r := &reader{buf: b}
	m := &Mutation{Version: int64(r.u64())}
	if r.err == nil && m.Version < 0 {
		return nil, fmt.Errorf("%w: negative WAL version", ErrCorrupt)
	}
	nRemove := int(r.u32())
	if r.err == nil && r.remaining() < nRemove*4 {
		return nil, fmt.Errorf("%w: truncated remove list", ErrCorrupt)
	}
	for i := 0; i < nRemove && r.err == nil; i++ {
		v := int32(r.u32())
		if v < 0 {
			return nil, fmt.Errorf("%w: negative remove index", ErrCorrupt)
		}
		m.Remove = append(m.Remove, v)
	}
	nTO, nPO, nAdd := int(r.u32()), int(r.u32()), int(r.u32())
	if r.err == nil && (nTO > maxDim || nPO > maxDim || nAdd*(8*nTO+4*nPO) > r.remaining()) {
		return nil, fmt.Errorf("%w: %d added rows cannot fit in %d bytes", ErrCorrupt, nAdd, r.remaining())
	}
	// A columnless mutation cannot carry rows; rejecting it keeps the
	// encoding canonical (re-encoding would write nAdd=0).
	if r.err == nil && nTO == 0 && nPO == 0 && nAdd != 0 {
		return nil, fmt.Errorf("%w: %d added rows without columns", ErrCorrupt, nAdd)
	}
	for c := 0; c < nTO && r.err == nil; c++ {
		col := make([]int64, nAdd)
		for i := range col {
			col[i] = int64(r.u64())
		}
		m.Add.TO = append(m.Add.TO, col)
	}
	for c := 0; c < nPO && r.err == nil; c++ {
		col := make([]int32, nAdd)
		for i := range col {
			col[i] = int32(r.u32())
		}
		m.Add.PO = append(m.Add.PO, col)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated mutation", ErrCorrupt)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in mutation", ErrCorrupt, r.remaining())
	}
	return m, nil
}

func appendStr(b []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// reader is a bounds-checked cursor over encoded bytes.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.err = ErrCorrupt
		return make([]byte, max(n, 0))
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }

func (r *reader) str() string { return string(r.take(int(r.u16()))) }
