package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Engine-level metadata blobs: small named values that live beside the
// tables but outside any table's namespace — the cluster coordinator
// persists its catalog (per-table partition specs) here. The framing
// mirrors the table files:
//
//	magic "TSSM" | u16 format | payload | u32 CRC-32 (IEEE)
//
// The payload is opaque to the engine; callers pick their own encoding
// (the coordinator uses JSON). The CRC covers magic through payload, so
// a torn or damaged blob surfaces as ErrCorrupt, never as a silently
// wrong catalog.

const metaMagic = "TSSM"

// encodeMeta frames one metadata payload.
func encodeMeta(data []byte) []byte {
	b := make([]byte, 0, len(metaMagic)+2+len(data)+4)
	b = append(b, metaMagic...)
	b = binary.LittleEndian.AppendUint16(b, formatVersion)
	b = append(b, data...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// decodeMeta validates a framed blob and returns its payload.
func decodeMeta(b []byte) ([]byte, error) {
	if len(b) < len(metaMagic)+2+4 {
		return nil, fmt.Errorf("%w: meta blob too short", ErrCorrupt)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: meta blob checksum mismatch", ErrCorrupt)
	}
	if string(body[:len(metaMagic)]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != formatVersion && v != formatVersionV1 {
		return nil, fmt.Errorf("%w: unsupported meta format %d", ErrCorrupt, v)
	}
	return append([]byte(nil), body[6:]...), nil
}
