package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestReadLogTail: the log-tail read returns exactly the records past
// the requested version, for every engine.
func TestReadLogTail(t *testing.T) {
	for engine, st := range engines(t) {
		t.Run(engine, func(t *testing.T) {
			if _, err := st.ReadLog("absent", 0); !errors.Is(err, ErrNotFound) {
				t.Fatalf("ReadLog(absent) = %v, want ErrNotFound", err)
			}
			if err := st.SaveSnapshot("flights", sampleSnapshot(0, 10)); err != nil {
				t.Fatal(err)
			}
			m1 := sampleMutation(1, []int32{0, 3}, 2)
			m2 := sampleMutation(2, nil, 1)
			m3 := sampleMutation(3, []int32{5}, 0)
			for _, m := range []*Mutation{m1, m2, m3} {
				if err := st.AppendMutation("flights", m); err != nil {
					t.Fatal(err)
				}
			}
			for after, want := range map[int64][]*Mutation{
				0: {m1, m2, m3},
				1: {m2, m3},
				2: {m3},
				3: nil,
				9: nil, // ahead of the log: nothing to ship, not an error
			} {
				got, err := st.ReadLog("flights", after)
				if err != nil {
					t.Fatalf("ReadLog(after=%d): %v", after, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("ReadLog(after=%d) = %d records, want %d", after, len(got), len(want))
				}
			}
		})
	}
}

// TestReadLogCompacted: a checkpoint absorbs the log; readers behind
// the new base get ErrCompacted (re-seed from snapshot), readers at or
// past it keep tailing.
func TestReadLogCompacted(t *testing.T) {
	for engine, st := range engines(t) {
		t.Run(engine, func(t *testing.T) {
			if err := st.SaveSnapshot("t", sampleSnapshot(0, 6)); err != nil {
				t.Fatal(err)
			}
			if err := st.AppendMutation("t", sampleMutation(1, nil, 1)); err != nil {
				t.Fatal(err)
			}
			loaded, err := st.Load("t")
			if err != nil {
				t.Fatal(err)
			}
			if err := st.SaveSnapshot("t", loaded); err != nil { // checkpoint at v1
				t.Fatal(err)
			}
			if err := st.AppendMutation("t", sampleMutation(2, nil, 2)); err != nil {
				t.Fatal(err)
			}
			if _, err := st.ReadLog("t", 0); !errors.Is(err, ErrCompacted) {
				t.Fatalf("ReadLog(after=0) past checkpoint = %v, want ErrCompacted", err)
			}
			got, err := st.ReadLog("t", 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0].Version != 2 {
				t.Fatalf("ReadLog(after=1) = %+v, want the v2 record", got)
			}
		})
	}
}

// TestReadLogTornTail: a torn final frame (an append in flight, or cut
// by a crash) is not part of the tail yet — the read succeeds with the
// intact prefix instead of failing the whole poll.
func TestReadLogTornTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.SaveSnapshot("t", sampleSnapshot(0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMutation("t", sampleMutation(1, nil, 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendMutation("t", sampleMutation(2, nil, 2)); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "t", "wal.log")
	img, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, img[:len(img)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := st.ReadLog("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Version != 1 {
		t.Fatalf("torn-tail ReadLog = %d records (first %v), want just v1", len(got), got)
	}
}

// TestMetaRoundTrip: metadata blobs round-trip, overwrite, and stay
// disjoint from the table namespace, for every engine.
func TestMetaRoundTrip(t *testing.T) {
	for engine, st := range engines(t) {
		t.Run(engine, func(t *testing.T) {
			if _, err := st.LoadMeta("absent"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("LoadMeta(absent) = %v, want ErrNotFound", err)
			}
			if err := st.SaveMeta("catalog", []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			got, err := st.LoadMeta("catalog")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != `{"v":1}` {
				t.Fatalf("LoadMeta = %q", got)
			}
			if err := st.SaveMeta("catalog", []byte(`{"v":2}`)); err != nil {
				t.Fatal(err)
			}
			if got, _ = st.LoadMeta("catalog"); string(got) != `{"v":2}` {
				t.Fatalf("after overwrite: %q", got)
			}
			// A table named like the key does not shadow the blob, and the
			// blob never appears in the table listing.
			if err := st.SaveSnapshot("catalog", sampleSnapshot(0, 2)); err != nil {
				t.Fatal(err)
			}
			names, err := st.List()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(names, []string{"catalog"}) {
				t.Fatalf("List = %v", names)
			}
			if got, _ = st.LoadMeta("catalog"); string(got) != `{"v":2}` {
				t.Fatalf("blob shadowed by table: %q", got)
			}
		})
	}
}

// TestMetaCorrupt: a damaged blob is refused, never returned.
func TestMetaCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.SaveMeta("catalog", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "catalog.meta")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadMeta("catalog"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LoadMeta(corrupt) = %v, want ErrCorrupt", err)
	}
}
