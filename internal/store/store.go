// Package store is the durable, versioned storage engine behind the
// skyline server: tables persist as binary columnar snapshots (TO
// columns, PO value-id columns and the preference DAGs of the PO
// domains) plus a length-prefixed, CRC-checked write-ahead log of
// batched mutations. A table's durable state is always
//
//	snapshot(version v) + WAL records v+1, v+2, …, v+k
//
// and loading replays the log over the snapshot, recovering the state
// as of the last logged batch. Checkpointing rewrites the snapshot at
// the current version and truncates the log.
//
// Two engines implement the Store interface: Mem (tests, ephemeral
// servers) and Disk (one directory per table, atomic snapshot
// replacement via rename, optional fsync-per-append). The serving
// layer appends each mutation to the WAL *before* publishing the new
// table snapshot to readers, so every acknowledged version is
// recoverable.
package store

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotFound is returned when a table has no persisted state.
var ErrNotFound = errors.New("store: table not found")

// ErrCorrupt is returned when persisted bytes fail structural or
// checksum validation — including a truncated or torn WAL tail.
var ErrCorrupt = errors.New("store: corrupt data")

// ErrCompacted is returned by ReadLog when the requested log suffix
// was absorbed into the snapshot by a checkpoint and truncated away —
// the reader is too far behind to tail the log and must re-seed from
// the snapshot.
var ErrCompacted = errors.New("store: log compacted past requested version")

// OrderSchema describes one partially ordered column: its value labels
// plus the preference DAG edges as (better, worse) value indexes.
type OrderSchema struct {
	Name   string
	Values []string
	Edges  [][2]int32
}

// Schema fixes a table's shape: the totally ordered column names and
// the PO column descriptions.
type Schema struct {
	TOColumns []string
	Orders    []OrderSchema
}

// Rows is columnar row storage: TO[c][i] is row i's value in TO column
// c, PO[c][i] its value id in PO column c. All columns have equal
// length.
type Rows struct {
	TO [][]int64
	PO [][]int32
}

// N returns the row count.
func (r *Rows) N() int {
	if len(r.TO) > 0 {
		return len(r.TO[0])
	}
	if len(r.PO) > 0 {
		return len(r.PO[0])
	}
	return 0
}

// check verifies columnar shape against a schema.
func (r *Rows) check(s *Schema) error {
	if len(r.TO) != len(s.TOColumns) || len(r.PO) != len(s.Orders) {
		return fmt.Errorf("%w: rows have %d TO / %d PO columns, schema %d / %d",
			ErrCorrupt, len(r.TO), len(r.PO), len(s.TOColumns), len(s.Orders))
	}
	n := r.N()
	for _, col := range r.TO {
		if len(col) != n {
			return fmt.Errorf("%w: ragged TO columns", ErrCorrupt)
		}
	}
	for c, col := range r.PO {
		if len(col) != n {
			return fmt.Errorf("%w: ragged PO columns", ErrCorrupt)
		}
		size := int32(len(s.Orders[c].Values))
		for _, v := range col {
			if v < 0 || v >= size {
				return fmt.Errorf("%w: PO value id %d outside domain of %d values", ErrCorrupt, v, size)
			}
		}
	}
	return nil
}

// AlgoCostRecord is one persisted query-planner cost correction: the
// observed/predicted multiplier EWMA for a named algorithm and the
// number of observations behind it.
type AlgoCostRecord struct {
	Name string
	Mult float64
	N    int64
}

// TableStatsRecord persists the query planner's *learned* statistics —
// the skyline-fraction EWMA and the per-algorithm cost corrections
// observed from past runs. The derivable statistics (row counts,
// min/max, distinct estimates) are recomputed from the rows on load;
// only the feedback, which cannot be rederived, is stored. The record
// is advisory: WAL replay does not advance it (mutations carry no
// observations), it simply resumes learning from the checkpointed
// state. Algos must be sorted by strictly ascending name — the
// canonical-encoding requirement.
type TableStatsRecord struct {
	SkyFrac  float64
	SkyFracN int64
	Algos    []AlgoCostRecord
}

// check validates a stats record structurally: strictly name-sorted
// algos (the canonical-encoding requirement), non-negative counts, and
// finite in-range floats — a hostile snapshot must not be able to
// plant a NaN skyline fraction in the planner.
func (st *TableStatsRecord) check() error {
	if st.SkyFracN < 0 {
		return fmt.Errorf("%w: negative stats observation count", ErrCorrupt)
	}
	if math.IsNaN(st.SkyFrac) || st.SkyFrac < 0 || st.SkyFrac > 1 {
		return fmt.Errorf("%w: stats skyline fraction %v outside [0, 1]", ErrCorrupt, st.SkyFrac)
	}
	for i, a := range st.Algos {
		if a.N < 0 {
			return fmt.Errorf("%w: negative stats observation count", ErrCorrupt)
		}
		if math.IsNaN(a.Mult) || math.IsInf(a.Mult, 0) || a.Mult < 0 {
			return fmt.Errorf("%w: stats multiplier %v for %q out of range", ErrCorrupt, a.Mult, a.Name)
		}
		if i > 0 && st.Algos[i-1].Name >= a.Name {
			return fmt.Errorf("%w: stats algos not strictly sorted by name", ErrCorrupt)
		}
	}
	return nil
}

// Snapshot is a table's full state at one version.
type Snapshot struct {
	Version int64
	Schema  Schema
	Rows    Rows
	// CacheCapacity preserves the table's dynamic-cache sizing across
	// restarts (0 = server default).
	CacheCapacity int
	// Stats carries the query planner's learned feedback, when any (see
	// TableStatsRecord).
	Stats *TableStatsRecord
	// formatV1 marks a snapshot decoded from the pre-planner format 1
	// (no stats section). Re-encoding reproduces the original bytes —
	// the canonical-encoding contract — while fresh snapshots always
	// write format 2; a checkpoint therefore upgrades the file.
	formatV1 bool
}

// Mutation is one WAL record: the batch that produced Version from the
// previous version. Remove lists row indexes of the previous version
// (applied first, survivors renumbered in order); Add holds the
// appended rows in the snapshot's column order.
type Mutation struct {
	Version int64
	Remove  []int32
	Add     Rows
}

// Store persists named tables. Implementations are safe for concurrent
// use on distinct tables; per-table callers must serialize (the serving
// layer's per-table write lock does).
type Store interface {
	// List returns the names of persisted tables, sorted.
	List() ([]string, error)
	// Load returns name's snapshot with all logged mutations replayed,
	// i.e. the state as of the last acknowledged batch. ErrNotFound if
	// the table was never saved; ErrCorrupt (wrapped) on damaged bytes.
	Load(name string) (*Snapshot, error)
	// SaveSnapshot durably replaces name's snapshot and truncates its
	// WAL — a checkpoint. The replacement is atomic: a crash leaves
	// either the old state (snapshot + log) or the new snapshot.
	SaveSnapshot(name string, s *Snapshot) error
	// AppendMutation durably appends one batch to name's WAL. The
	// mutation's version must be exactly one past the current state.
	AppendMutation(name string, m *Mutation) error
	// LogSize returns the current WAL size in bytes — the checkpoint
	// policy's input.
	LogSize(name string) (int64, error)
	// ReadLog returns the logged mutations with Version > after, in
	// order — the replication log tail. ErrCompacted (wrapped) when
	// version after+1 is no longer in the log because a checkpoint
	// absorbed it (the caller must re-seed from the snapshot);
	// ErrNotFound if the table was never saved.
	ReadLog(name string, after int64) ([]*Mutation, error)
	// SaveMeta durably stores a metadata blob under key, beside the
	// tables but outside any table's namespace (the cluster coordinator
	// persists its catalog here). The write is atomic and the blob
	// CRC-framed like the table files; the payload is opaque.
	SaveMeta(key string, data []byte) error
	// LoadMeta returns the blob stored under key. ErrNotFound if
	// absent; ErrCorrupt (wrapped) on damaged bytes.
	LoadMeta(key string) ([]byte, error)
	// Drop removes every trace of the table.
	Drop(name string) error
	// Close releases resources; the store must not be used afterwards.
	Close() error
}

// readLogTail collects the WAL records with Version > after from a WAL
// image whose snapshot base version is snapVersion — the log-tail read
// shared by both engines. The replay is recover-mode: the image may be
// read concurrently with an in-flight append, so a torn final frame is
// an unacknowledged (or still-writing) record that simply isn't part of
// this tail yet. A gap — after+1 neither covered by the snapshot being
// at or below `after` nor present as a record — means a checkpoint
// compacted the suffix away.
func readLogTail(snapVersion int64, walImg []byte, after int64) ([]*Mutation, error) {
	current := snapVersion
	var out []*Mutation
	if len(walImg) > 0 {
		if _, err := replayWALRecover(walImg, func(m *Mutation) error {
			if m.Version > current {
				current = m.Version
			}
			if m.Version > after {
				out = append(out, m)
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	if after >= current {
		return nil, nil // caught up (or ahead): nothing to ship
	}
	if len(out) == 0 || out[0].Version != after+1 {
		return nil, fmt.Errorf("%w: need version %d", ErrCompacted, after+1)
	}
	return out, nil
}

// applyMutation replays one WAL record onto columnar rows.
func applyMutation(s *Snapshot, m *Mutation) error {
	if m.Version != s.Version+1 {
		return fmt.Errorf("%w: WAL version %d after snapshot version %d", ErrCorrupt, m.Version, s.Version)
	}
	n := s.Rows.N()
	drop := make([]bool, n)
	for _, r := range m.Remove {
		if r < 0 || int(r) >= n {
			return fmt.Errorf("%w: WAL removes row %d of %d", ErrCorrupt, r, n)
		}
		drop[r] = true
	}
	if err := m.Add.check(&s.Schema); err != nil {
		return err
	}
	filter64 := func(col []int64) []int64 {
		out := col[:0:0]
		for i, v := range col {
			if !drop[i] {
				out = append(out, v)
			}
		}
		return out
	}
	filter32 := func(col []int32) []int32 {
		out := col[:0:0]
		for i, v := range col {
			if !drop[i] {
				out = append(out, v)
			}
		}
		return out
	}
	for c := range s.Rows.TO {
		s.Rows.TO[c] = append(filter64(s.Rows.TO[c]), m.Add.TO[c]...)
	}
	for c := range s.Rows.PO {
		s.Rows.PO[c] = append(filter32(s.Rows.PO[c]), m.Add.PO[c]...)
	}
	s.Version = m.Version
	return nil
}
