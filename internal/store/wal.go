package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL file framing: a fixed header ("TSSW" + u16 format) followed by
// records of
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Records are appended atomically from the reader's point of view:
// replay verifies length and checksum of every record and reports a
// truncated or torn tail as ErrCorrupt — never a panic and never a
// silently half-applied batch.

// walHeader returns the 6-byte WAL file header.
func walHeader() []byte {
	b := make([]byte, 0, 6)
	b = append(b, walMagic...)
	return binary.LittleEndian.AppendUint16(b, formatVersion)
}

// WALHeader returns the 6-byte WAL file header. The replication log
// endpoint sends it as the stream prologue: the wire framing of shipped
// mutations is exactly the on-disk framing, so followers decode with
// ReplayWAL.
func WALHeader() []byte { return walHeader() }

// maxWALRecord bounds a single record; hostile length prefixes past it
// are rejected before any allocation.
const maxWALRecord = 1 << 28

// AppendWALRecord frames one mutation payload.
func AppendWALRecord(b []byte, m *Mutation) []byte {
	payload := EncodeMutation(m)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// ReplayWAL parses a whole WAL image (header + records), invoking fn
// for every decoded mutation in order. Any structural damage —
// missing or wrong header, torn length prefix, short payload, checksum
// mismatch, undecodable payload — aborts with ErrCorrupt. This is the
// strict form; recovery goes through replayWALRecover.
func ReplayWAL(b []byte, fn func(*Mutation) error) error {
	_, err := replayWAL(b, fn, false)
	return err
}

// replayWALRecover is the crash-recovery form of ReplayWAL: an
// *incomplete* final frame — fewer bytes than the record header or the
// length prefix promises — is an unacknowledged append torn by a
// crash, so it is discarded (its size is returned) and replay ends
// cleanly. A complete frame that fails its checksum or decode is NOT
// tolerated anywhere, tail included: its bytes all reached the disk,
// so the damage is corruption of possibly-acknowledged state, not a
// torn append.
func replayWALRecover(b []byte, fn func(*Mutation) error) (droppedTail int, err error) {
	return replayWAL(b, fn, true)
}

func replayWAL(b []byte, fn func(*Mutation) error, recover bool) (droppedTail int, err error) {
	hdr := walHeader()
	if len(b) < len(hdr) {
		return 0, fmt.Errorf("%w: WAL shorter than its header", ErrCorrupt)
	}
	if string(b[:4]) != walMagic {
		return 0, fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
	}
	// Format 1 WALs are readable as-is: the record encoding never
	// changed, only the snapshot grew its stats section.
	if v := binary.LittleEndian.Uint16(b[4:6]); v != formatVersion && v != formatVersionV1 {
		return 0, fmt.Errorf("%w: unsupported WAL format %d", ErrCorrupt, v)
	}
	b = b[len(hdr):]
	for len(b) > 0 {
		if len(b) < 8 {
			if recover {
				return len(b), nil
			}
			return 0, fmt.Errorf("%w: torn WAL record header (%d trailing bytes)", ErrCorrupt, len(b))
		}
		n := binary.LittleEndian.Uint32(b)
		sum := binary.LittleEndian.Uint32(b[4:])
		if n > maxWALRecord {
			return 0, fmt.Errorf("%w: WAL record of %d bytes exceeds limit", ErrCorrupt, n)
		}
		if len(b) < 8+int(n) {
			if recover {
				return len(b), nil
			}
			return 0, fmt.Errorf("%w: truncated WAL record (%d of %d payload bytes)", ErrCorrupt, len(b)-8, n)
		}
		payload := b[8 : 8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return 0, fmt.Errorf("%w: WAL record checksum mismatch", ErrCorrupt)
		}
		m, err := DecodeMutation(payload)
		if err != nil {
			return 0, err
		}
		if err := fn(m); err != nil {
			return 0, err
		}
		b = b[8+int(n):]
	}
	return 0, nil
}
