package core

import "sort"

// ScoreIndex is the per-table dp-idp score structure: for every skyline
// member m it keeps the k-histogram h_m[k] = #{rows t : m dominates t
// and exactly k skyline members dominate t}. The dp-idp score of m is
// then Σ_k h_m[k]/k — each dominated row contributes 1/k(t) split over
// its k dominators, so rows few members can "explain" weigh more.
// Histograms are integers, which makes the index exactly maintainable
// under mutation (increment/decrement) and the materialized float64
// score bit-reproducible: DPIDPScoreFromHist sums in ascending-k order
// everywhere (build, advance, per-shard combine), so index-backed,
// cold-computed and cluster-combined scores are comparable with ==.
type ScoreIndex struct {
	members []int32           // skyline member ids, ascending
	hists   []map[int32]int64 // parallel to members; k -> count, counts > 0
}

// NewScoreIndex builds an index from per-member k-histograms. members
// lists every skyline member in any order; hists maps member id to its
// histogram (members absent from the map dominate nothing). The maps
// are retained, not copied.
func NewScoreIndex(members []int32, hists map[int32]map[int32]int64) *ScoreIndex {
	ms := append([]int32(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	ix := &ScoreIndex{members: ms, hists: make([]map[int32]int64, len(ms))}
	for i, m := range ms {
		h := hists[m]
		if h == nil {
			h = map[int32]int64{}
		}
		ix.hists[i] = h
	}
	return ix
}

// BuildScoreIndex computes the full-dimension dp-idp index for the
// skyline sky of ds from scratch: one O(n·m) dominance scan collecting,
// per row, the set of members dominating it.
func BuildScoreIndex(ds *Dataset, sky []int32) *ScoreIndex {
	members := append([]int32(nil), sky...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	ix := &ScoreIndex{members: members, hists: make([]map[int32]int64, len(members))}
	for i := range ix.hists {
		ix.hists[i] = map[int32]int64{}
	}
	var dom []int
	for i := range ds.Pts {
		t := &ds.Pts[i]
		dom = dom[:0]
		for j, m := range members {
			if m == t.ID {
				continue
			}
			if DominatesUnder(ds.Domains, &ds.Pts[m], t) {
				dom = append(dom, j)
			}
		}
		if len(dom) == 0 {
			continue
		}
		k := int32(len(dom))
		for _, j := range dom {
			ix.hists[j][k]++
		}
	}
	return ix
}

// Members returns the indexed skyline member ids, ascending. The slice
// is shared; do not mutate.
func (ix *ScoreIndex) Members() []int32 { return ix.members }

// Len returns the number of indexed members.
func (ix *ScoreIndex) Len() int { return len(ix.members) }

// Hist returns member i's k-histogram (shared; do not mutate).
func (ix *ScoreIndex) Hist(i int) map[int32]int64 { return ix.hists[i] }

// ScoreMap materializes the dp-idp score of every indexed member.
func (ix *ScoreIndex) ScoreMap() map[int32]float64 {
	out := make(map[int32]float64, len(ix.members))
	for i, m := range ix.members {
		out[m] = DPIDPScoreFromHist(ix.hists[i])
	}
	return out
}

// DPIDPScoreFromHist materializes a k-histogram into the dp-idp score
// Σ_k count[k]/k, summing in ascending-k order so every evaluation site
// produces the identical float64.
func DPIDPScoreFromHist(h map[int32]int64) float64 {
	if len(h) == 0 {
		return 0
	}
	ks := make([]int32, 0, len(h))
	for k := range h {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	var s float64
	for _, k := range ks {
		s += float64(h[k]) / float64(k)
	}
	return s
}

// Advance maintains the index across a batch mutation: oldDS→newDS with
// delta's row renumbering, where the index covers oldDS's skyline and
// newSky is newDS's (already maintained) skyline. It returns the
// advanced index, or ok=false when the membership churn exceeds the
// maintenance threshold and a cold rebuild is the better deal.
//
// The incremental argument: a surviving row's dominator set — and hence
// its k and its 1/k contributions — can only change if some *changed*
// member (left the skyline, joined it, or was removed from the table)
// dominates it under either snapshot. Old members never dominate each
// other, so a demoted member is dominated by a *new* member and a
// promoted row was dominated by a *departed* one — both are caught by
// the changed-member dominance probe. Every other surviving row keeps
// its exact integer contributions; only affected rows are re-scanned
// (subtract old-side contributions, add new-side), plus pure
// subtraction for removed rows and pure addition for added ones.
func (ix *ScoreIndex) Advance(oldDS, newDS *Dataset, delta *Delta, newSky []int32) (*ScoreIndex, bool) {
	if delta == nil || len(delta.OldToNew) != len(oldDS.Pts) {
		return nil, false
	}
	newN := len(newDS.Pts)
	firstAdded := int32(newN - delta.Added)

	// Map membership both ways.
	oldSlot := make(map[int32]int, len(ix.members))
	for i, m := range ix.members {
		oldSlot[m] = i
	}
	newMember := make(map[int32]bool, len(newSky))
	for _, m := range newSky {
		newMember[m] = true
	}
	newToOld := make([]int32, newN)
	for i := range newToOld {
		newToOld[i] = -1
	}
	for o, n := range delta.OldToNew {
		if n >= 0 {
			newToOld[n] = int32(o)
		}
	}

	// Changed members: departed the skyline (removed row or demoted) or
	// joined it (added row or promoted). Their points drive the
	// affected-row probe; the snapshot each point lives in supplies it.
	var changed []Point
	for _, m := range ix.members {
		n := delta.OldToNew[m]
		if n < 0 || !newMember[n] {
			changed = append(changed, oldDS.Pts[m])
		}
	}
	for _, m := range newSky {
		if o := newToOld[m]; o >= 0 {
			if _, was := oldSlot[o]; was {
				continue
			}
		}
		changed = append(changed, newDS.Pts[m])
	}
	limit := MaintainChurnFloor
	if f := int(MaintainChurnFraction * float64(len(newSky))); f > limit {
		limit = f
	}
	if len(changed) > limit {
		return nil, false
	}

	// Start from a deep copy of the surviving members' histograms,
	// re-keyed to new ids.
	adv := &ScoreIndex{members: make([]int32, 0, len(newSky)), hists: make([]map[int32]int64, 0, len(newSky))}
	srcHist := make(map[int32]map[int32]int64, len(newSky))
	for _, m := range newSky {
		var h map[int32]int64
		if o := newToOld[m]; o >= 0 {
			if slot, was := oldSlot[o]; was {
				h = make(map[int32]int64, len(ix.hists[slot]))
				for k, c := range ix.hists[slot] {
					h[k] = c
				}
			}
		}
		if h == nil {
			h = map[int32]int64{}
		}
		srcHist[m] = h
	}
	newSlot := func(id int32) (map[int32]int64, bool) {
		h, ok := srcHist[id]
		return h, ok
	}

	// Subtract the old-side contributions of removed rows and of
	// surviving rows whose dominator set may have changed; add the
	// new-side contributions back. oldContrib/newContrib collect the
	// dominator sets under each snapshot.
	oldContrib := func(t *Point) ([]int32, int32) {
		var ds []int32
		for _, m := range ix.members {
			if m == t.ID {
				continue
			}
			if DominatesUnder(oldDS.Domains, &oldDS.Pts[m], t) {
				ds = append(ds, m)
			}
		}
		return ds, int32(len(ds))
	}
	newContrib := func(t *Point) ([]int32, int32) {
		var ds []int32
		for _, m := range newSky {
			if m == t.ID {
				continue
			}
			if DominatesUnder(newDS.Domains, &newDS.Pts[m], t) {
				ds = append(ds, m)
			}
		}
		return ds, int32(len(ds))
	}
	subOld := func(t *Point) bool {
		doms, k := oldContrib(t)
		if k == 0 {
			return true
		}
		for _, m := range doms {
			n := delta.OldToNew[m]
			if n < 0 {
				continue
			}
			h, ok := newSlot(n)
			if !ok {
				continue // member demoted: its histogram is not carried over
			}
			h[k]--
			switch {
			case h[k] == 0:
				delete(h, k)
			case h[k] < 0:
				return false
			}
		}
		return true
	}
	addNew := func(t *Point) {
		doms, k := newContrib(t)
		if k == 0 {
			return
		}
		for _, m := range doms {
			if h, ok := newSlot(m); ok {
				h[k]++
			}
		}
	}

	// Removed rows: old-side subtraction only.
	for o, n := range delta.OldToNew {
		if n < 0 {
			if !subOld(&oldDS.Pts[o]) {
				return nil, false
			}
		}
	}
	// Affected new rows: added rows always; surviving rows when a
	// changed member dominates them under either snapshot (surviving
	// rows keep their values, so the new-snapshot probe covers both).
	for i := range newDS.Pts {
		t := &newDS.Pts[i]
		affected := t.ID >= firstAdded
		if !affected {
			for c := range changed {
				if DominatesUnder(newDS.Domains, &changed[c], t) {
					affected = true
					break
				}
			}
		}
		if !affected {
			continue
		}
		if o := newToOld[t.ID]; o >= 0 {
			if !subOld(&oldDS.Pts[o]) {
				return nil, false
			}
		}
		addNew(t)
	}

	for _, m := range append([]int32(nil), newSky...) {
		adv.members = append(adv.members, m)
	}
	sort.Slice(adv.members, func(i, j int) bool { return adv.members[i] < adv.members[j] })
	for _, m := range adv.members {
		adv.hists = append(adv.hists, srcHist[m])
	}
	return adv, true
}
