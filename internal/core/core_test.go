package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/poset"
	"repro/internal/rtree"
)

// randomPODomainDAG builds a small random DAG for property tests.
func randomPODomainDAG(rng *rand.Rand, n int, p float64) *poset.DAG {
	dag := poset.NewDAG(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				dag.MustEdge(perm[i], perm[j])
			}
		}
	}
	return dag
}

// randomDataset builds a small random dataset. Coordinates are drawn
// from a tiny range so ties and exact duplicates occur routinely —
// the hardest case for strictness handling.
func randomDataset(rng *rand.Rand, n, nTO, nPO int) *Dataset {
	ds := &Dataset{}
	for d := 0; d < nPO; d++ {
		size := rng.Intn(8) + 2
		ds.Domains = append(ds.Domains, poset.MustDomain(
			randomPODomainDAG(rng, size, rng.Float64()*0.6+0.1)))
	}
	for i := 0; i < n; i++ {
		p := Point{ID: int32(i)}
		for d := 0; d < nTO; d++ {
			p.TO = append(p.TO, int32(rng.Intn(6)))
		}
		for d := 0; d < nPO; d++ {
			p.PO = append(p.PO, int32(rng.Intn(ds.Domains[d].Size())))
		}
		ds.Pts = append(ds.Pts, p)
	}
	return ds
}

// TestStaticAlgorithmsMatchNaive is the central correctness property:
// every algorithm, in every configuration, returns exactly the naive
// skyline (as an ID multiset — duplicates of skyline points are skyline
// points) on random data with heavy ties.
func TestStaticAlgorithmsMatchNaive(t *testing.T) {
	prop := func(seed int64, nRaw uint16, toRaw, poRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 1
		nTO := int(toRaw%3) + 1
		nPO := int(poRaw % 3) // 0..2: includes the pure-TO case
		ds := randomDataset(rng, n, nTO, nPO)
		if err := ds.Validate(); err != nil {
			t.Logf("invalid dataset: %v", err)
			return false
		}
		want := ds.NaiveSkyline()
		for name, res := range allStaticAlgorithms(ds) {
			if !sameIDSet(res.SkylineIDs, want) {
				t.Logf("seed=%d n=%d TO=%d PO=%d: %s = %v, want %v",
					seed, n, nTO, nPO, name, res.SkylineIDs, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDynamicAlgorithmsMatchNaive: dTSS (all configurations) and the
// dynamic SDC+ baseline agree with the naive skyline under random query
// partial orders, across several sequential queries on one DynamicDB.
func TestDynamicAlgorithmsMatchNaive(t *testing.T) {
	prop := func(seed int64, nRaw uint16, toRaw, poRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		nTO := int(toRaw%3) + 1
		nPO := int(poRaw%2) + 1
		ds := randomDataset(rng, n, nTO, nPO)
		db := NewDynamicDB(ds, Options{})
		for q := 0; q < 3; q++ {
			domains := make([]*poset.Domain, nPO)
			for d := 0; d < nPO; d++ {
				domains[d] = poset.MustDomain(randomPODomainDAG(
					rng, ds.Domains[d].Size(), rng.Float64()*0.6))
			}
			want := NaiveSkylineUnder(domains, ds.Pts)
			for _, opt := range []Options{
				{}, {UseMemTree: true}, {PrecomputedLocal: true},
				{UseMemTree: true, PrecomputedLocal: true, StabOnly: true},
			} {
				res, err := db.QueryTSS(domains, opt)
				if err != nil {
					t.Log(err)
					return false
				}
				if !sameIDSet(res.SkylineIDs, want) {
					t.Logf("seed=%d q=%d opt=%+v: dTSS = %v, want %v",
						seed, q, opt, res.SkylineIDs, want)
					return false
				}
			}
			res, err := DynamicSDCPlus(ds, domains, Options{})
			if err != nil {
				t.Log(err)
				return false
			}
			if !sameIDSet(res.SkylineIDs, want) {
				t.Logf("seed=%d q=%d: dynSDC+ = %v, want %v", seed, q, res.SkylineIDs, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSTSSPrecedence: sTSS emissions appear in non-decreasing mindist
// order in the (TO…, ATO…) space — the visiting order that guarantees
// precedence — and are never revoked (each ID emitted exactly once, and
// every emitted ID is in the final skyline).
func TestSTSSPrecedence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 50, 2, 1)
		res := STSS(ds, Options{})
		byID := map[int32]*Point{}
		for i := range ds.Pts {
			byID[ds.Pts[i].ID] = &ds.Pts[i]
		}
		last := int64(-1)
		seen := map[int32]bool{}
		for _, id := range res.SkylineIDs {
			if seen[id] {
				return false // revoked/duplicated emission
			}
			seen[id] = true
			var mind int64
			for _, c := range stssCoords(ds.Domains, byID[id]) {
				mind += int64(c)
			}
			if mind < last {
				return false
			}
			last = mind
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSTSSOptimalProgressiveness: sTSS emits each result the moment it
// is examined, so its k-th emission can never happen after BBS+ has
// emitted anything (BBS+ outputs everything at the very end). We check
// the structural form: sTSS emission IO stamps are non-decreasing and
// strictly before the final IO count when a prune happened later.
func TestSTSSOptimalProgressiveness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, 200, 2, 1)
	res := STSS(ds, Options{})
	if len(res.Metrics.Emissions) < 2 {
		t.Skip("degenerate skyline")
	}
	var last int64 = -1
	for _, e := range res.Metrics.Emissions {
		if e.IOs < last {
			t.Fatal("emission IO stamps must be non-decreasing")
		}
		last = e.IOs
	}
	// First emission must not wait for the full traversal.
	if res.Metrics.Emissions[0].IOs >= res.Metrics.ReadIOs {
		t.Error("first sTSS emission should precede traversal completion")
	}
	// BBS+ (not progressive): all emissions stamp at the end.
	resB := BBSPlus(ds, Options{})
	for _, e := range resB.Metrics.Emissions {
		if e.IOs != resB.Metrics.ReadIOs+resB.Metrics.WriteIOs {
			t.Error("BBS+ emissions must all carry the final IO stamp")
		}
	}
}

// TestSDCPlusBurstEmissions: SDC+ emits per stratum — the number of
// distinct emission IO stamps is at most the number of strata.
func TestSDCPlusBurstEmissions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := randomDataset(rng, 300, 2, 2)
	res := SDCPlus(ds, Options{})
	maxLv := int32(0)
	for _, dm := range ds.Domains {
		if dm.MaxLevel() > maxLv {
			maxLv = dm.MaxLevel()
		}
	}
	stamps := map[int64]bool{}
	for _, e := range res.Metrics.Emissions {
		stamps[e.IOs] = true
	}
	if int32(len(stamps)) > maxLv+1 {
		t.Errorf("SDC+ produced %d emission bursts, max strata %d", len(stamps), maxLv+1)
	}
}

// TestDuplicatesAllReported: exact duplicates of a skyline point are
// each reported, in every algorithm.
func TestDuplicatesAllReported(t *testing.T) {
	dag := poset.NewDAG(3)
	dag.MustEdge(0, 1)
	dm := poset.MustDomain(dag)
	ds := &Dataset{Domains: []*poset.Domain{dm}}
	// Three identical best points, one dominated, one incomparable.
	for i := 0; i < 3; i++ {
		ds.Pts = append(ds.Pts, Point{ID: int32(i), TO: []int32{1, 1}, PO: []int32{0}})
	}
	ds.Pts = append(ds.Pts, Point{ID: 3, TO: []int32{2, 2}, PO: []int32{1}}) // dominated by 0..2
	ds.Pts = append(ds.Pts, Point{ID: 4, TO: []int32{1, 1}, PO: []int32{2}}) // incomparable value
	want := []int32{0, 1, 2, 4}
	if got := ds.NaiveSkyline(); !sameIDSet(got, want) {
		t.Fatalf("naive = %v, want %v", got, want)
	}
	for name, res := range allStaticAlgorithms(ds) {
		if !sameIDSet(res.SkylineIDs, want) {
			t.Errorf("%s = %v, want %v (duplicates must all be reported)", name, res.SkylineIDs, want)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := &Dataset{}
	for name, res := range map[string]*Result{
		"BNL": BNL(empty, Options{}), "SFS": SFS(empty, Options{}),
		"sTSS": STSS(empty, Options{}), "BBS+": BBSPlus(empty, Options{}),
		"SDC": SDC(empty, Options{}), "SDC+": SDCPlus(empty, Options{}),
	} {
		if len(res.SkylineIDs) != 0 {
			t.Errorf("%s on empty dataset = %v", name, res.SkylineIDs)
		}
	}
	one := &Dataset{Pts: []Point{{ID: 7, TO: []int32{3}}}}
	for name, res := range map[string]*Result{
		"BNL": BNL(one, Options{}), "SFS": SFS(one, Options{}), "sTSS": STSS(one, Options{}),
		"BBS+": BBSPlus(one, Options{}), "SDC+": SDCPlus(one, Options{}),
	} {
		if len(res.SkylineIDs) != 1 || res.SkylineIDs[0] != 7 {
			t.Errorf("%s on singleton = %v", name, res.SkylineIDs)
		}
	}
}

func TestValidate(t *testing.T) {
	dag := poset.NewDAG(2)
	dm := poset.MustDomain(dag)
	bad := &Dataset{
		Pts:     []Point{{ID: 0, TO: []int32{1}, PO: []int32{5}}},
		Domains: []*poset.Domain{dm},
	}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-domain PO value must fail validation")
	}
	bad2 := &Dataset{
		Pts: []Point{
			{ID: 0, TO: []int32{1}, PO: []int32{0}},
			{ID: 1, TO: []int32{1, 2}, PO: []int32{0}},
		},
		Domains: []*poset.Domain{dm},
	}
	if err := bad2.Validate(); err == nil {
		t.Error("ragged dimensionality must fail validation")
	}
	if err := (&Dataset{}).Validate(); err != nil {
		t.Errorf("empty dataset should validate: %v", err)
	}
	mismatched := &Dataset{Pts: []Point{{ID: 0, TO: []int32{1}, PO: []int32{0}}}}
	if err := mismatched.Validate(); err == nil {
		t.Error("PO attribute without domain must fail validation")
	}
}

// TestDominatesUnderSemantics: incomparable PO values block dominance
// (the reading Table I requires), and strictness is required.
func TestDominatesUnderSemantics(t *testing.T) {
	dag := poset.NewDAG(3)
	dag.MustEdge(0, 1) // 0 preferred to 1; 2 incomparable
	dm := poset.MustDomain(dag)
	domains := []*poset.Domain{dm}
	mk := func(to int32, v int32) *Point { return &Point{TO: []int32{to}, PO: []int32{v}} }
	if !DominatesUnder(domains, mk(1, 0), mk(1, 1)) {
		t.Error("preferred PO value with equal TO must dominate")
	}
	if DominatesUnder(domains, mk(1, 0), mk(1, 0)) {
		t.Error("identical points must not dominate each other")
	}
	if DominatesUnder(domains, mk(0, 0), mk(1, 2)) {
		t.Error("incomparable PO values must block dominance even with better TO")
	}
	if DominatesUnder(domains, mk(1, 1), mk(2, 0)) {
		t.Error("worse PO value must block dominance")
	}
	if !DominatesUnder(domains, mk(0, 2), mk(1, 2)) {
		t.Error("equal PO value with better TO must dominate")
	}
}

// TestMetricsAccounting sanity-checks the cost model plumbing.
func TestMetricsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := randomDataset(rng, 400, 2, 1)
	res := STSS(ds, Options{})
	if res.Metrics.BuildWriteIOs == 0 {
		t.Error("index build must charge page writes")
	}
	if res.Metrics.ReadIOs == 0 {
		t.Error("query must charge page reads")
	}
	if res.Metrics.DomChecks == 0 {
		t.Error("dominance checks must be counted")
	}
	if got := res.Metrics.TotalTime(DefaultIOCost); got <= res.Metrics.CPU {
		t.Error("total time must include the IO charge")
	}
	if s := res.Metrics.CPUShare(DefaultIOCost); s <= 0 || s >= 1 {
		t.Errorf("CPU share = %f, want within (0,1)", s)
	}
	e := Emission{IOs: 10, CPU: 0}
	if e.Time(DefaultIOCost) != 10*DefaultIOCost {
		t.Error("Emission.Time broken")
	}
	if got := res.Metrics.IOTime(DefaultIOCost); got != res.Metrics.TotalTime(DefaultIOCost)-res.Metrics.CPU {
		t.Errorf("IOTime = %v, inconsistent with TotalTime-CPU", got)
	}
}

// TestCheckerParity: the list checker and the memtree checker give
// identical answers on identical query sequences (differential test).
func TestCheckerParity(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPO := rng.Intn(2) + 1
		ds := randomDataset(rng, 30, 2, nPO)
		list := newListChecker(ds.Domains, false)
		mem := newMemChecker(ds.Domains, 2, false)
		for i := range ds.Pts {
			p := &ds.Pts[i]
			dl := list.dominatedPoint(p.TO, p.PO)
			dm := mem.dominatedPoint(p.TO, p.PO)
			if dl != dm {
				t.Logf("seed=%d point %d: list=%v mem=%v", seed, p.ID, dl, dm)
				return false
			}
			if !dl {
				list.add(p)
				mem.add(p)
			}
			// Random box probes.
			ordLo := make([]int32, nPO)
			ordHi := make([]int32, nPO)
			for d := 0; d < nPO; d++ {
				n := int32(ds.Domains[d].Size())
				a, b := rng.Int31n(n), rng.Int31n(n)
				if a > b {
					a, b = b, a
				}
				ordLo[d], ordHi[d] = a, b
			}
			toLo := []int32{int32(rng.Intn(6)), int32(rng.Intn(6))}
			bl := list.dominatedBox(toLo, ordLo, ordHi)
			bm := mem.dominatedBox(toLo, ordLo, ordHi)
			if bl != bm {
				t.Logf("seed=%d box: list=%v mem=%v", seed, bl, bm)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBoxCheckSound: dominatedBox true implies every point inside the
// box is strictly dominated by an accepted point (soundness of the
// joint-coverage prune).
func TestBoxCheckSound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 25, 1, 1)
		dm := ds.Domains[0]
		checker := newListChecker(ds.Domains, false)
		var accepted []*Point
		for i := range ds.Pts {
			p := &ds.Pts[i]
			if !checker.dominatedPoint(p.TO, p.PO) {
				checker.add(p)
				accepted = append(accepted, p)
			}
		}
		n := int32(dm.Size())
		for trial := 0; trial < 20; trial++ {
			a, b := rng.Int31n(n), rng.Int31n(n)
			if a > b {
				a, b = b, a
			}
			toLo := []int32{int32(rng.Intn(6))}
			if !checker.dominatedBox(toLo, []int32{a}, []int32{b}) {
				continue
			}
			// Every (toLo+δ, value-in-range) must be dominated.
			for o := a; o <= b; o++ {
				v := dm.ValueAt(o)
				probe := &Point{TO: toLo, PO: []int32{v}}
				dominated := false
				for _, s := range accepted {
					if DominatesUnder(ds.Domains, s, probe) {
						dominated = true
						break
					}
				}
				if !dominated {
					t.Logf("seed=%d: box prune unsound for value %d", seed, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		key := make([]int64, n)
		order := make([]int32, n)
		for i := range key {
			key[i] = int64(rng.Intn(20))
			order[i] = int32(i)
		}
		sortByKey(order, key)
		for i := 1; i < n; i++ {
			a, b := order[i-1], order[i]
			if key[a] > key[b] || (key[a] == key[b] && a > b) {
				t.Fatal("sortByKey not sorted/stable")
			}
		}
	}
}

// TestHeapOrdering: the BBS heap pops by mindist, points before nodes,
// then insertion order.
func TestHeapOrdering(t *testing.T) {
	var h bbsHeap
	mk := func(lo []int32, leaf bool) rtree.Entry {
		e := rtree.Entry{Lo: lo, Hi: lo}
		if !leaf {
			// Fabricate an internal entry by bulk-loading a tiny tree.
			tr := rtree.BulkLoad(len(lo), []rtree.Point{{Coords: lo, ID: 0}}, 4, nil)
			root := tr.Root()
			_ = root
			e = rtree.Entry{Lo: lo, Hi: lo}
		}
		return e
	}
	h.push(mk([]int32{5}, true))
	h.push(mk([]int32{3}, true))
	h.push(mk([]int32{4}, true))
	h.push(mk([]int32{3}, true))
	got := []int64{}
	for h.len() > 0 {
		got = append(got, h.pop().mind)
	}
	want := []int64{3, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("heap order %v, want %v", got, want)
		}
	}
}
