package core

import (
	"time"

	"repro/internal/rtree"
)

// STSS computes the static skyline of ds with the paper's sTSS
// algorithm (§IV): best-first (BBS-style) traversal of an R-tree built
// in the precedence-preserving (TO…, ATO…) space, with the exact
// t-dominance check of Definition 2 — so it never admits false hits,
// never revokes an output, and emits each skyline point the moment it
// is examined (optimal progressiveness).
//
// Index construction is charged to the build counters; the query phase
// charges a page read per R-tree node visit.
func STSS(ds *Dataset, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	if len(ds.Pts) == 0 {
		return res
	}

	buildStart := time.Now()
	io := &rtree.IOCounter{}
	tree := buildSTSSTree(ds, opt, io)
	if opt.UseDyadic {
		for _, dm := range ds.Domains {
			dm.EnableDyadic()
		}
	}
	if opt.BufferPages > 0 {
		tree.SetBuffer(rtree.NewBuffer(opt.BufferPages))
	}
	res.Metrics.BuildWriteIOs = io.Writes
	res.Metrics.BuildCPU = time.Since(buildStart)
	io.Writes, io.Reads = 0, 0

	stssTraverse(ds, tree, io, opt, res)
	return res
}

// stssTraverse is the sTSS query phase over a prebuilt index; split out
// so tests can run the algorithm on explicitly laid-out trees (the
// paper's Figure 3(c) structure).
func stssTraverse(ds *Dataset, tree *rtree.Tree, io *rtree.IOCounter, opt Options, res *Result) {
	nTO := ds.NumTO()
	checker := newChecker(ds.Domains, nTO, opt)
	clock := newEmitClock(io)
	var h bbsHeap

	if len(ds.Pts) > 0 {
		root := tree.Root()
		for _, e := range root.Entries {
			h.push(e)
		}
	}

	for h.len() > 0 {
		it := h.pop()
		if it.isPoint {
			p := &ds.Pts[it.e.ID]
			if checker.dominatedPoint(p.TO, p.PO) {
				res.Metrics.PointsPruned++
				continue
			}
			// Precedence (topological ordinals) plus exactness: p is a
			// definite skyline point, output immediately.
			res.SkylineIDs = append(res.SkylineIDs, p.ID)
			res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
			checker.add(p)
			continue
		}
		if checker.dominatedBox(it.e.Lo[:nTO], it.e.Lo[nTO:], it.e.Hi[nTO:]) {
			res.Metrics.NodesPruned++
			continue
		}
		node := tree.Open(it.e)
		res.Metrics.NodesOpened++
		for _, e := range node.Entries {
			// Children are screened before insertion (as in BBS) and
			// re-checked lazily when popped, since the skyline grows in
			// between.
			if e.IsLeafEntry() {
				h.push(e)
				continue
			}
			if checker.dominatedBox(e.Lo[:nTO], e.Lo[nTO:], e.Hi[nTO:]) {
				res.Metrics.NodesPruned++
				continue
			}
			h.push(e)
		}
	}

	res.Metrics.DomChecks = checker.checks()
	res.Metrics.ReadIOs = io.Reads
	res.Metrics.WriteIOs = io.Writes
	res.Metrics.CPU = clock.elapsed()
}

// buildSTSSTree bulk-loads the sTSS index: an R-tree over the
// (TO…, topological ordinal…) coordinates of every point. Leaf entry
// ids are indexes into ds.Pts.
func buildSTSSTree(ds *Dataset, opt Options, io *rtree.IOCounter) *rtree.Tree {
	dims := ds.NumTO() + ds.NumPO()
	pts := make([]rtree.Point, len(ds.Pts))
	for i := range ds.Pts {
		pts[i] = rtree.Point{Coords: stssCoords(ds.Domains, &ds.Pts[i]), ID: int32(i)}
	}
	return rtree.BulkLoad(dims, pts, opt.capacityFor(dims), io)
}

// BNL computes the skyline with a block-nested-loops candidate list
// using the exact dominance oracle (TPrefers per PO dimension). It is
// neither progressive (output happens only at the end) nor precedence-
// aware; it serves as a simple correct baseline and as the local-
// skyline substrate of the dTSS pre-processing optimisation. The
// candidate window runs on the dominance kernel (columnar masked scans
// over zone-mapped blocks, with an aliveness mask standing in for
// eviction) unless opt.NoKernel selects the scalar reference loop.
func BNL(ds *Dataset, opt Options) *Result {
	opt = opt.withDefaults()
	if opt.NoKernel {
		return bnlScalar(ds)
	}
	res := &Result{}
	clock := newEmitClock(&rtree.IOCounter{})
	k := newColSet(ds.Domains, ds.NumTO(), 64, opt.ClosureBudget, false)
	pr := k.newProbe()
	for i := range ds.Pts {
		p := &ds.Pts[i]
		k.begin(pr, p.TO, p.PO, true)
		if k.anyDominator(pr) {
			continue
		}
		// p is undominated: evict what it dominates, then join the
		// window. (If p were dominated it could evict nothing — its
		// dominator would dominate the same members, and the window is
		// mutually non-dominated.)
		k.evictDominatedBy(pr)
		k.maybeCompact()
		k.append(p.TO, p.PO, p.ID, -1)
	}
	res.SkylineIDs = k.aliveIDs(res.SkylineIDs)
	for _, id := range res.SkylineIDs {
		res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(id))
	}
	pr.addTo(&res.Metrics)
	res.Metrics.CPU = clock.elapsed()
	return res
}

// bnlScalar is the scalar *Point/interval BNL the kernel path is
// validated against (Options.NoKernel).
func bnlScalar(ds *Dataset) *Result {
	res := &Result{}
	clock := newEmitClock(&rtree.IOCounter{})
	var cands []*Point
	var checks int64
	for i := range ds.Pts {
		p := &ds.Pts[i]
		dominated := false
		keep := cands[:0]
		for _, c := range cands {
			if dominated {
				keep = append(keep, c)
				continue
			}
			checks++
			if DominatesUnder(ds.Domains, c, p) {
				dominated = true
				keep = append(keep, c)
				continue
			}
			checks++
			if !DominatesUnder(ds.Domains, p, c) {
				keep = append(keep, c)
			}
		}
		cands = keep
		if !dominated {
			cands = append(cands, p)
		}
	}
	for _, c := range cands {
		res.SkylineIDs = append(res.SkylineIDs, c.ID)
		res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(c.ID))
	}
	res.Metrics.DomChecks = checks
	res.Metrics.CPU = clock.elapsed()
	return res
}

// SFS computes the skyline by presorting on a preference function that
// is monotone under exact dominance — the sum of TO coordinates and
// topological ordinals — and then scanning with a candidate list
// (Chomicki et al.). The presort establishes precedence, so accepted
// points are emitted immediately and never evicted; the grow-only
// window runs on the dominance kernel unless opt.NoKernel.
func SFS(ds *Dataset, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	clock := newEmitClock(&rtree.IOCounter{})
	order := make([]int32, len(ds.Pts))
	key := make([]int64, len(ds.Pts))
	for i := range ds.Pts {
		order[i] = int32(i)
		var s int64
		for _, v := range ds.Pts[i].TO {
			s += int64(v)
		}
		for d, v := range ds.Pts[i].PO {
			s += int64(ds.Domains[d].Ord(v))
		}
		key[i] = s
	}
	sortByKey(order, key)
	if !opt.NoKernel {
		k := newColSet(ds.Domains, ds.NumTO(), 64, opt.ClosureBudget, false)
		pr := k.newProbe()
		for _, idx := range order {
			p := &ds.Pts[idx]
			k.begin(pr, p.TO, p.PO, false)
			if k.anyDominator(pr) {
				continue
			}
			k.append(p.TO, p.PO, p.ID, -1)
			res.SkylineIDs = append(res.SkylineIDs, p.ID)
			res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
		}
		pr.addTo(&res.Metrics)
		res.Metrics.CPU = clock.elapsed()
		return res
	}
	var checks int64
	var sky []*Point
	for _, idx := range order {
		p := &ds.Pts[idx]
		dominated := false
		for _, s := range sky {
			checks++
			if DominatesUnder(ds.Domains, s, p) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		sky = append(sky, p)
		res.SkylineIDs = append(res.SkylineIDs, p.ID)
		res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
	}
	res.Metrics.DomChecks = checks
	res.Metrics.CPU = clock.elapsed()
	return res
}

// sortByKey sorts order by ascending key, breaking ties by id for
// determinism (simple bottom-up merge sort to avoid sort.Slice's
// interface overhead on large inputs).
func sortByKey(order []int32, key []int64) {
	n := len(order)
	buf := make([]int32, n)
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				a, b := order[i], order[j]
				if key[a] < key[b] || (key[a] == key[b] && a <= b) {
					buf[k] = a
					i++
				} else {
					buf[k] = b
					j++
				}
				k++
			}
			copy(buf[k:], order[i:mid])
			k += mid - i
			copy(buf[k:], order[j:hi])
			copy(order[lo:hi], buf[lo:hi])
		}
	}
}
