package core

import (
	"testing"

	"repro/internal/poset"
)

// --- Paper worked examples -------------------------------------------------
//
// These tests pin the implementation to the concrete numbers in the
// paper: Table I (flight example, two partial orders), Table II (sTSS
// trace over the Figure 2 domain and Figure 3 data) and the dynamic
// walkthrough of Figures 5 and 6.

// flightsDataset builds the introduction's ticket table (Figure 1(a)):
// TO attributes (price, stops), PO attribute airline with values
// a=0, b=1, c=2, d=3. Point IDs are 1-based like the paper's p1..p10.
func flightsDataset(dag *poset.DAG) *Dataset {
	rows := []struct {
		price, stops int32
		airline      int32
	}{
		{1800, 0, 0}, {2000, 0, 0}, {1800, 0, 1}, {1200, 1, 1}, {1400, 1, 0},
		{1000, 1, 1}, {1000, 1, 3}, {1800, 1, 2}, {500, 2, 3}, {1200, 2, 2},
	}
	ds := &Dataset{Domains: []*poset.Domain{poset.MustDomain(dag)}}
	for i, r := range rows {
		ds.Pts = append(ds.Pts, Point{
			ID: int32(i + 1),
			TO: []int32{r.price, r.stops},
			PO: []int32{r.airline},
		})
	}
	return ds
}

// airlineOrder1 is Table I's first partial order: a over b and c, any
// company over d (a→b, a→c, b→d, c→d).
func airlineOrder1() *poset.DAG {
	dag := poset.NewDAG(4)
	dag.MustEdge(0, 1)
	dag.MustEdge(0, 2)
	dag.MustEdge(1, 3)
	dag.MustEdge(2, 3)
	return dag
}

// airlineOrder2 is Table I's second partial order: only b over a.
func airlineOrder2() *poset.DAG {
	dag := poset.NewDAG(4)
	dag.MustEdge(1, 0)
	return dag
}

func idSet(ids []int32) map[int32]bool {
	m := make(map[int32]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func sameIDSet(a, b []int32) bool {
	sa, sb := idSet(a), idSet(b)
	if len(sa) != len(sb) || len(a) != len(b) {
		return false
	}
	for id := range sa {
		if !sb[id] {
			return false
		}
	}
	return true
}

// allStaticAlgorithms runs every static algorithm (and every sTSS
// configuration) on ds, returning named results.
func allStaticAlgorithms(ds *Dataset) map[string]*Result {
	return map[string]*Result{
		"BNL":             BNL(ds, Options{}),
		"SFS":             SFS(ds, Options{}),
		"BBS+":            BBSPlus(ds, Options{}),
		"SDC":             SDC(ds, Options{}),
		"SDC+":            SDCPlus(ds, Options{}),
		"sTSS/list":       STSS(ds, Options{}),
		"sTSS/list/stab":  STSS(ds, Options{StabOnly: true}),
		"sTSS/mem":        STSS(ds, Options{UseMemTree: true}),
		"sTSS/mem/stab":   STSS(ds, Options{UseMemTree: true, StabOnly: true}),
		"sTSS/nodyadic":   STSS(ds, Options{NoDyadic: true}),
		"sTSS/mem/nodya":  STSS(ds, Options{UseMemTree: true, NoDyadic: true}),
		"sTSS/smallnodes": STSS(ds, Options{Capacity: 3}),
	}
}

func TestTableIFirstOrder(t *testing.T) {
	ds := flightsDataset(airlineOrder1())
	want := []int32{1, 5, 6, 9, 10}
	if got := ds.NaiveSkyline(); !sameIDSet(got, want) {
		t.Fatalf("naive skyline = %v, want %v", got, want)
	}
	for name, res := range allStaticAlgorithms(ds) {
		if !sameIDSet(res.SkylineIDs, want) {
			t.Errorf("%s skyline = %v, want %v", name, res.SkylineIDs, want)
		}
	}
}

func TestTableISecondOrder(t *testing.T) {
	ds := flightsDataset(airlineOrder2())
	want := []int32{3, 6, 7, 8, 9, 10}
	if got := ds.NaiveSkyline(); !sameIDSet(got, want) {
		t.Fatalf("naive skyline = %v, want %v", got, want)
	}
	for name, res := range allStaticAlgorithms(ds) {
		if !sameIDSet(res.SkylineIDs, want) {
			t.Errorf("%s skyline = %v, want %v", name, res.SkylineIDs, want)
		}
	}
}

func TestFlightsTOOnlySkyline(t *testing.T) {
	// Figure 1(b): ignoring the airline, the skyline is p1,p3,p6,p7,p9.
	base := flightsDataset(airlineOrder1())
	ds := &Dataset{}
	for _, p := range base.Pts {
		ds.Pts = append(ds.Pts, Point{ID: p.ID, TO: p.TO})
	}
	want := []int32{1, 3, 6, 7, 9}
	if got := ds.NaiveSkyline(); !sameIDSet(got, want) {
		t.Fatalf("naive TO skyline = %v, want %v", got, want)
	}
	for _, res := range []*Result{BNL(ds, Options{}), SFS(ds, Options{}), STSS(ds, Options{}), STSS(ds, Options{UseMemTree: true})} {
		if !sameIDSet(res.SkylineIDs, want) {
			t.Errorf("TO-only skyline = %v, want %v", res.SkylineIDs, want)
		}
	}
}

// figure2Domain rebuilds the paper's Figure 2 domain with its exact
// spanning tree (values a..i = 0..8).
func figure2Domain() *poset.Domain {
	dag := poset.NewDAG(9)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {1, 3}, {1, 4}, {2, 5}, {3, 6}, {6, 7}, {6, 8}, // tree
		{0, 2}, {2, 6}, {4, 6}, {5, 7}, // non-tree
	} {
		dag.MustEdge(e[0], e[1])
	}
	return poset.MustDomain(dag, poset.WithTreeParents([]int32{-1, 0, 1, 1, 1, 2, 3, 6, 6}))
}

// figure3Dataset is the running example of §IV-A: one TO attribute A1
// and the Figure 2 PO attribute A2.
func figure3Dataset() *Dataset {
	const (
		a = iota
		b
		c
		d
		e
		f
		g
		h
		i
	)
	rows := []struct {
		a1 int32
		a2 int32
	}{
		{2, c}, {3, d}, {1, h}, {8, a}, {6, e}, {7, c}, {9, b},
		{4, i}, {2, f}, {3, g}, {5, g}, {7, f}, {9, h},
	}
	ds := &Dataset{Domains: []*poset.Domain{figure2Domain()}}
	for k, r := range rows {
		ds.Pts = append(ds.Pts, Point{ID: int32(k + 1), TO: []int32{r.a1}, PO: []int32{r.a2}})
	}
	return ds
}

// TestTableII reproduces the sTSS execution of Table II: the skyline is
// {p1..p5}, discovered in exactly that order (the optimal progressive
// emission order by mindist), with at least one subtree pruned by the
// t-dominance check (the N4 prune of step 7).
func TestTableII(t *testing.T) {
	ds := figure3Dataset()
	want := []int32{1, 2, 3, 4, 5}
	if got := ds.NaiveSkyline(); !sameIDSet(got, want) {
		t.Fatalf("naive skyline = %v, want %v", got, want)
	}
	res := STSS(ds, Options{Capacity: 3}) // paper uses node capacity 3
	for k, id := range want {
		if k >= len(res.SkylineIDs) || res.SkylineIDs[k] != id {
			t.Fatalf("sTSS emission order = %v, want %v", res.SkylineIDs, want)
		}
	}
	if len(res.SkylineIDs) != len(want) {
		t.Fatalf("sTSS skyline = %v, want %v", res.SkylineIDs, want)
	}
	if res.Metrics.NodesPruned == 0 {
		t.Error("expected at least one MBB prune (Table II step 7)")
	}
	if len(res.Metrics.Emissions) != 5 {
		t.Errorf("expected 5 emissions, got %d", len(res.Metrics.Emissions))
	}
	// Same result across every configuration.
	for name, r := range allStaticAlgorithms(ds) {
		if !sameIDSet(r.SkylineIDs, want) {
			t.Errorf("%s = %v, want %v", name, r.SkylineIDs, want)
		}
	}
}

// figure5Dataset is the dynamic walkthrough data (§V-A): two TO
// attributes and a three-value PO attribute A3 (a=0, b=1, c=2).
func figure5Dataset() *Dataset {
	rows := []struct {
		a1, a2 int32
		a3     int32
	}{
		{1, 2, 0}, {3, 1, 0}, {3, 4, 0}, {4, 5, 0}, {2, 2, 1},
		{1, 5, 1}, {2, 5, 2}, {3, 4, 2}, {4, 4, 2}, {5, 2, 2},
	}
	// The dataset's own domains carry no preferences; queries bring
	// their own.
	ds := &Dataset{Domains: []*poset.Domain{poset.MustDomain(poset.NewDAG(3))}}
	for k, r := range rows {
		ds.Pts = append(ds.Pts, Point{ID: int32(k + 1), TO: []int32{r.a1, r.a2}, PO: []int32{r.a3}})
	}
	return ds
}

func TestDynamicWalkthrough(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	if db.NumGroups() != 3 {
		t.Fatalf("groups = %d, want 3 (Ga, Gb, Gc)", db.NumGroups())
	}

	// Query 1 (Figure 5): b better than c, nothing else.
	q1 := poset.NewDAG(3)
	q1.MustEdge(1, 2)
	dom1 := poset.MustDomain(q1)
	want1 := []int32{1, 2, 5, 6}
	if got := NaiveSkylineUnder([]*poset.Domain{dom1}, ds.Pts); !sameIDSet(got, want1) {
		t.Fatalf("naive dynamic skyline q1 = %v, want %v", got, want1)
	}
	for _, opt := range []Options{
		{}, {UseMemTree: true}, {PrecomputedLocal: true}, {UseMemTree: true, PrecomputedLocal: true},
	} {
		res, err := db.QueryTSS([]*poset.Domain{dom1}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDSet(res.SkylineIDs, want1) {
			t.Errorf("dTSS(%+v) q1 = %v, want %v", opt, res.SkylineIDs, want1)
		}
	}
	resB, err := DynamicSDCPlus(ds, []*poset.Domain{dom1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(resB.SkylineIDs, want1) {
		t.Errorf("dynamic SDC+ q1 = %v, want %v", resB.SkylineIDs, want1)
	}
	// The rebuild baseline must charge the external sort.
	if resB.Metrics.WriteIOs == 0 || resB.Metrics.ReadIOs == 0 {
		t.Error("dynamic SDC+ should charge rebuild IOs")
	}

	// Query 2 (Figure 6): a and c better than b.
	q2 := poset.NewDAG(3)
	q2.MustEdge(0, 1)
	q2.MustEdge(2, 1)
	dom2 := poset.MustDomain(q2)
	want2 := []int32{1, 2, 7, 8, 10}
	if got := NaiveSkylineUnder([]*poset.Domain{dom2}, ds.Pts); !sameIDSet(got, want2) {
		t.Fatalf("naive dynamic skyline q2 = %v, want %v", got, want2)
	}
	res2, err := db.QueryTSS([]*poset.Domain{dom2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(res2.SkylineIDs, want2) {
		t.Errorf("dTSS q2 = %v, want %v", res2.SkylineIDs, want2)
	}
	res2b, err := DynamicSDCPlus(ds, []*poset.Domain{dom2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(res2b.SkylineIDs, want2) {
		t.Errorf("dynamic SDC+ q2 = %v, want %v", res2b.SkylineIDs, want2)
	}
}

// TestDynamicGroupSkipped: in query 1 of the walkthrough the whole Gc
// group is dominated via its root MBB — dTSS must spend exactly one
// node visit (the root) on it. We verify the prune counter sees it.
func TestDynamicGroupSkipped(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	q1 := poset.NewDAG(3)
	q1.MustEdge(1, 2)
	res, err := db.QueryTSS([]*poset.Domain{poset.MustDomain(q1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.NodesPruned == 0 {
		t.Error("expected the Gc group to be pruned at its root")
	}
}

func TestQueryValidation(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	// Wrong number of domains.
	if _, err := db.QueryTSS(nil, Options{}); err == nil {
		t.Error("QueryTSS must reject missing domains")
	}
	// Wrong domain size.
	wrong := poset.MustDomain(poset.NewDAG(5))
	if _, err := db.QueryTSS([]*poset.Domain{wrong}, Options{}); err == nil {
		t.Error("QueryTSS must reject mis-sized domains")
	}
	if _, err := DynamicSDCPlus(ds, []*poset.Domain{wrong}, Options{}); err == nil {
		t.Error("DynamicSDCPlus must reject mis-sized domains")
	}
}
