package core

import (
	"context"
	"time"

	"repro/internal/poset"
	"repro/internal/rtree"
)

// stratumIndex is one SDC+ stratum: the points whose maximum uncovered
// level equals the stratum's level, indexed by an R-tree in the
// transformed m-dominance space.
type stratumIndex struct {
	level int32
	idxs  []int32
	tree  *rtree.Tree
}

// buildStrata partitions the points by uncovered level under the given
// domains and bulk-loads one transformed-space R-tree per stratum.
// Page writes are charged to io.
func buildStrata(ds *Dataset, domains []*poset.Domain, opt Options, io *rtree.IOCounter) []stratumIndex {
	maxLv := int32(0)
	for _, dm := range domains {
		if dm.MaxLevel() > maxLv {
			maxLv = dm.MaxLevel()
		}
	}
	buckets := make([][]int32, maxLv+1)
	for i := range ds.Pts {
		lv := pointLevel(domains, &ds.Pts[i])
		buckets[lv] = append(buckets[lv], int32(i))
	}
	var strata []stratumIndex
	for lv, idxs := range buckets {
		if len(idxs) == 0 {
			continue
		}
		strata = append(strata, stratumIndex{
			level: int32(lv),
			idxs:  idxs,
			tree:  buildMTree(ds, domains, idxs, opt, io),
		})
	}
	return strata
}

// SDCPlus implements the strongest baseline of Chan et al. (§II-C):
// one stratum per uncovered level, processed in ascending order. A
// global list holds confirmed skyline points; a local list per stratum
// holds candidates that may still be false hits. MBBs are screened with
// m-dominance against both lists; de-heaped points are checked with the
// exact dominance oracle against the local then global lists, and
// cross-examine the local list to evict false hits. A stratum's local
// list becomes definite — and is output — only when the stratum is
// exhausted, which is why SDC+ emits in bursts (Figure 11).
func SDCPlus(ds *Dataset, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	if len(ds.Pts) == 0 {
		return res
	}

	buildStart := time.Now()
	buildIO := &rtree.IOCounter{}
	strata := buildStrata(ds, ds.Domains, opt, buildIO)
	res.Metrics.BuildWriteIOs = buildIO.Writes
	res.Metrics.BuildCPU = time.Since(buildStart)

	io := &rtree.IOCounter{}
	for i := range strata {
		strata[i].tree.SetIO(io)
	}
	_ = runSDCPlus(nil, ds, ds.Domains, strata, io, res) // nil ctx never cancels
	return res
}

// runSDCPlus executes the SDC+ query phase over prebuilt strata,
// appending results and metrics to res. Reads performed on the strata
// trees are observed as deltas on each tree's own counter. ctx is
// checked every dynCtxCheckEvery heap steps — the same cooperative
// cadence as the dTSS traversal loops — so even the rebuild-everything
// baseline releases its worker mid-run when the request is canceled; a
// nil ctx never cancels.
func runSDCPlus(ctx context.Context, ds *Dataset, domains []*poset.Domain, strata []stratumIndex, io *rtree.IOCounter, res *Result) error {
	clock := newEmitClock(io)
	type cand struct {
		p  *Point
		co []int32
	}
	var global []cand
	var checks int64

	mDominatedCorner := func(corner []int32, local []cand) bool {
		for i := range global {
			checks++
			if paretoDominates(global[i].co, corner) {
				return true
			}
		}
		for i := range local {
			checks++
			if paretoDominates(local[i].co, corner) {
				return true
			}
		}
		return false
	}

	for _, st := range strata {
		var local []cand
		var h bbsHeap
		for _, e := range st.tree.Root().Entries {
			h.push(e)
		}
		for steps := 0; h.len() > 0; steps++ {
			if steps%dynCtxCheckEvery == dynCtxCheckEvery-1 {
				if err := dynCtxErr(ctx); err != nil {
					return err
				}
			}
			it := h.pop()
			if it.isPoint {
				p := &ds.Pts[it.e.ID]
				// Exact dominance against the local list.
				dominated := false
				for i := range local {
					checks++
					if DominatesUnder(domains, local[i].p, p) {
						dominated = true
						break
					}
				}
				if dominated {
					res.Metrics.PointsPruned++
					continue
				}
				// Evict local false hits dominated by p.
				keep := local[:0]
				for _, c := range local {
					checks++
					if !DominatesUnder(domains, p, c.p) {
						keep = append(keep, c)
					}
				}
				local = keep
				// Exact dominance against the global list.
				for i := range global {
					checks++
					if DominatesUnder(domains, global[i].p, p) {
						dominated = true
						break
					}
				}
				if dominated {
					res.Metrics.PointsPruned++
					continue
				}
				local = append(local, cand{p: p, co: it.e.Lo})
				continue
			}
			if mDominatedCorner(it.e.Lo, local) {
				res.Metrics.NodesPruned++
				continue
			}
			node := st.tree.Open(it.e)
			res.Metrics.NodesOpened++
			for _, e := range node.Entries {
				if !e.IsLeafEntry() && mDominatedCorner(e.Lo, local) {
					res.Metrics.NodesPruned++
					continue
				}
				h.push(e)
			}
		}
		// Stratum exhausted: the local list holds actual skyline points.
		for _, c := range local {
			res.SkylineIDs = append(res.SkylineIDs, c.p.ID)
			res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(c.p.ID))
		}
		global = append(global, local...)
	}

	res.Metrics.DomChecks += checks
	res.Metrics.ReadIOs += io.Reads
	res.Metrics.WriteIOs += io.Writes
	res.Metrics.CPU += clock.elapsed()
	return nil
}
