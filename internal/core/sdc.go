package core

import (
	"time"

	"repro/internal/rtree"
)

// SDC implements the two-strata baseline of Chan et al. (§II-C): BBS
// over the transformed m-dominance space, where points whose PO values
// are all *completely covered* (uncovered level 0) can be output as
// soon as they survive the m-dominance check — among such points
// m-dominance coincides with actual dominance — while partially covered
// points are withheld as candidates and cross-examined at the end.
func SDC(ds *Dataset, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	if len(ds.Pts) == 0 {
		return res
	}

	buildStart := time.Now()
	io := &rtree.IOCounter{}
	tree := buildMTree(ds, ds.Domains, nil, opt, io)
	res.Metrics.BuildWriteIOs = io.Writes
	res.Metrics.BuildCPU = time.Since(buildStart)
	io.Writes, io.Reads = 0, 0

	clock := newEmitClock(io)
	type cand struct {
		p  *Point
		co []int32
	}
	var confirmed, held []cand
	var checks int64

	mDominatedCorner := func(corner []int32) bool {
		for i := range confirmed {
			checks++
			if paretoDominates(confirmed[i].co, corner) {
				return true
			}
		}
		for i := range held {
			checks++
			if paretoDominates(held[i].co, corner) {
				return true
			}
		}
		return false
	}

	var h bbsHeap
	if len(ds.Pts) > 0 {
		for _, e := range tree.Root().Entries {
			h.push(e)
		}
	}
	for h.len() > 0 {
		it := h.pop()
		if it.isPoint {
			if mDominatedCorner(it.e.Lo) {
				res.Metrics.PointsPruned++
				continue
			}
			c := cand{p: &ds.Pts[it.e.ID], co: it.e.Lo}
			if completelyCovered(ds.Domains, c.p) {
				// Safe to output: any actual dominator of a completely
				// covered point reaches it through tree edges only, so
				// it would have m-dominated it already.
				confirmed = append(confirmed, c)
				res.SkylineIDs = append(res.SkylineIDs, c.p.ID)
				res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(c.p.ID))
			} else {
				held = append(held, c)
			}
			continue
		}
		if mDominatedCorner(it.e.Lo) {
			res.Metrics.NodesPruned++
			continue
		}
		node := tree.Open(it.e)
		res.Metrics.NodesOpened++
		for _, e := range node.Entries {
			if !e.IsLeafEntry() && mDominatedCorner(e.Lo) {
				res.Metrics.NodesPruned++
				continue
			}
			h.push(e)
		}
	}

	// Terminal cross-examination of the partially covered stratum.
	for i := range held {
		dominated := false
		for j := range confirmed {
			checks++
			if DominatesUnder(ds.Domains, confirmed[j].p, held[i].p) {
				dominated = true
				break
			}
		}
		if !dominated {
			for j := range held {
				if i == j {
					continue
				}
				checks++
				if DominatesUnder(ds.Domains, held[j].p, held[i].p) {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			res.SkylineIDs = append(res.SkylineIDs, held[i].p.ID)
			res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(held[i].p.ID))
		}
	}

	res.Metrics.DomChecks = checks
	res.Metrics.ReadIOs = io.Reads
	res.Metrics.WriteIOs = io.Writes
	res.Metrics.CPU = clock.elapsed()
	return res
}
