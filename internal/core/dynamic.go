package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/poset"
	"repro/internal/rtree"
)

// dynCtxCheckEvery is how many traversal steps pass between cooperative
// context checks inside a dynamic query's group-search loops.
const dynCtxCheckEvery = 4096

// dynCtxErr reports a canceled/expired context as a wrapped error so
// callers can errors.Is against context.Canceled/DeadlineExceeded. A
// nil context never cancels.
func dynCtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: dynamic query canceled: %w", err)
	}
	return nil
}

// DynamicDB is the persistent structure behind dTSS (§V): the points
// partitioned into groups by their PO value combination, with one
// R-tree per group built over the TO attributes only. Because dominance
// *within* a group never depends on the partial order, the groups — and
// their trees — survive any dynamic skyline query; a query only has to
// preprocess its own partial orders (topological sort, spanning tree,
// intervals), which is the entire advantage over the rebuild-everything
// baseline.
type DynamicDB struct {
	ds     *Dataset
	opt    Options
	groups []dynGroup
	byKey  map[string]int // PO value combination -> group index
	cache  *queryCache

	// Stable-id indirection for incremental maintenance (ApplyBatch):
	// group trees, idxs and local lists store *stable* point ids, which
	// survive the row renumbering a removal causes; rowOf maps a stable
	// id to its current row index. A nil rowOf means the identity map
	// (fresh build: stable id == row index), so query paths resolve
	// through row(). stableOf is the inverse (row index -> stable id).
	rowOf    []int32
	stableOf []int32

	// Build metrics for reporting; queries are charged separately. After
	// an ApplyBatch they hold the incremental maintenance cost instead.
	BuildWriteIOs int64
	BuildCPU      time.Duration
}

// row resolves a stable point id to its current row index.
func (db *DynamicDB) row(stable int32) int32 {
	if db.rowOf == nil {
		return stable
	}
	return db.rowOf[stable]
}

// stable resolves a current row index to its stable point id.
func (db *DynamicDB) stable(row int32) int32 {
	if db.stableOf == nil {
		return row
	}
	return db.stableOf[row]
}

// stableSpace returns the size of the stable-id space (ids are
// allocated densely from 0; deleted ids leave holes until a rebuild).
func (db *DynamicDB) stableSpace() int {
	if db.rowOf == nil {
		return len(db.ds.Pts)
	}
	return len(db.rowOf)
}

type dynGroup struct {
	vals []int32 // the PO value per PO dimension shared by all members
	idxs []int32 // point indexes, ordered by ascending TO L1 (mindist)
	tree *rtree.Tree
	// local is the group's TO-only local skyline in ascending-mindist
	// order, for the §V-B pre-processing optimisation.
	local []int32
}

// NewDynamicDB partitions ds and bulk-loads the per-group trees.
// ds.Domains fixes only the value *sets* of the PO attributes; queries
// supply their own preference DAGs over the same value sets.
func NewDynamicDB(ds *Dataset, opt Options) *DynamicDB {
	opt = opt.withDefaults()
	start := time.Now()
	io := &rtree.IOCounter{}
	db := &DynamicDB{ds: ds, opt: opt, byKey: map[string]int{}}

	for i := range ds.Pts {
		k := poKey(ds.Pts[i].PO)
		gi, ok := db.byKey[k]
		if !ok {
			gi = len(db.groups)
			db.byKey[k] = gi
			db.groups = append(db.groups, dynGroup{vals: append([]int32(nil), ds.Pts[i].PO...)})
		}
		db.groups[gi].idxs = append(db.groups[gi].idxs, int32(i))
	}
	nTO := ds.NumTO()
	cap := opt.capacityFor(nTO)
	for gi := range db.groups {
		g := &db.groups[gi]
		pts := make([]rtree.Point, len(g.idxs))
		for k, i := range g.idxs {
			pts[k] = rtree.Point{Coords: ds.Pts[i].TO, ID: i}
		}
		g.tree = rtree.BulkLoad(nTO, pts, cap, io)
		g.local = localSkylineTO(ds, g.idxs)
	}
	db.BuildWriteIOs = io.Writes
	db.BuildCPU = time.Since(start)
	return db
}

func poKey(vals []int32) string {
	b := make([]byte, 0, len(vals)*5)
	for _, v := range vals {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ':')
	}
	return string(b)
}

// localSkylineTO computes the TO-only skyline of a group (its members
// share every PO value, so within-group dominance is plain TO
// dominance), returned in ascending L1 order so that scanning it
// preserves precedence.
func localSkylineTO(ds *Dataset, idxs []int32) []int32 {
	type rec struct {
		idx int32
		sum int64
	}
	recs := make([]rec, len(idxs))
	for k, i := range idxs {
		var s int64
		for _, v := range ds.Pts[i].TO {
			s += int64(v)
		}
		recs[k] = rec{idx: i, sum: s}
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].sum != recs[b].sum {
			return recs[a].sum < recs[b].sum
		}
		return recs[a].idx < recs[b].idx
	})
	var sky []int32
	for _, r := range recs {
		p := &ds.Pts[r.idx]
		dominated := false
		for _, si := range sky {
			if toDominates(ds.Pts[si].TO, p.TO) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, r.idx)
		}
	}
	return sky
}

func toDominates(a, b []int32) bool {
	strict := false
	for d, av := range a {
		if av > b[d] {
			return false
		}
		if av < b[d] {
			strict = true
		}
	}
	return strict
}

// NumGroups returns the number of distinct PO value combinations among
// the current rows. Incremental maintenance can leave a group empty
// (all members removed); such groups cost one slot until compaction
// but are not part of the logical partition.
func (db *DynamicDB) NumGroups() int {
	n := 0
	for gi := range db.groups {
		if len(db.groups[gi].idxs) > 0 {
			n++
		}
	}
	return n
}

// QueryTSS answers a dynamic skyline query with dTSS (§V-A): the query
// supplies one preference DAG per PO attribute (as domains preprocessed
// from them); groups are visited in ascending total topological ordinal
// — which guarantees precedence across groups — and a global structure
// of virtual points provides the exact t-dominance check. Per-query
// work is only the domain preprocessing plus the traversal; no point
// coordinates are recomputed and no index is rebuilt.
//
// The query-phase metrics include the domain preprocessing CPU.
func (db *DynamicDB) QueryTSS(domains []*poset.Domain, opt Options) (*Result, error) {
	return db.QueryTSSContext(context.Background(), domains, opt)
}

// QueryTSSContext is QueryTSS with cooperative cancellation: ctx is
// checked between groups and periodically inside each group's BBS
// traversal, so a server-side request timeout releases its worker
// mid-run instead of paying for the whole skyline. A canceled run
// returns an error wrapping the context's and stores nothing in the
// past-result cache.
func (db *DynamicDB) QueryTSSContext(ctx context.Context, domains []*poset.Domain, opt Options) (resOut *Result, errOut error) {
	opt = opt.withDefaults()
	ds := db.ds
	if len(domains) != ds.NumPO() {
		return nil, fmt.Errorf("core: query has %d domains, dataset has %d PO attributes",
			len(domains), ds.NumPO())
	}
	for d, dm := range domains {
		if dm.Size() != ds.Domains[d].Size() {
			return nil, fmt.Errorf("core: query domain %d has %d values, dataset expects %d",
				d, dm.Size(), ds.Domains[d].Size())
		}
		if opt.UseDyadic {
			dm.EnableDyadic()
		}
	}
	// Past-result cache (§V-B): identical preference DAGs are served
	// without touching any index.
	if cached, sig := db.lookupCache(domains); cached != nil {
		return cached, nil
	} else if sig != "" {
		defer func() { db.storeCache(sig, resOut) }()
	}

	res := &Result{}
	io := &rtree.IOCounter{}
	var extra int64 // page charges outside the trees (local-skyline scans)
	clock := newEmitClock(io)
	clock.extra = &extra
	var buf *rtree.Buffer
	if opt.BufferPages > 0 {
		buf = rtree.NewBuffer(opt.BufferPages)
	}

	// Visit groups in ascending sum of topological ordinals: if group A
	// can dominate group B (every value of A reaches-or-equals B's),
	// every ordinal of A is ≤ B's with at least one strictly smaller,
	// so A comes first — precedence across groups.
	order := db.groupOrder(domains)
	checker := newChecker(domains, ds.NumTO(), opt)

	if opt.PackedRoots && !opt.PrecomputedLocal {
		extra += db.packedRootPages()
	}
	for _, gi := range order {
		if err := dynCtxErr(ctx); err != nil {
			return nil, err
		}
		g := &db.groups[gi]
		if opt.PrecomputedLocal {
			db.scanLocal(g, domains, checker, clock, res, &extra)
			continue
		}
		if err := db.searchGroup(ctx, g, domains, checker, clock, io, buf, opt.PackedRoots, res); err != nil {
			return nil, err
		}
	}

	res.Metrics.DomChecks = checker.checks()
	res.Metrics.ReadIOs = io.Reads + extra
	res.Metrics.WriteIOs = io.Writes
	res.Metrics.CPU = clock.elapsed()
	resOut = res
	return res, nil
}

// searchGroup runs BBS inside one group's TO R-tree, checking every
// entry against the global skyline structure. The group root's MBB is
// tested first, so wholly dominated groups cost exactly one page read
// (the root visit the paper's §VI-C discussion refers to).
//
// The tree is traversed through a per-query rtree.Reader so that
// concurrent queries against the same DynamicDB never touch shared
// mutable state — the property the serving layer's snapshots rely on.
func (db *DynamicDB) searchGroup(ctx context.Context, g *dynGroup, domains []*poset.Domain, checker tChecker, clock *emitClock, io *rtree.IOCounter, buf *rtree.Buffer, packedRoots bool, res *Result) error {
	ds := db.ds
	rd := g.tree.NewReader(io, buf)
	var root *rtree.Node
	if packedRoots {
		root = rd.RootNoIO() // charged sequentially up front
	} else {
		root = rd.Root()
	}
	if len(root.Entries) == 0 {
		return nil
	}
	corner := groupCorner(root, ds.NumTO())
	if checker.dominatedPoint(corner, g.vals) {
		res.Metrics.NodesPruned++
		return nil
	}
	var h bbsHeap
	for _, e := range root.Entries {
		h.push(e)
	}
	for steps := 0; h.len() > 0; steps++ {
		if steps%dynCtxCheckEvery == dynCtxCheckEvery-1 {
			if err := dynCtxErr(ctx); err != nil {
				return err
			}
		}
		it := h.pop()
		if it.isPoint {
			p := &ds.Pts[db.row(it.e.ID)]
			if checker.dominatedPoint(p.TO, p.PO) {
				res.Metrics.PointsPruned++
				continue
			}
			res.SkylineIDs = append(res.SkylineIDs, p.ID)
			res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
			checker.add(p)
			continue
		}
		// An MBB inside a group is a box with the group's fixed PO
		// values: its lower corner acts as a pseudo-point.
		if checker.dominatedPoint(it.e.Lo, g.vals) {
			res.Metrics.NodesPruned++
			continue
		}
		node := rd.Open(it.e)
		res.Metrics.NodesOpened++
		for _, e := range node.Entries {
			if !e.IsLeafEntry() && checker.dominatedPoint(e.Lo, g.vals) {
				res.Metrics.NodesPruned++
				continue
			}
			h.push(e)
		}
	}
	return nil
}

// scanLocal answers from the precomputed local skyline (§V-B): only the
// group's local skyline points are examined, in ascending mindist order.
// Reading the list is charged as sequential data pages.
func (db *DynamicDB) scanLocal(g *dynGroup, domains []*poset.Domain, checker tChecker, clock *emitClock, res *Result, extra *int64) {
	ds := db.ds
	*extra += db.opt.dataPages(len(g.local), ds.NumTO()+ds.NumPO())
	for _, i := range g.local {
		p := &ds.Pts[db.row(i)]
		if checker.dominatedPoint(p.TO, p.PO) {
			res.Metrics.PointsPruned++
			continue
		}
		res.SkylineIDs = append(res.SkylineIDs, p.ID)
		res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
		checker.add(p)
	}
}

// packedRootPages returns the sequential page reads needed to load all
// group roots when they are stored contiguously.
func (db *DynamicDB) packedRootPages() int64 {
	total := 0
	for gi := range db.groups {
		total += db.groups[gi].tree.RootBytes()
	}
	pages := int64(total) / int64(db.opt.PageSize)
	if total%db.opt.PageSize != 0 {
		pages++
	}
	if pages == 0 && len(db.groups) > 0 {
		pages = 1
	}
	return pages
}

// groupCorner computes the lower corner of a root node's MBB.
func groupCorner(root *rtree.Node, dims int) []int32 {
	corner := make([]int32, dims)
	copy(corner, root.Entries[0].Lo)
	for _, e := range root.Entries[1:] {
		for d := 0; d < dims; d++ {
			if e.Lo[d] < corner[d] {
				corner[d] = e.Lo[d]
			}
		}
	}
	return corner
}

// DynamicSDCPlus is the baseline for dynamic queries (§VI-C): SDC+ must
// recompute every node interval, re-classify all tuples into strata and
// rebuild all per-stratum R-trees for each query. The rebuild is charged
// as an external sort — two read+write passes over the data file — plus
// the bulk-load page writes; none of this cost can be amortised across
// queries.
func DynamicSDCPlus(ds *Dataset, domains []*poset.Domain, opt Options) (*Result, error) {
	return DynamicSDCPlusContext(context.Background(), ds, domains, opt)
}

// DynamicSDCPlusContext is DynamicSDCPlus with cooperative cancellation:
// besides the pre-start check, the per-stratum traversal loop checks ctx
// every dynCtxCheckEvery steps — the same cadence the dTSS loops use —
// so a canceled baseline query stops paying for the rebuild it can no
// longer amortise.
func DynamicSDCPlusContext(ctx context.Context, ds *Dataset, domains []*poset.Domain, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(domains) != ds.NumPO() {
		return nil, fmt.Errorf("core: query has %d domains, dataset has %d PO attributes",
			len(domains), ds.NumPO())
	}
	for d, dm := range domains {
		if dm.Size() != ds.Domains[d].Size() {
			return nil, fmt.Errorf("core: query domain %d has %d values, dataset expects %d",
				d, dm.Size(), ds.Domains[d].Size())
		}
	}
	res := &Result{}
	io := &rtree.IOCounter{}

	// External sort into strata: read + write the file, twice.
	pages := opt.dataPages(len(ds.Pts), ds.NumTO()+ds.NumPO())
	io.Reads += 2 * pages
	io.Writes += 2 * pages

	if err := dynCtxErr(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	strata := buildStrata(ds, domains, opt, io) // bulk-load writes on io
	rebuildCPU := time.Since(start)

	if err := runSDCPlus(ctx, ds, domains, strata, io, res); err != nil {
		return nil, err
	}
	res.Metrics.CPU += rebuildCPU
	return res, nil
}
