package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSortBasedMatchNaive: SaLSa and LESS agree with the naive skyline
// on random TO data with heavy ties, across window sizes.
func TestSortBasedMatchNaive(t *testing.T) {
	prop := func(seed int64, nRaw uint16, dimsRaw, winRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%120) + 1
		dims := int(dimsRaw%3) + 1
		ds := randomDataset(rng, n, dims, 0)
		want := ds.NaiveSkyline()
		sal, err := SaLSa(ds, Options{})
		if err != nil {
			t.Log(err)
			return false
		}
		if !sameIDSet(sal.SkylineIDs, want) {
			t.Logf("seed=%d: SaLSa = %v, want %v", seed, sal.SkylineIDs, want)
			return false
		}
		less, err := LESS(ds, Options{LESSWindow: int(winRaw % 16)})
		if err != nil {
			t.Log(err)
			return false
		}
		if !sameIDSet(less.SkylineIDs, want) {
			t.Logf("seed=%d: LESS = %v, want %v", seed, less.SkylineIDs, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSaLSaEarlyStop: on data with one clearly dominating point, SaLSa
// must terminate without examining the bulk of the data.
func TestSaLSaEarlyStop(t *testing.T) {
	ds := &Dataset{}
	ds.Pts = append(ds.Pts, Point{ID: 0, TO: []int32{1, 1}}) // dominates all below
	rng := rand.New(rand.NewSource(41))
	for i := 1; i <= 1000; i++ {
		ds.Pts = append(ds.Pts, Point{ID: int32(i), TO: []int32{
			10 + int32(rng.Intn(100)), 10 + int32(rng.Intn(100)),
		}})
	}
	res, err := SaLSa(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkylineIDs) != 1 || res.SkylineIDs[0] != 0 {
		t.Fatalf("skyline = %v, want [0]", res.SkylineIDs)
	}
	if res.Metrics.PointsPruned == 0 {
		t.Error("SaLSa should stop early and skip unexamined points")
	}
}

// TestSaLSaStopIsStrict: points tying the stop bound must still be
// examined (strict inequality), so duplicates on the stop frontier are
// not lost.
func TestSaLSaStopIsStrict(t *testing.T) {
	ds := &Dataset{
		Pts: []Point{
			{ID: 0, TO: []int32{2, 2}},
			{ID: 1, TO: []int32{2, 2}}, // duplicate of the stop point
			{ID: 2, TO: []int32{1, 4}},
			{ID: 3, TO: []int32{4, 1}},
		},
	}
	want := ds.NaiveSkyline()
	res, err := SaLSa(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(res.SkylineIDs, want) {
		t.Fatalf("skyline = %v, want %v", res.SkylineIDs, want)
	}
}

// TestLESSFilterEliminates: the elimination-filter window drops
// dominated points before the sort on suitable data.
func TestLESSFilterEliminates(t *testing.T) {
	ds := &Dataset{}
	ds.Pts = append(ds.Pts, Point{ID: 0, TO: []int32{0, 0}})
	for i := 1; i <= 500; i++ {
		ds.Pts = append(ds.Pts, Point{ID: int32(i), TO: []int32{int32(i), int32(i)}})
	}
	res, err := LESS(ds, Options{LESSWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SkylineIDs) != 1 {
		t.Fatalf("skyline = %v", res.SkylineIDs)
	}
	if res.Metrics.PointsPruned != 500 {
		t.Errorf("filter eliminated %d, want 500", res.Metrics.PointsPruned)
	}
}

func TestSortBasedRejectPO(t *testing.T) {
	ds := flightsDataset(airlineOrder1())
	if _, err := SaLSa(ds, Options{}); err == nil {
		t.Error("SaLSa must reject PO attributes")
	}
	if _, err := LESS(ds, Options{LESSWindow: 8}); err == nil {
		t.Error("LESS must reject PO attributes")
	}
}

func TestSortBasedEmpty(t *testing.T) {
	empty := &Dataset{}
	if res, err := SaLSa(empty, Options{}); err != nil || len(res.SkylineIDs) != 0 {
		t.Error("SaLSa on empty dataset broken")
	}
	if res, err := LESS(empty, Options{}); err != nil || len(res.SkylineIDs) != 0 {
		t.Error("LESS on empty dataset broken")
	}
}

// TestSortBasedAgainstFlightsTO: the Figure 1(b) TO-only skyline.
func TestSortBasedAgainstFlightsTO(t *testing.T) {
	base := flightsDataset(airlineOrder1())
	ds := &Dataset{}
	for _, p := range base.Pts {
		ds.Pts = append(ds.Pts, Point{ID: p.ID, TO: p.TO})
	}
	want := []int32{1, 3, 6, 7, 9}
	sal, _ := SaLSa(ds, Options{})
	if !sameIDSet(sal.SkylineIDs, want) {
		t.Errorf("SaLSa = %v, want %v", sal.SkylineIDs, want)
	}
	less, _ := LESS(ds, Options{LESSWindow: 2})
	if !sameIDSet(less.SkylineIDs, want) {
		t.Errorf("LESS = %v, want %v", less.SkylineIDs, want)
	}
}
