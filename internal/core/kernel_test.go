package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestColSetCompactInterleaved: compaction must preserve exactly the
// live members, in insertion order, when survivors and corpses
// interleave within alive words. This is the regression test for a
// compaction bug where the rebuilt alive mask reused the old mask's
// backing array and clobbered liveness bits ahead of the read cursor,
// silently dropping the oldest survivors.
func TestColSetCompactInterleaved(t *testing.T) {
	k := newColSet(nil, 2, 0, 0, false)
	n := 1024
	for i := 0; i < n; i++ {
		k.append([]int32{int32(i), int32(n - i)}, nil, int32(i), -1)
	}
	// Kill two of every three members (strictly more than half, so
	// maybeCompact actually compacts), leaving survivors interleaved.
	var want []int32
	for i := 0; i < n; i++ {
		if i%3 != 0 {
			k.alive[i>>6] &^= 1 << (uint(i) & 63)
			k.nAlive--
		} else {
			want = append(want, int32(i))
		}
	}
	k.maybeCompact()
	if k.cols.Len() != len(want) {
		t.Fatalf("compacted to %d members, want %d", k.cols.Len(), len(want))
	}
	got := k.aliveIDs(nil)
	if len(got) != len(want) {
		t.Fatalf("%d alive ids after compaction, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("alive[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestMergeSurvivorsKernelMatchesRef: the kernel merge pass and its
// scalar reference answer identically — same survivor indexes, and the
// survivor set is exactly the global skyline — for random shardings
// where each shard contributes its own local skyline (the precondition
// cluster shard responses satisfy by construction).
func TestMergeSurvivorsKernelMatchesRef(t *testing.T) {
	prop := func(seed int64, nRaw uint16, shRaw, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%80) + 1
		nShards := int(shRaw%4) + 1
		workers := int(wRaw%4) + 1
		ds := randomDataset(rng, n, 2, 2)

		var pts []Point
		var shard []int
		for s := 0; s < nShards; s++ {
			var local []Point
			for i := s; i < n; i += nShards {
				local = append(local, ds.Pts[i])
			}
			if len(local) == 0 {
				continue
			}
			keep := map[int32]bool{}
			for _, id := range NaiveSkylineUnder(ds.Domains, local) {
				keep[id] = true
			}
			for _, p := range local {
				if keep[p.ID] {
					pts = append(pts, p)
					shard = append(shard, s)
				}
			}
		}

		got := MergeSurvivors(ds.Domains, pts, shard, workers)
		ref := MergeSurvivorsRef(ds.Domains, pts, shard, workers)
		if len(got) != len(ref) {
			t.Logf("seed=%d: kernel kept %d, reference kept %d", seed, len(got), len(ref))
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Logf("seed=%d: survivor %d: kernel idx %d, reference idx %d", seed, i, got[i], ref[i])
				return false
			}
		}

		var ids []int32
		for _, i := range got {
			ids = append(ids, pts[i].ID)
		}
		if !sameIDSet(ids, ds.NaiveSkyline()) {
			t.Logf("seed=%d: merge survivors %v, global skyline %v", seed, ids, ds.NaiveSkyline())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
