// Package core implements the skyline algorithms of "Topologically
// Sorted Skylines for Partially Ordered Domains" (ICDE 2009): the
// paper's contribution sTSS/dTSS and the baselines it is evaluated
// against (BBS+, SDC, SDC+ of Chan et al., and the classic totally
// ordered algorithms BNL, SFS and BBS).
//
// Conventions: every attribute is minimised — smaller totally ordered
// (TO) values are better, and partially ordered (PO) values are better
// when they are t-preferred (reachable in the domain DAG). A point
// dominates another when it is at least as good everywhere and strictly
// better somewhere (Definition 2 with the standard reading that an
// incomparable PO value blocks dominance, which is the semantics the
// paper's Table I results require).
package core

import (
	"fmt"

	"repro/internal/poset"
)

// Point is a tuple: TO holds the totally ordered attribute values,
// PO the value ids into the corresponding poset.Domain of each partially
// ordered attribute.
type Point struct {
	ID int32
	TO []int32
	PO []int32
}

// Dataset couples points with the PO domains their PO attributes refer
// to. Domains[d] interprets Points[i].PO[d].
type Dataset struct {
	Pts     []Point
	Domains []*poset.Domain
}

// Validate checks structural consistency: uniform dimensionalities and
// PO values inside their domains.
func (ds *Dataset) Validate() error {
	if len(ds.Pts) == 0 {
		return nil
	}
	nTO, nPO := len(ds.Pts[0].TO), len(ds.Pts[0].PO)
	if nPO != len(ds.Domains) {
		return fmt.Errorf("core: %d PO attributes but %d domains", nPO, len(ds.Domains))
	}
	for i := range ds.Pts {
		p := &ds.Pts[i]
		if len(p.TO) != nTO || len(p.PO) != nPO {
			return fmt.Errorf("core: point %d has inconsistent dimensionality", p.ID)
		}
		for d, v := range p.PO {
			if v < 0 || int(v) >= ds.Domains[d].Size() {
				return fmt.Errorf("core: point %d PO[%d]=%d outside domain of size %d",
					p.ID, d, v, ds.Domains[d].Size())
			}
		}
	}
	return nil
}

// NumTO returns the number of totally ordered attributes.
func (ds *Dataset) NumTO() int {
	if len(ds.Pts) == 0 {
		return 0
	}
	return len(ds.Pts[0].TO)
}

// NumPO returns the number of partially ordered attributes.
func (ds *Dataset) NumPO() int { return len(ds.Domains) }

// DominatesUnder reports whether a dominates b when the PO attributes
// are interpreted by the given domains (which may differ from
// ds.Domains for dynamic skyline queries): a is at least as good
// everywhere — equal or t-preferred per PO dimension — and strictly
// better somewhere.
func DominatesUnder(domains []*poset.Domain, a, b *Point) bool {
	strict := false
	for d, av := range a.TO {
		bv := b.TO[d]
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	for d, av := range a.PO {
		bv := b.PO[d]
		if av == bv {
			continue
		}
		if !domains[d].TPrefers(av, bv) {
			return false
		}
		strict = true
	}
	return strict
}

// Dominates reports whether a dominates b under the dataset's own
// domains.
func (ds *Dataset) Dominates(a, b *Point) bool {
	return DominatesUnder(ds.Domains, a, b)
}

// NaiveSkylineUnder computes the skyline by exhaustive pairwise
// comparison under the given domains — the O(n²) ground truth that all
// algorithms are validated against in tests. Exact duplicates of a
// skyline point are skyline points themselves (neither dominates the
// other). IDs are returned in input order.
func NaiveSkylineUnder(domains []*poset.Domain, pts []Point) []int32 {
	var out []int32
	for i := range pts {
		dominated := false
		for j := range pts {
			if i != j && DominatesUnder(domains, &pts[j], &pts[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, pts[i].ID)
		}
	}
	return out
}

// NaiveSkyline is NaiveSkylineUnder with the dataset's own domains.
func (ds *Dataset) NaiveSkyline() []int32 {
	return NaiveSkylineUnder(ds.Domains, ds.Pts)
}
