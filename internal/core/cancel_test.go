package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/poset"
)

// countdownCtx is a deterministic cancellation source: Err returns the
// configured error after a fixed number of calls, so tests can cancel
// a query mid-run without timing races.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
	err   error
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return c.err
	}
	return nil
}

// cancelFixture builds a dynamic database with several PO groups so a
// query visits multiple group-loop iterations (each one a cooperative
// cancellation point).
func cancelFixture(t *testing.T) (*DynamicDB, []*poset.Domain) {
	t.Helper()
	dag := poset.NewDAG(6)
	dag.MustEdge(0, 1)
	dag.MustEdge(1, 2)
	dag.MustEdge(0, 3)
	dag.MustEdge(3, 4)
	dag.MustEdge(4, 5)
	dom, err := poset.NewDomain(dag)
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{Domains: []*poset.Domain{dom}}
	for i := 0; i < 600; i++ {
		ds.Pts = append(ds.Pts, Point{
			ID: int32(i),
			TO: []int32{int32((i * 31) % 997), int32((i*57 + 11) % 997)},
			PO: []int32{int32(i % 6)},
		})
	}
	return NewDynamicDB(ds, Options{}), []*poset.Domain{dom}
}

// TestQueryTSSContextCancelMidRun proves a dynamic query is abandoned
// between groups — not just refused before starting — and that the
// aborted run leaves nothing in the past-result cache.
func TestQueryTSSContextCancelMidRun(t *testing.T) {
	db, domains := cancelFixture(t)
	db.EnableCache(4)

	// after=2 passes the first group checks and cancels on a later one:
	// strictly mid-run.
	ctx := &countdownCtx{Context: context.Background(), after: 2, err: context.Canceled}
	res, err := db.QueryTSSContext(ctx, domains, Options{UseMemTree: true})
	if err == nil {
		t.Fatalf("canceled query succeeded with %d rows", len(res.SkylineIDs))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if ctx.calls.Load() <= 2 {
		t.Fatalf("cancellation checked only %d times — not mid-run", ctx.calls.Load())
	}

	// The aborted run must not have poisoned the cache: the same query
	// now runs fine and reports a miss.
	res, err = db.QueryTSS(domains, Options{UseMemTree: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromCache {
		t.Fatal("first complete run served from cache — the canceled run stored a partial result")
	}
	if len(res.SkylineIDs) == 0 {
		t.Fatal("complete run returned no skyline")
	}
}

// TestQueryTSSFullContextCancelMidRun is the fully dynamic analogue.
func TestQueryTSSFullContextCancelMidRun(t *testing.T) {
	db, domains := cancelFixture(t)
	ctx := &countdownCtx{Context: context.Background(), after: 2, err: context.DeadlineExceeded}
	_, err := db.QueryTSSFullContext(ctx, []int32{500, 500}, domains, Options{UseMemTree: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	// A nil/background context still completes and agrees with the
	// naive oracle.
	res, err := db.QueryTSSFull([]int32{500, 500}, domains, Options{UseMemTree: true})
	if err != nil {
		t.Fatal(err)
	}
	want := FullyDynamicNaive(db.ds, []int32{500, 500}, domains)
	if len(res.SkylineIDs) != len(want) {
		t.Fatalf("full-dynamic run after cancellation test: %d rows, oracle %d", len(res.SkylineIDs), len(want))
	}
}

// TestDynamicSDCPlusContextCancelMidTraversal proves the SDC+ baseline
// honours cancellation *inside* a stratum traversal, not only at the
// pre-start check. A single-stratum dataset larger than dynCtxCheckEvery
// forces the heap loop past its first cooperative checkpoint; with
// after=1 the countdown context passes the pre-start check and cancels
// on that first in-loop checkpoint — strictly mid-traversal.
func TestDynamicSDCPlusContextCancelMidTraversal(t *testing.T) {
	dag := poset.NewDAG(2)
	dag.MustEdge(0, 1)
	dom, err := poset.NewDomain(dag)
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{Domains: []*poset.Domain{dom}}
	// One PO value -> one stratum holding every point, and anti-correlated
	// TO values (x+y constant) -> no subtree is ever pruned, so the
	// per-stratum step counter is guaranteed to cross dynCtxCheckEvery.
	n := int32(2 * dynCtxCheckEvery)
	for i := int32(0); i < n; i++ {
		ds.Pts = append(ds.Pts, Point{
			ID: i,
			TO: []int32{i, n - i},
			PO: []int32{0},
		})
	}
	domains := []*poset.Domain{dom}

	ctx := &countdownCtx{Context: context.Background(), after: 1, err: context.Canceled}
	_, err = DynamicSDCPlusContext(ctx, ds, domains, Options{})
	if err == nil {
		t.Fatal("canceled SDC+ query succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if calls := ctx.calls.Load(); calls < 2 {
		t.Fatalf("cancellation checked only %d times — the traversal loop never reached a checkpoint", calls)
	}

	// The same query under a background context completes and agrees
	// with the naive oracle: cancellation plumbing must not change the
	// answer.
	res, err := DynamicSDCPlusContext(context.Background(), ds, domains, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := NaiveSkylineUnder(domains, ds.Pts)
	if !sameIDSet(res.SkylineIDs, want) {
		t.Fatalf("SDC+ skyline %d rows, oracle %d", len(res.SkylineIDs), len(want))
	}
}
