package core

import (
	"math/rand"
	"testing"

	"repro/internal/poset"
)

// maintainDataset builds a mixed 2-TO / diamond+chain dataset in table
// layout.
func maintainDataset(t *testing.T, n int, seed int64) *Dataset {
	t.Helper()
	diamond := poset.NewDAG(4)
	diamond.MustEdge(0, 1)
	diamond.MustEdge(0, 2)
	diamond.MustEdge(1, 3)
	diamond.MustEdge(2, 3)
	chain := poset.NewDAG(3)
	chain.MustEdge(0, 1)
	chain.MustEdge(1, 2)
	d1, err := poset.NewDomain(diamond)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := poset.NewDomain(chain)
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{Domains: []*poset.Domain{d1, d2}}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		ds.Pts = append(ds.Pts, Point{
			ID: int32(i),
			TO: []int32{int32(rng.Intn(40)), int32(rng.Intn(40))},
			PO: []int32{int32(rng.Intn(4)), int32(rng.Intn(3))},
		})
		if rng.Intn(15) == 0 && i+1 < n { // exact duplicates
			i++
			p := ds.Pts[len(ds.Pts)-1]
			dup := Point{ID: int32(i), TO: append([]int32(nil), p.TO...), PO: append([]int32(nil), p.PO...)}
			ds.Pts = append(ds.Pts, dup)
		}
	}
	return ds
}

// applyDelta mutates a dataset the way Table.ApplyBatch does: drop,
// renumber, append.
func applyDelta(ds *Dataset, removes []int, adds []Point) (*Dataset, *Delta) {
	drop := make([]bool, len(ds.Pts))
	for _, r := range removes {
		drop[r] = true
	}
	delta := &Delta{OldToNew: make([]int32, len(ds.Pts)), Added: len(adds)}
	nds := &Dataset{Domains: ds.Domains}
	for i := range ds.Pts {
		if drop[i] {
			delta.OldToNew[i] = -1
			continue
		}
		p := ds.Pts[i]
		p.ID = int32(len(nds.Pts))
		delta.OldToNew[i] = p.ID
		nds.Pts = append(nds.Pts, p)
	}
	for _, p := range adds {
		p.ID = int32(len(nds.Pts))
		nds.Pts = append(nds.Pts, p)
	}
	return nds, delta
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMaintainSkyline drives randomized add / remove / mixed batches —
// removals biased toward skyline members to force promotion recomputes
// — and asserts the maintained skyline equals the cold recompute after
// every step, full-dimensional and under a subspace projection.
func TestMaintainSkyline(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		ds := maintainDataset(t, 120, seed)
		rng := rand.New(rand.NewSource(seed * 97))
		sky := sortedIDs(NaiveSkylineUnder(ds.Domains, ds.Pts))
		keptTO, keptPO := []int{0}, []int{1}
		subDoms := []*poset.Domain{ds.Domains[1]}
		project := func(pts []Point) []Point {
			out := make([]Point, len(pts))
			for i := range pts {
				out[i] = Point{ID: pts[i].ID, TO: pts[i].TO[:1], PO: pts[i].PO[1:2]}
			}
			return out
		}
		subSky := sortedIDs(NaiveSkylineUnder(subDoms, project(ds.Pts)))

		for step := 0; step < 8; step++ {
			var removes []int
			var adds []Point
			switch step % 3 {
			case 0: // member removals → promotions
				for _, id := range sky {
					if rng.Intn(2) == 0 {
						removes = append(removes, int(id))
					}
				}
			case 1: // adds, some dominating
				for i := 0; i < 5; i++ {
					adds = append(adds, Point{
						TO: []int32{int32(rng.Intn(40)), int32(rng.Intn(40))},
						PO: []int32{int32(rng.Intn(4)), int32(rng.Intn(3))},
					})
				}
			default: // mixed, removals across the whole table
				for i := 0; i < 6 && i < len(ds.Pts); i++ {
					removes = append(removes, rng.Intn(len(ds.Pts)))
				}
				adds = append(adds, Point{TO: []int32{int32(rng.Intn(6)), int32(rng.Intn(6))}, PO: []int32{0, 0}})
			}
			nds, delta := applyDelta(ds, removes, adds)

			got, stats, ok := MaintainSkyline(ds, nds, delta, sky, nil, nil)
			if !ok {
				t.Fatalf("seed %d step %d: maintenance refused (churn %d of %d)",
					seed, step, len(removes)+len(adds), len(ds.Pts))
			}
			want := sortedIDs(NaiveSkylineUnder(nds.Domains, nds.Pts))
			if !equalIDs(got, want) {
				t.Fatalf("seed %d step %d: maintained %v\nwant %v", seed, step, got, want)
			}
			if stats.Promotions < 0 || stats.Probes < len(adds) {
				t.Fatalf("seed %d step %d: implausible stats %+v", seed, step, stats)
			}

			gotSub, _, ok := MaintainSkyline(ds, nds, delta, subSky, keptTO, keptPO)
			if !ok {
				t.Fatalf("seed %d step %d: subspace maintenance refused", seed, step)
			}
			wantSub := sortedIDs(NaiveSkylineUnder(subDoms, project(nds.Pts)))
			if !equalIDs(gotSub, wantSub) {
				t.Fatalf("seed %d step %d: subspace maintained %v\nwant %v", seed, step, gotSub, wantSub)
			}

			ds, sky, subSky = nds, got, gotSub
		}
	}
}

// TestMaintainChurnFallback: a batch touching more than the threshold
// refuses maintenance.
func TestMaintainChurnFallback(t *testing.T) {
	ds := maintainDataset(t, 1200, 3)
	sky := sortedIDs(NaiveSkylineUnder(ds.Domains, ds.Pts))
	var removes []int
	for i := 0; i < len(ds.Pts)/5; i++ { // 20% > threshold, > floor
		removes = append(removes, i)
	}
	nds, delta := applyDelta(ds, removes, nil)
	if _, _, ok := MaintainSkyline(ds, nds, delta, sky, nil, nil); ok {
		t.Fatal("20% churn on 1200 rows should refuse maintenance")
	}
	// The floor keeps small batches maintained on any table size.
	nds2, delta2 := applyDelta(ds, []int{0, 1, 2}, nil)
	if _, _, ok := MaintainSkyline(ds, nds2, delta2, sky, nil, nil); !ok {
		t.Fatal("3-row batch must stay maintainable")
	}
}

// TestMaintainPromotionCounts: removing the unique dominator of a
// dominated row must promote exactly that row.
func TestMaintainPromotionCounts(t *testing.T) {
	vee := poset.NewDAG(3) // 0 better than both 1 and 2; 1 ∥ 2
	vee.MustEdge(0, 1)
	vee.MustEdge(0, 2)
	dom, err := poset.NewDomain(vee)
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{
		Domains: []*poset.Domain{dom},
		Pts: []Point{
			{ID: 0, TO: []int32{1}, PO: []int32{1}}, // member, dominates row 1
			{ID: 1, TO: []int32{2}, PO: []int32{1}}, // dominated only by row 0
			{ID: 2, TO: []int32{1}, PO: []int32{2}}, // member (incomparable PO branch)
		},
	}
	sky := sortedIDs(NaiveSkylineUnder(ds.Domains, ds.Pts))
	if !equalIDs(sky, []int32{0, 2}) {
		t.Fatalf("fixture skyline %v", sky)
	}
	nds, delta := applyDelta(ds, []int{0}, nil)
	got, stats, ok := MaintainSkyline(ds, nds, delta, sky, nil, nil)
	if !ok {
		t.Fatal("maintenance refused")
	}
	if !equalIDs(got, []int32{0, 1}) { // renumbered: old 1→0, old 2→1
		t.Fatalf("maintained %v, want [0 1]", got)
	}
	if stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", stats.Promotions)
	}
}
