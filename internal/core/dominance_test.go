package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Order-theoretic properties of the exact dominance relation: it must
// be a strict partial order on points (irreflexive, asymmetric,
// transitive) for the skyline to be well defined.

func TestDominanceIsStrictPartialOrder(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 25, 2, 2)
		pts := ds.Pts
		for i := range pts {
			if ds.Dominates(&pts[i], &pts[i]) {
				return false // irreflexive
			}
			for j := range pts {
				if ds.Dominates(&pts[i], &pts[j]) && ds.Dominates(&pts[j], &pts[i]) {
					return false // asymmetric
				}
				if !ds.Dominates(&pts[i], &pts[j]) {
					continue
				}
				for k := range pts {
					if ds.Dominates(&pts[j], &pts[k]) && !ds.Dominates(&pts[i], &pts[k]) {
						return false // transitive
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSkylineCompleteness: every non-skyline point is dominated by some
// *skyline* point (not merely by any point) — the property that makes
// the skyline a sufficient answer set.
func TestSkylineCompleteness(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 40, 2, 1)
		sky := idSet(ds.NaiveSkyline())
		var skyPts []*Point
		for i := range ds.Pts {
			if sky[ds.Pts[i].ID] {
				skyPts = append(skyPts, &ds.Pts[i])
			}
		}
		for i := range ds.Pts {
			if sky[ds.Pts[i].ID] {
				continue
			}
			covered := false
			for _, s := range skyPts {
				if ds.Dominates(s, &ds.Pts[i]) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMDominanceStrongerThanDominance: m-dominance in the transformed
// space implies exact dominance (soundness of all baseline prunes), and
// the reverse implication fails on at least some inputs (which is why
// the baselines need cross-examination at all).
func TestMDominanceStrongerThanDominance(t *testing.T) {
	foundGap := false
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 30, 1, 2)
		for i := range ds.Pts {
			for j := range ds.Pts {
				if i == j {
					continue
				}
				a, b := &ds.Pts[i], &ds.Pts[j]
				m := paretoDominates(mCoords(ds.Domains, a), mCoords(ds.Domains, b))
				d := ds.Dominates(a, b)
				if m && !d {
					t.Fatalf("seed %d: m-dominance without dominance (%d over %d)", seed, a.ID, b.ID)
				}
				if d && !m {
					foundGap = true
				}
			}
		}
	}
	if !foundGap {
		t.Error("expected at least one dominance not captured by m-dominance across 40 random domains")
	}
}

// TestPointLevelMonotone: if a dominates b then a's stratum is not
// higher than b's — the soundness condition of SDC+'s stratum order.
func TestPointLevelMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 30, 1, 2)
		for i := range ds.Pts {
			for j := range ds.Pts {
				if i != j && ds.Dominates(&ds.Pts[i], &ds.Pts[j]) {
					if pointLevel(ds.Domains, &ds.Pts[i]) > pointLevel(ds.Domains, &ds.Pts[j]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPostRunProperties: the post-run contains the value's own post and
// is one of its merged intervals.
func TestPostRunProperties(t *testing.T) {
	dm := figure2Domain()
	for v := int32(0); v < int32(dm.Size()); v++ {
		run := dm.PostRun(v)
		if !run.Stabs(dm.Post(v)) {
			t.Errorf("PostRun(%d) = %v does not contain post %d", v, run, dm.Post(v))
		}
		found := false
		for _, iv := range dm.Intervals(v) {
			if iv == run {
				found = true
			}
		}
		if !found {
			t.Errorf("PostRun(%d) = %v is not one of the merged intervals %v",
				v, run, dm.Intervals(v))
		}
	}
}
