package core

import (
	"runtime"

	"repro/internal/poset"
)

// LayersUnder assigns every point its skyline-layer depth under the
// given domains: layer 1 is the skyline of pts, layer i the skyline of
// what remains after layers < i are removed (equivalently, the length
// of the longest dominance chain ending at the point — dominance is a
// strict partial order, so the two definitions coincide). Points deeper
// than maxLayer are reported as 0 and their exact depth is not
// computed; maxLayer <= 0 computes every layer. Exact duplicates never
// dominate each other, so all copies of a point share its layer.
//
// Each peel is one full STSS run over the remaining points — the
// sort-based elimination scales far past the all-pairs merge kernel on
// whole tables (the early layers see every row); noKernel selects the
// scalar reference elimination instead, for the differential
// harnesses.
func LayersUnder(domains []*poset.Domain, pts []Point, maxLayer int, noKernel bool) []int32 {
	layers := make([]int32, len(pts))
	alive := make([]int, len(pts))
	for i := range alive {
		alive[i] = i
	}
	workers := runtime.GOMAXPROCS(0)
	for layer := int32(1); len(alive) > 0; layer++ {
		if maxLayer > 0 && int(layer) > maxLayer {
			break
		}
		sub := make([]Point, len(alive))
		for k, i := range alive {
			sub[k] = pts[i]
			sub[k].ID = int32(k)
		}
		var keep []int
		if noKernel {
			// Distinct tags per candidate so the merge pass skips no
			// pair: with every "shard" unique the elimination is a plain
			// skyline.
			tags := make([]int, len(sub))
			for k := range tags {
				tags[k] = k
			}
			keep = MergeSurvivorsRef(domains, sub, tags, workers)
		} else {
			res := STSS(&Dataset{Domains: domains, Pts: sub}, Options{UseMemTree: true})
			keep = make([]int, len(res.SkylineIDs))
			for j, id := range res.SkylineIDs {
				keep[j] = int(id)
			}
		}
		inLayer := make([]bool, len(alive))
		for _, k := range keep {
			layers[alive[k]] = layer
			inLayer[k] = true
		}
		next := alive[:0]
		for k, i := range alive {
			if !inLayer[k] {
				next = append(next, i)
			}
		}
		alive = next
	}
	return layers
}
