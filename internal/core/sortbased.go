package core

import (
	"fmt"
	"sort"

	"repro/internal/rtree"
)

// This file implements the two strongest sort-based skyline algorithms
// the paper surveys in §II-A — SaLSa (Bartolini et al., TODS 2008) and
// LESS (Godfrey et al., VLDBJ 2007) — as totally ordered substrate
// baselines. Both presort the data by a monotone function, which gives
// them precedence; SaLSa additionally maintains a *stop point* that can
// terminate the scan before the data is exhausted, and LESS eliminates
// points with an elimination-filter window while sorting.
//
// Their early-termination machinery is only sound for totally ordered
// attributes (a topological ordinal bound does not imply preference in
// a partial order), so both reject data sets with PO attributes: in
// this repository they exist as the TO-domain baselines the skyline
// literature builds on, alongside BNL/SFS which do generalise.

func requireTO(ds *Dataset, algo string) error {
	if ds.NumPO() != 0 {
		return fmt.Errorf("core: %s supports totally ordered attributes only (%d PO present)",
			algo, ds.NumPO())
	}
	return nil
}

// SaLSa computes the TO skyline with sort-and-limit-skyline-scan:
// points are sorted by their minimum coordinate (ties by sum), and the
// scan stops as soon as the next point's sort key provably exceeds what
// the current *stop point* — the skyline point with the smallest
// maximum coordinate — dominates. Points after the stop are never
// examined; Metrics.PointsPruned counts them. opt is accepted for the
// shared Algorithm signature; SaLSa has no tunables.
func SaLSa(ds *Dataset, opt Options) (*Result, error) {
	if err := requireTO(ds, "SaLSa"); err != nil {
		return nil, err
	}
	res := &Result{}
	clock := newEmitClock(&rtree.IOCounter{})

	n := len(ds.Pts)
	order := make([]int32, n)
	minK := make([]int64, n)
	sumK := make([]int64, n)
	for i := range ds.Pts {
		order[i] = int32(i)
		minK[i] = minCoord(ds.Pts[i].TO)
		sumK[i] = sumInt32(ds.Pts[i].TO)
	}
	// Sort by (min coordinate, sum, id): monotone under dominance —
	// a dominating point has min ≤ and, at equal min, a strictly
	// smaller sum. Two explicit keys avoid packing overflows.
	sort.Slice(order, func(a, b int) bool {
		x, y := order[a], order[b]
		if minK[x] != minK[y] {
			return minK[x] < minK[y]
		}
		if sumK[x] != sumK[y] {
			return sumK[x] < sumK[y]
		}
		return x < y
	})

	useKernel := !opt.withDefaults().NoKernel
	var k *colSet
	var pr *probe
	var sky []*Point
	var checks int64
	if useKernel {
		k = newColSet(ds.Domains, ds.NumTO(), 64, opt.ClosureBudget, false)
		pr = k.newProbe()
	}
	// Stop point: the skyline point minimising its maximum coordinate.
	stopMax := int64(-1)
	examined := 0
	for _, idx := range order {
		p := &ds.Pts[idx]
		if stopMax >= 0 && minCoord(p.TO) > stopMax {
			// Every remaining point q has min(q) ≥ min(p) > stopMax, so
			// the stop point strictly dominates all of them.
			break
		}
		examined++
		dominated := false
		if useKernel {
			k.begin(pr, p.TO, p.PO, false)
			dominated = k.anyDominator(pr)
		} else {
			for _, s := range sky {
				checks++
				if toDominates(s.TO, p.TO) {
					dominated = true
					break
				}
			}
		}
		if dominated {
			continue
		}
		if useKernel {
			k.append(p.TO, p.PO, p.ID, -1)
		} else {
			sky = append(sky, p)
		}
		res.SkylineIDs = append(res.SkylineIDs, p.ID)
		res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
		if mx := maxCoord(p.TO); stopMax < 0 || mx < stopMax {
			stopMax = mx
		}
	}
	res.Metrics.PointsPruned = int64(n - examined) // skipped unexamined
	res.Metrics.DomChecks = checks
	if useKernel {
		pr.addTo(&res.Metrics)
	}
	res.Metrics.CPU = clock.elapsed()
	return res, nil
}

func minCoord(to []int32) int64 {
	m := int64(to[0])
	for _, v := range to[1:] {
		if int64(v) < m {
			m = int64(v)
		}
	}
	return m
}

func maxCoord(to []int32) int64 {
	m := int64(to[0])
	for _, v := range to[1:] {
		if int64(v) > m {
			m = int64(v)
		}
	}
	return m
}

// LESS computes the TO skyline with linear-elimination-sort: pass one
// streams the data through a small elimination-filter window of
// low-entropy (small-sum) points, dropping dominated tuples before they
// are ever sorted; the survivors are sorted by sum and scanned as in
// SFS. Metrics.PointsPruned counts the points the filter eliminated
// before sorting. The filter window size comes from opt.LESSWindow
// (DefaultLESSWindow when zero).
func LESS(ds *Dataset, opt Options) (*Result, error) {
	if err := requireTO(ds, "LESS"); err != nil {
		return nil, err
	}
	window := opt.withDefaults().LESSWindow
	if window < 1 {
		window = DefaultLESSWindow
	}
	res := &Result{}
	clock := newEmitClock(&rtree.IOCounter{})
	var checks int64

	// Pass 1: elimination filter. ef holds at most `window` points with
	// the smallest sums seen so far.
	type efEntry struct {
		p   *Point
		sum int64
	}
	var ef []efEntry
	var survivors []int32
	for i := range ds.Pts {
		p := &ds.Pts[i]
		sum := sumInt32(p.TO)
		dominated := false
		for _, e := range ef {
			checks++
			if toDominates(e.p.TO, p.TO) {
				dominated = true
				break
			}
		}
		if dominated {
			res.Metrics.PointsPruned++
			continue
		}
		survivors = append(survivors, int32(i))
		// Keep the window filled with the smallest-sum points: they
		// have the highest pruning power.
		if len(ef) < window {
			ef = append(ef, efEntry{p: p, sum: sum})
		} else {
			worst, worstSum := -1, int64(-1)
			for k, e := range ef {
				if e.sum > worstSum {
					worst, worstSum = k, e.sum
				}
			}
			if sum < worstSum {
				ef[worst] = efEntry{p: p, sum: sum}
			}
		}
	}

	// Pass 2: sort survivors by sum, then SFS scan. The elimination
	// filter stays scalar (it is a handful of points); the window scan
	// runs on the kernel unless opt.NoKernel.
	key := make([]int64, len(ds.Pts))
	for _, idx := range survivors {
		key[idx] = sumInt32(ds.Pts[idx].TO)
	}
	sortByKey(survivors, key)
	if !opt.withDefaults().NoKernel {
		k := newColSet(ds.Domains, ds.NumTO(), 64, opt.ClosureBudget, false)
		pr := k.newProbe()
		for _, idx := range survivors {
			p := &ds.Pts[idx]
			k.begin(pr, p.TO, p.PO, false)
			if k.anyDominator(pr) {
				continue
			}
			k.append(p.TO, p.PO, p.ID, -1)
			res.SkylineIDs = append(res.SkylineIDs, p.ID)
			res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
		}
		res.Metrics.DomChecks = checks
		pr.addTo(&res.Metrics)
		res.Metrics.CPU = clock.elapsed()
		return res, nil
	}
	var sky []*Point
	for _, idx := range survivors {
		p := &ds.Pts[idx]
		dominated := false
		for _, s := range sky {
			checks++
			if toDominates(s.TO, p.TO) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		sky = append(sky, p)
		res.SkylineIDs = append(res.SkylineIDs, p.ID)
		res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
	}
	res.Metrics.DomChecks = checks
	res.Metrics.CPU = clock.elapsed()
	return res, nil
}
