package core

import (
	"sort"

	"repro/internal/poset"
)

// This file is the delta-driven skyline maintainer: given a memoised
// skyline of the old row set and the Delta an ApplyBatch produced, it
// re-certifies the skyline of the new row set instead of recomputing it
// from cold. The cost model is asymmetric by construction:
//
//   - A removed non-member cannot change the skyline: it dominated
//     nothing that mattered. Free.
//   - An added row is probed against the maintained members with the
//     columnar dominance kernel; a dominated add cannot change the
//     result, a surviving add joins and evicts the members it
//     dominates.
//   - A removed *member* may have been the only dominator of rows it
//     exclusively dominated, so those rows are recomputed: the
//     candidates (survivors the removed members dominated) are filtered
//     against the surviving skyline with the in-memory R-tree checker
//     (paper §IV-B) and the few that survive are promoted through the
//     same kernel probe as adds.
//
// Soundness of the candidate set: every old non-member is dominated by
// some old skyline member (maximality + transitivity). If that member
// survived, the row stays dominated and can be skipped; if every such
// member was removed, the row is by definition dominated by a removed
// member, so scanning the removed members' dominated regions finds it.
// The new skyline is therefore exactly the skyline of
// survivors ∪ adds ∪ promotion-candidates, which the seeded kernel
// window computes BNL-style.

// MaintainChurnFraction is the churn threshold of skyline maintenance:
// when a batch touches more than this fraction of the old rows,
// maintenance would approach the cost of a cold recompute (the
// promotion scan alone is O(N·removedMembers)), so the maintainer
// refuses and the caller falls back to recomputing on demand.
const MaintainChurnFraction = 0.10

// MaintainChurnFloor exempts small batches from the fractional
// threshold regardless of table size, so maintenance still engages on
// small tables where any batch exceeds 10% of the rows.
const MaintainChurnFloor = 64

// MaintainStats reports what one MaintainSkyline call did.
type MaintainStats struct {
	// Promotions is the number of rows that entered the skyline because
	// a removed member no longer dominates them (they are neither old
	// members nor adds).
	Promotions int
	// Probes is the number of candidate rows (adds + promotion
	// candidates) probed against the maintained window.
	Probes int
}

// MaintainSkyline advances the memoised skyline oldSky (row indexes of
// oldDS) across delta to the skyline of newDS, under the kept-dimension
// projection keptTO/keptPO (nil/nil = full dimensionality — the lists
// index into the datasets' TO attributes and Domains respectively, in
// Subspace's canonical ascending form). The returned ids are new row
// indexes in ascending order.
//
// The final return is false when the batch's churn exceeds the
// maintenance threshold; the caller should drop the memo entry and let
// the next query recompute from cold.
func MaintainSkyline(oldDS, newDS *Dataset, delta *Delta, oldSky []int32, keptTO, keptPO []int) ([]int32, MaintainStats, bool) {
	var st MaintainStats
	newN := len(newDS.Pts)
	removedRows := delta.OldLen() - (newN - delta.Added)
	churn := removedRows + delta.Added
	if churn > MaintainChurnFloor && float64(churn) > MaintainChurnFraction*float64(delta.OldLen()) {
		return nil, st, false
	}
	if newN == 0 {
		// Everything removed: the empty skyline needs no kernel pass
		// (and an empty dataset has no dimensionality to build one over).
		return []int32{}, st, true
	}

	domains, nTO := maintainDims(newDS, keptTO, keptPO)
	prj := projector{keptTO: keptTO, keptPO: keptPO, ident: keptTO == nil && keptPO == nil}

	// Split the old skyline into survivors (new indexes) and removed
	// members (old points).
	survivors := make([]int32, 0, len(oldSky))
	isMember := make([]bool, newN)
	var removedMembers []int32 // old row indexes
	for _, id := range oldSky {
		ni := delta.OldToNew[id]
		if ni < 0 {
			removedMembers = append(removedMembers, id)
			continue
		}
		survivors = append(survivors, ni)
		isMember[ni] = true
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })

	// Promotion candidates: surviving non-members a removed member
	// dominated, minus those the R-tree over the surviving skyline
	// proves still dominated.
	var promos []int32
	if len(removedMembers) > 0 {
		removed := make([]Point, len(removedMembers))
		for i, id := range removedMembers {
			removed[i] = prj.point(&oldDS.Pts[id])
		}
		ck := newMemChecker(domains, nTO, false)
		for _, ni := range survivors {
			p := prj.point(&newDS.Pts[ni])
			ck.add(&p)
		}
		oldRows := newN - delta.Added
		var cand Point
		for ni := 0; ni < oldRows; ni++ {
			if isMember[ni] {
				continue
			}
			cand = prj.pointInto(&newDS.Pts[ni], cand)
			byRemoved := false
			for i := range removed {
				if DominatesUnder(domains, &removed[i], &cand) {
					byRemoved = true
					break
				}
			}
			if !byRemoved {
				continue
			}
			if ck.dominatedPoint(cand.TO, cand.PO) {
				continue
			}
			promos = append(promos, int32(ni))
		}
	}

	// Seeded kernel window: survivors first, then every candidate
	// probed (dominated candidates are discarded; surviving ones join
	// and evict the members they dominate).
	ks := newColSet(domains, nTO, len(survivors)+len(promos)+delta.Added, 0, false)
	var scratch Point
	for _, ni := range survivors {
		scratch = prj.pointInto(&newDS.Pts[ni], scratch)
		ks.append(scratch.TO, scratch.PO, ni, -1)
	}
	pr := ks.newProbe()
	probe := func(ni int32) {
		scratch = prj.pointInto(&newDS.Pts[ni], scratch)
		ks.begin(pr, scratch.TO, scratch.PO, true)
		st.Probes++
		if ks.anyDominator(pr) {
			return
		}
		ks.evictDominatedBy(pr)
		ks.append(scratch.TO, scratch.PO, ni, -1)
		ks.maybeCompact()
	}
	for _, ni := range promos {
		probe(ni)
	}
	for ni := newN - delta.Added; ni < newN; ni++ {
		probe(int32(ni))
	}
	var m Metrics
	pr.addTo(&m)

	ids := ks.aliveIDs(make([]int32, 0, ks.nAlive))
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	oldRows := int32(newN - delta.Added)
	for _, id := range ids {
		if id < oldRows && !isMember[id] {
			st.Promotions++
		}
	}
	return ids, st, true
}

// OldLen returns the row count the delta maps from.
func (d *Delta) OldLen() int { return len(d.OldToNew) }

// maintainDims resolves the kept PO domains and TO arity of a
// maintenance pass.
func maintainDims(ds *Dataset, keptTO, keptPO []int) ([]*poset.Domain, int) {
	if keptTO == nil && keptPO == nil {
		return ds.Domains, ds.NumTO()
	}
	domains := make([]*poset.Domain, len(keptPO))
	for j, d := range keptPO {
		domains[j] = ds.Domains[d]
	}
	return domains, len(keptTO)
}

// projector maps full-dimensional points into the kept dimensions
// without copying when the projection is the identity.
type projector struct {
	keptTO, keptPO []int
	ident          bool
}

// point returns a projected copy of p (aliasing p's slices when the
// projection is the identity).
func (pj projector) point(p *Point) Point {
	return pj.pointInto(p, Point{})
}

// pointInto projects p reusing dst's backing slices.
func (pj projector) pointInto(p *Point, dst Point) Point {
	if pj.ident {
		return Point{ID: p.ID, TO: p.TO, PO: p.PO}
	}
	dst.ID = p.ID
	dst.TO = dst.TO[:0]
	for _, d := range pj.keptTO {
		dst.TO = append(dst.TO, p.TO[d])
	}
	dst.PO = dst.PO[:0]
	for _, d := range pj.keptPO {
		dst.PO = append(dst.PO, p.PO[d])
	}
	return dst
}
