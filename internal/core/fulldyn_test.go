package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/poset"
)

// TestFullyDynamicMatchesNaive: QueryTSSFull agrees with brute force
// over the transformed space, for random query points and partial
// orders, with and without the memtree and buffer.
func TestFullyDynamicMatchesNaive(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		nTO := rng.Intn(2) + 1
		nPO := rng.Intn(2) + 1
		ds := randomDataset(rng, n, nTO, nPO)
		db := NewDynamicDB(ds, Options{})
		for trial := 0; trial < 3; trial++ {
			q := make([]int32, nTO)
			for d := range q {
				q[d] = int32(rng.Intn(8))
			}
			domains := make([]*poset.Domain, nPO)
			for d := 0; d < nPO; d++ {
				domains[d] = poset.MustDomain(randomPODomainDAG(
					rng, ds.Domains[d].Size(), rng.Float64()*0.6))
			}
			want := FullyDynamicNaive(ds, q, domains)
			for _, opt := range []Options{
				{}, {UseMemTree: true}, {BufferPages: 4}, {UseMemTree: true, StabOnly: true},
			} {
				res, err := db.QueryTSSFull(q, domains, opt)
				if err != nil {
					t.Log(err)
					return false
				}
				if !sameIDSet(res.SkylineIDs, want) {
					t.Logf("seed=%d q=%v opt=%+v: got %v, want %v",
						seed, q, opt, res.SkylineIDs, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFullyDynamicCentredOnPoint: a query point sitting exactly on a
// tuple makes that tuple (distance zero everywhere) dominate everything
// with a worse PO value — and itself always be in the skyline.
func TestFullyDynamicCentredOnPoint(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	q := []int32{3, 4} // exactly p3 (and p8's coordinates)
	dag := poset.NewDAG(3)
	dag.MustEdge(0, 1) // a preferred to b
	dag.MustEdge(0, 2) // a preferred to c
	dom := poset.MustDomain(dag)
	res, err := db.QueryTSSFull(q, []*poset.Domain{dom}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := FullyDynamicNaive(ds, q, []*poset.Domain{dom})
	if !sameIDSet(res.SkylineIDs, want) {
		t.Fatalf("got %v, want %v", res.SkylineIDs, want)
	}
	// p3 = (3,4,a) is at distance (0,0) with the best PO value: it must
	// be in the skyline (and in fact dominates every non-a tuple).
	found := false
	for _, id := range res.SkylineIDs {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("p3 must be in the dynamic skyline centred on it; got %v", res.SkylineIDs)
	}
}

func TestFullyDynamicValidation(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	dom := poset.MustDomain(poset.NewDAG(3))
	if _, err := db.QueryTSSFull([]int32{1}, []*poset.Domain{dom}, Options{}); err == nil {
		t.Error("wrong query-point arity must fail")
	}
	if _, err := db.QueryTSSFull([]int32{1, 2}, nil, Options{}); err == nil {
		t.Error("missing domains must fail")
	}
	if _, err := db.QueryTSSFull([]int32{1, 2}, []*poset.Domain{dom},
		Options{PrecomputedLocal: true}); err == nil {
		t.Error("precomputed local skylines must be rejected for fully dynamic queries")
	}
}

func TestQueryCache(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	db.EnableCache(2)

	mk := func(edges ...[2]int) *poset.Domain {
		dag := poset.NewDAG(3)
		for _, e := range edges {
			dag.MustEdge(e[0], e[1])
		}
		return poset.MustDomain(dag)
	}

	// First query: miss.
	r1, err := db.QueryTSS([]*poset.Domain{mk([2]int{1, 2})}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h, m := db.CacheStats(); h != 0 || m != 1 {
		t.Fatalf("stats after miss: hits=%d misses=%d", h, m)
	}
	// Same partial order, freshly built: hit, zero IO, same skyline.
	r2, err := db.QueryTSS([]*poset.Domain{mk([2]int{1, 2})}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := db.CacheStats(); h != 1 {
		t.Fatal("expected a cache hit for an identical partial order")
	}
	if !sameIDSet(r1.SkylineIDs, r2.SkylineIDs) {
		t.Fatal("cached result differs")
	}
	if r2.Metrics.ReadIOs != 0 || r2.Metrics.WriteIOs != 0 {
		t.Error("cache hit must not charge IOs")
	}

	// A different order misses and computes correctly.
	r3, err := db.QueryTSS([]*poset.Domain{mk([2]int{0, 1}, [2]int{2, 1})}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 2, 7, 8, 10}
	if !sameIDSet(r3.SkylineIDs, want) {
		t.Fatalf("post-cache query = %v, want %v", r3.SkylineIDs, want)
	}

	// Capacity-2 FIFO: a third distinct signature evicts the first.
	if _, err := db.QueryTSS([]*poset.Domain{mk()}, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryTSS([]*poset.Domain{mk([2]int{1, 2})}, Options{}); err != nil {
		t.Fatal(err)
	}
	if h, m := db.CacheStats(); h != 1 || m != 4 {
		t.Errorf("after eviction: hits=%d misses=%d, want 1/4", h, m)
	}
}

// TestQueryCacheMutationSafety: mutating a served result must not
// corrupt the cache.
func TestQueryCacheMutationSafety(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	db.EnableCache(4)
	dom := func() *poset.Domain {
		dag := poset.NewDAG(3)
		dag.MustEdge(1, 2)
		return poset.MustDomain(dag)
	}
	r1, _ := db.QueryTSS([]*poset.Domain{dom()}, Options{})
	for i := range r1.SkylineIDs {
		r1.SkylineIDs[i] = -1 // caller scribbles over the result
	}
	r2, _ := db.QueryTSS([]*poset.Domain{dom()}, Options{})
	for _, id := range r2.SkylineIDs {
		if id == -1 {
			t.Fatal("cache returned aliased storage")
		}
	}
}

// TestPackedRoots: packing group roots into sequential pages preserves
// the result and, for domains with many groups, cuts the per-query IO
// substantially (the §VI-C remedy).
func TestPackedRoots(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	// Many groups: two PO attributes with sizeable domains.
	ds := &Dataset{}
	for d := 0; d < 2; d++ {
		ds.Domains = append(ds.Domains,
			poset.MustDomain(randomPODomainDAG(rng, 9, 0.3)))
	}
	for i := 0; i < 800; i++ {
		ds.Pts = append(ds.Pts, Point{
			ID: int32(i),
			TO: []int32{int32(rng.Intn(50)), int32(rng.Intn(50))},
			PO: []int32{int32(rng.Intn(9)), int32(rng.Intn(9))},
		})
	}
	db := NewDynamicDB(ds, Options{})
	domains := []*poset.Domain{
		poset.MustDomain(randomPODomainDAG(rng, 9, 0.3)),
		poset.MustDomain(randomPODomainDAG(rng, 9, 0.3)),
	}
	plain, err := db.QueryTSS(domains, Options{})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := db.QueryTSS(domains, Options{PackedRoots: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(plain.SkylineIDs, packed.SkylineIDs) {
		t.Fatal("packed roots must not change the result")
	}
	if packed.Metrics.ReadIOs >= plain.Metrics.ReadIOs {
		t.Errorf("packed reads %d, want fewer than %d", packed.Metrics.ReadIOs, plain.Metrics.ReadIOs)
	}
	// Fully dynamic path too.
	q := []int32{10, 10}
	fp, err := db.QueryTSSFull(q, domains, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fpk, err := db.QueryTSSFull(q, domains, Options{PackedRoots: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(fp.SkylineIDs, fpk.SkylineIDs) {
		t.Fatal("packed roots must not change the fully dynamic result")
	}
	if fpk.Metrics.ReadIOs >= fp.Metrics.ReadIOs {
		t.Errorf("fully dynamic packed reads %d, want fewer than %d",
			fpk.Metrics.ReadIOs, fp.Metrics.ReadIOs)
	}
}

// TestBufferReducesIOs: with a buffer as large as the index, repeated
// traversal of shared upper levels is absorbed; the unbuffered run
// charges strictly more reads.
func TestBufferReducesIOs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ds := randomDataset(rng, 2000, 2, 1)
	plain := STSS(ds, Options{})
	buffered := STSS(ds, Options{BufferPages: 1 << 16})
	if !sameIDSet(plain.SkylineIDs, buffered.SkylineIDs) {
		t.Fatal("buffering must not change the result")
	}
	if buffered.Metrics.ReadIOs > plain.Metrics.ReadIOs {
		t.Errorf("buffered reads %d > unbuffered %d", buffered.Metrics.ReadIOs, plain.Metrics.ReadIOs)
	}
	// Dynamic path too.
	db := NewDynamicDB(ds, Options{})
	dom := []*poset.Domain{poset.MustDomain(randomPODomainDAG(rng, ds.Domains[0].Size(), 0.3))}
	rp, err := db.QueryTSS(dom, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := db.QueryTSS(dom, Options{BufferPages: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(rp.SkylineIDs, rb.SkylineIDs) {
		t.Fatal("dynamic buffering must not change the result")
	}
	if rb.Metrics.ReadIOs > rp.Metrics.ReadIOs {
		t.Errorf("dynamic buffered reads %d > unbuffered %d", rb.Metrics.ReadIOs, rp.Metrics.ReadIOs)
	}
}
