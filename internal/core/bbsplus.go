package core

import (
	"time"

	"repro/internal/poset"
	"repro/internal/rtree"
)

// BBSPlus implements the BBS+ baseline of Chan et al. (described in
// §II-C): BBS over the transformed m-dominance space. Because
// m-dominance is stronger than actual dominance, the candidate set may
// contain false hits, so nothing can be output until the traversal
// finishes and every candidate has been cross-examined against the
// others with the exact dominance oracle — BBS+ is not progressive.
func BBSPlus(ds *Dataset, opt Options) *Result {
	opt = opt.withDefaults()
	res := &Result{}
	if len(ds.Pts) == 0 {
		return res
	}

	buildStart := time.Now()
	io := &rtree.IOCounter{}
	tree := buildMTree(ds, ds.Domains, nil, opt, io)
	res.Metrics.BuildWriteIOs = io.Writes
	res.Metrics.BuildCPU = time.Since(buildStart)
	io.Writes, io.Reads = 0, 0

	clock := newEmitClock(io)
	type cand struct {
		p  *Point
		co []int32
	}
	var cands []cand
	var checks int64

	mDominatedCorner := func(corner []int32) bool {
		for i := range cands {
			checks++
			if paretoDominates(cands[i].co, corner) {
				return true
			}
		}
		return false
	}

	var h bbsHeap
	if len(ds.Pts) > 0 {
		for _, e := range tree.Root().Entries {
			h.push(e)
		}
	}
	for h.len() > 0 {
		it := h.pop()
		if it.isPoint {
			if mDominatedCorner(it.e.Lo) {
				res.Metrics.PointsPruned++
				continue
			}
			cands = append(cands, cand{p: &ds.Pts[it.e.ID], co: it.e.Lo})
			continue
		}
		if mDominatedCorner(it.e.Lo) {
			res.Metrics.NodesPruned++
			continue
		}
		node := tree.Open(it.e)
		res.Metrics.NodesOpened++
		for _, e := range node.Entries {
			if !e.IsLeafEntry() && mDominatedCorner(e.Lo) {
				res.Metrics.NodesPruned++
				continue
			}
			h.push(e)
		}
	}

	// Cross-examination: candidates may be actually dominated by other
	// candidates even though no m-dominance was found. This terminal
	// pass is what makes BBS+ expensive and non-progressive.
	for i := range cands {
		dominated := false
		for j := range cands {
			if i == j {
				continue
			}
			checks++
			if DominatesUnder(ds.Domains, cands[j].p, cands[i].p) {
				dominated = true
				break
			}
		}
		if !dominated {
			res.SkylineIDs = append(res.SkylineIDs, cands[i].p.ID)
			res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(cands[i].p.ID))
		}
	}

	res.Metrics.DomChecks = checks
	res.Metrics.ReadIOs = io.Reads
	res.Metrics.WriteIOs = io.Writes
	res.Metrics.CPU = clock.elapsed()
	return res
}

// buildMTree bulk-loads an R-tree over the transformed m-dominance
// coordinates of the selected points (all points when idxs is nil).
// Leaf entry ids are indexes into ds.Pts.
func buildMTree(ds *Dataset, domains []*poset.Domain, idxs []int32, opt Options, io *rtree.IOCounter) *rtree.Tree {
	dims := ds.NumTO() + 2*ds.NumPO()
	var pts []rtree.Point
	if idxs == nil {
		pts = make([]rtree.Point, len(ds.Pts))
		for i := range ds.Pts {
			pts[i] = rtree.Point{Coords: mCoords(domains, &ds.Pts[i]), ID: int32(i)}
		}
	} else {
		pts = make([]rtree.Point, len(idxs))
		for k, i := range idxs {
			pts[k] = rtree.Point{Coords: mCoords(domains, &ds.Pts[i]), ID: i}
		}
	}
	return rtree.BulkLoad(dims, pts, opt.capacityFor(dims), io)
}
