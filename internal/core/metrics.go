package core

import (
	"time"

	"repro/internal/rtree"
)

// DefaultIOCost is the simulated cost of one page access, matching the
// paper's evaluation ("after charging 5 msec for each IO", §VI-B).
const DefaultIOCost = 5 * time.Millisecond

// DefaultPageSize is the simulated disk page size in bytes.
const DefaultPageSize = 4096

// Options tunes the algorithms. The zero value selects the paper's
// defaults via withDefaults.
type Options struct {
	// PageSize is the simulated page size used to derive R-tree fan-out
	// and data-file page counts. Default 4096.
	PageSize int
	// Capacity overrides the derived R-tree node capacity when > 0
	// (used by tests reproducing the paper's capacity-3 examples).
	Capacity int
	// UseMemTree enables the in-memory R-tree over virtual points for
	// t-dominance checks (paper §IV-B second optimisation). The paper's
	// headline experiments run TSS *without* it "for fairness", so it
	// defaults to off; the ablation benchmarks measure its effect.
	UseMemTree bool
	// UseDyadic enables the dyadic-range interval index (paper §IV-B
	// first optimisation). Default on (cheap, pure win).
	UseDyadic bool
	// NoDyadic disables the dyadic index (ablation).
	NoDyadic bool
	// StabOnly makes point-level t-dominance checks query only the
	// interval run containing the candidate value's own postorder
	// position, which is provably equivalent to checking every interval
	// (ablation of the paper-faithful ∀-interval check).
	StabOnly bool
	// PrecomputedLocal makes dTSS answer queries from precomputed
	// per-group local skylines instead of the per-group R-trees (paper
	// §V-B pre-processing optimisation).
	PrecomputedLocal bool
	// BufferPages attaches an LRU page buffer of that many pages to the
	// query's index reads (0 = unbuffered, the paper's headline
	// configuration). §VI-B points out that buffering shifts TSS from
	// IO-bound towards CPU-bound, widening its lead over SDC+.
	BufferPages int
	// PackedRoots stores the roots of dTSS's per-group trees in
	// contiguous pages read sequentially at query start, instead of one
	// page read per group root — the remedy §VI-C proposes for large
	// PO domains, where dTSS "must visit a large number of root nodes".
	PackedRoots bool
	// Parallelism is the shard count of the partition-and-merge
	// executor (Parallel). 0 selects runtime.GOMAXPROCS(0); sequential
	// algorithms ignore it.
	Parallelism int
	// LESSWindow is the size of LESS's elimination-filter window — the
	// small set of low-entropy points pass one screens the stream
	// against. 0 selects DefaultLESSWindow.
	LESSWindow int
	// NoKernel disables the dominance kernel (bitset closure, columnar
	// elimination, block zone maps), forcing the scalar *Point/interval
	// reference path — the ablation and differential-harness switch.
	NoKernel bool
	// ClosureBudget is the per-domain memory budget in bytes for the
	// transitive-closure bitset the kernel promotes to the serving
	// path. 0 selects poset.DefaultClosureBudget; negative disables the
	// closure entirely (kernel loops fall back to interval/ordinal
	// forms).
	ClosureBudget int64
}

// DefaultLESSWindow is the default elimination-filter window of LESS.
// Godfrey et al. observe the filter saturates at a handful of points;
// 16 keeps pass one cheap while still eliminating the bulk of the
// dominated stream.
const DefaultLESSWindow = 16

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = DefaultPageSize
	}
	if !o.NoDyadic {
		o.UseDyadic = true
	} else {
		o.UseDyadic = false
	}
	if o.LESSWindow == 0 {
		o.LESSWindow = DefaultLESSWindow
	}
	return o
}

// capacityFor derives the R-tree node capacity for an index of the
// given dimensionality.
func (o Options) capacityFor(dims int) int {
	if o.Capacity > 0 {
		return o.Capacity
	}
	return rtree.CapacityForPage(o.PageSize, dims)
}

// dataPages returns the number of pages the raw data file occupies,
// assuming 4 bytes per attribute plus a 4-byte id per record. Used to
// charge the dynamic SDC+ rebuild's external sort.
func (o Options) dataPages(n, attrs int) int64 {
	rec := int64(4 * (attrs + 1))
	bytes := int64(n) * rec
	pages := bytes / int64(o.PageSize)
	if bytes%int64(o.PageSize) != 0 {
		pages++
	}
	if pages == 0 && n > 0 {
		pages = 1
	}
	return pages
}

// Emission records one skyline point being output, with the virtual
// cost spent up to that moment — the raw material of the paper's
// progressiveness experiment (Figure 11).
type Emission struct {
	ID  int32
	IOs int64         // query-phase page accesses so far (reads+writes)
	CPU time.Duration // query-phase CPU so far
}

// Time converts an emission to virtual time at the given IO cost.
func (e Emission) Time(ioCost time.Duration) time.Duration {
	return e.CPU + time.Duration(e.IOs)*ioCost
}

// Metrics aggregates the evaluation counters of one run. Query-phase
// and build-phase costs are kept separate: the static experiments charge
// queries only (indexes are prebuilt), while the dynamic SDC+ baseline
// folds its per-query rebuild into the query cost (paper §VI-C).
type Metrics struct {
	ReadIOs   int64 // query-phase page reads
	WriteIOs  int64 // query-phase page writes (rebuilds, runs)
	DomChecks int64 // pairwise dominance-check operations

	NodesOpened  int64 // R-tree nodes expanded
	NodesPruned  int64 // MBBs discarded by dominance
	PointsPruned int64 // points discarded by dominance

	// BlocksSkipped counts zone-map blocks the dominance kernel skipped
	// without scanning (0 on the scalar reference path).
	BlocksSkipped int64

	CPU time.Duration // measured query-phase CPU

	BuildReadIOs  int64
	BuildWriteIOs int64
	BuildCPU      time.Duration

	Emissions []Emission

	// Shards holds the per-shard metrics of a partition-and-merge run
	// (nil for sequential runs). The top-level counters are the
	// aggregates across shards plus the merge pass; the top-level CPU is
	// the executor's wall-clock time, while each shard's CPU is the time
	// its own worker spent.
	Shards []Metrics
}

// TotalTime is the paper's headline metric: measured CPU plus the
// simulated IO charge.
func (m *Metrics) TotalTime(ioCost time.Duration) time.Duration {
	return m.CPU + time.Duration(m.ReadIOs+m.WriteIOs)*ioCost
}

// IOTime returns only the simulated IO component.
func (m *Metrics) IOTime(ioCost time.Duration) time.Duration {
	return time.Duration(m.ReadIOs+m.WriteIOs) * ioCost
}

// CPUShare returns CPU / total time — the percentage annotated on the
// markers of the paper's Figure 7.
func (m *Metrics) CPUShare(ioCost time.Duration) float64 {
	tot := m.TotalTime(ioCost)
	if tot == 0 {
		return 0
	}
	return float64(m.CPU) / float64(tot)
}

// MetricsExport is the flat, JSON-ready view of a run's Metrics that
// the serving layer attaches to query responses: plain counters plus
// derived seconds at a fixed IO cost, no nested durations.
type MetricsExport struct {
	ReadIOs       int64   `json:"readIOs"`
	WriteIOs      int64   `json:"writeIOs"`
	DomChecks     int64   `json:"domChecks"`
	NodesOpened   int64   `json:"nodesOpened,omitempty"`
	NodesPruned   int64   `json:"nodesPruned,omitempty"`
	PointsPruned  int64   `json:"pointsPruned,omitempty"`
	BlocksSkipped int64   `json:"blocksSkipped,omitempty"`
	CPUSeconds    float64 `json:"cpuSeconds"`
	TotalSeconds  float64 `json:"totalSeconds"`
	Emissions     int     `json:"emissions,omitempty"`
	Shards        int     `json:"shards,omitempty"`
}

// Export flattens the metrics for transport, charging IOs at ioCost
// (pass DefaultIOCost for the paper's 5 ms model).
func (m *Metrics) Export(ioCost time.Duration) MetricsExport {
	return MetricsExport{
		ReadIOs:       m.ReadIOs,
		WriteIOs:      m.WriteIOs,
		DomChecks:     m.DomChecks,
		NodesOpened:   m.NodesOpened,
		NodesPruned:   m.NodesPruned,
		PointsPruned:  m.PointsPruned,
		BlocksSkipped: m.BlocksSkipped,
		CPUSeconds:    m.CPU.Seconds(),
		TotalSeconds:  m.TotalTime(ioCost).Seconds(),
		Emissions:     len(m.Emissions),
		Shards:        len(m.Shards),
	}
}

// Result is a completed skyline computation: the skyline point ids in
// emission order plus the run's metrics. FromCache marks a dynamic
// query answered from the past-result cache (§V-B) without touching
// any index.
type Result struct {
	SkylineIDs []int32
	Metrics    Metrics
	FromCache  bool
}

// emitClock stamps emissions with the current virtual cost.
type emitClock struct {
	io    *rtree.IOCounter
	extra *int64 // additional charged IOs not tracked by io (may be nil)
	start time.Time
}

func newEmitClock(io *rtree.IOCounter) *emitClock {
	return &emitClock{io: io, start: time.Now()}
}

func (c *emitClock) ios() int64 {
	n := c.io.Reads + c.io.Writes
	if c.extra != nil {
		n += *c.extra
	}
	return n
}

func (c *emitClock) emission(id int32) Emission {
	return Emission{ID: id, IOs: c.ios(), CPU: time.Since(c.start)}
}

func (c *emitClock) elapsed() time.Duration { return time.Since(c.start) }
