package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/poset"
	"repro/internal/rtree"
)

// This file implements the §V-B extensions of dTSS:
//
//   - fully dynamic skyline queries, which besides the per-query partial
//     orders also specify the *ideal values* of the TO attributes: all
//     TO dominance is redefined relative to a query point q, so the
//     precomputed local skylines are invalid and each group must be
//     searched with distances |t − q|;
//   - caching of past query results keyed by a canonical signature of
//     the query's partial orders (cf. Sacharidis et al., SSDBM 2008).

// absDiff returns |t − q| per dimension — the coordinates of a point in
// the dynamic space centred at q.
func absDiff(t, q []int32) []int32 {
	out := make([]int32, len(t))
	for d, v := range t {
		if v >= q[d] {
			out[d] = v - q[d]
		} else {
			out[d] = q[d] - v
		}
	}
	return out
}

// boxMinDist returns, per dimension, the smallest |x − q[d]| over
// x ∈ [lo[d], hi[d]] — the transformed lower corner of a box, i.e. the
// best point any tuple inside the box could achieve relative to q.
func boxMinDist(lo, hi, q []int32) []int32 {
	out := make([]int32, len(lo))
	for d := range lo {
		switch {
		case q[d] < lo[d]:
			out[d] = lo[d] - q[d]
		case q[d] > hi[d]:
			out[d] = q[d] - hi[d]
		default:
			out[d] = 0
		}
	}
	return out
}

func sumInt32(xs []int32) int64 {
	var s int64
	for _, x := range xs {
		s += int64(x)
	}
	return s
}

// QueryTSSFull answers a fully dynamic skyline query: ideal TO values q
// (one per TO attribute) plus one preference domain per PO attribute.
// A point a dominates b when |a.TO − q| ⪯ |b.TO − q| per dimension, PO
// values are equal or t-preferred per dimension, and something is
// strict. Group trees are traversed best-first by rectilinear distance
// to q; the precomputed local skylines cannot be used (they presume the
// original TO order), exactly as §V-B notes.
func (db *DynamicDB) QueryTSSFull(q []int32, domains []*poset.Domain, opt Options) (*Result, error) {
	return db.QueryTSSFullContext(context.Background(), q, domains, opt)
}

// QueryTSSFullContext is QueryTSSFull with cooperative cancellation,
// checked between groups and periodically inside each group's
// best-first traversal (the same contract as QueryTSSContext).
func (db *DynamicDB) QueryTSSFullContext(ctx context.Context, q []int32, domains []*poset.Domain, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	ds := db.ds
	if len(q) != ds.NumTO() {
		return nil, fmt.Errorf("core: query point has %d coordinates, dataset has %d TO attributes",
			len(q), ds.NumTO())
	}
	if opt.PrecomputedLocal {
		return nil, fmt.Errorf("core: precomputed local skylines are invalid for fully dynamic queries (§V-B)")
	}
	if len(domains) != ds.NumPO() {
		return nil, fmt.Errorf("core: query has %d domains, dataset has %d PO attributes",
			len(domains), ds.NumPO())
	}
	for d, dm := range domains {
		if dm.Size() != ds.Domains[d].Size() {
			return nil, fmt.Errorf("core: query domain %d has %d values, dataset expects %d",
				d, dm.Size(), ds.Domains[d].Size())
		}
		if opt.UseDyadic {
			dm.EnableDyadic()
		}
	}

	res := &Result{}
	io := &rtree.IOCounter{}
	var extra int64
	clock := newEmitClock(io)
	clock.extra = &extra
	checker := newChecker(domains, ds.NumTO(), opt)
	var buf *rtree.Buffer
	if opt.BufferPages > 0 {
		buf = rtree.NewBuffer(opt.BufferPages)
	}
	if opt.PackedRoots {
		extra += db.packedRootPages()
	}

	order := db.groupOrder(domains)
	for _, gi := range order {
		if err := dynCtxErr(ctx); err != nil {
			return nil, err
		}
		g := &db.groups[gi]
		rd := g.tree.NewReader(io, buf)
		var root *rtree.Node
		if opt.PackedRoots {
			root = rd.RootNoIO()
		} else {
			root = rd.Root()
		}
		if len(root.Entries) == 0 {
			continue
		}
		// The group's best achievable transformed corner.
		lo, hi := rootMBB(root, ds.NumTO())
		corner := boxMinDist(lo, hi, q)
		if checker.dominatedPoint(corner, g.vals) {
			res.Metrics.NodesPruned++
			continue
		}
		var h bbsHeap
		for _, e := range root.Entries {
			h.pushMind(e, sumInt32(boxMinDist(e.Lo, e.Hi, q)))
		}
		for steps := 0; h.len() > 0; steps++ {
			if steps%dynCtxCheckEvery == dynCtxCheckEvery-1 {
				if err := dynCtxErr(ctx); err != nil {
					return nil, err
				}
			}
			it := h.pop()
			if it.isPoint {
				p := &ds.Pts[db.row(it.e.ID)]
				tq := absDiff(p.TO, q)
				if checker.dominatedPoint(tq, p.PO) {
					res.Metrics.PointsPruned++
					continue
				}
				res.SkylineIDs = append(res.SkylineIDs, p.ID)
				res.Metrics.Emissions = append(res.Metrics.Emissions, clock.emission(p.ID))
				// The checker stores the *transformed* coordinates so
				// that later checks compare distances to q.
				checker.add(&Point{ID: p.ID, TO: tq, PO: p.PO})
				continue
			}
			c := boxMinDist(it.e.Lo, it.e.Hi, q)
			if checker.dominatedPoint(c, g.vals) {
				res.Metrics.NodesPruned++
				continue
			}
			node := rd.Open(it.e)
			res.Metrics.NodesOpened++
			for _, e := range node.Entries {
				h.pushMind(e, sumInt32(boxMinDist(e.Lo, e.Hi, q)))
			}
		}
	}

	res.Metrics.DomChecks = checker.checks()
	res.Metrics.ReadIOs = io.Reads + extra
	res.Metrics.WriteIOs = io.Writes
	res.Metrics.CPU = clock.elapsed()
	return res, nil
}

// FullyDynamicNaive is the ground-truth oracle for fully dynamic
// queries: brute force over the points transformed around q.
func FullyDynamicNaive(ds *Dataset, q []int32, domains []*poset.Domain) []int32 {
	pts := make([]Point, len(ds.Pts))
	for i, p := range ds.Pts {
		pts[i] = Point{ID: p.ID, TO: absDiff(p.TO, q), PO: p.PO}
	}
	return NaiveSkylineUnder(domains, pts)
}

// groupOrder returns group indexes sorted by ascending sum of
// topological ordinals under the query domains (the cross-group
// precedence order shared by all dTSS variants).
func (db *DynamicDB) groupOrder(domains []*poset.Domain) []int {
	order := make([]int, len(db.groups))
	keys := make([]int64, len(db.groups))
	for gi := range db.groups {
		order[gi] = gi
		var s int64
		for d, v := range db.groups[gi].vals {
			s += int64(domains[d].Ord(v))
		}
		keys[gi] = s
	}
	sort.Slice(order, func(a, b int) bool {
		if keys[order[a]] != keys[order[b]] {
			return keys[order[a]] < keys[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// rootMBB computes a root node's overall MBB.
func rootMBB(root *rtree.Node, dims int) (lo, hi []int32) {
	lo = make([]int32, dims)
	hi = make([]int32, dims)
	copy(lo, root.Entries[0].Lo)
	copy(hi, root.Entries[0].Hi)
	for _, e := range root.Entries[1:] {
		for d := 0; d < dims; d++ {
			if e.Lo[d] < lo[d] {
				lo[d] = e.Lo[d]
			}
			if e.Hi[d] > hi[d] {
				hi[d] = e.Hi[d]
			}
		}
	}
	return lo, hi
}

// --- query result cache ------------------------------------------------------

// queryCache memoises dynamic skyline results keyed by the canonical
// signature of the query's partial orders, with FIFO eviction. All
// accesses go through the mutex: QueryTSS may be called from many
// goroutines sharing one DynamicDB (the serving layer's snapshots).
type queryCache struct {
	mu       sync.Mutex
	capacity int
	results  map[string][]int32
	fifo     []string
	hits     int64
	misses   int64
}

// EnableCache makes QueryTSS memoise up to capacity past results (§V-B:
// "caching of past results can help reduce the processing cost of
// dynamic queries"). A cache hit serves the stored skyline with zero
// page IOs; its metrics reflect only the signature computation.
//
// Call before the database is shared across goroutines: enabling the
// cache swaps an unguarded pointer, while the cache itself is safe for
// concurrent queries once installed.
func (db *DynamicDB) EnableCache(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	db.cache = &queryCache{capacity: capacity, results: make(map[string][]int32, capacity)}
}

// CacheStats returns (hits, misses) since EnableCache; zeros when the
// cache is disabled.
func (db *DynamicDB) CacheStats() (hits, misses int64) {
	if db.cache == nil {
		return 0, 0
	}
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.hits, db.cache.misses
}

// signature serialises the query's preference DAGs canonically: value
// count plus the sorted edge list per domain. Two queries with the same
// preferences — however their Orders were constructed — share a
// signature.
func querySignature(domains []*poset.Domain) string {
	var sb strings.Builder
	for _, dm := range domains {
		dag := dm.DAG()
		sb.WriteString(strconv.Itoa(dag.N()))
		sb.WriteByte(';')
		for v := 0; v < dag.N(); v++ {
			for _, w := range dag.Out(v) {
				sb.WriteString(strconv.Itoa(v))
				sb.WriteByte('>')
				sb.WriteString(strconv.Itoa(int(w)))
				sb.WriteByte(',')
			}
		}
		sb.WriteByte('|')
	}
	return sb.String()
}

func (c *queryCache) get(sig string) ([]int32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids, ok := c.results[sig]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ids, ok
}

func (c *queryCache) put(sig string, ids []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.results[sig]; exists {
		return
	}
	if len(c.fifo) >= c.capacity {
		old := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.results, old)
	}
	c.fifo = append(c.fifo, sig)
	c.results[sig] = ids
}

// lookupCache consults the cache inside QueryTSS; returns a served
// result on hit.
func (db *DynamicDB) lookupCache(domains []*poset.Domain) (*Result, string) {
	if db.cache == nil {
		return nil, ""
	}
	start := time.Now()
	sig := querySignature(domains)
	if ids, ok := db.cache.get(sig); ok {
		res := &Result{SkylineIDs: append([]int32(nil), ids...), FromCache: true}
		res.Metrics.CPU = time.Since(start)
		return res, sig
	}
	return nil, sig
}

func (db *DynamicDB) storeCache(sig string, res *Result) {
	// res is nil when the query erred or was canceled mid-run — there is
	// no (complete) skyline to memoise.
	if db.cache == nil || sig == "" || res == nil {
		return
	}
	db.cache.put(sig, append([]int32(nil), res.SkylineIDs...))
}
