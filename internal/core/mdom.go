package core

import "repro/internal/poset"

// This file holds the coordinate transforms shared by the algorithms.
//
// sTSS space (precedence-preserving): one coordinate per TO attribute
// plus the topological ordinal of each PO attribute; dominance is NOT
// checked in this space (only the visiting order uses it).
//
// m-dominance space (Chan et al.): one coordinate per TO attribute plus
// two per PO attribute, (minpost−1, N−post), both minimised; strict
// coordinate-wise dominance in this space is exactly m-dominance.

// stssCoords maps a point into the (TO…, ATO…) space of the sTSS index.
func stssCoords(domains []*poset.Domain, p *Point) []int32 {
	c := make([]int32, len(p.TO)+len(p.PO))
	copy(c, p.TO)
	for d, v := range p.PO {
		c[len(p.TO)+d] = domains[d].Ord(v)
	}
	return c
}

// mCoords maps a point into the transformed m-dominance space.
func mCoords(domains []*poset.Domain, p *Point) []int32 {
	nTO := len(p.TO)
	c := make([]int32, nTO+2*len(p.PO))
	copy(c, p.TO)
	for d, v := range p.PO {
		i1, i2 := domains[d].MCoords(v)
		c[nTO+2*d] = i1
		c[nTO+2*d+1] = i2
	}
	return c
}

// paretoDominates is strict coordinate-wise dominance: a ⪯ b everywhere
// and a < b somewhere. In the m-space this is m-dominance; pruning an
// MBB requires it to hold against the box's lower corner, which is safe
// even in the presence of exact duplicates.
func paretoDominates(a, b []int32) bool {
	strict := false
	for d, av := range a {
		bv := b[d]
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	return strict
}

// pointLevel is the stratum of a point: the maximum uncovered level of
// its PO values (level monotonicity per dimension makes the maximum
// monotone too, so points are never dominated from higher strata).
func pointLevel(domains []*poset.Domain, p *Point) int32 {
	var lv int32
	for d, v := range p.PO {
		if l := domains[d].Level(v); l > lv {
			lv = l
		}
	}
	return lv
}

// completelyCovered reports whether all PO values of p are completely
// covered nodes (uncovered level 0) — the early-output stratum of SDC.
// Among such points, m-dominance coincides with actual dominance.
func completelyCovered(domains []*poset.Domain, p *Point) bool {
	return pointLevel(domains, p) == 0
}
