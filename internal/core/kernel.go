package core

import (
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/poset"
)

// This file is the dominance kernel: the columnar (SoA) elimination
// engine shared by the BNL/SFS/SaLSa/LESS window scans and the
// partition/cluster merge passes. Three ideas compose:
//
//  1. Bitset closure dominance — when a domain's transitive closure
//     fits its memory budget (poset.Domain.EnableClosure), the per-pair
//     PO preference test is one word test, and each candidate compiles
//     its per-dimension predecessor/successor sets into bitsets so a
//     member test is a single indexed bit load.
//  2. Columnar loops — members live in dimension-major int32 columns
//     (Cols) and are tested 64 at a time per dimension with branchless
//     sign-trick masks, early-exiting a word as soon as no member can
//     still dominate.
//  3. Block zone maps — members are grouped into fixed 256-point blocks
//     carrying min/max TO corners and PO value-presence bitsets, so an
//     elimination pass skips whole blocks that provably cannot contain
//     a dominator (or, for evictions, a dominated member) — the
//     intra-node analog of the cluster's min-corner shard pruning.
//
// Options.NoKernel forces the scalar *Point/interval reference path,
// which remains the correctness oracle the kernel is fuzzed against.

// kernelBlock is the zone-map block size. 256 members = 4 mask words:
// small enough that min-corner summaries stay tight, large enough that
// a skipped block saves real work.
const kernelBlock = 256

// Process-cumulative kernel counters, surfaced by /statsz and
// /clusterz: how many member dominance tests the kernels ran and how
// many zone-map blocks they skipped outright.
var (
	kernelDomTests   atomic.Int64
	kernelBlockSkips atomic.Int64
)

// KernelCounters returns the process-cumulative dominance-test and
// block-skip counters of all kernel passes.
func KernelCounters() (domTests, blockSkips int64) {
	return kernelDomTests.Load(), kernelBlockSkips.Load()
}

// kblock is one zone-map block over members [lo, hi).
type kblock struct {
	lo, hi int
	// shard is the uniform shard tag of every member, or -1 when the
	// block is mixed (or members are untagged).
	shard int32

	minTO, maxTO   []int32 // per TO dim corner summaries
	minOrd, maxOrd []int32 // per PO dim topological-ordinal bounds
	// present[d] is the value-presence bitset of PO dim d (which domain
	// values occur among members); nil when dim d has no closure.
	present [][]uint64
}

// colSet is the kernel's member set: columnar storage plus zone-map
// blocks plus an aliveness mask (for BNL-style eviction). It backs both
// grow-only windows (SFS/SaLSa/LESS), evicting windows (BNL) and bulk
// merge-candidate sets (eliminateDominated).
type colSet struct {
	domains []*poset.Domain
	nTO     int
	reach   []*poset.Reachability // per PO dim closure; nil → interval fallback
	reachT  []*poset.Reachability // per PO dim transposed closure
	words   []int                 // closure row words per PO dim (0 without closure)

	cols   *Cols
	shard  []int32  // per-member shard tags; nil when untagged
	alive  []uint64 // member liveness mask
	nAlive int
	blocks []kblock
}

// newColSet builds an empty kernel set over the given domains. budget
// is the per-domain closure budget (0 → poset.DefaultClosureBudget,
// negative → closure disabled, interval/ordinal fallbacks throughout).
// tagged pre-sizes per-member shard tags for merge passes.
func newColSet(domains []*poset.Domain, nTO, capHint int, budget int64, tagged bool) *colSet {
	k := &colSet{
		domains: domains,
		nTO:     nTO,
		cols:    NewCols(nTO, len(domains), capHint),
		reach:   make([]*poset.Reachability, len(domains)),
		reachT:  make([]*poset.Reachability, len(domains)),
		words:   make([]int, len(domains)),
	}
	for d, dm := range domains {
		if budget >= 0 && dm.EnableClosure(budget) {
			k.reach[d] = dm.Closure()
			k.reachT[d] = dm.ClosureTranspose()
			k.words[d] = k.reach[d].Words()
		}
	}
	if tagged {
		k.shard = make([]int32, 0, capHint)
	}
	return k
}

// append adds a member (with shard tag when the set is tagged) and
// folds it into the current block's zone map.
func (k *colSet) append(to, po []int32, id, shard int32) {
	i := k.cols.Len()
	k.cols.Append(to, po, id)
	if i&63 == 0 {
		k.alive = append(k.alive, 0)
	}
	k.alive[i>>6] |= 1 << (uint(i) & 63)
	k.nAlive++
	if k.shard != nil {
		k.shard = append(k.shard, shard)
	}
	if i%kernelBlock == 0 {
		b := kblock{
			lo: i, hi: i, shard: -1,
			minTO: make([]int32, k.nTO), maxTO: make([]int32, k.nTO),
		}
		if len(k.domains) > 0 {
			b.minOrd = make([]int32, len(k.domains))
			b.maxOrd = make([]int32, len(k.domains))
			b.present = make([][]uint64, len(k.domains))
		}
		for d := range b.minTO {
			b.minTO[d], b.maxTO[d] = math.MaxInt32, math.MinInt32
		}
		for d := range k.domains {
			b.minOrd[d], b.maxOrd[d] = math.MaxInt32, math.MinInt32
			if k.words[d] > 0 {
				b.present[d] = make([]uint64, k.words[d])
			}
		}
		if k.shard != nil {
			b.shard = shard
		}
		k.blocks = append(k.blocks, b)
	}
	b := &k.blocks[len(k.blocks)-1]
	b.hi = i + 1
	if k.shard != nil && b.shard != shard {
		b.shard = -1
	}
	for d, v := range to {
		if v < b.minTO[d] {
			b.minTO[d] = v
		}
		if v > b.maxTO[d] {
			b.maxTO[d] = v
		}
	}
	for d, v := range po {
		o := k.domains[d].Ord(v)
		if o < b.minOrd[d] {
			b.minOrd[d] = o
		}
		if o > b.maxOrd[d] {
			b.maxOrd[d] = o
		}
		if b.present[d] != nil {
			b.present[d][v>>6] |= 1 << (uint(v) & 63)
		}
	}
}

// aliveIDs appends the ids of live members, in insertion order.
func (k *colSet) aliveIDs(out []int32) []int32 {
	for i, id := range k.cols.IDs {
		if k.alive[i>>6]>>(uint(i)&63)&1 != 0 {
			out = append(out, id)
		}
	}
	return out
}

// probe is the per-candidate, per-goroutine state of a kernel pass: the
// candidate's attributes, its compiled per-dimension bitsets, and local
// counters (merged into Metrics and the process counters at pass end).
type probe struct {
	to, po []int32
	shard  int32
	ord    []int32 // per PO dim: ord(po[d])
	// leq[d] = {v : v ⪯ po[d]} — the values at least as good as the
	// candidate's (candidate's dominator set). geq[d] = {v : po[d] ⪯ v}
	// — the values the candidate is at least as good as (its dominated
	// set, used for evictions). nil entries → interval fallback.
	leq, geq       [][]uint64
	leqBuf, geqBuf [][]uint64

	domTests   int64
	blockSkips int64
}

func (k *colSet) newProbe() *probe {
	nPO := len(k.domains)
	pr := &probe{
		ord: make([]int32, nPO),
		leq: make([][]uint64, nPO), geq: make([][]uint64, nPO),
		leqBuf: make([][]uint64, nPO), geqBuf: make([][]uint64, nPO),
	}
	for d := range k.domains {
		if k.words[d] > 0 {
			pr.leqBuf[d] = make([]uint64, k.words[d])
			pr.geqBuf[d] = make([]uint64, k.words[d])
		}
	}
	return pr
}

// begin compiles a candidate into pr. needGeq additionally compiles the
// dominated-set bitsets evictions need.
func (k *colSet) begin(pr *probe, to, po []int32, needGeq bool) {
	pr.to, pr.po = to, po
	pr.shard = -1
	for d, dm := range k.domains {
		v := po[d]
		pr.ord[d] = dm.Ord(v)
		if rt := k.reachT[d]; rt != nil {
			buf := pr.leqBuf[d]
			copy(buf, rt.Row(v))
			buf[v>>6] |= 1 << (uint(v) & 63)
			pr.leq[d] = buf
		} else {
			pr.leq[d] = nil
		}
		pr.geq[d] = nil
		if needGeq {
			if r := k.reach[d]; r != nil {
				buf := pr.geqBuf[d]
				copy(buf, r.Row(v))
				buf[v>>6] |= 1 << (uint(v) & 63)
				pr.geq[d] = buf
			}
		}
	}
}

// addTo merges the probe's counters into m and the process-cumulative
// kernel counters, then resets them.
func (pr *probe) addTo(m *Metrics) {
	m.DomChecks += pr.domTests
	m.BlocksSkipped += pr.blockSkips
	kernelDomTests.Add(pr.domTests)
	kernelBlockSkips.Add(pr.blockSkips)
	pr.domTests, pr.blockSkips = 0, 0
}

func wordsIntersect(a, b []uint64) bool {
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}

// blockMayDominate is the zone-map admission test for dominator scans:
// false proves no member of b can dominate the candidate — some TO dim
// has every member strictly worse than the candidate, or some PO dim
// has no member value at least as good (presence ∩ dominator set empty;
// ordinal bound in the no-closure fallback, sound because reachability
// implies a smaller topological ordinal).
func (k *colSet) blockMayDominate(b *kblock, pr *probe) bool {
	for d := 0; d < k.nTO; d++ {
		if b.minTO[d] > pr.to[d] {
			return false
		}
	}
	for d := range k.domains {
		if lq := pr.leq[d]; lq != nil {
			if !wordsIntersect(b.present[d], lq) {
				return false
			}
		} else if b.minOrd[d] > pr.ord[d] {
			return false
		}
	}
	return true
}

// blockMayBeDominated is the eviction-direction zone test: false proves
// the candidate dominates no member of b.
func (k *colSet) blockMayBeDominated(b *kblock, pr *probe) bool {
	for d := 0; d < k.nTO; d++ {
		if b.maxTO[d] < pr.to[d] {
			return false
		}
	}
	for d := range k.domains {
		if gq := pr.geq[d]; gq != nil {
			if !wordsIntersect(b.present[d], gq) {
				return false
			}
		} else if b.maxOrd[d] < pr.ord[d] {
			return false
		}
	}
	return true
}

// anyDominator reports whether a live member strictly dominates the
// candidate compiled into pr. When the set is shard-tagged, members of
// pr.shard are excluded (a shard's own list is already a skyline).
func (k *colSet) anyDominator(pr *probe) bool {
	for bi := range k.blocks {
		b := &k.blocks[bi]
		if k.shard != nil && b.shard >= 0 && b.shard == pr.shard {
			continue
		}
		if !k.blockMayDominate(b, pr) {
			pr.blockSkips++
			continue
		}
		if k.scanDominator(b, pr) {
			return true
		}
	}
	return false
}

// scanDominator runs the masked columnar dominance test over one block,
// 64 members per word: m tracks members still at-least-as-good in every
// dimension processed. Strictness (exact duplicates never dominate) is
// resolved by a scalar equality check on the few bits that survive all
// dimensions — keeping the hot per-lane loops to one mask each.
func (k *colSet) scanDominator(b *kblock, pr *probe) bool {
	for base := b.lo; base < b.hi; base += 64 {
		m := k.alive[base>>6]
		if m == 0 {
			continue
		}
		lim := min(base+64, b.hi)
		if k.shard != nil && b.shard < 0 {
			sh := k.shard[base:lim]
			mm := m
			for mm != 0 {
				j := bits.TrailingZeros64(mm)
				mm &^= 1 << uint(j)
				if sh[j] == pr.shard {
					m &^= 1 << uint(j)
				}
			}
			if m == 0 {
				continue
			}
		}
		pr.domTests += int64(bits.OnesCount64(m))
		for d := 0; d < k.nTO && m != 0; d++ {
			col := k.cols.TO[d][base:lim]
			v := int64(pr.to[d])
			var gt uint64
			for j := 0; j < len(col); j++ {
				diff := v - int64(col[j])
				gt |= (uint64(diff) >> 63) << uint(j)
			}
			m &^= gt
		}
		for d := 0; d < len(k.domains) && m != 0; d++ {
			col := k.cols.PO[d][base:lim]
			bv := pr.po[d]
			if lq := pr.leq[d]; lq != nil {
				var bad uint64
				for j := 0; j < len(col); j++ {
					cv := col[j]
					good := lq[cv>>6] >> (uint(cv) & 63) & 1
					bad |= (good ^ 1) << uint(j)
				}
				m &^= bad
			} else {
				dm := k.domains[d]
				mm := m
				for mm != 0 {
					j := bits.TrailingZeros64(mm)
					mm &^= 1 << uint(j)
					cv := col[j]
					if cv != bv && !dm.TPrefers(cv, bv) {
						m &^= 1 << uint(j)
					}
				}
			}
		}
		for mm := m; mm != 0; {
			j := bits.TrailingZeros64(mm)
			mm &^= 1 << uint(j)
			if !k.equalAt(base+j, pr) {
				return true
			}
		}
	}
	return false
}

// equalAt reports whether member i is an exact duplicate of the probe's
// candidate in every dimension.
func (k *colSet) equalAt(i int, pr *probe) bool {
	for d := 0; d < k.nTO; d++ {
		if k.cols.TO[d][i] != pr.to[d] {
			return false
		}
	}
	for d := range k.domains {
		if k.cols.PO[d][i] != pr.po[d] {
			return false
		}
	}
	return true
}

// evictDominatedBy clears the alive bits of members the candidate
// strictly dominates (BNL window maintenance). Zone maps are left
// stale: min corners only get *more* conservative as members die, so
// skips remain sound.
func (k *colSet) evictDominatedBy(pr *probe) {
	for bi := range k.blocks {
		b := &k.blocks[bi]
		if !k.blockMayBeDominated(b, pr) {
			pr.blockSkips++
			continue
		}
		k.scanEvict(b, pr)
	}
}

// scanEvict is scanDominator with the comparison reversed: m tracks
// members the candidate is at-least-as-good as in every dimension, and
// the surviving bits minus exact duplicates are evicted.
func (k *colSet) scanEvict(b *kblock, pr *probe) {
	for base := b.lo; base < b.hi; base += 64 {
		w := base >> 6
		m := k.alive[w]
		if m == 0 {
			continue
		}
		lim := min(base+64, b.hi)
		pr.domTests += int64(bits.OnesCount64(m))
		for d := 0; d < k.nTO && m != 0; d++ {
			col := k.cols.TO[d][base:lim]
			v := int64(pr.to[d])
			var lt uint64
			for j := 0; j < len(col); j++ {
				diff := int64(col[j]) - v
				lt |= (uint64(diff) >> 63) << uint(j)
			}
			m &^= lt
		}
		for d := 0; d < len(k.domains) && m != 0; d++ {
			col := k.cols.PO[d][base:lim]
			bv := pr.po[d]
			if gq := pr.geq[d]; gq != nil {
				var bad uint64
				for j := 0; j < len(col); j++ {
					cv := col[j]
					good := gq[cv>>6] >> (uint(cv) & 63) & 1
					bad |= (good ^ 1) << uint(j)
				}
				m &^= bad
			} else {
				dm := k.domains[d]
				mm := m
				for mm != 0 {
					j := bits.TrailingZeros64(mm)
					mm &^= 1 << uint(j)
					cv := col[j]
					if cv != bv && !dm.TPrefers(bv, cv) {
						m &^= 1 << uint(j)
					}
				}
			}
		}
		dom := m
		for mm := m; mm != 0; {
			j := bits.TrailingZeros64(mm)
			mm &^= 1 << uint(j)
			if k.equalAt(base+j, pr) {
				dom &^= 1 << uint(j)
			}
		}
		if dom != 0 {
			k.alive[w] &^= dom
			k.nAlive -= bits.OnesCount64(dom)
		}
	}
}

// maybeCompact rebuilds the columns without dead members once more than
// half the set has been evicted, so long BNL runs do not keep scanning
// corpses. Insertion order (and therefore output order) is preserved.
func (k *colSet) maybeCompact() {
	n := k.cols.Len()
	if k.shard != nil || n < 2*kernelBlock || 2*k.nAlive >= n {
		return
	}
	old := k.cols
	oldAlive := k.alive
	// k.alive must NOT reuse oldAlive's storage: the re-append loop below
	// still reads old liveness bits while appends write new words, and
	// sharing the array would clobber bits ahead of the read cursor.
	k.cols = NewCols(k.nTO, len(k.domains), k.nAlive)
	k.alive = make([]uint64, 0, (k.nAlive+63)/64)
	k.blocks = k.blocks[:0]
	k.nAlive = 0
	to := make([]int32, k.nTO)
	po := make([]int32, len(k.domains))
	for i := 0; i < n; i++ {
		if oldAlive[i>>6]>>(uint(i)&63)&1 == 0 {
			continue
		}
		for d := range to {
			to[d] = old.TO[d][i]
		}
		for d := range po {
			po[d] = old.PO[d][i]
		}
		k.append(to, po, old.IDs[i], -1)
	}
}
