package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var parallelPs = []int{1, 2, 4, 7}

// TestParallelMatchesNaive is the executor's central property: for
// randomized datasets (mixed TO/PO, heavy duplicates), every registered
// PO-capable algorithm behind the partition-and-merge executor returns
// exactly the naive skyline for every shard count. When the draw has no
// PO attributes the TO-only algorithms are exercised too.
func TestParallelMatchesNaive(t *testing.T) {
	prop := func(seed int64, nRaw uint16, toRaw, poRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%80) + 1
		nTO := int(toRaw%3) + 1
		nPO := int(poRaw % 3)
		ds := randomDataset(rng, n, nTO, nPO)
		want := ds.NaiveSkyline()
		for _, algo := range Algorithms() {
			if !algo.Capabilities().POCapable && nPO > 0 {
				continue
			}
			for _, p := range parallelPs {
				res, err := Parallel(algo).Run(ds, Options{Parallelism: p})
				if err != nil {
					t.Logf("seed=%d: parallel(%s) P=%d: %v", seed, algo.Name(), p, err)
					return false
				}
				if !sameIDSet(res.SkylineIDs, want) {
					t.Logf("seed=%d n=%d TO=%d PO=%d: parallel(%s) P=%d = %v, want %v",
						seed, n, nTO, nPO, algo.Name(), p, res.SkylineIDs, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelEdgeCases pins the empty and singleton datasets for every
// PO-capable algorithm and shard count.
func TestParallelEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	empty := randomDataset(rng, 1, 2, 1)
	empty.Pts = nil
	single := randomDataset(rng, 1, 2, 1)
	for _, algo := range Algorithms() {
		if !algo.Capabilities().POCapable {
			continue
		}
		for _, p := range parallelPs {
			res, err := Parallel(algo).Run(empty, Options{Parallelism: p})
			if err != nil || len(res.SkylineIDs) != 0 {
				t.Errorf("parallel(%s) P=%d on empty: ids=%v err=%v",
					algo.Name(), p, res.SkylineIDs, err)
			}
			res, err = Parallel(algo).Run(single, Options{Parallelism: p})
			if err != nil || len(res.SkylineIDs) != 1 || res.SkylineIDs[0] != single.Pts[0].ID {
				t.Errorf("parallel(%s) P=%d on singleton: ids=%v err=%v",
					algo.Name(), p, res.SkylineIDs, err)
			}
		}
	}
}

// TestParallelRejectsTOOnlyOnPOData: the executor surfaces the inner
// algorithm's PO rejection instead of returning a partial result.
func TestParallelRejectsTOOnlyOnPOData(t *testing.T) {
	ds := flightsDataset(airlineOrder1())
	for _, name := range []string{"salsa", "less"} {
		if _, err := Parallel(MustLookup(name)).Run(ds, Options{Parallelism: 4}); err == nil {
			t.Errorf("parallel(%s) must reject PO attributes", name)
		}
	}
}

// TestParallelDuplicateIDs: id-ambiguous datasets are refused (the
// merge cannot resolve local skyline ids back to points).
func TestParallelDuplicateIDs(t *testing.T) {
	ds := &Dataset{Pts: []Point{
		{ID: 3, TO: []int32{1, 2}},
		{ID: 3, TO: []int32{2, 1}},
	}}
	// Rejected for every shard count, so acceptance does not depend on
	// how Parallelism resolves against the host's CPU count.
	for _, p := range []int{1, 2} {
		if _, err := Parallel(MustLookup("bnl")).Run(ds, Options{Parallelism: p}); err == nil {
			t.Errorf("duplicate point IDs must be rejected (P=%d)", p)
		}
	}
}

// TestParallelMetrics: shard metrics are kept and the aggregate
// counters cover them plus the merge pass.
func TestParallelMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randomDataset(rng, 200, 2, 1)
	res, err := Parallel(MustLookup("stss")).Run(ds, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics.Shards) != 4 {
		t.Fatalf("Shards = %d, want 4", len(res.Metrics.Shards))
	}
	var shardChecks, shardReads int64
	for _, m := range res.Metrics.Shards {
		shardChecks += m.DomChecks
		shardReads += m.ReadIOs
	}
	if res.Metrics.DomChecks < shardChecks {
		t.Errorf("aggregate DomChecks %d < shard sum %d", res.Metrics.DomChecks, shardChecks)
	}
	if res.Metrics.ReadIOs != shardReads {
		t.Errorf("aggregate ReadIOs %d != shard sum %d", res.Metrics.ReadIOs, shardReads)
	}
	if len(res.Metrics.Emissions) != len(res.SkylineIDs) {
		t.Errorf("%d emissions for %d skyline points",
			len(res.Metrics.Emissions), len(res.SkylineIDs))
	}
	// The single-shard fallback keeps the same contract: per-shard
	// detail and one emission stamp per skyline point.
	res1, err := Parallel(MustLookup("stss")).Run(ds, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Metrics.Shards) != 1 {
		t.Errorf("P=1 Shards = %d, want 1", len(res1.Metrics.Shards))
	}
	if len(res1.Metrics.Emissions) != len(res1.SkylineIDs) {
		t.Errorf("P=1: %d emissions for %d skyline points",
			len(res1.Metrics.Emissions), len(res1.SkylineIDs))
	}
}

// TestParallelCapabilities: the wrapper inherits PO-capability but is
// always blocking.
func TestParallelCapabilities(t *testing.T) {
	p := Parallel(MustLookup("stss"))
	caps := p.Capabilities()
	if !caps.POCapable || caps.Progressive {
		t.Errorf("parallel(stss) caps = %+v, want POCapable && !Progressive", caps)
	}
	if p.Name() != "parallel(stss)" {
		t.Errorf("name = %q", p.Name())
	}
	if caps := Parallel(MustLookup("salsa")).Capabilities(); caps.POCapable {
		t.Error("parallel(salsa) must not claim PO capability")
	}
}
