package core

import (
	"fmt"
	"time"

	"repro/internal/rtree"
)

// Delta describes a batched row mutation in the terms incremental index
// maintenance needs: how old row indexes map to new ones, and how many
// rows were appended. The new dataset is the old one with the removed
// rows dropped, survivors renumbered to consecutive indexes in their
// original order, and the added rows at the tail.
type Delta struct {
	// OldToNew maps every old row index to its new index, -1 for
	// removed rows. Its length must equal the old row count.
	OldToNew []int32
	// Added is the number of rows appended at the tail of the new
	// dataset (new indexes newN-Added … newN-1).
	Added int
}

// compactionSlack bounds stable-id space bloat: once deletions have
// left more holes than live rows (plus slack), ApplyBatch rebuilds from
// scratch to reclaim the indirection arrays — amortised O(1) per
// mutated row.
const compactionSlack = 64

// ApplyBatch derives a DynamicDB serving newDS from db by incremental,
// copy-on-write index maintenance instead of a full rebuild: affected
// group trees are updated with O(log n) COW insert/delete per mutated
// row (untouched nodes — and entirely untouched groups — are shared
// with db), per-group local skylines are recomputed only for groups the
// batch touched, and the stable-id maps are refreshed in one O(N) pass.
// db itself is never modified, so queries in flight on it are
// unaffected — this is the snapshot-swap primitive of the serving
// layer.
//
// The result's cache is fresh (cached skylines are stale once rows
// changed); callers re-enable it. When churn has bloated the stable-id
// space past twice the live row count, ApplyBatch transparently falls
// back to a full rebuild, which compacts the indirection.
func (db *DynamicDB) ApplyBatch(newDS *Dataset, delta *Delta) (*DynamicDB, error) {
	if len(delta.OldToNew) != len(db.ds.Pts) {
		return nil, fmt.Errorf("core: delta maps %d rows, database has %d", len(delta.OldToNew), len(db.ds.Pts))
	}
	if len(newDS.Domains) != len(db.ds.Domains) {
		return nil, fmt.Errorf("core: new dataset has %d PO domains, database has %d", len(newDS.Domains), len(db.ds.Domains))
	}
	if db.stableSpace()+delta.Added > 2*len(newDS.Pts)+compactionSlack {
		nd := NewDynamicDB(newDS, db.opt)
		return nd, nil
	}
	start := time.Now()
	maintIO := &rtree.IOCounter{}

	nd := &DynamicDB{
		ds:     newDS,
		opt:    db.opt,
		groups: append([]dynGroup(nil), db.groups...),
		byKey:  make(map[string]int, len(db.byKey)),
	}
	for k, gi := range db.byKey {
		nd.byKey[k] = gi
	}

	// Gather the per-group work: COW tree deletions for removed rows,
	// insertions for added ones, creating groups for unseen PO value
	// combinations.
	type groupOps struct {
		removeStable []int32 // stable ids leaving the group
		removeCoords [][]int32
		addStable    []int32 // stable ids entering the group
		addRow       []int32 // their new row indexes
	}
	ops := map[int]*groupOps{}
	opsFor := func(gi int) *groupOps {
		o := ops[gi]
		if o == nil {
			o = &groupOps{}
			ops[gi] = o
		}
		return o
	}
	for r, nr := range delta.OldToNew {
		if nr >= 0 {
			continue
		}
		p := &db.ds.Pts[r]
		gi, ok := db.byKey[poKey(p.PO)]
		if !ok {
			return nil, fmt.Errorf("core: removed row %d belongs to no group", r)
		}
		o := opsFor(gi)
		o.removeStable = append(o.removeStable, db.stable(int32(r)))
		o.removeCoords = append(o.removeCoords, p.TO)
	}
	oldSpace := db.stableSpace()
	newN := len(newDS.Pts)
	for k := 0; k < delta.Added; k++ {
		row := int32(newN - delta.Added + k)
		p := &newDS.Pts[row]
		key := poKey(p.PO)
		gi, ok := nd.byKey[key]
		if !ok {
			gi = len(nd.groups)
			nd.byKey[key] = gi
			nd.groups = append(nd.groups, dynGroup{
				vals: append([]int32(nil), p.PO...),
				tree: rtree.BulkLoad(newDS.NumTO(), nil, db.opt.capacityFor(newDS.NumTO()), maintIO),
			})
		}
		o := opsFor(gi)
		o.addStable = append(o.addStable, int32(oldSpace+k))
		o.addRow = append(o.addRow, row)
	}

	// Refresh the stable-id maps: one O(N) pass, far cheaper than the
	// per-group sorts and bulk loads a rebuild would redo.
	rowOf := make([]int32, oldSpace+delta.Added)
	for i := range rowOf {
		rowOf[i] = -1
	}
	stableOf := make([]int32, newN)
	for r, nr := range delta.OldToNew {
		if nr >= 0 {
			s := db.stable(int32(r))
			rowOf[s] = nr
			stableOf[nr] = s
		}
	}
	for k := 0; k < delta.Added; k++ {
		s := int32(oldSpace + k)
		row := int32(newN - delta.Added + k)
		rowOf[s] = row
		stableOf[row] = s
	}
	nd.rowOf, nd.stableOf = rowOf, stableOf

	// Apply the per-group maintenance.
	for gi, o := range ops {
		g := &nd.groups[gi]
		tree := g.tree.WithIO(maintIO)
		localEvicted := false
		inLocal := make(map[int32]bool, len(g.local))
		for _, s := range g.local {
			inLocal[s] = true
		}
		for i, s := range o.removeStable {
			nt, ok := tree.DeleteCOW(rtree.Point{Coords: o.removeCoords[i], ID: s})
			if !ok {
				return nil, fmt.Errorf("core: stable id %d missing from its group tree", s)
			}
			tree = nt
			if inLocal[s] {
				localEvicted = true
			}
		}
		for i, s := range o.addStable {
			tree = tree.InsertCOW(rtree.Point{Coords: newDS.Pts[o.addRow[i]].TO, ID: s})
		}
		g.tree = tree.WithIO(nil)

		// Membership list: drop the removed stables, append the added.
		removed := make(map[int32]bool, len(o.removeStable))
		for _, s := range o.removeStable {
			removed[s] = true
		}
		idxs := make([]int32, 0, len(g.idxs)-len(o.removeStable)+len(o.addStable))
		for _, s := range g.idxs {
			if !removed[s] {
				idxs = append(idxs, s)
			}
		}
		idxs = append(idxs, o.addStable...)
		g.idxs = idxs

		// Local-skyline maintenance. Removing a member of the local
		// skyline can promote dominated group members, so that forces a
		// recompute; otherwise additions fold in incrementally (each is
		// either dominated by a member, or joins and evicts the members
		// it dominates) and removals of non-members change nothing.
		if localEvicted {
			g.local = localSkylineStable(newDS, idxs, rowOf)
		} else if len(o.addStable) > 0 {
			local := append([]int32(nil), g.local...)
			for _, s := range o.addStable {
				local = localInsert(newDS, local, rowOf, s)
			}
			g.local = local
		}
	}

	nd.BuildWriteIOs = maintIO.Writes
	nd.BuildCPU = time.Since(start)
	return nd, nil
}

// localInsert folds one new group member into a local skyline kept in
// ascending-L1 order: the point is dropped if an existing member
// dominates it, otherwise it takes its L1 position and evicts the
// members it dominates. O(|local|) — no sort, no full recompute.
// (Equal-L1 points can never dominate each other: TO dominance implies
// a strictly smaller coordinate sum.)
func localInsert(ds *Dataset, local []int32, rowOf []int32, s int32) []int32 {
	p := ds.Pts[rowOf[s]].TO
	var pSum int64
	for _, v := range p {
		pSum += int64(v)
	}
	sumOf := func(id int32) int64 {
		var sum int64
		for _, v := range ds.Pts[rowOf[id]].TO {
			sum += int64(v)
		}
		return sum
	}
	// Members with smaller L1 may dominate p; if any does, p is out.
	insertAt := len(local)
	for i, id := range local {
		if sumOf(id) >= pSum {
			insertAt = i
			break
		}
		if toDominates(ds.Pts[rowOf[id]].TO, p) {
			return local
		}
	}
	// p is in: splice it at its position and evict what it dominates
	// (only possible at L1 sums strictly greater than pSum).
	out := make([]int32, 0, len(local)+1)
	out = append(out, local[:insertAt]...)
	out = append(out, s)
	for _, id := range local[insertAt:] {
		if !toDominates(p, ds.Pts[rowOf[id]].TO) {
			out = append(out, id)
		}
	}
	return out
}

// localSkylineStable recomputes a group's TO-only local skyline over
// stable ids, resolving current rows through rowOf.
func localSkylineStable(ds *Dataset, stables []int32, rowOf []int32) []int32 {
	rows := make([]int32, len(stables))
	for i, s := range stables {
		rows[i] = rowOf[s]
	}
	sky := localSkylineTO(ds, rows)
	// Map the skyline's row indexes back to stable ids.
	stableOf := make(map[int32]int32, len(stables))
	for i, s := range stables {
		stableOf[rows[i]] = s
	}
	out := make([]int32, len(sky))
	for i, r := range sky {
		out[i] = stableOf[r]
	}
	return out
}
