package core

import (
	"sort"
	"testing"
)

// TestRegistryContents: all eight algorithms of the seed are invocable
// through the registry, lookups are case-insensitive, and the listing
// is sorted and stable.
func TestRegistryContents(t *testing.T) {
	want := []string{"bbs+", "bnl", "less", "salsa", "sdc", "sdc+", "sfs", "stss"}
	names := AlgorithmNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("AlgorithmNames not sorted: %v", names)
	}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("algorithm %q not registered (have %v)", n, names)
		}
	}
	if _, ok := Lookup("sTSS"); !ok {
		t.Error("lookup must be case-insensitive")
	}
	if _, ok := Lookup("no-such-algorithm"); ok {
		t.Error("lookup of unknown name must fail")
	}
}

// TestRegistryRun: every registered algorithm computes the flights
// example correctly through the uniform Run signature — PO-capable ones
// on the PO dataset, TO-only ones via their error.
func TestRegistryRun(t *testing.T) {
	ds := flightsDataset(airlineOrder1())
	want := ds.NaiveSkyline()
	for _, algo := range Algorithms() {
		res, err := algo.Run(ds, Options{})
		if algo.Capabilities().POCapable {
			if err != nil {
				t.Errorf("%s: %v", algo.Name(), err)
				continue
			}
			if !sameIDSet(res.SkylineIDs, want) {
				t.Errorf("%s = %v, want %v", algo.Name(), res.SkylineIDs, want)
			}
		} else if err == nil {
			t.Errorf("%s must reject PO attributes through Run", algo.Name())
		}
	}
}

// TestRegisterDuplicatePanics: double registration is a programming
// error.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register must panic")
		}
	}()
	Register(NewAlgorithm("stss", Capabilities{}, nil))
}
