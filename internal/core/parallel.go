package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/poset"
)

// Parallel wraps any registered algorithm in a partition-and-merge
// executor: the dataset is split into P contiguous shards
// (P = opt.Parallelism, defaulting to runtime.GOMAXPROCS(0)), the inner
// algorithm computes each shard's local skyline on a worker pool, and a
// final t-dominance elimination pass merges the local skylines into the
// global one.
//
// Correctness rests on two standard facts about dominance (which the
// exact t-dominance relation shares, being a strict partial order):
// a globally non-dominated point is non-dominated within its own shard,
// so the global skyline is a subset of the union of local skylines; and
// dominance is transitive, so any dominator of a merge candidate is
// itself dominated only by points that also dominate the candidate —
// hence checking candidates against the candidate union alone suffices.
//
// The executor is blocking (results surface only after the merge), so
// its Capabilities drop the inner algorithm's progressiveness. Metrics
// are aggregated across shards — counters summed, per-shard detail kept
// in Metrics.Shards — and the top-level CPU is the executor's
// wall-clock time, the number parallel speedups are measured on.
func Parallel(inner Algorithm) Algorithm {
	return &parallelAlgorithm{inner: inner}
}

type parallelAlgorithm struct {
	inner Algorithm
}

func (p *parallelAlgorithm) Name() string {
	return "parallel(" + p.inner.Name() + ")"
}

func (p *parallelAlgorithm) Capabilities() Capabilities {
	caps := p.inner.Capabilities()
	caps.Progressive = false
	return caps
}

func (p *parallelAlgorithm) Run(ds *Dataset, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	// Started before any executor setup (id map, dyadic pre-build) so
	// the reported wall-clock covers everything the executor adds.
	start := time.Now()
	shards := opt.Parallelism
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(ds.Pts) {
		shards = len(ds.Pts)
	}
	// The merge resolves local skyline ids back to points, which is only
	// well-defined when ids are unique. Enforced before the single-shard
	// early return so acceptance does not depend on how Parallelism
	// resolves against the host's CPU count.
	byID := make(map[int32]*Point, len(ds.Pts))
	for i := range ds.Pts {
		pt := &ds.Pts[i]
		if _, dup := byID[pt.ID]; dup {
			return nil, fmt.Errorf("core: parallel executor requires unique point IDs (duplicate %d)", pt.ID)
		}
		byID[pt.ID] = pt
	}
	if shards <= 1 {
		res, err := p.inner.Run(ds, opt)
		if err != nil {
			return nil, err
		}
		// Keep the executor's metrics contract even with one shard, so
		// a P sweep compares like with like: per-shard detail retained,
		// wall-clock CPU spanning the inner build, blocking emission
		// stamps.
		shard := res.Metrics
		shard.Emissions = nil
		res.Metrics.Shards = []Metrics{shard}
		res.Metrics.CPU = time.Since(start)
		ios := res.Metrics.ReadIOs + res.Metrics.WriteIOs
		res.Metrics.Emissions = res.Metrics.Emissions[:0]
		for _, id := range res.SkylineIDs {
			res.Metrics.Emissions = append(res.Metrics.Emissions,
				Emission{ID: id, IOs: ios, CPU: res.Metrics.CPU})
		}
		return res, nil
	}

	// An inner algorithm that consults the dyadic index would lazily
	// build it on first use; doing that here, before the workers start,
	// keeps the domains strictly read-only inside the pool. Algorithms
	// that never touch the index skip the build cost.
	if opt.UseDyadic && p.inner.Capabilities().UsesDyadic {
		for _, dm := range ds.Domains {
			dm.EnableDyadic()
		}
	}

	shardOpt := opt
	shardOpt.Parallelism = 1
	locals := make([]*Result, shards)
	errs := make([]error, shards)

	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				lo := s * len(ds.Pts) / shards
				hi := (s + 1) * len(ds.Pts) / shards
				shard := &Dataset{Pts: ds.Pts[lo:hi], Domains: ds.Domains}
				locals[s], errs[s] = p.inner.Run(shard, shardOpt)
			}
		}()
	}
	for s := 0; s < shards; s++ {
		work <- s
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Gather merge candidates in shard order (deterministic for a fixed
	// shard count) and aggregate the per-shard metrics.
	res := &Result{}
	var cands []mergeCand
	for s, lr := range locals {
		for _, id := range lr.SkylineIDs {
			cands = append(cands, mergeCand{p: byID[id], shard: s})
		}
		m := lr.Metrics
		m.Emissions = nil // local stamps are meaningless after the merge
		res.Metrics.Shards = append(res.Metrics.Shards, m)
		res.Metrics.ReadIOs += m.ReadIOs
		res.Metrics.WriteIOs += m.WriteIOs
		res.Metrics.DomChecks += m.DomChecks
		res.Metrics.NodesOpened += m.NodesOpened
		res.Metrics.NodesPruned += m.NodesPruned
		res.Metrics.PointsPruned += m.PointsPruned
		res.Metrics.BlocksSkipped += m.BlocksSkipped
		res.Metrics.BuildReadIOs += m.BuildReadIOs
		res.Metrics.BuildWriteIOs += m.BuildWriteIOs
		res.Metrics.BuildCPU += m.BuildCPU
	}

	// The merge pass is independent of the shard count — give it every
	// core even when Parallelism < GOMAXPROCS.
	checks, skips := mergeEliminate(ds.Domains, cands, runtime.GOMAXPROCS(0), opt, func(p *Point) {
		res.SkylineIDs = append(res.SkylineIDs, p.ID)
	})
	res.Metrics.DomChecks += checks
	res.Metrics.BlocksSkipped += skips

	// Blocking executor: every survivor is certified at merge end.
	res.Metrics.CPU = time.Since(start)
	ios := res.Metrics.ReadIOs + res.Metrics.WriteIOs
	for _, id := range res.SkylineIDs {
		res.Metrics.Emissions = append(res.Metrics.Emissions,
			Emission{ID: id, IOs: ios, CPU: res.Metrics.CPU})
	}
	return res, nil
}

// mergeCand is one merge candidate: a local skyline point tagged with
// its shard of origin.
type mergeCand struct {
	p     *Point
	shard int
}

// mergeScratch holds the per-merge scratch slices. Merges run on every
// parallel query and on every cluster gather, so the candidate list and
// the elimination flags are pooled rather than reallocated per call.
type mergeScratch struct {
	cands     []mergeCand
	dominated []bool
	checks    []int64
}

var mergeScratchPool = sync.Pool{New: func() any { return new(mergeScratch) }}

func getMergeScratch() *mergeScratch { return mergeScratchPool.Get().(*mergeScratch) }

// release returns the scratch to the pool. Candidate point pointers are
// cleared first so a pooled slice never pins a retired snapshot's rows.
func (sc *mergeScratch) release() {
	clear(sc.cands[:cap(sc.cands)])
	mergeScratchPool.Put(sc)
}

// candSlice returns a length-n candidate slice backed by pooled storage.
func (sc *mergeScratch) candSlice(n int) []mergeCand {
	if cap(sc.cands) < n {
		sc.cands = make([]mergeCand, n)
	}
	sc.cands = sc.cands[:n]
	return sc.cands
}

// boolSlice returns a zeroed length-n flag slice backed by pooled
// storage.
func (sc *mergeScratch) boolSlice(n int) []bool {
	if cap(sc.dominated) < n {
		sc.dominated = make([]bool, n)
	}
	sc.dominated = sc.dominated[:n]
	clear(sc.dominated)
	return sc.dominated
}

// int64Slice returns a zeroed length-n counter slice backed by pooled
// storage.
func (sc *mergeScratch) int64Slice(n int) []int64 {
	if cap(sc.checks) < n {
		sc.checks = make([]int64, n)
	}
	sc.checks = sc.checks[:n]
	clear(sc.checks)
	return sc.checks
}

// mergeEliminate runs the final elimination pass over the local-skyline
// union: candidate i survives unless a candidate from another shard
// dominates it (same-shard pairs are skipped — a shard's local skyline
// is already mutually non-dominated). The pass is itself data-parallel:
// workers own strided candidate index sets and only write their own
// slots, and candidate order is preserved among survivors, calling emit
// for each in order. Exact duplicates never dominate each other, so all
// copies of a duplicated skyline point survive, matching
// NaiveSkylineUnder. Returns the dominance-check and block-skip counts.
func mergeEliminate(domains []*poset.Domain, cands []mergeCand, workers int, opt Options, emit func(*Point)) (int64, int64) {
	sc := getMergeScratch()
	defer sc.release()
	dominated, checks, skips := eliminateDominated(domains, cands, workers, sc, opt.NoKernel, opt.ClosureBudget)
	for i, mc := range cands {
		if !dominated[i] {
			emit(mc.p)
		}
	}
	return checks, skips
}

// MergeSurvivors is the same elimination pass over arbitrary tagged
// candidates, returning the indexes of survivors in input order — the
// cluster coordinator's cross-process merge reuses the in-process pass
// (and its worker parallelism) instead of re-deriving it. pts[i]
// originates from shard[i]; same-shard pairs are skipped, so each
// shard's list must itself be a skyline (mutually non-dominated), which
// shard query responses are by construction. The pass runs on the
// dominance kernel; MergeSurvivorsRef is the scalar reference.
func MergeSurvivors(domains []*poset.Domain, pts []Point, shard []int, workers int) []int {
	return mergeSurvivors(domains, pts, shard, workers, false)
}

// MergeSurvivorsRef is MergeSurvivors on the scalar *Point/interval
// reference path — the kernel-off leg of differential harnesses and
// the before side of the kernel benchmarks.
func MergeSurvivorsRef(domains []*poset.Domain, pts []Point, shard []int, workers int) []int {
	return mergeSurvivors(domains, pts, shard, workers, true)
}

func mergeSurvivors(domains []*poset.Domain, pts []Point, shard []int, workers int, noKernel bool) []int {
	sc := getMergeScratch()
	defer sc.release()
	cands := sc.candSlice(len(pts))
	for i := range pts {
		cands[i] = mergeCand{p: &pts[i], shard: shard[i]}
	}
	dominated, _, _ := eliminateDominated(domains, cands, workers, sc, noKernel, 0)
	out := make([]int, 0, len(pts))
	for i := range cands {
		if !dominated[i] {
			out = append(out, i)
		}
	}
	return out
}

// eliminateDominated marks the candidates dominated by a candidate from
// another shard, returning the flags plus the dominance-check and
// block-skip counts. The returned flag slice borrows sc's pooled
// storage and is only valid until sc is released.
func eliminateDominated(domains []*poset.Domain, cands []mergeCand, workers int, sc *mergeScratch, noKernel bool, budget int64) ([]bool, int64, int64) {
	n := len(cands)
	if n == 0 {
		return nil, 0, 0
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if !noKernel {
		return eliminateDominatedKernel(domains, cands, workers, sc, budget)
	}
	dominated := sc.boolSlice(n)
	checks := sc.int64Slice(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var c int64
			for i := w; i < n; i += workers {
				for j := 0; j < n; j++ {
					if cands[j].shard == cands[i].shard {
						continue
					}
					c++
					if DominatesUnder(domains, cands[j].p, cands[i].p) {
						dominated[i] = true
						break
					}
				}
			}
			checks[w] = c
		}(w)
	}
	wg.Wait()
	var total int64
	for _, c := range checks {
		total += c
	}
	return dominated, total, 0
}

// eliminateDominatedKernel is the columnar/zone-map form of the merge
// elimination: candidates are loaded into a shard-tagged colSet once,
// then workers probe their strided candidate sets against it. Blocks
// wholly of the probing candidate's shard are skipped (the same-shard
// rule), mixed blocks mask same-shard members per word.
func eliminateDominatedKernel(domains []*poset.Domain, cands []mergeCand, workers int, sc *mergeScratch, budget int64) ([]bool, int64, int64) {
	n := len(cands)
	nTO := len(cands[0].p.TO)
	k := newColSet(domains, nTO, n, budget, true)
	for _, mc := range cands {
		k.append(mc.p.TO, mc.p.PO, mc.p.ID, int32(mc.shard))
	}
	dominated := sc.boolSlice(n)
	counters := sc.int64Slice(2 * workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pr := k.newProbe()
			for i := w; i < n; i += workers {
				mc := cands[i]
				k.begin(pr, mc.p.TO, mc.p.PO, false)
				pr.shard = int32(mc.shard)
				if k.anyDominator(pr) {
					dominated[i] = true
				}
			}
			counters[w] = pr.domTests
			counters[workers+w] = pr.blockSkips
		}(w)
	}
	wg.Wait()
	var checks, skips int64
	for w := 0; w < workers; w++ {
		checks += counters[w]
		skips += counters[workers+w]
	}
	kernelDomTests.Add(checks)
	kernelBlockSkips.Add(skips)
	return dominated, checks, skips
}
