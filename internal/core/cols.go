package core

// Cols is a structure-of-arrays (dimension-major) view of a point set:
// column d holds every point's d-th attribute contiguously, mirroring
// internal/store's columnar snapshot layout. Elimination loops scan
// cache-resident int32 runs column-at-a-time instead of chasing *Point
// structs — the memory layout half of the dominance kernel.
type Cols struct {
	TO  [][]int32 // per TO dimension
	PO  [][]int32 // per PO dimension (value ids into the matching domain)
	IDs []int32
}

// NewCols returns an empty SoA view with the given dimensionality,
// pre-sized for capHint points.
func NewCols(nTO, nPO, capHint int) *Cols {
	c := &Cols{TO: make([][]int32, nTO), PO: make([][]int32, nPO)}
	for d := range c.TO {
		c.TO[d] = make([]int32, 0, capHint)
	}
	for d := range c.PO {
		c.PO[d] = make([]int32, 0, capHint)
	}
	c.IDs = make([]int32, 0, capHint)
	return c
}

// Len returns the number of points in the view.
func (c *Cols) Len() int { return len(c.IDs) }

// Append adds one point's attributes to every column.
func (c *Cols) Append(to, po []int32, id int32) {
	for d := range c.TO {
		c.TO[d] = append(c.TO[d], to[d])
	}
	for d := range c.PO {
		c.PO[d] = append(c.PO[d], po[d])
	}
	c.IDs = append(c.IDs, id)
}

// Columns materialises the SoA view of the dataset's points.
func (ds *Dataset) Columns() *Cols {
	c := NewCols(ds.NumTO(), ds.NumPO(), len(ds.Pts))
	for i := range ds.Pts {
		c.Append(ds.Pts[i].TO, ds.Pts[i].PO, ds.Pts[i].ID)
	}
	return c
}
