package core

import (
	"sync"
	"testing"

	"repro/internal/poset"
	"repro/internal/rtree"
)

// TestTableIIExactTree replays §IV-A on the *exact* R-tree of the
// paper's Figure 3(c): R={N1,N3}, N1={N2,N4,N5}, N3={N6,N7},
// N2={p1,p2,p5}, N4={p9,p10}, N5={p3,p8}, N6={p4,p6,p7},
// N7={p11,p12,p13}. The traversal must discover the skyline
// {p1,p2,p3,p4,p5}, prune both e4 (Table II step 7) and e7 (step 14)
// without opening them, and never open N4 or N7 at all.
func TestTableIIExactTree(t *testing.T) {
	ds := figure3Dataset()
	dm := ds.Domains[0]
	coords := func(id int32) []int32 {
		p := &ds.Pts[id-1]
		return []int32{p.TO[0], dm.Ord(p.PO[0])}
	}
	pt := func(id int32) rtree.Point { return rtree.Point{Coords: coords(id), ID: id - 1} }
	leaf := func(ids ...int32) *rtree.LayoutNode {
		n := &rtree.LayoutNode{}
		for _, id := range ids {
			n.Points = append(n.Points, pt(id))
		}
		return n
	}
	layout := &rtree.LayoutNode{Children: []*rtree.LayoutNode{
		{Children: []*rtree.LayoutNode{ // N1
			leaf(1, 2, 5), // N2
			leaf(9, 10),   // N4
			leaf(3, 8),    // N5
		}},
		{Children: []*rtree.LayoutNode{ // N3
			leaf(4, 6, 7),    // N6
			leaf(11, 12, 13), // N7
		}},
	}}

	io := &rtree.IOCounter{}
	tree := rtree.FromLayout(2, layout, io)
	if tree.Len() != 13 || tree.Height() != 3 {
		t.Fatalf("layout tree: len=%d height=%d", tree.Len(), tree.Height())
	}
	io.Writes, io.Reads = 0, 0

	for _, opt := range []Options{{}, {UseMemTree: true}} {
		res := &Result{}
		stssTraverse(ds, tree, io, opt.withDefaults(), res)
		want := []int32{1, 2, 3, 4, 5}
		if !sameIDSet(res.SkylineIDs, want) {
			t.Fatalf("opt %+v: skyline = %v, want %v", opt, res.SkylineIDs, want)
		}
		// Both N4 and N7 are t-dominated: exactly two subtree prunes.
		if res.Metrics.NodesPruned != 2 {
			t.Errorf("opt %+v: NodesPruned = %d, want 2 (e4 and e7)", opt, res.Metrics.NodesPruned)
		}
		// Opened: R's children N1, N3 and the surviving leaves N2, N5,
		// N6 — never N4 or N7.
		if res.Metrics.NodesOpened != 5 {
			t.Errorf("opt %+v: NodesOpened = %d, want 5", opt, res.Metrics.NodesOpened)
		}
		// Examined-and-pruned points, exactly the bold leaf entries of
		// Table II: p6 (dominated by p1), p7 (by p4), p8 (by p1).
		// p9..p13 live in the pruned N4/N7 and are never examined.
		if res.Metrics.PointsPruned != 3 {
			t.Errorf("opt %+v: PointsPruned = %d, want 3", opt, res.Metrics.PointsPruned)
		}
		io.Writes, io.Reads = 0, 0
	}
}

// TestSTSSConcurrentReads: domains are immutable after construction, so
// concurrent skyline computations over shared domains must race-free
// agree (run with -race in CI).
func TestSTSSConcurrentReads(t *testing.T) {
	ds := figure3Dataset()
	ds.Domains[0].EnableDyadic() // pre-build the index outside the timed region
	want := ds.NaiveSkyline()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(mem bool) {
			defer wg.Done()
			res := STSS(ds, Options{UseMemTree: mem})
			if !sameIDSet(res.SkylineIDs, want) {
				errs <- "concurrent run disagrees"
			}
		}(i%2 == 0)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestDTSSEmissionPrecedence: within a dTSS run, once a group has been
// left, no later emission may belong to a group whose ordinal sum is
// smaller — the cross-group precedence order.
func TestDTSSEmissionPrecedence(t *testing.T) {
	ds := figure5Dataset()
	db := NewDynamicDB(ds, Options{})
	dag := poset.NewDAG(3)
	dag.MustEdge(1, 2) // b better than c
	dom := poset.MustDomain(dag)
	res, err := db.QueryTSS([]*poset.Domain{dom}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lastOrd := int32(-1)
	for _, id := range res.SkylineIDs {
		ord := dom.Ord(ds.Pts[id-1].PO[0])
		if ord < lastOrd {
			t.Fatalf("emission %d from ordinal %d after ordinal %d", id, ord, lastOrd)
		}
		lastOrd = ord
	}
}

// TestFromLayoutValidation: malformed layouts are rejected.
func TestFromLayoutValidation(t *testing.T) {
	bad := []*rtree.LayoutNode{
		{}, // empty
		{Children: []*rtree.LayoutNode{
			{Points: []rtree.Point{{Coords: []int32{1, 1}, ID: 0}}},
			{Children: []*rtree.LayoutNode{
				{Points: []rtree.Point{{Coords: []int32{2, 2}, ID: 1}}},
			}},
		}}, // ragged depth
	}
	for i, layout := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("layout %d: expected panic", i)
				}
			}()
			rtree.FromLayout(2, layout, nil)
		}()
	}
}
