package core

import (
	"fmt"
	"testing"
)

// benchMergeCands builds n anti-correlated TO-only candidates spread
// round-robin over the given shard count: every point is in the skyline
// and every cross-shard pair is checked, so the pass does maximal work
// and the survivor set is the whole input.
func benchMergeCands(n, shards int) ([]Point, []int) {
	pts := make([]Point, n)
	shard := make([]int, n)
	for i := range pts {
		pts[i] = Point{ID: int32(i), TO: []int32{int32(i), int32(n - i)}}
		shard[i] = i % shards
	}
	return pts, shard
}

// BenchmarkMergeSurvivors measures the cross-shard elimination pass.
// Its candidate list, dominated flags, and per-worker check counters
// come from mergeScratchPool, so steady-state merges should allocate
// only the survivor index slice.
func BenchmarkMergeSurvivors(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts, shard := benchMergeCands(n, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := MergeSurvivors(nil, pts, shard, 4)
				if len(out) != n {
					b.Fatalf("got %d survivors, want %d", len(out), n)
				}
			}
		})
	}
}
