package core

import (
	"sort"
	"testing"

	"repro/internal/poset"
)

// fuzzReader decodes a fuzz input byte stream; exhausted input reads
// as zeros, so every byte slice is a valid (if degenerate) workload.
type fuzzReader struct {
	data []byte
	pos  int
}

func (r *fuzzReader) byte() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// datasetFromBytes derives a small mixed TO/PO dataset from raw bytes:
// 1–2 TO attributes, 0–2 PO attributes with domains of 2–6 values and
// byte-driven forward-edge DAGs (edges always run low → high index, so
// any byte stream yields an acyclic preference order), and up to 24
// points with heavy value collisions (duplicates and ties are the
// interesting cases).
func datasetFromBytes(data []byte) *Dataset {
	r := &fuzzReader{data: data}
	nTO := 1 + int(r.byte())%2
	nPO := int(r.byte()) % 3

	ds := &Dataset{}
	for d := 0; d < nPO; d++ {
		size := 2 + int(r.byte())%5
		dag := poset.NewDAG(size)
		edges := int(r.byte()) % 8
		for e := 0; e < edges; e++ {
			a := int(r.byte()) % size
			b := int(r.byte()) % size
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			dag.MustEdge(a, b)
		}
		dom, err := poset.NewDomain(dag)
		if err != nil {
			panic(err) // forward edges only: cycles are impossible
		}
		ds.Domains = append(ds.Domains, dom)
	}

	n := 1 + int(r.byte())%24
	for i := 0; i < n; i++ {
		p := Point{ID: int32(i)}
		for d := 0; d < nTO; d++ {
			p.TO = append(p.TO, int32(r.byte())%8)
		}
		for d := 0; d < nPO; d++ {
			p.PO = append(p.PO, int32(r.byte())%int32(ds.Domains[d].Size()))
		}
		ds.Pts = append(ds.Pts, p)
	}
	return ds
}

func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzSkylineAgreement is the differential fuzz harness: every
// registered algorithm — sequential and behind the partition-and-merge
// executor at P ∈ {1, 4}, across the dominance-kernel configurations
// (bitset closure, closure refused by a too-small budget, closure
// disabled, kernel off entirely) — must return exactly the naive O(n²)
// oracle's skyline on any byte-derived workload, and TO-only
// algorithms must reject PO datasets with an error rather than a wrong
// answer. Runs its seed corpus (testdata/fuzz/…) under plain `go
// test`; explore further with
//
//	go test -run='^$' -fuzz=FuzzSkylineAgreement ./internal/core
func FuzzSkylineAgreement(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 4, 6, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 1, 3, 3, 0, 1, 0, 2, 1, 2, 12, 5, 0, 5, 1, 5, 2, 5, 0, 1, 1, 2, 2, 0})
	f.Add([]byte{1, 0, 9, 3, 3, 3, 3, 3, 3, 3, 3, 3}) // TO-only, duplicate-heavy
	f.Fuzz(func(t *testing.T, data []byte) {
		ds := datasetFromBytes(data)
		if err := ds.Validate(); err != nil {
			t.Fatalf("generated invalid dataset: %v", err)
		}
		want := sortedIDs(ds.NaiveSkyline())

		for _, a := range Algorithms() {
			runs := []struct {
				name string
				run  func() (*Result, error)
			}{
				// tinybudget goes first: on the first algorithm the domains
				// are fresh, so a 1-byte closure budget genuinely refuses
				// (EnableClosure is sticky once a later leg builds it) and
				// the kernel's interval fallback is exercised right at the
				// memory-budget boundary.
				{"tinybudget", func() (*Result, error) {
					return a.Run(ds, Options{UseMemTree: true, ClosureBudget: 1})
				}},
				{"seq", func() (*Result, error) {
					return a.Run(ds, Options{UseMemTree: true})
				}},
				{"noclosure", func() (*Result, error) {
					return a.Run(ds, Options{UseMemTree: true, ClosureBudget: -1})
				}},
				{"nokernel", func() (*Result, error) {
					return a.Run(ds, Options{UseMemTree: true, NoKernel: true})
				}},
				{"P=1", func() (*Result, error) {
					return Parallel(a).Run(ds, Options{UseMemTree: true, Parallelism: 1})
				}},
				{"P=4", func() (*Result, error) {
					return Parallel(a).Run(ds, Options{UseMemTree: true, Parallelism: 4})
				}},
				{"P=4/nokernel", func() (*Result, error) {
					return Parallel(a).Run(ds, Options{UseMemTree: true, Parallelism: 4, NoKernel: true})
				}},
			}
			for _, rn := range runs {
				res, err := rn.run()
				if !a.Capabilities().POCapable && ds.NumPO() > 0 {
					if err == nil {
						t.Fatalf("%s/%s: TO-only algorithm accepted a PO dataset", a.Name(), rn.name)
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s/%s: %v", a.Name(), rn.name, err)
				}
				got := sortedIDs(res.SkylineIDs)
				if !idsEqual(got, want) {
					t.Fatalf("%s/%s: skyline %v, oracle %v (n=%d, TO=%d, PO=%d)",
						a.Name(), rn.name, got, want, len(ds.Pts), ds.NumTO(), ds.NumPO())
				}
			}
		}
	})
}
