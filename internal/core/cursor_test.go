package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCursorMatchesSTSS: full enumeration through the cursor yields the
// same ids in the same order as the batch run.
func TestCursorMatchesSTSS(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%80) + 1
		ds := randomDataset(rng, n, 2, 1)
		batch := STSS(ds, Options{})
		cur := NewSTSSCursor(ds, Options{})
		var got []int32
		for {
			id, ok := cur.Next()
			if !ok {
				break
			}
			got = append(got, id)
		}
		if !cur.Exhausted() {
			return false
		}
		if len(got) != len(batch.SkylineIDs) {
			return false
		}
		for i := range got {
			if got[i] != batch.SkylineIDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestCursorTopKCostsLess: stopping after the first result reads
// strictly fewer pages than enumerating the whole skyline — the
// pay-as-you-go guarantee of optimal progressiveness.
func TestCursorTopKCostsLess(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ds := randomDataset(rng, 3000, 2, 1)
	full := STSS(ds, Options{})
	if len(full.SkylineIDs) < 5 {
		t.Skip("degenerate skyline")
	}
	cur := NewSTSSCursor(ds, Options{})
	id, ok := cur.Next()
	if !ok || id != full.SkylineIDs[0] {
		t.Fatalf("first cursor result %d, want %d", id, full.SkylineIDs[0])
	}
	topK := cur.Metrics()
	if topK.ReadIOs >= full.Metrics.ReadIOs {
		t.Errorf("top-1 read %d pages, full run %d — cursor should stop early",
			topK.ReadIOs, full.Metrics.ReadIOs)
	}
	if topK.DomChecks >= full.Metrics.DomChecks {
		t.Errorf("top-1 did %d checks, full run %d", topK.DomChecks, full.Metrics.DomChecks)
	}
}

func TestCursorEmpty(t *testing.T) {
	cur := NewSTSSCursor(&Dataset{}, Options{})
	if _, ok := cur.Next(); ok {
		t.Error("empty cursor must be exhausted")
	}
	if !cur.Exhausted() {
		t.Error("Exhausted() must be true")
	}
}

// TestCursorResumable: interleaving Next calls with metric snapshots
// never disturbs the sequence.
func TestCursorResumable(t *testing.T) {
	ds := figure3Dataset()
	cur := NewSTSSCursor(ds, Options{Capacity: 3})
	want := []int32{1, 2, 3, 4, 5}
	for _, w := range want {
		id, ok := cur.Next()
		if !ok || id != w {
			t.Fatalf("cursor yielded %d (ok=%v), want %d", id, ok, w)
		}
		if got := cur.Metrics(); len(got.Emissions) == 0 {
			t.Fatal("emissions must accumulate")
		}
	}
	if _, ok := cur.Next(); ok {
		t.Error("cursor must be exhausted after the skyline")
	}
}
