package core

import (
	"repro/internal/poset"
	"repro/internal/rtree"
)

// tChecker answers exact t-dominance questions against the skyline
// points accepted so far. Implementations must be exact: no false hits
// for points (dominatedPoint true ⟺ some accepted point strictly
// dominates the candidate), and sound for boxes (dominatedBox true ⟹
// every point inside is dominated; false may be conservative).
//
// Two implementations exist: a candidate-list scan (the configuration
// the paper benchmarks "for fairness") and the in-memory R-tree over
// virtual points with Boolean range queries (paper §IV-B).
type tChecker interface {
	// dominatedPoint reports whether the point (to, vals) is strictly
	// t-dominated by an accepted point.
	dominatedPoint(to []int32, vals []int32) bool
	// dominatedBox reports whether every point of the box with TO lower
	// corner toLo and per-PO-dimension topological-ordinal ranges
	// [ordLo[d], ordHi[d]] is t-dominated.
	dominatedBox(toLo []int32, ordLo, ordHi []int32) bool
	// add accepts a skyline point.
	add(p *Point)
	// checks returns the number of elementary dominance-check
	// operations performed (list comparisons or R-tree leaf predicate
	// evaluations).
	checks() int64
}

// The exactness argument shared by both implementations
// (see DESIGN.md §3.1–3.2):
//
// A witness skyline point s answers the query for one interval run q of
// a candidate value y's merged set when (a) s.TO ⪯ candidate TO, (b)
// some interval of s covers q, and (c) strictness holds: s is strictly
// better in a TO dimension, or post(s_d) lies outside q_d in some PO
// dimension d. Covering the run that contains post(y) implies s_d
// reaches-or-equals y; post(s_d) ∈ q_d together with coverage forces
// s_d == y_d (mutual reachability in a DAG), so the strictness test is
// exact for points. Requiring all runs (in all combinations across PO
// dimensions) to find witnesses is exact for points and sound for
// boxes, where different values of the range may be dominated by
// different witnesses (joint coverage).

// scratchSlice returns a length-n slice backed by buf when it is big
// enough — the checkers' per-call scratch, allocation-free in the
// steady state.
func scratchSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// forEachCombo iterates the cartesian product of per-dimension interval
// lists into the caller's combo scratch (len(lists) entries are used).
// fn returning false aborts and makes forEachCombo return false. An
// empty lists slice yields exactly one empty combo (the pure-TO case).
// Plain recursion — not a self-referential closure — so the walk itself
// never heap-allocates.
func forEachCombo(lists []poset.IntervalSet, combo []poset.Interval, fn func(combo []poset.Interval) bool) bool {
	return comboRec(lists, combo[:len(lists)], 0, fn)
}

func comboRec(lists []poset.IntervalSet, combo []poset.Interval, d int, fn func(combo []poset.Interval) bool) bool {
	if d == len(lists) {
		return fn(combo)
	}
	for _, iv := range lists[d] {
		combo[d] = iv
		if !comboRec(lists, combo, d+1, fn) {
			return false
		}
	}
	return true
}

// skyEntry caches the per-dimension data needed to use an accepted
// skyline point as a dominance witness.
type skyEntry struct {
	to    []int32
	vals  []int32
	posts []int32             // post(vals[d])
	sets  []poset.IntervalSet // Intervals(vals[d])
}

func makeSkyEntry(domains []*poset.Domain, p *Point) skyEntry {
	e := skyEntry{to: p.TO, vals: p.PO}
	e.posts = make([]int32, len(p.PO))
	e.sets = make([]poset.IntervalSet, len(p.PO))
	for d, v := range p.PO {
		e.posts[d] = domains[d].Post(v)
		e.sets[d] = domains[d].Intervals(v)
	}
	return e
}

// listChecker keeps the skyline as a flat candidate list — the
// scan-based paradigm of §III-A and the configuration the paper's
// headline experiments use for TSS.
type listChecker struct {
	domains  []*poset.Domain
	sky      []skyEntry
	nChecks  int64
	stabOnly bool

	lists []poset.IntervalSet // dominatedBox scratch
	combo []poset.Interval
}

func newListChecker(domains []*poset.Domain, stabOnly bool) *listChecker {
	return &listChecker{domains: domains, stabOnly: stabOnly}
}

func (c *listChecker) checks() int64 { return c.nChecks }

func (c *listChecker) add(p *Point) {
	c.sky = append(c.sky, makeSkyEntry(c.domains, p))
}

func (c *listChecker) dominatedPoint(to []int32, vals []int32) bool {
	for i := range c.sky {
		c.nChecks++
		if c.entryDominatesPoint(&c.sky[i], to, vals) {
			return true
		}
	}
	return false
}

// entryDominatesPoint is exact strict t-dominance of one accepted point
// over a candidate point. The stabOnly flag switches the per-dimension
// preference test between the stabbing form and the paper-literal
// ∀-interval containment form; both are exact (ablation).
func (c *listChecker) entryDominatesPoint(s *skyEntry, to []int32, vals []int32) bool {
	strict := false
	for d, sv := range s.to {
		cv := to[d]
		if sv > cv {
			return false
		}
		if sv < cv {
			strict = true
		}
	}
	for d, sv := range s.vals {
		cv := vals[d]
		if sv == cv {
			continue
		}
		dm := c.domains[d]
		var pref bool
		if c.stabOnly {
			pref = dm.TPrefers(sv, cv)
		} else {
			pref = dm.TPrefersContainment(sv, cv)
		}
		if !pref {
			return false
		}
		strict = true
	}
	return strict
}

func (c *listChecker) dominatedBox(toLo []int32, ordLo, ordHi []int32) bool {
	c.lists = scratchSlice(c.lists, len(ordLo))
	c.combo = scratchSlice(c.combo, len(ordLo))
	for d := range ordLo {
		c.lists[d] = c.domains[d].OrdRangeIntervals(ordLo[d], ordHi[d])
	}
	// Every combination of runs must find a witness (joint coverage).
	return forEachCombo(c.lists, c.combo, func(combo []poset.Interval) bool {
		for i := range c.sky {
			c.nChecks++
			if c.entryCoversCombo(&c.sky[i], toLo, combo) {
				return true
			}
		}
		return false
	})
}

// entryCoversCombo reports whether s witnesses one run combination: TO
// at least as good as the box corner, every run covered, and the
// strictness condition (strict TO or post outside the covered run).
func (c *listChecker) entryCoversCombo(s *skyEntry, toLo []int32, combo []poset.Interval) bool {
	strict := false
	for d, sv := range s.to {
		cv := toLo[d]
		if sv > cv {
			return false
		}
		if sv < cv {
			strict = true
		}
	}
	for d, q := range combo {
		if !s.sets[d].Covers(q) {
			return false
		}
		if !q.Stabs(s.posts[d]) {
			strict = true
		}
	}
	return strict
}

// memChecker stores each accepted skyline point as one or more virtual
// points in an in-memory R-tree over (TO…, I1, I2 per PO dimension) and
// answers dominance questions with Boolean range queries (paper §IV-B
// second optimisation, and the global tree of dTSS in §V-A). The
// strictness predicate is evaluated per leaf entry, keeping the check
// exact even for duplicates.
type memChecker struct {
	domains  []*poset.Domain
	nTO      int
	sizes    []int32 // domain sizes, for the I2 reflection N - hi
	tree     *rtree.Tree
	owners   [][]int32 // virtual point id -> owner's posts per PO dim
	nChecks  int64
	stabOnly bool
	hi       []int32 // query scratch
	lo       []int32 // all-zeros scratch

	lists    []poset.IntervalSet // dominated{Point,Box} scratch
	combo    []poset.Interval
	stabRuns []poset.Interval // backing runs of the stabOnly one-interval lists
}

// memTreeCapacity is the fan-out of the in-memory dominance tree; small
// nodes keep the Boolean queries CPU-friendly.
const memTreeCapacity = 16

func newMemChecker(domains []*poset.Domain, nTO int, stabOnly bool) *memChecker {
	dims := nTO + 2*len(domains)
	c := &memChecker{
		domains:  domains,
		nTO:      nTO,
		sizes:    make([]int32, len(domains)),
		tree:     rtree.New(dims, memTreeCapacity, nil),
		stabOnly: stabOnly,
		hi:       make([]int32, dims),
		lo:       make([]int32, dims),
	}
	for d, dm := range domains {
		c.sizes[d] = int32(dm.Size())
	}
	return c
}

func (c *memChecker) checks() int64 { return c.nChecks }

// add inserts one virtual point per combination of the owner's interval
// sets across PO dimensions: coordinates (TO…, q.Lo, N−q.Hi, …), all
// minimised, so that covering = coordinate-wise ≤.
func (c *memChecker) add(p *Point) {
	lists := make([]poset.IntervalSet, len(p.PO))
	posts := make([]int32, len(p.PO))
	for d, v := range p.PO {
		lists[d] = c.domains[d].Intervals(v)
		posts[d] = c.domains[d].Post(v)
	}
	forEachCombo(lists, make([]poset.Interval, len(lists)), func(combo []poset.Interval) bool {
		coords := make([]int32, c.nTO+2*len(combo))
		copy(coords, p.TO)
		for d, q := range combo {
			coords[c.nTO+2*d] = q.Lo
			coords[c.nTO+2*d+1] = c.sizes[d] - q.Hi
		}
		id := int32(len(c.owners))
		c.owners = append(c.owners, posts)
		c.tree.Insert(rtree.Point{Coords: coords, ID: id})
		return true
	})
}

// queryCombo runs one Boolean range query: does an accepted virtual
// point cover this run combination with the strictness predicate?
func (c *memChecker) queryCombo(toLo []int32, combo []poset.Interval) bool {
	copy(c.hi, toLo)
	for d, q := range combo {
		c.hi[c.nTO+2*d] = q.Lo
		c.hi[c.nTO+2*d+1] = c.sizes[d] - q.Hi
	}
	return c.tree.RangeExists(c.lo, c.hi, func(e rtree.Entry) bool {
		c.nChecks++
		// Inside the box ⟹ TO ⪯ and all runs covered; test strictness.
		for d := 0; d < c.nTO; d++ {
			if e.Lo[d] < toLo[d] {
				return true
			}
		}
		posts := c.owners[e.ID]
		for d, q := range combo {
			if !q.Stabs(posts[d]) {
				return true
			}
		}
		return false
	})
}

func (c *memChecker) dominatedPoint(to []int32, vals []int32) bool {
	c.lists = scratchSlice(c.lists, len(vals))
	c.combo = scratchSlice(c.combo, len(vals))
	c.stabRuns = scratchSlice(c.stabRuns, len(vals))
	for d, v := range vals {
		if c.stabOnly {
			c.stabRuns[d] = c.domains[d].PostRun(v)
			c.lists[d] = c.stabRuns[d : d+1 : d+1]
		} else {
			c.lists[d] = c.domains[d].Intervals(v)
		}
	}
	return forEachCombo(c.lists, c.combo, func(combo []poset.Interval) bool {
		return c.queryCombo(to, combo)
	})
}

func (c *memChecker) dominatedBox(toLo []int32, ordLo, ordHi []int32) bool {
	c.lists = scratchSlice(c.lists, len(ordLo))
	c.combo = scratchSlice(c.combo, len(ordLo))
	for d := range ordLo {
		c.lists[d] = c.domains[d].OrdRangeIntervals(ordLo[d], ordHi[d])
	}
	return forEachCombo(c.lists, c.combo, func(combo []poset.Interval) bool {
		return c.queryCombo(toLo, combo)
	})
}

// newChecker builds the checker selected by the options.
func newChecker(domains []*poset.Domain, nTO int, opt Options) tChecker {
	if opt.UseMemTree {
		return newMemChecker(domains, nTO, opt.StabOnly)
	}
	return newListChecker(domains, opt.StabOnly)
}
