package core

import (
	"math/rand"
	"testing"

	"repro/internal/poset"
)

// Steady-state allocation regression tests for the elimination hot
// paths. The kernel probe loop and the checkers' point tests must not
// allocate at all once warm; the box tests are allowed the small,
// by-design allocations of OrdRangeIntervals (MergeIntervals returns
// fresh storage, and the dyadic decomposition needs scratch when it has
// ≥ 2 pieces) but are pinned to a tight bound so regressions surface.

// allocDataset is a deterministic mixed TO/PO dataset for the alloc
// tests: small value ranges so ties, duplicates and real PO structure
// all occur.
func allocDataset(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := randomDataset(rng, n, 2, 2)
	for _, dm := range ds.Domains {
		dm.EnableDyadic()
	}
	return ds
}

// TestKernelProbeLoopAllocs: the colSet probe loop — compile candidate,
// dominator scan, eviction scan — is allocation-free in the steady
// state, on both the bitset-closure path and the interval fallback.
func TestKernelProbeLoopAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"closure", 0},
		{"interval-fallback", -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := allocDataset(7, 600)
			k := newColSet(ds.Domains, 2, len(ds.Pts), tc.budget, false)
			for i := range ds.Pts {
				p := &ds.Pts[i]
				k.append(p.TO, p.PO, p.ID, -1)
			}
			pr := k.newProbe()
			probeAll := func() {
				for i := range ds.Pts {
					p := &ds.Pts[i]
					k.begin(pr, p.TO, p.PO, true)
					_ = k.anyDominator(pr)
					k.evictDominatedBy(pr)
				}
			}
			probeAll() // warm-up: nothing left to grow after this
			if allocs := testing.AllocsPerRun(20, probeAll); allocs != 0 {
				t.Errorf("probe loop allocates %.1f objects per pass, want 0", allocs)
			}
		})
	}
}

// TestCheckerDominatedPointAllocs: both checkers answer point dominance
// without allocating once their scratch is warm, in both the stabbing
// and the paper-literal containment modes.
func TestCheckerDominatedPointAllocs(t *testing.T) {
	ds := allocDataset(11, 200)
	sky := ds.NaiveSkyline()
	for _, tc := range []struct {
		name string
		mk   func() tChecker
	}{
		{"list", func() tChecker { return newListChecker(ds.Domains, false) }},
		{"list-stab", func() tChecker { return newListChecker(ds.Domains, true) }},
		{"mem", func() tChecker { return newMemChecker(ds.Domains, 2, false) }},
		{"mem-stab", func() tChecker { return newMemChecker(ds.Domains, 2, true) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.mk()
			for _, id := range sky {
				c.add(&ds.Pts[id])
			}
			queryAll := func() {
				for i := range ds.Pts {
					p := &ds.Pts[i]
					_ = c.dominatedPoint(p.TO, p.PO)
				}
			}
			queryAll()
			if allocs := testing.AllocsPerRun(20, queryAll); allocs != 0 {
				t.Errorf("dominatedPoint allocates %.1f objects per pass, want 0", allocs)
			}
		})
	}
}

// TestCheckerDominatedBoxAllocBound: box dominance allocates only what
// OrdRangeIntervals must (fresh merged output, dyadic scratch when the
// ordinal range decomposes into ≥ 2 pieces). Per query that is a handful
// of objects per PO dimension — pin a small per-call bound.
func TestCheckerDominatedBoxAllocBound(t *testing.T) {
	ds := allocDataset(13, 200)
	sky := ds.NaiveSkyline()
	queries := 0
	for _, tc := range []struct {
		name string
		mk   func() tChecker
	}{
		{"list", func() tChecker { return newListChecker(ds.Domains, false) }},
		{"mem", func() tChecker { return newMemChecker(ds.Domains, 2, false) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.mk()
			for _, id := range sky {
				c.add(&ds.Pts[id])
			}
			lo := make([]int32, 2)
			hi := make([]int32, 2)
			boxAll := func() {
				queries = 0
				for i := range ds.Pts {
					p := &ds.Pts[i]
					for d, v := range p.PO {
						o := ds.Domains[d].Ord(v)
						lo[d] = o
						hi[d] = min(o+2, int32(ds.Domains[d].Size()-1))
					}
					_ = c.dominatedBox(p.TO, lo, hi)
					queries++
				}
			}
			boxAll()
			allocs := testing.AllocsPerRun(10, boxAll)
			perQuery := allocs / float64(queries)
			// 2 PO dims × (merged output + up to two levels of dyadic
			// scratch) ≈ 6; anything beyond 8 means new per-call garbage.
			if perQuery > 8 {
				t.Errorf("dominatedBox allocates %.2f objects per query, want ≤ 8", perQuery)
			}
		})
	}
}

// TestOrdRangeIntervalsAllocBound: the pooled scratch keeps
// OrdRangeIntervals down to its output (plus bounded dyadic scratch) —
// the regression this pins is unbounded per-call scratch growth.
func TestOrdRangeIntervalsAllocBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dm := poset.MustDomain(randomPODomainDAG(rng, 40, 0.2))
	dm.EnableDyadic()
	n := int32(dm.Size())
	calls := 0
	sweep := func() {
		calls = 0
		for lo := int32(0); lo < n; lo += 3 {
			for hi := lo; hi < n; hi += 5 {
				_ = dm.OrdRangeIntervals(lo, hi)
				calls++
			}
		}
	}
	sweep()
	allocs := testing.AllocsPerRun(10, sweep)
	perCall := allocs / float64(calls)
	// Measured ~4.5 on this domain (merged output + dyadic piece
	// scratch); the regression this guards is unbounded growth.
	if perCall > 6 {
		t.Errorf("OrdRangeIntervals allocates %.2f objects per call, want ≤ 6", perCall)
	}
}
