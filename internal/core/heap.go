package core

import "repro/internal/rtree"

// heapItem is one best-first search entry: an R-tree node MBB or a data
// point, prioritised by L1 mindist to the most preferable corner of the
// index space. Ties pop points before nodes and then lower sequence
// numbers, making every run deterministic.
type heapItem struct {
	mind    int64
	isPoint bool
	seq     int64
	e       rtree.Entry
}

// bbsHeap is a hand-rolled binary min-heap (container/heap's interface
// boxes every element; this sits on the hot path of every algorithm).
type bbsHeap struct {
	a   []heapItem
	seq int64
}

func (h *bbsHeap) len() int { return len(h.a) }

func (h *bbsHeap) less(i, j int) bool {
	x, y := &h.a[i], &h.a[j]
	if x.mind != y.mind {
		return x.mind < y.mind
	}
	if x.isPoint != y.isPoint {
		return x.isPoint
	}
	return x.seq < y.seq
}

// push inserts an entry, assigning it the next sequence number.
func (h *bbsHeap) push(e rtree.Entry) {
	h.pushMind(e, rtree.MinDistL1(e))
}

// pushMind inserts an entry with an explicit priority — used by the
// fully dynamic search, whose distances are relative to a query point.
func (h *bbsHeap) pushMind(e rtree.Entry, mind int64) {
	h.seq++
	h.a = append(h.a, heapItem{
		mind:    mind,
		isPoint: e.IsLeafEntry(),
		seq:     h.seq,
		e:       e,
	})
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *bbsHeap) pop() heapItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = heapItem{} // release Entry references
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.less(l, m) {
			m = l
		}
		if r < last && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
