package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Capabilities declares what a registered algorithm can handle, so
// executors and front-ends can dispatch without per-algorithm switches.
type Capabilities struct {
	// POCapable algorithms handle partially ordered attributes; the
	// others (the classic sort-based TO baselines) reject any dataset
	// with PO attributes through Run's error.
	POCapable bool
	// Progressive algorithms emit skyline points while the run is still
	// in flight (their Emissions carry meaningful timestamps); blocking
	// ones output everything at the end.
	Progressive bool
	// UsesDyadic marks algorithms whose dominance checks lazily build
	// the PO domains' dyadic interval index (Options.UseDyadic).
	// Parallel executors pre-build the index for such algorithms before
	// starting workers, keeping the domains read-only inside the pool —
	// an algorithm that builds it lazily without setting this flag is
	// not safe to shard.
	UsesDyadic bool
	// PaperRef cites where the algorithm is described relative to the
	// reproduced paper (its own sections or the surveyed related work).
	PaperRef string
}

// Algorithm is the uniform plug-in interface every skyline algorithm is
// registered behind. Run computes the skyline of ds under opt; TO-only
// algorithms return an error when ds has PO attributes.
type Algorithm interface {
	Name() string
	Capabilities() Capabilities
	Run(ds *Dataset, opt Options) (*Result, error)
}

// funcAlgorithm adapts a plain function to the Algorithm interface.
type funcAlgorithm struct {
	name string
	caps Capabilities
	run  func(ds *Dataset, opt Options) (*Result, error)
}

func (a *funcAlgorithm) Name() string               { return a.name }
func (a *funcAlgorithm) Capabilities() Capabilities { return a.caps }
func (a *funcAlgorithm) Run(ds *Dataset, opt Options) (*Result, error) {
	return a.run(ds, opt)
}

// NewAlgorithm wraps a function as a registrable Algorithm.
func NewAlgorithm(name string, caps Capabilities, run func(ds *Dataset, opt Options) (*Result, error)) Algorithm {
	return &funcAlgorithm{name: name, caps: caps, run: run}
}

var registry = struct {
	mu     sync.RWMutex
	byName map[string]Algorithm
}{byName: make(map[string]Algorithm)}

// Register adds an algorithm under its (case-insensitive) name.
// Panics on an empty or duplicate name — registration is a programming
// error, not a runtime condition.
func Register(a Algorithm) {
	key := canonicalName(a.Name())
	if key == "" {
		panic("core: Register with empty algorithm name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[key]; dup {
		panic(fmt.Sprintf("core: algorithm %q registered twice", a.Name()))
	}
	registry.byName[key] = a
}

// Lookup finds a registered algorithm by case-insensitive name.
func Lookup(name string) (Algorithm, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	a, ok := registry.byName[canonicalName(name)]
	return a, ok
}

// MustLookup is Lookup that panics on an unknown name.
func MustLookup(name string) Algorithm {
	a, ok := Lookup(name)
	if !ok {
		panic(fmt.Sprintf("core: unknown algorithm %q", name))
	}
	return a
}

// Algorithms returns all registered algorithms sorted by name.
func Algorithms() []Algorithm {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Algorithm, 0, len(registry.byName))
	for _, a := range registry.byName {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// AlgorithmNames returns the registered names, sorted.
func AlgorithmNames() []string {
	algos := Algorithms()
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name()
	}
	return names
}

// canonicalName lower-cases names so lookups accept "sTSS", "STSS", …
func canonicalName(name string) string {
	return strings.ToLower(name)
}

// The built-in zoo: the paper's contribution plus every baseline it is
// evaluated against, all behind the one interface.
func init() {
	Register(NewAlgorithm("stss",
		Capabilities{POCapable: true, Progressive: true, UsesDyadic: true, PaperRef: "§IV (this paper)"},
		func(ds *Dataset, opt Options) (*Result, error) { return STSS(ds, opt), nil }))
	Register(NewAlgorithm("bbs+",
		Capabilities{POCapable: true, PaperRef: "§II-C (Chan et al.)"},
		func(ds *Dataset, opt Options) (*Result, error) { return BBSPlus(ds, opt), nil }))
	Register(NewAlgorithm("sdc",
		Capabilities{POCapable: true, Progressive: true, PaperRef: "§II-C (Chan et al.)"},
		func(ds *Dataset, opt Options) (*Result, error) { return SDC(ds, opt), nil }))
	Register(NewAlgorithm("sdc+",
		Capabilities{POCapable: true, Progressive: true, PaperRef: "§II-C (Chan et al.)"},
		func(ds *Dataset, opt Options) (*Result, error) { return SDCPlus(ds, opt), nil }))
	Register(NewAlgorithm("bnl",
		Capabilities{POCapable: true, PaperRef: "§II-A (Börzsönyi et al.)"},
		func(ds *Dataset, opt Options) (*Result, error) { return BNL(ds, opt), nil }))
	Register(NewAlgorithm("sfs",
		Capabilities{POCapable: true, Progressive: true, PaperRef: "§II-A (Chomicki et al.)"},
		func(ds *Dataset, opt Options) (*Result, error) { return SFS(ds, opt), nil }))
	Register(NewAlgorithm("salsa",
		Capabilities{Progressive: true, PaperRef: "§II-A (Bartolini et al.)"},
		SaLSa))
	Register(NewAlgorithm("less",
		Capabilities{Progressive: true, PaperRef: "§II-A (Godfrey et al.)"},
		LESS))
}
