package core

import (
	"time"

	"repro/internal/rtree"
)

// Cursor is a pull-based sTSS skyline iterator: Next returns skyline
// points one at a time, doing only the work needed to certify the next
// result. Because sTSS is optimally progressive — precedence guarantees
// a surviving point is final the moment it is examined — a consumer that
// stops after k results pays only the traversal cost up to the k-th
// emission. This is the API face of the paper's progressiveness claim
// (Figure 11): top-k-style consumption never touches the rest of the
// index.
type Cursor struct {
	ds      *Dataset
	tree    *rtree.Tree
	io      *rtree.IOCounter
	checker tChecker
	heap    bbsHeap
	metrics Metrics
	start   time.Time
	done    bool
}

// NewSTSSCursor builds the sTSS index for ds and returns a cursor over
// its skyline. Construction performs the bulk load (charged to the
// build counters); no query work happens until the first Next.
func NewSTSSCursor(ds *Dataset, opt Options) *Cursor {
	opt = opt.withDefaults()
	c := &Cursor{ds: ds, io: &rtree.IOCounter{}, start: time.Now()}
	if len(ds.Pts) == 0 {
		c.done = true
		return c
	}
	buildStart := time.Now()
	c.tree = buildSTSSTree(ds, opt, c.io)
	if opt.UseDyadic {
		for _, dm := range ds.Domains {
			dm.EnableDyadic()
		}
	}
	if opt.BufferPages > 0 {
		c.tree.SetBuffer(rtree.NewBuffer(opt.BufferPages))
	}
	c.metrics.BuildWriteIOs = c.io.Writes
	c.metrics.BuildCPU = time.Since(buildStart)
	c.io.Writes, c.io.Reads = 0, 0
	c.checker = newChecker(ds.Domains, ds.NumTO(), opt)
	for _, e := range c.tree.Root().Entries {
		c.heap.push(e)
	}
	c.start = time.Now()
	return c
}

// Next returns the next skyline point id; ok is false when the skyline
// is exhausted. Each returned point is definite — it will never be
// revoked — and the ids arrive in non-decreasing mindist order.
func (c *Cursor) Next() (id int32, ok bool) {
	if c.done {
		return 0, false
	}
	nTO := c.ds.NumTO()
	for c.heap.len() > 0 {
		it := c.heap.pop()
		if it.isPoint {
			p := &c.ds.Pts[it.e.ID]
			if c.checker.dominatedPoint(p.TO, p.PO) {
				c.metrics.PointsPruned++
				continue
			}
			c.checker.add(p)
			c.metrics.Emissions = append(c.metrics.Emissions, Emission{
				ID:  p.ID,
				IOs: c.io.Reads + c.io.Writes,
				CPU: time.Since(c.start),
			})
			return p.ID, true
		}
		if c.checker.dominatedBox(it.e.Lo[:nTO], it.e.Lo[nTO:], it.e.Hi[nTO:]) {
			c.metrics.NodesPruned++
			continue
		}
		node := c.tree.Open(it.e)
		c.metrics.NodesOpened++
		for _, e := range node.Entries {
			if e.IsLeafEntry() {
				c.heap.push(e)
				continue
			}
			if c.checker.dominatedBox(e.Lo[:nTO], e.Lo[nTO:], e.Hi[nTO:]) {
				c.metrics.NodesPruned++
				continue
			}
			c.heap.push(e)
		}
	}
	c.done = true
	return 0, false
}

// Metrics snapshots the work done so far (IOs, checks, prunes and the
// emissions already returned by Next).
func (c *Cursor) Metrics() Metrics {
	m := c.metrics
	if c.checker != nil {
		m.DomChecks = c.checker.checks()
	}
	m.ReadIOs = c.io.Reads
	m.WriteIOs = c.io.Writes
	m.CPU = time.Since(c.start)
	return m
}

// Exhausted reports whether the skyline has been fully enumerated.
func (c *Cursor) Exhausted() bool { return c.done }
