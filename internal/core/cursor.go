package core

import (
	"context"
	"time"

	"repro/internal/rtree"
)

// Cursor is a pull-based sTSS skyline iterator: Next returns skyline
// points one at a time, doing only the work needed to certify the next
// result. Because sTSS is optimally progressive — precedence guarantees
// a surviving point is final the moment it is examined — a consumer that
// stops after k results pays only the traversal cost up to the k-th
// emission. This is the API face of the paper's progressiveness claim
// (Figure 11): top-k-style consumption never touches the rest of the
// index.
type Cursor struct {
	ds      *Dataset
	tree    *rtree.Tree
	io      *rtree.IOCounter
	checker tChecker
	heap    bbsHeap
	metrics Metrics
	start   time.Time
	lastKey int64
	done    bool
}

// NewSTSSCursor builds the sTSS index for ds and returns a cursor over
// its skyline. Construction performs the bulk load (charged to the
// build counters); no query work happens until the first Next.
func NewSTSSCursor(ds *Dataset, opt Options) *Cursor {
	opt = opt.withDefaults()
	c := &Cursor{ds: ds, io: &rtree.IOCounter{}, start: time.Now()}
	if len(ds.Pts) == 0 {
		c.done = true
		return c
	}
	buildStart := time.Now()
	c.tree = buildSTSSTree(ds, opt, c.io)
	if opt.UseDyadic {
		for _, dm := range ds.Domains {
			dm.EnableDyadic()
		}
	}
	if opt.BufferPages > 0 {
		c.tree.SetBuffer(rtree.NewBuffer(opt.BufferPages))
	}
	c.metrics.BuildWriteIOs = c.io.Writes
	c.metrics.BuildCPU = time.Since(buildStart)
	c.io.Writes, c.io.Reads = 0, 0
	c.checker = newChecker(ds.Domains, ds.NumTO(), opt)
	for _, e := range c.tree.Root().Entries {
		c.heap.push(e)
	}
	c.start = time.Now()
	return c
}

// Next returns the next skyline point id; ok is false when the skyline
// is exhausted. Each returned point is definite — it will never be
// revoked — and the ids arrive in non-decreasing mindist order.
func (c *Cursor) Next() (id int32, ok bool) {
	id, ok, _ = c.NextContext(nil)
	return id, ok
}

// NextContext is Next with cooperative cancellation: the traversal loop
// between two emissions checks ctx every dynCtxCheckEvery heap steps, so
// a request timeout (or a disconnecting streaming client) releases the
// cursor mid-certification. A nil ctx never cancels.
func (c *Cursor) NextContext(ctx context.Context) (id int32, ok bool, err error) {
	if c.done {
		return 0, false, nil
	}
	nTO := c.ds.NumTO()
	for steps := 0; c.heap.len() > 0; steps++ {
		if steps%dynCtxCheckEvery == dynCtxCheckEvery-1 {
			if err := dynCtxErr(ctx); err != nil {
				return 0, false, err
			}
		}
		it := c.heap.pop()
		if it.isPoint {
			p := &c.ds.Pts[it.e.ID]
			if c.checker.dominatedPoint(p.TO, p.PO) {
				c.metrics.PointsPruned++
				continue
			}
			c.checker.add(p)
			c.lastKey = it.mind
			c.metrics.Emissions = append(c.metrics.Emissions, Emission{
				ID:  p.ID,
				IOs: c.io.Reads + c.io.Writes,
				CPU: time.Since(c.start),
			})
			return p.ID, true, nil
		}
		if c.checker.dominatedBox(it.e.Lo[:nTO], it.e.Lo[nTO:], it.e.Hi[nTO:]) {
			c.metrics.NodesPruned++
			continue
		}
		node := c.tree.Open(it.e)
		c.metrics.NodesOpened++
		for _, e := range node.Entries {
			if e.IsLeafEntry() {
				c.heap.push(e)
				continue
			}
			if c.checker.dominatedBox(e.Lo[:nTO], e.Lo[nTO:], e.Hi[nTO:]) {
				c.metrics.NodesPruned++
				continue
			}
			c.heap.push(e)
		}
	}
	c.done = true
	return 0, false, nil
}

// Emitted returns the number of skyline points certified so far — the
// emission index of the next Next result.
func (c *Cursor) Emitted() int { return len(c.metrics.Emissions) }

// LastEmission returns the per-emission record of the most recent Next
// result: the emission's IO count and elapsed-to-certify. ok is false
// before the first emission.
func (c *Cursor) LastEmission() (e Emission, ok bool) {
	if len(c.metrics.Emissions) == 0 {
		return Emission{}, false
	}
	return c.metrics.Emissions[len(c.metrics.Emissions)-1], true
}

// LastKey returns the L1 mindist key (sum of TO coordinates plus
// topological ordinals) of the most recent Next result, 0 before the
// first emission. Keys are non-decreasing across emissions, and a
// strict t-dominator always has a strictly smaller key than the point
// it dominates — which is what lets a consumer merging several
// key-ordered streams rule a stream out as a dominator source once its
// last-seen key reaches a candidate's key.
func (c *Cursor) LastKey() int64 { return c.lastKey }

// PeekBound returns the L1 mindist key of the best unexamined heap
// entry — a lower bound on the key (sum of TO coordinates plus
// topological ordinals) of every future emission, since Next pops in
// non-decreasing key order. ok is false when the traversal frontier is
// empty (no further emissions are possible). Consumers use it as a
// sound stopping rule for score-threshold top-k: once the k-th best
// score beats the bound (minus the ordinal/depth slack), no future
// emission can enter the top k.
func (c *Cursor) PeekBound() (bound int64, ok bool) {
	if c.done || c.heap.len() == 0 {
		return 0, false
	}
	return c.heap.a[0].mind, true
}

// Metrics snapshots the work done so far (IOs, checks, prunes and the
// emissions already returned by Next).
func (c *Cursor) Metrics() Metrics {
	m := c.metrics
	if c.checker != nil {
		m.DomChecks = c.checker.checks()
	}
	m.ReadIOs = c.io.Reads
	m.WriteIOs = c.io.Writes
	m.CPU = time.Since(c.start)
	return m
}

// Exhausted reports whether the skyline has been fully enumerated.
func (c *Cursor) Exhausted() bool { return c.done }
