package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/poset"
)

// applyDeltaToDataset mirrors the table layer's ApplyBatch at the core
// level: drop, renumber, append.
func applyDeltaToDataset(ds *Dataset, removes []int, adds []Point) (*Dataset, *Delta) {
	drop := make([]bool, len(ds.Pts))
	for _, r := range removes {
		drop[r] = true
	}
	delta := &Delta{OldToNew: make([]int32, len(ds.Pts)), Added: len(adds)}
	nds := &Dataset{Domains: ds.Domains}
	for i := range ds.Pts {
		if drop[i] {
			delta.OldToNew[i] = -1
			continue
		}
		p := ds.Pts[i]
		p.ID = int32(len(nds.Pts))
		delta.OldToNew[i] = p.ID
		nds.Pts = append(nds.Pts, p)
	}
	for _, p := range adds {
		p.ID = int32(len(nds.Pts))
		nds.Pts = append(nds.Pts, p)
	}
	return nds, delta
}

func randomPointFor(rng *rand.Rand, ds *Dataset, nTO int) Point {
	p := Point{}
	for d := 0; d < nTO; d++ {
		p.TO = append(p.TO, int32(rng.Intn(6)))
	}
	for d := range ds.Domains {
		p.PO = append(p.PO, int32(rng.Intn(ds.Domains[d].Size())))
	}
	return p
}

// TestApplyBatchMatchesRebuild is the incremental-maintenance property:
// a DynamicDB maintained through a chain of random batches answers
// every query class exactly like a freshly rebuilt one (and both match
// the naive oracle), while the pre-batch database keeps answering for
// its own row set — snapshot isolation.
func TestApplyBatchMatchesRebuild(t *testing.T) {
	prop := func(seed int64, nRaw uint16, toRaw, poRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		nTO := int(toRaw%3) + 1
		nPO := int(poRaw%2) + 1
		ds := randomDataset(rng, n, nTO, nPO)
		db := NewDynamicDB(ds, Options{})

		for batch := 0; batch < 4; batch++ {
			oldDS, oldDB := ds, db
			// Random batch: each row removed with p=1/4, plus 0..5 adds.
			var removes []int
			for i := range ds.Pts {
				if rng.Intn(4) == 0 {
					removes = append(removes, i)
				}
			}
			var adds []Point
			for k := rng.Intn(6); k > 0; k-- {
				adds = append(adds, randomPointFor(rng, ds, nTO))
			}
			var delta *Delta
			ds, delta = applyDeltaToDataset(ds, removes, adds)
			nd, err := db.ApplyBatch(ds, delta)
			if err != nil {
				t.Logf("seed=%d batch=%d: ApplyBatch: %v", seed, batch, err)
				return false
			}
			db = nd

			domains := make([]*poset.Domain, nPO)
			for d := 0; d < nPO; d++ {
				domains[d] = poset.MustDomain(randomPODomainDAG(
					rng, ds.Domains[d].Size(), rng.Float64()*0.6))
			}
			want := NaiveSkylineUnder(domains, ds.Pts)
			for _, opt := range []Options{
				{}, {UseMemTree: true}, {PrecomputedLocal: true},
				{UseMemTree: true, PrecomputedLocal: true, StabOnly: true},
				{PackedRoots: true},
			} {
				res, err := db.QueryTSS(domains, opt)
				if err != nil {
					t.Log(err)
					return false
				}
				if !sameIDSet(res.SkylineIDs, want) {
					t.Logf("seed=%d batch=%d opt=%+v: incremental = %v, want %v",
						seed, batch, opt, res.SkylineIDs, want)
					return false
				}
			}
			// Fully dynamic queries resolve rows through the same
			// stable-id indirection.
			if len(ds.Pts) > 0 {
				q := make([]int32, nTO)
				for d := range q {
					q[d] = int32(rng.Intn(6))
				}
				res, err := db.QueryTSSFull(q, domains, Options{UseMemTree: true})
				if err != nil {
					t.Log(err)
					return false
				}
				if !sameIDSet(res.SkylineIDs, FullyDynamicNaive(ds, q, domains)) {
					t.Logf("seed=%d batch=%d: fully dynamic diverged", seed, batch)
					return false
				}
			}
			// The superseded database still answers for its own rows.
			oldWant := NaiveSkylineUnder(domains, oldDS.Pts)
			oldRes, err := oldDB.QueryTSS(domains, Options{UseMemTree: true})
			if err != nil {
				t.Log(err)
				return false
			}
			if !sameIDSet(oldRes.SkylineIDs, oldWant) {
				t.Logf("seed=%d batch=%d: superseded snapshot perturbed", seed, batch)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyBatchCompacts: heavy delete/add churn must not bloat the
// stable-id space without bound — the compaction fallback rebuilds.
func TestApplyBatchCompacts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := randomDataset(rng, 30, 2, 1)
	db := NewDynamicDB(ds, Options{})
	for round := 0; round < 20; round++ {
		// Remove ~half the rows, add the same number back.
		var removes []int
		for i := range ds.Pts {
			if i%2 == 0 {
				removes = append(removes, i)
			}
		}
		adds := make([]Point, len(removes))
		for i := range adds {
			adds[i] = randomPointFor(rng, ds, 2)
		}
		var delta *Delta
		ds, delta = applyDeltaToDataset(ds, removes, adds)
		nd, err := db.ApplyBatch(ds, delta)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		db = nd
		if space, live := db.stableSpace(), len(ds.Pts); space > 2*live+compactionSlack {
			t.Fatalf("round %d: stable space %d for %d live rows — compaction never ran", round, space, live)
		}
	}
}

// TestApplyBatchRejectsBadDelta: structural mismatches error instead of
// corrupting the derived database.
func TestApplyBatchRejectsBadDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randomDataset(rng, 10, 2, 1)
	db := NewDynamicDB(ds, Options{})
	if _, err := db.ApplyBatch(ds, &Delta{OldToNew: make([]int32, 3)}); err == nil {
		t.Fatal("short OldToNew accepted")
	}
	other := &Dataset{Domains: nil}
	if _, err := db.ApplyBatch(other, &Delta{OldToNew: make([]int32, len(ds.Pts))}); err == nil {
		t.Fatal("domain-count mismatch accepted")
	}
}
