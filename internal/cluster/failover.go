package cluster

import (
	"context"
	"io"
	"strconv"
	"strings"
)

// Read failover. Every scatter *read* (table info, stats, queries,
// skylines, domcounts, streamed legs) goes to the shard's primary
// first and falls back to its followers when the primary is
// unreachable — a transport error or client-side timeout, never an
// HTTP-level answer: a primary that responds, even with an error, is
// alive and authoritative. Failover is correctness-neutral by the
// union-of-partitions property (any superset of a shard's rows merges
// to the same skyline); what a follower may lack is freshness, which
// the minVersion pin turns from a silent anomaly into an explicit 412
// the coordinator skips past. Mutations (creates, drops, batches)
// never fail over: followers reject them, the primary's WAL is the
// only write path.

// withMinVersion appends the read-at-version pin to a request path.
// pin 0 means unpinned (any version is acceptable).
func withMinVersion(path string, pin int64) string {
	if pin <= 0 {
		return path
	}
	sep := "?"
	if strings.Contains(path, "?") {
		sep = "&"
	}
	return path + sep + "minVersion=" + strconv.FormatInt(pin, 10)
}

// shouldFailover classifies a primary read error: only transport
// failures with the caller still interested divert to a follower. A
// *shardError carries an HTTP status — the primary answered, so it is
// up and its answer stands. A canceled/expired caller context means
// the "failure" is the coordinator giving up, and retrying a follower
// would just fail over every leg of an abandoned scatter.
func (co *Coordinator) shouldFailover(ctx context.Context, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	var se *shardError
	return !asShardError(err, &se)
}

// readShard runs one buffered read against shard i, failing over to
// its followers in order. pin is the version the read must observe
// (followers below it answer 412 and the next one is tried); 0 accepts
// any version. When every follower also fails, the primary's error —
// the root cause — is returned.
func (co *Coordinator) readShard(ctx context.Context, i int, method, path string, pin int64, body, out any) error {
	primaryErr := co.shards[i].do(ctx, method, path, body, out)
	if !co.shouldFailover(ctx, primaryErr) || len(co.replicas[i]) == 0 {
		return primaryErr
	}
	for _, rc := range co.replicas[i] {
		if rc.do(ctx, method, withMinVersion(path, pin), body, out) == nil {
			co.failovers.Add(1)
			return nil
		}
		if ctx.Err() != nil {
			break
		}
	}
	return primaryErr
}

// openShardStream is readShard for streamed legs: open against the
// primary, fail over to followers on transport errors.
func (co *Coordinator) openShardStream(ctx context.Context, i int, method, path string, pin int64, body any) (io.ReadCloser, error) {
	rd, primaryErr := co.shards[i].stream(ctx, method, path, body)
	if primaryErr == nil || !co.shouldFailover(ctx, primaryErr) || len(co.replicas[i]) == 0 {
		return rd, primaryErr
	}
	for _, rc := range co.replicas[i] {
		if rd, err := rc.stream(ctx, method, withMinVersion(path, pin), body); err == nil {
			co.failovers.Add(1)
			return rd, nil
		}
		if ctx.Err() != nil {
			break
		}
	}
	return nil, primaryErr
}
