package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/serve"
)

// ShardDirectHeader marks a request as coordinator→shard traffic. A
// dual-role node (coordinator and shard in one process) routes requests
// carrying it to its local catalog instead of back into the cluster
// layer — without it, a coordinator listing itself as a shard would
// scatter to itself forever. The canonical definition lives in serve so
// the replication follower's client (which never imports the cluster
// layer) shares it.
const ShardDirectHeader = serve.ShardDirectHeader

// shardClient talks to one shard node's HTTP API.
type shardClient struct {
	base  string // base URL, no trailing slash
	index int    // shard index within the cluster
	count int
	http  *http.Client
	// streamHTTP is http minus the overall request timeout: a streamed
	// leg lives as long as the merge consuming it, so its lifetime is
	// bounded by the caller's context, not a flat deadline.
	streamHTTP *http.Client
}

// do issues one JSON round trip. Every request carries the shard-direct
// marker and the expected-identity assertion, and rides the caller's
// context so a coordinator-side timeout cancels the whole scatter.
func (c *shardClient) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ShardDirectHeader, "1")
	req.Header.Set(serve.ExpectShardHeader, fmt.Sprintf("%d/%d", c.index, c.count))
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("shard %d (%s): %w", c.index, c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &shardError{shard: c.index, status: resp.StatusCode, msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// stream opens one streamed round trip (?stream=1 legs): like do, but
// hands the caller the raw NDJSON body to decode frame by frame.
// Non-2xx statuses decode into shardError exactly like buffered trips.
func (c *shardClient) stream(ctx context.Context, method, path string, body any) (io.ReadCloser, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ShardDirectHeader, "1")
	req.Header.Set(serve.ExpectShardHeader, fmt.Sprintf("%d/%d", c.index, c.count))
	resp, err := c.streamHTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard %d (%s): %w", c.index, c.base, err)
	}
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		var e struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &shardError{shard: c.index, status: resp.StatusCode, msg: msg}
	}
	return resp.Body, nil
}

// shardError preserves the shard's HTTP status so the coordinator can
// relay client errors (4xx) as such instead of flattening everything
// into a 502.
type shardError struct {
	shard  int
	status int
	msg    string
}

func (e *shardError) Error() string {
	return fmt.Sprintf("shard %d: %s (HTTP %d)", e.shard, e.msg, e.status)
}

func (c *shardClient) tablePath(name string, suffix string) string {
	return "/tables/" + url.PathEscape(name) + suffix
}
