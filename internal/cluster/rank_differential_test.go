package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"testing"

	"repro/internal/serve"
)

// TestDifferentialRankings sweeps the ranking additions — dp-idp
// top-k, skyline layers and the F-dominance restricted skyline —
// through coordinators over 1, 2 and 4 shards against a single node
// holding the union of all shard rows, before and after a batch
// mutation routed through the coordinator. dp-idp is checked
// rank-equal via an independently computed score oracle (ties make the
// row sequence itself shard-dependent); layers and restricted sets are
// value-determined, so those compare as multisets.
func TestDifferentialRankings(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			rows := fixtureRows(220, int64(3000+n))
			tc := newTestCluster(t, n, fixtureSpec("diff", rows))

			tc.sweepRankings("initial", rows)

			// Batch through the coordinator: drop part of the current
			// skyline, add fresh rows, mirror on the single-node union.
			full := tc.query(tc.co.URL, "diff", serve.QueryRequest{Explain: true})
			var batch serve.BatchRequest
			removed := make(map[string]int)
			for i, r := range full.Skyline {
				if i%3 != 0 {
					continue
				}
				batch.RemoveSharded = append(batch.RemoveSharded,
					serve.ShardRef{Shard: *r.Shard, Row: r.Row})
				removed[rowKey(&full.Skyline[i])]++
			}
			batch.Add = fixtureRows(30, int64(8000+n))
			tc.postJSON(tc.co.URL+"/tables/diff/rows:batch", batch, nil, http.StatusOK)

			var next []serve.RowSpec
			for _, r := range rows {
				k := fmt.Sprintf("%v|%v", r.TO, r.PO)
				if removed[k] > 0 {
					removed[k]--
					continue
				}
				next = append(next, r)
			}
			next = append(next, batch.Add...)
			tc.resetSingle(fixtureSpec("diff", next))

			tc.sweepRankings("post-batch", next)
		})
	}
}

// sweepRankings runs the three ranking variants against coordinator and
// single node and compares under each variant's own contract.
func (tc *testCluster) sweepRankings(phase string, union []serve.RowSpec) {
	tc.t.Helper()

	// dp-idp: rank-equal by independently recomputed scores.
	scores := dpidpOracle(union)
	const k = 7
	for _, nk := range []bool{false, true} {
		req := serve.QueryRequest{TopK: k, Rank: "dpidp", NoKernel: nk}
		cluster := tc.query(tc.co.URL, "diff", req)
		single := tc.query(tc.single.URL, "diff", req)
		name := fmt.Sprintf("%s/dpidp(nokernel=%v)", phase, nk)
		if len(cluster.Skyline) != len(single.Skyline) {
			tc.t.Errorf("%s: cluster %d rows, single %d", name, len(cluster.Skyline), len(single.Skyline))
			continue
		}
		for i := range cluster.Skyline {
			ck, sk := rowKey(&cluster.Skyline[i]), rowKey(&single.Skyline[i])
			cs, cok := scores[ck]
			ss, sok := scores[sk]
			if !cok || !sok {
				tc.t.Errorf("%s: rank %d row not a skyline member (cluster %q ok=%v, single %q ok=%v)",
					name, i, ck, cok, sk, sok)
				continue
			}
			if cs != ss {
				tc.t.Errorf("%s: rank %d dp-idp score %v (cluster) vs %v (single) — not rank-equal",
					name, i, cs, ss)
			}
			if i > 0 && scores[rowKey(&cluster.Skyline[i-1])] < cs {
				tc.t.Errorf("%s: cluster dp-idp order violated at %d", name, i)
			}
		}
	}

	// Layers: membership is value-determined, so depth d is a multiset
	// equality; the depth-2 set must also nest inside depth-3.
	var layerKeys [][]string
	for _, depth := range []int{2, 3} {
		req := serve.QueryRequest{TopK: depth, Rank: "layer"}
		cluster := tc.query(tc.co.URL, "diff", req)
		single := tc.query(tc.single.URL, "diff", req)
		tc.checkSetEqual(fmt.Sprintf("%s/layer(depth=%d)", phase, depth), cluster, single)
		layerKeys = append(layerKeys, sortedKeys(cluster.Skyline))
	}
	if !isSubMultiset(layerKeys[0], layerKeys[1]) {
		tc.t.Errorf("%s/layer: depth-2 rows not contained in depth-3 rows", phase)
	}

	// Restricted skylines: multiset equality per weight vector, and
	// containment in the unrestricted skyline.
	fullKeys := sortedKeys(tc.query(tc.single.URL, "diff", serve.QueryRequest{Explain: true}).Skyline)
	for _, fw := range [][]float64{{0, 0}, {0.5, 0.25}, {0.9, 0.1}} {
		req := serve.QueryRequest{FWeights: fw}
		cluster := tc.query(tc.co.URL, "diff", req)
		single := tc.query(tc.single.URL, "diff", req)
		name := fmt.Sprintf("%s/restricted(%v)", phase, fw)
		tc.checkSetEqual(name, cluster, single)
		if !isSubMultiset(sortedKeys(cluster.Skyline), fullKeys) {
			tc.t.Errorf("%s: restricted rows not contained in the full skyline", name)
		}
	}
}

// isSubMultiset reports whether sorted key list a ⊆ b with multiplicity.
func isSubMultiset(a, b []string) bool {
	i := 0
	for _, k := range a {
		for i < len(b) && b[i] < k {
			i++
		}
		if i == len(b) || b[i] != k {
			return false
		}
		i++
	}
	return true
}

// dpidpOracle recomputes the dp-idp score of every union skyline row
// from first principles: each union row dominated by exactly k skyline
// members contributes 1/k to each, summed ascending in k exactly as
// the serving path materializes histograms. Keyed by row values —
// duplicate members share a score.
func dpidpOracle(union []serve.RowSpec) map[string]float64 {
	key := func(r *serve.RowSpec) string { return fmt.Sprintf("%v|%v", r.TO, r.PO) }
	var sky []int
	for i := range union {
		dominated := false
		for j := range union {
			if dominatesOracle(union[j].TO, union[j].PO, union[i].TO, union[i].PO) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, i)
		}
	}
	hists := make([]map[int]int, len(sky))
	for r := range union {
		var dom []int
		for s, i := range sky {
			if dominatesOracle(union[i].TO, union[i].PO, union[r].TO, union[r].PO) {
				dom = append(dom, s)
			}
		}
		for _, s := range dom {
			if hists[s] == nil {
				hists[s] = map[int]int{}
			}
			hists[s][len(dom)]++
		}
	}
	scores := make(map[string]float64, len(sky))
	for s, i := range sky {
		ks := make([]int, 0, len(hists[s]))
		for k := range hists[s] {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		var sum float64
		for _, k := range ks {
			sum += float64(hists[s][k]) / float64(k)
		}
		scores[key(&union[i])] = sum
	}
	return scores
}
