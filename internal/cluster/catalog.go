package cluster

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/serve"
	"repro/internal/store"
)

// The durable coordinator catalog: every cluster table's partition
// spec, with range bounds rendered explicitly, persisted as a JSON
// meta blob in the coordinator's store. Adopt consults it after a
// restart so a range-partitioned table comes back with its real
// bounds instead of the uniform hash fallback — placement never
// affects results, but a silently re-routed table degrades balance,
// shard pruning, and every future add's locality.

// catalogMetaKey is the store meta key the catalog is persisted under.
const catalogMetaKey = "cluster-catalog"

// catalogFile is the persisted form. The shard count is part of the
// cluster's identity: bounds for a 3-shard split are meaningless over
// 4 shards, so a mismatch is a hard startup error, not a guess.
type catalogFile struct {
	Shards int                            `json:"shards"`
	Tables map[string]serve.PartitionSpec `json:"tables"`
}

// loadCatalog reads the persisted catalog into co.saved at startup.
// No catalog blob yet is fine (first boot); a corrupt blob or a shard
// count mismatch is not.
func (co *Coordinator) loadCatalog() error {
	if co.catalog == nil {
		return nil
	}
	b, err := co.catalog.LoadMeta(catalogMetaKey)
	if errors.Is(err, store.ErrNotFound) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cluster: load catalog: %w", err)
	}
	var cf catalogFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return fmt.Errorf("cluster: catalog is corrupt: %w", err)
	}
	if cf.Shards != len(co.shards) {
		return fmt.Errorf("cluster: catalog was written for %d shards, this cluster has %d",
			cf.Shards, len(co.shards))
	}
	for name, spec := range cf.Tables {
		co.saved[name] = spec
	}
	return nil
}

// persistCatalog writes the live catalog (every registered table's
// partition spec) to the store. A no-op without a catalog store.
func (co *Coordinator) persistCatalog() error {
	if co.catalog == nil {
		return nil
	}
	cf := catalogFile{Shards: len(co.shards), Tables: map[string]serve.PartitionSpec{}}
	co.mu.RLock()
	for name, ct := range co.tables {
		cf.Tables[name] = ct.part.spec()
	}
	co.mu.RUnlock()
	b, err := json.Marshal(cf)
	if err != nil {
		return fmt.Errorf("cluster: encode catalog: %w", err)
	}
	if err := co.catalog.SaveMeta(catalogMetaKey, b); err != nil {
		return fmt.Errorf("cluster: persist catalog: %w", err)
	}
	return nil
}
