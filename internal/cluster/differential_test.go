package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/replica"
	"repro/internal/serve"
)

// --- fixture -----------------------------------------------------------------

// fixtureSchema: 2 TO columns, a diamond PO column and a chain PO
// column — every dominance flavor (strict TO, incomparable PO,
// t-preference) occurs.
func fixtureSpec(name string, rows []serve.RowSpec) serve.TableSpec {
	return serve.TableSpec{
		Name:      name,
		TOColumns: []string{"x", "y"},
		Orders: []serve.OrderSpec{
			{Name: "cls", Values: []string{"a", "b", "c", "d"},
				Edges: [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}},
			{Name: "tier", Values: []string{"t1", "t2", "t3"},
				Edges: [][2]string{{"t1", "t2"}, {"t2", "t3"}}},
		},
		Rows: rows,
	}
}

// fixtureRows generates a deterministic mixed workload with duplicates.
func fixtureRows(n int, seed int64) []serve.RowSpec {
	rng := rand.New(rand.NewSource(seed))
	cls := []string{"a", "b", "c", "d"}
	tier := []string{"t1", "t2", "t3"}
	rows := make([]serve.RowSpec, 0, n)
	for i := 0; i < n; i++ {
		r := serve.RowSpec{
			TO: []int64{int64(rng.Intn(1000)), int64(rng.Intn(1000))},
			PO: []string{cls[rng.Intn(4)], tier[rng.Intn(3)]},
		}
		rows = append(rows, r)
		if rng.Intn(20) == 0 && len(rows) < n { // ~5% exact duplicates
			rows = append(rows, serve.RowSpec{
				TO: append([]int64(nil), r.TO...),
				PO: append([]string(nil), r.PO...),
			})
			i++
		}
	}
	return rows
}

// --- harness -----------------------------------------------------------------

type testCluster struct {
	t      *testing.T
	coord  *Coordinator
	co     *httptest.Server // coordinator front door
	single *httptest.Server // single-node holding the union of all shard rows
	srv    *serve.Server    // the single node's catalog (for rebuilds)

	// Populated by newReplicatedTestCluster (failover_test.go) only:
	// per-shard primary servers (killable) and their follower loops.
	primaries []*httptest.Server
	followers []*replica.Follower
}

// newTestCluster boots n shard servers, a coordinator over them, and a
// single-node reference server holding the identical union of rows.
func newTestCluster(t *testing.T, n int, spec serve.TableSpec) *testCluster {
	return newTestClusterCfg(t, n, spec, false)
}

// newTestClusterCfg is newTestCluster with shard-local skyline-memo
// maintenance switchable (the differential harness sweeps both).
func newTestClusterCfg(t *testing.T, n int, spec serve.TableSpec, noMaintain bool) *testCluster {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		shard := serve.NewWithConfig(serve.Config{
			CacheCapacity: 8,
			Shard:         &serve.ShardIdentity{Index: i, Count: n},
			NoMaintain:    noMaintain,
		})
		ts := httptest.NewServer(shard.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	coord, err := New(Config{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	co := httptest.NewServer(coord.Handler(serve.New(8).Handler()))
	t.Cleanup(co.Close)

	srv := serve.New(8)
	single := httptest.NewServer(srv.Handler())
	t.Cleanup(single.Close)

	tc := &testCluster{t: t, coord: coord, co: co, single: single, srv: srv}
	tc.postJSON(co.URL+"/tables", spec, nil, http.StatusCreated)
	tc.postJSON(single.URL+"/tables", spec, nil, http.StatusCreated)
	return tc
}

// resetSingle rebuilds the single-node reference table with new rows.
func (tc *testCluster) resetSingle(spec serve.TableSpec) {
	tc.t.Helper()
	tc.srv.DropTable(spec.Name)
	tc.postJSON(tc.single.URL+"/tables", spec, nil, http.StatusCreated)
}

func (tc *testCluster) postJSON(url string, body, out any, wantStatus int) {
	tc.t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		tc.t.Fatalf("POST %s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tc.t.Fatal(err)
		}
	}
}

func (tc *testCluster) query(base, table string, req serve.QueryRequest) serve.QueryResponse {
	tc.t.Helper()
	var out serve.QueryResponse
	tc.postJSON(base+"/tables/"+table+"/query", req, &out, http.StatusOK)
	return out
}

// rowKey canonicalises a skyline row's values.
func rowKey(r *serve.SkylineRow) string {
	return fmt.Sprintf("%v|%v", r.TO, r.PO)
}

// sortedKeys renders a response's row-value multiset.
func sortedKeys(rows []serve.SkylineRow) []string {
	keys := make([]string, len(rows))
	for i := range rows {
		keys[i] = rowKey(&rows[i])
	}
	sort.Strings(keys)
	return keys
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkSetEqual asserts cluster and single-node answers hold the same
// row-value multiset.
func (tc *testCluster) checkSetEqual(name string, cluster, single serve.QueryResponse) {
	tc.t.Helper()
	if cluster.Count != single.Count {
		tc.t.Errorf("%s: cluster count %d, single %d", name, cluster.Count, single.Count)
	}
	ck, sk := sortedKeys(cluster.Skyline), sortedKeys(single.Skyline)
	if !equalKeys(ck, sk) {
		tc.t.Errorf("%s: value sets diverge\n cluster: %v\n single:  %v", name, ck, sk)
	}
	for i := range cluster.Skyline {
		if cluster.Skyline[i].Shard == nil {
			tc.t.Errorf("%s: cluster row %d missing shard annotation", name, i)
			break
		}
	}
}

// --- the differential sweep --------------------------------------------------

// variantQueries is the PR 4 battery the tentpole must preserve across
// the distributed path.
func variantQueries() []struct {
	name string
	req  serve.QueryRequest
} {
	le := int64(400)
	return []struct {
		name string
		req  serve.QueryRequest
	}{
		{"full", serve.QueryRequest{Explain: true}},
		{"subspace-TO", serve.QueryRequest{Subspace: []string{"x", "y"}}},
		{"subspace-mixed", serve.QueryRequest{Subspace: []string{"x", "cls"}}},
		{"constrained", serve.QueryRequest{Where: []serve.WhereSpec{
			{Col: "x", Le: &le},
			{Col: "cls", In: []string{"a", "b"}},
		}}},
		{"constrained+subspace", serve.QueryRequest{
			Subspace: []string{"y", "tier"},
			Where:    []serve.WhereSpec{{Col: "x", Le: &le}},
		}},
		// Scalar reference path end to end: shards run NoKernel and the
		// coordinator merges with MergeSurvivorsRef.
		{"full-nokernel", serve.QueryRequest{NoKernel: true}},
		{"constrained-nokernel", serve.QueryRequest{
			NoKernel: true,
			Where:    []serve.WhereSpec{{Col: "x", Le: &le}, {Col: "cls", In: []string{"a", "b"}}},
		}},
	}
}

// TestDifferentialScatterGather is the acceptance harness: for shard
// counts N ∈ {1, 2, 4}, coordinator results are set-equal (rank-equal
// for ranked top-k, size-and-membership for unranked) to a single node
// holding the union of all shard rows — for every query variant,
// including after batch mutations routed through the coordinator.
func TestDifferentialScatterGather(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		// Shard-local memo maintenance on and off must be
		// indistinguishable in every answer: maintenance only changes
		// whether post-batch scatter legs recompute or re-certify.
		for _, noMaintain := range []bool{false, true} {
			n, noMaintain := n, noMaintain
			t.Run(fmt.Sprintf("shards=%d/maintain=%v", n, !noMaintain), func(t *testing.T) {
				tc := newTestClusterCfg(t, n, fixtureSpec("diff", fixtureRows(260, int64(1000+n))), noMaintain)
				runDifferential(t, tc, n, noMaintain)
			})
		}
	}
}

func runDifferential(t *testing.T, tc *testCluster, n int, noMaintain bool) {
	rows := fixtureRows(260, int64(1000+n))

	tc.sweep("initial", rows)

	// Mutations through the coordinator: remove a third of the
	// current skyline (by shard handle) and add fresh rows, then
	// rebuild the single-node union to match and re-sweep.
	full := tc.query(tc.co.URL, "diff", serve.QueryRequest{Algo: "stss"})
	var batch serve.BatchRequest
	removed := make(map[string]int)
	for i, r := range full.Skyline {
		if i%3 != 0 {
			continue
		}
		batch.RemoveSharded = append(batch.RemoveSharded,
			serve.ShardRef{Shard: *r.Shard, Row: r.Row})
		removed[rowKey(&full.Skyline[i])]++
	}
	batch.Add = fixtureRows(40, int64(7000+n))
	var bresp serve.BatchResponse
	tc.postJSON(tc.co.URL+"/tables/diff/rows:batch", batch, &bresp, http.StatusOK)
	if len(bresp.Versions) != n {
		t.Fatalf("batch version vector has %d entries, want %d", len(bresp.Versions), n)
	}
	if bresp.Removed != len(batch.RemoveSharded) || bresp.Added != len(batch.Add) {
		t.Fatalf("batch reported added=%d removed=%d, want %d/%d",
			bresp.Added, bresp.Removed, len(batch.Add), len(batch.RemoveSharded))
	}

	// Mirror the mutation on the expected union: drop one instance
	// per removed value, append the adds.
	var next []serve.RowSpec
	for _, r := range rows {
		k := fmt.Sprintf("%v|%v", r.TO, r.PO)
		if removed[k] > 0 {
			removed[k]--
			continue
		}
		next = append(next, r)
	}
	next = append(next, batch.Add...)
	tc.resetSingle(fixtureSpec("diff", next))

	tc.sweep("post-batch", next)

	// With maintenance on, the post-batch full-query scatter legs were
	// maintained memo hits; with it off, none were. /clusterz exposes
	// the summed shard counters either way.
	var cz ClusterzInfo
	getJSON(t, tc.co.URL+"/clusterz", &cz)
	if noMaintain {
		if cz.PlanCache.MaintainedHits != 0 || cz.PlanCache.Advances != 0 {
			t.Errorf("maintenance off but /clusterz shows maintainedHits=%d advances=%d",
				cz.PlanCache.MaintainedHits, cz.PlanCache.Advances)
		}
	} else {
		if cz.PlanCache.MaintainedHits == 0 {
			t.Errorf("maintenance on but no maintained hits in /clusterz: %+v", cz.PlanCache)
		}
		if cz.PlanCache.Advances == 0 {
			t.Errorf("maintenance on but no memo advances in /clusterz: %+v", cz.PlanCache)
		}
	}
}

// sweep runs every variant against both the coordinator and the
// single-node union and compares.
func (tc *testCluster) sweep(phase string, union []serve.RowSpec) {
	tc.t.Helper()
	for _, v := range variantQueries() {
		cluster := tc.query(tc.co.URL, "diff", v.req)
		single := tc.query(tc.single.URL, "diff", v.req)
		tc.checkSetEqual(phase+"/"+v.name, cluster, single)
		if cluster.Rows != single.Rows {
			tc.t.Errorf("%s/%s: cluster sees %d rows, single %d", phase, v.name, cluster.Rows, single.Rows)
		}
	}

	// Kernel on vs off through the same coordinator: the bitset/columnar
	// kernel and the scalar reference path must answer identically.
	tc.checkSetEqual(phase+"/kernel-on-vs-off",
		tc.query(tc.co.URL, "diff", serve.QueryRequest{Explain: true}),
		tc.query(tc.co.URL, "diff", serve.QueryRequest{NoKernel: true}))

	// Static skyline GET (table's own orders) and a dynamic query with
	// per-request DAGs.
	var cl, si serve.QueryResponse
	getJSON(tc.t, tc.co.URL+"/tables/diff/skyline", &cl)
	getJSON(tc.t, tc.single.URL+"/tables/diff/skyline", &si)
	tc.checkSetEqual(phase+"/skyline-GET", cl, si)

	dyn := serve.QueryRequest{Orders: []serve.QueryOrder{
		{Edges: [][2]string{{"d", "a"}, {"d", "b"}}}, // inverted-ish preference
		{Edges: [][2]string{{"t3", "t2"}, {"t2", "t1"}}},
	}}
	tc.checkSetEqual(phase+"/dynamic",
		tc.query(tc.co.URL, "diff", dyn), tc.query(tc.single.URL, "diff", dyn))

	ideal := serve.QueryRequest{Ideal: []int64{500, 500}, Orders: dyn.Orders}
	tc.checkSetEqual(phase+"/dynamic-ideal",
		tc.query(tc.co.URL, "diff", ideal), tc.query(tc.single.URL, "diff", ideal))

	tc.checkTopK(phase, union)
}

// checkTopK validates the distributed top-k contract: ranked variants
// are rank-equal to the single node modulo score ties (checked via
// independently computed scores), unranked top-k is a K-subset of the
// full skyline.
func (tc *testCluster) checkTopK(phase string, union []serve.RowSpec) {
	tc.t.Helper()
	const k = 7
	fullSingle := tc.query(tc.single.URL, "diff", serve.QueryRequest{Algo: "stss"})
	member := make(map[string]int)
	for i := range fullSingle.Skyline {
		member[rowKey(&fullSingle.Skyline[i])]++
	}

	// Unranked: K rows, all full-skyline members.
	un := tc.query(tc.co.URL, "diff", serve.QueryRequest{TopK: k})
	wantLen := k
	if fullSingle.Count < k {
		wantLen = fullSingle.Count
	}
	if len(un.Skyline) != wantLen {
		tc.t.Errorf("%s/topk-unranked: %d rows, want %d", phase, len(un.Skyline), wantLen)
	}
	seen := make(map[string]int)
	for i := range un.Skyline {
		key := rowKey(&un.Skyline[i])
		seen[key]++
		if seen[key] > member[key] {
			tc.t.Errorf("%s/topk-unranked: row %s not in the full skyline (or over-returned)", phase, key)
		}
	}

	// Ranked: per-score verification against an independent oracle.
	for _, rank := range []struct {
		name string
		req  serve.QueryRequest
		of   func(r *serve.SkylineRow) float64
	}{
		{"domcount", serve.QueryRequest{TopK: k, Rank: "domcount"},
			func(r *serve.SkylineRow) float64 { return -float64(domCountOracle(union, r)) }},
		{"ideal", serve.QueryRequest{TopK: k, Rank: "ideal", Ideal: []int64{500, 500}},
			func(r *serve.SkylineRow) float64 { return idealScoreOracle(r, []int64{500, 500}) }},
	} {
		cluster := tc.query(tc.co.URL, "diff", rank.req)
		single := tc.query(tc.single.URL, "diff", rank.req)
		if len(cluster.Skyline) != len(single.Skyline) {
			tc.t.Errorf("%s/topk-%s: cluster %d rows, single %d",
				phase, rank.name, len(cluster.Skyline), len(single.Skyline))
			continue
		}
		for i := range cluster.Skyline {
			cs, ss := rank.of(&cluster.Skyline[i]), rank.of(&single.Skyline[i])
			if cs != ss {
				tc.t.Errorf("%s/topk-%s: rank %d score %v (cluster) vs %v (single) — not rank-equal",
					phase, rank.name, i, cs, ss)
			}
			if i > 0 && rank.of(&cluster.Skyline[i-1]) > cs {
				tc.t.Errorf("%s/topk-%s: cluster rank order violated at %d", phase, rank.name, i)
			}
			if member[rowKey(&cluster.Skyline[i])] == 0 {
				tc.t.Errorf("%s/topk-%s: ranked row %s not in the full skyline",
					phase, rank.name, rowKey(&cluster.Skyline[i]))
			}
		}
	}
}

// domCountOracle brute-forces a candidate's dominance count over the
// union rows (full dimensionality, diamond + chain orders).
func domCountOracle(union []serve.RowSpec, c *serve.SkylineRow) int {
	count := 0
	for _, r := range union {
		if dominatesOracle(c.TO, c.PO, r.TO, r.PO) {
			count++
		}
	}
	return count
}

// dominatesOracle is the fixture's t-dominance (diamond cls + chain
// tier), hand-coded as an independent check.
func dominatesOracle(aTO []int64, aPO []string, bTO []int64, bPO []string) bool {
	strict := false
	for d := range aTO {
		if aTO[d] > bTO[d] {
			return false
		}
		if aTO[d] < bTO[d] {
			strict = true
		}
	}
	pref := map[string]map[string]bool{
		"a": {"b": true, "c": true, "d": true},
		"b": {"d": true}, "c": {"d": true}, "d": {},
		"t1": {"t2": true, "t3": true}, "t2": {"t3": true}, "t3": {},
	}
	for d := range aPO {
		if aPO[d] == bPO[d] {
			continue
		}
		if !pref[aPO[d]][bPO[d]] {
			return false
		}
		strict = true
	}
	return strict
}

// idealScoreOracle mirrors the RankIdeal score: L1 distance to the
// ideal plus preference-DAG depth per PO value.
func idealScoreOracle(r *serve.SkylineRow, ideal []int64) float64 {
	depth := map[string]float64{
		"a": 0, "b": 1, "c": 1, "d": 3,
		"t1": 0, "t2": 1, "t3": 2,
	}
	var s float64
	for d := range r.TO {
		diff := r.TO[d] - ideal[d]
		if diff < 0 {
			diff = -diff
		}
		s += float64(diff)
	}
	for _, v := range r.PO {
		s += depth[v]
	}
	return s
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
