package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/core"
	"repro/internal/serve"
)

// Handler mounts the coordinator over a fallback handler (the node's
// own single-node serve API). External clients hit the same paths as
// against a single node — the coordinator answers for its cluster
// tables and defers everything else — so tssquery -serve works against
// either transparently. Requests carrying ShardDirectHeader always go
// to the fallback: that is coordinator→shard traffic, and on a
// dual-role node it must reach the local catalog, not recurse into the
// cluster layer.
//
//	GET  /clusterz                       topology + cluster catalog
//	POST /tables                         create a *cluster* table (partitioned over the shards)
//	GET  /tables                         list cluster tables
//	*    /tables/{name}...               cluster table → scatter/gather, else fallback
func (co *Coordinator) Handler(fallback http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ShardDirectHeader) != "" {
			fallback.ServeHTTP(w, r)
			return
		}
		path := strings.TrimSuffix(r.URL.Path, "/")
		switch {
		case path == "/clusterz" && r.Method == http.MethodGet:
			co.handleClusterz(w, r)
			return
		case path == "/tables" && r.Method == http.MethodPost:
			co.handleCreate(w, r)
			return
		case path == "/tables" && r.Method == http.MethodGet:
			co.handleList(w, r)
			return
		case strings.HasPrefix(path, "/tables/"):
			rawName, rest, _ := strings.Cut(strings.TrimPrefix(path, "/tables/"), "/")
			name, err := url.PathUnescape(rawName)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad table name: %w", err))
				return
			}
			if ct := co.table(name); ct != nil {
				co.serveTable(w, r, ct, rest)
				return
			}
		}
		fallback.ServeHTTP(w, r)
	})
}

// serveTable routes one cluster table's sub-path.
func (co *Coordinator) serveTable(w http.ResponseWriter, r *http.Request, ct *ctable, rest string) {
	ctx := r.Context()
	switch {
	case rest == "" && r.Method == http.MethodGet:
		info, err := co.Info(ctx, ct)
		if err != nil {
			writeError(w, statusForCluster(err), err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	case rest == "" && r.Method == http.MethodDelete:
		ok, err := co.DropTable(ctx, ct.name)
		if err != nil {
			writeError(w, statusForCluster(err), err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", ct.name))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"dropped": ct.name})
	case rest == "skyline" && r.Method == http.MethodGet:
		if serve.WantsStream(r) {
			co.HandleSkylineStream(w, r, ct)
			return
		}
		resp, err := co.Skyline(ctx, ct, r.URL.Query())
		if err != nil {
			writeError(w, statusForCluster(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	case rest == "stats" && r.Method == http.MethodGet:
		co.handleStats(w, r, ct)
	case rest == "rows:batch" && r.Method == http.MethodPost:
		var req serve.BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch: %w", err))
			return
		}
		resp, err := co.Batch(ctx, ct, req)
		if err != nil {
			writeError(w, statusForCluster(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	case rest == "query" && r.Method == http.MethodPost:
		var req serve.QueryRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad query: %w", err))
			return
		}
		if serve.WantsStream(r) {
			co.HandleQueryStream(w, r, ct, req)
			return
		}
		resp, err := co.Query(ctx, ct, req)
		if err != nil {
			writeError(w, statusForCluster(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	case rest == "domcount" && r.Method == http.MethodPost:
		var req serve.DomCountRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad domcount request: %w", err))
			return
		}
		resp, err := co.DomCount(ctx, ct, req)
		if err != nil {
			writeError(w, statusForCluster(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("no cluster route %s %s", r.Method, r.URL.Path))
	}
}

func (co *Coordinator) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec serve.TableSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad table spec: %w", err))
		return
	}
	info, err := co.CreateTable(r.Context(), spec)
	if err != nil {
		if errors.Is(err, serve.ErrTableExists) {
			writeError(w, http.StatusConflict, fmt.Errorf("table %q already exists", spec.Name))
			return
		}
		writeError(w, statusForCluster(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	infos := []any{}
	for _, name := range co.tableNames() {
		ct := co.table(name)
		if ct == nil {
			continue
		}
		info, err := co.Info(r.Context(), ct)
		if err != nil {
			writeError(w, statusForCluster(err), err)
			return
		}
		infos = append(infos, info)
	}
	writeJSON(w, http.StatusOK, infos)
}

// handleStats merges the shards' planner statistics and attaches the
// per-shard bodies.
func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request, ct *ctable) {
	stats, err := co.ShardStats(r.Context(), ct)
	if err != nil {
		writeError(w, statusForCluster(err), err)
		return
	}
	out := struct {
		Table    string `json:"table"`
		Version  int64  `json:"version"`
		Rows     int    `json:"rows"`
		Stats    any    `json:"stats"`
		PerShard any    `json:"perShard"`
	}{Table: ct.name, Stats: MergedStats(stats), PerShard: stats}
	for _, s := range stats {
		out.Version += s.Version
		out.Rows += s.Rows
	}
	writeJSON(w, http.StatusOK, out)
}

// ClusterzInfo is the GET /clusterz body.
type ClusterzInfo struct {
	Shards []string `json:"shards"`
	// Replicas[i] are shard i's follower base URLs, in failover order.
	Replicas [][]string     `json:"replicas,omitempty"`
	Tables   []ClusterTable `json:"tables"`
	Queries  int64          `json:"queries"`
	// PrunedShards counts scatter legs skipped by statistics-driven
	// pruning since startup.
	PrunedShards int64 `json:"prunedShards"`
	// Failovers counts read legs a follower answered because the shard
	// primary was unreachable, since startup.
	Failovers int64 `json:"failovers"`
	// KernelDomTests / KernelBlockSkips are this process's cumulative
	// dominance-kernel counters (coordinator merge passes included);
	// shard-local work shows up in each shard's own /statsz.
	KernelDomTests   int64 `json:"kernelDomTests"`
	KernelBlockSkips int64 `json:"kernelBlockSkips"`
	// PlanCache sums every table's by-route skyline-memo counters
	// across the reachable primaries (hits/misses per route plus
	// shard-local maintenance work), so cluster-wide maintenance
	// efficacy is one GET away.
	PlanCache serve.PlanCacheStats `json:"planCache"`
}

// ClusterTable is one catalog entry of /clusterz.
type ClusterTable struct {
	Name      string `json:"name"`
	Partition any    `json:"partition"`
	// Versions is the primary version vector, probed live; -1 marks an
	// unreachable primary.
	Versions []int64 `json:"versions,omitempty"`
	// PlanCache sums this table's by-route skyline-memo counters across
	// the reachable primaries (see serve.PlanCacheStats).
	PlanCache serve.PlanCacheStats `json:"planCache"`
	// ReplicaLag[i][j] is primary version − follower j's version for
	// shard i — the replication delta; -1 when either side is
	// unreachable. Omitted when no shard has followers.
	ReplicaLag [][]int64 `json:"replicaLag,omitempty"`
}

func (co *Coordinator) handleClusterz(w http.ResponseWriter, r *http.Request) {
	domTests, blockSkips := core.KernelCounters()
	info := ClusterzInfo{
		Queries:          co.queries.Load(),
		PrunedShards:     co.pruned.Load(),
		Failovers:        co.failovers.Load(),
		Tables:           []ClusterTable{},
		KernelDomTests:   domTests,
		KernelBlockSkips: blockSkips,
	}
	hasReplicas := false
	for i, sc := range co.shards {
		info.Shards = append(info.Shards, sc.base)
		if len(co.replicas[i]) > 0 {
			hasReplicas = true
		}
	}
	if hasReplicas {
		info.Replicas = make([][]string, len(co.shards))
		for i, rcs := range co.replicas {
			for _, rc := range rcs {
				info.Replicas[i] = append(info.Replicas[i], rc.base)
			}
		}
	}
	for _, name := range co.tableNames() {
		ct := co.table(name)
		if ct == nil {
			continue
		}
		entry := ClusterTable{Name: name, Partition: ct.part.spec()}
		var pc serve.PlanCacheStats
		entry.Versions, entry.ReplicaLag, pc = co.probeVersions(r.Context(), name, hasReplicas)
		entry.PlanCache = pc
		info.PlanCache.Add(pc)
		info.Tables = append(info.Tables, entry)
	}
	writeJSON(w, http.StatusOK, info)
}

// probeVersions asks every primary (and, when followers are
// configured, every follower) for one table's current version —
// best-effort, concurrently, -1 for any node that does not answer. The
// per-follower lag is the primary/follower version delta, the live
// measure of how far behind each mirror is.
func (co *Coordinator) probeVersions(ctx context.Context, name string, withLag bool) ([]int64, [][]int64, serve.PlanCacheStats) {
	versions := make([]int64, len(co.shards))
	caches := make([]serve.PlanCacheStats, len(co.shards))
	var lag [][]int64
	if withLag {
		lag = make([][]int64, len(co.shards))
	}
	probe := func(sc *shardClient) (int64, serve.PlanCacheStats) {
		var info serve.TableInfo
		if err := sc.do(ctx, http.MethodGet, sc.tablePath(name, ""), nil, &info); err != nil {
			return -1, serve.PlanCacheStats{}
		}
		return info.Version, info.Stats.PlanCache
	}
	co.scatter(func(i int) error {
		versions[i], caches[i] = probe(co.shards[i])
		if lag == nil {
			return nil
		}
		for _, rc := range co.replicas[i] {
			rv, _ := probe(rc)
			if versions[i] < 0 || rv < 0 {
				lag[i] = append(lag[i], -1)
				continue
			}
			lag[i] = append(lag[i], versions[i]-rv)
		}
		return nil
	})
	var pc serve.PlanCacheStats
	for _, c := range caches {
		pc.Add(c)
	}
	return versions, lag, pc
}

// statusForCluster maps a coordinator error to its HTTP status: shard
// client errors (4xx) relay as-is, shard 5xx and transport failures
// become 502 (the coordinator itself is fine; a dependency is not),
// context expiry keeps the single-node 499/503 mapping, and everything
// else is a client error.
func statusForCluster(err error) int {
	var se *shardError
	var ue *url.Error
	switch {
	case errors.As(err, &se):
		if se.status/100 == 4 {
			return se.status
		}
		return http.StatusBadGateway
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return 499
	case errors.As(err, &ue):
		// A transport-level failure (shard unreachable, connection torn):
		// the shard is the broken dependency, not the request.
		return http.StatusBadGateway
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
