package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/serve"
)

// partitioner routes rows of one cluster table to shards. Placement is
// a performance decision, not a correctness one: the scatter/gather
// merge is sound under any placement (the union of shard-local
// skylines always contains the global skyline), so a router mismatch —
// say, after a coordinator restart adopted a range-partitioned table
// as hash-partitioned — degrades balance and shard pruning, never
// results.
type partitioner struct {
	shards  int
	byHash  bool
	col     int     // TO column index (range partitioning)
	colName string  // the split column's wire name, for spec()
	bounds  []int64 // ascending split points, len shards-1
}

// newPartitioner compiles a wire PartitionSpec against a schema. A nil
// spec is the uniform hash default. Range bounds left empty are derived
// from the create's rows by equal frequency on the split column.
func newPartitioner(spec *serve.PartitionSpec, schema *serve.Schema, rows []serve.RowSpec, shards int) (*partitioner, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	if spec == nil || spec.By == "" || spec.By == "hash" {
		if spec != nil && (spec.Column != "" || len(spec.Bounds) > 0) {
			return nil, fmt.Errorf("cluster: hash partitioning takes no column/bounds")
		}
		return &partitioner{shards: shards, byHash: true}, nil
	}
	if spec.By != "range" {
		return nil, fmt.Errorf("cluster: unknown partitioning %q (want hash or range)", spec.By)
	}
	col := 0
	if spec.Column != "" {
		dim, isTO, err := schema.LookupCol(spec.Column)
		if err != nil {
			return nil, fmt.Errorf("cluster: partition column: %w", err)
		}
		if !isTO {
			return nil, fmt.Errorf("cluster: range partitioning needs a TO column, %q is partially ordered", spec.Column)
		}
		col = dim
	}
	bounds := append([]int64(nil), spec.Bounds...)
	if len(bounds) == 0 {
		if len(rows) == 0 {
			return nil, fmt.Errorf("cluster: range partitioning needs explicit bounds or initial rows to derive them")
		}
		vals := make([]int64, len(rows))
		for i, r := range rows {
			if col >= len(r.TO) {
				return nil, fmt.Errorf("cluster: row %d has no TO column %d", i, col)
			}
			vals[i] = r.TO[col]
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for i := 1; i < shards; i++ {
			bounds = append(bounds, vals[i*len(vals)/shards])
		}
	}
	if len(bounds) != shards-1 {
		return nil, fmt.Errorf("cluster: %d range bounds for %d shards (want %d)", len(bounds), shards, shards-1)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i-1] > bounds[i] {
			return nil, fmt.Errorf("cluster: range bounds must be ascending")
		}
	}
	return &partitioner{shards: shards, col: col, colName: schema.TOColumns()[col], bounds: bounds}, nil
}

// route places one row.
func (p *partitioner) route(r serve.RowSpec) int {
	if p.byHash {
		return int(hashRow(r) % uint64(p.shards))
	}
	v := int64(0)
	if p.col < len(r.TO) {
		v = r.TO[p.col]
	}
	for i, b := range p.bounds {
		if v < b {
			return i
		}
	}
	return p.shards - 1
}

// spec renders the partitioner back to wire form (for /clusterz).
func (p *partitioner) spec() serve.PartitionSpec {
	if p.byHash {
		return serve.PartitionSpec{By: "hash"}
	}
	return serve.PartitionSpec{By: "range", Column: p.colName, Bounds: append([]int64(nil), p.bounds...)}
}

// hashRow hashes a row's values (length-prefixed, so label boundaries
// cannot collide) — the deterministic placement function of hash
// partitioning. The FNV state is passed through an avalanche finalizer
// before use: FNV-1a's low output bits are linear in the input bytes
// (multiplying by the odd prime preserves parity), so routing by
// `fnv % shards` degenerates on structured data — e.g. every
// anti-correlated row (i, n−i) with n even lands on one shard, because
// the two values always share parity. The fmix64 finalizer mixes every
// input bit into the low bits.
func hashRow(r serve.RowSpec) uint64 {
	h := fnv.New64a()
	var b [10]byte
	writeInt := func(v int64) {
		n := 0
		u := uint64(v)
		for {
			b[n] = byte(u)
			n++
			u >>= 8
			if u == 0 {
				break
			}
		}
		h.Write([]byte{byte(n)})
		h.Write(b[:n])
	}
	for _, v := range r.TO {
		writeInt(v)
	}
	for _, s := range r.PO {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	u := h.Sum64()
	u ^= u >> 33
	u *= 0xff51afd7ed558ccd
	u ^= u >> 33
	u *= 0xc4ceb9fe1a85ec53
	u ^= u >> 33
	return u
}
