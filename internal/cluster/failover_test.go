package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/replica"
	"repro/internal/serve"
	"repro/internal/store"
)

// newReplicatedTestCluster is newTestCluster plus replication: every
// shard primary is durable (Mem store, so its replication log works),
// mirrored by one read-only follower, and the coordinator is wired with
// the follower URLs and a durable catalog. Followers are synced
// manually via syncFollowers — deterministic, no polling loop.
func newReplicatedTestCluster(t *testing.T, n int, spec serve.TableSpec) *testCluster {
	t.Helper()
	urls := make([]string, n)
	replicas := make([][]string, n)
	primaries := make([]*httptest.Server, n)
	followers := make([]*replica.Follower, n)
	for i := 0; i < n; i++ {
		shard := serve.NewWithConfig(serve.Config{
			CacheCapacity: 8,
			Store:         store.NewMem(),
			Shard:         &serve.ShardIdentity{Index: i, Count: n},
		})
		ts := httptest.NewServer(shard.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		primaries[i] = ts

		mirror := serve.NewWithConfig(serve.Config{CacheCapacity: 8, ReadOnly: true})
		fs := httptest.NewServer(mirror.Handler())
		t.Cleanup(fs.Close)
		f, err := replica.New(replica.Config{Primary: ts.URL, Server: mirror})
		if err != nil {
			t.Fatal(err)
		}
		followers[i] = f
		replicas[i] = []string{fs.URL}
	}
	coord, err := New(Config{Shards: urls, Replicas: replicas, Catalog: store.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	co := httptest.NewServer(coord.Handler(serve.New(8).Handler()))
	t.Cleanup(co.Close)

	srv := serve.New(8)
	single := httptest.NewServer(srv.Handler())
	t.Cleanup(single.Close)

	tc := &testCluster{t: t, coord: coord, co: co, single: single, srv: srv,
		primaries: primaries, followers: followers}
	tc.postJSON(co.URL+"/tables", spec, nil, http.StatusCreated)
	tc.postJSON(single.URL+"/tables", spec, nil, http.StatusCreated)
	return tc
}

// syncFollowers runs one deterministic replication round on every
// follower; afterwards each mirror is exactly its primary's state.
func (tc *testCluster) syncFollowers() {
	tc.t.Helper()
	for i, f := range tc.followers {
		if err := f.Sync(context.Background()); err != nil {
			tc.t.Fatalf("follower %d sync: %v", i, err)
		}
	}
}

// killPrimary tears shard i's primary down the hard way: in-flight
// connections are severed first (the in-process analog of SIGKILL), so
// scatter legs see transport errors, not graceful drains.
func (tc *testCluster) killPrimary(i int) {
	tc.primaries[i].CloseClientConnections()
	tc.primaries[i].Close()
}

// TestReadFailover: with one follower per shard and shard 0's primary
// dead, every read route (query variants, dynamic, skyline GET, top-k,
// streamed, table info) keeps answering — correctly, via the follower —
// while mutations, which must never fail over, surface 502.
func TestReadFailover(t *testing.T) {
	rows := fixtureRows(160, 42)
	spec := fixtureSpec("diff", rows)
	tc := newReplicatedTestCluster(t, 2, spec)
	tc.syncFollowers()

	baseline := tc.query(tc.co.URL, "diff", serve.QueryRequest{Algo: "stss"})
	if tc.coord.failovers.Load() != 0 {
		t.Fatalf("failovers counted with all primaries healthy")
	}

	tc.killPrimary(0)

	// The whole differential battery — every variant, dynamic DAGs,
	// skyline GET, ranked and unranked top-k — against the single-node
	// union, now served partly by the follower.
	tc.sweep("post-kill", rows)
	after := tc.query(tc.co.URL, "diff", serve.QueryRequest{Algo: "stss"})
	tc.checkSetEqual("post-kill/full-vs-baseline", after, baseline)
	if got := tc.coord.failovers.Load(); got == 0 {
		t.Errorf("reads succeeded with a dead primary but the failover counter is still 0")
	}

	// Streamed skyline GET fails over at leg-open time too.
	frames := streamFrames(t, http.MethodGet, tc.co.URL+"/tables/diff/skyline?stream=1", nil)
	srows, _ := streamedRows(t, frames)
	var want serve.QueryResponse
	getJSON(t, tc.single.URL+"/tables/diff/skyline", &want)
	if !equalKeys(sortedKeys(srows), sortedKeys(want.Skyline)) {
		t.Errorf("post-kill streamed skyline diverges from the single-node union")
	}

	// Table info aggregates through the follower.
	var info serve.TableInfo
	getJSON(t, tc.co.URL+"/tables/diff", &info)
	if info.Rows != len(rows) {
		t.Errorf("post-kill info: %d rows, want %d", info.Rows, len(rows))
	}

	// /clusterz reports the topology: the dead primary probes -1, its
	// follower's lag is -1 (undefined without a reachable primary), the
	// live shard's lag is 0, and the failover counter is exposed.
	var cz ClusterzInfo
	getJSON(t, tc.co.URL+"/clusterz", &cz)
	if len(cz.Replicas) != 2 || len(cz.Replicas[0]) != 1 {
		t.Fatalf("clusterz replicas = %v, want one follower per shard", cz.Replicas)
	}
	if cz.Failovers == 0 {
		t.Errorf("clusterz failovers = 0 after follower-served reads")
	}
	if len(cz.Tables) != 1 {
		t.Fatalf("clusterz tables = %+v, want exactly diff", cz.Tables)
	}
	ct := cz.Tables[0]
	if len(ct.Versions) != 2 || ct.Versions[0] != -1 || ct.Versions[1] < 0 {
		t.Errorf("clusterz versions = %v, want [-1, >=0]", ct.Versions)
	}
	if len(ct.ReplicaLag) != 2 || len(ct.ReplicaLag[0]) != 1 || ct.ReplicaLag[0][0] != -1 {
		t.Errorf("clusterz replicaLag = %v, want [-1] for the dead shard", ct.ReplicaLag)
	}
	if len(ct.ReplicaLag) == 2 && len(ct.ReplicaLag[1]) == 1 && ct.ReplicaLag[1][0] != 0 {
		t.Errorf("clusterz replicaLag[1] = %v, want [0] for a synced follower", ct.ReplicaLag[1])
	}

	// Mutations never fail over: the batch hits the dead primary and
	// reports a bad-gateway dependency failure, not a silent write to
	// the read-only mirror. (Last: the live shard's leg commits — batch
	// atomicity is per shard — which would skew the lag probe above.)
	breq, _ := json.Marshal(serve.BatchRequest{Add: fixtureRows(4, 7)})
	resp, err := http.Post(tc.co.URL+"/tables/diff/rows:batch", "application/json", bytes.NewReader(breq))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("batch against a dead primary: HTTP %d, want 502", resp.StatusCode)
	}
}

// TestFailoverVersionPinning: a follower lagging behind the version a
// query's statistics pinned must answer 412, and the coordinator
// surfaces the failure rather than serving the stale mirror.
func TestFailoverVersionPinning(t *testing.T) {
	rows := fixtureRows(80, 5)
	spec := fixtureSpec("diff", rows)
	tc := newReplicatedTestCluster(t, 2, spec)
	tc.syncFollowers()

	// Advance the primaries past the mirrors: the followers stay at the
	// bootstrap version while every primary commits one more batch.
	var bresp serve.BatchResponse
	tc.postJSON(tc.co.URL+"/tables/diff/rows:batch",
		serve.BatchRequest{Add: fixtureRows(40, 6)}, &bresp, http.StatusOK)

	tc.killPrimary(0)

	// The scatter pins to the stats-fetch version. Stats now come from
	// the stale follower (version 0 for shard 0), so the query leg pins
	// to what the follower *can* serve — the result is the union at the
	// follower's snapshot, never a torn mix, and it must succeed.
	got := tc.query(tc.co.URL, "diff", serve.QueryRequest{Algo: "stss"})
	if got.Count == 0 {
		t.Fatalf("pinned failover query returned nothing")
	}

	// But a client explicitly demanding the post-batch version from the
	// dead shard's mirror gets a precondition failure, not stale data:
	// ask the follower directly for a version it does not have.
	furl := tc.coord.replicas[0][0].base
	resp, err := http.Get(fmt.Sprintf("%s/tables/diff?minVersion=%d", furl, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Errorf("stale follower at minVersion=1: HTTP %d, want 412", resp.StatusCode)
	}
}

// TestCoordinatorCatalogRestart is the restart-era bugfix acceptance: a
// range-partitioned table's bounds survive a coordinator restart
// through the durable catalog — Adopt restores real placement instead
// of silently falling back to hash routing.
func TestCoordinatorCatalogRestart(t *testing.T) {
	const n = 2
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		shard := serve.NewWithConfig(serve.Config{
			CacheCapacity: 8,
			Shard:         &serve.ShardIdentity{Index: i, Count: n},
		})
		ts := httptest.NewServer(shard.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	cat := store.NewMem()
	ctx := context.Background()

	co1, err := New(Config{Shards: urls, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	spec := fixtureSpec("ranged", fixtureRows(120, 11))
	spec.Partition = &serve.PartitionSpec{By: "range", Column: "x", Bounds: []int64{500}}
	if _, err := co1.CreateTable(ctx, spec); err != nil {
		t.Fatal(err)
	}
	want := co1.table("ranged").part.spec()

	// "Restart": a fresh coordinator over the same shards and the same
	// catalog store. Adopt must come back with the range spec intact.
	co2, err := New(Config{Shards: urls, Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := co2.Adopt(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 1 || adopted[0] != "ranged" {
		t.Fatalf("adopted %v, want [ranged]", adopted)
	}
	got := co2.table("ranged").part.spec()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("adopted partition spec %+v, want %+v", got, want)
	}
	if got.By != "range" || !reflect.DeepEqual(got.Bounds, []int64{500}) {
		t.Fatalf("adopted spec lost its range bounds: %+v", got)
	}

	// Routing proof, not just metadata: a post-restart add below the
	// split point lands on shard 0.
	var before, after serve.TableInfo
	getJSON(t, urls[0]+"/tables/ranged", &before)
	if _, err := co2.Batch(ctx, co2.table("ranged"),
		serve.BatchRequest{Add: []serve.RowSpec{{TO: []int64{100, 100}, PO: []string{"a", "t1"}}}}); err != nil {
		t.Fatal(err)
	}
	getJSON(t, urls[0]+"/tables/ranged", &after)
	if after.Rows != before.Rows+1 {
		t.Errorf("post-restart add below the bound: shard 0 grew %d→%d rows, want +1 (hash fallback?)",
			before.Rows, after.Rows)
	}

	// A coordinator with a different shard count must refuse the catalog
	// outright — adopting 2-shard placement onto 1 shard is corruption.
	if _, err := New(Config{Shards: urls[:1], Catalog: cat}); err == nil {
		t.Errorf("New accepted a catalog recorded for %d shards on a 1-shard cluster", n)
	}

	// And without a durable catalog, range-partitioned creates are
	// refused up front — the spec would be unrecoverable.
	co3, err := New(Config{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	spec2 := fixtureSpec("ranged2", fixtureRows(40, 12))
	spec2.Partition = &serve.PartitionSpec{By: "range", Bounds: []int64{500}}
	if _, err := co3.CreateTable(ctx, spec2); err == nil {
		t.Errorf("catalog-less coordinator accepted a range-partitioned create")
	}
}

// TestDifferentialKillPrimaryMidWorkload is the satellite harness case:
// SIGKILL (in-process: sever all connections) one shard primary while a
// mixed buffered+streamed read workload is in flight. The contract is
// zero wrong answers — every response that arrives is set-equal to the
// single-node union — with a bounded number of failed queries, and a
// fully clean differential sweep once the failover has settled.
func TestDifferentialKillPrimaryMidWorkload(t *testing.T) {
	rows := fixtureRows(240, 99)
	spec := fixtureSpec("diff", rows)
	tc := newReplicatedTestCluster(t, 2, spec)

	// Mutation phase while everything is healthy: remove a slice of the
	// skyline, add fresh rows, mirror the union, then sync the mirrors
	// so the followers hold the exact pre-kill state.
	full := tc.query(tc.co.URL, "diff", serve.QueryRequest{Algo: "stss"})
	var batch serve.BatchRequest
	removed := make(map[string]int)
	for i, r := range full.Skyline {
		if i%4 != 0 {
			continue
		}
		batch.RemoveSharded = append(batch.RemoveSharded,
			serve.ShardRef{Shard: *r.Shard, Row: r.Row})
		removed[rowKey(&full.Skyline[i])]++
	}
	batch.Add = fixtureRows(30, 123)
	tc.postJSON(tc.co.URL+"/tables/diff/rows:batch", batch, nil, http.StatusOK)
	var union []serve.RowSpec
	for _, r := range rows {
		k := fmt.Sprintf("%v|%v", r.TO, r.PO)
		if removed[k] > 0 {
			removed[k]--
			continue
		}
		union = append(union, r)
	}
	union = append(union, batch.Add...)
	tc.resetSingle(fixtureSpec("diff", union))
	tc.syncFollowers()

	// Expected answers, computed once from the single-node union.
	expected := make(map[string][]string)
	for _, v := range variantQueries() {
		resp := tc.query(tc.single.URL, "diff", v.req)
		expected[v.name] = sortedKeys(resp.Skyline)
	}
	var skyline serve.QueryResponse
	getJSON(t, tc.single.URL+"/tables/diff/skyline", &skyline)
	skyKeys := sortedKeys(skyline.Skyline)

	// The workload: 4 clients looping the variant battery plus a
	// streamed skyline GET, racing the kill. Failures (a leg severed
	// mid-body) are counted and bounded; wrong answers are test errors.
	var okCount, failed, wrong atomic.Int64
	checkKeys := func(name string, got, want []string) {
		if !equalKeys(got, want) {
			wrong.Add(1)
			t.Errorf("mid-kill %s: wrong answer\n got:  %v\n want: %v", name, got, want)
		} else {
			okCount.Add(1)
		}
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for round := 0; round < 5; round++ {
				for _, v := range variantQueries() {
					body, _ := json.Marshal(v.req)
					resp, err := http.Post(tc.co.URL+"/tables/diff/query", "application/json", bytes.NewReader(body))
					if err != nil {
						failed.Add(1)
						continue
					}
					var out serve.QueryResponse
					decErr := json.NewDecoder(resp.Body).Decode(&out)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || decErr != nil {
						failed.Add(1)
						continue
					}
					checkKeys(v.name, sortedKeys(out.Skyline), expected[v.name])
				}
				// One streamed read per round: mid-body kills may end in an
				// error frame (a failed query); a trailer means the stream
				// completed and must carry the exact skyline.
				srows, done := streamQuietly(tc.co.URL + "/tables/diff/skyline?stream=1")
				if !done {
					failed.Add(1)
					continue
				}
				checkKeys("skyline-stream", sortedKeys(srows), skyKeys)
			}
		}()
	}
	close(start)
	tc.killPrimary(0)
	wg.Wait()

	total := okCount.Load() + failed.Load() + wrong.Load()
	if wrong.Load() != 0 {
		t.Fatalf("%d wrong answers out of %d mid-kill queries — failover must never trade correctness", wrong.Load(), total)
	}
	if okCount.Load() == 0 {
		t.Fatalf("no query succeeded across the kill window (%d failed)", failed.Load())
	}
	if failed.Load() > total/2 {
		t.Errorf("%d of %d mid-kill queries failed — failover should bound the blast radius", failed.Load(), total)
	}

	// Settled state: the full differential battery is clean with the
	// primary still dead — the follower carries its shard exactly.
	tc.sweep("post-kill", union)
	if tc.coord.failovers.Load() == 0 {
		t.Errorf("kill test ran without a single counted failover")
	}
}

// streamQuietly consumes one NDJSON stream without failing the test on
// transport errors: done=false reports any outcome other than a clean
// header→rows→trailer envelope.
func streamQuietly(url string) (rows []serve.SkylineRow, done bool) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	dec := json.NewDecoder(resp.Body)
	sawTrailer := false
	for {
		var rec serve.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			return rows, sawTrailer
		}
		switch rec.Type {
		case "row":
			if rec.Row != nil {
				rows = append(rows, *rec.Row)
			}
		case "trailer":
			sawTrailer = true
		case "error":
			return rows, false
		}
	}
}
