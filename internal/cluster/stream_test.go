package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// streamFrames issues one streamed request against base and decodes
// every NDJSON frame.
func streamFrames(t *testing.T, method, url string, body any) []serve.StreamRecord {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		t.Fatalf("%s %s: HTTP %d: %s", method, url, resp.StatusCode, msg)
	}
	var recs []serve.StreamRecord
	dec := json.NewDecoder(resp.Body)
	for {
		var rec serve.StreamRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return recs
		} else if err != nil {
			t.Fatalf("decode frame %d: %v", len(recs), err)
		}
		recs = append(recs, rec)
	}
}

// streamedRows splits a frame sequence into its row payloads and the
// trailer, requiring a clean header → rows → trailer envelope.
func streamedRows(t *testing.T, recs []serve.StreamRecord) ([]serve.SkylineRow, serve.StreamRecord) {
	t.Helper()
	if len(recs) < 2 || recs[0].Type != "header" {
		t.Fatalf("stream did not start with a header (%d frames)", len(recs))
	}
	last := recs[len(recs)-1]
	if last.Type != "trailer" {
		t.Fatalf("stream ended with %q (%s), want trailer", last.Type, last.Error)
	}
	var rows []serve.SkylineRow
	for _, rec := range recs[1 : len(recs)-1] {
		switch rec.Type {
		case "row":
			if rec.Row == nil {
				t.Fatal("row frame without a row")
			}
			rows = append(rows, *rec.Row)
		case "heartbeat":
		default:
			t.Fatalf("unexpected mid-stream frame %q (%s)", rec.Type, rec.Error)
		}
	}
	return rows, last
}

// checkTrailerMeta asserts the trailer identifies the complete cluster:
// an n-entry version vector summing to the buffered response's version
// — even when early termination canceled legs before their trailers.
func checkTrailerMeta(t *testing.T, name string, trailer serve.StreamRecord, n int, version int64) {
	t.Helper()
	if trailer.Cluster == nil {
		t.Fatalf("%s: trailer has no cluster metadata", name)
	}
	if trailer.Cluster.Shards != n || len(trailer.Cluster.Versions) != n {
		t.Fatalf("%s: trailer cluster %+v, want %d shards with a full version vector", name, trailer.Cluster, n)
	}
	var sum int64
	for _, v := range trailer.Cluster.Versions {
		sum += v
	}
	if sum != version || trailer.Version != version {
		t.Fatalf("%s: trailer version %d (vector sum %d), buffered %d", name, trailer.Version, sum, version)
	}
}

// TestStreamedScatterDifferential: the incremental streamed merge must
// deliver exactly the buffered scatter/gather's rows for every variant
// — planned, dynamic, ideal-fallback and the skyline route — and its
// unranked top-k must return K members of the full merged skyline with
// a complete trailer despite canceling legs early.
func TestStreamedScatterDifferential(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			rows := fixtureRows(260, int64(4000+n))
			tc := newTestCluster(t, n, fixtureSpec("diff", rows))
			queryURL := tc.co.URL + "/tables/diff/query"

			for _, v := range variantQueries() {
				buffered := tc.query(tc.co.URL, "diff", v.req)
				recs := streamFrames(t, http.MethodPost, queryURL+"?stream=1", v.req)
				got, trailer := streamedRows(t, recs)
				if !equalKeys(sortedKeys(got), sortedKeys(buffered.Skyline)) {
					t.Errorf("%s: streamed %v\n buffered %v", v.name, sortedKeys(got), sortedKeys(buffered.Skyline))
				}
				if trailer.Count != buffered.Count {
					t.Errorf("%s: trailer count %d, buffered %d", v.name, trailer.Count, buffered.Count)
				}
				checkTrailerMeta(t, v.name, trailer, n, buffered.Version)
				for i := range got {
					if got[i].Shard == nil {
						t.Errorf("%s: streamed row %d missing shard annotation", v.name, i)
						break
					}
				}
				if v.req.Explain && trailer.Plan == nil {
					t.Errorf("%s: explain=true trailer has no plan", v.name)
				}
			}

			// Dynamic (orders) and ideal-point queries: the ideal route
			// falls back to buffered replay, the plain dynamic one merges
			// incrementally — both must match their buffered twins.
			dyn := serve.QueryRequest{Orders: []serve.QueryOrder{
				{Edges: [][2]string{{"d", "a"}, {"d", "b"}}},
				{Edges: [][2]string{{"t3", "t2"}, {"t2", "t1"}}},
			}}
			for _, req := range []serve.QueryRequest{dyn, {Ideal: []int64{500, 500}, Orders: dyn.Orders}} {
				buffered := tc.query(tc.co.URL, "diff", req)
				got, trailer := streamedRows(t, streamFrames(t, http.MethodPost, queryURL+"?stream=1", req))
				name := "dynamic"
				if req.Ideal != nil {
					name = "dynamic-ideal"
				}
				if !equalKeys(sortedKeys(got), sortedKeys(buffered.Skyline)) {
					t.Errorf("%s: streamed rows diverge from buffered", name)
				}
				if trailer.Count != buffered.Count {
					t.Errorf("%s: trailer count %d, buffered %d", name, trailer.Count, buffered.Count)
				}
			}

			// Skyline GET route.
			var skyline serve.QueryResponse
			getJSON(t, tc.co.URL+"/tables/diff/skyline", &skyline)
			got, trailer := streamedRows(t, streamFrames(t, http.MethodGet, tc.co.URL+"/tables/diff/skyline?stream=1", nil))
			if !equalKeys(sortedKeys(got), sortedKeys(skyline.Skyline)) {
				t.Error("skyline: streamed rows diverge from buffered")
			}
			checkTrailerMeta(t, "skyline", trailer, n, skyline.Version)

			// Unranked top-k: K certified members of the full skyline, and
			// the trailer's version vector complete even though the legs
			// were canceled at the K-th certification.
			const k = 7
			member := make(map[string]int)
			for i := range skyline.Skyline {
				member[rowKey(&skyline.Skyline[i])]++
			}
			got, trailer = streamedRows(t, streamFrames(t, http.MethodPost, queryURL+"?stream=1", serve.QueryRequest{TopK: k}))
			wantLen := k
			if skyline.Count < k {
				wantLen = skyline.Count
			}
			if len(got) != wantLen {
				t.Errorf("topk: streamed %d rows, want %d", len(got), wantLen)
			}
			seen := make(map[string]int)
			for i := range got {
				key := rowKey(&got[i])
				seen[key]++
				if seen[key] > member[key] {
					t.Errorf("topk: streamed row %s not in the full skyline (or over-returned)", key)
				}
			}
			checkTrailerMeta(t, "topk", trailer, n, skyline.Version)

			// Ranked top-k rides the buffered fallback: rank-equal to the
			// buffered cluster answer by oracle score at every position.
			for _, rank := range []struct {
				name string
				req  serve.QueryRequest
				of   func(r *serve.SkylineRow) float64
			}{
				{"domcount", serve.QueryRequest{TopK: k, Rank: "domcount"},
					func(r *serve.SkylineRow) float64 { return -float64(domCountOracle(rows, r)) }},
				{"ideal", serve.QueryRequest{TopK: k, Rank: "ideal", Ideal: []int64{500, 500}},
					func(r *serve.SkylineRow) float64 { return idealScoreOracle(r, []int64{500, 500}) }},
			} {
				buffered := tc.query(tc.co.URL, "diff", rank.req)
				got, _ := streamedRows(t, streamFrames(t, http.MethodPost, queryURL+"?stream=1", rank.req))
				if len(got) != len(buffered.Skyline) {
					t.Errorf("topk-%s: streamed %d rows, buffered %d", rank.name, len(got), len(buffered.Skyline))
					continue
				}
				for i := range got {
					if gs, bs := rank.of(&got[i]), rank.of(&buffered.Skyline[i]); gs != bs {
						t.Errorf("topk-%s: position %d score %v streamed vs %v buffered — not rank-equal",
							rank.name, i, gs, bs)
					}
				}
			}
		})
	}
}

// truncatingProxy fronts one shard and tears streamed responses down
// after a few hundred bytes — the wire failure of a shard dying
// mid-stream: some frames arrive, the trailer never does.
func truncatingProxy(t *testing.T, shardURL string) *httptest.Server {
	t.Helper()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, shardURL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if !serve.WantsStream(r) {
			io.Copy(w, resp.Body)
			return
		}
		// Relay the header frame and a little more, then kill the
		// connection without a trailer.
		io.CopyN(w, resp.Body, 300)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// stallingProxy fronts one shard and pauses its streamed responses:
// the first stallAfter NDJSON lines are forwarded (and flushed), then
// the relay blocks until release is closed, then the rest of the
// stream flows. Buffered responses pass through whole.
func stallingProxy(t *testing.T, shardURL string, stallAfter int, release <-chan struct{}) *httptest.Server {
	t.Helper()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, shardURL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if !serve.WantsStream(r) {
			io.Copy(w, resp.Body)
			return
		}
		rd := bufio.NewReader(resp.Body)
		for lines := 0; ; lines++ {
			if lines == stallAfter {
				select {
				case <-release:
				case <-r.Context().Done():
					return
				}
			}
			line, err := rd.ReadBytes('\n')
			if len(line) > 0 {
				if _, werr := w.Write(line); werr != nil {
					return
				}
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
			}
			if err != nil {
				return
			}
		}
	}))
	t.Cleanup(proxy.Close)
	return proxy
}

// TestStreamedHashCertifyBeforeCompletion: under hash partitioning no
// shard's statistics min corner ever clears, so certification rides the
// dynamic streamed-key bound — rows must certify while the other leg is
// still mid-stream. One shard stalls after two row frames; the
// coordinator must keep emitting certified rows from the live shard
// (their keys are covered by the stalled shard's last-seen key) instead
// of waiting for the stalled leg to complete.
func TestStreamedHashCertifyBeforeCompletion(t *testing.T) {
	shard0 := httptest.NewServer(serve.NewWithConfig(serve.Config{
		Shard: &serve.ShardIdentity{Index: 0, Count: 2},
	}).Handler())
	t.Cleanup(shard0.Close)
	shard1 := httptest.NewServer(serve.NewWithConfig(serve.Config{
		Shard: &serve.ShardIdentity{Index: 1, Count: 2},
	}).Handler())
	t.Cleanup(shard1.Close)
	release := make(chan struct{})
	var released bool
	// Forward the shard's header and two keyed row frames, then stall.
	proxy := stallingProxy(t, shard1.URL, 3, release)

	coord, err := New(Config{Shards: []string{shard0.URL, proxy.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord.Handler(serve.New(8).Handler()))
	t.Cleanup(front.Close)

	// Anti-correlated TO-only rows, hash-partitioned (the default): every
	// row is in the skyline, both shards hold rows across the full value
	// range, and every shard's min corner threatens every candidate — the
	// static bound alone would emit nothing until a leg completes.
	const n = 400
	spec := serve.TableSpec{Name: "ac", TOColumns: []string{"x", "y"}}
	for i := 0; i < n; i++ {
		spec.Rows = append(spec.Rows, serve.RowSpec{TO: []int64{int64(i), int64(n - i)}})
	}
	buf, _ := json.Marshal(spec)
	resp, err := http.Post(front.URL+"/tables", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	sres, err := http.Get(front.URL + "/tables/ac/skyline?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	if sres.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d", sres.StatusCode)
	}
	frames := make(chan serve.StreamRecord)
	decErr := make(chan error, 1)
	go func() {
		dec := json.NewDecoder(sres.Body)
		for {
			var rec serve.StreamRecord
			if err := dec.Decode(&rec); err != nil {
				decErr <- err
				return
			}
			frames <- rec
		}
	}()

	rows := 0
	var trailer *serve.StreamRecord
	for trailer == nil {
		select {
		case rec := <-frames:
			switch rec.Type {
			case "row":
				rows++
				// Five certified rows arrived while shard 1's leg was
				// provably incomplete: the dynamic key bound is doing the
				// certification. Then let the stalled leg finish.
				if rows == 5 && !released {
					released = true
					close(release)
				}
			case "trailer":
				tr := rec
				trailer = &tr
			case "error":
				t.Fatalf("stream error: %s", rec.Error)
			}
		case err := <-decErr:
			t.Fatalf("stream ended after %d rows without a trailer: %v", rows, err)
		case <-time.After(30 * time.Second):
			if !released {
				t.Fatalf("no certified rows while the slow leg was stalled after %d rows — dynamic key bound not certifying", rows)
			}
			t.Fatalf("stream did not finish after release (%d rows)", rows)
		}
	}
	if !released {
		t.Fatal("trailer arrived before any mid-stall certification")
	}
	if rows != n || trailer.Count != n {
		t.Fatalf("streamed %d rows, trailer count %d, want %d", rows, trailer.Count, n)
	}
	checkTrailerMeta(t, "hash-certify", *trailer, 2, trailer.Version)
}

// TestStreamedDeadShardLeg: when a shard's stream dies before its
// trailer, the coordinator must end the client stream with an "error"
// frame — a torn leg can never pass off a partial merge as complete —
// and the coordinator keeps serving afterwards.
func TestStreamedDeadShardLeg(t *testing.T) {
	shard0 := httptest.NewServer(serve.NewWithConfig(serve.Config{
		Shard: &serve.ShardIdentity{Index: 0, Count: 2},
	}).Handler())
	t.Cleanup(shard0.Close)
	shard1 := httptest.NewServer(serve.NewWithConfig(serve.Config{
		Shard: &serve.ShardIdentity{Index: 1, Count: 2},
	}).Handler())
	t.Cleanup(shard1.Close)
	proxy := truncatingProxy(t, shard1.URL)

	coord, err := New(Config{Shards: []string{shard0.URL, proxy.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord.Handler(serve.New(8).Handler()))
	t.Cleanup(front.Close)

	spec := fixtureSpec("diff", fixtureRows(400, 99))
	buf, _ := json.Marshal(spec)
	resp, err := http.Post(front.URL+"/tables", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	recs := streamFrames(t, http.MethodPost, front.URL+"/tables/diff/query?stream=1",
		serve.QueryRequest{Subspace: []string{"x", "y"}})
	last := recs[len(recs)-1]
	if last.Type != "error" {
		t.Fatalf("stream over a dead shard ended with %q, want an error frame", last.Type)
	}
	if !strings.Contains(last.Error, "shard 1") {
		t.Fatalf("error %q does not name the dead shard", last.Error)
	}

	// The coordinator survives the torn leg: buffered queries (which the
	// proxy forwards whole) still answer.
	var out serve.QueryResponse
	buf, _ = json.Marshal(serve.QueryRequest{Subspace: []string{"x", "y"}})
	resp, err = http.Post(front.URL+"/tables/diff/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buffered query after torn stream: %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count == 0 {
		t.Fatal("buffered query after torn stream returned no rows")
	}
}
