package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/poset"
	"repro/internal/serve"
)

// Streamed scatter/gather: instead of the gather-then-merge barrier
// (wait for every shard, then eliminate), the coordinator consumes the
// shard legs as streams and certifies rows incrementally. A gathered
// row r is *globally certified* — provably in the merged skyline — as
// soon as
//
//  1. no gathered candidate t-dominates it, and
//  2. no still-streaming shard (other than r's own; a shard's stream is
//     its local skyline, so same-shard rows never dominate each other)
//     could still hold a dominator. Shard s is ruled out two ways:
//     statically, while its statistics min corner is componentwise > r
//     on some kept TO dimension (every row of s is coordinate-wise ≥
//     that corner, so such a corner rules out every dominator s could
//     produce, regardless of PO values); or dynamically, once s's
//     last-seen emission key reaches r's key — cursor legs stream in
//     non-decreasing L1 mindist key order and a strict t-dominator
//     always has a strictly smaller key than the row it dominates, so
//     everything s can still send has key ≥ key(r) > key(any dominator
//     of r). The dynamic bound is what makes hash partitioning
//     progressive: every shard's min corner sits near the origin and
//     never clears statically, but interleaved key-ordered legs clear
//     each other continuously. Replayed legs carry no keys and fall
//     back to the static bound.
//
// Certified rows are emitted immediately and never revoked: a later
// arrival from shard s cannot dominate r, because at certification time
// s was either complete (all its rows already compared) or not a threat
// (every row it can still send is strictly worse somewhere). Under
// range partitioning the best shard's rows certify while slower shards
// are still computing — first-K latency is bounded by the fastest
// relevant shard, not the slowest leg. Unranked top-k stops the scatter
// outright once K rows certify (each certified row already beats every
// remaining shard bound), cancelling the remaining legs mid-traversal
// instead of over-fetching every shard's full local skyline.

// streamLimit parses the ?limit query parameter of a streamed route.
func streamLimit(r *http.Request) (int, error) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad limit=%q: %w", v, err)
	}
	return n, nil
}

// HandleQueryStream answers POST /tables/{t}/query?stream=1 at the
// coordinator. Unranked planner-mode queries and plain dynamic queries
// take the incremental merge; ranked top-k (global re-rank needs every
// candidate), ideal-point transforms (statistics corners are
// meaningless on transformed coordinates) and baseline runs compute
// buffered and replay their rows, so every request shape shares the
// stream framing.
func (co *Coordinator) HandleQueryStream(w http.ResponseWriter, r *http.Request, ct *ctable, req serve.QueryRequest) {
	co.queries.Add(1)
	limit, err := streamLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if limit == 0 {
		limit = req.Limit
	}
	if req.PlanMode() {
		co.streamPlanQuery(w, r, ct, req, limit)
		return
	}
	if req.HasPlanFields() {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"subspace/where/topK/rank/algo/parallel/explain cannot combine with orders/baseline (dynamic queries run dTSS as-is)"))
		return
	}
	co.streamDynamicQuery(w, r, ct, req, limit)
}

// streamPlanQuery streams a planner-mode scatter: plan once, fan the
// per-shard streamed request out, merge incrementally. Only request
// validation happens before the stream opens (client errors deserve an
// HTTP status); the statistics fetch and the plan run inside the
// producer, so heartbeats flow while they are in flight instead of the
// client staring at a silent pre-stream pause.
func (co *Coordinator) streamPlanQuery(w http.ResponseWriter, r *http.Request, ct *ctable, req serve.QueryRequest, limit int) {
	q, err := ct.schema.PlanQuery(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if q.Rank != plan.RankNone || len(q.FWeights) > 0 {
		// Ranked top-k: scores are global, so the re-rank needs every
		// merged candidate. Weight-restricted skylines: the incremental
		// merge certifies by t-dominance only, and the cross-shard
		// F-dominance elimination needs the full union. Both compute
		// buffered and replay.
		co.streamBuffered(w, r, ct, limit, func(ctx context.Context) (*serve.QueryResponse, error) {
			return co.planQuery(ctx, ct, req)
		})
		return
	}

	sreq := req
	sreq.TopK, sreq.Rank, sreq.Ideal = 0, "", nil
	sreq.Limit, sreq.Explain = 0, false
	if sreq.Algo == "" {
		// Pin sTSS rather than the buffered cost-based choice: the
		// streamed path optimizes time-to-first-row, and only the
		// progressive cursor emits shard rows before the local run
		// finishes (a first-K cancellation then stops the shard's
		// traversal mid-flight instead of after a full materialization).
		sreq.Algo = "stss"
	}

	keptTO, keptPO := identityDims(ct.schema.NumTO()), identityDims(ct.schema.NumPO())
	if q.Subspace != nil {
		keptTO, keptPO = q.Subspace.TO, q.Subspace.PO
	}
	doms := make([]*poset.Domain, len(keptPO))
	for j, d := range keptPO {
		doms[j] = ct.domains[d]
	}
	g := &gather{ct: ct, keptTO: keptTO, keptPO: keptPO, doms: doms}
	sm := &streamMerge{
		co: co, g: g, topK: req.TopK, limit: limit, algo: sreq.Algo,
		open: func(ctx context.Context, i int) (io.ReadCloser, error) {
			return co.openShardStream(ctx, i, http.MethodPost, co.shards[i].tablePath(ct.name, "/query?stream=1"), g.pin(i), sreq)
		},
	}
	sm.prepare = func(ctx context.Context) error {
		stats, err := co.ShardStats(ctx, ct)
		if err != nil {
			return err
		}
		g.stats = stats
		explain, err := co.planOnce(ct, q, stats)
		if err != nil {
			return err
		}
		explain.Algorithm = sreq.Algo
		if req.Explain {
			sm.explain = explain
		}
		return nil
	}
	sm.run(w, r, ct)
}

// streamDynamicQuery streams a dTSS-mode scatter. Plain dynamic queries
// (request preference DAGs, no ideal transform) merge incrementally
// under the request's domains; the statistics corners stay valid
// because the coordinates are untransformed.
func (co *Coordinator) streamDynamicQuery(w http.ResponseWriter, r *http.Request, ct *ctable, req serve.QueryRequest, limit int) {
	if req.Baseline && req.Ideal != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("baseline does not support ideal-point queries"))
		return
	}
	doms, err := ct.schema.QueryDomains(req.Orders)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Ideal != nil && len(req.Ideal) != ct.schema.NumTO() {
		writeError(w, http.StatusBadRequest, fmt.Errorf("ideal point has %d values, table has %d TO columns",
			len(req.Ideal), ct.schema.NumTO()))
		return
	}
	bufferedCompute := func(ctx context.Context) (*serve.QueryResponse, error) {
		return co.dynamicQuery(ctx, ct, req)
	}
	if req.Baseline || req.Ideal != nil {
		co.streamBuffered(w, r, ct, limit, bufferedCompute)
		return
	}
	sreq := req
	sreq.Limit = 0
	g := &gather{
		ct:     ct,
		keptTO: identityDims(ct.schema.NumTO()),
		keptPO: identityDims(ct.schema.NumPO()),
		doms:   doms,
	}
	sm := &streamMerge{
		co: co, g: g, limit: limit,
		open: func(ctx context.Context, i int) (io.ReadCloser, error) {
			return co.openShardStream(ctx, i, http.MethodPost, co.shards[i].tablePath(ct.name, "/query?stream=1"), g.pin(i), sreq)
		},
	}
	// The statistics fetch runs inside the producer (heartbeats flow
	// while it is in flight). Without statistics there are no shard
	// corner bounds, hence no sound incremental certification — fall
	// back to buffered replay within the already-open stream.
	sm.prepare = func(ctx context.Context) error {
		if stats, err := co.ShardStats(ctx, ct); err == nil {
			g.stats = stats
		} else {
			sm.fallback = bufferedCompute
		}
		return nil
	}
	sm.run(w, r, ct)
}

// HandleSkylineStream answers GET /tables/{t}/skyline?stream=1: the
// static skyline as an incrementally merged stream, ?algo/?parallel
// passed through to the shard legs.
func (co *Coordinator) HandleSkylineStream(w http.ResponseWriter, r *http.Request, ct *ctable) {
	co.queries.Add(1)
	limit, err := streamLimit(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scatterParams := url.Values{"stream": []string{"1"}}
	for _, k := range []string{"algo", "parallel"} {
		if v := r.URL.Query().Get(k); v != "" {
			scatterParams.Set(k, v)
		}
	}
	path := "/skyline?" + scatterParams.Encode()
	g := &gather{
		ct:     ct,
		keptTO: identityDims(ct.schema.NumTO()),
		keptPO: identityDims(ct.schema.NumPO()),
		doms:   ct.domains,
	}
	sm := &streamMerge{
		co: co, g: g, limit: limit, algo: r.URL.Query().Get("algo"),
		open: func(ctx context.Context, i int) (io.ReadCloser, error) {
			return co.openShardStream(ctx, i, http.MethodGet, co.shards[i].tablePath(ct.name, path), g.pin(i), nil)
		},
	}
	query := r.URL.Query()
	sm.prepare = func(ctx context.Context) error {
		if stats, err := co.ShardStats(ctx, ct); err == nil {
			g.stats = stats
		} else {
			// No statistics, no corner bounds, no sound incremental
			// certification — buffered replay inside the open stream.
			sm.fallback = func(ctx context.Context) (*serve.QueryResponse, error) {
				return co.Skyline(ctx, ct, query)
			}
		}
		return nil
	}
	sm.run(w, r, ct)
}

// streamBuffered renders a buffered coordinator answer through the
// stream framing: header, every (limit-truncated) row, trailer. The
// compute runs inside the producer, so heartbeats cover it.
func (co *Coordinator) streamBuffered(w http.ResponseWriter, r *http.Request, ct *ctable, limit int,
	compute func(ctx context.Context) (*serve.QueryResponse, error)) {
	header := serve.StreamRecord{Type: "header", Table: ct.name}
	serve.StreamResponse(w, r, co.streamHeartbeat, header, bufferedProduce(limit, compute))
}

// bufferedProduce is the stream producer replaying one buffered
// coordinator answer: compute, emit rows, return the trailer.
func bufferedProduce(limit int, compute func(ctx context.Context) (*serve.QueryResponse, error)) func(context.Context, func(serve.StreamRecord) error) (serve.StreamRecord, error) {
	return func(ctx context.Context, emit func(serve.StreamRecord) error) (serve.StreamRecord, error) {
		start := time.Now()
		resp, err := compute(ctx)
		if err != nil {
			return serve.StreamRecord{}, err
		}
		for i := range resp.Skyline {
			if limit > 0 && i >= limit {
				break
			}
			row := resp.Skyline[i]
			rec := serve.StreamRecord{Type: "row", Row: &row, Emission: i, Elapsed: time.Since(start).Seconds()}
			if err := emit(rec); err != nil {
				return serve.StreamRecord{}, err
			}
		}
		return serve.StreamRecord{
			Type: "trailer", Version: resp.Version, Count: resp.Count,
			Metrics: &resp.Metrics, CacheHit: resp.CacheHit, Algo: resp.Algo,
			Plan: resp.Plan, Cluster: resp.Cluster,
		}, nil
	}
}

// shardBound is one shard's threat classification for certification.
type shardBound struct {
	corner []int64 // kept-TO statistics min corner; nil when unknown
	empty  bool    // shard holds no rows — never a threat
}

// threatens reports whether an incomplete shard with this bound could
// still stream a row dominating pt (conservative: corner componentwise
// ≤ on every kept TO dimension; PO values are unknown, so they never
// clear a shard).
func (b *shardBound) threatens(pt *core.Point) bool {
	if b.empty {
		return false
	}
	if b.corner == nil {
		return true
	}
	for j, c := range b.corner {
		if c > int64(pt.TO[j]) {
			return false
		}
	}
	return true
}

// legEvent is one decoded frame (or failure) of one shard leg.
type legEvent struct {
	shard int
	rec   serve.StreamRecord
	err   error // terminal leg failure; rec is invalid
}

// streamMerge is one incremental scatter/merge execution.
type streamMerge struct {
	co      *Coordinator
	g       *gather       // kept dims, dominance oracle, per-shard stats
	topK    int           // unranked top-k: stop after this many certified rows
	limit   int           // emission truncation; certification continues
	algo    string        // trailer algo annotation
	explain *plan.Explain // attached to the trailer when non-nil
	open    func(ctx context.Context, shard int) (io.ReadCloser, error)
	// prepare runs at the top of the producer — after the header, under
	// heartbeat cover — to fetch statistics and plan. It may set
	// fallback instead of g.stats to divert the whole request to a
	// buffered replay inside the already-open stream.
	prepare  func(ctx context.Context) error
	fallback func(ctx context.Context) (*serve.QueryResponse, error)
}

func (sm *streamMerge) run(w http.ResponseWriter, r *http.Request, ct *ctable) {
	header := serve.StreamRecord{Type: "header", Table: ct.name}
	serve.StreamResponse(w, r, sm.co.streamHeartbeat, header, sm.produce)
}

// leg opens one shard stream and forwards its frames as events. A
// decode error before the trailer (a torn mid-query stream) surfaces as
// a leg failure, never as silent truncation.
func (sm *streamMerge) leg(ctx context.Context, shard int, events chan<- legEvent) {
	body, err := sm.open(ctx, shard)
	if err != nil {
		events <- legEvent{shard: shard, err: err}
		return
	}
	defer body.Close()
	dec := json.NewDecoder(body)
	for {
		var rec serve.StreamRecord
		if err := dec.Decode(&rec); err != nil {
			events <- legEvent{shard: shard, err: fmt.Errorf("shard %d: stream ended before trailer: %w", shard, err)}
			return
		}
		switch rec.Type {
		case "heartbeat":
			// The coordinator emits its own heartbeats toward the client.
		case "error":
			events <- legEvent{shard: shard, err: fmt.Errorf("shard %d: %s", shard, rec.Error)}
			return
		case "row":
			if rec.Row == nil {
				events <- legEvent{shard: shard, err: fmt.Errorf("shard %d: row record without a row", shard)}
				return
			}
			events <- legEvent{shard: shard, rec: rec}
		case "trailer":
			events <- legEvent{shard: shard, rec: rec}
			return
		default: // "header" and forward-compatible record types
			events <- legEvent{shard: shard, rec: rec}
		}
	}
}

// produce runs the merge loop against the leg streams.
func (sm *streamMerge) produce(ctx context.Context, emit func(serve.StreamRecord) error) (serve.StreamRecord, error) {
	if sm.prepare != nil {
		if err := sm.prepare(ctx); err != nil {
			return serve.StreamRecord{}, err
		}
	}
	if sm.fallback != nil {
		return bufferedProduce(sm.limit, sm.fallback)(ctx, emit)
	}
	start := time.Now()
	n := len(sm.co.shards)
	legCtx, cancel := context.WithCancel(ctx)
	events := make(chan legEvent, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sm.leg(legCtx, i, events)
		}(i)
	}
	go func() {
		wg.Wait()
		close(events)
	}()
	// On every exit, cancel the remaining legs and drain their events so
	// no goroutine blocks on a send into an abandoned channel.
	defer func() {
		cancel()
		for range events { //nolint:revive // intentional drain
		}
	}()

	// Per-shard bookkeeping, pre-seeded from the statistics snapshot so
	// the trailer's version vector is complete even for legs cancelled
	// by an early top-k stop.
	bounds := make([]shardBound, n)
	versions := make([]int64, n)
	shardRows := make([]int, n)
	complete := make([]bool, n)
	for i := 0; i < n && i < len(sm.g.stats); i++ {
		st := sm.g.stats[i]
		versions[i] = st.Version
		shardRows[i] = st.Rows
		if c, ok := sm.g.corner(i); ok {
			bounds[i].corner = c
		} else if st.Stats != nil && st.Stats.Rows == 0 {
			bounds[i].empty = true
		}
	}

	type mcand struct {
		c         candidate
		key       *int64 // emission key on cursor-leg rows; nil otherwise
		certified bool
	}
	var alive []mcand
	var metrics core.MetricsExport
	trailers, cacheHits, certified, emitted := 0, 0, 0, 0

	// Per-shard streamed-key progress: cursor legs annotate each row with
	// its non-decreasing L1 mindist key, and a strict t-dominator always
	// has a strictly smaller key than the row it dominates — so once
	// shard s's last-seen key reaches a candidate's key, nothing s can
	// still send dominates that candidate, even when s's static min
	// corner never clears (hash partitioning puts every corner near the
	// origin). Replayed legs (cache hits, dTSS, forced algorithms) send
	// no keys and stay on the conservative corner bound.
	lastKey := make([]int64, n)
	haveKey := make([]bool, n)

	// certifySweep certifies and emits every pending candidate no
	// incomplete foreign shard threatens. Returns done=true once an
	// unranked top-k has its K rows.
	certifySweep := func() (bool, error) {
		for i := range alive {
			p := &alive[i]
			if p.certified {
				continue
			}
			threatened := false
			for s := 0; s < n && !threatened; s++ {
				if s == p.c.shard || complete[s] {
					continue
				}
				if p.key != nil && haveKey[s] && lastKey[s] >= *p.key {
					continue
				}
				threatened = bounds[s].threatens(&p.c.pt)
			}
			if threatened {
				continue
			}
			p.certified = true
			certified++
			if sm.limit == 0 || emitted < sm.limit {
				shard := p.c.shard
				row := p.c.row
				row.Shard = &shard
				rec := serve.StreamRecord{Type: "row", Row: &row, Emission: certified - 1, Elapsed: time.Since(start).Seconds()}
				if err := emit(rec); err != nil {
					return false, err
				}
				emitted++
			}
			if sm.topK > 0 && certified == sm.topK {
				return true, nil
			}
		}
		return false, nil
	}

	finish := func() (serve.StreamRecord, error) {
		var version int64
		rowsTot := 0
		for i := 0; i < n; i++ {
			version += versions[i]
			rowsTot += shardRows[i]
		}
		metrics.Shards = n
		trailer := serve.StreamRecord{
			Type: "trailer", Version: version, Rows: rowsTot, Count: certified,
			Metrics: &metrics, CacheHit: trailers > 0 && cacheHits == trailers,
			Algo:    sm.algo,
			Cluster: &serve.ClusterMeta{Shards: n, Versions: versions},
		}
		if sm.explain != nil {
			sm.explain.ObservedSeconds = time.Since(start).Seconds()
			sm.explain.ObservedSkyline = certified
			sm.explain.CacheHit = trailer.CacheHit
			trailer.Plan = sm.explain
		}
		return trailer, nil
	}

	for ev := range events {
		if ev.err != nil {
			return serve.StreamRecord{}, ev.err
		}
		switch ev.rec.Type {
		case "header":
			versions[ev.shard] = ev.rec.Version
			shardRows[ev.shard] = ev.rec.Rows
			continue
		case "row":
			pt, err := sm.g.point(ev.rec.Row)
			if err != nil {
				return serve.StreamRecord{}, err
			}
			// Every keyed arrival advances its shard's progress bound,
			// whether or not the row survives as a candidate.
			if ev.rec.Key != nil {
				lastKey[ev.shard] = *ev.rec.Key
				haveKey[ev.shard] = true
			}
			c := candidate{shard: ev.shard, row: *ev.rec.Row, pt: pt}
			dominated := false
			for i := range alive {
				if core.DominatesUnder(sm.g.doms, &alive[i].c.pt, &c.pt) {
					dominated = true
					break
				}
			}
			if dominated {
				continue
			}
			// The arrival may retire pending candidates; certified rows
			// are un-dominatable by construction and always survive.
			kept := alive[:0]
			for i := range alive {
				if !alive[i].certified && core.DominatesUnder(sm.g.doms, &c.pt, &alive[i].c.pt) {
					continue
				}
				kept = append(kept, alive[i])
			}
			alive = append(kept, mcand{c: c, key: ev.rec.Key})
		case "trailer":
			complete[ev.shard] = true
			trailers++
			if ev.rec.CacheHit {
				cacheHits++
			}
			if ev.rec.Metrics != nil {
				addMetrics(&metrics, ev.rec.Metrics)
			}
		default:
			continue // forward-compatible: ignore unknown record types
		}
		done, err := certifySweep()
		if err != nil {
			return serve.StreamRecord{}, err
		}
		if done {
			return finish()
		}
	}
	// All legs complete: every remaining pending candidate survived the
	// full gather and certifies now.
	if _, err := certifySweep(); err != nil {
		return serve.StreamRecord{}, err
	}
	return finish()
}
