package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
	"repro/internal/store"
)

// TestHashPartitioner pins determinism and spread.
func TestHashPartitioner(t *testing.T) {
	sc, err := serve.NewSchema([]string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := newPartitioner(nil, sc, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < 400; i++ {
		r := serve.RowSpec{TO: []int64{int64(i)}}
		si := p.route(r)
		if si != p.route(r) {
			t.Fatal("hash routing not deterministic")
		}
		if si < 0 || si >= 4 {
			t.Fatalf("shard %d out of range", si)
		}
		seen[si]++
	}
	for s := 0; s < 4; s++ {
		if seen[s] == 0 {
			t.Fatalf("shard %d received no rows: %v", s, seen)
		}
	}
}

// TestHashPartitionerStructuredRows: FNV-1a's low bits are linear in
// the input, so without avalanche mixing `hash % 2` is constant over
// anti-correlated rows (i, n−i) with n even — every row would land on
// one shard. Both shards must get a healthy share.
func TestHashPartitionerStructuredRows(t *testing.T) {
	sc, err := serve.NewSchema([]string{"x", "y"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := newPartitioner(nil, sc, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	seen := make(map[int]int)
	for i := 0; i < n; i++ {
		seen[p.route(serve.RowSpec{TO: []int64{int64(i), int64(n - i)}})]++
	}
	for s := 0; s < 2; s++ {
		if seen[s] < n/4 {
			t.Fatalf("shard %d got %d of %d structured rows (%v) — degenerate hash routing", s, seen[s], n, seen)
		}
	}
}

// TestRangePartitioner covers explicit and derived bounds.
func TestRangePartitioner(t *testing.T) {
	sc, err := serve.NewSchema([]string{"x", "y"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := newPartitioner(&serve.PartitionSpec{By: "range", Column: "y", Bounds: []int64{10, 20}}, sc, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		y    int64
		want int
	}{{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {999, 2}} {
		if got := p.route(serve.RowSpec{TO: []int64{0, tc.y}}); got != tc.want {
			t.Errorf("y=%d routed to %d, want %d", tc.y, got, tc.want)
		}
	}
	// Derived bounds split the create's rows roughly evenly.
	var rows []serve.RowSpec
	for i := 0; i < 90; i++ {
		rows = append(rows, serve.RowSpec{TO: []int64{int64(i), 0}})
	}
	p2, err := newPartitioner(&serve.PartitionSpec{By: "range"}, sc, rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for _, r := range rows {
		counts[p2.route(r)]++
	}
	for s, c := range counts {
		if c < 20 || c > 40 {
			t.Fatalf("derived bounds unbalanced: shard %d got %d of 90 (%v)", s, c, counts)
		}
	}
	// Error cases.
	if _, err := newPartitioner(&serve.PartitionSpec{By: "range"}, sc, nil, 2); err == nil {
		t.Fatal("range with neither bounds nor rows accepted")
	}
	if _, err := newPartitioner(&serve.PartitionSpec{By: "zebra"}, sc, nil, 2); err == nil {
		t.Fatal("unknown partitioning accepted")
	}
	if _, err := newPartitioner(&serve.PartitionSpec{By: "range", Bounds: []int64{5, 2}}, sc, nil, 3); err == nil {
		t.Fatal("descending bounds accepted")
	}
}

// TestShardPruning builds the textbook pruning scenario: correlated
// data range-partitioned on x, so the low shard's rows dominate the
// high shard's entire region — the high shard must be skipped, with
// results identical to the unpruned single node.
func TestShardPruning(t *testing.T) {
	// TO-only table: pruning needs no PO-top condition. y is floored at
	// 10 so a later y=0 insert is incomparable to every original row.
	var rows []serve.RowSpec
	for i := 0; i < 120; i++ {
		rows = append(rows, serve.RowSpec{TO: []int64{int64(i * 3), int64(10 + i*3 + i%7)}})
	}
	spec := serve.TableSpec{
		Name:      "corr",
		TOColumns: []string{"x", "y"},
		Rows:      rows,
		Partition: &serve.PartitionSpec{By: "range", Column: "x"},
	}

	urls := make([]string, 2)
	for i := range urls {
		ts := httptest.NewServer(serve.New(8).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	// Range-partitioned creates need a durable catalog.
	co, err := New(Config{Shards: urls, Catalog: store.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(co.Handler(serve.New(8).Handler()))
	t.Cleanup(front.Close)

	single := httptest.NewServer(func() http.Handler {
		s := serve.New(8)
		plain := spec
		plain.Partition = nil
		if _, err := s.CreateTable(plain); err != nil {
			t.Fatal(err)
		}
		return s.Handler()
	}())
	t.Cleanup(single.Close)

	tc := &testCluster{t: t, co: front, single: single}
	tc.postJSON(front.URL+"/tables", spec, nil, http.StatusCreated)

	resp := tc.query(front.URL, "corr", serve.QueryRequest{Algo: "stss"})
	if resp.Cluster == nil {
		t.Fatal("coordinator response carries no cluster metadata")
	}
	if len(resp.Cluster.Pruned) != 1 || resp.Cluster.Pruned[0] != 1 {
		t.Fatalf("pruned shards %v, want [1] (high-x shard dominated by low-x rows)", resp.Cluster.Pruned)
	}
	if resp.Rows != len(rows) {
		t.Fatalf("rows %d, want %d (pruned shard counted from stats)", resp.Rows, len(rows))
	}
	ref := tc.query(single.URL, "corr", serve.QueryRequest{Algo: "stss"})
	tc.checkSetEqual("pruned-query", resp, ref)

	// A repeat of the same planner query hits every contacted shard's
	// snapshot memo, and the coordinator relays that in cacheHit —
	// single-node wire parity.
	again := tc.query(front.URL, "corr", serve.QueryRequest{Algo: "stss"})
	if !again.CacheHit {
		t.Fatal("repeat planner query did not report the shards' cache hit")
	}
	tc.checkSetEqual("pruned-query-repeat", again, ref)

	// Anti-correlated rows added to the high shard un-prune it: a row
	// with tiny y cannot be dominated through the corner.
	var batch serve.BatchRequest
	batch.Add = []serve.RowSpec{{TO: []int64{900, 0}}}
	tc.postJSON(front.URL+"/tables/corr/rows:batch", batch, nil, http.StatusOK)
	resp = tc.query(front.URL, "corr", serve.QueryRequest{Algo: "stss"})
	if len(resp.Cluster.Pruned) != 0 {
		t.Fatalf("pruned %v after anti-correlated insert, want none", resp.Cluster.Pruned)
	}
	found := false
	for i := range resp.Skyline {
		if resp.Skyline[i].TO[0] == 900 && resp.Skyline[i].TO[1] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("anti-correlated row missing from the skyline after un-pruning")
	}
}

// TestUniversalTops pins the PO-side pruning guard on the diamond.
func TestUniversalTops(t *testing.T) {
	sc, err := serve.NewSchema(nil, []serve.OrderSpec{{
		Values: []string{"a", "b", "c", "d"},
		Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	doms, err := sc.BaseDomains()
	if err != nil {
		t.Fatal(err)
	}
	tops := universalTops(doms[0])
	if len(tops) != 1 || !tops[0] {
		t.Fatalf("diamond tops %v, want {a}", tops)
	}
}

// TestDualRoleNode runs one process as both coordinator and shard 0:
// the shard-direct header must break the recursion, and results must
// match a single node.
func TestDualRoleNode(t *testing.T) {
	// Shard 1: a plain remote node.
	remote := httptest.NewServer(serve.NewWithConfig(serve.Config{
		Shard: &serve.ShardIdentity{Index: 1, Count: 2},
	}).Handler())
	t.Cleanup(remote.Close)

	// The dual-role node: its own URL is shard 0 of its own cluster.
	var handler atomic.Value
	self := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(self.Close)
	local := serve.NewWithConfig(serve.Config{Shard: &serve.ShardIdentity{Index: 0, Count: 2}})
	co, err := New(Config{Shards: []string{self.URL, remote.URL}})
	if err != nil {
		t.Fatal(err)
	}
	handler.Store(co.Handler(local.Handler()))

	rows := fixtureRows(120, 99)
	spec := fixtureSpec("dual", rows)
	single := httptest.NewServer(func() http.Handler {
		s := serve.New(8)
		if _, err := s.CreateTable(spec); err != nil {
			t.Fatal(err)
		}
		return s.Handler()
	}())
	t.Cleanup(single.Close)

	tc := &testCluster{t: t, co: self, single: single}
	tc.postJSON(self.URL+"/tables", spec, nil, http.StatusCreated)
	tc.checkSetEqual("dual-role",
		tc.query(self.URL, "dual", serve.QueryRequest{Explain: true}),
		tc.query(single.URL, "dual", serve.QueryRequest{Explain: true}))
}

// TestShardIdentityMismatch proves a mis-wired topology is rejected:
// a coordinator whose shard list is permuted against the nodes' own
// -shard-of identities cannot mutate them.
func TestShardIdentityMismatch(t *testing.T) {
	urls := make([]string, 2)
	for i := range urls {
		// Deliberately inverted identities.
		ts := httptest.NewServer(serve.NewWithConfig(serve.Config{
			Shard: &serve.ShardIdentity{Index: 1 - i, Count: 2},
		}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	co, err := New(Config{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	_, err = co.CreateTable(context.Background(), fixtureSpec("bad", fixtureRows(10, 3)))
	if err == nil {
		t.Fatal("create against permuted shard identities succeeded")
	}
	var se *shardError
	if !asShardError(err, &se) || se.status != http.StatusConflict {
		t.Fatalf("error %v, want a shard 409", err)
	}
}

// TestAdopt rebuilds the catalog after a coordinator restart.
func TestAdopt(t *testing.T) {
	rows := fixtureRows(80, 5)
	spec := fixtureSpec("keep", rows)
	tc := newTestCluster(t, 2, spec)

	// A second coordinator over the same shards starts with an empty
	// catalog; Adopt finds the table and serving resumes.
	co2, err := New(Config{Shards: shardURLs(tc.coord)})
	if err != nil {
		t.Fatal(err)
	}
	adopted, err := co2.Adopt(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted) != 1 || adopted[0] != "keep" {
		t.Fatalf("adopted %v, want [keep]", adopted)
	}
	front := httptest.NewServer(co2.Handler(serve.New(8).Handler()))
	t.Cleanup(front.Close)
	got := tc.query(front.URL, "keep", serve.QueryRequest{Explain: true})
	want := tc.query(tc.single.URL, "keep", serve.QueryRequest{Explain: true})
	tc.checkSetEqual("adopted", got, want)
}

func shardURLs(co *Coordinator) []string {
	urls := make([]string, len(co.shards))
	for i, sc := range co.shards {
		urls[i] = sc.base
	}
	return urls
}

// TestClusterzEndpoint smoke-checks the topology endpoint.
func TestClusterzEndpoint(t *testing.T) {
	tc := newTestCluster(t, 2, fixtureSpec("z", fixtureRows(20, 1)))
	var info ClusterzInfo
	getJSON(t, tc.co.URL+"/clusterz", &info)
	if len(info.Shards) != 2 || len(info.Tables) != 1 || info.Tables[0].Name != "z" {
		t.Fatalf("clusterz: %+v", info)
	}
}

// TestCoordinatorBatchValidation pins the remove contract.
func TestCoordinatorBatchValidation(t *testing.T) {
	tc := newTestCluster(t, 2, fixtureSpec("v", fixtureRows(20, 2)))
	resp, err := http.Post(tc.co.URL+"/tables/v/rows:batch", "application/json",
		strings.NewReader(`{"remove":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain remove against the coordinator: status %d, want 400", resp.StatusCode)
	}
	// Out-of-range shard.
	resp2, err := http.Post(tc.co.URL+"/tables/v/rows:batch", "application/json",
		strings.NewReader(`{"removeSharded":[{"shard":9,"row":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range shard: status %d, want 400", resp2.StatusCode)
	}
}
