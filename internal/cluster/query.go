package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/poset"
	"repro/internal/serve"
)

// candidate is one shard-local skyline row in the coordinator's merge
// pass: its wire identity (shard + shard-scoped row index + raw
// values) and the comparison point dominance is tested on (projected
// onto kept dimensions; distance-transformed for fully dynamic
// queries).
type candidate struct {
	shard int
	row   serve.SkylineRow
	pt    core.Point
}

// gather is a compiled scatter/gather pass: how to query one shard and
// how to interpret its rows for the merge.
type gather struct {
	ct       *ctable
	keptTO   []int           // kept TO dims (identity when no subspace)
	keptPO   []int           // kept PO dims
	doms     []*poset.Domain // dominance oracle, one per kept PO dim
	ideal    []int64         // non-nil: |v−ideal| transform (fully dynamic)
	stats    []serve.TableStatsInfo
	prune    bool // statistics-driven shard pruning applies
	noKernel bool // merge with the scalar reference pass (request noKernel)
	// noElim keeps the gathered union un-eliminated: a UnionRanker
	// (skyline layers) needs every shard-local row — cross-shard
	// dominance elimination would discard the deeper layers.
	noElim bool
	query  func(ctx context.Context, shard int) (*serve.QueryResponse, error)
}

// result of the gather: merged candidates plus scatter metadata.
type gathered struct {
	merged   []candidate
	rowsTot  int
	versions []int64
	pruned   []int
	metrics  core.MetricsExport
	cacheHit bool
	queried  int
}

// point builds a candidate's comparison point from its wire values.
func (g *gather) point(row *serve.SkylineRow) (core.Point, error) {
	pt := core.Point{ID: -1, TO: make([]int32, len(g.keptTO))}
	for j, d := range g.keptTO {
		if d >= len(row.TO) {
			return core.Point{}, fmt.Errorf("cluster: shard row has %d TO values, need column %d", len(row.TO), d)
		}
		v := row.TO[d]
		if g.ideal != nil {
			v -= g.ideal[d]
			if v < 0 {
				v = -v
			}
		}
		pt.TO[j] = int32(v)
	}
	if len(g.keptPO) > 0 {
		pt.PO = make([]int32, len(g.keptPO))
		for j, d := range g.keptPO {
			if d >= len(row.PO) {
				return core.Point{}, fmt.Errorf("cluster: shard row has %d PO values, need column %d", len(row.PO), d)
			}
			id, ok := g.ct.schema.POValueID(d, row.PO[d])
			if !ok {
				return core.Point{}, fmt.Errorf("cluster: shard row carries unknown value %q for PO column %d", row.PO[d], d)
			}
			pt.PO[j] = int32(id)
		}
	}
	return pt, nil
}

// universalTops returns the domain values t-preferred to every other
// value — the only PO values that can dominate a shard corner whose PO
// combination is unknown.
func universalTops(dom *poset.Domain) map[int32]bool {
	tops := make(map[int32]bool)
	n := int32(dom.Size())
	for u := int32(0); u < n; u++ {
		top := true
		for v := int32(0); v < n && top; v++ {
			if v != u && !dom.TPrefers(u, v) {
				top = false
			}
		}
		if top {
			tops[u] = true
		}
	}
	return tops
}

// corner returns shard i's statistics min corner over the kept TO
// dims, or ok=false when the shard has no rows (nothing to prune — an
// empty shard answers instantly anyway).
func (g *gather) corner(i int) ([]int64, bool) {
	st := g.stats[i].Stats
	if st == nil || st.Rows == 0 {
		return nil, false
	}
	c := make([]int64, len(g.keptTO))
	for j, d := range g.keptTO {
		if d >= len(st.TO) {
			return nil, false
		}
		c[j] = st.TO[d].Min
	}
	return c, true
}

// dominatesCorner reports whether candidate c t-dominates every row a
// shard with the given min corner could possibly hold: at least as
// good on every kept TO dim with one strictly better, and a
// universally-top PO value on every kept PO dim (the corner's PO
// combination is unknown, so only a top dominates it conservatively).
// Rows of the pruned shard are all ⪰ its corner, so c dominates each
// of them with the same strict dimension.
func (g *gather) dominatesCorner(c *candidate, corner []int64, tops []map[int32]bool) bool {
	strict := false
	for j, d := range g.keptTO {
		v := c.row.TO[d]
		if v > corner[j] {
			return false
		}
		if v < corner[j] {
			strict = true
		}
	}
	if !strict {
		return false
	}
	for j := range g.keptPO {
		if !tops[j][c.pt.PO[j]] {
			return false
		}
	}
	return true
}

// run executes the scatter/gather: the shard with the best (smallest)
// corner is queried first, every remaining shard whose corner is
// dominated by a gathered candidate is pruned, the survivors are
// queried in parallel, and the union is reduced by the t-dominance
// elimination pass.
func (g *gather) run(ctx context.Context, co *Coordinator) (*gathered, error) {
	n := len(co.shards)
	out := &gathered{versions: make([]int64, n)}
	resps := make([]*serve.QueryResponse, n)
	prebuilt := make([][]candidate, n) // avoids re-projecting the pruning seed

	queryShard := func(i int) error {
		resp, err := g.query(ctx, i)
		if err != nil {
			return err
		}
		resps[i] = resp
		return nil
	}

	if !g.prune || n == 1 {
		errs := co.scatter(queryShard)
		if err := firstError(errs); err != nil {
			return nil, err
		}
	} else {
		// Order shards by ascending corner L1: the shard most likely to
		// dominate the others goes first, so its candidates prune the
		// most before any other shard is contacted.
		type sc struct {
			i      int
			corner []int64
			sum    int64
			ok     bool
		}
		order := make([]sc, 0, n)
		for i := 0; i < n; i++ {
			c, ok := g.corner(i)
			e := sc{i: i, corner: c, ok: ok}
			for _, v := range c {
				e.sum += v
			}
			if !ok {
				e.sum = 1<<62 - 1 // empty shards last; never pruned, answer instantly
			}
			order = append(order, e)
		}
		sort.Slice(order, func(a, b int) bool {
			if order[a].sum != order[b].sum {
				return order[a].sum < order[b].sum
			}
			return order[a].i < order[b].i
		})
		if err := queryShard(order[0].i); err != nil {
			return nil, err
		}
		seed, err := g.candidates(order[0].i, resps[order[0].i])
		if err != nil {
			return nil, err
		}
		prebuilt[order[0].i] = seed
		tops := make([]map[int32]bool, len(g.keptPO))
		for j, d := range g.keptPO {
			tops[j] = universalTops(g.domFor(j, d))
		}
		var survivors []int
		for _, e := range order[1:] {
			prunable := false
			if e.ok {
				for k := range seed {
					if g.dominatesCorner(&seed[k], e.corner, tops) {
						prunable = true
						break
					}
				}
			}
			if prunable {
				out.pruned = append(out.pruned, e.i)
				// The version vector and the table row count still reflect
				// the snapshot whose statistics justified the prune.
				out.versions[e.i] = g.stats[e.i].Version
				out.rowsTot += g.stats[e.i].Rows
				continue
			}
			survivors = append(survivors, e.i)
		}
		sort.Ints(out.pruned)
		errsByShard := co.scatterSome(survivors, queryShard)
		for _, err := range errsByShard {
			if err != nil {
				return nil, err
			}
		}
	}

	// Collect in shard order so the merged sequence is deterministic.
	var all []candidate
	hits, responded := 0, 0
	for i := 0; i < n; i++ {
		resp := resps[i]
		if resp == nil {
			continue
		}
		responded++
		out.versions[i] = resp.Version
		out.rowsTot += resp.Rows
		if resp.CacheHit {
			hits++
		}
		addMetrics(&out.metrics, &resp.Metrics)
		cands := prebuilt[i]
		if cands == nil {
			var err error
			if cands, err = g.candidates(i, resp); err != nil {
				return nil, err
			}
		}
		all = append(all, cands...)
	}
	out.queried = responded
	out.cacheHit = responded > 0 && hits == responded
	out.metrics.Shards = responded
	if g.noElim {
		out.merged = all
	} else {
		out.merged = eliminate(all, g.doms, g.noKernel)
	}
	return out, nil
}

// domFor returns the dominance domain of kept PO slot j (table dim d).
func (g *gather) domFor(j, d int) *poset.Domain { return g.doms[j] }

// pin returns the version shard i's read must observe on failover: the
// version its statistics snapshot was taken at, so the shard's view
// never moves backwards within one scatter. 0 (unpinned) when the
// gather fetched no statistics.
func (g *gather) pin(i int) int64 {
	if i < len(g.stats) {
		return g.stats[i].Version
	}
	return 0
}

// candidates converts one shard response into merge candidates.
func (g *gather) candidates(shard int, resp *serve.QueryResponse) ([]candidate, error) {
	cands := make([]candidate, len(resp.Skyline))
	for k := range resp.Skyline {
		pt, err := g.point(&resp.Skyline[k])
		if err != nil {
			return nil, err
		}
		cands[k] = candidate{shard: shard, row: resp.Skyline[k], pt: pt}
	}
	return cands, nil
}

// eliminate removes candidates t-dominated by a candidate from another
// shard — the cross-shard half of the partition-and-merge
// decomposition, served by the same worker-parallel pass the
// in-process executor uses (core.MergeSurvivors; same-shard pairs are
// skipped because each shard's list is already a skyline). Equal
// points never dominate each other, so duplicated rows survive
// together, matching single-node semantics. Order is preserved.
// noKernel selects the scalar reference pass — the kernel-off leg of
// the differential harness, end to end through the coordinator.
func eliminate(cands []candidate, doms []*poset.Domain, noKernel bool) []candidate {
	if len(cands) == 0 {
		return nil
	}
	pts := make([]core.Point, len(cands))
	shards := make([]int, len(cands))
	for i := range cands {
		pts[i] = cands[i].pt
		shards[i] = cands[i].shard
	}
	var keep []int
	if noKernel {
		keep = core.MergeSurvivorsRef(doms, pts, shards, runtime.GOMAXPROCS(0))
	} else {
		keep = core.MergeSurvivors(doms, pts, shards, runtime.GOMAXPROCS(0))
	}
	out := make([]candidate, len(keep))
	for k, i := range keep {
		out[k] = cands[i]
	}
	return out
}

func addMetrics(dst *core.MetricsExport, src *core.MetricsExport) {
	dst.ReadIOs += src.ReadIOs
	dst.WriteIOs += src.WriteIOs
	dst.DomChecks += src.DomChecks
	dst.NodesOpened += src.NodesOpened
	dst.NodesPruned += src.NodesPruned
	dst.PointsPruned += src.PointsPruned
	dst.CPUSeconds += src.CPUSeconds
	dst.Emissions += src.Emissions
	// Shards run concurrently: the virtual wall-clock is the slowest
	// shard, not the sum.
	if src.TotalSeconds > dst.TotalSeconds {
		dst.TotalSeconds = src.TotalSeconds
	}
}

// identityDims returns [0, n).
func identityDims(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Query answers POST /tables/{t}/query at the coordinator for both
// request modes (planner and dynamic), reusing the single-node wire
// contract end to end.
func (co *Coordinator) Query(ctx context.Context, ct *ctable, req serve.QueryRequest) (*serve.QueryResponse, error) {
	co.queries.Add(1)
	if req.PlanMode() {
		return co.planQuery(ctx, ct, req)
	}
	if req.HasPlanFields() {
		return nil, fmt.Errorf(
			"subspace/where/topK/rank/algo/parallel/explain/noKernel cannot combine with orders/baseline (dynamic queries run dTSS as-is)")
	}
	return co.dynamicQuery(ctx, ct, req)
}

// planQuery is the planner-mode scatter/gather: plan once against
// merged per-shard statistics, fan the per-shard plan out (variant
// preserved, top-k stripped — each shard over-fetches its full local
// variant skyline), merge, then re-rank globally.
func (co *Coordinator) planQuery(ctx context.Context, ct *ctable, req serve.QueryRequest) (*serve.QueryResponse, error) {
	start := time.Now()
	q, err := ct.schema.PlanQuery(req)
	if err != nil {
		return nil, err
	}
	stats, err := co.ShardStats(ctx, ct)
	if err != nil {
		return nil, err
	}
	explain, err := co.planOnce(ct, q, stats)
	if err != nil {
		return nil, err
	}

	// A ranking with the UnionRanker capability (skyline layers) is
	// evaluated over the *un-eliminated* union of shard-local ranked
	// results: each shard ships its own layers-≤K rows (a row's global
	// layer never exceeds K unless its local layer already does) and the
	// coordinator re-ranks the union. Every other ranking scatters the
	// unranked variant and re-ranks the merged skyline globally.
	var unionRanker plan.UnionRanker
	if req.TopK > 0 && q.Rank != plan.RankNone {
		r, ok := plan.LookupRanker(string(q.Rank))
		if !ok {
			return nil, fmt.Errorf("cluster: unknown rank %q", q.Rank)
		}
		unionRanker, _ = r.(plan.UnionRanker)
	}

	// The scatter request: same variant, no top-k (rank scores are
	// global — a shard-local rank could evict globally surviving rows),
	// no row limit (the merge needs every candidate), and the
	// coordinator's algorithm choice pinned so shards skip re-planning.
	// Union rankings keep top-k and rank: the shard-local ranked result
	// is exactly what the union merge consumes.
	sreq := req
	sreq.TopK, sreq.Rank, sreq.Ideal = 0, "", nil
	sreq.Limit, sreq.Explain = 0, false
	if unionRanker != nil {
		sreq.TopK, sreq.Rank = req.TopK, req.Rank
	}
	if sreq.Algo == "" {
		sreq.Algo = explain.Algorithm
	}

	keptTO, keptPO := identityDims(ct.schema.NumTO()), identityDims(ct.schema.NumPO())
	if q.Subspace != nil {
		keptTO, keptPO = q.Subspace.TO, q.Subspace.PO
	}
	doms := make([]*poset.Domain, len(keptPO))
	for j, d := range keptPO {
		doms[j] = ct.domains[d]
	}
	g := &gather{
		ct: ct, keptTO: keptTO, keptPO: keptPO, doms: doms,
		stats: stats, noKernel: req.NoKernel,
		// Min-corner pruning is unsound for union rankings: a dominated
		// shard's rows are past layer 1, not past layer K.
		prune:  len(co.shards) > 1 && unionRanker == nil,
		noElim: unionRanker != nil,
	}
	g.query = func(ctx context.Context, i int) (*serve.QueryResponse, error) {
		var resp serve.QueryResponse
		err := co.readShard(ctx, i, http.MethodPost, co.shards[i].tablePath(ct.name, "/query"), g.pin(i), sreq, &resp)
		return &resp, err
	}
	gr, err := g.run(ctx, co)
	if err != nil {
		return nil, err
	}
	co.pruned.Add(int64(len(gr.pruned)))

	merged := gr.merged
	// Weight-restricted skylines: each shard already restricted its local
	// result (FWeights rode the scatter), and F-dominance is transitive,
	// so one member-only elimination pass over the merged union is exact.
	// Sound under pruning too: a pruned shard's rows are t-dominated —
	// hence F-dominated — by a gathered candidate.
	if len(q.FWeights) > 0 && unionRanker == nil {
		merged = restrictCandidates(g, &q, merged)
	}
	if req.TopK > 0 {
		if unionRanker != nil {
			merged = rankUnion(g, unionRanker, &q, req.TopK, merged)
		} else if merged, err = co.rank(ctx, ct, g, req, q, merged); err != nil {
			return nil, err
		}
	}
	explain.ObservedSeconds = time.Since(start).Seconds()
	explain.ObservedSkyline = len(merged)
	explain.CacheHit = gr.cacheHit

	resp := co.response(ct, gr, merged, req.Limit)
	resp.CacheHit = gr.cacheHit
	resp.Algo = explain.Algorithm
	if req.Explain {
		resp.Plan = explain
	}
	return resp, nil
}

// planOnce reuses internal/plan against a schema-shaped dataset plus
// the merged shard statistics: the coordinator decides the algorithm
// (and validates the query) exactly once, instead of N times.
func (co *Coordinator) planOnce(ct *ctable, q plan.Query, stats []serve.TableStatsInfo) (*plan.Explain, error) {
	shape := &core.Dataset{Domains: ct.domains}
	// One zero row gives the dataset its TO dimensionality; it is never
	// executed — the plan is only consulted for its decisions.
	shape.Pts = []core.Point{{TO: make([]int32, ct.schema.NumTO()), PO: make([]int32, ct.schema.NumPO())}}
	p, err := plan.New(shape, q, plan.Env{Stats: MergedStats(stats)})
	if err != nil {
		return nil, err
	}
	ex := p.Explain
	return &ex, nil
}

// rank orders the merged skyline globally and keeps the best K — the
// re-rank half of distributed top-k, dispatched through the plan.Ranker
// registry by capability. WireScorer rankings (ideal) are row-intrinsic
// and score at the coordinator; PartialScorer rankings (domcount,
// dpidp) scatter the candidates to every shard — including pruned ones:
// their rows are still part of R — and combine the partial scores. Ties
// break on row values (then shard, row), which is deterministic across
// any placement.
func (co *Coordinator) rank(ctx context.Context, ct *ctable, g *gather, req serve.QueryRequest, q plan.Query, merged []candidate) ([]candidate, error) {
	k := req.TopK
	if q.Rank != plan.RankNone {
		r, ok := plan.LookupRanker(string(q.Rank))
		if !ok {
			return nil, fmt.Errorf("cluster: unknown rank %q", q.Rank)
		}
		var scores []float64
		switch s := r.(type) {
		case plan.WireScorer:
			rows := make([]plan.WireRow, len(merged))
			for i := range merged {
				rows[i] = plan.WireRow{TO: merged[i].row.TO, PO: merged[i].pt.PO}
			}
			scores = s.WireScores(g.wireContext(&q, req.NoKernel), rows)
		case plan.PartialScorer:
			parts, err := co.scatterPartials(ctx, ct, g, req, merged)
			if err != nil {
				return nil, err
			}
			if scores, err = s.CombinePartials(parts, len(merged)); err != nil {
				return nil, fmt.Errorf("cluster: %s", err)
			}
		default:
			return nil, fmt.Errorf("cluster: rank %q has no distributed evaluation", q.Rank)
		}
		return sortCandidates(merged, scores, k), nil
	}
	// Unranked: keep a merge-order prefix.
	if k < len(merged) {
		merged = merged[:k]
	}
	return merged, nil
}

// wireContext assembles the coordinator-side scoring context.
func (g *gather) wireContext(q *plan.Query, noKernel bool) *plan.WireContext {
	return &plan.WireContext{Query: q, KeptTO: g.keptTO, KeptPO: g.keptPO, Doms: g.doms, NoKernel: noKernel}
}

// scatterPartials fans the merged candidates out to every shard for
// partial scoring (/domcount with the ranking named). The rank field is
// left empty for domcount, preserving the endpoint's original request
// shape.
func (co *Coordinator) scatterPartials(ctx context.Context, ct *ctable, g *gather, req serve.QueryRequest, merged []candidate) ([]plan.Partials, error) {
	dreq := serve.DomCountRequest{Subspace: req.Subspace, Where: req.Where}
	if r := plan.Rank(req.Rank); r != plan.RankDomCount {
		dreq.Rank = req.Rank
	}
	for i := range merged {
		dreq.Rows = append(dreq.Rows, serve.RowSpec{TO: merged[i].row.TO, PO: merged[i].row.PO})
	}
	resps := make([]serve.DomCountResponse, len(co.shards))
	errs := co.scatter(func(i int) error {
		return co.readShard(ctx, i, http.MethodPost, co.shards[i].tablePath(ct.name, "/domcount"), g.pin(i), dreq, &resps[i])
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	parts := make([]plan.Partials, len(resps))
	for i, r := range resps {
		parts[i] = plan.Partials{Counts: r.Counts}
		for _, h := range r.Hists {
			parts[i].Hists = append(parts[i].Hists, plan.KHist{Ks: h.Ks, Counts: h.Counts})
		}
	}
	return parts, nil
}

// rankUnion evaluates a UnionRanker over the un-eliminated gathered
// union: the ranker scores (and possibly excludes) every row, and the
// survivors order by (score, row values, shard, row) with no count
// truncation — a union ranking's k is a depth bound the shards already
// applied, not a row budget.
func rankUnion(g *gather, ur plan.UnionRanker, q *plan.Query, k int, merged []candidate) []candidate {
	pts := make([]core.Point, len(merged))
	for i := range merged {
		pts[i] = merged[i].pt
	}
	scores, keep := ur.RankUnion(g.wireContext(q, g.noKernel), pts, k)
	kept := make([]candidate, 0, len(merged))
	keptScores := make([]float64, 0, len(merged))
	for i := range merged {
		if keep[i] {
			kept = append(kept, merged[i])
			keptScores = append(keptScores, scores[i])
		}
	}
	return sortCandidates(kept, keptScores, len(kept))
}

// restrictCandidates applies the F-dominance weight constraint to the
// merged skyline, eliminating members F-dominated by another member
// (exact by transitivity; see plan/fdom.go).
func restrictCandidates(g *gather, q *plan.Query, merged []candidate) []candidate {
	pts := make([]core.Point, len(merged))
	for i := range merged {
		pts[i] = merged[i].pt
	}
	keep := plan.FDomSurvivors(g.doms, plan.FVertices(q.FWeights, g.keptTO), pts)
	out := make([]candidate, len(keep))
	for i, j := range keep {
		out[i] = merged[j]
	}
	return out
}

// sortCandidates orders candidates by (score ascending, row values,
// shard, row index) and keeps the first k.
func sortCandidates(merged []candidate, scores []float64, k int) []candidate {
	idx := make([]int, len(merged))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if scores[ia] != scores[ib] {
			return scores[ia] < scores[ib]
		}
		if c := compareRows(&merged[ia].row, &merged[ib].row); c != 0 {
			return c < 0
		}
		if merged[ia].shard != merged[ib].shard {
			return merged[ia].shard < merged[ib].shard
		}
		return merged[ia].row.Row < merged[ib].row.Row
	})
	if k < len(idx) {
		idx = idx[:k]
	}
	out := make([]candidate, len(idx))
	for i, j := range idx {
		out[i] = merged[j]
	}
	return out
}

// compareRows orders rows by their values, lexicographically.
func compareRows(a, b *serve.SkylineRow) int {
	for d := range a.TO {
		if d >= len(b.TO) {
			return 1
		}
		if a.TO[d] != b.TO[d] {
			if a.TO[d] < b.TO[d] {
				return -1
			}
			return 1
		}
	}
	for d := range a.PO {
		if d >= len(b.PO) {
			return 1
		}
		if a.PO[d] != b.PO[d] {
			if a.PO[d] < b.PO[d] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// dynamicQuery scatters a dTSS-mode request (per-request preference
// DAGs, optional ideal point, optional baseline) and merges under the
// *request's* domains — for fully dynamic queries on the |v−ideal|
// transformed coordinates, where statistics corners are meaningless,
// so shard pruning stays off.
func (co *Coordinator) dynamicQuery(ctx context.Context, ct *ctable, req serve.QueryRequest) (*serve.QueryResponse, error) {
	if req.Baseline && req.Ideal != nil {
		return nil, fmt.Errorf("baseline does not support ideal-point queries")
	}
	doms, err := ct.schema.QueryDomains(req.Orders)
	if err != nil {
		return nil, err
	}
	if req.Ideal != nil && len(req.Ideal) != ct.schema.NumTO() {
		return nil, fmt.Errorf("ideal point has %d values, table has %d TO columns",
			len(req.Ideal), ct.schema.NumTO())
	}
	sreq := req
	sreq.Limit = 0
	g := &gather{
		ct:     ct,
		keptTO: identityDims(ct.schema.NumTO()),
		keptPO: identityDims(ct.schema.NumPO()),
		doms:   doms,
		ideal:  req.Ideal,
	}
	g.query = func(ctx context.Context, i int) (*serve.QueryResponse, error) {
		var resp serve.QueryResponse
		err := co.readShard(ctx, i, http.MethodPost, co.shards[i].tablePath(ct.name, "/query"), g.pin(i), sreq, &resp)
		return &resp, err
	}
	// Plain dynamic queries (no distance transform) still benefit from
	// pruning when statistics are available; a stats fetch failure just
	// disables it.
	if req.Ideal == nil && len(co.shards) > 1 {
		if stats, err := co.ShardStats(ctx, ct); err == nil {
			g.stats, g.prune = stats, true
		}
	}
	gr, err := g.run(ctx, co)
	if err != nil {
		return nil, err
	}
	co.pruned.Add(int64(len(gr.pruned)))
	resp := co.response(ct, gr, gr.merged, req.Limit)
	resp.CacheHit = gr.cacheHit
	return resp, nil
}

// Skyline answers GET /tables/{t}/skyline at the coordinator: the
// static skyline under the table's own orders, ?algo/?parallel passed
// through to every shard, merged with the t-dominance pass.
func (co *Coordinator) Skyline(ctx context.Context, ct *ctable, params url.Values) (*serve.QueryResponse, error) {
	co.queries.Add(1)
	limit := 0
	if v := params.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("bad limit=%q: %w", v, err)
		}
		limit = n
	}
	scatterParams := url.Values{}
	for _, k := range []string{"algo", "parallel"} {
		if v := params.Get(k); v != "" {
			scatterParams.Set(k, v)
		}
	}
	path := "/skyline"
	if enc := scatterParams.Encode(); enc != "" {
		path += "?" + enc
	}
	g := &gather{
		ct:     ct,
		keptTO: identityDims(ct.schema.NumTO()),
		keptPO: identityDims(ct.schema.NumPO()),
		doms:   ct.domains,
	}
	g.query = func(ctx context.Context, i int) (*serve.QueryResponse, error) {
		var resp serve.QueryResponse
		err := co.readShard(ctx, i, http.MethodGet, co.shards[i].tablePath(ct.name, path), g.pin(i), nil, &resp)
		return &resp, err
	}
	if len(co.shards) > 1 {
		if stats, err := co.ShardStats(ctx, ct); err == nil {
			g.stats, g.prune = stats, true
		}
	}
	gr, err := g.run(ctx, co)
	if err != nil {
		return nil, err
	}
	co.pruned.Add(int64(len(gr.pruned)))
	resp := co.response(ct, gr, gr.merged, limit)
	if v := params.Get("algo"); v != "" {
		resp.Algo = v
	}
	return resp, nil
}

// DomCount answers POST /tables/{t}/domcount at the coordinator by
// summing every shard's partial counts.
func (co *Coordinator) DomCount(ctx context.Context, ct *ctable, req serve.DomCountRequest) (*serve.DomCountResponse, error) {
	resps := make([]serve.DomCountResponse, len(co.shards))
	errs := co.scatter(func(i int) error {
		return co.readShard(ctx, i, http.MethodPost, co.shards[i].tablePath(ct.name, "/domcount"), 0, req, &resps[i])
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	out := &serve.DomCountResponse{Table: ct.name, Counts: make([]int64, len(req.Rows))}
	for _, r := range resps {
		out.Version += r.Version
		if len(r.Counts) != len(out.Counts) {
			return nil, fmt.Errorf("cluster: shard returned %d counts for %d candidates", len(r.Counts), len(out.Counts))
		}
		for i, c := range r.Counts {
			out.Counts[i] += c
		}
	}
	return out, nil
}

// response renders the merged candidates in the single-node wire shape
// plus the cluster metadata.
func (co *Coordinator) response(ct *ctable, gr *gathered, merged []candidate, limit int) *serve.QueryResponse {
	var version int64
	for _, v := range gr.versions {
		version += v
	}
	rows := merged
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	sky := make([]serve.SkylineRow, len(rows))
	for i := range rows {
		shard := rows[i].shard
		sky[i] = serve.SkylineRow{
			Row:   rows[i].row.Row,
			TO:    rows[i].row.TO,
			PO:    rows[i].row.PO,
			Shard: &shard,
		}
	}
	return &serve.QueryResponse{
		Table:   ct.name,
		Version: version,
		Rows:    gr.rowsTot,
		Count:   len(merged),
		Skyline: sky,
		Metrics: gr.metrics,
		Cluster: &serve.ClusterMeta{
			Shards:   len(co.shards),
			Versions: gr.versions,
			Pruned:   gr.pruned,
		},
	}
}
