// Package cluster is the multi-node serving layer: a coordinator that
// partitions tables over N tssserve shard nodes and answers queries by
// scatter/gather — plan once against merged per-shard statistics, fan
// the per-shard plan out over the ordinary HTTP/JSON API, merge the
// shard-local skylines with a t-dominance elimination pass.
//
// The decomposition is the one core.Parallel proved in-process (PR 1):
// the skyline of a union is contained in the union of the partition
// skylines, so gathering each shard's local skyline and eliminating
// cross-shard t-dominated rows is exact for every query variant —
// full, subspace (dominance on kept dimensions), constrained (pushed
// down per shard), and top-k (per-shard over-fetch of the whole local
// variant skyline, then a global re-rank at the coordinator; dominance
// counts are summed from per-shard partial counts via /domcount).
// Statistics additionally drive *shard pruning*: a shard whose best
// possible row — the min corner of its /stats bounds — is already
// t-dominated by a gathered candidate (with a preference-top PO value)
// cannot contribute a skyline row and is never queried.
//
// Consistency: each shard answers from one immutable snapshot of its
// partition and the response carries the per-shard version vector, but
// there is no cross-shard transaction — a merged result reflects one
// snapshot per shard, not necessarily one global instant. Mutations
// routed through the coordinator are atomic per shard only.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/plan"
	"repro/internal/poset"
	"repro/internal/serve"
	"repro/internal/store"
)

// Config assembles a Coordinator.
type Config struct {
	// Shards are the shard nodes' base URLs, in shard-index order. The
	// order is part of the cluster's identity: rows are placed by index.
	Shards []string
	// Replicas lists each shard's follower base URLs: Replicas[i] are
	// read-only mirrors of Shards[i] (tssserve -follower-of). Reads fail
	// over to them when the primary is unreachable; mutations never do.
	// The slice may be shorter than Shards — missing entries mean the
	// shard has no followers.
	Replicas [][]string
	// Client overrides the HTTP client (default: 30 s timeout). Streamed
	// scatter legs reuse its transport without the overall timeout.
	Client *http.Client
	// StreamHeartbeat overrides the idle heartbeat interval on streamed
	// responses (default serve.DefaultStreamHeartbeat).
	StreamHeartbeat time.Duration
	// Catalog, when non-nil, persists the coordinator's table catalog —
	// each table's partition spec with explicit range bounds — so a
	// restarted coordinator recovers real placement in Adopt instead of
	// falling back to hash routing. Without it, range-partitioned
	// creates are refused: their bounds would be unrecoverable.
	Catalog store.Store
}

// Coordinator is the scatter/gather front end over a fixed set of
// shard nodes. The table catalog is in-memory; Adopt rebuilds it from
// the shards after a restart.
type Coordinator struct {
	shards   []*shardClient
	replicas [][]*shardClient // replicas[i]: shard i's followers, failover order

	mu     sync.RWMutex
	tables map[string]*ctable

	catalog store.Store                    // nil = in-memory catalog only
	saved   map[string]serve.PartitionSpec // persisted specs, loaded at New for Adopt

	queries   atomic.Int64
	pruned    atomic.Int64 // shards skipped by statistics-driven pruning
	failovers atomic.Int64 // read legs answered by a follower

	streamHeartbeat time.Duration
}

// ctable is one cluster table: its schema, compiled base preference
// domains (the merge pass's t-dominance oracle) and row router.
type ctable struct {
	name    string
	schema  *serve.Schema
	domains []*poset.Domain
	part    *partitioner
}

// New builds a coordinator over the given shard URLs.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shard URLs")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	streamClient := &http.Client{}
	*streamClient = *client
	streamClient.Timeout = 0
	co := &Coordinator{
		tables:          make(map[string]*ctable),
		streamHeartbeat: cfg.StreamHeartbeat,
		catalog:         cfg.Catalog,
		saved:           make(map[string]serve.PartitionSpec),
	}
	newClient := func(raw string, index int) (*shardClient, error) {
		base := trimSlash(strings.TrimSpace(raw))
		// Reject malformed bases at startup — a blank element (e.g. a
		// trailing comma in -coordinator) would otherwise surface only as
		// a confusing per-request transport error.
		if u, err := url.Parse(base); err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("%q is not an absolute base URL", raw)
		}
		return &shardClient{
			base:       base,
			index:      index,
			count:      len(cfg.Shards),
			http:       client,
			streamHTTP: streamClient,
		}, nil
	}
	for i, base := range cfg.Shards {
		sc, err := newClient(base, i)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		for j := 0; j < i; j++ {
			if co.shards[j].base == sc.base {
				return nil, fmt.Errorf("cluster: duplicate shard URL %q", sc.base)
			}
		}
		co.shards = append(co.shards, sc)
	}
	if len(cfg.Replicas) > len(cfg.Shards) {
		return nil, fmt.Errorf("cluster: replica lists for %d shards, cluster has %d", len(cfg.Replicas), len(cfg.Shards))
	}
	co.replicas = make([][]*shardClient, len(cfg.Shards))
	for i, followers := range cfg.Replicas {
		for _, base := range followers {
			// A follower client asserts the same shard identity as its
			// primary: it mirrors that shard's partition.
			rc, err := newClient(base, i)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica: %w", i, err)
			}
			co.replicas[i] = append(co.replicas[i], rc)
		}
	}
	if err := co.loadCatalog(); err != nil {
		return nil, err
	}
	return co, nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// NumShards returns the cluster's fan-out.
func (co *Coordinator) NumShards() int { return len(co.shards) }

// table looks a cluster table up.
func (co *Coordinator) table(name string) *ctable {
	co.mu.RLock()
	defer co.mu.RUnlock()
	return co.tables[name]
}

// tableNames lists the catalog sorted by name.
func (co *Coordinator) tableNames() []string {
	co.mu.RLock()
	names := make([]string, 0, len(co.tables))
	for n := range co.tables {
		names = append(names, n)
	}
	co.mu.RUnlock()
	sort.Strings(names)
	return names
}

// newCtable compiles a spec into a catalog entry (schema validation,
// base-domain compilation, partitioner construction).
func (co *Coordinator) newCtable(spec serve.TableSpec) (*ctable, error) {
	schema, err := serve.NewSchema(spec.TOColumns, spec.Orders)
	if err != nil {
		return nil, err
	}
	domains, err := schema.BaseDomains()
	if err != nil {
		return nil, err
	}
	part, err := newPartitioner(spec.Partition, schema, spec.Rows, len(co.shards))
	if err != nil {
		return nil, err
	}
	return &ctable{name: spec.Name, schema: schema, domains: domains, part: part}, nil
}

// CreateTable partitions the spec's rows over the shards, creates the
// per-shard tables (same name, same schema, that shard's slice) and
// registers the cluster table. On any shard failure the already
// created shard tables are dropped best-effort and the create fails.
func (co *Coordinator) CreateTable(ctx context.Context, spec serve.TableSpec) (serve.TableInfo, error) {
	if spec.Name == "" {
		return serve.TableInfo{}, fmt.Errorf("cluster: table name is required")
	}
	co.mu.RLock()
	_, dup := co.tables[spec.Name]
	co.mu.RUnlock()
	if dup {
		return serve.TableInfo{}, serve.ErrTableExists
	}
	ct, err := co.newCtable(spec)
	if err != nil {
		return serve.TableInfo{}, err
	}
	if !ct.part.byHash && co.catalog == nil {
		// Range bounds live only in the coordinator's catalog; without a
		// durable one a restart could not recover them and would silently
		// re-adopt the table as hash-routed. Refuse up front.
		return serve.TableInfo{}, fmt.Errorf(
			"cluster: range-partitioned tables need a durable coordinator catalog (start the coordinator with -data-dir)")
	}
	parts := make([][]serve.RowSpec, len(co.shards))
	for _, r := range spec.Rows {
		si := ct.part.route(r)
		parts[si] = append(parts[si], r)
	}
	infos := make([]serve.TableInfo, len(co.shards))
	errs := co.scatter(func(i int) error {
		shardSpec := serve.TableSpec{
			Name:          spec.Name,
			TOColumns:     spec.TOColumns,
			Orders:        spec.Orders,
			Rows:          parts[i],
			CacheCapacity: spec.CacheCapacity,
		}
		return co.shards[i].do(ctx, http.MethodPost, "/tables", shardSpec, &infos[i])
	})
	if err := firstError(errs); err != nil {
		// Roll back on *every* shard, not only the ones whose create
		// reported success: a timed-out or torn response may have
		// committed server-side, and an orphaned shard table would block
		// all future creates while being unreachable through the
		// coordinator (it is not in the catalog). 404s are fine.
		co.scatter(func(i int) error {
			return co.shards[i].do(context.Background(), http.MethodDelete,
				co.shards[i].tablePath(spec.Name, ""), nil, nil)
		})
		return serve.TableInfo{}, err
	}
	co.mu.Lock()
	if _, dup := co.tables[spec.Name]; dup {
		co.mu.Unlock()
		return serve.TableInfo{}, serve.ErrTableExists
	}
	co.tables[spec.Name] = ct
	co.mu.Unlock()
	if err := co.persistCatalog(); err != nil {
		// An unpersisted placement would resurface as a hash table after
		// a restart — roll the create back rather than let that linger.
		co.mu.Lock()
		delete(co.tables, spec.Name)
		co.mu.Unlock()
		co.scatter(func(i int) error {
			return co.shards[i].do(context.Background(), http.MethodDelete,
				co.shards[i].tablePath(spec.Name, ""), nil, nil)
		})
		return serve.TableInfo{}, err
	}
	return co.aggregateInfo(ct, infos), nil
}

// DropTable drops the table from every shard and the catalog. Shards
// answering 404 count as dropped (a half-completed earlier drop).
func (co *Coordinator) DropTable(ctx context.Context, name string) (bool, error) {
	ct := co.table(name)
	if ct == nil {
		return false, nil
	}
	errs := co.scatter(func(i int) error {
		err := co.shards[i].do(ctx, http.MethodDelete, co.shards[i].tablePath(name, ""), nil, nil)
		var se *shardError
		if asShardError(err, &se) && se.status == http.StatusNotFound {
			return nil
		}
		return err
	})
	if err := firstError(errs); err != nil {
		return false, err
	}
	co.mu.Lock()
	delete(co.tables, name)
	delete(co.saved, name)
	co.mu.Unlock()
	// A persist failure here is benign-stale: the catalog still lists a
	// table no shard has, and Adopt only restores specs for tables that
	// exist on every shard. The next successful persist cleans it up.
	_ = co.persistCatalog()
	return true, nil
}

// Adopt rebuilds the in-memory catalog from the shards after a
// coordinator restart: every table present on *all* shards is adopted.
// A table recorded in the durable catalog comes back with its
// persisted partition spec — range bounds and split column intact; a
// table absent from it gets the uniform hash router, which is safe
// because range-partitioned creates require a durable catalog (they
// are refused without one), so every un-cataloged table was
// hash-routed to begin with. The probes fail over to followers, so a
// dead shard primary does not block adoption of the tables its
// follower still serves. Returns the adopted table names.
func (co *Coordinator) Adopt(ctx context.Context) ([]string, error) {
	var first []serve.TableInfo
	if err := co.readShard(ctx, 0, http.MethodGet, "/tables", 0, nil, &first); err != nil {
		return nil, err
	}
	var adopted []string
	for _, info := range first {
		onAll := true
		for _, sc := range co.shards[1:] {
			var probe serve.TableInfo
			if err := co.readShard(ctx, sc.index, http.MethodGet, sc.tablePath(info.Name, ""), 0, nil, &probe); err != nil {
				onAll = false
				break
			}
		}
		if !onAll {
			continue
		}
		spec := serve.TableSpec{
			Name:      info.Name,
			TOColumns: info.TOColumns,
			Orders:    info.Orders,
		}
		co.mu.RLock()
		if saved, ok := co.saved[info.Name]; ok {
			spec.Partition = &saved
		}
		co.mu.RUnlock()
		ct, err := co.newCtable(spec)
		if err != nil {
			return adopted, fmt.Errorf("adopt %q: %w", info.Name, err)
		}
		co.mu.Lock()
		if _, dup := co.tables[info.Name]; !dup {
			co.tables[info.Name] = ct
			adopted = append(adopted, info.Name)
		}
		co.mu.Unlock()
	}
	return adopted, nil
}

// Info aggregates the per-shard table infos: summed rows/groups/
// traffic, the version vector, and its sum as the cluster version.
func (co *Coordinator) Info(ctx context.Context, ct *ctable) (serve.TableInfo, error) {
	infos := make([]serve.TableInfo, len(co.shards))
	errs := co.scatter(func(i int) error {
		return co.readShard(ctx, i, http.MethodGet, co.shards[i].tablePath(ct.name, ""), 0, nil, &infos[i])
	})
	if err := firstError(errs); err != nil {
		return serve.TableInfo{}, err
	}
	return co.aggregateInfo(ct, infos), nil
}

func (co *Coordinator) aggregateInfo(ct *ctable, infos []serve.TableInfo) serve.TableInfo {
	out := serve.TableInfo{
		Name:      ct.name,
		TOColumns: ct.schema.TOColumns(),
		Orders:    ct.schema.Orders(),
		Versions:  make([]int64, len(infos)),
	}
	for i, info := range infos {
		out.Version += info.Version
		out.Versions[i] = info.Version
		out.Rows += info.Rows
		out.Groups += info.Groups
		out.Stats.Queries += info.Stats.Queries
		out.Stats.Mutations += info.Stats.Mutations
		out.Stats.CacheHits += info.Stats.CacheHits
		out.Stats.CacheMisses += info.Stats.CacheMisses
		out.Stats.PlanCache.Add(info.Stats.PlanCache)
	}
	return out
}

// Batch routes a mutation: adds are placed by the table's partitioner,
// removals must be sharded (row indexes are shard-scoped — the
// coordinator's query responses carry each row's shard for exactly
// this). Every shard receives a batch (possibly empty, a no-op that
// just reports its current version) so the response always carries the
// full version vector.
func (co *Coordinator) Batch(ctx context.Context, ct *ctable, req serve.BatchRequest) (serve.BatchResponse, error) {
	if len(req.Remove) > 0 {
		return serve.BatchResponse{}, fmt.Errorf(
			"cluster: row indexes are shard-scoped; use removeSharded ([{shard,row}…], from a coordinator query response)")
	}
	adds := make([][]serve.RowSpec, len(co.shards))
	for _, r := range req.Add {
		si := ct.part.route(r)
		adds[si] = append(adds[si], r)
	}
	removes := make([][]int, len(co.shards))
	for _, ref := range req.RemoveSharded {
		if ref.Shard < 0 || ref.Shard >= len(co.shards) {
			return serve.BatchResponse{}, fmt.Errorf("cluster: shard %d out of range [0, %d)", ref.Shard, len(co.shards))
		}
		removes[ref.Shard] = append(removes[ref.Shard], ref.Row)
	}
	resps := make([]serve.BatchResponse, len(co.shards))
	errs := co.scatter(func(i int) error {
		sreq := serve.BatchRequest{Add: adds[i], Remove: removes[i]}
		return co.shards[i].do(ctx, http.MethodPost, co.shards[i].tablePath(ct.name, "/rows:batch"), sreq, &resps[i])
	})
	if err := firstError(errs); err != nil {
		return serve.BatchResponse{}, err
	}
	out := serve.BatchResponse{Table: ct.name, Versions: make([]int64, len(resps))}
	for i, r := range resps {
		out.Version += r.Version
		out.Versions[i] = r.Version
		out.Rows += r.Rows
		out.Added += r.Added
		out.Removed += r.Removed
	}
	return out, nil
}

// ShardStats fetches every shard's /stats body for the table.
func (co *Coordinator) ShardStats(ctx context.Context, ct *ctable) ([]serve.TableStatsInfo, error) {
	stats := make([]serve.TableStatsInfo, len(co.shards))
	errs := co.scatter(func(i int) error {
		return co.readShard(ctx, i, http.MethodGet, co.shards[i].tablePath(ct.name, "/stats"), 0, nil, &stats[i])
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return stats, nil
}

// scatter runs fn(i) for every shard concurrently and returns the
// per-shard errors.
func (co *Coordinator) scatter(fn func(i int) error) []error {
	errs := make([]error, len(co.shards))
	var wg sync.WaitGroup
	for i := range co.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// scatterSome is scatter over an index subset.
func (co *Coordinator) scatterSome(idx []int, fn func(i int) error) map[int]error {
	errs := make([]error, len(idx))
	var wg sync.WaitGroup
	for k, i := range idx {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			errs[k] = fn(i)
		}(k, i)
	}
	wg.Wait()
	out := make(map[int]error, len(idx))
	for k, i := range idx {
		out[i] = errs[k]
	}
	return out
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func asShardError(err error, out **shardError) bool {
	return errors.As(err, out)
}

// MergedStats folds the per-shard statistics into the coordinator's
// planning view.
func MergedStats(stats []serve.TableStatsInfo) *plan.Stats {
	parts := make([]*plan.Stats, len(stats))
	for i := range stats {
		parts[i] = stats[i].Stats
	}
	return plan.MergeStats(parts...)
}
