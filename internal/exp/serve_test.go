package exp

import (
	"strings"
	"testing"
)

// TestFigureServeTiny smoke-runs the serving sweep at the N=100 floor
// and checks the cache's qualitative effect: with the skewed workload,
// a large-enough cache must observe hits, and hit counts must be
// monotone non-decreasing in capacity (a bigger FIFO cache never hits
// less on the same deterministic sequence... it can, with FIFO, but
// the endpoints 0 and max are ordered: disabled = 0 hits, max ≥ any).
func TestFigureServeTiny(t *testing.T) {
	rows := FigureServe(tinyScale)
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Capacity != 0 || rows[0].Hits != 0 {
		t.Fatalf("disabled cache row: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	if last.Capacity < last.Distinct-1 && last.Capacity < 16 {
		t.Fatalf("unexpected sweep tail: %+v", last)
	}
	if last.Hits == 0 {
		t.Fatalf("capacity-%d cache saw no hits on a skewed stream: %+v", last.Capacity, last)
	}
	for _, r := range rows {
		if r.Queries != rows[0].Queries || r.Distinct != rows[0].Distinct {
			t.Fatalf("inconsistent workload across rows: %+v", rows)
		}
		if r.HitRate < 0 || r.HitRate > 1 || r.QPS <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.Hits > int64(r.Queries) {
			t.Fatalf("more hits than queries: %+v", r)
		}
	}
	// The full-pool cache must beat the tiny cache on hits.
	if last.Hits < rows[1].Hits {
		t.Fatalf("hits shrank with capacity: cap1=%d cap16=%d", rows[1].Hits, last.Hits)
	}

	var buf strings.Builder
	WriteServeRows(&buf, rows)
	for _, want := range []string{"capacity", "off", "qps"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report missing %q:\n%s", want, buf.String())
		}
	}
}
