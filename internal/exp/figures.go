package exp

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
)

// Row is one measurement: a (figure, series, x) cell of a paper plot.
type Row struct {
	Figure   string  // e.g. "7a"
	Series   string  // "TSS" or "SDC+"
	X        string  // the swept parameter's value
	TotalSec float64 // paper's headline metric: CPU + IOs×IOCost
	CPUSec   float64
	IOs      int64
	CPUShare float64 // CPU / total (the Figure 7 marker annotations)
	Skyline  int
	Checks   int64
}

func rowFrom(fig, series, x string, cfg Config, m *core.Metrics, skyline int) Row {
	return Row{
		Figure:   fig,
		Series:   series,
		X:        x,
		TotalSec: m.TotalTime(cfg.IOCost).Seconds(),
		CPUSec:   m.CPU.Seconds(),
		IOs:      m.ReadIOs + m.WriteIOs,
		CPUShare: m.CPUShare(cfg.IOCost),
		Skyline:  skyline,
		Checks:   m.DomChecks,
	}
}

// runStaticPair runs the paper's static contenders — SDC+ (the
// strongest baseline) and TSS (sTSS without the memtree, as in §VI-B
// "for fairness") — on one configuration.
func runStaticPair(fig, x string, cfg Config) []Row {
	ds := BuildDataset(cfg)
	sdc := core.SDCPlus(ds, core.Options{})
	tss := core.STSS(ds, core.Options{})
	if !sameSet(sdc.SkylineIDs, tss.SkylineIDs) {
		panic(fmt.Sprintf("exp: SDC+ and TSS disagree on %s x=%s", fig, x))
	}
	return []Row{
		rowFrom(fig, "SDC+", x, cfg, &sdc.Metrics, len(sdc.SkylineIDs)),
		rowFrom(fig, "TSS", x, cfg, &tss.Metrics, len(tss.SkylineIDs)),
	}
}

// runDynamicPair runs the dynamic contenders — the rebuild-per-query
// SDC+ adaptation and dTSS — averaged over cfg.Queries random partial
// orders (the same orders for both methods).
func runDynamicPair(fig, x string, cfg Config) []Row {
	ds := BuildDataset(cfg)
	db := core.NewDynamicDB(ds, core.Options{})
	var mS, mT core.Metrics
	var skyS, skyT int
	for q := 0; q < cfg.Queries; q++ {
		domains := QueryDomains(cfg, ds, q)
		rs, err := core.DynamicSDCPlus(ds, domains, core.Options{})
		if err != nil {
			panic(err)
		}
		rt, err := db.QueryTSS(domains, core.Options{})
		if err != nil {
			panic(err)
		}
		if !sameSet(rs.SkylineIDs, rt.SkylineIDs) {
			panic(fmt.Sprintf("exp: dynamic SDC+ and dTSS disagree on %s x=%s q=%d", fig, x, q))
		}
		accumulate(&mS, &rs.Metrics)
		accumulate(&mT, &rt.Metrics)
		skyS += len(rs.SkylineIDs)
		skyT += len(rt.SkylineIDs)
	}
	divide(&mS, cfg.Queries)
	divide(&mT, cfg.Queries)
	return []Row{
		rowFrom(fig, "SDC+", x, cfg, &mS, skyS/cfg.Queries),
		rowFrom(fig, "TSS", x, cfg, &mT, skyT/cfg.Queries),
	}
}

func accumulate(dst, src *core.Metrics) {
	dst.ReadIOs += src.ReadIOs
	dst.WriteIOs += src.WriteIOs
	dst.DomChecks += src.DomChecks
	dst.CPU += src.CPU
	dst.NodesOpened += src.NodesOpened
	dst.NodesPruned += src.NodesPruned
}

func divide(m *core.Metrics, q int) {
	if q == 0 {
		return
	}
	m.ReadIOs /= int64(q)
	m.WriteIOs /= int64(q)
	m.DomChecks /= int64(q)
	m.CPU /= time.Duration(q)
}

func sameSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int32]bool, len(a))
	for _, id := range a {
		m[id] = true
	}
	for _, id := range b {
		if !m[id] {
			return false
		}
	}
	return true
}

// cardinalities mirrors the paper's N sweep {100K, 500K, 1M, 5M, 10M}.
var cardinalities = []struct {
	label string
	n     int
}{
	{"100K", 100_000}, {"500K", 500_000}, {"1M", 1_000_000},
	{"5M", 5_000_000}, {"10M", 10_000_000},
}

// dimensionalities mirrors the paper's (|TO|,|PO|) sweep.
var dimensionalities = [][2]int{{2, 1}, {3, 1}, {4, 1}, {2, 2}, {3, 2}, {4, 2}}

// Figure7 — static: total time vs data cardinality, Independent (7a)
// and Anti-correlated (7b), with CPU-share annotations.
func Figure7(scale float64) []Row {
	var rows []Row
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		fig := "7a"
		if dist == data.AntiCorrelated {
			fig = "7b"
		}
		for _, c := range cardinalities {
			cfg := StaticDefaults(scale)
			cfg.N = scaled(c.n, scale)
			cfg.Dist = dist
			rows = append(rows, runStaticPair(fig, c.label, cfg)...)
		}
	}
	return rows
}

// Figure8 — static: total time vs dimensionality (|TO|,|PO|).
func Figure8(scale float64) []Row {
	var rows []Row
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		fig := "8a"
		if dist == data.AntiCorrelated {
			fig = "8b"
		}
		for _, dim := range dimensionalities {
			cfg := StaticDefaults(scale)
			cfg.TO, cfg.PO = dim[0], dim[1]
			cfg.Dist = dist
			x := fmt.Sprintf("%d,%d", dim[0], dim[1])
			rows = append(rows, runStaticPair(fig, x, cfg)...)
		}
	}
	return rows
}

// Figure9 — static: total time vs DAG height h ∈ {2,4,6,8,10}.
func Figure9(scale float64) []Row {
	var rows []Row
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		fig := "9a"
		if dist == data.AntiCorrelated {
			fig = "9b"
		}
		for _, h := range []int{2, 4, 6, 8, 10} {
			cfg := StaticDefaults(scale)
			cfg.H = h
			cfg.Dist = dist
			rows = append(rows, runStaticPair(fig, fmt.Sprint(h), cfg)...)
		}
	}
	return rows
}

// Figure10 — static: total time vs DAG density d ∈ {0.2,…,1}.
func Figure10(scale float64) []Row {
	var rows []Row
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		fig := "10a"
		if dist == data.AntiCorrelated {
			fig = "10b"
		}
		for _, d := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			cfg := StaticDefaults(scale)
			cfg.D = d
			cfg.Dist = dist
			rows = append(rows, runStaticPair(fig, fmt.Sprintf("%.1f", d), cfg)...)
		}
	}
	return rows
}

// ProgressRow is one point of the progressiveness curves (Figure 11):
// the virtual time at which pct% of the skyline had been emitted.
type ProgressRow struct {
	Figure string
	Series string
	Pct    int
	Sec    float64
}

// Figure11 — static progressiveness: time to retrieve each decile of
// the skyline, SDC+ (burst emission per stratum) vs TSS (optimally
// progressive).
func Figure11(scale float64) []ProgressRow {
	var rows []ProgressRow
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		fig := "11a"
		if dist == data.AntiCorrelated {
			fig = "11b"
		}
		cfg := StaticDefaults(scale)
		cfg.Dist = dist
		ds := BuildDataset(cfg)
		sdc := core.SDCPlus(ds, core.Options{})
		tss := core.STSS(ds, core.Options{})
		rows = append(rows, progressCurve(fig, "SDC+", cfg, sdc)...)
		rows = append(rows, progressCurve(fig, "TSS", cfg, tss)...)
	}
	return rows
}

func progressCurve(fig, series string, cfg Config, res *core.Result) []ProgressRow {
	n := len(res.Metrics.Emissions)
	var rows []ProgressRow
	if n == 0 {
		return rows
	}
	for pct := 10; pct <= 100; pct += 10 {
		k := (n*pct + 99) / 100
		if k < 1 {
			k = 1
		}
		e := res.Metrics.Emissions[k-1]
		rows = append(rows, ProgressRow{
			Figure: fig,
			Series: series,
			Pct:    pct,
			Sec:    e.Time(cfg.IOCost).Seconds(),
		})
	}
	return rows
}

// Figure12 — dynamic: total time per query vs data cardinality.
func Figure12(scale float64) []Row {
	var rows []Row
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		fig := "12a"
		if dist == data.AntiCorrelated {
			fig = "12b"
		}
		for _, c := range cardinalities {
			cfg := DynamicDefaults(scale)
			cfg.N = scaled(c.n, scale)
			cfg.Dist = dist
			rows = append(rows, runDynamicPair(fig, c.label, cfg)...)
		}
	}
	return rows
}

// Figure13 — dynamic: total time per query vs dimensionality.
func Figure13(scale float64) []Row {
	var rows []Row
	for _, dist := range []data.Distribution{data.Independent, data.AntiCorrelated} {
		fig := "13a"
		if dist == data.AntiCorrelated {
			fig = "13b"
		}
		for _, dim := range dimensionalities {
			cfg := DynamicDefaults(scale)
			cfg.TO, cfg.PO = dim[0], dim[1]
			cfg.Dist = dist
			x := fmt.Sprintf("%d,%d", dim[0], dim[1])
			rows = append(rows, runDynamicPair(fig, x, cfg)...)
		}
	}
	return rows
}

// Figure14 — dynamic, Anti-correlated: total time vs DAG height (14a)
// and density (14b).
func Figure14(scale float64) []Row {
	var rows []Row
	for _, h := range []int{2, 4, 6, 8, 10} {
		cfg := DynamicDefaults(scale)
		cfg.H = h
		cfg.Dist = data.AntiCorrelated
		rows = append(rows, runDynamicPair("14a", fmt.Sprint(h), cfg)...)
	}
	for _, d := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		cfg := DynamicDefaults(scale)
		cfg.D = d
		cfg.Dist = data.AntiCorrelated
		rows = append(rows, runDynamicPair("14b", fmt.Sprintf("%.1f", d), cfg)...)
	}
	return rows
}

// Ablations measures the effect of each sTSS/dTSS design choice that
// DESIGN.md calls out: the in-memory dominance R-tree, the dyadic range
// index, the stab-only point check, and dTSS's precomputed local
// skylines.
func Ablations(scale float64) []Row {
	var rows []Row
	cfg := StaticDefaults(scale)
	cfg.Dist = data.AntiCorrelated
	ds := BuildDataset(cfg)
	variants := []struct {
		name string
		opt  core.Options
	}{
		{"list/full/dyadic", core.Options{}},
		{"list/full/nodyadic", core.Options{NoDyadic: true}},
		{"list/stab/dyadic", core.Options{StabOnly: true}},
		{"mem/full/dyadic", core.Options{UseMemTree: true}},
		{"mem/stab/dyadic", core.Options{UseMemTree: true, StabOnly: true}},
		{"list/full/buffered", core.Options{BufferPages: 1 << 14}},
	}
	var base []int32
	for _, v := range variants {
		res := core.STSS(ds, v.opt)
		if base == nil {
			base = res.SkylineIDs
		} else if !sameSet(base, res.SkylineIDs) {
			panic("exp: ablation variants disagree")
		}
		rows = append(rows, rowFrom("ablation-static", v.name, "default", cfg,
			&res.Metrics, len(res.SkylineIDs)))
	}

	dcfg := DynamicDefaults(scale)
	dcfg.Dist = data.AntiCorrelated
	dds := BuildDataset(dcfg)
	db := core.NewDynamicDB(dds, core.Options{})
	dvariants := []struct {
		name string
		opt  core.Options
	}{
		{"trees/list", core.Options{}},
		{"trees/mem", core.Options{UseMemTree: true}},
		{"trees/buffered", core.Options{BufferPages: 1 << 14}},
		{"trees/packedroots", core.Options{PackedRoots: true}},
		{"local/list", core.Options{PrecomputedLocal: true}},
		{"local/mem", core.Options{PrecomputedLocal: true, UseMemTree: true}},
	}
	for _, v := range dvariants {
		var m core.Metrics
		sky := 0
		var want []int32
		for q := 0; q < dcfg.Queries; q++ {
			domains := QueryDomains(dcfg, dds, q)
			res, err := db.QueryTSS(domains, v.opt)
			if err != nil {
				panic(err)
			}
			if q == 0 {
				if want == nil {
					want = res.SkylineIDs
				}
			}
			accumulate(&m, &res.Metrics)
			sky += len(res.SkylineIDs)
		}
		divide(&m, dcfg.Queries)
		rows = append(rows, rowFrom("ablation-dynamic", v.name, "default", dcfg, &m, sky/dcfg.Queries))
	}

	// Query-result caching (§V-B): the second identical query is served
	// from the cache; its row shows the near-zero hit cost.
	db.EnableCache(4)
	domains := QueryDomains(dcfg, dds, 0)
	if _, err := db.QueryTSS(domains, core.Options{}); err != nil {
		panic(err)
	}
	cached, err := db.QueryTSS(domains, core.Options{})
	if err != nil {
		panic(err)
	}
	rows = append(rows, rowFrom("ablation-dynamic", "cache/hit", "default", dcfg,
		&cached.Metrics, len(cached.SkylineIDs)))
	return rows
}

// VerifyAgreement cross-checks every registered algorithm — sequential
// and behind the partition-and-merge executor — on a modest
// configuration; the harness-level integration test. PO-capable
// algorithms run on the mixed TO/PO dataset; every algorithm (the
// sort-based TO baselines included) runs on its TO projection.
func VerifyAgreement(scale float64) error {
	cfg := StaticDefaults(scale / 10)
	cfg.Dist = data.AntiCorrelated
	ds := BuildDataset(cfg)
	toDS := &core.Dataset{}
	for _, p := range ds.Pts {
		toDS.Pts = append(toDS.Pts, core.Point{ID: p.ID, TO: p.TO})
	}
	// Oracle: the O(n²) naive skyline while tractable; above that, sTSS
	// (itself property-tested against the naive oracle in core's tests).
	var want, toWant []int32
	oracle := "naive skyline"
	if len(ds.Pts) <= 20_000 {
		want = ds.NaiveSkyline()
		toWant = toDS.NaiveSkyline()
	} else {
		oracle = "sTSS oracle"
		want = core.STSS(ds, core.Options{}).SkylineIDs
		toWant = core.STSS(toDS, core.Options{}).SkylineIDs
	}
	for _, algo := range core.Algorithms() {
		if algo.Capabilities().POCapable {
			res, err := algo.Run(ds, core.Options{})
			if err != nil {
				return fmt.Errorf("exp: %s: %w", algo.Name(), err)
			}
			if !sameSet(res.SkylineIDs, want) {
				return fmt.Errorf("exp: %s disagrees with the %s (%d vs %d points)",
					algo.Name(), oracle, len(res.SkylineIDs), len(want))
			}
			pres, err := core.Parallel(algo).Run(ds, core.Options{Parallelism: 4})
			if err != nil {
				return fmt.Errorf("exp: parallel(%s): %w", algo.Name(), err)
			}
			if !sameSet(pres.SkylineIDs, want) {
				return fmt.Errorf("exp: parallel(%s) disagrees with the %s (%d vs %d points)",
					algo.Name(), oracle, len(pres.SkylineIDs), len(want))
			}
		}
		res, err := algo.Run(toDS, core.Options{})
		if err != nil {
			return fmt.Errorf("exp: %s on TO projection: %w", algo.Name(), err)
		}
		if !sameSet(res.SkylineIDs, toWant) {
			return fmt.Errorf("exp: %s disagrees with the %s on the TO projection", algo.Name(), oracle)
		}
		pres, err := core.Parallel(algo).Run(toDS, core.Options{Parallelism: 4})
		if err != nil {
			return fmt.Errorf("exp: parallel(%s) on TO projection: %w", algo.Name(), err)
		}
		if !sameSet(pres.SkylineIDs, toWant) {
			return fmt.Errorf("exp: parallel(%s) disagrees with the %s on the TO projection", algo.Name(), oracle)
		}
	}
	if res := core.STSS(ds, core.Options{UseMemTree: true}); !sameSet(res.SkylineIDs, want) {
		return fmt.Errorf("exp: sTSS with memtree disagrees with the %s", oracle)
	}
	db := core.NewDynamicDB(ds, core.Options{})
	for q := 0; q < 2; q++ {
		domains := QueryDomains(cfg, ds, q)
		rt, err := db.QueryTSS(domains, core.Options{})
		if err != nil {
			return err
		}
		rs, err := core.DynamicSDCPlus(ds, domains, core.Options{})
		if err != nil {
			return err
		}
		if !sameSet(rt.SkylineIDs, rs.SkylineIDs) {
			return fmt.Errorf("exp: dynamic methods disagree on query %d", q)
		}
	}
	return nil
}

// FigureParallel sweeps the partition-and-merge executor: sequential
// sTSS against parallel(sTSS) for P ∈ {2, 4, 8} shards on each TO
// distribution, at the static default configuration. It is not a paper
// figure — it measures the engine the reproduction adds on top.
func FigureParallel(scale float64) []Row {
	var rows []Row
	stss := core.MustLookup("stss")
	for _, dist := range []data.Distribution{data.Correlated, data.Independent, data.AntiCorrelated} {
		fig := "parallel-" + dist.String()
		cfg := StaticDefaults(scale)
		cfg.Dist = dist
		ds := BuildDataset(cfg)
		seq, err := stss.Run(ds, core.Options{})
		if err != nil {
			panic(err)
		}
		// End-to-end accounting on both sides: sequential sTSS keeps
		// index construction in the Build* counters, while the parallel
		// executor's wall-clock CPU already spans its shards' builds —
		// fold the build costs in so the rows compare like with like.
		seqM := seq.Metrics
		seqM.CPU += seqM.BuildCPU
		seqM.ReadIOs += seqM.BuildReadIOs
		seqM.WriteIOs += seqM.BuildWriteIOs
		rows = append(rows, rowFrom(fig, "P=1", "default", cfg, &seqM, len(seq.SkylineIDs)))
		for _, p := range []int{2, 4, 8} {
			res, err := core.Parallel(stss).Run(ds, core.Options{Parallelism: p})
			if err != nil {
				panic(err)
			}
			if !sameSet(res.SkylineIDs, seq.SkylineIDs) {
				panic(fmt.Sprintf("exp: parallel(stss) P=%d disagrees with sequential on %s", p, fig))
			}
			parM := res.Metrics
			parM.ReadIOs += parM.BuildReadIOs
			parM.WriteIOs += parM.BuildWriteIOs
			rows = append(rows, rowFrom(fig, fmt.Sprintf("P=%d", p), "default", cfg,
				&parM, len(res.SkylineIDs)))
		}
	}
	return rows
}

// HeadlineShapes checks the paper's two headline claims at a given
// scale: (1) static — TSS strictly beats SDC+ in total time at the
// default configuration; (2) dynamic — TSS beats the rebuilding SDC+
// and the gap at this N is at least `minDynamicGap`. Used by tests as a
// regression guard on the reproduction itself.
func HeadlineShapes(scale, minDynamicGap float64) error {
	cfg := StaticDefaults(scale)
	cfg.Dist = data.AntiCorrelated
	rows := runStaticPair("headline-static", "default", cfg)
	var sdc, tss float64
	for _, r := range rows {
		if r.Series == "SDC+" {
			sdc = r.TotalSec
		} else {
			tss = r.TotalSec
		}
	}
	if tss >= sdc {
		return fmt.Errorf("exp: static headline violated: TSS %.3fs vs SDC+ %.3fs", tss, sdc)
	}
	dcfg := DynamicDefaults(scale)
	dcfg.Dist = data.AntiCorrelated
	dcfg.Queries = 2
	drows := runDynamicPair("headline-dynamic", "default", dcfg)
	sdc, tss = 0, 0
	for _, r := range drows {
		if r.Series == "SDC+" {
			sdc = r.TotalSec
		} else {
			tss = r.TotalSec
		}
	}
	if tss <= 0 || sdc/tss < minDynamicGap {
		return fmt.Errorf("exp: dynamic headline violated: gap %.2fx < %.2fx (TSS %.3fs, SDC+ %.3fs)",
			sdc/tss, minDynamicGap, tss, sdc)
	}
	return nil
}
