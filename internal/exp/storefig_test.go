package exp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// TestFigureStoreShapes sanity-checks the storage figure at tiny scale.
func TestFigureStoreShapes(t *testing.T) {
	rows := FigureStore(0.001)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.N <= 0 || r.Batch <= 0 || r.RebuildMs <= 0 || r.IncrMs <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		if r.WALFsyncMs <= 0 || r.WALNoSyncMs <= 0 {
			t.Fatalf("missing WAL measurements: %+v", r)
		}
	}
}

// BenchmarkApplyBatchIncremental measures the incremental maintenance
// path in isolation (the figure's inner loop), profilable with
// -cpuprofile.
func BenchmarkApplyBatchIncremental(b *testing.B) {
	cfg := DynamicDefaults(0.02)
	cfg.N = 50000
	ds := BuildDataset(cfg)
	db := core.NewDynamicDB(ds, core.Options{})
	rng := rand.New(rand.NewSource(5))
	removes, adds := randomBatch(rng, cfg, ds, 500)
	newDS, delta := deltaDataset(ds, removes, adds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ApplyBatch(newDS, delta); err != nil {
			b.Fatal(err)
		}
	}
}
