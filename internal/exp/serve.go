package exp

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/poset"
)

// ServeRow is one measurement of the serving experiment: a skewed
// stream of dynamic queries (distinct preference DAGs drawn Zipf-like,
// the shape a population of users with popular taste profiles
// produces) answered by one prepared DynamicDB at a given result-cache
// capacity.
type ServeRow struct {
	Capacity  int     // result-cache capacity (0 = cache disabled)
	Distinct  int     // distinct DAG sets in the workload pool
	Queries   int     // queries issued
	Hits      int64   // cache hits
	HitRate   float64 // hits / queries
	QPS       float64 // wall-clock queries per second
	AvgMs     float64 // wall-clock mean latency per query
	VirtualMs float64 // mean simulated latency (CPU + 5 ms per IO)
}

// FigureServe measures what the tssserve scenario turns on: throughput
// of per-request preference-DAG queries against one prepared dynamic
// database as the result-cache capacity grows. It is not a paper
// figure — it quantifies §V-B's "caching of past results" remark under
// a serving workload.
func FigureServe(scale float64) []ServeRow {
	const (
		distinct = 16
		queries  = 96
	)
	cfg := DynamicDefaults(scale)
	ds := BuildDataset(cfg)

	// The query pool: distinct random preference-DAG sets over the
	// dataset's value universe.
	pool := make([][]*poset.Domain, distinct)
	for q := range pool {
		pool[q] = QueryDomains(cfg, ds, q)
	}
	// Skewed arrival sequence: a Zipf draw makes a few DAG sets popular
	// — the regime where a small cache already absorbs most traffic.
	rng := rand.New(rand.NewSource(cfg.Seed*31 + 17))
	zipf := rand.NewZipf(rng, 1.3, 1, distinct-1)
	seq := make([]int, queries)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}

	var rows []ServeRow
	for _, capacity := range []int{0, 1, 2, 4, 8, 16} {
		db := core.NewDynamicDB(ds, core.Options{})
		if capacity > 0 {
			db.EnableCache(capacity)
		}
		var virtual time.Duration
		start := time.Now()
		for _, qi := range seq {
			res, err := db.QueryTSS(pool[qi], core.Options{UseMemTree: true})
			if err != nil {
				panic(err)
			}
			virtual += res.Metrics.TotalTime(cfg.IOCost)
		}
		wall := time.Since(start)
		hits, _ := db.CacheStats()
		rows = append(rows, ServeRow{
			Capacity:  capacity,
			Distinct:  distinct,
			Queries:   queries,
			Hits:      hits,
			HitRate:   float64(hits) / float64(queries),
			QPS:       float64(queries) / wall.Seconds(),
			AvgMs:     wall.Seconds() / float64(queries) * 1000,
			VirtualMs: virtual.Seconds() / float64(queries) * 1000,
		})
	}
	return rows
}
