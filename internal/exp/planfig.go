package exp

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/plan"
)

// PlanRow is one measurement of the planner experiment: a (workload,
// series) cell, where the series is either the cost-based planner
// ("auto", annotated with its chosen algorithm and the ratio to the
// best fixed algorithm) or one fixed algorithm / forced route.
type PlanRow struct {
	Workload string  // distribution + query variant
	Series   string  // "auto", an algorithm name, or a route
	Algo     string  // chosen algorithm (auto and route rows)
	WallMs   float64 // measured wall-clock, best of planBestOf runs
	Skyline  int     // result rows
	Ratio    float64 // auto rows: auto / best fixed (≤ 1 means auto won)
}

const planBestOf = 3

// planWorkload is one logical query of the sweep.
type planWorkload struct {
	name string
	q    plan.Query
}

// planWorkloads derives the figure's query battery from a dataset's
// statistics: the full skyline, a selective anti-monotone constraint
// (the cheapest ~10% of to_0), a ranked top-k, and a TO-only subspace
// (which opens the field to the sort-based TO algorithms).
func planWorkloads(stats *plan.Stats) []planWorkload {
	span := stats.TO[0].Max - stats.TO[0].Min
	sel := stats.TO[0].Min + span/10
	return []planWorkload{
		{"full", plan.Query{}},
		{"constrained(to_0<=p10)", plan.Query{Where: []plan.Predicate{
			{Kind: plan.TORange, Dim: 0, HasHi: true, Hi: sel}}}},
		{"topk10(domcount)", plan.Query{TopK: 10, Rank: plan.RankDomCount}},
		{"subspace(TO-only)", plan.Query{Subspace: &plan.Subspace{TO: []int{0, 1}}}},
	}
}

// timePlan runs q through the planner best-of-planBestOf times and
// returns the fastest wall-clock plus the last result and explain.
func timePlan(ds *core.Dataset, q plan.Query, env plan.Env) (float64, *core.Result, *plan.Explain, error) {
	best := -1.0
	var res *core.Result
	var ex *plan.Explain
	for i := 0; i < planBestOf; i++ {
		p, err := plan.New(ds, q, env)
		if err != nil {
			return 0, nil, nil, err
		}
		start := time.Now()
		r, err := p.Run(context.Background(), ds, env)
		if err != nil {
			return 0, nil, nil, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if best < 0 || ms < best {
			best = ms
		}
		res, ex = r, &p.Explain
	}
	return best, res, ex, nil
}

func sameIDSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// FigurePlan measures the cost-based planner against every fixed
// algorithm on each query variant and distribution: the acceptance bar
// is that "auto" is never worse than 2× the best fixed choice. A second
// block forces the predicate-placement routes on the selective
// constrained query — push-down vs post-filter, cold and cached — the
// planner's soundness-gated optimization. Every measured run's result
// set is cross-checked against every other's (the differential-fuzz
// harness checks them all against the brute-force oracle).
func FigurePlan(scale float64) []PlanRow {
	var rows []PlanRow
	for _, dist := range []data.Distribution{data.Correlated, data.Independent, data.AntiCorrelated} {
		cfg := StaticDefaults(scale)
		cfg.Dist = dist
		ds := BuildDataset(cfg)
		stats := plan.Analyze(ds)
		learned := plan.NewLearned()
		env := plan.Env{Stats: stats, Learned: learned}

		// Warm the feedback loop: one observed full run corrects the
		// skyline-fraction estimate and the chosen algorithm's cost
		// multiplier — the statistics-driven half of the planner.
		if _, _, _, err := timePlan(ds, plan.Query{Hints: plan.Hints{NoCache: true}}, env); err != nil {
			panic(err)
		}

		for _, wl := range planWorkloads(stats) {
			label := fmt.Sprintf("plan-%s/%s", dist, wl.name)
			q := wl.q
			q.Hints.NoCache = true // measure computation, not the memo

			autoMs, autoRes, autoEx, err := timePlan(ds, q, env)
			if err != nil {
				panic(err)
			}

			bestFixed := -1.0
			for _, a := range core.Algorithms() {
				fq := q
				fq.Hints.Algorithm = a.Name()
				effPO := ds.NumPO()
				if q.Subspace != nil {
					effPO = len(q.Subspace.PO)
				}
				if effPO > 0 && !a.Capabilities().POCapable {
					continue
				}
				ms, res, _, err := timePlan(ds, fq, env)
				if err != nil {
					panic(fmt.Sprintf("exp: %s on %s: %v", a.Name(), label, err))
				}
				if !sameIDSet(res.SkylineIDs, autoRes.SkylineIDs) {
					panic(fmt.Sprintf("exp: %s disagrees with auto plan on %s", a.Name(), label))
				}
				if bestFixed < 0 || ms < bestFixed {
					bestFixed = ms
				}
				rows = append(rows, PlanRow{
					Workload: label, Series: a.Name(), Algo: a.Name(),
					WallMs: ms, Skyline: len(res.SkylineIDs),
				})
			}
			ratio := 0.0
			if bestFixed > 0 {
				ratio = autoMs / bestFixed
			}
			rows = append(rows, PlanRow{
				Workload: label, Series: "auto", Algo: autoEx.Algorithm,
				WallMs: autoMs, Skyline: len(autoRes.SkylineIDs), Ratio: ratio,
			})
		}

		// Predicate placement on the selective constraint: push-down
		// reads sel·N rows; post-filter must compute the full skyline
		// first (sound here — the predicate is anti-monotone) unless the
		// memo cache already holds it.
		sel := planWorkloads(stats)[1].q
		label := fmt.Sprintf("plan-%s/placement", dist)
		push := sel
		push.Hints = plan.Hints{Route: plan.RoutePushdown, NoCache: true}
		pushMs, pushRes, pushEx, err := timePlan(ds, push, env)
		if err != nil {
			panic(err)
		}
		post := sel
		post.Hints = plan.Hints{Route: plan.RoutePostFilter, NoCache: true}
		postMs, postRes, postEx, err := timePlan(ds, post, env)
		if err != nil {
			panic(err)
		}
		if !sameIDSet(pushRes.SkylineIDs, postRes.SkylineIDs) {
			panic("exp: push-down and post-filter disagree on " + label)
		}
		cache := plan.NewMemoCache()
		cenv := plan.Env{Stats: stats, Learned: learned, Cache: cache}
		if _, _, _, err := timePlan(ds, plan.Query{}, cenv); err != nil {
			panic(err) // warm the memo
		}
		cachedMs, cachedRes, cachedEx, err := timePlan(ds, sel, cenv)
		if err != nil {
			panic(err)
		}
		if !sameIDSet(cachedRes.SkylineIDs, pushRes.SkylineIDs) {
			panic("exp: cached post-filter disagrees on " + label)
		}
		rows = append(rows,
			PlanRow{Workload: label, Series: "pushdown", Algo: pushEx.Algorithm,
				WallMs: pushMs, Skyline: len(pushRes.SkylineIDs)},
			PlanRow{Workload: label, Series: "postfilter-cold", Algo: postEx.Algorithm,
				WallMs: postMs, Skyline: len(postRes.SkylineIDs)},
			PlanRow{Workload: label, Series: "postfilter-cached", Algo: string(cachedEx.Route),
				WallMs: cachedMs, Skyline: len(cachedRes.SkylineIDs)},
		)
	}
	return rows
}
