// Package exp is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§VI) — Figures 7–14 plus the
// parameter grid of Table III — and adds ablation experiments for the
// design choices called out in DESIGN.md.
//
// The harness is scale-aware: every figure accepts a scale factor
// multiplying the paper's data cardinalities, so the full parameter
// sweeps run on a laptop in minutes at scale≈0.02 and reproduce the
// paper's exact setup at scale 1.
package exp

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/poset"
)

// Config carries one experiment's parameters (Table III).
type Config struct {
	N      int               // data cardinality
	TO     int               // number of totally ordered attributes
	PO     int               // number of partially ordered attributes
	H      int               // DAG height (lattice universe size)
	D      float64           // DAG density (node retention probability)
	Dist   data.Distribution // Independent or Anti-correlated
	Seed   int64
	IOCost time.Duration // simulated cost per page access
	// Queries is how many random dynamic queries to average over.
	Queries int
	// TODomain is the size of each totally ordered domain.
	TODomain int
}

// Paper defaults (§VI-B, §VI-C). The static experiments default to
// N=1M, |TO|=2, |PO|=2, h=8, d=0.8; the dynamic ones to N=1M, |TO|=3,
// |PO|=1, h=6, d=0.8. Each TO domain has 10000 values; an IO costs 5ms.
const (
	DefaultStaticN  = 1_000_000
	DefaultDynamicN = 1_000_000
	DefaultTODomain = 10_000
)

// StaticDefaults returns the paper's default static configuration at
// the given scale.
func StaticDefaults(scale float64) Config {
	return Config{
		N:        scaled(DefaultStaticN, scale),
		TO:       2,
		PO:       2,
		H:        8,
		D:        0.8,
		Dist:     data.Independent,
		Seed:     1,
		IOCost:   core.DefaultIOCost,
		Queries:  3,
		TODomain: DefaultTODomain,
	}
}

// DynamicDefaults returns the paper's default dynamic configuration at
// the given scale.
func DynamicDefaults(scale float64) Config {
	c := StaticDefaults(scale)
	c.N = scaled(DefaultDynamicN, scale)
	c.TO = 3
	c.PO = 1
	c.H = 6
	return c
}

func scaled(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	s := int(float64(n) * scale)
	if s < 100 {
		s = 100
	}
	return s
}

// BuildDomains generates the PO domains: one thinned containment
// lattice per PO attribute.
func BuildDomains(cfg Config) []*poset.Domain {
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + 13))
	domains := make([]*poset.Domain, cfg.PO)
	for d := 0; d < cfg.PO; d++ {
		domains[d] = poset.MustDomain(data.Lattice(rng, cfg.H, cfg.D))
	}
	return domains
}

// BuildDataset generates the synthetic dataset of one experiment.
func BuildDataset(cfg Config) *core.Dataset {
	domains := BuildDomains(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	to := data.GenTO(rng, cfg.N, cfg.TO, cfg.TODomain, cfg.Dist)
	sizes := make([]int, cfg.PO)
	for d := range domains {
		sizes[d] = domains[d].Size()
	}
	po := data.GenPO(rng, cfg.N, sizes)
	ds := &core.Dataset{Domains: domains}
	ds.Pts = make([]core.Point, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ds.Pts[i] = core.Point{ID: int32(i), TO: to[i]}
		if cfg.PO > 0 {
			ds.Pts[i].PO = po[i]
		}
	}
	return ds
}

// QueryDomains generates the q-th random dynamic-query partial orders
// for a dataset: one random order per PO attribute over the same value
// sets, with a modest average out-degree.
func QueryDomains(cfg Config, ds *core.Dataset, q int) []*poset.Domain {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(q)*97 + 7))
	domains := make([]*poset.Domain, len(ds.Domains))
	for d := range ds.Domains {
		n := ds.Domains[d].Size()
		domains[d] = poset.MustDomain(data.RandomOrderAvgDegree(rng, n, 2))
	}
	return domains
}
