package exp

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// WriteRows renders measurement rows as an aligned text table, grouped
// by figure, with a TSS-vs-SDC+ speedup column — the "who wins, by what
// factor" summary the reproduction is judged on.
func WriteRows(w io.Writer, rows []Row) {
	byFig := map[string][]Row{}
	var figs []string
	for _, r := range rows {
		if _, ok := byFig[r.Figure]; !ok {
			figs = append(figs, r.Figure)
		}
		byFig[r.Figure] = append(byFig[r.Figure], r)
	}
	sort.Strings(figs)
	for _, fig := range figs {
		fmt.Fprintf(w, "Figure %s\n", fig)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "x\tseries\ttotal(s)\tcpu(s)\tcpu%\tIOs\tskyline\tchecks\tspeedup")
		// Pair rows by X to compute speedups.
		byX := map[string]map[string]Row{}
		var xs []string
		for _, r := range byFig[fig] {
			if _, ok := byX[r.X]; !ok {
				byX[r.X] = map[string]Row{}
				xs = append(xs, r.X)
			}
			byX[r.X][r.Series] = r
		}
		for _, x := range xs {
			pair := byX[x]
			var speedup float64
			if s, ok := pair["SDC+"]; ok {
				if t, ok2 := pair["TSS"]; ok2 && t.TotalSec > 0 {
					speedup = s.TotalSec / t.TotalSec
				}
			}
			for _, series := range []string{"SDC+", "TSS"} {
				r, ok := pair[series]
				if !ok {
					continue
				}
				sp := ""
				if series == "TSS" && speedup > 0 {
					sp = fmt.Sprintf("%.2fx", speedup)
				}
				fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.0f%%\t%d\t%d\t%d\t%s\n",
					r.X, r.Series, r.TotalSec, r.CPUSec, r.CPUShare*100,
					r.IOs, r.Skyline, r.Checks, sp)
			}
			// Non-paired series (ablations) render plainly.
			for series, r := range pair {
				if series == "SDC+" || series == "TSS" {
					continue
				}
				fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.0f%%\t%d\t%d\t%d\t\n",
					r.X, r.Series, r.TotalSec, r.CPUSec, r.CPUShare*100,
					r.IOs, r.Skyline, r.Checks)
			}
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
}

// WriteTableIII renders the paper's parameter grid (Table III) with the
// effective values after scaling.
func WriteTableIII(w io.Writer, scale float64) {
	fmt.Fprintln(w, "Table III — parameters and values")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "parameter\tpaper range\tat this scale")
	fmt.Fprintf(tw, "data cardinality N\t100K, 500K, 1M, 5M, 10M\t%d … %d\n",
		scaled(100_000, scale), scaled(10_000_000, scale))
	fmt.Fprintln(tw, "TO attributes |TO|\t2, 3, 4\tunchanged")
	fmt.Fprintln(tw, "PO attributes |PO|\t1, 2\tunchanged")
	fmt.Fprintln(tw, "DAG height h\t2, 4, 6, 8, 10\tunchanged")
	fmt.Fprintln(tw, "DAG density d\t0.2, 0.4, 0.6, 0.8, 1\tunchanged")
	fmt.Fprintf(tw, "TO domain size\t10000\t%d\n", DefaultTODomain)
	fmt.Fprintln(tw, "IO cost\t5 ms per page\tunchanged")
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteProgress renders the Figure 11 progressiveness curves.
func WriteProgress(w io.Writer, rows []ProgressRow) {
	byFig := map[string][]ProgressRow{}
	var figs []string
	for _, r := range rows {
		if _, ok := byFig[r.Figure]; !ok {
			figs = append(figs, r.Figure)
		}
		byFig[r.Figure] = append(byFig[r.Figure], r)
	}
	sort.Strings(figs)
	for _, fig := range figs {
		fmt.Fprintf(w, "Figure %s (time in seconds to retrieve x%% of the skyline)\n", fig)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "series\t10%\t20%\t30%\t40%\t50%\t60%\t70%\t80%\t90%\t100%")
		for _, series := range []string{"SDC+", "TSS"} {
			vals := map[int]float64{}
			for _, r := range byFig[fig] {
				if r.Series == series {
					vals[r.Pct] = r.Sec
				}
			}
			fmt.Fprintf(tw, "%s", series)
			for pct := 10; pct <= 100; pct += 10 {
				fmt.Fprintf(tw, "\t%.3f", vals[pct])
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		fmt.Fprintln(w)
	}
}

// WriteServeRows renders the serving experiment: dynamic-query
// throughput vs result-cache capacity under a skewed DAG workload.
func WriteServeRows(w io.Writer, rows []ServeRow) {
	fmt.Fprintln(w, "Serve — dynamic queries/sec vs result-cache capacity")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "capacity\tdistinct\tqueries\thits\thit%\tqps\tavg(ms)\tvirtual(ms)")
	for _, r := range rows {
		capLabel := fmt.Sprint(r.Capacity)
		if r.Capacity == 0 {
			capLabel = "off"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f%%\t%.0f\t%.3f\t%.3f\n",
			capLabel, r.Distinct, r.Queries, r.Hits, r.HitRate*100,
			r.QPS, r.AvgMs, r.VirtualMs)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WritePlanRows renders the planner experiment: the cost-based choice
// against every fixed algorithm, per workload, plus the forced
// predicate-placement routes. The ratio column annotates auto rows with
// auto/best-fixed (the acceptance bar is ≤ 2).
func WritePlanRows(w io.Writer, rows []PlanRow) {
	fmt.Fprintln(w, "Plan — cost-based algorithm choice vs fixed algorithms (wall-clock)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tseries\talgo\twall(ms)\tskyline\tauto/best")
	last := ""
	for _, r := range rows {
		if r.Workload != last && last != "" {
			fmt.Fprintln(tw, "\t\t\t\t\t")
		}
		last = r.Workload
		ratio := ""
		if r.Series == "auto" && r.Ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", r.Ratio)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.2f\t%d\t%s\n",
			r.Workload, r.Series, r.Algo, r.WallMs, r.Skyline, ratio)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteMaintainRows renders the maintenance experiment: first query
// after a batch, maintained memo vs fresh memo, plus the advance cost.
func WriteMaintainRows(w io.Writer, rows []MaintainRow) {
	fmt.Fprintln(w, "Maintain — query after batch: maintained memo vs fresh memo")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\tbatch\tadvance(ms)\tmaintained(ms)\tcold(ms)\tspeedup\tpromotions\tfallback")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.3f\t%.2f\t%.1fx\t%d\t%v\n",
			r.N, r.Batch, r.AdvanceMs, r.MaintainMs, r.ColdMs, r.Speedup, r.Promotions, r.Fallback)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteRankRows renders the ranking experiment: index-backed dp-idp
// top-k and single layered queries against their over-fetch baselines.
func WriteRankRows(w io.Writer, rows []RankRow) {
	fmt.Fprintln(w, "Rank — maintained dp-idp score index and layered queries vs over-fetch")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "kind\tN\tk\trows\tfast(ms)\tbaseline(ms)\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.3f\t%.2f\t%.1fx\n",
			r.Kind, r.N, r.K, r.Rows, r.FastMs, r.BaselineMs, r.Speedup)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// WriteStoreRows renders the storage experiment: batch-apply latency,
// rebuild-aside vs incremental, plus WAL append durability cost.
func WriteStoreRows(w io.Writer, rows []StoreRow) {
	fmt.Fprintln(w, "Store — batch apply: rebuild-aside vs incremental (plus WAL append cost)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N\tbatch\trebuild(ms)\tincremental(ms)\tspeedup\twal+fsync(ms)\twal-fsync(ms)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2f\t%.1fx\t%.3f\t%.3f\n",
			r.N, r.Batch, r.RebuildMs, r.IncrMs, r.Speedup, r.WALFsyncMs, r.WALNoSyncMs)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
