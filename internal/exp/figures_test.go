package exp

import (
	"strings"
	"testing"
)

// TestAllFiguresTiny smoke-runs every figure sweep at the N=100 floor:
// the full parameter grids execute, both series agree internally
// (runStaticPair/runDynamicPair panic on disagreement) and the reports
// render. The realistic-scale numbers live in bench_results_scale02.txt
// and bench_output.txt.
func TestAllFiguresTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweeps")
	}
	cases := []struct {
		name string
		rows func(float64) []Row
		want int // rows = sweep points × 2 sub-figures × 2 series
	}{
		{"Figure7", Figure7, 5 * 2 * 2},
		{"Figure8", Figure8, 6 * 2 * 2},
		{"Figure9", Figure9, 5 * 2 * 2},
		{"Figure10", Figure10, 5 * 2 * 2},
		{"Figure12", Figure12, 5 * 2 * 2},
		{"Figure13", Figure13, 6 * 2 * 2},
		{"Figure14", Figure14, 10 * 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rows := c.rows(tinyScale)
			if len(rows) != c.want {
				t.Fatalf("%s produced %d rows, want %d", c.name, len(rows), c.want)
			}
			var buf strings.Builder
			WriteRows(&buf, rows)
			if !strings.Contains(buf.String(), "speedup") {
				t.Error("report missing header")
			}
			for _, r := range rows {
				if r.TotalSec < 0 || r.Skyline < 0 {
					t.Fatalf("degenerate row %+v", r)
				}
			}
		})
	}
}

func TestWriteTableIII(t *testing.T) {
	var buf strings.Builder
	WriteTableIII(&buf, 0.5)
	out := buf.String()
	for _, want := range []string{"Table III", "DAG height", "5 ms per page", "50000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III output missing %q:\n%s", want, out)
		}
	}
}
