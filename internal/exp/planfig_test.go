package exp

import (
	"strings"
	"testing"
)

// TestFigurePlanShape runs the planner figure at a tiny scale: every
// workload must yield one auto row with a chosen algorithm and a
// positive best-fixed ratio (result agreement across all plans is
// enforced inside FigurePlan — it panics on any mismatch), plus the
// three predicate-placement rows.
func TestFigurePlanShape(t *testing.T) {
	rows := FigurePlan(0.0002) // n=200: shape check, not a measurement
	autos, placements := 0, 0
	for _, r := range rows {
		switch r.Series {
		case "auto":
			autos++
			if r.Algo == "" || r.Ratio <= 0 || r.WallMs < 0 {
				t.Fatalf("bad auto row: %+v", r)
			}
		case "pushdown", "postfilter-cold", "postfilter-cached":
			placements++
			if !strings.Contains(r.Workload, "placement") {
				t.Fatalf("placement row outside placement workload: %+v", r)
			}
		}
	}
	if autos != 12 { // 3 distributions × 4 workloads
		t.Fatalf("%d auto rows, want 12", autos)
	}
	if placements != 9 { // 3 distributions × 3 routes
		t.Fatalf("%d placement rows, want 9", placements)
	}
}
