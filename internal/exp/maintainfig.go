package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
)

// MaintainRow is one measurement of the maintenance experiment: after a
// batch of a given size, how fast is the first full-skyline query when
// the memo was advanced across the delta (maintained hit) versus when
// the batch installed a fresh memo (cold recompute), and what did the
// advance itself cost.
type MaintainRow struct {
	N          int     // rows before the batch
	Batch      int     // rows touched (removes + adds)
	AdvanceMs  float64 // MemoCache.Advance latency for the batch
	MaintainMs float64 // first query after the batch, maintained memo
	ColdMs     float64 // first query after the batch, fresh memo
	Speedup    float64 // ColdMs / MaintainMs
	Promotions int     // member-removal promotions the advance performed
	Fallback   bool    // churn threshold refused; first query recomputed cold
}

// FigureMaintain measures what delta-driven memo maintenance changes
// about query-after-batch latency: with the memo advanced across the
// mutation the next full query is a cache hit (microseconds), while a
// fresh memo pays a cold skyline recompute over all N rows. The base
// cardinality is 2.5M so the default -scale 0.02 exercises the 50k-row
// table of the acceptance setup; batches sweep a single row up to 10%
// of N. Both paths must return the identical skyline — the harness
// panics otherwise.
func FigureMaintain(scale float64) []MaintainRow {
	cfg := DynamicDefaults(scale)
	cfg.N = scaled(2_500_000, scale)
	ds := BuildDataset(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed*313 + 17))

	var rows []MaintainRow
	for _, frac := range []float64{0, 0.001, 0.01, 0.10} {
		batch := int(float64(cfg.N) * frac)
		if batch < 1 {
			batch = 1 // frac 0 stands for the single-row batch
		}
		removes, adds := randomBatch(rng, cfg, ds, batch)
		newDS, delta := deltaDataset(ds, removes, adds)

		// Warm the memo on the pre-batch snapshot, as a serving table
		// would have after answering the query once; a direct maintainer
		// call reports what the advance will do (promotions, fallback).
		memo := plan.NewMemoCache()
		oldSky := runPlanQuery(ds, memo)
		_, mst, maintained := core.MaintainSkyline(ds, newDS, delta, oldSky, nil, nil)

		advance := bestOf(3, func() {
			memo.Advance(ds, newDS, delta)
		})

		// The quantity under test is the *first* query after the batch,
		// so each timing rep re-advances outside the clock and times one
		// query against the freshly advanced memo.
		var maintIDs []int32
		maintain := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			adv := memo.Advance(ds, newDS, delta)
			start := time.Now()
			maintIDs = runPlanQuery(newDS, adv)
			if d := time.Since(start); d < maintain {
				maintain = d
			}
		}
		var coldIDs []int32
		cold := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			fresh := plan.NewMemoCache()
			start := time.Now()
			coldIDs = runPlanQuery(newDS, fresh)
			if d := time.Since(start); d < cold {
				cold = d
			}
		}
		if !sameIDSet(maintIDs, coldIDs) {
			panic(fmt.Sprintf("maintain(%d rows, batch %d): maintained skyline (%d ids) != cold skyline (%d ids)",
				cfg.N, batch, len(maintIDs), len(coldIDs)))
		}

		rows = append(rows, MaintainRow{
			N:          cfg.N,
			Batch:      batch,
			AdvanceMs:  advance.Seconds() * 1000,
			MaintainMs: maintain.Seconds() * 1000,
			ColdMs:     cold.Seconds() * 1000,
			Speedup:    cold.Seconds() / maintain.Seconds(),
			Promotions: mst.Promotions,
			Fallback:   !maintained,
		})
	}
	return rows
}

// runPlanQuery answers the full-skyline query through the planner with
// the given cache, returning the skyline ids.
func runPlanQuery(ds *core.Dataset, cache plan.Cache) []int32 {
	env := plan.Env{Learned: plan.NewLearned(), Cache: cache}
	p, err := plan.New(ds, plan.Query{}, env)
	if err != nil {
		panic(err)
	}
	res, err := p.Run(context.Background(), ds, env)
	if err != nil {
		panic(err)
	}
	return res.SkylineIDs
}
