package exp

import (
	"strings"
	"testing"

	"repro/internal/data"
)

// tinyScale keeps harness tests fast: N = 100 (the scaled floor).
const tinyScale = 0.00005

func TestDefaults(t *testing.T) {
	s := StaticDefaults(1)
	if s.N != 1_000_000 || s.TO != 2 || s.PO != 2 || s.H != 8 || s.D != 0.8 {
		t.Errorf("static defaults wrong: %+v", s)
	}
	d := DynamicDefaults(1)
	if d.N != 1_000_000 || d.TO != 3 || d.PO != 1 || d.H != 6 {
		t.Errorf("dynamic defaults wrong: %+v", d)
	}
	if got := StaticDefaults(0.5).N; got != 500_000 {
		t.Errorf("scaled N = %d, want 500000", got)
	}
	if got := scaled(1000, 0.00001); got != 100 {
		t.Errorf("scale floor = %d, want 100", got)
	}
}

func TestBuildDatasetShape(t *testing.T) {
	cfg := StaticDefaults(tinyScale)
	ds := BuildDataset(cfg)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ds.Pts) != cfg.N || ds.NumTO() != 2 || ds.NumPO() != 2 {
		t.Fatalf("dataset shape wrong: n=%d TO=%d PO=%d", len(ds.Pts), ds.NumTO(), ds.NumPO())
	}
	// Deterministic for equal seeds.
	ds2 := BuildDataset(cfg)
	for i := range ds.Pts {
		for d := range ds.Pts[i].TO {
			if ds.Pts[i].TO[d] != ds2.Pts[i].TO[d] {
				t.Fatal("dataset generation not deterministic")
			}
		}
	}
}

func TestQueryDomainsShape(t *testing.T) {
	cfg := DynamicDefaults(tinyScale)
	ds := BuildDataset(cfg)
	q0 := QueryDomains(cfg, ds, 0)
	q1 := QueryDomains(cfg, ds, 1)
	if len(q0) != 1 || q0[0].Size() != ds.Domains[0].Size() {
		t.Fatal("query domain shape wrong")
	}
	// Different query indexes give different orders (with overwhelming
	// probability).
	if q0[0].DAG().Edges() == q1[0].DAG().Edges() &&
		q0[0].Ord(0) == q1[0].Ord(0) && q0[0].Ord(1) == q1[0].Ord(1) {
		t.Log("query domains look identical; acceptable but unlikely")
	}
}

func TestRunStaticPairAgreesAndReports(t *testing.T) {
	cfg := StaticDefaults(tinyScale)
	cfg.Dist = data.AntiCorrelated
	rows := runStaticPair("t", "x", cfg) // panics on disagreement
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.TotalSec <= 0 || r.Skyline == 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
}

func TestRunDynamicPairAgrees(t *testing.T) {
	// At very small N the many group-root reads of dTSS outweigh the
	// rebuild (the paper's §VI-C caveat about root visits), so this
	// test needs a data size where the rebuild passes dominate.
	cfg := DynamicDefaults(0.02) // N = 20000
	cfg.Queries = 2
	rows := runDynamicPair("t", "x", cfg)
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	// The rebuild baseline must be slower once IOs are charged: it
	// re-sorts and re-loads the file on every query.
	var sdc, tss Row
	for _, r := range rows {
		if r.Series == "SDC+" {
			sdc = r
		} else {
			tss = r
		}
	}
	if sdc.IOs <= tss.IOs {
		t.Errorf("dynamic SDC+ should cost more IOs (rebuild): sdc=%d tss=%d", sdc.IOs, tss.IOs)
	}
}

func TestFigure11Shape(t *testing.T) {
	rows := Figure11(tinyScale)
	series := map[string]int{}
	for _, r := range rows {
		series[r.Figure+"/"+r.Series]++
		if r.Sec < 0 {
			t.Error("negative progress time")
		}
	}
	for _, key := range []string{"11a/TSS", "11a/SDC+", "11b/TSS", "11b/SDC+"} {
		if series[key] != 10 {
			t.Errorf("%s has %d deciles, want 10", key, series[key])
		}
	}
	var buf strings.Builder
	WriteProgress(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 11a") {
		t.Error("progress report missing figure header")
	}
}

func TestVerifyAgreement(t *testing.T) {
	if err := VerifyAgreement(tinyScale * 10); err != nil {
		t.Fatal(err)
	}
}

// TestHeadlineShapes guards the reproduction's two headline claims at a
// size where they are expected to hold (N=20K static and dynamic, with
// a ≥1.5× dynamic gap; the paper's gaps at full scale are larger).
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shapes need a non-trivial N")
	}
	if err := HeadlineShapes(0.02, 1.5); err != nil {
		t.Fatal(err)
	}
}

func TestAblationsRun(t *testing.T) {
	rows := Ablations(tinyScale)
	if len(rows) != 13 {
		t.Fatalf("want 13 ablation rows, got %d", len(rows))
	}
	var buf strings.Builder
	WriteRows(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "ablation-static") || !strings.Contains(out, "mem/full/dyadic") {
		t.Error("ablation report incomplete")
	}
}

func TestWriteRowsSpeedupColumn(t *testing.T) {
	rows := []Row{
		{Figure: "7a", Series: "SDC+", X: "100K", TotalSec: 10},
		{Figure: "7a", Series: "TSS", X: "100K", TotalSec: 2},
	}
	var buf strings.Builder
	WriteRows(&buf, rows)
	if !strings.Contains(buf.String(), "5.00x") {
		t.Errorf("speedup column missing:\n%s", buf.String())
	}
}
