package exp

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/plan"
)

// RankRow is one measurement of the ranking experiment: what the
// maintained dp-idp score index buys a ranked top-k over recomputing
// every score from cold, and what a single layered query buys over
// peeling the skyline off K times.
type RankRow struct {
	Kind       string  // "dpidp" or "layer"
	N          int     // table rows
	K          int     // top-k (dpidp) or layer depth bound (layer)
	Rows       int     // result rows returned
	FastMs     float64 // index-backed top-k / single layered query
	BaselineMs float64 // cold over-fetch / K-fold skyline peeling
	Speedup    float64 // BaselineMs / FastMs
}

// FigureRank measures the two ranking paths this reproduction adds on
// top of the paper's skylines. The dp-idp legs compare the serving
// steady state — score index maintained across a batch alongside the
// skyline memo, so the ranked top-k reads k scores — against the
// over-fetch baseline that recomputes the full skyline and scores
// every member before truncating. The layer legs compare one
// rank=layer query (columnar layering pass over the table) against
// the only recourse a client had before: compute the skyline, delete
// it, recompute, K times. Both sides of each leg must return the same
// rows — the harness panics otherwise.
func FigureRank(scale float64) []RankRow {
	cfg := DynamicDefaults(scale)
	cfg.N = scaled(1_000_000, scale)
	ds := BuildDataset(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed*577 + 29))

	var rows []RankRow
	for _, k := range []int{10, 100} {
		rows = append(rows, dpidpRow(cfg, ds, rng, k))
	}
	for _, depth := range []int{2, 4} {
		rows = append(rows, layerRow(cfg, ds, depth))
	}
	return rows
}

// dpidpRow times a ranked dp-idp top-k after a batch: memo and score
// index advanced across the delta (the ranked-from-index path) versus
// a fresh cache that recomputes the skyline and every member's
// histogram before keeping k rows.
func dpidpRow(cfg Config, ds *core.Dataset, rng *rand.Rand, k int) RankRow {
	q := plan.Query{TopK: k, Rank: plan.Rank("dpidp")}

	// Warm the memo and the score index on the pre-batch snapshot, as a
	// serving table would have after answering the query once, then
	// apply a 0.1% batch — the steady state the index is for.
	memo := plan.NewMemoCache()
	runRankedQuery(ds, memo, q)
	batch := len(ds.Pts) / 1000
	if batch < 1 {
		batch = 1
	}
	removes, adds := randomBatch(rng, cfg, ds, batch)
	newDS, delta := deltaDataset(ds, removes, adds)

	// The quantity under test is the first ranked query after the
	// batch, so each rep re-advances outside the clock.
	var fastIDs []int32
	fast := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		adv := memo.Advance(ds, newDS, delta)
		start := time.Now()
		ids, from := runRankedQuery(newDS, adv, q)
		if d := time.Since(start); d < fast {
			fast = d
		}
		fastIDs = ids
		if from != "index" {
			panic(fmt.Sprintf("dpidp(k=%d): expected ranked-from-index after advance, got %q", k, from))
		}
	}
	var coldIDs []int32
	cold := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		fresh := plan.NewMemoCache()
		start := time.Now()
		coldIDs, _ = runRankedQuery(newDS, fresh, q)
		if d := time.Since(start); d < cold {
			cold = d
		}
	}
	if !sameIDSet(fastIDs, coldIDs) {
		panic(fmt.Sprintf("dpidp(k=%d): indexed top-k (%d ids) != cold top-k (%d ids)",
			k, len(fastIDs), len(coldIDs)))
	}

	return RankRow{
		Kind: "dpidp", N: len(newDS.Pts), K: k, Rows: len(fastIDs),
		FastMs:     fast.Seconds() * 1000,
		BaselineMs: cold.Seconds() * 1000,
		Speedup:    cold.Seconds() / fast.Seconds(),
	}
}

// layerRow times one rank=layer query (all rows of layers 1..depth)
// against skyline peeling: compute the skyline, rebuild the table
// without it, recompute — depth times. The layered query runs against
// a warm table (the memo serves layer 1, as it would after any earlier
// skyline query); the peeled residuals are ad-hoc tables no cache ever
// serves, so the baseline computes each peel cold.
func layerRow(cfg Config, ds *core.Dataset, depth int) RankRow {
	q := plan.Query{TopK: depth, Rank: plan.Rank("layer")}
	memo := plan.NewMemoCache()
	runRankedQuery(ds, memo, q)

	var fastIDs []int32
	fast := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fastIDs, _ = runRankedQuery(ds, memo, q)
		if d := time.Since(start); d < fast {
			fast = d
		}
	}
	var peelIDs []int32
	peel := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		peelIDs = peelLayers(ds, depth)
		if d := time.Since(start); d < peel {
			peel = d
		}
	}
	if !sameIDSet(fastIDs, peelIDs) {
		panic(fmt.Sprintf("layer(depth=%d): layered query (%d ids) != peeled layers (%d ids)",
			depth, len(fastIDs), len(peelIDs)))
	}

	return RankRow{
		Kind: "layer", N: len(ds.Pts), K: depth, Rows: len(fastIDs),
		FastMs:     fast.Seconds() * 1000,
		BaselineMs: peel.Seconds() * 1000,
		Speedup:    peel.Seconds() / fast.Seconds(),
	}
}

// peelLayers computes layers 1..depth the way a client without the
// layer ranking would: full skyline, rebuild the dataset without it
// (the table layout invariant forces the renumbering), repeat. The
// rebuild cost is part of the baseline — a real client pays it too.
func peelLayers(ds *core.Dataset, depth int) []int32 {
	var out []int32
	cur := ds
	orig := make([]int32, len(ds.Pts))
	for i := range orig {
		orig[i] = int32(i)
	}
	for l := 0; l < depth && len(cur.Pts) > 0; l++ {
		sky := runPlanQuery(cur, plan.NewMemoCache())
		member := make([]bool, len(cur.Pts))
		for _, id := range sky {
			out = append(out, orig[id])
			member[id] = true
		}
		next := &core.Dataset{Domains: cur.Domains, Pts: make([]core.Point, 0, len(cur.Pts)-len(sky))}
		nextOrig := make([]int32, 0, len(cur.Pts)-len(sky))
		for i := range cur.Pts {
			if member[i] {
				continue
			}
			p := cur.Pts[i]
			p.ID = int32(len(next.Pts))
			next.Pts = append(next.Pts, p)
			nextOrig = append(nextOrig, orig[i])
		}
		cur, orig = next, nextOrig
	}
	return out
}

// runRankedQuery answers one planned query with the given cache,
// returning the result ids and where the ranking's scores came from.
func runRankedQuery(ds *core.Dataset, cache plan.Cache, q plan.Query) ([]int32, string) {
	env := plan.Env{Learned: plan.NewLearned(), Cache: cache}
	p, err := plan.New(ds, q, env)
	if err != nil {
		panic(err)
	}
	res, err := p.Run(context.Background(), ds, env)
	if err != nil {
		panic(err)
	}
	return res.SkylineIDs, p.Explain.RankedFrom
}
