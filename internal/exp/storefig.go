package exp

import (
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/store"
)

// StoreRow is one measurement of the storage experiment: applying a
// batch of a given size to a prepared table, rebuild-aside (clone +
// full NewDynamicDB) versus incremental (ApplyBatch: COW group-tree
// maintenance), plus the WAL append cost of making that batch durable
// with and without fsync.
type StoreRow struct {
	N           int     // table rows
	Batch       int     // rows touched (removes + adds)
	RebuildMs   float64 // rebuild-aside prepare latency
	IncrMs      float64 // incremental ApplyBatch latency
	Speedup     float64 // RebuildMs / IncrMs
	WALFsyncMs  float64 // per-batch WAL append, fsync on
	WALNoSyncMs float64 // per-batch WAL append, fsync off
}

// FigureStore measures what the durable storage engine changes about
// mutation latency: the prepared dTSS database is maintained
// incrementally in O(batch·log N) instead of rebuilt in O(N log N),
// and the WAL append that makes the batch durable is a bounded,
// batch-proportional cost dominated by fsync. The base cardinality is
// 2.5M so the default -scale 0.02 exercises the 50k-row table of the
// acceptance setup; batches sweep 0.1%–1% of N.
func FigureStore(scale float64) []StoreRow {
	cfg := DynamicDefaults(scale)
	cfg.N = scaled(2_500_000, scale)
	ds := BuildDataset(cfg)
	db := core.NewDynamicDB(ds, core.Options{})
	rng := rand.New(rand.NewSource(cfg.Seed*271 + 9))

	var rows []StoreRow
	for _, frac := range []float64{0.001, 0.005, 0.01} {
		batch := int(float64(cfg.N) * frac)
		if batch < 2 {
			batch = 2
		}
		removes, adds := randomBatch(rng, cfg, ds, batch)
		newDS, delta := deltaDataset(ds, removes, adds)

		rebuild := bestOf(3, func() {
			core.NewDynamicDB(newDS, core.Options{})
		})
		var incErr error
		incremental := bestOf(3, func() {
			_, incErr = db.ApplyBatch(newDS, delta)
		})
		if incErr != nil {
			panic(incErr)
		}

		fsyncMs, noSyncMs := walAppendCost(cfg, ds, removes, adds)
		rows = append(rows, StoreRow{
			N:           cfg.N,
			Batch:       batch,
			RebuildMs:   rebuild.Seconds() * 1000,
			IncrMs:      incremental.Seconds() * 1000,
			Speedup:     rebuild.Seconds() / incremental.Seconds(),
			WALFsyncMs:  fsyncMs,
			WALNoSyncMs: noSyncMs,
		})
	}
	return rows
}

// randomBatch draws batch/2 distinct removals and batch-batch/2 fresh
// rows matching the dataset's distributions.
func randomBatch(rng *rand.Rand, cfg Config, ds *core.Dataset, batch int) ([]int, []core.Point) {
	nRemove := batch / 2
	removes := make([]int, 0, nRemove)
	seen := make(map[int]bool, nRemove)
	for len(removes) < nRemove {
		r := rng.Intn(len(ds.Pts))
		if !seen[r] {
			seen[r] = true
			removes = append(removes, r)
		}
	}
	nAdd := batch - nRemove
	to := data.GenTO(rng, nAdd, cfg.TO, cfg.TODomain, cfg.Dist)
	sizes := make([]int, len(ds.Domains))
	for d := range ds.Domains {
		sizes[d] = ds.Domains[d].Size()
	}
	po := data.GenPO(rng, nAdd, sizes)
	adds := make([]core.Point, nAdd)
	for i := range adds {
		adds[i] = core.Point{TO: to[i]}
		if len(sizes) > 0 {
			adds[i].PO = po[i]
		}
	}
	return removes, adds
}

// deltaDataset applies a batch to a dataset the way the table layer
// does: drop, renumber, append.
func deltaDataset(ds *core.Dataset, removes []int, adds []core.Point) (*core.Dataset, *core.Delta) {
	drop := make([]bool, len(ds.Pts))
	for _, r := range removes {
		drop[r] = true
	}
	delta := &core.Delta{OldToNew: make([]int32, len(ds.Pts)), Added: len(adds)}
	nds := &core.Dataset{Domains: ds.Domains, Pts: make([]core.Point, 0, len(ds.Pts)+len(adds))}
	for i := range ds.Pts {
		if drop[i] {
			delta.OldToNew[i] = -1
			continue
		}
		p := ds.Pts[i]
		p.ID = int32(len(nds.Pts))
		delta.OldToNew[i] = p.ID
		nds.Pts = append(nds.Pts, p)
	}
	for _, p := range adds {
		p.ID = int32(len(nds.Pts))
		nds.Pts = append(nds.Pts, p)
	}
	return nds, delta
}

// walAppendCost measures the mean per-batch WAL append latency on a
// real disk store, fsync on and off.
func walAppendCost(cfg Config, ds *core.Dataset, removes []int, adds []core.Point) (fsyncMs, noSyncMs float64) {
	m := &store.Mutation{Version: 1}
	for _, r := range removes {
		m.Remove = append(m.Remove, int32(r))
	}
	m.Add.TO = make([][]int64, cfg.TO)
	for c := range m.Add.TO {
		col := make([]int64, len(adds))
		for i, p := range adds {
			col[i] = int64(p.TO[c])
		}
		m.Add.TO[c] = col
	}
	m.Add.PO = make([][]int32, cfg.PO)
	for c := range m.Add.PO {
		col := make([]int32, len(adds))
		for i, p := range adds {
			col[i] = p.PO[c]
		}
		m.Add.PO[c] = col
	}
	seed := &store.Snapshot{
		Schema: store.Schema{TOColumns: make([]string, cfg.TO)},
		Rows:   store.Rows{TO: make([][]int64, cfg.TO), PO: make([][]int32, cfg.PO)},
	}
	for c := range seed.Rows.TO {
		seed.Rows.TO[c] = []int64{}
	}
	for c := range seed.Rows.PO {
		seed.Rows.PO[c] = []int32{}
	}
	for c := range seed.Schema.TOColumns {
		seed.Schema.TOColumns[c] = "to"
	}
	seed.Schema.Orders = make([]store.OrderSchema, cfg.PO)
	for c := range seed.Schema.Orders {
		vals := make([]string, ds.Domains[c].Size())
		for v := range vals {
			vals[v] = "v"
		}
		seed.Schema.Orders[c] = store.OrderSchema{Values: vals}
	}

	run := func(noFsync bool) float64 {
		dir, err := os.MkdirTemp("", "tss-store-bench")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		st, err := store.OpenDisk(dir, store.DiskOptions{NoFsync: noFsync})
		if err != nil {
			panic(err)
		}
		defer st.Close()
		if err := st.SaveSnapshot("bench", seed); err != nil {
			panic(err)
		}
		const appends = 16
		// The appended record reuses m's row payload; replay validity
		// does not matter for an append-latency measurement, only the
		// bytes written.
		start := time.Now()
		for i := 0; i < appends; i++ {
			rec := *m
			rec.Version = int64(i + 1)
			if err := st.AppendMutation("bench", &rec); err != nil {
				panic(err)
			}
		}
		return time.Since(start).Seconds() * 1000 / appends
	}
	return run(false), run(true)
}

// bestOf runs fn n times and returns the fastest wall-clock duration.
func bestOf(n int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
