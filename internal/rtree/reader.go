package rtree

// Reader is a read-only traversal handle over a tree: node visits are
// charged to the reader's own counter and buffer instead of the tree's
// mutable fields, so any number of concurrent queries can share one
// immutable tree. The handle exposes the same navigation surface the
// skyline traversals use (Root / RootNoIO / Open); structural accessors
// stay on the tree itself.
//
// SetIO/SetBuffer remain for single-owner uses (algorithms that build a
// private tree per run); long-lived shared trees — dTSS's per-group
// trees behind a server snapshot — must be traversed through readers.
type Reader struct {
	t   *Tree
	io  *IOCounter
	buf *Buffer
}

// NewReader creates a traversal handle charging node visits to io
// (nil disables accounting) through the optional LRU buffer buf.
func (t *Tree) NewReader(io *IOCounter, buf *Buffer) *Reader {
	return &Reader{t: t, io: io, buf: buf}
}

// Tree returns the underlying tree (for structural accessors such as
// RootBytes or Len).
func (r *Reader) Tree() *Tree { return r.t }

// Root returns the root node, charging one page read (buffer
// permitting) to the reader's counter.
func (r *Reader) Root() *Node {
	r.chargeRead(r.t.root)
	return r.t.root
}

// RootNoIO returns the root without charging a page read — the
// packed-roots layout accounts root storage separately.
func (r *Reader) RootNoIO() *Node { return r.t.root }

// Open dereferences an internal entry's child node, charging one page
// read (buffer permitting) to the reader's counter.
func (r *Reader) Open(e Entry) *Node {
	if e.child == nil {
		panic("rtree: Open on a leaf entry")
	}
	r.chargeRead(e.child)
	return e.child
}

// chargeRead accounts one node visit against the reader's counter,
// honouring the reader's buffer.
func (r *Reader) chargeRead(n *Node) {
	if r.io == nil {
		return
	}
	if r.buf != nil && r.buf.touch(n) {
		return
	}
	r.io.Reads++
}
