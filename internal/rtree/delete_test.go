package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// leafSet collects every stored (coords, id) pair, sorted, as strings.
func leafSet(t *Tree) []string {
	var out []string
	t.All(func(e Entry) {
		out = append(out, fmt.Sprint(e.Lo, e.ID))
	})
	sort.Strings(out)
	return out
}

// checkDeleteInvariants verifies structural soundness: MBBs tight, leaves all
// at the same depth, fill bounds respected (root exempt), and the
// size/node counters accurate.
func checkDeleteInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	points, nodes := 0, 0
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		nodes++
		if n != tr.root {
			if len(n.Entries) < tr.minEntries {
				t.Fatalf("node at depth %d underfull: %d < %d", depth, len(n.Entries), tr.minEntries)
			}
		}
		if len(n.Entries) > tr.maxEntries {
			t.Fatalf("node at depth %d overfull: %d > %d", depth, len(n.Entries), tr.maxEntries)
		}
		if n.Leaf {
			if depth != tr.height {
				t.Fatalf("leaf at depth %d, tree height %d", depth, tr.height)
			}
			points += len(n.Entries)
			return
		}
		for _, e := range n.Entries {
			lo, hi := mbbOf(e.child, tr.dims)
			for d := 0; d < tr.dims; d++ {
				if e.Lo[d] != lo[d] || e.Hi[d] != hi[d] {
					t.Fatalf("stale MBB at depth %d: entry [%v %v], child [%v %v]", depth, e.Lo, e.Hi, lo, hi)
				}
			}
			walk(e.child, depth+1)
		}
	}
	walk(tr.root, 1)
	if points != tr.size {
		t.Fatalf("size counter %d, stored points %d", tr.size, points)
	}
	if nodes != tr.nodes {
		t.Fatalf("node counter %d, walked nodes %d", tr.nodes, nodes)
	}
}

func randPoint(rng *rand.Rand, dims int, id int32) Point {
	c := make([]int32, dims)
	for d := range c {
		c[d] = int32(rng.Intn(64))
	}
	return Point{Coords: c, ID: id}
}

// TestDeleteBasic removes every point one by one from an insert-built
// tree, checking invariants and membership throughout.
func TestDeleteBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New(2, 4, nil)
	pts := make([]Point, 60)
	for i := range pts {
		pts[i] = randPoint(rng, 2, int32(i))
		tr.Insert(pts[i])
	}
	for i, p := range pts {
		if !tr.Delete(p) {
			t.Fatalf("delete %d: point not found", i)
		}
		if tr.Delete(p) {
			t.Fatalf("delete %d: double delete succeeded", i)
		}
		if tr.Len() != len(pts)-i-1 {
			t.Fatalf("delete %d: len %d", i, tr.Len())
		}
		checkDeleteInvariants(t, tr)
	}
	if tr.Height() != 1 || tr.NodeCount() != 1 {
		t.Fatalf("emptied tree: height %d nodes %d", tr.Height(), tr.NodeCount())
	}
}

// TestInsertDeleteInterleavedMatchesBulk is the property test: after an
// arbitrary interleaving of inserts and deletes, the tree holds exactly
// the surviving points — the same leaf set as a tree bulk-loaded from
// them — and every structural invariant holds.
func TestInsertDeleteInterleavedMatchesBulk(t *testing.T) {
	for _, cfg := range []struct {
		dims, cap, ops int
		seed           int64
	}{
		{1, 4, 300, 1},
		{2, 4, 400, 2},
		{2, 8, 400, 3},
		{3, 5, 300, 4},
		{4, 16, 500, 5},
		// Past linearSplitThreshold: exercises the linear split.
		{2, 48, 700, 6},
		{3, 146, 900, 7},
	} {
		t.Run(fmt.Sprintf("d%dc%d", cfg.dims, cfg.cap), func(t *testing.T) {
			rng := rand.New(rand.NewSource(cfg.seed))
			tr := New(cfg.dims, cfg.cap, nil)
			live := map[int32]Point{}
			nextID := int32(0)
			for op := 0; op < cfg.ops; op++ {
				if len(live) == 0 || rng.Intn(3) != 0 {
					p := randPoint(rng, cfg.dims, nextID)
					nextID++
					tr.Insert(p)
					live[p.ID] = p
				} else {
					// Delete a random live point.
					ids := make([]int32, 0, len(live))
					for id := range live {
						ids = append(ids, id)
					}
					sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
					victim := live[ids[rng.Intn(len(ids))]]
					if !tr.Delete(victim) {
						t.Fatalf("op %d: live point %d not found", op, victim.ID)
					}
					delete(live, victim.ID)
				}
				if op%25 == 0 {
					checkDeleteInvariants(t, tr)
				}
			}
			checkDeleteInvariants(t, tr)

			surviving := make([]Point, 0, len(live))
			for _, p := range live {
				surviving = append(surviving, p)
			}
			bulk := BulkLoad(cfg.dims, surviving, cfg.cap, nil)
			got, want := leafSet(tr), leafSet(bulk)
			if len(got) != len(want) {
				t.Fatalf("leaf set size %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("leaf set diverges at %d: %s vs %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestCOWLeavesSourceIntact interleaves COW inserts and deletes,
// checking after every operation that the previous versions still hold
// exactly their own point sets — the snapshot-isolation property the
// serving layer relies on.
func TestCOWLeavesSourceIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cur := New(2, 4, nil)
	type version struct {
		tree *Tree
		set  []string
	}
	versions := []version{{cur, leafSet(cur)}}
	live := map[int32]Point{}
	nextID := int32(0)
	for op := 0; op < 250; op++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			p := randPoint(rng, 2, nextID)
			nextID++
			cur = cur.InsertCOW(p)
			live[p.ID] = p
		} else {
			ids := make([]int32, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			victim := live[ids[rng.Intn(len(ids))]]
			nt, ok := cur.DeleteCOW(victim)
			if !ok {
				t.Fatalf("op %d: live point %d not found", op, victim.ID)
			}
			cur = nt
			delete(live, victim.ID)
		}
		if op%10 == 0 {
			versions = append(versions, version{cur, leafSet(cur)})
			checkDeleteInvariants(t, cur)
		}
	}
	// Every retained version must still read exactly as it did when
	// captured.
	for i, v := range versions {
		got := leafSet(v.tree)
		if len(got) != len(v.set) {
			t.Fatalf("version %d: %d points, want %d", i, len(got), len(v.set))
		}
		for j := range got {
			if got[j] != v.set[j] {
				t.Fatalf("version %d diverged at %d", i, j)
			}
		}
	}
	// COW delete of an absent point returns the receiver unchanged.
	if nt, ok := cur.DeleteCOW(Point{Coords: []int32{999, 999}, ID: -1}); ok || nt != cur {
		t.Fatalf("DeleteCOW of absent point: ok=%v same=%v", ok, nt == cur)
	}
}

// TestDeleteChargesIO checks the accounting contract: deletes charge
// reads on the search path and writes for modified nodes.
func TestDeleteChargesIO(t *testing.T) {
	io := &IOCounter{}
	tr := New(2, 4, io)
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, 40)
	for i := range pts {
		pts[i] = randPoint(rng, 2, int32(i))
		tr.Insert(pts[i])
	}
	r0, w0 := io.Reads, io.Writes
	if !tr.Delete(pts[0]) {
		t.Fatal("point not found")
	}
	if io.Reads == r0 {
		t.Error("delete charged no reads")
	}
	if io.Writes == w0 {
		t.Error("delete charged no writes")
	}
}
