package rtree

import "sort"

// BulkLoad builds a tree over pts using Sort-Tile-Recursive packing
// (Leutenegger et al.): points are sorted and sliced into vertical slabs
// dimension by dimension so that leaves are near-full and spatially
// coherent, then upper levels are packed the same way over node MBB
// centers. Page writes (one per node) are charged to io.
//
// The input slice is reordered. Point coordinate slices are referenced,
// not copied.
func BulkLoad(dims int, pts []Point, maxEntries int, io *IOCounter) *Tree {
	t := New(dims, maxEntries, io)
	if len(pts) == 0 {
		t.chargeWrites(1)
		return t
	}
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		if len(p.Coords) != dims {
			panic("rtree: point dimensionality mismatch")
		}
		entries[i] = Entry{Lo: p.Coords, Hi: p.Coords, ID: p.ID}
	}
	nodes := packLevel(entries, dims, maxEntries, true)
	t.nodes = len(nodes)
	t.height = 1
	for len(nodes) > 1 {
		parentEntries := make([]Entry, len(nodes))
		for i, n := range nodes {
			lo, hi := mbbOf(n, dims)
			parentEntries[i] = Entry{Lo: lo, Hi: hi, child: n}
		}
		nodes = packLevel(parentEntries, dims, maxEntries, false)
		t.nodes += len(nodes)
		t.height++
	}
	t.root = nodes[0]
	t.size = len(pts)
	t.chargeWrites(int64(t.nodes))
	return t
}

func (t *Tree) chargeWrites(n int64) {
	if t.io != nil {
		t.io.Writes += n
	}
}

// packLevel groups entries into nodes of at most maxEntries using STR
// tiling across all dimensions.
func packLevel(entries []Entry, dims, maxEntries int, leaf bool) []*Node {
	var nodes []*Node
	var tile func(es []Entry, dim int)
	tile = func(es []Entry, dim int) {
		if dim == dims-1 || len(es) <= maxEntries {
			sortByCenter(es, dim)
			for i := 0; i < len(es); i += maxEntries {
				j := i + maxEntries
				if j > len(es) {
					j = len(es)
				}
				n := &Node{Leaf: leaf, Entries: append([]Entry(nil), es[i:j]...)}
				nodes = append(nodes, n)
			}
			return
		}
		sortByCenter(es, dim)
		pages := (len(es) + maxEntries - 1) / maxEntries
		slabs := ceilRoot(pages, dims-dim)
		slabSize := (len(es) + slabs - 1) / slabs
		for i := 0; i < len(es); i += slabSize {
			j := i + slabSize
			if j > len(es) {
				j = len(es)
			}
			tile(es[i:j], dim+1)
		}
	}
	tile(entries, 0)
	return nodes
}

func sortByCenter(es []Entry, dim int) {
	sort.Slice(es, func(i, j int) bool {
		ci := int64(es[i].Lo[dim]) + int64(es[i].Hi[dim])
		cj := int64(es[j].Lo[dim]) + int64(es[j].Hi[dim])
		if ci != cj {
			return ci < cj
		}
		return es[i].ID < es[j].ID
	})
}

// ceilRoot returns ceil(p^(1/k)) for small integers.
func ceilRoot(p, k int) int {
	if p <= 1 {
		return 1
	}
	if k <= 1 {
		return p
	}
	s := 1
	for pow(s, k) < p {
		s++
	}
	return s
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
		if r < 0 { // overflow guard; never hit for our sizes
			return 1 << 62
		}
	}
	return r
}
