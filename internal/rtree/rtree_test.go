package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPoints(rng *rand.Rand, n, dims, maxCoord int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		c := make([]int32, dims)
		for d := range c {
			c[d] = int32(rng.Intn(maxCoord))
		}
		pts[i] = Point{Coords: c, ID: int32(i)}
	}
	return pts
}

func collectIDs(t *Tree, lo, hi []int32) []int32 {
	var ids []int32
	t.SearchRange(lo, hi, func(e Entry) bool {
		ids = append(ids, e.ID)
		return true
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func scanIDs(pts []Point, lo, hi []int32) []int32 {
	var ids []int32
	for _, p := range pts {
		in := true
		for d := range lo {
			if p.Coords[d] < lo[d] || p.Coords[d] > hi[d] {
				in = false
				break
			}
		}
		if in {
			ids = append(ids, p.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBulkLoadQueryMatchesScan: range queries over a bulk-loaded tree
// return exactly the linear-scan answer.
func TestBulkLoadQueryMatchesScan(t *testing.T) {
	prop := func(seed int64, nRaw uint16, dimsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%500) + 1
		dims := int(dimsRaw%4) + 2
		pts := randomPoints(rng, n, dims, 100)
		tr := BulkLoad(dims, clonePoints(pts), 8, nil)
		if tr.Len() != n {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			lo := make([]int32, dims)
			hi := make([]int32, dims)
			for d := range lo {
				a, b := int32(rng.Intn(100)), int32(rng.Intn(100))
				if a > b {
					a, b = b, a
				}
				lo[d], hi[d] = a, b
			}
			if !equalIDs(collectIDs(tr, lo, hi), scanIDs(pts, lo, hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertQueryMatchesScan: the same property for incrementally built
// trees.
func TestInsertQueryMatchesScan(t *testing.T) {
	prop := func(seed int64, nRaw uint16, dimsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%300) + 1
		dims := int(dimsRaw%3) + 2
		pts := randomPoints(rng, n, dims, 60)
		tr := New(dims, 6, nil)
		for _, p := range pts {
			tr.Insert(p)
		}
		if tr.Len() != n {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			lo := make([]int32, dims)
			hi := make([]int32, dims)
			for d := range lo {
				a, b := int32(rng.Intn(60)), int32(rng.Intn(60))
				if a > b {
					a, b = b, a
				}
				lo[d], hi[d] = a, b
			}
			if !equalIDs(collectIDs(tr, lo, hi), scanIDs(pts, lo, hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func clonePoints(pts []Point) []Point {
	out := make([]Point, len(pts))
	copy(out, pts)
	return out
}

// TestStructuralInvariants: every child MBB is contained in its parent
// entry's MBB, leaves are all at the same depth, and node occupancy is
// within [1, max] (bulk load) after construction.
func TestStructuralInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 8, 9, 64, 65, 500, 2000} {
		pts := randomPoints(rng, n, 3, 1000)
		tr := BulkLoad(3, pts, 8, nil)
		checkInvariants(t, tr)
	}
	// Incremental build.
	tr := New(3, 8, nil)
	for _, p := range randomPoints(rng, 500, 3, 1000) {
		tr.Insert(p)
	}
	checkInvariants(t, tr)
}

func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	leafDepth := -1
	count := 0
	var walk func(n *Node, depth int, lo, hi []int32)
	walk = func(n *Node, depth int, lo, hi []int32) {
		if len(n.Entries) == 0 && tr.Len() > 0 {
			t.Fatal("empty node in non-empty tree")
		}
		if len(n.Entries) > tr.maxEntries {
			t.Fatalf("node overflow: %d > %d", len(n.Entries), tr.maxEntries)
		}
		for _, e := range n.Entries {
			if lo != nil {
				for d := range lo {
					if e.Lo[d] < lo[d] || e.Hi[d] > hi[d] {
						t.Fatal("child MBB escapes parent MBB")
					}
				}
			}
			if n.Leaf {
				count++
				if !e.IsLeafEntry() {
					t.Fatal("internal entry in leaf")
				}
			} else {
				if e.IsLeafEntry() {
					t.Fatal("leaf entry in internal node")
				}
				walk(e.child, depth+1, e.Lo, e.Hi)
			}
		}
		if n.Leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatal("leaves at different depths")
			}
		}
	}
	walk(tr.root, 1, nil, nil)
	if count != tr.Len() {
		t.Fatalf("point count %d, Len() %d", count, tr.Len())
	}
	if leafDepth != tr.Height() {
		t.Fatalf("leaf depth %d, Height() %d", leafDepth, tr.Height())
	}
}

func TestIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	io := &IOCounter{}
	pts := randomPoints(rng, 200, 2, 100)
	tr := BulkLoad(2, pts, 8, io)
	if io.Writes != int64(tr.NodeCount()) {
		t.Errorf("bulk load writes = %d, want node count %d", io.Writes, tr.NodeCount())
	}
	if io.Reads != 0 {
		t.Errorf("bulk load should not read, got %d", io.Reads)
	}
	before := io.Reads
	tr.Root()
	if io.Reads != before+1 {
		t.Error("Root() must charge one read")
	}
	before = io.Reads
	tr.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
	if io.Reads-before != int64(tr.NodeCount()) {
		t.Errorf("full-range search read %d nodes, want %d", io.Reads-before, tr.NodeCount())
	}
	// A nil-counter tree never panics on accounting paths.
	free := BulkLoad(2, randomPoints(rng, 50, 2, 100), 8, nil)
	free.Root()
	free.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
}

func TestBooleanQueries(t *testing.T) {
	pts := []Point{
		{Coords: []int32{1, 2}, ID: 0},
		{Coords: []int32{5, 5}, ID: 1},
		{Coords: []int32{9, 1}, ID: 2},
	}
	tr := BulkLoad(2, pts, 4, nil)
	if !tr.RangeNonEmpty([]int32{0, 0}, []int32{2, 3}) {
		t.Error("range containing (1,2) reported empty")
	}
	if tr.RangeNonEmpty([]int32{6, 6}, []int32{8, 8}) {
		t.Error("empty range reported non-empty")
	}
	// Predicate form: only accept ID 2.
	ok := tr.RangeExists([]int32{0, 0}, []int32{9, 9}, func(e Entry) bool { return e.ID == 2 })
	if !ok {
		t.Error("RangeExists missed a matching point")
	}
	ok = tr.RangeExists([]int32{0, 0}, []int32{4, 4}, func(e Entry) bool { return e.ID == 2 })
	if ok {
		t.Error("RangeExists matched outside the box")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(2, 4, nil)
	if tr.RangeNonEmpty([]int32{0, 0}, []int32{10, 10}) {
		t.Error("empty tree range must be empty")
	}
	bl := BulkLoad(3, nil, 4, nil)
	if bl.Len() != 0 || bl.RangeNonEmpty([]int32{0, 0, 0}, []int32{1, 1, 1}) {
		t.Error("empty bulk load broken")
	}
}

func TestMinDistL1(t *testing.T) {
	e := Entry{Lo: []int32{3, 4, 5}, Hi: []int32{9, 9, 9}}
	if MinDistL1(e) != 12 {
		t.Errorf("MinDistL1 = %d, want 12", MinDistL1(e))
	}
}

func TestCapacityForPage(t *testing.T) {
	if c := CapacityForPage(4096, 3); c != 4096/(3*8+4) {
		t.Errorf("CapacityForPage(4096,3) = %d", c)
	}
	if c := CapacityForPage(16, 8); c != 4 {
		t.Errorf("tiny page should clamp to 4, got %d", c)
	}
}

func TestDuplicatePoints(t *testing.T) {
	// All points identical: tree must hold all of them and return all on
	// a stabbing query.
	pts := make([]Point, 20)
	for i := range pts {
		pts[i] = Point{Coords: []int32{5, 5}, ID: int32(i)}
	}
	tr := BulkLoad(2, clonePoints(pts), 4, nil)
	if got := collectIDs(tr, []int32{5, 5}, []int32{5, 5}); len(got) != 20 {
		t.Errorf("got %d duplicates, want 20", len(got))
	}
	tr2 := New(2, 4, nil)
	for _, p := range pts {
		tr2.Insert(p)
	}
	if got := collectIDs(tr2, []int32{5, 5}, []int32{5, 5}); len(got) != 20 {
		t.Errorf("insert path: got %d duplicates, want 20", len(got))
	}
	checkInvariants(t, tr2)
}

func TestAllVisitsEveryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 123, 2, 50)
	tr := BulkLoad(2, clonePoints(pts), 8, nil)
	seen := map[int32]bool{}
	tr.All(func(e Entry) { seen[e.ID] = true })
	if len(seen) != 123 {
		t.Errorf("All visited %d points, want 123", len(seen))
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randomPoints(rng, 200, 2, 10) // dense: many hits
	tr := BulkLoad(2, pts, 8, nil)
	visits := 0
	tr.SearchRange([]int32{0, 0}, []int32{9, 9}, func(Entry) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("early stop visited %d, want 3", visits)
	}
}
