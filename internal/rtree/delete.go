package rtree

// Deletion with condense-tree (Guttman §3.3) on top of the insertion
// machinery: the leaf entry is located by exact coordinates + id and
// removed; underfull nodes on the path are dissolved and their entries
// reinserted at their original level; the root is collapsed while it is
// an internal node with a single child.
//
// Every mutation goes through the cowCtx of insert.go, so the same code
// serves two call forms:
//
//   - Delete mutates the tree in place (single-owner trees);
//   - DeleteCOW / InsertCOW leave the receiver untouched and return a
//     new tree sharing all unmodified nodes — the O(batch·log N)
//     maintenance primitive behind incremental snapshot swaps, where
//     concurrent readers keep traversing the previous version.

// Delete removes the leaf entry with exactly p's coordinates and ID.
// It reports whether such an entry existed. Node visits on the search
// path are charged as reads; modified nodes as writes.
func (t *Tree) Delete(p Point) bool {
	if len(p.Coords) != t.dims {
		panic("rtree: point dimensionality mismatch")
	}
	return t.delete(nil, p)
}

// InsertCOW returns a tree with p added, leaving the receiver
// unchanged; the result shares every node the insertion did not touch.
// The two trees must not be mutated in place afterwards (use further
// COW operations).
func (t *Tree) InsertCOW(p Point) *Tree {
	if len(p.Coords) != t.dims {
		panic("rtree: point dimensionality mismatch")
	}
	nt := t.shallowCopy()
	nt.insertEntry(newCowCtx(), Entry{Lo: p.Coords, Hi: p.Coords, ID: p.ID}, 1)
	nt.size++
	return nt
}

// DeleteCOW returns a tree with the leaf entry matching p removed,
// leaving the receiver unchanged, plus whether the entry existed (when
// false, the receiver itself is returned).
func (t *Tree) DeleteCOW(p Point) (*Tree, bool) {
	if len(p.Coords) != t.dims {
		panic("rtree: point dimensionality mismatch")
	}
	nt := t.shallowCopy()
	if !nt.delete(newCowCtx(), p) {
		return t, false
	}
	return nt, true
}

// WithIO returns a shallow copy of t whose future operations are
// charged to io; the copy shares every node with t. Combine with the
// COW operations to account maintenance separately from queries.
func (t *Tree) WithIO(io *IOCounter) *Tree {
	nt := t.shallowCopy()
	nt.io = io
	return nt
}

func (t *Tree) shallowCopy() *Tree {
	cp := *t
	return &cp
}

// pathElem records one step of the root→leaf search path: the node and
// the index of the entry chosen inside it (the child descended into,
// or the matching point entry at the leaf).
type pathElem struct {
	n   *Node
	idx int
}

// delete implements Delete for both call forms. With a non-nil ctx all
// modified nodes are copied first (copy-on-write).
func (t *Tree) delete(c *cowCtx, p Point) bool {
	path := t.findLeaf(p)
	if path == nil {
		return false
	}
	// COW: replace every node on the path with an editable copy,
	// re-linking parent entries top-down. After this loop the whole
	// path is owned by this operation.
	if c != nil {
		for k := range path {
			cp := c.editable(path[k].n)
			if k == 0 {
				t.root = cp
			} else {
				path[k-1].n.Entries[path[k-1].idx].child = cp
			}
			path[k].n = cp
		}
	}

	// Remove the point entry from the leaf.
	leaf := path[len(path)-1]
	leaf.n.Entries = append(leaf.n.Entries[:leaf.idx], leaf.n.Entries[leaf.idx+1:]...)
	t.chargeWrites(1)
	t.size--

	// Condense: walk the path bottom-up. Underfull non-root nodes are
	// dissolved — their entries queue for reinsertion at their level —
	// and surviving ancestors get their MBBs tightened.
	type orphan struct {
		e     Entry
		level int // node level the entry must be reinserted at (1 = leaf)
	}
	var orphans []orphan
	level := 1 // level of path[k].n in the loop below
	for k := len(path) - 1; k >= 1; k-- {
		n, parent := path[k].n, path[k-1]
		if len(n.Entries) < t.minEntries {
			for _, e := range n.Entries {
				orphans = append(orphans, orphan{e, level})
			}
			parent.n.Entries = append(parent.n.Entries[:parent.idx], parent.n.Entries[parent.idx+1:]...)
			t.nodes--
		} else {
			lo, hi := mbbOf(n, t.dims)
			parent.n.Entries[parent.idx].Lo, parent.n.Entries[parent.idx].Hi = lo, hi
		}
		t.chargeWrites(1)
		level++
	}

	// Reinsert orphaned entries at their original levels. Splits may
	// grow the tree again; the insertion machinery handles that.
	for _, o := range orphans {
		t.insertEntry(c, o.e, o.level)
	}

	// Collapse a root chain: an internal root with one entry hands the
	// tree to its only child.
	for !t.root.Leaf && len(t.root.Entries) == 1 {
		t.root = t.root.Entries[0].child
		t.height--
		t.nodes--
		t.chargeWrites(1)
	}
	return true
}

// findLeaf locates the leaf entry with exactly p's coordinates and ID,
// returning the root→leaf path (the last element's idx is the entry's
// index in the leaf), or nil if absent. Visited nodes are charged as
// reads.
func (t *Tree) findLeaf(p Point) []pathElem {
	var path []pathElem
	var dfs func(n *Node) bool
	dfs = func(n *Node) bool {
		t.chargeRead(n)
		if n.Leaf {
			for i := range n.Entries {
				e := &n.Entries[i]
				if e.ID == p.ID && coordsEqual(e.Lo, p.Coords) {
					path = append(path, pathElem{n, i})
					return true
				}
			}
			return false
		}
		for i := range n.Entries {
			if !coversPoint(&n.Entries[i], p.Coords) {
				continue
			}
			path = append(path, pathElem{n, i})
			if dfs(n.Entries[i].child) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if dfs(t.root) {
		return path
	}
	return nil
}

func coordsEqual(a, b []int32) bool {
	for d := range a {
		if a[d] != b[d] {
			return false
		}
	}
	return true
}

func coversPoint(e *Entry, c []int32) bool {
	for d := range c {
		if c[d] < e.Lo[d] || c[d] > e.Hi[d] {
			return false
		}
	}
	return true
}
