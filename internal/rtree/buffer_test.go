package rtree

import (
	"math/rand"
	"testing"
)

func TestBufferHitsAndMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	io := &IOCounter{}
	tr := BulkLoad(2, randomPoints(rng, 500, 2, 100), 8, io)
	io.Reads, io.Writes = 0, 0

	// Unbuffered: two identical full scans charge twice.
	tr.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
	unbuffered := io.Reads
	tr.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
	if io.Reads != 2*unbuffered {
		t.Fatalf("unbuffered reads = %d, want %d", io.Reads, 2*unbuffered)
	}

	// Buffered with room for the whole tree: the second scan is free.
	io.Reads = 0
	buf := NewBuffer(tr.NodeCount())
	tr.SetBuffer(buf)
	tr.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
	first := io.Reads
	if first != unbuffered {
		t.Fatalf("first buffered scan reads = %d, want %d (cold misses)", first, unbuffered)
	}
	tr.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
	if io.Reads != first {
		t.Errorf("second buffered scan charged %d extra reads, want 0", io.Reads-first)
	}
	if buf.Hits() == 0 || buf.Misses() != unbuffered {
		t.Errorf("buffer stats hits=%d misses=%d", buf.Hits(), buf.Misses())
	}
}

func TestBufferEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	io := &IOCounter{}
	tr := BulkLoad(2, randomPoints(rng, 500, 2, 100), 8, io)
	io.Reads = 0
	// A one-page buffer cannot help a multi-node scan much: repeated
	// scans keep missing (apart from possible consecutive root hits).
	tr.SetBuffer(NewBuffer(1))
	tr.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
	first := io.Reads
	tr.SearchRange([]int32{0, 0}, []int32{99, 99}, func(Entry) bool { return true })
	if io.Reads < 2*first-2 {
		t.Errorf("tiny buffer absorbed too many reads: %d after two scans of %d", io.Reads, first)
	}
}

func TestBufferReset(t *testing.T) {
	b := NewBuffer(4)
	n := &Node{}
	if b.touch(n) {
		t.Error("first touch must miss")
	}
	if !b.touch(n) {
		t.Error("second touch must hit")
	}
	b.Reset()
	if b.Hits() != 0 || b.Misses() != 0 {
		t.Error("Reset must clear stats")
	}
	if b.touch(n) {
		t.Error("touch after Reset must miss")
	}
}

func TestBufferCapacityClamp(t *testing.T) {
	b := NewBuffer(0) // clamps to 1
	n1, n2 := &Node{}, &Node{}
	b.touch(n1)
	b.touch(n2) // evicts n1
	if b.touch(n1) {
		t.Error("n1 should have been evicted by a capacity-1 buffer")
	}
}
