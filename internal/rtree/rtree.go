// Package rtree implements an R-tree over integer coordinates with an
// explicit page-IO accounting model, serving as the disk-resident index
// substrate of the skyline algorithms (BBS and its partially-ordered
// variants) and, without a counter, as the in-memory R-tree that sTSS
// and dTSS use for fast t-dominance checks.
//
// The tree stores points (leaf entries with degenerate MBBs) and
// supports Sort-Tile-Recursive bulk loading, Guttman insertion with
// quadratic split, containment range search, and boolean ("is the range
// non-empty") queries with an optional per-entry predicate — the
// Boolean range query of the paper's §IV-B.
//
// IO model: every node visit (root included) counts one page read on
// the attached IOCounter; bulk loading and insertion report page writes.
// A nil counter disables accounting, which is how the main-memory trees
// are run.
package rtree

import "fmt"

// IOCounter accumulates simulated page accesses. The evaluation charges
// a fixed cost per access (5 ms in the paper), so algorithms only need
// the counts.
type IOCounter struct {
	Reads  int64
	Writes int64
}

// Point is an input point: Coords in the index space plus a caller
// identifier (e.g. tuple id or virtual-point id).
type Point struct {
	Coords []int32
	ID     int32
}

// Entry is an R-tree entry. For leaf entries Lo is the point and Hi
// aliases Lo; for internal entries [Lo, Hi] is the child's MBB.
type Entry struct {
	Lo, Hi []int32
	ID     int32 // point id; meaningful for leaf entries only
	child  *Node
}

// IsLeafEntry reports whether e carries a point rather than a child.
func (e Entry) IsLeafEntry() bool { return e.child == nil }

// Node is an R-tree node (one simulated disk page).
type Node struct {
	Leaf    bool
	Entries []Entry
}

// Tree is an R-tree over dims-dimensional integer points.
type Tree struct {
	dims       int
	maxEntries int
	minEntries int
	root       *Node
	height     int // 1 = root is a leaf
	size       int // number of points
	nodes      int // number of nodes (pages)
	io         *IOCounter
	buf        *Buffer
}

// New returns an empty tree with the given dimensionality and node
// capacity. Capacity must be at least 2; the minimum fill is 40%.
// io may be nil for an unaccounted in-memory tree.
func New(dims, maxEntries int, io *IOCounter) *Tree {
	if dims < 1 {
		panic("rtree: dims must be >= 1")
	}
	if maxEntries < 2 {
		panic("rtree: capacity must be >= 2")
	}
	min := maxEntries * 2 / 5
	if min < 1 {
		min = 1
	}
	return &Tree{
		dims:       dims,
		maxEntries: maxEntries,
		minEntries: min,
		root:       &Node{Leaf: true},
		height:     1,
		nodes:      1,
		io:         io,
	}
}

// CapacityForPage derives a node fan-out from a simulated page size:
// each entry stores a dims-dimensional MBB of int32 pairs plus a 4-byte
// pointer/id. This is how the experiment harness sizes its trees.
func CapacityForPage(pageSize, dims int) int {
	entryBytes := dims*2*4 + 4
	c := pageSize / entryBytes
	if c < 4 {
		c = 4
	}
	return c
}

// Dims returns the tree's dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// NodeCount returns the number of nodes, i.e. simulated pages.
func (t *Tree) NodeCount() int { return t.nodes }

// IO returns the attached counter (nil for memory trees).
func (t *Tree) IO() *IOCounter { return t.io }

// SetIO swaps the accounting counter, letting callers charge build and
// query phases to different counters (nil disables accounting).
func (t *Tree) SetIO(io *IOCounter) { t.io = io }

// Root returns the root node, charging one page read (buffer permitting).
func (t *Tree) Root() *Node {
	t.chargeRead(t.root)
	return t.root
}

// RootNoIO returns the root without charging a page read — for callers
// that account root storage themselves, such as dTSS's packed-roots
// layout where the roots of many small group trees share sequential
// pages (the remedy §VI-C suggests for the per-group root-visit cost).
func (t *Tree) RootNoIO() *Node { return t.root }

// RootBytes returns the root node's serialized size under the cost
// model (one MBB of 2×4-byte coordinates per dimension plus a 4-byte
// pointer per entry) — used to compute packed-root page charges.
func (t *Tree) RootBytes() int {
	return len(t.root.Entries) * (t.dims*8 + 4)
}

// Open dereferences an internal entry's child node, charging one page
// read (buffer permitting). Panics if e is a leaf entry.
func (t *Tree) Open(e Entry) *Node {
	if e.child == nil {
		panic("rtree: Open on a leaf entry")
	}
	t.chargeRead(e.child)
	return e.child
}

// MinDistL1 returns the L1 mindist of an entry's MBB to the origin —
// the sum of its lower coordinates. All index spaces in this repository
// put the most preferable point at the origin, so this is the BBS
// visiting priority.
func MinDistL1(e Entry) int64 {
	var s int64
	for _, c := range e.Lo {
		s += int64(c)
	}
	return s
}

func (t *Tree) checkDims(lo, hi []int32) {
	if len(lo) != t.dims || len(hi) != t.dims {
		panic(fmt.Sprintf("rtree: query dims %d/%d, tree dims %d", len(lo), len(hi), t.dims))
	}
}

// intersects reports whether the entry's MBB intersects [lo, hi].
func intersects(e Entry, lo, hi []int32) bool {
	for d := range lo {
		if e.Hi[d] < lo[d] || e.Lo[d] > hi[d] {
			return false
		}
	}
	return true
}

// insideAll reports whether a leaf entry's point lies inside [lo, hi].
func insideAll(e Entry, lo, hi []int32) bool {
	for d := range lo {
		if e.Lo[d] < lo[d] || e.Lo[d] > hi[d] {
			return false
		}
	}
	return true
}

// SearchRange visits every point inside the closed box [lo, hi], calling
// fn with the entry; fn returning false stops the search early. Node
// visits are charged to the IO counter.
func (t *Tree) SearchRange(lo, hi []int32, fn func(e Entry) bool) {
	t.checkDims(lo, hi)
	t.searchNode(t.root, lo, hi, fn)
}

func (t *Tree) searchNode(n *Node, lo, hi []int32, fn func(e Entry) bool) bool {
	t.chargeRead(n)
	for _, e := range n.Entries {
		if !intersects(e, lo, hi) {
			continue
		}
		if n.Leaf {
			if insideAll(e, lo, hi) && !fn(e) {
				return false
			}
		} else if !t.searchNode(e.child, lo, hi, fn) {
			return false
		}
	}
	return true
}

// RangeNonEmpty is the Boolean range query: true iff at least one point
// lies inside the closed box [lo, hi]. It terminates on the first hit.
func (t *Tree) RangeNonEmpty(lo, hi []int32) bool {
	found := false
	t.SearchRange(lo, hi, func(Entry) bool {
		found = true
		return false
	})
	return found
}

// RangeExists is a Boolean range query with a per-point predicate: true
// iff some point inside [lo, hi] satisfies pred. Used for the strictness
// tests of exact t-dominance (see internal/core).
func (t *Tree) RangeExists(lo, hi []int32, pred func(e Entry) bool) bool {
	found := false
	t.SearchRange(lo, hi, func(e Entry) bool {
		if pred(e) {
			found = true
			return false
		}
		return true
	})
	return found
}

// All visits every stored point (in tree order) without charging IOs;
// used by tests to verify structure against linear scans.
func (t *Tree) All(fn func(e Entry)) {
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, e := range n.Entries {
			if n.Leaf {
				fn(e)
			} else {
				walk(e.child)
			}
		}
	}
	walk(t.root)
}

// mbbOf computes the MBB of a node's entries into fresh slices.
func mbbOf(n *Node, dims int) ([]int32, []int32) {
	lo := make([]int32, dims)
	hi := make([]int32, dims)
	for d := 0; d < dims; d++ {
		lo[d] = n.Entries[0].Lo[d]
		hi[d] = n.Entries[0].Hi[d]
	}
	for _, e := range n.Entries[1:] {
		for d := 0; d < dims; d++ {
			if e.Lo[d] < lo[d] {
				lo[d] = e.Lo[d]
			}
			if e.Hi[d] > hi[d] {
				hi[d] = e.Hi[d]
			}
		}
	}
	return lo, hi
}
