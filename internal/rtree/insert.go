package rtree

// Insert adds a point using Guttman's algorithm (least-enlargement leaf
// choice, quadratic split). Each node touched on the way down is charged
// one read; each node written (the modified leaf, any split siblings and
// updated ancestors) is charged one write. The in-memory dominance trees
// run with a nil counter, so there accounting is free.
//
// The point's coordinate slice is referenced, not copied.
func (t *Tree) Insert(p Point) {
	if len(p.Coords) != t.dims {
		panic("rtree: point dimensionality mismatch")
	}
	t.insertEntry(nil, Entry{Lo: p.Coords, Hi: p.Coords, ID: p.ID}, 1)
	t.size++
}

// cowCtx tracks the nodes a copy-on-write operation has freshly
// allocated: those may be mutated in place; every other node is shared
// with the source tree and must be copied before modification. A nil
// *cowCtx selects in-place (mutable) operation.
type cowCtx struct{ fresh map[*Node]bool }

func newCowCtx() *cowCtx { return &cowCtx{fresh: make(map[*Node]bool, 16)} }

// editable returns a node that is safe to mutate: n itself in mutable
// mode or when this operation already owns it, otherwise a copy.
func (c *cowCtx) editable(n *Node) *Node {
	if c == nil || c.fresh[n] {
		return n
	}
	cp := &Node{Leaf: n.Leaf, Entries: append([]Entry(nil), n.Entries...)}
	c.fresh[cp] = true
	return cp
}

// mark registers a node freshly allocated by this operation so later
// steps mutate it in place instead of copying again.
func (c *cowCtx) mark(n *Node) {
	if c != nil {
		c.fresh[n] = true
	}
}

// insertEntry places e into a node at targetLevel (1 = leaf; higher
// levels reinsert orphaned subtree entries during deletion), growing
// the root when a split propagates all the way up. In COW mode every
// modified node is copied first, so the previous root remains a valid
// immutable tree.
func (t *Tree) insertEntry(c *cowCtx, e Entry, targetLevel int) {
	root, split := t.insert(c, t.root, e, t.height, targetLevel)
	t.root = root
	if split != nil {
		lo1, hi1 := mbbOf(root, t.dims)
		lo2, hi2 := mbbOf(split, t.dims)
		t.root = &Node{Entries: []Entry{
			{Lo: lo1, Hi: hi1, child: root},
			{Lo: lo2, Hi: hi2, child: split},
		}}
		c.mark(t.root)
		t.height++
		t.nodes++
		t.chargeWrites(1)
	}
}

// insert places e in the subtree rooted at n (level counts down to 1 =
// leaf; e lands in the node at targetLevel). It returns the possibly
// copied replacement for n plus a new sibling if n was split.
func (t *Tree) insert(c *cowCtx, n *Node, e Entry, level, targetLevel int) (*Node, *Node) {
	t.chargeRead(n)
	n = c.editable(n)
	if level == targetLevel {
		n.Entries = append(n.Entries, e)
		t.chargeWrites(1)
		if len(n.Entries) > t.maxEntries {
			return n, t.split(c, n)
		}
		return n, nil
	}
	i := chooseSubtree(n, e)
	child, split := t.insert(c, n.Entries[i].child, e, level-1, targetLevel)
	// Re-link (COW may have copied the child) and refresh the MBB.
	n.Entries[i].child = child
	lo, hi := mbbOf(child, t.dims)
	n.Entries[i].Lo, n.Entries[i].Hi = lo, hi
	t.chargeWrites(1)
	if split != nil {
		lo, hi := mbbOf(split, t.dims)
		n.Entries = append(n.Entries, Entry{Lo: lo, Hi: hi, child: split})
		if len(n.Entries) > t.maxEntries {
			return n, t.split(c, n)
		}
	}
	return n, nil
}

// chooseSubtree picks the child needing least area enlargement to cover
// e, breaking ties by smallest area.
func chooseSubtree(n *Node, e Entry) int {
	best := 0
	bestEnl, bestArea := enlargement(n.Entries[0], e), area(n.Entries[0])
	for i := 1; i < len(n.Entries); i++ {
		enl, a := enlargement(n.Entries[i], e), area(n.Entries[i])
		if enl < bestEnl || (enl == bestEnl && a < bestArea) {
			best, bestEnl, bestArea = i, enl, a
		}
	}
	return best
}

// area computes the MBB volume in float64 (extents can overflow int64
// for high-dimensional integer domains).
func area(e Entry) float64 {
	a := 1.0
	for d := range e.Lo {
		a *= float64(e.Hi[d]-e.Lo[d]) + 1
	}
	return a
}

// enlargement is the volume growth of e's MBB needed to include x.
func enlargement(e, x Entry) float64 {
	a := 1.0
	for d := range e.Lo {
		lo, hi := e.Lo[d], e.Hi[d]
		if x.Lo[d] < lo {
			lo = x.Lo[d]
		}
		if x.Hi[d] > hi {
			hi = x.Hi[d]
		}
		a *= float64(hi-lo) + 1
	}
	return a - area(e)
}

// linearSplitThreshold selects the split algorithm: quadratic split
// costs O(cap²) pair evaluations, which is fine for the small fan-outs
// of the in-memory dominance trees (and the paper's capacity-3
// examples) but pathological for page-sized nodes (~146 entries),
// where bulk-loaded leaves are 100% full and every incremental insert
// pays a split. Past this fan-out Guttman's linear split — O(cap·d) —
// keeps insert/delete maintenance cheap.
const linearSplitThreshold = 32

// split performs a Guttman split on an overfull node (already
// editable), leaving one group in n and returning the other as a new
// sibling. Small nodes split quadratically, large ones linearly.
func (t *Tree) split(c *cowCtx, n *Node) *Node {
	if t.maxEntries > linearSplitThreshold {
		return t.splitLinear(c, n)
	}
	entries := n.Entries
	// Pick the two seeds wasting the most area if paired.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := pairWaste(entries[i], entries[j])
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := &Node{Leaf: n.Leaf, Entries: []Entry{entries[s1]}}
	g2 := &Node{Leaf: n.Leaf, Entries: []Entry{entries[s2]}}
	lo1, hi1 := mbbOf(g1, t.dims)
	lo2, hi2 := mbbOf(g2, t.dims)
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force-assign if a group must take everything left to reach
		// the minimum fill.
		if len(g1.Entries)+len(rest) == t.minEntries {
			g1.Entries = append(g1.Entries, rest...)
			rest = nil
			break
		}
		if len(g2.Entries)+len(rest) == t.minEntries {
			g2.Entries = append(g2.Entries, rest...)
			rest = nil
			break
		}
		// Pick the entry with the greatest preference between groups.
		bi, bd := -1, -1.0
		var toG1 bool
		for i, e := range rest {
			d1 := enlargement(Entry{Lo: lo1, Hi: hi1}, e)
			d2 := enlargement(Entry{Lo: lo2, Hi: hi2}, e)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bd {
				bd, bi, toG1 = diff, i, d1 < d2
			}
		}
		e := rest[bi]
		rest[bi] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if toG1 {
			g1.Entries = append(g1.Entries, e)
			lo1, hi1 = mbbOf(g1, t.dims)
		} else {
			g2.Entries = append(g2.Entries, e)
			lo2, hi2 = mbbOf(g2, t.dims)
		}
	}
	n.Entries = g1.Entries
	c.mark(g2)
	t.nodes++
	t.chargeWrites(2)
	return g2
}

// splitLinear is Guttman's linear split: seeds are the pair with the
// greatest normalized separation along any dimension, remaining
// entries go to the group needing least enlargement (ties: smaller
// area, then fewer entries), with force-assignment protecting the
// minimum fill. One pass per phase — O(cap·d) total.
func (t *Tree) splitLinear(c *cowCtx, n *Node) *Node {
	entries := n.Entries
	s1, s2 := 0, 1
	bestSep := -1.0
	for d := 0; d < t.dims; d++ {
		maxLo, minHi := 0, 0
		lo, hi := entries[0].Lo[d], entries[0].Hi[d]
		for i := 1; i < len(entries); i++ {
			e := &entries[i]
			if e.Lo[d] > entries[maxLo].Lo[d] {
				maxLo = i
			}
			if e.Hi[d] < entries[minHi].Hi[d] {
				minHi = i
			}
			if e.Lo[d] < lo {
				lo = e.Lo[d]
			}
			if e.Hi[d] > hi {
				hi = e.Hi[d]
			}
		}
		if maxLo == minHi {
			continue
		}
		extent := float64(hi-lo) + 1
		sep := float64(entries[maxLo].Lo[d]-entries[minHi].Hi[d]) / extent
		if sep > bestSep {
			bestSep, s1, s2 = sep, maxLo, minHi
		}
	}
	if s1 == s2 { // fully degenerate node (all entries identical)
		s2 = (s1 + 1) % len(entries)
	}
	g1 := &Node{Leaf: n.Leaf, Entries: []Entry{entries[s1]}}
	g2 := &Node{Leaf: n.Leaf, Entries: []Entry{entries[s2]}}
	lo1, hi1 := mbbOf(g1, t.dims)
	lo2, hi2 := mbbOf(g2, t.dims)
	grow := func(lo, hi []int32, e *Entry) {
		for d := range lo {
			if e.Lo[d] < lo[d] {
				lo[d] = e.Lo[d]
			}
			if e.Hi[d] > hi[d] {
				hi[d] = e.Hi[d]
			}
		}
	}
	rest := len(entries) - 2
	for i := range entries {
		if i == s1 || i == s2 {
			continue
		}
		e := &entries[i]
		switch {
		case len(g1.Entries)+rest == t.minEntries:
			g1.Entries = append(g1.Entries, *e)
			grow(lo1, hi1, e)
		case len(g2.Entries)+rest == t.minEntries:
			g2.Entries = append(g2.Entries, *e)
			grow(lo2, hi2, e)
		default:
			d1 := enlargement(Entry{Lo: lo1, Hi: hi1}, *e)
			d2 := enlargement(Entry{Lo: lo2, Hi: hi2}, *e)
			toG1 := d1 < d2
			if d1 == d2 {
				a1, a2 := area(Entry{Lo: lo1, Hi: hi1}), area(Entry{Lo: lo2, Hi: hi2})
				toG1 = a1 < a2 || (a1 == a2 && len(g1.Entries) <= len(g2.Entries))
			}
			if toG1 {
				g1.Entries = append(g1.Entries, *e)
				grow(lo1, hi1, e)
			} else {
				g2.Entries = append(g2.Entries, *e)
				grow(lo2, hi2, e)
			}
		}
		rest--
	}
	n.Entries = g1.Entries
	c.mark(g2)
	t.nodes++
	t.chargeWrites(2)
	return g2
}

// pairWaste is Guttman's seed-picking metric: dead volume when i and j
// share one MBB.
func pairWaste(a, b Entry) float64 {
	v := 1.0
	for d := range a.Lo {
		lo, hi := a.Lo[d], a.Hi[d]
		if b.Lo[d] < lo {
			lo = b.Lo[d]
		}
		if b.Hi[d] > hi {
			hi = b.Hi[d]
		}
		v *= float64(hi-lo) + 1
	}
	return v - area(a) - area(b)
}
