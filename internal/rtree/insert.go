package rtree

// Insert adds a point using Guttman's algorithm (least-enlargement leaf
// choice, quadratic split). Each node touched on the way down is charged
// one read; each node written (the modified leaf, any split siblings and
// updated ancestors) is charged one write. The in-memory dominance trees
// run with a nil counter, so there accounting is free.
//
// The point's coordinate slice is referenced, not copied.
func (t *Tree) Insert(p Point) {
	if len(p.Coords) != t.dims {
		panic("rtree: point dimensionality mismatch")
	}
	e := Entry{Lo: p.Coords, Hi: p.Coords, ID: p.ID}
	split := t.insert(t.root, e, t.height)
	if split != nil {
		// Root split: grow the tree.
		left := t.root
		lo1, hi1 := mbbOf(left, t.dims)
		lo2, hi2 := mbbOf(split, t.dims)
		t.root = &Node{Entries: []Entry{
			{Lo: lo1, Hi: hi1, child: left},
			{Lo: lo2, Hi: hi2, child: split},
		}}
		t.height++
		t.nodes++
		t.chargeWrites(1)
	}
	t.size++
}

// insert places e in the subtree rooted at n (level counts down to 1 =
// leaf) and returns a new sibling if n was split, nil otherwise.
func (t *Tree) insert(n *Node, e Entry, level int) *Node {
	t.chargeRead(n)
	if level == 1 {
		n.Entries = append(n.Entries, e)
		t.chargeWrites(1)
		if len(n.Entries) > t.maxEntries {
			return t.split(n)
		}
		return nil
	}
	i := chooseSubtree(n, e)
	split := t.insert(n.Entries[i].child, e, level-1)
	// Refresh the chosen entry's MBB.
	lo, hi := mbbOf(n.Entries[i].child, t.dims)
	n.Entries[i].Lo, n.Entries[i].Hi = lo, hi
	t.chargeWrites(1)
	if split != nil {
		lo, hi := mbbOf(split, t.dims)
		n.Entries = append(n.Entries, Entry{Lo: lo, Hi: hi, child: split})
		if len(n.Entries) > t.maxEntries {
			return t.split(n)
		}
	}
	return nil
}

// chooseSubtree picks the child needing least area enlargement to cover
// e, breaking ties by smallest area.
func chooseSubtree(n *Node, e Entry) int {
	best := 0
	bestEnl, bestArea := enlargement(n.Entries[0], e), area(n.Entries[0])
	for i := 1; i < len(n.Entries); i++ {
		enl, a := enlargement(n.Entries[i], e), area(n.Entries[i])
		if enl < bestEnl || (enl == bestEnl && a < bestArea) {
			best, bestEnl, bestArea = i, enl, a
		}
	}
	return best
}

// area computes the MBB volume in float64 (extents can overflow int64
// for high-dimensional integer domains).
func area(e Entry) float64 {
	a := 1.0
	for d := range e.Lo {
		a *= float64(e.Hi[d]-e.Lo[d]) + 1
	}
	return a
}

// enlargement is the volume growth of e's MBB needed to include x.
func enlargement(e, x Entry) float64 {
	a := 1.0
	for d := range e.Lo {
		lo, hi := e.Lo[d], e.Hi[d]
		if x.Lo[d] < lo {
			lo = x.Lo[d]
		}
		if x.Hi[d] > hi {
			hi = x.Hi[d]
		}
		a *= float64(hi-lo) + 1
	}
	return a - area(e)
}

// split performs Guttman's quadratic split on an overfull node, leaving
// one group in n and returning the other as a new sibling.
func (t *Tree) split(n *Node) *Node {
	entries := n.Entries
	// Pick the two seeds wasting the most area if paired.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := pairWaste(entries[i], entries[j])
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 := &Node{Leaf: n.Leaf, Entries: []Entry{entries[s1]}}
	g2 := &Node{Leaf: n.Leaf, Entries: []Entry{entries[s2]}}
	lo1, hi1 := mbbOf(g1, t.dims)
	lo2, hi2 := mbbOf(g2, t.dims)
	rest := make([]Entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// Force-assign if a group must take everything left to reach
		// the minimum fill.
		if len(g1.Entries)+len(rest) == t.minEntries {
			g1.Entries = append(g1.Entries, rest...)
			rest = nil
			break
		}
		if len(g2.Entries)+len(rest) == t.minEntries {
			g2.Entries = append(g2.Entries, rest...)
			rest = nil
			break
		}
		// Pick the entry with the greatest preference between groups.
		bi, bd := -1, -1.0
		var toG1 bool
		for i, e := range rest {
			d1 := enlargement(Entry{Lo: lo1, Hi: hi1}, e)
			d2 := enlargement(Entry{Lo: lo2, Hi: hi2}, e)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bd {
				bd, bi, toG1 = diff, i, d1 < d2
			}
		}
		e := rest[bi]
		rest[bi] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if toG1 {
			g1.Entries = append(g1.Entries, e)
			lo1, hi1 = mbbOf(g1, t.dims)
		} else {
			g2.Entries = append(g2.Entries, e)
			lo2, hi2 = mbbOf(g2, t.dims)
		}
	}
	n.Entries = g1.Entries
	t.nodes++
	t.chargeWrites(2)
	return g2
}

// pairWaste is Guttman's seed-picking metric: dead volume when i and j
// share one MBB.
func pairWaste(a, b Entry) float64 {
	v := 1.0
	for d := range a.Lo {
		lo, hi := a.Lo[d], a.Hi[d]
		if b.Lo[d] < lo {
			lo = b.Lo[d]
		}
		if b.Hi[d] > hi {
			hi = b.Hi[d]
		}
		v *= float64(hi-lo) + 1
	}
	return v - area(a) - area(b)
}
