package rtree

import (
	"math/rand"
	"testing"
)

func benchPoints(n, dims int) []Point {
	rng := rand.New(rand.NewSource(7))
	return randomPoints(rng, n, dims, 10_000)
}

func BenchmarkBulkLoad(b *testing.B) {
	for _, n := range []int{1_000, 50_000} {
		pts := benchPoints(n, 3)
		b.Run(benchName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = BulkLoad(3, append([]Point(nil), pts...), 128, nil)
			}
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	pts := benchPoints(10_000, 3)
	b.ResetTimer()
	tr := New(3, 16, nil)
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i%len(pts)])
		if tr.Len() == len(pts) { // rebuild to keep tree size bounded
			b.StopTimer()
			tr = New(3, 16, nil)
			b.StartTimer()
		}
	}
}

func BenchmarkRangeNonEmpty(b *testing.B) {
	tr := BulkLoad(3, benchPoints(50_000, 3), 128, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := int32(i % 9_000)
		lo := []int32{base, base, 0}
		hi := []int32{base + 500, base + 500, 10_000}
		_ = tr.RangeNonEmpty(lo, hi)
	}
}

func BenchmarkSearchRange(b *testing.B) {
	tr := BulkLoad(3, benchPoints(50_000, 3), 128, nil)
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		base := int32(i % 9_000)
		lo := []int32{base, base, 0}
		hi := []int32{base + 500, base + 500, 10_000}
		tr.SearchRange(lo, hi, func(Entry) bool { count++; return true })
	}
	_ = count
}

func BenchmarkBufferedTraversal(b *testing.B) {
	io := &IOCounter{}
	tr := BulkLoad(3, benchPoints(50_000, 3), 128, io)
	scan := func() {
		tr.SearchRange([]int32{0, 0, 0}, []int32{9_999, 9_999, 9_999},
			func(Entry) bool { return true })
	}
	b.Run("unbuffered", func(b *testing.B) {
		tr.SetBuffer(nil)
		for i := 0; i < b.N; i++ {
			scan()
		}
	})
	b.Run("buffered", func(b *testing.B) {
		tr.SetBuffer(NewBuffer(tr.NodeCount()))
		for i := 0; i < b.N; i++ {
			scan()
		}
	})
}

func benchName(n int) string {
	if n >= 50_000 {
		return "50k"
	}
	return "1k"
}
