package rtree

import "fmt"

// LayoutNode describes one node of an explicitly specified R-tree —
// used to rebuild the exact trees of published worked examples (the
// paper's Figure 3(c)) and by tests that need full control over node
// grouping. A node is either internal (Children set) or a leaf (Points
// set), never both.
type LayoutNode struct {
	Children []*LayoutNode
	Points   []Point
}

// FromLayout builds a tree with exactly the given structure. MBBs are
// computed bottom-up; all leaves must sit at the same depth and every
// node must be non-empty. The node capacity is sized to the widest
// node, so no restructuring occurs.
func FromLayout(dims int, root *LayoutNode, io *IOCounter) *Tree {
	height, err := layoutDepth(root, 1)
	if err != nil {
		panic(err)
	}
	maxWidth := 0
	var widest func(n *LayoutNode)
	widest = func(n *LayoutNode) {
		w := len(n.Children) + len(n.Points)
		if w > maxWidth {
			maxWidth = w
		}
		for _, c := range n.Children {
			widest(c)
		}
	}
	widest(root)
	if maxWidth < 2 {
		maxWidth = 2
	}

	t := New(dims, maxWidth, io)
	t.height = height
	t.nodes = 0
	t.size = 0
	var build func(ln *LayoutNode) (*Node, []int32, []int32)
	build = func(ln *LayoutNode) (*Node, []int32, []int32) {
		t.nodes++
		if len(ln.Points) > 0 {
			n := &Node{Leaf: true}
			for _, p := range ln.Points {
				if len(p.Coords) != dims {
					panic("rtree: layout point dimensionality mismatch")
				}
				n.Entries = append(n.Entries, Entry{Lo: p.Coords, Hi: p.Coords, ID: p.ID})
				t.size++
			}
			lo, hi := mbbOf(n, dims)
			return n, lo, hi
		}
		n := &Node{}
		for _, c := range ln.Children {
			child, lo, hi := build(c)
			n.Entries = append(n.Entries, Entry{Lo: lo, Hi: hi, child: child})
		}
		lo, hi := mbbOf(n, dims)
		return n, lo, hi
	}
	t.root, _, _ = build(root)
	t.chargeWrites(int64(t.nodes))
	return t
}

// layoutDepth validates the layout and returns its uniform height.
func layoutDepth(n *LayoutNode, depth int) (int, error) {
	if len(n.Children) > 0 && len(n.Points) > 0 {
		return 0, fmt.Errorf("rtree: layout node at depth %d has both children and points", depth)
	}
	if len(n.Points) > 0 {
		return depth, nil
	}
	if len(n.Children) == 0 {
		return 0, fmt.Errorf("rtree: empty layout node at depth %d", depth)
	}
	want := 0
	for _, c := range n.Children {
		d, err := layoutDepth(c, depth+1)
		if err != nil {
			return 0, err
		}
		if want == 0 {
			want = d
		} else if d != want {
			return 0, fmt.Errorf("rtree: layout leaves at different depths (%d vs %d)", want, d)
		}
	}
	return want, nil
}
