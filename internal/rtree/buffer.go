package rtree

import "container/list"

// Buffer is an LRU page buffer shared by one or more trees: node visits
// that hit the buffer are not charged to the IO counter. The paper's
// §VI-B observes that TSS's IO cost — unlike SDC+'s CPU-heavy cross-
// examination — "can be mitigated (to some extent) using buffers"; the
// buffered ablation benchmark quantifies exactly that.
//
// The zero value is not usable; construct with NewBuffer. A nil *Buffer
// on a tree means every access is charged.
type Buffer struct {
	capacity int
	lru      *list.List // front = most recent; values are *Node
	pos      map[*Node]*list.Element
	hits     int64
	misses   int64
}

// NewBuffer creates a buffer holding up to capacity pages.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{
		capacity: capacity,
		lru:      list.New(),
		pos:      make(map[*Node]*list.Element, capacity),
	}
}

// touch records an access to n: true on hit (no IO charge), false on
// miss (the caller charges one page read and the page is cached,
// evicting the least recently used page if full).
func (b *Buffer) touch(n *Node) bool {
	if el, ok := b.pos[n]; ok {
		b.lru.MoveToFront(el)
		b.hits++
		return true
	}
	b.misses++
	if b.lru.Len() >= b.capacity {
		back := b.lru.Back()
		delete(b.pos, back.Value.(*Node))
		b.lru.Remove(back)
	}
	b.pos[n] = b.lru.PushFront(n)
	return false
}

// Hits returns the number of buffered accesses so far.
func (b *Buffer) Hits() int64 { return b.hits }

// Misses returns the number of accesses charged as page reads.
func (b *Buffer) Misses() int64 { return b.misses }

// Reset empties the buffer and zeroes its statistics.
func (b *Buffer) Reset() {
	b.lru.Init()
	b.pos = make(map[*Node]*list.Element, b.capacity)
	b.hits, b.misses = 0, 0
}

// SetBuffer attaches an LRU page buffer to the tree (nil detaches).
// Buffered trees charge a read only on buffer misses.
func (t *Tree) SetBuffer(b *Buffer) { t.buf = b }

// chargeRead accounts one node visit, honouring the buffer.
func (t *Tree) chargeRead(n *Node) {
	if t.io == nil {
		return
	}
	if t.buf != nil && t.buf.touch(n) {
		return
	}
	t.io.Reads++
}
