package data

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/poset"
)

func TestGenTOIndependentBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := GenTO(rng, 5000, 3, 10000, Independent)
	if len(rows) != 5000 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sum float64
	for _, r := range rows {
		if len(r) != 3 {
			t.Fatal("wrong dims")
		}
		for _, v := range r {
			if v < 0 || v >= 10000 {
				t.Fatalf("value %d out of domain", v)
			}
			sum += float64(v)
		}
	}
	mean := sum / float64(5000*3)
	if mean < 4700 || mean > 5300 {
		t.Errorf("independent mean = %.0f, want ≈ 5000", mean)
	}
}

func TestGenTOAntiCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := GenTO(rng, 5000, 2, 10000, AntiCorrelated)
	// Pearson correlation between the two dimensions must be clearly
	// negative — that is the generator's entire purpose.
	var sx, sy, sxx, syy, sxy float64
	for _, r := range rows {
		x, y := float64(r[0]), float64(r[1])
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	n := float64(len(rows))
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	corr := cov / math.Sqrt(vx*vy)
	if corr > -0.3 {
		t.Errorf("anti-correlated corr = %.3f, want < -0.3", corr)
	}
	for _, r := range rows {
		for _, v := range r {
			if v < 0 || v >= 10000 {
				t.Fatalf("value %d out of domain", v)
			}
		}
	}
}

func TestAntiCorrelatedSkylineLarger(t *testing.T) {
	// Sanity: anti-correlated data has (far) more maxima than
	// independent data of the same size — the reason the paper's
	// anti-correlated runs are slower.
	count := func(dist Distribution) int {
		rng := rand.New(rand.NewSource(3))
		rows := GenTO(rng, 2000, 2, 10000, dist)
		sky := 0
		for i, p := range rows {
			dominated := false
			for j, q := range rows {
				if i == j {
					continue
				}
				if q[0] <= p[0] && q[1] <= p[1] && (q[0] < p[0] || q[1] < p[1]) {
					dominated = true
					break
				}
			}
			if !dominated {
				sky++
			}
		}
		return sky
	}
	ind, anti := count(Independent), count(AntiCorrelated)
	if anti <= ind {
		t.Errorf("anti skyline %d should exceed independent %d", anti, ind)
	}
}

func TestGenTOCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := GenTO(rng, 5000, 2, 10000, Correlated)
	// Pearson correlation between the two dimensions must be clearly
	// positive, and values stay in the domain.
	var sx, sy, sxx, syy, sxy float64
	for _, r := range rows {
		x, y := float64(r[0]), float64(r[1])
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	n := float64(len(rows))
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	corr := cov / math.Sqrt(vx*vy)
	if corr < 0.8 {
		t.Errorf("correlated corr = %.3f, want > 0.8", corr)
	}
	for _, r := range rows {
		for _, v := range r {
			if v < 0 || v >= 10000 {
				t.Fatalf("value %d out of domain", v)
			}
		}
	}
}

func TestGenPO(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := GenPO(rng, 1000, []int{7, 3})
	seen0 := map[int32]bool{}
	for _, r := range rows {
		if r[0] < 0 || r[0] >= 7 || r[1] < 0 || r[1] >= 3 {
			t.Fatalf("PO value out of range: %v", r)
		}
		seen0[r[0]] = true
	}
	if len(seen0) != 7 {
		t.Errorf("only %d/7 values used in 1000 draws", len(seen0))
	}
}

func TestLatticeFull(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dag := Lattice(rng, 4, 1.0)
	if dag.N() != 16 {
		t.Fatalf("full lattice h=4 has %d nodes, want 16", dag.N())
	}
	// Edges: h * 2^(h-1) = 32.
	if dag.Edges() != 32 {
		t.Fatalf("full lattice h=4 has %d edges, want 32", dag.Edges())
	}
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	// The empty set (node 0) reaches every other node in the full
	// lattice.
	r := poset.NewReachability(dag)
	if r.Count(0) != 15 {
		t.Errorf("empty set reaches %d nodes, want 15", r.Count(0))
	}
}

func TestLatticeDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const h, d = 8, 0.5
	dag := Lattice(rng, h, d)
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	want := d * float64(int(1)<<h)
	got := float64(dag.N())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("thinned lattice size %.0f, want ≈ %.0f", got, want)
	}
}

func TestLatticeHeightBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dag := Lattice(rng, 6, 0.8)
	dm := poset.MustDomain(dag)
	// The longest chain in a containment lattice of universe h has h
	// edges; thinning can only shorten chains. Verify via ordinals:
	// follow any maximal path.
	longest := longestPath(dag)
	if longest > 6 {
		t.Errorf("lattice h=6 has path of length %d", longest)
	}
	_ = dm
}

func longestPath(dag *poset.DAG) int {
	order, _ := dag.TopologicalOrder()
	depth := make([]int, dag.N())
	best := 0
	for _, v := range order {
		for _, w := range dag.Out(int(v)) {
			if depth[v]+1 > depth[w] {
				depth[w] = depth[v] + 1
				if depth[w] > best {
					best = depth[w]
				}
			}
		}
	}
	return best
}

func TestRandomOrderAcyclic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dag := RandomOrder(rng, 30, 0.3)
		if err := dag.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomOrderAvgDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dag := RandomOrderAvgDegree(rng, 100, 3)
	if err := dag.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(dag.Edges()) / 100
	if avg < 1 || avg > 6 {
		t.Errorf("avg out-degree %.2f, want ≈ 3", avg)
	}
	// Degenerate sizes must not panic.
	if RandomOrderAvgDegree(rng, 1, 3).N() != 1 {
		t.Error("n=1 broken")
	}
	if RandomOrderAvgDegree(rng, 0, 3).N() != 0 {
		t.Error("n=0 broken")
	}
}

func TestDeterminism(t *testing.T) {
	a := GenTO(rand.New(rand.NewSource(9)), 100, 2, 1000, AntiCorrelated)
	b := GenTO(rand.New(rand.NewSource(9)), 100, 2, 1000, AntiCorrelated)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("generator not deterministic for equal seeds")
			}
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Independent.String() != "Independent" || AntiCorrelated.String() != "Anti-correlated" ||
		Correlated.String() != "Correlated" {
		t.Error("Distribution.String broken")
	}
	if Distribution(99).String() != "Unknown" {
		t.Error("unknown distribution label broken")
	}
}
