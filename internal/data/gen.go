// Package data generates the synthetic workloads of the paper's
// evaluation (§VI-A): Independent and Anti-correlated attribute
// distributions in the style of the randdataset generator of Börzsönyi
// et al., subset-containment lattice DAGs with density thinning for the
// partially ordered domains, and random partial orders for dynamic
// skyline queries.
//
// All generators are deterministic given a *rand.Rand, so experiments
// are reproducible from a seed.
package data

import (
	"math/rand"

	"repro/internal/poset"
)

// Distribution selects how totally ordered attribute values correlate
// across dimensions.
type Distribution int

const (
	// Independent draws every attribute uniformly at random.
	Independent Distribution = iota
	// AntiCorrelated places points near the anti-diagonal hyperplane:
	// points good in one dimension tend to be bad in the others, which
	// maximises skyline size. This reproduces the construction of the
	// randdataset generator (plane offset + pairwise transfers).
	AntiCorrelated
	// Correlated places points near the diagonal: points good in one
	// dimension tend to be good in the others, which minimises skyline
	// size (randdataset's correlated workload).
	Correlated
)

// String implements fmt.Stringer for experiment reports.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "Independent"
	case AntiCorrelated:
		return "Anti-correlated"
	case Correlated:
		return "Correlated"
	default:
		return "Unknown"
	}
}

// GenTO generates n rows of dims totally ordered attributes over the
// integer domain [0, domainSize). Smaller values are better, matching
// the paper's convention.
func GenTO(rng *rand.Rand, n, dims, domainSize int, dist Distribution) [][]int32 {
	rows := make([][]int32, n)
	flat := make([]int32, n*dims)
	for i := range rows {
		rows[i] = flat[i*dims : (i+1)*dims : (i+1)*dims]
		switch dist {
		case AntiCorrelated:
			antiRow(rng, rows[i], domainSize)
		case Correlated:
			corrRow(rng, rows[i], domainSize)
		default:
			for d := range rows[i] {
				rows[i][d] = int32(rng.Intn(domainSize))
			}
		}
	}
	return rows
}

// antiRow fills one anti-correlated row. A point is drawn near the
// hyperplane Σx_d = dims·v where the plane offset v ~ N(0.5, 0.05) is
// tightly concentrated (a loose offset would occasionally drop a point
// near the origin that dominates the whole band, collapsing the
// skyline). The point is then spread *within* the plane by pairwise
// transfers, each drawn uniformly over the largest step that keeps both
// coordinates inside [0,1), so the sum — and hence the anti-diagonal
// band — is preserved without clamping or rejection.
func antiRow(rng *rand.Rand, row []int32, domainSize int) {
	dims := len(row)
	v := rng.NormFloat64()*0.05 + 0.5
	for v <= 0 || v >= 1 {
		v = rng.NormFloat64()*0.05 + 0.5
	}
	x := make([]float64, dims)
	for d := range x {
		x[d] = v
	}
	if dims > 1 {
		for k := 0; k < 3*dims; k++ {
			i := rng.Intn(dims)
			j := rng.Intn(dims - 1)
			if j >= i {
				j++
			}
			// x[i] += h, x[j] -= h with both staying in [0,1).
			hMin := -x[i]
			if x[j]-1 > hMin {
				hMin = x[j] - 1
			}
			hMax := 1 - x[i]
			if x[j] < hMax {
				hMax = x[j]
			}
			h := hMin + rng.Float64()*(hMax-hMin)
			x[i] += h
			x[j] -= h
		}
	}
	for d := range row {
		c := x[d]
		if c >= 1 {
			c = 1 - 1e-9
		}
		if c < 0 {
			c = 0
		}
		row[d] = int32(c * float64(domainSize))
	}
}

// corrRow fills one correlated row: a uniform plane offset v places the
// point on the diagonal, and each coordinate deviates from v by tight
// Gaussian noise, clamped into [0,1).
func corrRow(rng *rand.Rand, row []int32, domainSize int) {
	v := rng.Float64()
	for d := range row {
		c := v + rng.NormFloat64()*0.05
		if c >= 1 {
			c = 1 - 1e-9
		}
		if c < 0 {
			c = 0
		}
		row[d] = int32(c * float64(domainSize))
	}
}

// GenPO generates n rows of dims partially ordered attribute values:
// value ids drawn uniformly from each domain's value set.
func GenPO(rng *rand.Rand, n int, domainSizes []int) [][]int32 {
	dims := len(domainSizes)
	rows := make([][]int32, n)
	flat := make([]int32, n*dims)
	for i := range rows {
		rows[i] = flat[i*dims : (i+1)*dims : (i+1)*dims]
		for d := range rows[i] {
			rows[i][d] = int32(rng.Intn(domainSizes[d]))
		}
	}
	return rows
}

// Lattice builds the paper's PO-domain DAG: the containment lattice of
// subsets of a universe of h objects (2^h nodes, height h), thinned by
// retaining each node — together with its incident edges — with
// probability d (the paper's density parameter, d = |V|/2^h). Smaller
// subsets are preferred: an edge S→T exists when T = S ∪ {x} and both
// ends were retained.
//
// The empty set is always retained so the domain has at least one value
// and, typically, a single best value.
func Lattice(rng *rand.Rand, h int, d float64) *poset.DAG {
	total := 1 << uint(h)
	keep := make([]bool, total)
	id := make([]int32, total)
	n := 0
	for s := 0; s < total; s++ {
		if s == 0 || rng.Float64() < d {
			keep[s] = true
			id[s] = int32(n)
			n++
		}
	}
	dag := poset.NewDAG(n)
	for s := 0; s < total; s++ {
		if !keep[s] {
			continue
		}
		// Supersets with exactly one extra object.
		for b := 0; b < h; b++ {
			if s&(1<<uint(b)) != 0 {
				continue
			}
			t := s | 1<<uint(b)
			if keep[t] {
				dag.MustEdge(int(id[s]), int(id[t]))
			}
		}
	}
	return dag
}

// RandomOrder builds a random partial order over n values for dynamic
// skyline queries: a random permutation fixes an (implicit) topological
// order and each forward pair becomes an edge with probability p.
// Guaranteed acyclic.
func RandomOrder(rng *rand.Rand, n int, p float64) *poset.DAG {
	dag := poset.NewDAG(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				dag.MustEdge(perm[i], perm[j])
			}
		}
	}
	return dag
}

// RandomOrderAvgDegree is RandomOrder parameterised by expected outgoing
// edges per value instead of a raw probability, which stays meaningful
// as domains grow.
func RandomOrderAvgDegree(rng *rand.Rand, n int, avgDeg float64) *poset.DAG {
	if n <= 1 {
		return poset.NewDAG(n)
	}
	p := avgDeg / float64(n-1) * 2
	if p > 1 {
		p = 1
	}
	return RandomOrder(rng, n, p)
}
