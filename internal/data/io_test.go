package data

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/poset"
)

func TestDAGFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dag := Lattice(rng, 5, 0.8)
	path := filepath.Join(t.TempDir(), "dag.txt")
	if err := WriteDAGFile(path, dag); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDAGFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != dag.N() || back.Edges() != dag.Edges() {
		t.Fatalf("round trip: N %d→%d, edges %d→%d", dag.N(), back.N(), dag.Edges(), back.Edges())
	}
	for v := 0; v < dag.N(); v++ {
		a, b := dag.Out(v), back.Out(v)
		if len(a) != len(b) {
			t.Fatalf("node %d out-degree %d→%d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d: %d→%d", v, i, a[i], b[i])
			}
		}
	}
}

func TestReadCSV(t *testing.T) {
	dag := poset.NewDAG(3)
	dag.MustEdge(0, 1)
	dom := poset.MustDomain(dag)

	ds, err := ReadCSV(strings.NewReader("to_0,po_0\n7,0\n3,2\n"), []*poset.Domain{dom})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pts) != 2 || ds.Pts[0].TO[0] != 7 || ds.Pts[1].PO[0] != 2 {
		t.Fatalf("parsed %+v", ds.Pts)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}

	for name, input := range map[string]string{
		"bad column":   "x_0\n1\n",
		"bad to value": "to_0\nseven\n",
		"bad po value": "to_0,po_0\n1,zero\n",
		"domain count": "to_0,po_0,po_1\n1,0,0\n",
	} {
		if _, err := ReadCSV(strings.NewReader(input), []*poset.Domain{dom}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadDomains(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	if err := os.WriteFile(good, []byte("2\n0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	domains, err := ReadDomains([]string{good})
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 1 || domains[0].Size() != 2 {
		t.Fatalf("domains: %+v", domains)
	}
	if !domains[0].TPrefers(0, 1) {
		t.Error("edge 0→1 lost")
	}
	if _, err := ReadDomains([]string{filepath.Join(dir, "missing.txt")}); err == nil {
		t.Error("missing file must fail")
	}
	cyclic := filepath.Join(dir, "cyclic.txt")
	if err := os.WriteFile(cyclic, []byte("2\n0 1\n1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDomains([]string{cyclic}); err == nil {
		t.Error("cyclic DAG must fail domain construction")
	}
}
