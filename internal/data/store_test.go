package data

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/poset"
	"repro/internal/store"
)

// TestDatasetSnapshotRoundTrip: dataset → snapshot → dataset preserves
// rows, domains (reachability included) and skylines.
func TestDatasetSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dag := poset.NewDAG(5)
	dag.MustEdge(0, 1)
	dag.MustEdge(0, 2)
	dag.MustEdge(1, 3)
	dag.MustEdge(2, 4)
	dom := poset.MustDomain(dag)
	ds := &core.Dataset{Domains: []*poset.Domain{dom}}
	for i := 0; i < 40; i++ {
		ds.Pts = append(ds.Pts, core.Point{
			ID: int32(i),
			TO: []int32{int32(rng.Intn(50)), int32(rng.Intn(50))},
			PO: []int32{int32(rng.Intn(5))},
		})
	}

	snap, err := DatasetSnapshot(ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 7 || snap.Rows.N() != 40 {
		t.Fatalf("snapshot version %d rows %d", snap.Version, snap.Rows.N())
	}
	back, err := DatasetFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Pts) != len(ds.Pts) || back.NumTO() != 2 || back.NumPO() != 1 {
		t.Fatalf("shape diverges: %d pts, %d TO, %d PO", len(back.Pts), back.NumTO(), back.NumPO())
	}
	for i := range ds.Pts {
		if fmt.Sprint(ds.Pts[i]) != fmt.Sprint(back.Pts[i]) {
			t.Fatalf("row %d diverges: %v vs %v", i, ds.Pts[i], back.Pts[i])
		}
	}
	for x := int32(0); x < 5; x++ {
		for y := int32(0); y < 5; y++ {
			if dom.TPrefers(x, y) != back.Domains[0].TPrefers(x, y) {
				t.Fatalf("preference %d→%d diverges after round trip", x, y)
			}
		}
	}
	if fmt.Sprint(ds.NaiveSkyline()) != fmt.Sprint(back.NaiveSkyline()) {
		t.Fatal("skyline diverges after round trip")
	}
}

// TestDatasetFromSnapshotRejectsBadInput: cyclic DAGs and out-of-range
// values error instead of producing a broken dataset.
func TestDatasetFromSnapshotRejectsBadInput(t *testing.T) {
	good, err := DatasetSnapshot(&core.Dataset{
		Domains: []*poset.Domain{poset.MustDomain(poset.NewDAG(2))},
		Pts:     []core.Point{{TO: []int32{1}, PO: []int32{0}}},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Schema.Orders = append([]store.OrderSchema(nil), good.Schema.Orders...)
	bad.Schema.Orders[0].Edges = [][2]int32{{0, 1}, {1, 0}}
	if _, err := DatasetFromSnapshot(&bad); err == nil {
		t.Fatal("cyclic DAG accepted")
	}
	neg := *good
	neg.Rows.TO = [][]int64{{-5}}
	if _, err := DatasetFromSnapshot(&neg); err == nil {
		t.Fatal("negative TO value accepted")
	}
}
