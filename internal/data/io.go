package data

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/poset"
)

// This file is the workload interchange format shared by the CLIs and
// the server: a CSV data file whose header names the columns (to_*
// totally ordered, po_* partially ordered, PO values as integer ids)
// plus one DAG edge-list file per PO attribute ("N" on the first line,
// then one "better worse" edge per line, '#' comments allowed).
// tssgen writes it, tssquery and tssserve read it.

// ReadDAGFile parses a DAG edge-list file.
func ReadDAGFile(path string) (*poset.DAG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("empty DAG file")
	}
	n, err := strconv.Atoi(strings.TrimSpace(sc.Text()))
	if err != nil {
		return nil, fmt.Errorf("bad node count: %v", err)
	}
	dag := poset.NewDAG(n)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("bad edge %q: %v", line, err)
		}
		if err := dag.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return dag, sc.Err()
}

// WriteDAGFile writes a DAG in the edge-list format ReadDAGFile parses.
func WriteDAGFile(path string, dag *poset.DAG) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := fmt.Fprintln(w, dag.N()); err != nil {
		return err
	}
	for v := 0; v < dag.N(); v++ {
		for _, u := range dag.Out(v) {
			if _, err := fmt.Fprintln(w, v, u); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// ReadCSVDataset parses a CSV data file against the given PO domains
// (one per po_* column, in column order).
func ReadCSVDataset(path string, domains []*poset.Domain) (*core.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, domains)
}

// ReadCSV parses the CSV workload format from r: the header names the
// columns (to_* / po_*), every subsequent record is one row. The number
// of po_* columns must match len(domains).
func ReadCSV(r io.Reader, domains []*poset.Domain) (*core.Dataset, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	header, err := cr.Read()
	if err != nil {
		return nil, err
	}
	var toCols, poCols []int
	for i, name := range header {
		switch {
		case strings.HasPrefix(name, "to_"):
			toCols = append(toCols, i)
		case strings.HasPrefix(name, "po_"):
			poCols = append(poCols, i)
		default:
			return nil, fmt.Errorf("column %q is neither to_* nor po_*", name)
		}
	}
	if len(poCols) != len(domains) {
		return nil, fmt.Errorf("%d po_* columns but %d DAG files", len(poCols), len(domains))
	}
	ds := &core.Dataset{Domains: domains}
	id := int32(0)
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		p := core.Point{ID: id}
		for _, c := range toCols {
			v, err := strconv.Atoi(rec[c])
			if err != nil {
				return nil, fmt.Errorf("row %d: %v", id, err)
			}
			p.TO = append(p.TO, int32(v))
		}
		for _, c := range poCols {
			v, err := strconv.Atoi(rec[c])
			if err != nil {
				return nil, fmt.Errorf("row %d: %v", id, err)
			}
			p.PO = append(p.PO, int32(v))
		}
		ds.Pts = append(ds.Pts, p)
		id++
	}
	return ds, nil
}

// ReadDomains reads and preprocesses a list of DAG files into query
// domains, one per PO column.
func ReadDomains(paths []string) ([]*poset.Domain, error) {
	var domains []*poset.Domain
	for _, path := range paths {
		dag, err := ReadDAGFile(path)
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", path, err)
		}
		dom, err := poset.NewDomain(dag)
		if err != nil {
			return nil, fmt.Errorf("domain %s: %w", path, err)
		}
		domains = append(domains, dom)
	}
	return domains, nil
}
