package data

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/poset"
	"repro/internal/store"
)

// Conversions between the CLI workload form (core.Dataset: CSV rows +
// DAG files) and the storage engine's columnar snapshot, giving the
// tools a tables:save / tables:load round trip against the same data
// directories tssserve persists into.

// DatasetSnapshot renders ds as a storage snapshot at the given
// version, with the interchange format's to_*/po_* column names and
// integer-id PO value labels (the encoding the CSV files themselves
// use).
func DatasetSnapshot(ds *core.Dataset, version int64) (*store.Snapshot, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	s := &store.Snapshot{Version: version}
	for c := 0; c < ds.NumTO(); c++ {
		s.Schema.TOColumns = append(s.Schema.TOColumns, fmt.Sprintf("to_%d", c))
		col := make([]int64, len(ds.Pts))
		for i := range ds.Pts {
			col[i] = int64(ds.Pts[i].TO[c])
		}
		s.Rows.TO = append(s.Rows.TO, col)
	}
	for c, dom := range ds.Domains {
		dag := dom.DAG()
		o := store.OrderSchema{Name: fmt.Sprintf("po_%d", c)}
		for v := 0; v < dag.N(); v++ {
			o.Values = append(o.Values, strconv.Itoa(v))
		}
		for v := 0; v < dag.N(); v++ {
			for _, w := range dag.Out(v) {
				o.Edges = append(o.Edges, [2]int32{int32(v), w})
			}
		}
		s.Schema.Orders = append(s.Schema.Orders, o)
		col := make([]int32, len(ds.Pts))
		for i := range ds.Pts {
			col[i] = ds.Pts[i].PO[c]
		}
		s.Rows.PO = append(s.Rows.PO, col)
	}
	return s, nil
}

// DatasetFromSnapshot rebuilds a dataset from a storage snapshot: PO
// domains from the persisted preference DAGs (labels preserved), rows
// from the columnar data.
func DatasetFromSnapshot(s *store.Snapshot) (*core.Dataset, error) {
	ds := &core.Dataset{}
	for c, o := range s.Schema.Orders {
		dag := poset.NewDAG(len(o.Values))
		for v, label := range o.Values {
			dag.SetLabel(v, label)
		}
		for _, e := range o.Edges {
			if err := dag.AddEdge(int(e[0]), int(e[1])); err != nil {
				return nil, fmt.Errorf("po column %d: %w", c, err)
			}
		}
		dom, err := poset.NewDomain(dag)
		if err != nil {
			return nil, fmt.Errorf("po column %d: %w", c, err)
		}
		ds.Domains = append(ds.Domains, dom)
	}
	n := s.Rows.N()
	for i := 0; i < n; i++ {
		p := core.Point{ID: int32(i)}
		for c := range s.Rows.TO {
			v := s.Rows.TO[c][i]
			if v < 0 || v > 1<<30 {
				return nil, fmt.Errorf("row %d: TO value %d outside the supported range", i, v)
			}
			p.TO = append(p.TO, int32(v))
		}
		for c := range s.Rows.PO {
			p.PO = append(p.PO, s.Rows.PO[c][i])
		}
		ds.Pts = append(ds.Pts, p)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
