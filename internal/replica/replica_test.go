package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
	"repro/internal/store"
)

func testSpec(rows int) serve.TableSpec {
	spec := serve.TableSpec{
		Name:      "flights",
		TOColumns: []string{"price", "stops"},
		Orders: []serve.OrderSpec{{
			Name:   "airline",
			Values: []string{"a", "b", "c", "d"},
			Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		}},
		CacheCapacity: 8,
	}
	for i := 0; i < rows; i++ {
		spec.Rows = append(spec.Rows, serve.RowSpec{
			TO: []int64{int64(100 + 17*i%90), int64(i % 4)},
			PO: []string{spec.Orders[0].Values[i%4]},
		})
	}
	return spec
}

func postBatch(t *testing.T, url string, rows ...serve.RowSpec) {
	t.Helper()
	buf, err := json.Marshal(serve.BatchRequest{Add: rows})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/tables/flights/rows:batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("batch: status %d: %s", resp.StatusCode, b)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}

func row(price, stops int64, airline string) serve.RowSpec {
	return serve.RowSpec{TO: []int64{price, stops}, PO: []string{airline}}
}

// newPrimary boots a durable primary with the flights table over an
// httptest listener.
func newPrimary(t *testing.T, checkpointEvery int64) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.NewWithConfig(serve.Config{Store: store.NewMem(), CheckpointEvery: checkpointEvery})
	if _, err := s.CreateTable(testSpec(12)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newFollower pairs a read-only local catalog with a Follower loop
// against the given primary.
func newFollower(t *testing.T, primaryURL string, st store.Store) (*serve.Server, *Follower, *httptest.Server) {
	t.Helper()
	srv := serve.NewWithConfig(serve.Config{ReadOnly: true, Store: st})
	f, err := New(Config{Primary: primaryURL, Server: srv, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, f, ts
}

// TestBootstrapAndTail: the first Sync seeds from the snapshot, later
// Syncs apply WAL frames; after each, the follower serves the same
// skyline as the primary at the same version.
func TestBootstrapAndTail(t *testing.T) {
	_, pts := newPrimary(t, 1<<30)
	postBatch(t, pts.URL, row(10, 0, "a"))
	postBatch(t, pts.URL, row(11, 1, "b"))

	fsrv, f, fts := newFollower(t, pts.URL, nil)
	ctx := context.Background()
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	info, ok := fsrv.Table("flights")
	if !ok || info.Version != 2 {
		t.Fatalf("follower at %+v, want version 2", info)
	}
	if lag := f.Lag()["flights"]; lag != 0 {
		t.Fatalf("lag = %d, want 0", lag)
	}

	// Tail path: new primary batches flow through the log, not a
	// re-bootstrap (versions advance one record at a time).
	postBatch(t, pts.URL, row(5, 0, "a"))
	postBatch(t, pts.URL, row(6, 0, "d"))
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	info, _ = fsrv.Table("flights")
	if info.Version != 4 {
		t.Fatalf("follower at version %d, want 4", info.Version)
	}
	type skylineResult struct {
		Version int64           `json:"version"`
		Rows    int             `json:"rows"`
		Count   int             `json:"count"`
		Skyline json.RawMessage `json:"skyline"`
	}
	var want, got skylineResult
	if err := json.Unmarshal(getBody(t, pts.URL+"/tables/flights/skyline"), &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(getBody(t, fts.URL+"/tables/flights/skyline"), &got); err != nil {
		t.Fatal(err)
	}
	if want.Version != got.Version || want.Rows != got.Rows || want.Count != got.Count ||
		!bytes.Equal(want.Skyline, got.Skyline) {
		t.Fatalf("skylines differ:\nprimary:  %+v\nfollower: %+v", want, got)
	}
	if tables := f.Tables(); len(tables) != 1 || tables[0] != "flights" {
		t.Fatalf("Tables() = %v", tables)
	}
}

// TestCompactionReseed: when the primary's checkpoints compact the log
// tail away (410), the follower re-seeds from the snapshot.
func TestCompactionReseed(t *testing.T) {
	_, pts := newPrimary(t, 1) // checkpoint after every batch
	fsrv, f, _ := newFollower(t, pts.URL, nil)
	ctx := context.Background()
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	postBatch(t, pts.URL, row(10, 0, "a"))
	postBatch(t, pts.URL, row(11, 1, "b"))
	// Both records were absorbed into the primary's snapshot; the tail
	// fetch answers 410 and Sync must fall back to a fresh seed.
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	info, _ := fsrv.Table("flights")
	if info.Version != 2 {
		t.Fatalf("follower at version %d, want 2 via re-seed", info.Version)
	}
	if lag := f.Lag()["flights"]; lag != 0 {
		t.Fatalf("lag = %d, want 0", lag)
	}
}

// TestDropPropagation: a table the primary drops disappears from the
// follower on the next Sync.
func TestDropPropagation(t *testing.T) {
	psrv, pts := newPrimary(t, 1<<30)
	fsrv, f, _ := newFollower(t, pts.URL, nil)
	ctx := context.Background()
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := fsrv.Table("flights"); !ok {
		t.Fatal("follower missing flights after first sync")
	}
	if !psrv.DropTable("flights") {
		t.Fatal("primary drop failed")
	}
	if err := f.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok := fsrv.Table("flights"); ok {
		t.Fatal("follower still has dropped table")
	}
	if tables := f.Tables(); len(tables) != 0 {
		t.Fatalf("Tables() = %v, want empty", tables)
	}
}

// TestFollowerDurability: a follower with its own store persists what
// it applied — a restart recovers the mirrored version without talking
// to the primary.
func TestFollowerDurability(t *testing.T) {
	_, pts := newPrimary(t, 1<<30)
	st := store.NewMem()
	_, f, _ := newFollower(t, pts.URL, st)
	postBatch(t, pts.URL, row(10, 0, "a"))
	if err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}

	restarted := serve.NewWithConfig(serve.Config{ReadOnly: true, Store: st})
	if _, err := restarted.Recover(); err != nil {
		t.Fatal(err)
	}
	info, ok := restarted.Table("flights")
	if !ok || info.Version != 1 {
		t.Fatalf("restarted follower at %+v, want version 1", info)
	}
}

// TestLagReporting: a Sync observes the primary version at list time;
// the reported lag is primary − applied for that round.
func TestLagReporting(t *testing.T) {
	_, pts := newPrimary(t, 1<<30)
	_, f, _ := newFollower(t, pts.URL, nil)
	if err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if lag, ok := f.Lag()["flights"]; !ok || lag != 0 {
		t.Fatalf("Lag() = %v, want flights:0", f.Lag())
	}
}
