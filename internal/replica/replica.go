// Package replica mirrors a primary tssserve node into a local serving
// catalog: each table bootstrap-seeds from the primary's columnar
// snapshot, then tails its replication log — committed WAL frames in
// the on-disk framing — and applies every record through the serving
// layer's normal batch path. The mirror is therefore itself durable
// when its server has a store attached, and serves reads (at explicit
// snapshot versions, via ?minVersion pinning) the moment each record
// lands.
//
// Replication is asynchronous: a batch is acknowledged by the primary
// once it is in the *primary's* WAL, before any follower has seen it.
// On primary death the acknowledged-but-unshipped suffix is unavailable
// until the primary's disk comes back — the follower serves the newest
// shipped version, which the coordinator's version pinning keeps
// consistent with what each query already observed. Correctness of
// skyline results never depends on replica choice (the union-of-
// partitions property: any superset of rows at a consistent version
// merges to the same skyline); only freshness and availability do.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// DefaultInterval is the log-poll cadence of Run when the config does
// not override it.
const DefaultInterval = 500 * time.Millisecond

// Config wires a Follower.
type Config struct {
	// Primary is the primary node's base URL.
	Primary string
	// Server is the local catalog the mirror applies into — normally a
	// read-only serve.Server, so replication is its only writer.
	Server *serve.Server
	// Client overrides the HTTP client (nil = a 30s-timeout default).
	Client *http.Client
	// Interval is Run's poll cadence (0 = DefaultInterval).
	Interval time.Duration
	// Logf, when non-nil, receives progress and error lines.
	Logf func(format string, args ...any)
}

// Follower is one replication loop against one primary.
type Follower struct {
	primary  string
	srv      *serve.Server
	client   *http.Client
	interval time.Duration
	logf     func(format string, args ...any)

	mu      sync.Mutex
	lag     map[string]int64 // per table: primary version − applied version
	managed map[string]bool  // tables this loop created locally
}

// New validates the config and returns a Follower (not yet running).
func New(cfg Config) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, fmt.Errorf("replica: primary URL is required")
	}
	if cfg.Server == nil {
		return nil, fmt.Errorf("replica: local server is required")
	}
	f := &Follower{
		primary:  strings.TrimRight(cfg.Primary, "/"),
		srv:      cfg.Server,
		client:   cfg.Client,
		interval: cfg.Interval,
		logf:     cfg.Logf,
		lag:      map[string]int64{},
		managed:  map[string]bool{},
	}
	if f.client == nil {
		f.client = &http.Client{Timeout: 30 * time.Second}
	}
	if f.interval <= 0 {
		f.interval = DefaultInterval
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	return f, nil
}

// Run polls Sync until the context is canceled. Sync errors (primary
// down, mid-bootstrap races) are logged and retried on the next tick —
// a follower outliving its primary is the point.
func (f *Follower) Run(ctx context.Context) {
	t := time.NewTicker(f.interval)
	defer t.Stop()
	for {
		if err := f.Sync(ctx); err != nil && ctx.Err() == nil {
			f.logf("replica: sync against %s: %v", f.primary, err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// Sync runs one full replication round: list the primary's tables,
// bootstrap the missing ones, tail every lagging log, and drop local
// mirrors of tables the primary no longer has. It is the unit tests'
// deterministic hook — after a Sync that returns nil, the mirror is
// exactly the primary state the round observed.
func (f *Follower) Sync(ctx context.Context) error {
	var tables []serve.TableInfo
	if err := f.getJSON(ctx, "/tables", &tables); err != nil {
		return err
	}
	seen := make(map[string]bool, len(tables))
	var firstErr error
	for _, t := range tables {
		seen[t.Name] = true
		if err := f.syncTable(ctx, t.Name, t.Version); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("table %q: %w", t.Name, err)
		}
	}
	// A table the primary dropped disappears from the mirror too — but
	// only tables this loop created, never local state someone else owns.
	f.mu.Lock()
	var gone []string
	for name := range f.managed {
		if !seen[name] {
			gone = append(gone, name)
		}
	}
	for _, name := range gone {
		delete(f.managed, name)
		delete(f.lag, name)
	}
	f.mu.Unlock()
	for _, name := range gone {
		f.srv.DropTable(name)
		f.logf("replica: dropped %q (gone from primary)", name)
	}
	return firstErr
}

// syncTable brings one table as close to primaryVersion as this round
// can: bootstrap if absent, tail the log if behind, re-seed from the
// snapshot when the tail was compacted away (410) or out of sync.
func (f *Follower) syncTable(ctx context.Context, name string, primaryVersion int64) error {
	local, ok := f.srv.Table(name)
	localV := local.Version
	if !ok {
		v, err := f.bootstrap(ctx, name)
		if err != nil {
			return err
		}
		localV = v
	}
	for attempt := 0; localV < primaryVersion && attempt < 2; attempt++ {
		gone, err := f.tail(ctx, name, localV)
		switch {
		case gone || errors.Is(err, serve.ErrReplicaGap):
			// The needed suffix is not tailable (checkpoint compacted it,
			// or local state diverged): re-seed from the serving snapshot.
			v, berr := f.bootstrap(ctx, name)
			if berr != nil {
				return berr
			}
			localV = v
		case err != nil:
			return err
		default:
			cur, _ := f.srv.Table(name)
			localV = cur.Version
		}
	}
	f.mu.Lock()
	f.managed[name] = true
	f.lag[name] = primaryVersion - localV
	f.mu.Unlock()
	return nil
}

// bootstrap seeds (or replaces) the local table from the primary's
// serving snapshot and returns the seeded version.
func (f *Follower) bootstrap(ctx context.Context, name string) (int64, error) {
	b, err := f.getRaw(ctx, f.tablePath(name)+"/replica/snapshot")
	if err != nil {
		return 0, err
	}
	snap, err := store.DecodeSnapshot(b)
	if err != nil {
		return 0, fmt.Errorf("bootstrap snapshot: %w", err)
	}
	info, err := f.srv.ImportSnapshot(name, snap)
	if err != nil {
		return 0, err
	}
	f.logf("replica: seeded %q at version %d (%d rows)", name, info.Version, info.Rows)
	return info.Version, nil
}

// tail fetches and applies the log records past the local version.
// gone=true reports 410 — the suffix was compacted away.
func (f *Follower) tail(ctx context.Context, name string, after int64) (gone bool, err error) {
	b, status, err := f.get(ctx, fmt.Sprintf("%s/replica/log?after=%d", f.tablePath(name), after))
	if status == http.StatusGone {
		return true, nil
	}
	if err != nil {
		return false, err
	}
	return false, store.ReplayWAL(b, func(m *store.Mutation) error {
		return f.srv.ApplyReplicated(name, m)
	})
}

// Lag returns the per-table version delta (primary − applied) observed
// by the most recent rounds.
func (f *Follower) Lag() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.lag))
	for k, v := range f.lag {
		out[k] = v
	}
	return out
}

// Tables lists the mirrored table names, sorted.
func (f *Follower) Tables() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.managed))
	for name := range f.managed {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (f *Follower) tablePath(name string) string {
	return "/tables/" + url.PathEscape(name)
}

// get issues one GET against the primary, returning body and status.
// Non-2xx statuses other than the ones the caller inspects surface as
// errors carrying the primary's message.
func (f *Follower) get(ctx context.Context, path string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.primary+path, nil)
	if err != nil {
		return nil, 0, err
	}
	// A dual-role primary (coordinator + shard in one process) must
	// answer from its local catalog, not cluster-route the request.
	req.Header.Set(serve.ShardDirectHeader, "1")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("primary %s: %w", f.primary, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, fmt.Errorf("primary %s: %w", f.primary, err)
	}
	if resp.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(b))
		if len(msg) > 512 {
			msg = msg[:512]
		}
		return nil, resp.StatusCode, fmt.Errorf("primary %s: %s (HTTP %d)", f.primary, msg, resp.StatusCode)
	}
	return b, resp.StatusCode, nil
}

func (f *Follower) getRaw(ctx context.Context, path string) ([]byte, error) {
	b, _, err := f.get(ctx, path)
	return b, err
}

func (f *Follower) getJSON(ctx context.Context, path string, out any) error {
	b, _, err := f.get(ctx, path)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}
