package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// flightsSpec is the paper's Figure 1 ticket table: airlines a..d with
// a→b, a→c, b→d, c→d. Static skyline (Table I): p1, p5, p6, p9, p10 =
// rows 0, 4, 5, 8, 9; under the dynamic order "only b over a": rows
// 2, 5, 6, 7, 8, 9.
func flightsSpec(name string) TableSpec {
	rows := []struct {
		price, stops int64
		airline      string
	}{
		{1800, 0, "a"}, {2000, 0, "a"}, {1800, 0, "b"}, {1200, 1, "b"}, {1400, 1, "a"},
		{1000, 1, "b"}, {1000, 1, "d"}, {1800, 1, "c"}, {500, 2, "d"}, {1200, 2, "c"},
	}
	spec := TableSpec{
		Name:      name,
		TOColumns: []string{"price", "stops"},
		Orders: []OrderSpec{{
			Name:   "airline",
			Values: []string{"a", "b", "c", "d"},
			Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		}},
	}
	for _, r := range rows {
		spec.Rows = append(spec.Rows, RowSpec{TO: []int64{r.price, r.stops}, PO: []string{r.airline}})
	}
	return spec
}

// newTestServer starts an httptest server with the flights table.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(8)
	if _, err := s.CreateTable(flightsSpec("flights")); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON issues a request and decodes the JSON response into out
// (skipped when out is nil), returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var reqBody *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reqBody = bytes.NewReader(buf)
	} else {
		reqBody = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, reqBody)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func rowSet(rows []SkylineRow) []int {
	out := make([]int, len(rows))
	for i, r := range rows {
		out[i] = r.Row
	}
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var out map[string]string
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &out); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if out["status"] != "ok" {
		t.Fatalf("healthz body: %v", out)
	}
}

func TestTableLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	// Duplicate create conflicts.
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables", flightsSpec("flights"), nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", code)
	}
	// A second table appears in the listing.
	var created TableInfo
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables", flightsSpec("other"), &created); code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	if created.Rows != 10 || created.Groups != 4 {
		t.Fatalf("created info: %+v", created)
	}
	var list []TableInfo
	doJSON(t, http.MethodGet, ts.URL+"/tables", nil, &list)
	if len(list) != 2 || list[0].Name != "flights" || list[1].Name != "other" {
		t.Fatalf("listing: %+v", list)
	}
	// Info, delete, then 404.
	var info TableInfo
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/other", nil, &info); code != http.StatusOK || info.Version != 0 {
		t.Fatalf("info: %d %+v", code, info)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/tables/other", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/other", nil, nil); code != http.StatusNotFound {
		t.Fatalf("after delete: %d, want 404", code)
	}
	// Invalid specs are 400s.
	for _, spec := range []TableSpec{
		{},          // no name
		{Name: "x"}, // no columns
		{Name: "po-only", Orders: []OrderSpec{{Values: []string{"a", "b"}}}, Rows: []RowSpec{{PO: []string{"a"}}}},                             // no TO columns
		{Name: "cyc", TOColumns: []string{"t"}, Orders: []OrderSpec{{Values: []string{"a", "b"}, Edges: [][2]string{{"a", "b"}, {"b", "a"}}}}}, // cycle
		{Name: "dup", TOColumns: []string{"t"}, Orders: []OrderSpec{{Values: []string{"a", "a"}}}},                                             // dup labels
	} {
		if code := doJSON(t, http.MethodPost, ts.URL+"/tables", spec, nil); code != http.StatusBadRequest {
			t.Errorf("spec %+v: %d, want 400", spec, code)
		}
	}
}

func TestSkylineEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	want := []int{0, 4, 5, 8, 9}

	for _, algo := range []string{"", "stss", "sdc+", "bnl"} {
		url := ts.URL + "/tables/flights/skyline"
		if algo != "" {
			url += "?algo=" + algo
		}
		var out QueryResponse
		if code := doJSON(t, http.MethodGet, url, nil, &out); code != http.StatusOK {
			t.Fatalf("algo %q: %d", algo, code)
		}
		if !equalInts(rowSet(out.Skyline), want) {
			t.Fatalf("algo %q skyline: %v, want %v", algo, rowSet(out.Skyline), want)
		}
		if out.Version != 0 || out.Rows != 10 || out.Count != 5 {
			t.Fatalf("algo %q header: %+v", algo, out)
		}
		if out.Metrics.DomChecks == 0 {
			t.Errorf("algo %q: metrics missing dominance checks", algo)
		}
	}
	// Parallel executor route.
	var par QueryResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline?algo=stss&parallel=2", nil, &par); code != http.StatusOK {
		t.Fatalf("parallel: %d", code)
	}
	if !equalInts(rowSet(par.Skyline), want) {
		t.Fatalf("parallel skyline: %v", rowSet(par.Skyline))
	}
	// Limit truncates rows but keeps the count.
	var lim QueryResponse
	doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline?limit=2", nil, &lim)
	if len(lim.Skyline) != 2 || lim.Count != 5 {
		t.Fatalf("limit: %d rows, count %d", len(lim.Skyline), lim.Count)
	}
	// Errors: unknown algorithm, TO-only algorithm on a PO table, bad ints.
	for _, q := range []string{"?algo=bogus", "?algo=salsa", "?parallel=x", "?limit=x"} {
		if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline"+q, nil, nil); code != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", q, code)
		}
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/nope/skyline", nil, nil); code != http.StatusNotFound {
		t.Errorf("missing table: %d, want 404", code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	bOverA := QueryRequest{Orders: []QueryOrder{{Edges: [][2]string{{"b", "a"}}}}}
	want := []int{2, 5, 6, 7, 8, 9}

	var out QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", bOverA, &out); code != http.StatusOK {
		t.Fatalf("query: %d", code)
	}
	if !equalInts(rowSet(out.Skyline), want) {
		t.Fatalf("dynamic skyline: %v, want %v", rowSet(out.Skyline), want)
	}
	if out.CacheHit {
		t.Fatal("first query must miss the cache")
	}
	// The identical query — rebuilt from scratch on the wire — hits.
	var hit QueryResponse
	doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", bOverA, &hit)
	if !hit.CacheHit {
		t.Fatal("second identical query must hit the cache")
	}
	if !equalInts(rowSet(hit.Skyline), want) {
		t.Fatalf("cached skyline: %v", rowSet(hit.Skyline))
	}
	if hit.Metrics.ReadIOs != 0 {
		t.Fatalf("cache hit read %d pages", hit.Metrics.ReadIOs)
	}

	// Limit truncates serialized rows but keeps the count.
	limited := bOverA
	limited.Limit = 2
	var lq QueryResponse
	doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", limited, &lq)
	if len(lq.Skyline) != 2 || lq.Count != len(want) {
		t.Fatalf("limited query: %d rows, count %d", len(lq.Skyline), lq.Count)
	}

	// Baseline answers the same query by rebuilding (more IOs, same set).
	base := bOverA
	base.Baseline = true
	var bl QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", base, &bl); code != http.StatusOK {
		t.Fatalf("baseline: %d", code)
	}
	if !equalInts(rowSet(bl.Skyline), want) {
		t.Fatalf("baseline skyline: %v", rowSet(bl.Skyline))
	}
	if bl.Metrics.WriteIOs == 0 {
		t.Error("baseline should charge rebuild writes")
	}

	// Ideal-point query (fully dynamic): the traveller at (1200, 1)
	// preferring a; row 3 sits on the ideal point and must appear,
	// row 1 is dominated in the transformed space.
	ideal := QueryRequest{
		Orders: []QueryOrder{{Edges: [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}}}},
		Ideal:  []int64{1200, 1},
	}
	var iq QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", ideal, &iq); code != http.StatusOK {
		t.Fatalf("ideal query: %d", code)
	}
	got := rowSet(iq.Skyline)
	if !contains(got, 3) || contains(got, 1) {
		t.Fatalf("ideal skyline: %v (want row 3 in, row 1 out)", got)
	}

	// Errors: wrong arity, unknown label, cyclic order, baseline+ideal.
	bad := []QueryRequest{
		{},
		{Orders: []QueryOrder{{}, {}}},
		{Orders: []QueryOrder{{Edges: [][2]string{{"a", "z"}}}}},
		{Orders: []QueryOrder{{Edges: [][2]string{{"a", "b"}, {"b", "a"}}}}},
		{Orders: []QueryOrder{{}}, Ideal: []int64{1}},
		{Orders: []QueryOrder{{}}, Ideal: []int64{1, 2}, Baseline: true},
	}
	for i, req := range bad {
		if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", req, nil); code != http.StatusBadRequest {
			t.Errorf("bad query %d: %d, want 400", i, code)
		}
	}
}

func TestBatchAndStatsz(t *testing.T) {
	_, ts := newTestServer(t)

	// A dominated row changes nothing; a dominating row takes over.
	batch := BatchRequest{Add: []RowSpec{
		{TO: []int64{9999, 9}, PO: []string{"d"}}, // dominated
		{TO: []int64{100, 0}, PO: []string{"a"}},  // dominates everything a-ish
	}}
	var br BatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch", batch, &br); code != http.StatusOK {
		t.Fatalf("batch: %d", code)
	}
	if br.Version != 1 || br.Rows != 12 || br.Added != 2 {
		t.Fatalf("batch response: %+v", br)
	}
	var out QueryResponse
	doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline", nil, &out)
	if out.Version != 1 || out.Rows != 12 {
		t.Fatalf("post-batch skyline header: %+v", out)
	}
	if !contains(rowSet(out.Skyline), 11) {
		t.Fatalf("new dominating row missing: %v", rowSet(out.Skyline))
	}
	if contains(rowSet(out.Skyline), 0) {
		t.Fatalf("row 0 (1800,0,a) should now be dominated by (100,0,a): %v", rowSet(out.Skyline))
	}

	// Removal renumbers: drop the dominator again.
	var br2 BatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
		BatchRequest{Remove: []int{11, 10}}, &br2); code != http.StatusOK {
		t.Fatalf("remove: %d", code)
	}
	if br2.Version != 2 || br2.Rows != 10 || br2.Removed != 2 {
		t.Fatalf("remove response: %+v", br2)
	}
	doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline", nil, &out)
	if !equalInts(rowSet(out.Skyline), []int{0, 4, 5, 8, 9}) {
		t.Fatalf("after remove: %v", rowSet(out.Skyline))
	}
	// An empty batch is a no-op: no version bump, no cache discard.
	var noop BatchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
		BatchRequest{}, &noop); code != http.StatusOK {
		t.Fatalf("empty batch: %d", code)
	}
	if noop.Version != 2 || noop.Rows != 10 || noop.Added != 0 || noop.Removed != 0 {
		t.Fatalf("empty batch response: %+v", noop)
	}

	// Bad mutations.
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
		BatchRequest{Remove: []int{99}}, nil); code != http.StatusBadRequest {
		t.Errorf("oob remove: %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
		BatchRequest{Add: []RowSpec{{TO: []int64{1}, PO: []string{"a"}}}}, nil); code != http.StatusBadRequest {
		t.Errorf("bad arity add: %d, want 400", code)
	}

	// statsz: cumulative counters survive the snapshot swaps.
	q := QueryRequest{Orders: []QueryOrder{{Edges: [][2]string{{"d", "a"}}}}}
	doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", q, nil)
	doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", q, nil)
	var stats StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz: %d", code)
	}
	if len(stats.Tables) != 1 || stats.Tables[0].Name != "flights" {
		t.Fatalf("statsz tables: %+v", stats.Tables)
	}
	ti := stats.Tables[0]
	if ti.Stats.Mutations != 2 {
		t.Errorf("mutations = %d, want 2", ti.Stats.Mutations)
	}
	if ti.Stats.CacheHits < 1 || ti.Stats.CacheMisses < 1 {
		t.Errorf("cache stats %+v, want hits and misses visible", ti.Stats)
	}
	if ti.Stats.Queries < 2 || stats.TotalQueries < ti.Stats.Queries {
		t.Errorf("query counters: table %d, total %d", ti.Stats.Queries, stats.TotalQueries)
	}
	if len(stats.Algorithms) == 0 || stats.UptimeSeconds < 0 {
		t.Errorf("statsz header: %+v", stats)
	}
}

func TestLoadCSVDir(t *testing.T) {
	dir := t.TempDir()
	csv := "to_0,po_0\n10,0\n20,1\n5,2\n"
	dag := "3\n0 1\n" // 0 preferred to 1; 2 incomparable
	if err := os.WriteFile(filepath.Join(dir, "data.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "dag_0.txt"), []byte(dag), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(0)
	info, err := s.LoadCSVDir("gen", dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Rows != 3 || len(info.Orders) != 1 || len(info.Orders[0].Values) != 3 {
		t.Fatalf("loaded info: %+v", info)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var out QueryResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/gen/skyline", nil, &out); code != http.StatusOK {
		t.Fatalf("skyline: %d", code)
	}
	// (10,"0") dominates (20,"1"); (5,"2") survives on price.
	if !equalInts(rowSet(out.Skyline), []int{0, 2}) {
		t.Fatalf("skyline: %v", rowSet(out.Skyline))
	}

	if _, err := s.LoadCSVDir("missing", filepath.Join(dir, "nope")); err == nil {
		t.Error("missing dir must fail")
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestVersionPinsSnapshot: a query response's version always describes
// the snapshot that answered it, even when read mid-mutation.
func TestVersionPinsSnapshot(t *testing.T) {
	s, _ := newTestServer(t)
	e, ok := s.table("flights")
	if !ok {
		t.Fatal("flights missing")
	}
	snap := e.current()
	if _, err := e.applyBatch(BatchRequest{Add: []RowSpec{{TO: []int64{1, 1}, PO: []string{"a"}}}}, nil); err != nil {
		t.Fatal(err)
	}
	// The old snapshot still answers with its own row count.
	if snap.table.Len() != 10 {
		t.Fatalf("published snapshot mutated: %d rows", snap.table.Len())
	}
	if e.current().table.Len() != 11 || e.current().version != 1 {
		t.Fatalf("swap missing: %+v", e.current().version)
	}
}
