package serve

import (
	"fmt"
	"net/http"
	"testing"
)

// discardResponseWriter satisfies http.ResponseWriter without keeping
// the body, so encode-path benchmarks measure the encoder and its
// buffer discipline rather than the sink.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header {
	if d.h == nil {
		d.h = make(http.Header)
	}
	return d.h
}

func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }

func (d *discardResponseWriter) WriteHeader(int) {}

// benchResponse builds a representative buffered query response with n
// skyline rows.
func benchResponse(n int) *QueryResponse {
	resp := &QueryResponse{Table: "bench", Version: 7, Rows: n * 3, Count: n}
	for i := 0; i < n; i++ {
		resp.Skyline = append(resp.Skyline, SkylineRow{
			Row: i,
			TO:  []int64{int64(i), int64(n - i), 42},
			PO:  []string{"alpha", "beta"},
		})
	}
	return resp
}

// BenchmarkWriteJSON measures the buffered response encode path —
// writeJSON reuses encode buffers through encBufPool, so steady-state
// encoding should not grow allocations with the response size beyond
// the encoder's own per-call overhead.
func BenchmarkWriteJSON(b *testing.B) {
	for _, n := range []int{8, 256} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			resp := benchResponse(n)
			w := &discardResponseWriter{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				writeJSON(w, http.StatusOK, resp)
			}
		})
	}
}

// BenchmarkStreamSend measures the per-record streamed encode path: one
// row record framed as NDJSON through the pooled buffer, the cost paid
// once per emitted row on every streamed response.
func BenchmarkStreamSend(b *testing.B) {
	shard := 1
	rec := &StreamRecord{
		Type:     "row",
		Row:      &SkylineRow{Row: 12, TO: []int64{3, 997, 42}, PO: []string{"alpha"}, Shard: &shard},
		Emission: 12,
		Elapsed:  0.0042,
	}
	sw := &streamWriter{w: &discardResponseWriter{}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sw.send(rec); err != nil {
			b.Fatal(err)
		}
	}
}
