package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// streamRecords issues one streamed request and decodes every NDJSON
// frame in order.
func streamRecords(t *testing.T, method, url string, body any) []StreamRecord {
	t.Helper()
	resp := openStream(t, method, url, body)
	defer resp.Body.Close()
	var recs []StreamRecord
	dec := json.NewDecoder(resp.Body)
	for {
		var rec StreamRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return recs
		} else if err != nil {
			t.Fatalf("decode frame %d: %v", len(recs), err)
		}
		recs = append(recs, rec)
	}
}

func openStream(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		t.Fatalf("%s %s: HTTP %d: %s", method, url, resp.StatusCode, msg)
	}
	return resp
}

// splitFrames separates the data-bearing frames from heartbeats and
// asserts the header-rows-trailer envelope.
func splitFrames(t *testing.T, recs []StreamRecord) (header StreamRecord, rows []StreamRecord, trailer StreamRecord) {
	t.Helper()
	if len(recs) < 2 {
		t.Fatalf("stream has %d frames, need header + trailer", len(recs))
	}
	if recs[0].Type != "header" {
		t.Fatalf("first frame is %q, want header", recs[0].Type)
	}
	last := recs[len(recs)-1]
	if last.Type != "trailer" {
		t.Fatalf("last frame is %q, want trailer", last.Type)
	}
	for _, rec := range recs[1 : len(recs)-1] {
		switch rec.Type {
		case "row":
			rows = append(rows, rec)
		case "heartbeat":
		default:
			t.Fatalf("unexpected mid-stream frame %q (error: %s)", rec.Type, rec.Error)
		}
	}
	return recs[0], rows, last
}

// TestStreamSkylineNDJSON: GET /skyline?stream=1 delivers the exact
// buffered skyline as header → rows → trailer NDJSON frames, with
// emission indexes in order and the trailer repeating the snapshot
// version.
func TestStreamSkylineNDJSON(t *testing.T) {
	_, ts := newTestServer(t)

	var buffered QueryResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline", nil, &buffered); code != http.StatusOK {
		t.Fatalf("buffered skyline: %d", code)
	}

	recs := streamRecords(t, http.MethodGet, ts.URL+"/tables/flights/skyline?stream=1", nil)
	header, rows, trailer := splitFrames(t, recs)
	if header.Table != "flights" || header.Rows != 10 {
		t.Fatalf("header %+v, want table=flights rows=10", header)
	}
	if trailer.Version != header.Version {
		t.Fatalf("trailer version %d != header version %d", trailer.Version, header.Version)
	}
	if trailer.Count != len(buffered.Skyline) {
		t.Fatalf("trailer count %d, buffered %d", trailer.Count, len(buffered.Skyline))
	}
	var got []SkylineRow
	for i, rec := range rows {
		if rec.Row == nil {
			t.Fatalf("row frame %d has no row", i)
		}
		if rec.Emission != i {
			t.Fatalf("row frame %d carries emission %d", i, rec.Emission)
		}
		got = append(got, *rec.Row)
	}
	if !equalInts(rowSet(got), rowSet(buffered.Skyline)) {
		t.Fatalf("streamed rows %v, buffered %v", rowSet(got), rowSet(buffered.Skyline))
	}
}

// TestStreamQuerySSE: the same stream under ?sse=1 frames each record
// as an SSE data event with the text/event-stream content type.
func TestStreamQuerySSE(t *testing.T) {
	_, ts := newTestServer(t)
	resp := openStream(t, http.MethodGet, ts.URL+"/tables/flights/skyline?stream=1&sse=1", nil)
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var recs []StreamRecord
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line %q", line)
		}
		var rec StreamRecord
		if err := json.Unmarshal([]byte(data), &rec); err != nil {
			t.Fatalf("bad SSE payload %q: %v", data, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	_, rows, trailer := splitFrames(t, recs)
	if len(rows) != 5 || trailer.Count != 5 {
		t.Fatalf("SSE stream delivered %d rows, trailer count %d, want 5", len(rows), trailer.Count)
	}
}

// TestStreamDynamicQuery: a dynamic (orders) query streams the exact
// buffered rows in order; ?limit truncates the emitted rows while the
// trailer still counts the full skyline.
func TestStreamDynamicQuery(t *testing.T) {
	_, ts := newTestServer(t)
	body := map[string]any{
		"orders": []map[string]any{{"edges": [][2]string{{"b", "a"}}}},
	}
	var buffered QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", body, &buffered); code != http.StatusOK {
		t.Fatalf("buffered query: %d", code)
	}

	recs := streamRecords(t, http.MethodPost, ts.URL+"/tables/flights/query?stream=1", body)
	_, rows, trailer := splitFrames(t, recs)
	if len(rows) != len(buffered.Skyline) {
		t.Fatalf("streamed %d rows, buffered %d", len(rows), len(buffered.Skyline))
	}
	for i := range rows {
		if rows[i].Row.Row != buffered.Skyline[i].Row {
			t.Fatalf("streamed row %d is %d, buffered %d", i, rows[i].Row.Row, buffered.Skyline[i].Row)
		}
	}
	if trailer.Count != buffered.Count {
		t.Fatalf("trailer count %d, buffered %d", trailer.Count, buffered.Count)
	}

	recs = streamRecords(t, http.MethodPost, ts.URL+"/tables/flights/query?stream=1&limit=2", body)
	_, rows, trailer = splitFrames(t, recs)
	if len(rows) != 2 {
		t.Fatalf("limit=2 streamed %d rows", len(rows))
	}
	if trailer.Count != buffered.Count {
		t.Fatalf("limit=2 trailer count %d, want the full %d", trailer.Count, buffered.Count)
	}
}

// TestStreamPlannedTopK: a planner-mode unranked top-k streams exactly
// K rows and reports the plan in the trailer when asked.
func TestStreamPlannedTopK(t *testing.T) {
	_, ts := newTestServer(t)
	recs := streamRecords(t, http.MethodPost, ts.URL+"/tables/flights/query?stream=1",
		map[string]any{"topK": 3, "explain": true})
	_, rows, trailer := splitFrames(t, recs)
	if len(rows) != 3 || trailer.Count != 3 {
		t.Fatalf("top-3 stream: %d rows, trailer count %d", len(rows), trailer.Count)
	}
	if trailer.Plan == nil {
		t.Fatal("explain=true trailer has no plan")
	}
	if trailer.Plan.Algorithm != "stss" {
		t.Fatalf("streamed top-k ran %q, want the progressive cursor", trailer.Plan.Algorithm)
	}
}

// antiCorrSpec builds an n-row TO-only table whose skyline is every row
// (x+y constant): streams over it emit n rows, so a client can
// disconnect mid-stream deterministically.
func antiCorrSpec(name string, n int) TableSpec {
	spec := TableSpec{Name: name, TOColumns: []string{"x", "y"}}
	for i := 0; i < n; i++ {
		spec.Rows = append(spec.Rows, RowSpec{TO: []int64{int64(i), int64(n - i)}})
	}
	return spec
}

// TestStreamHeartbeat: a producer that stays silent longer than the
// configured heartbeat interval gets heartbeat frames keeping the
// connection alive. The dynamic route computes its whole dTSS answer
// before the first row, so a sub-millisecond interval is guaranteed to
// fire during the compute on a few-thousand-row table.
func TestStreamHeartbeat(t *testing.T) {
	s := NewWithConfig(Config{CacheCapacity: 8, StreamHeartbeat: 200 * time.Microsecond})
	spec := antiCorrSpec("wide", 4000)
	spec.Orders = []OrderSpec{{Name: "grade", Values: []string{"g0", "g1"}, Edges: [][2]string{{"g0", "g1"}}}}
	for i := range spec.Rows {
		spec.Rows[i].PO = []string{fmt.Sprintf("g%d", i%2)}
	}
	if _, err := s.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := map[string]any{
		"orders": []map[string]any{{"edges": [][2]string{{"g1", "g0"}}}},
	}
	recs := streamRecords(t, http.MethodPost, ts.URL+"/tables/wide/query?stream=1&limit=5", body)
	beats := 0
	for _, rec := range recs {
		if rec.Type == "heartbeat" {
			beats++
		}
	}
	if beats == 0 {
		t.Fatal("no heartbeat frames on a stream slower than the heartbeat interval")
	}
	_, rows, _ := splitFrames(t, recs)
	if len(rows) != 5 {
		t.Fatalf("limit=5 streamed %d rows", len(rows))
	}
}

// TestStreamClientDisconnectTeardown: a client that walks away
// mid-stream must abort the producer — and the aborted run must not
// have stored its partial enumeration in the plan memo. A later
// buffered run of the same query reports a cache miss, then (after a
// clean full run) a hit: the memo plumbing works, the aborted stream
// just never fed it.
func TestStreamClientDisconnectTeardown(t *testing.T) {
	s := New(8)
	if _, err := s.CreateTable(antiCorrSpec("wide", 20000)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	query := map[string]any{"subspace": []string{"x", "y"}}
	resp := openStream(t, http.MethodPost, ts.URL+"/tables/wide/query?stream=1", query)
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 4; i++ { // header + a few rows: strictly mid-stream
		var rec StreamRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	resp.Body.Close() // disconnect: the handler's request context cancels

	// The aborted stream must not have poisoned the memo: a buffered run
	// is a miss, and only after it completes does the memo serve hits.
	var first, second QueryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/wide/query", query, &first); code != http.StatusOK {
		t.Fatalf("buffered query: %d", code)
	}
	if first.CacheHit {
		t.Fatal("buffered run after a torn stream hit the cache — the aborted stream stored a partial skyline")
	}
	if first.Count != 20000 {
		t.Fatalf("buffered skyline has %d rows, want 20000", first.Count)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/wide/query", query, &second); code != http.StatusOK {
		t.Fatalf("second buffered query: %d", code)
	}
	if !second.CacheHit {
		t.Fatal("second buffered run missed the cache — memo plumbing is broken, the poisoning check proves nothing")
	}
	if second.Count != 20000 {
		t.Fatalf("cached skyline has %d rows, want 20000", second.Count)
	}

	// A completed stream fills the same memo the buffered route reads.
	recs := streamRecords(t, http.MethodGet, ts.URL+"/tables/wide/skyline?stream=1&limit=3", nil)
	_, rows, trailer := splitFrames(t, recs)
	if len(rows) != 3 || trailer.Count != 20000 {
		t.Fatalf("limit=3 full stream: %d rows, trailer count %d (want 20000)", len(rows), trailer.Count)
	}
}
