package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	tss "repro"
	"repro/internal/plan"
)

// DefaultStreamHeartbeat is the idle interval between heartbeat records
// on a streamed response when the server config does not override it.
// Heartbeats keep proxies and clients from timing out a stream whose
// query is still certifying its next row.
const DefaultStreamHeartbeat = 10 * time.Second

// WantsStream reports whether the request asked for a streamed response
// (?stream=1 / ?stream=true).
func WantsStream(r *http.Request) bool {
	v := r.URL.Query().Get("stream")
	return v == "1" || v == "true"
}

// wantsSSE reports whether a streamed response should use SSE framing
// instead of NDJSON.
func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("sse") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamWriter frames StreamRecords onto the response: one JSON object
// per line (NDJSON) or one SSE data event per record, each followed by
// a flush so rows reach the client the moment they are certified.
type streamWriter struct {
	w   http.ResponseWriter
	f   http.Flusher // nil when the ResponseWriter cannot flush
	sse bool
}

func newStreamWriter(w http.ResponseWriter, r *http.Request) *streamWriter {
	sw := &streamWriter{w: w, sse: wantsSSE(r)}
	if f, ok := w.(http.Flusher); ok {
		sw.f = f
	}
	if sw.sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if sw.f != nil {
		sw.f.Flush()
	}
	return sw
}

// send encodes one record through the pooled buffer and flushes it.
func (sw *streamWriter) send(rec *StreamRecord) error {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if sw.sse {
		buf.WriteString("data: ")
	}
	if err := json.NewEncoder(buf).Encode(rec); err != nil {
		return err
	}
	if sw.sse {
		buf.WriteByte('\n') // Encode wrote one \n; SSE events end with a blank line
	}
	if _, err := sw.w.Write(buf.Bytes()); err != nil {
		return err
	}
	if sw.f != nil {
		sw.f.Flush()
	}
	return nil
}

// StreamResponse drives a streamed query response: the header record
// first, then every record produce emits, heartbeats whenever the
// producer stays silent for a full heartbeat interval, and finally the
// trailer produce returns — or an "error" record if it fails. produce
// runs on its own goroutine against a context that is canceled when the
// client disconnects (or stops reading), so a torn-down stream releases
// the query's cursor instead of computing into a closed socket; its emit
// returns the cancellation as an error, and StreamResponse always waits
// for produce to return before it does. Exported for the cluster
// coordinator, whose streamed scatter/gather reuses the exact framing.
func StreamResponse(w http.ResponseWriter, r *http.Request, heartbeat time.Duration, header StreamRecord,
	produce func(ctx context.Context, emit func(StreamRecord) error) (StreamRecord, error)) {
	if heartbeat <= 0 {
		heartbeat = DefaultStreamHeartbeat
	}
	sw := newStreamWriter(w, r)
	if err := sw.send(&header); err != nil {
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	rows := make(chan StreamRecord)
	type outcome struct {
		trailer StreamRecord
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		trailer, err := produce(ctx, func(rec StreamRecord) error {
			select {
			case rows <- rec:
				return nil
			case <-ctx.Done():
				return fmt.Errorf("serve: stream canceled: %w", ctx.Err())
			}
		})
		done <- outcome{trailer: trailer, err: err}
	}()

	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case rec := <-rows:
			if err := sw.send(&rec); err != nil {
				cancel()
				<-done // drain the producer before returning the handler
				return
			}
			ticker.Reset(heartbeat)
		case <-ticker.C:
			if err := sw.send(&StreamRecord{Type: "heartbeat"}); err != nil {
				cancel()
				<-done
				return
			}
		case out := <-done:
			if out.err != nil {
				_ = sw.send(&StreamRecord{Type: "error", Error: out.err.Error()})
				return
			}
			_ = sw.send(&out.trailer)
			return
		}
	}
}

// streamRowRecord renders one emitted row as its stream frame.
func streamRowRecord(snap *snapshot, row int, index int, elapsed time.Duration) StreamRecord {
	to, po := snap.table.RowValues(row)
	return StreamRecord{
		Type:     "row",
		Row:      &SkylineRow{Row: row, TO: to, PO: po},
		Emission: index,
		Elapsed:  elapsed.Seconds(),
	}
}

// handleQueryStream answers POST /tables/{name}/query?stream=1. Planner-
// mode queries stream progressively through the table's streaming
// executor; dynamic queries (which the prepared dTSS database answers
// group-at-a-time) compute buffered and replay their rows, so both modes
// share one wire shape. ?limit=N truncates the emitted rows without
// changing the query (the trailer's count still reports every certified
// row).
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request, e *tableEntry, req QueryRequest) {
	limit, err := intParam(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := e.current()
	header := StreamRecord{Type: "header", Table: e.name, Version: snap.version, Rows: snap.table.Len()}

	if req.PlanMode() {
		q, err := e.planQuery(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.streamPlanQuery(w, r, e, snap, q, req.Explain, limit, header)
		return
	}
	if req.HasPlanFields() {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"subspace/where/topK/rank/algo/parallel/explain/noKernel cannot combine with orders/baseline (dynamic queries run dTSS as-is)"))
		return
	}
	if req.Baseline && req.Ideal != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("baseline does not support ideal-point queries"))
		return
	}
	orders, err := e.queryOrders(req.Orders)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if limit == 0 {
		limit = req.Limit
	}
	StreamResponse(w, r, s.streamHeartbeat, header, func(ctx context.Context, emit func(StreamRecord) error) (StreamRecord, error) {
		start := time.Now()
		var res *tss.SkylineResult
		var err error
		switch {
		case req.Baseline:
			res, err = snap.dyn.QueryBaselineContext(ctx, orders...)
		case req.Ideal != nil:
			res, err = snap.dyn.QueryAtContext(ctx, req.Ideal, orders...)
		default:
			res, err = snap.dyn.QueryContext(ctx, orders...)
		}
		if err != nil {
			return StreamRecord{}, err
		}
		s.countQuery(e)
		if !req.Baseline && req.Ideal == nil {
			if res.CacheHit {
				e.cacheHits.Add(1)
			} else {
				e.cacheMisses.Add(1)
			}
		}
		for i, row := range res.Rows {
			if limit > 0 && i >= limit {
				break
			}
			if err := emit(streamRowRecord(snap, row, i, time.Since(start))); err != nil {
				return StreamRecord{}, err
			}
		}
		return StreamRecord{
			Type: "trailer", Version: snap.version, Count: len(res.Rows),
			Metrics: &res.Metrics, CacheHit: res.CacheHit,
		}, nil
	})
}

// streamPlanQuery streams a planner-mode query: rows are emitted as the
// streaming executor certifies them, and the trailer carries the
// version, metrics and (when asked) the explain output.
func (s *Server) streamPlanQuery(w http.ResponseWriter, r *http.Request, e *tableEntry, snap *snapshot,
	q plan.Query, explain bool, limit int, header StreamRecord) {
	StreamResponse(w, r, s.streamHeartbeat, header, func(ctx context.Context, emit func(StreamRecord) error) (StreamRecord, error) {
		res, ex, err := snap.table.QueryStream(ctx, q, func(row plan.StreamRow) error {
			if limit > 0 && row.Index >= limit {
				return nil
			}
			rec := streamRowRecord(snap, int(row.ID), row.Index, row.Elapsed)
			rec.Key = row.Key
			return emit(rec)
		})
		if err != nil {
			return StreamRecord{}, err
		}
		s.countQuery(e)
		if !q.Hints.NoCache {
			e.countPlanCache(ex, q.Subspace != nil)
		}
		trailer := StreamRecord{
			Type: "trailer", Version: snap.version, Count: len(res.Rows),
			Metrics: &res.Metrics, CacheHit: res.CacheHit, Algo: ex.Algorithm,
		}
		if explain {
			trailer.Plan = ex
		}
		return trailer, nil
	})
}

// handleSkylineStream answers GET /tables/{name}/skyline?stream=1: the
// static skyline as a progressive stream. The default (sTSS, sequential)
// streams each row as the cursor certifies it; forcing another algorithm
// or a parallel run computes buffered and replays, like the buffered
// route.
func (s *Server) handleSkylineStream(w http.ResponseWriter, r *http.Request, e *tableEntry, algo string, parallel, limit int) {
	snap := e.current()
	q := plan.Query{Hints: plan.Hints{Algorithm: algo, Parallelism: -1, NoCache: true}}
	switch {
	case parallel > 0:
		q.Hints.Parallelism = parallel
	case parallel < 0:
		q.Hints.Parallelism = runtime.GOMAXPROCS(0)
	}
	header := StreamRecord{Type: "header", Table: e.name, Version: snap.version, Rows: snap.table.Len()}
	s.streamPlanQuery(w, r, e, snap, q, false, limit, header)
}
