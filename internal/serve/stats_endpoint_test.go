package serve

import (
	"net/http"
	"testing"

	"repro/internal/plan"
)

// TestTableStatsEndpoint covers GET /tables/{t}/stats: derivable
// statistics for the serving snapshot, learned state after feedback,
// and version tracking across a mutation.
func TestTableStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	var info TableStatsInfo
	if status := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/stats", nil, &info); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if info.Table != "flights" || info.Version != 0 || info.Rows != 10 {
		t.Fatalf("header wrong: %+v", info)
	}
	st := info.Stats
	if st == nil || st.Rows != 10 || len(st.TO) != 2 || len(st.PO) != 1 {
		t.Fatalf("stats shape wrong: %+v", st)
	}
	// flights prices span 500..2000, stops 0..2.
	if st.TO[0].Min != 500 || st.TO[0].Max != 2000 || st.TO[1].Min != 0 || st.TO[1].Max != 2 {
		t.Fatalf("bounds wrong: %+v", st.TO)
	}
	if st.PO[0].DomainSize != 4 {
		t.Fatalf("PO domain size %d, want 4", st.PO[0].DomainSize)
	}
	if info.Learned.SkyFracN != 0 {
		t.Fatalf("fresh table reports learned observations: %+v", info.Learned)
	}

	// A planned full query feeds the learned state; the endpoint
	// reflects it, keyed under the full variant.
	if status := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query",
		map[string]any{"explain": true}, nil); status != http.StatusOK {
		t.Fatalf("warm-up query status %d", status)
	}
	if status := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/stats", nil, &info); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if info.Learned.SkyFracN == 0 || info.Learned.SkyFrac <= 0 {
		t.Fatalf("learned state not reflected: %+v", info.Learned)
	}
	if len(info.Learned.Variants) != 1 || info.Learned.Variants[0].Key != plan.FullVariant {
		t.Fatalf("variant list wrong: %+v", info.Learned.Variants)
	}

	// A batch advances the version and the row count.
	if status := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
		BatchRequest{Add: []RowSpec{{TO: []int64{100, 0}, PO: []string{"d"}}}}, nil); status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if status := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/stats", nil, &info); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if info.Version != 1 || info.Rows != 11 || info.Stats.Rows != 11 || info.Stats.TO[0].Min != 100 {
		t.Fatalf("post-batch stats stale: %+v / %+v", info, info.Stats)
	}
}

// TestDomCountEndpoint covers POST /tables/{t}/domcount: value-
// addressed candidates scored against the (optionally filtered,
// projected) table.
func TestDomCountEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// Row (500,2,"d") dominates nothing PO-wise except worse-or-equal
	// airlines with worse TO; count it exactly: candidates are the
	// paper's p9 (500,2,d) and an ideal row dominating everything.
	req := DomCountRequest{Rows: []RowSpec{
		{TO: []int64{500, 2}, PO: []string{"d"}},
		{TO: []int64{0, 0}, PO: []string{"a"}},
	}}
	var resp DomCountResponse
	if status := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/domcount", req, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Counts) != 2 {
		t.Fatalf("got %d counts", len(resp.Counts))
	}
	// The synthetic ideal row (0,0,"a") dominates all 10 rows.
	if resp.Counts[1] != 10 {
		t.Fatalf("ideal candidate count %d, want 10", resp.Counts[1])
	}
	// A where-filter shrinks R: only rows with price <= 1000 count.
	le := int64(1000)
	req.Where = []WhereSpec{{Col: "price", Le: &le}}
	if status := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/domcount", req, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Counts[1] != 3 {
		t.Fatalf("filtered ideal candidate count %d, want 3 (rows priced <= 1000)", resp.Counts[1])
	}
	// Unknown labels and columns are 400s.
	bad := DomCountRequest{Rows: []RowSpec{{TO: []int64{1, 1}, PO: []string{"z"}}}}
	if status := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/domcount", bad, nil); status != http.StatusBadRequest {
		t.Fatalf("bad label status %d", status)
	}
}

// TestSingleNodeRejectsClusterFields pins the single-node guardrails:
// partition specs and sharded removals belong to a coordinator.
func TestSingleNodeRejectsClusterFields(t *testing.T) {
	_, ts := newTestServer(t)
	spec := flightsSpec("partitioned")
	spec.Partition = &PartitionSpec{By: "hash"}
	if status := doJSON(t, http.MethodPost, ts.URL+"/tables", spec, nil); status != http.StatusBadRequest {
		t.Fatalf("partitioned create status %d, want 400", status)
	}
	req := BatchRequest{RemoveSharded: []ShardRef{{Shard: 0, Row: 1}}}
	if status := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch", req, nil); status != http.StatusBadRequest {
		t.Fatalf("removeSharded status %d, want 400", status)
	}
}
