package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// countdownCtx cancels deterministically after a fixed number of Err
// checks — the artificially slow query of the regression test: the
// budget expires mid-run, not before the handler starts.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	after int64
	err   error
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return c.err
	}
	return nil
}

// TestDynamicQueryCanceledMidRun is the -request-timeout regression
// test for dynamic (orders) queries: before PR 5 the budget was checked
// only *before* starting, so a slow dTSS run held its worker to
// completion. Now the cursor loop checks the request context between
// point groups: a budget expiring mid-run aborts the query and maps to
// the same 499/503 statuses planned queries use.
func TestDynamicQueryCanceledMidRun(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
	}{
		{"client gone", context.Canceled, 499},
		{"deadline", context.DeadlineExceeded, http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// A fresh server per case: a warmed dTSS result cache would
			// answer before the cursor loop ever runs.
			s := New(8)
			if _, err := s.CreateTable(flightsSpec("flights")); err != nil {
				t.Fatal(err)
			}
			// after=2 lets the handler's pre-start check pass, so the
			// cancellation observed below happened mid-run.
			ctx := &countdownCtx{Context: context.Background(), after: 2, err: tc.err}
			var handler http.Handler = s.Handler()
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				handler.ServeHTTP(w, r.WithContext(ctx))
			}))
			defer ts.Close()

			// A dynamic query with a per-request preference DAG — the class
			// that previously ran to completion regardless of the budget.
			body := map[string]any{
				"orders": []map[string]any{{"edges": [][2]string{{"b", "a"}}}},
			}
			var got errorResponse
			status := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", body, &got)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %+v)", status, tc.wantStatus, got)
			}
			if !strings.Contains(got.Error, "canceled") {
				t.Fatalf("error %q does not mention cancellation", got.Error)
			}
			if ctx.calls.Load() <= 2 {
				t.Fatalf("context checked %d times — cancellation was not mid-run", ctx.calls.Load())
			}
			// The snapshot keeps serving: the same query under no budget
			// answers normally.
			var ok QueryResponse
			ts2 := httptest.NewServer(handler)
			defer ts2.Close()
			if status := doJSON(t, http.MethodPost, ts2.URL+"/tables/flights/query", body, &ok); status != http.StatusOK {
				t.Fatalf("follow-up query status %d", status)
			}
			if ok.Count == 0 {
				t.Fatal("follow-up query returned no skyline")
			}
		})
	}
}
