package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestReplicaSnapshotEndpoint: the bootstrap seed is the serving
// snapshot in the columnar storage encoding, at the served version.
func TestReplicaSnapshotEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/tables/flights/replica/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Tss-Version"); got != "0" {
		t.Fatalf("X-Tss-Version = %q, want 0", got)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := store.DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := s.Table("flights")
	if snap.Version != info.Version {
		t.Fatalf("snapshot version %d, table at %d", snap.Version, info.Version)
	}
	if snap.Rows.N() != info.Rows {
		t.Fatalf("snapshot has %d rows, table has %d", snap.Rows.N(), info.Rows)
	}
}

// TestReplicaLogEndpoint: the tail endpoint ships exactly the committed
// WAL records past ?after, in on-disk framing.
func TestReplicaLogEndpoint(t *testing.T) {
	s := NewWithConfig(Config{Store: store.NewMem(), CheckpointEvery: 1 << 30})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		batch := BatchRequest{Add: []RowSpec{{TO: []int64{int64(10 + i), 0}, PO: []string{"a"}}}}
		var out BatchResponse
		if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch", batch, &out); code != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, code)
		}
	}

	fetch := func(after int64) []int64 {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/tables/flights/replica/log?after=%d", ts.URL, after))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("after=%d: status %d", after, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var versions []int64
		if err := store.ReplayWAL(b, func(m *store.Mutation) error {
			versions = append(versions, m.Version)
			return nil
		}); err != nil {
			t.Fatalf("after=%d: replay: %v", after, err)
		}
		return versions
	}
	if got := fetch(0); !reflect.DeepEqual(got, []int64{1, 2}) {
		t.Fatalf("after=0: versions %v, want [1 2]", got)
	}
	if got := fetch(1); !reflect.DeepEqual(got, []int64{2}) {
		t.Fatalf("after=1: versions %v, want [2]", got)
	}
	if got := fetch(2); got != nil {
		t.Fatalf("after=2: versions %v, want none", got)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/replica/log?after=x", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad after: status %d, want 400", code)
	}
}

// TestReplicaLogStoreless: an ephemeral node has no log to ship.
func TestReplicaLogStoreless(t *testing.T) {
	_, ts := newTestServer(t)
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/replica/log?after=0", nil, nil); code != http.StatusConflict {
		t.Fatalf("storeless log: status %d, want 409", code)
	}
}

// TestReplicaLogCompacted: once a checkpoint absorbs the suffix a
// follower needs, the endpoint answers 410 so the follower re-seeds.
func TestReplicaLogCompacted(t *testing.T) {
	s := NewWithConfig(Config{Store: store.NewMem(), CheckpointEvery: 1})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	batch := BatchRequest{Add: []RowSpec{{TO: []int64{10, 0}, PO: []string{"a"}}}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch", batch, nil); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	// CheckpointEvery=1 checkpoints right after the batch, truncating
	// the log: version 1 is only available via the snapshot now.
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/replica/log?after=0", nil, nil); code != http.StatusGone {
		t.Fatalf("compacted tail: status %d, want 410", code)
	}
	// A caught-up follower (after=1) still gets an empty 200 tail.
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/replica/log?after=1", nil, nil); code != http.StatusOK {
		t.Fatalf("caught-up tail: status %d, want 200", code)
	}
}

// TestMinVersionPinning: ?minVersion=N answers 412 until the table has
// published version N.
func TestMinVersionPinning(t *testing.T) {
	_, ts := newTestServer(t)
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights?minVersion=0", nil, nil); code != http.StatusOK {
		t.Fatalf("minVersion=0: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights?minVersion=1", nil, nil); code != http.StatusPreconditionFailed {
		t.Fatalf("minVersion=1 at version 0: status %d, want 412", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline?minVersion=1", nil, nil); code != http.StatusPreconditionFailed {
		t.Fatalf("skyline minVersion=1 at version 0: status %d, want 412", code)
	}
	batch := BatchRequest{Add: []RowSpec{{TO: []int64{10, 0}, PO: []string{"a"}}}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch", batch, nil); code != http.StatusOK {
		t.Fatal("batch failed")
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights?minVersion=1", nil, nil); code != http.StatusOK {
		t.Fatalf("minVersion=1 at version 1: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights?minVersion=oops", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad minVersion: status %d, want 400", code)
	}
}

// TestReadOnlyFollower: follower mode rejects every HTTP mutation with
// 403 while reads and the in-process replication path keep working.
func TestReadOnlyFollower(t *testing.T) {
	s := NewWithConfig(Config{ReadOnly: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := doJSON(t, http.MethodPost, ts.URL+"/tables", durableSpec(), nil); code != http.StatusForbidden {
		t.Fatalf("create on follower: status %d, want 403", code)
	}
	// The replication path is in-process and unaffected.
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	batch := BatchRequest{Add: []RowSpec{{TO: []int64{10, 0}, PO: []string{"a"}}}}
	if code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch", batch, nil); code != http.StatusForbidden {
		t.Fatalf("batch on follower: status %d, want 403", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/tables/flights", nil, nil); code != http.StatusForbidden {
		t.Fatalf("delete on follower: status %d, want 403", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/tables/flights", nil, nil); code != http.StatusOK {
		t.Fatal("read on follower failed")
	}
	var stats StatsResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/statsz", nil, &stats); code != http.StatusOK {
		t.Fatal("statsz failed")
	}
	if !stats.ReadOnly {
		t.Fatal("statsz does not report readOnly")
	}
}

// ckptFailStore injects SaveSnapshot failures (checkpoint failures)
// while leaving the WAL append path healthy.
type ckptFailStore struct {
	*store.Mem
	mu   sync.Mutex
	fail bool
}

func (s *ckptFailStore) setFail(v bool) {
	s.mu.Lock()
	s.fail = v
	s.mu.Unlock()
}

func (s *ckptFailStore) SaveSnapshot(name string, snap *store.Snapshot) error {
	s.mu.Lock()
	fail := s.fail
	s.mu.Unlock()
	if fail {
		return errors.New("injected checkpoint failure")
	}
	return s.Mem.SaveSnapshot(name, snap)
}

// TestCheckpointBackoffAndDegradedHealth: failed checkpoints retry with
// batch-counted exponential backoff (1, 2, 4, ... skipped batches), a
// streak of checkpointDegradedAfter failures flips /healthz to
// "degraded" (still HTTP 200), and the first success clears both the
// backoff and the degraded flag.
func TestCheckpointBackoffAndDegradedHealth(t *testing.T) {
	fs := &ckptFailStore{Mem: store.NewMem()}
	s := NewWithConfig(Config{Store: fs, CheckpointEvery: 1})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	logSize := func() int64 {
		t.Helper()
		n, err := fs.LogSize("flights")
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	emptyLog := logSize() // header-only WAL right after create
	fs.setFail(true)

	e, ok := s.table("flights")
	if !ok {
		t.Fatal("table missing")
	}
	batch := func() {
		t.Helper()
		req := BatchRequest{Add: []RowSpec{{TO: []int64{10, 0}, PO: []string{"a"}}}}
		if _, err := s.applyBatch(e, req); err != nil {
			t.Fatal(err)
		}
	}
	health := func() (status string, stuck []string) {
		t.Helper()
		var out struct {
			Status          string   `json:"status"`
			CheckpointStuck []string `json:"checkpointStuck"`
		}
		if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &out); code != http.StatusOK {
			t.Fatalf("healthz status %d, want 200 even when degraded", code)
		}
		return out.Status, out.CheckpointStuck
	}

	// Attempts happen on batches 1, 3 (1 skipped), and 6 (2 skipped):
	// three consecutive failures reach the degraded threshold.
	wantErrs := []int64{1, 1, 2, 2, 2, 3}
	for i, want := range wantErrs {
		batch()
		if got := s.checkpointErrs.Load(); got != want {
			t.Fatalf("after batch %d: checkpointErrs = %d, want %d", i+1, got, want)
		}
	}
	if got, want := s.CheckpointStuck(), []string{"flights"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CheckpointStuck = %v, want %v", got, want)
	}
	if status, stuck := health(); status != "degraded" || !reflect.DeepEqual(stuck, []string{"flights"}) {
		t.Fatalf("healthz = %q %v, want degraded [flights]", status, stuck)
	}

	// Store recovers: batches 7-10 are still inside the 4-batch backoff
	// window, batch 11 retries, succeeds, and clears everything.
	fs.setFail(false)
	for i := 0; i < 4; i++ {
		batch()
	}
	if logSize() <= emptyLog {
		t.Fatal("checkpoint ran during backoff window")
	}
	batch()
	if got := s.CheckpointStuck(); len(got) != 0 {
		t.Fatalf("CheckpointStuck after recovery = %v", got)
	}
	if status, _ := health(); status != "ok" {
		t.Fatalf("healthz after recovery = %q, want ok", status)
	}
	if got := logSize(); got > emptyLog {
		t.Fatalf("WAL not truncated after recovered checkpoint: %d bytes", got)
	}
}

// TestStreamResponseHeartbeatDuringCompute: heartbeats must flow while
// the producer is still computing, before the first row — a client
// behind a proxy learns the stream is alive even when the result takes
// a while to materialize.
func TestStreamResponseHeartbeatDuringCompute(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		StreamResponse(w, r, 20*time.Millisecond, StreamRecord{Type: "header", Table: "t"},
			func(ctx context.Context, emit func(StreamRecord) error) (StreamRecord, error) {
				time.Sleep(250 * time.Millisecond) // slow compute before any row
				if err := emit(StreamRecord{Type: "row", Emission: 0}); err != nil {
					return StreamRecord{}, err
				}
				return StreamRecord{Type: "trailer"}, nil
			})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, rec.Type)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	heartbeatsBeforeRow := 0
	for _, k := range kinds {
		if k == "row" {
			break
		}
		if k == "heartbeat" {
			heartbeatsBeforeRow++
		}
	}
	if heartbeatsBeforeRow == 0 {
		t.Fatalf("no heartbeat before the first row; frames: %v", kinds)
	}
	if kinds[len(kinds)-1] != "trailer" {
		t.Fatalf("stream did not end in trailer: %v", kinds)
	}
}
