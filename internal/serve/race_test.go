package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	tss "repro"
)

// TestConcurrentQueriesDuringMutations is the server's consistency
// stress test (run it under -race): N reader goroutines issue static
// skylines and dynamic per-request-DAG queries while M writer
// goroutines apply batched row additions. Every response must be
// internally consistent with *some* published snapshot — identified by
// its version — which the test verifies post-hoc by replaying the
// mutation log and recomputing each answered query on the
// reconstructed table.
func TestConcurrentQueriesDuringMutations(t *testing.T) {
	const (
		readers          = 4
		writers          = 2
		queriesPerReader = 25
		batchesPerWriter = 6
	)

	spec := flightsSpec("flights")
	s := New(8)
	if _, err := s.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The per-request preference DAG pool (all over labels a..d).
	dagPool := [][][2]string{
		{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		{{"b", "a"}},
		{},
		{{"d", "a"}, {"d", "b"}},
	}

	// Mutation log: version → the batch that produced it. Writers
	// record under a lock; versions are unique because applyBatch
	// serializes and bumps by one.
	var mu sync.Mutex
	batches := map[int64][]RowSpec{}
	type obs struct {
		version int64
		rows    int
		dag     int // index into dagPool, -1 = static skyline
		skyline []SkylineRow
	}
	var observations []obs

	var wg sync.WaitGroup
	errCh := make(chan error, readers+writers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPerWriter; b++ {
				// Deterministic, writer-distinct rows.
				add := []RowSpec{
					{TO: []int64{int64(300 + 100*w + b), int64(b % 3)}, PO: []string{"b"}},
					{TO: []int64{int64(2500 + 10*w + b), int64(3 + b%2)}, PO: []string{"d"}},
				}
				var resp BatchResponse
				code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
					BatchRequest{Add: add}, &resp)
				if code != http.StatusOK {
					errCh <- fmt.Errorf("writer %d batch %d: HTTP %d", w, b, code)
					return
				}
				mu.Lock()
				batches[resp.Version] = add
				mu.Unlock()
			}
		}(w)
	}

	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for q := 0; q < queriesPerReader; q++ {
				var out QueryResponse
				dag := -1
				var code int
				if q%3 == 0 {
					code = doJSON(t, http.MethodGet, ts.URL+"/tables/flights/skyline", nil, &out)
				} else {
					dag = (rd + q) % len(dagPool)
					req := QueryRequest{Orders: []QueryOrder{{Edges: dagPool[dag]}}}
					code = doJSON(t, http.MethodPost, ts.URL+"/tables/flights/query", req, &out)
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("reader %d query %d: HTTP %d", rd, q, code)
					return
				}
				mu.Lock()
				observations = append(observations, obs{
					version: out.Version, rows: out.Rows, dag: dag, skyline: out.Skyline,
				})
				mu.Unlock()
			}
		}(rd)
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Replay: table state at version v = initial rows + batches 1..v in
	// version order.
	versions := make([]int64, 0, len(batches))
	for v := range batches {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	if len(versions) != writers*batchesPerWriter {
		t.Fatalf("recorded %d batch versions, want %d", len(versions), writers*batchesPerWriter)
	}
	rowsAt := map[int64][]RowSpec{0: spec.Rows}
	cur := append([]RowSpec(nil), spec.Rows...)
	for _, v := range versions {
		cur = append(append([]RowSpec(nil), cur...), batches[v]...)
		rowsAt[v] = cur
	}

	// Recompute each observed query against its snapshot's rows.
	expected := map[string][]string{} // "version/dag" → sorted skyline value keys
	for _, o := range observations {
		rows, ok := rowsAt[o.version]
		if !ok {
			t.Fatalf("response names unpublished version %d", o.version)
		}
		if o.rows != len(rows) {
			t.Fatalf("version %d: response says %d rows, snapshot had %d", o.version, o.rows, len(rows))
		}
		key := fmt.Sprintf("%d/%d", o.version, o.dag)
		want, ok := expected[key]
		if !ok {
			want = computeSkyline(t, spec, rows, o.dag, dagPool)
			expected[key] = want
		}
		got := make([]string, len(o.skyline))
		for i, r := range o.skyline {
			got[i] = rowKey(r.TO, r.PO)
		}
		sort.Strings(got)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("version %d dag %d: skyline %v inconsistent with snapshot (want %v)",
				o.version, o.dag, got, want)
		}
	}
}

// computeSkyline answers one observed query locally on a fresh table
// built from the reconstructed snapshot rows.
func computeSkyline(t *testing.T, spec TableSpec, rows []RowSpec, dag int, dagPool [][][2]string) []string {
	t.Helper()
	makeOrder := func(edges [][2]string) *tss.Order {
		o := tss.NewOrder(spec.Orders[0].Values...)
		for _, e := range edges {
			o.Prefer(e[0], e[1])
		}
		return o
	}
	table := tss.NewTable(spec.TOColumns, makeOrder(spec.Orders[0].Edges))
	for _, r := range rows {
		table.MustAdd(r.TO, r.PO...)
	}
	var sky []int
	if dag < 0 {
		sky = table.Skyline()
	} else {
		res, err := table.PrepareDynamic().Query(makeOrder(dagPool[dag]))
		if err != nil {
			t.Fatal(err)
		}
		sky = res.Rows
	}
	keys := make([]string, len(sky))
	for i, row := range sky {
		to, po := table.RowValues(row)
		keys[i] = rowKey(to, po)
	}
	sort.Strings(keys)
	return keys
}

func rowKey(to []int64, po []string) string {
	return fmt.Sprintf("%v|%v", to, po)
}
