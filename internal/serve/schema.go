package serve

import (
	"fmt"
	"runtime"

	"repro/internal/plan"
	"repro/internal/poset"
)

// Schema is the wire-level shape of a table — TO column names plus the
// PO OrderSpecs — with the name-resolution and query-translation logic
// every server role needs: the single-node table entry resolves
// planner-mode requests against it, and the cluster coordinator reuses
// the identical resolution (and compiled preference domains) so a
// query means the same thing at either layer.
type Schema struct {
	toCols     []string
	orderSpecs []OrderSpec
	poIndex    []map[string]int // per order: value label -> id (storage encoding)
}

// NewSchema validates the column namespace (TO names, order names and
// "po<d>" fallbacks share one namespace; a collision would make a
// column silently unaddressable) and builds the label indexes.
func NewSchema(toColumns []string, orders []OrderSpec) (*Schema, error) {
	sc := &Schema{
		toCols:     append([]string(nil), toColumns...),
		orderSpecs: append([]OrderSpec(nil), orders...),
	}
	for _, spec := range sc.orderSpecs {
		idx := make(map[string]int, len(spec.Values))
		for i, v := range spec.Values {
			idx[v] = i
		}
		sc.poIndex = append(sc.poIndex, idx)
	}
	seen := make(map[string]bool, len(sc.toCols)+len(sc.orderSpecs))
	for _, c := range sc.toCols {
		if seen[c] {
			return nil, fmt.Errorf("duplicate column name %q", c)
		}
		seen[c] = true
	}
	for d := range sc.orderSpecs {
		name := sc.POColName(d)
		if seen[name] {
			return nil, fmt.Errorf("column name %q is used by more than one column", name)
		}
		seen[name] = true
	}
	return sc, nil
}

// TOColumns returns the TO column names (a copy).
func (sc *Schema) TOColumns() []string { return append([]string(nil), sc.toCols...) }

// Orders returns the PO column OrderSpecs (a copy).
func (sc *Schema) Orders() []OrderSpec { return append([]OrderSpec(nil), sc.orderSpecs...) }

// NumTO returns the number of TO columns.
func (sc *Schema) NumTO() int { return len(sc.toCols) }

// NumPO returns the number of PO columns.
func (sc *Schema) NumPO() int { return len(sc.orderSpecs) }

// POColName returns the display/lookup name of PO column d: the
// OrderSpec's name, or the positional fallback "po<d>".
func (sc *Schema) POColName(d int) string {
	if n := sc.orderSpecs[d].Name; n != "" {
		return n
	}
	return fmt.Sprintf("po%d", d)
}

// POValueID resolves a PO value label to its id in column d.
func (sc *Schema) POValueID(d int, label string) (int, bool) {
	id, ok := sc.poIndex[d][label]
	return id, ok
}

// POValueLabel renders a PO value id of column d back to its label.
func (sc *Schema) POValueLabel(d, id int) (string, bool) {
	if id < 0 || id >= len(sc.orderSpecs[d].Values) {
		return "", false
	}
	return sc.orderSpecs[d].Values[id], true
}

// LookupCol resolves a column name: TO columns by their declared name,
// PO columns by their OrderSpec name or "po<d>" fallback.
func (sc *Schema) LookupCol(name string) (dim int, isTO bool, err error) {
	for d, c := range sc.toCols {
		if c == name {
			return d, true, nil
		}
	}
	for d := range sc.orderSpecs {
		if sc.POColName(d) == name {
			return d, false, nil
		}
	}
	return 0, false, fmt.Errorf("unknown column %q", name)
}

// PlanQuery translates a planner-mode request into the plan package's
// logical query, resolving column names and PO value labels. The wire
// parallelism contract matches the CLI flag: > 0 forces that many
// shards, < 0 forces one shard per *executing host* CPU, 0 lets the
// planner decide — so `tssquery -parallel -1` means the same thing
// locally and against a server.
func (sc *Schema) PlanQuery(req QueryRequest) (plan.Query, error) {
	par := req.Parallel
	if par < 0 {
		par = runtime.GOMAXPROCS(0)
	}
	q := plan.Query{
		TopK:     req.TopK,
		Rank:     plan.Rank(req.Rank),
		Ideal:    req.Ideal,
		FWeights: req.FWeights,
		Hints:    plan.Hints{Algorithm: req.Algo, Parallelism: par, NoKernel: req.NoKernel, NoCache: req.NoCache},
	}
	if len(req.Subspace) > 0 {
		s := &plan.Subspace{}
		for _, name := range req.Subspace {
			dim, isTO, err := sc.LookupCol(name)
			if err != nil {
				return plan.Query{}, fmt.Errorf("subspace: %w", err)
			}
			if isTO {
				s.TO = append(s.TO, dim)
			} else {
				s.PO = append(s.PO, dim)
			}
		}
		s.TO = plan.NormalizeDims(s.TO)
		s.PO = plan.NormalizeDims(s.PO)
		q.Subspace = s
	}
	for i, w := range req.Where {
		dim, isTO, err := sc.LookupCol(w.Col)
		if err != nil {
			return plan.Query{}, fmt.Errorf("where[%d]: %w", i, err)
		}
		switch {
		case len(w.In) > 0:
			if isTO {
				return plan.Query{}, fmt.Errorf("where[%d]: `in` needs a PO column, %q is totally ordered", i, w.Col)
			}
			if w.Le != nil || w.Ge != nil {
				return plan.Query{}, fmt.Errorf("where[%d]: `in` cannot combine with le/ge", i)
			}
			pr := plan.Predicate{Kind: plan.POIn, Dim: dim}
			for _, label := range w.In {
				id, ok := sc.poIndex[dim][label]
				if !ok {
					return plan.Query{}, fmt.Errorf("where[%d]: unknown value %q for column %q", i, label, w.Col)
				}
				pr.In = append(pr.In, int32(id))
			}
			q.Where = append(q.Where, pr)
		case w.Le != nil || w.Ge != nil:
			if !isTO {
				return plan.Query{}, fmt.Errorf("where[%d]: le/ge need a TO column, %q is partially ordered", i, w.Col)
			}
			pr := plan.Predicate{Kind: plan.TORange, Dim: dim}
			if w.Ge != nil {
				pr.HasLo, pr.Lo = true, *w.Ge
			}
			if w.Le != nil {
				pr.HasHi, pr.Hi = true, *w.Le
			}
			q.Where = append(q.Where, pr)
		default:
			return plan.Query{}, fmt.Errorf("where[%d]: no le/ge/in on column %q", i, w.Col)
		}
	}
	return q, nil
}

// compileDomains turns per-column edge lists (label pairs over the
// schema's value sets) into preference domains — the t-dominance oracle
// the cluster coordinator's merge pass uses.
func (sc *Schema) compileDomains(edges [][][2]string) ([]*poset.Domain, error) {
	if len(edges) != len(sc.orderSpecs) {
		return nil, fmt.Errorf("%d edge lists, schema has %d PO columns", len(edges), len(sc.orderSpecs))
	}
	domains := make([]*poset.Domain, len(sc.orderSpecs))
	for d, spec := range sc.orderSpecs {
		dag := poset.NewDAG(len(spec.Values))
		for i, v := range spec.Values {
			dag.SetLabel(i, v)
		}
		for _, e := range edges[d] {
			b, ok := sc.poIndex[d][e[0]]
			if !ok {
				return nil, fmt.Errorf("order %d: unknown value %q", d, e[0])
			}
			w, ok := sc.poIndex[d][e[1]]
			if !ok {
				return nil, fmt.Errorf("order %d: unknown value %q", d, e[1])
			}
			if err := dag.AddEdge(b, w); err != nil {
				return nil, fmt.Errorf("order %d: %w", d, err)
			}
		}
		dom, err := poset.NewDomain(dag)
		if err != nil {
			return nil, fmt.Errorf("order %d: %w", d, err)
		}
		domains[d] = dom
	}
	return domains, nil
}

// BaseDomains compiles the schema's own preference orders.
func (sc *Schema) BaseDomains() ([]*poset.Domain, error) {
	edges := make([][][2]string, len(sc.orderSpecs))
	for d, spec := range sc.orderSpecs {
		edges[d] = spec.Edges
	}
	return sc.compileDomains(edges)
}

// QueryDomains compiles per-request preference DAGs (dynamic queries)
// over the schema's value sets.
func (sc *Schema) QueryDomains(orders []QueryOrder) ([]*poset.Domain, error) {
	if len(orders) != len(sc.orderSpecs) {
		return nil, fmt.Errorf("query has %d orders, table has %d PO columns", len(orders), len(sc.orderSpecs))
	}
	edges := make([][][2]string, len(orders))
	for d, o := range orders {
		edges[d] = o.Edges
	}
	return sc.compileDomains(edges)
}
