package serve

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
)

func durableSpec() TableSpec {
	spec := TableSpec{
		Name:      "flights",
		TOColumns: []string{"price", "stops"},
		Orders: []OrderSpec{{
			Name:   "airline",
			Values: []string{"a", "b", "c", "d"},
			Edges:  [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}},
		}},
		CacheCapacity: 8,
	}
	for i := 0; i < 12; i++ {
		spec.Rows = append(spec.Rows, RowSpec{
			TO: []int64{int64(100 + 17*i%90), int64(i % 4)},
			PO: []string{spec.Orders[0].Values[i%4]},
		})
	}
	return spec
}

func skylineOf(t *testing.T, s *Server, table string) []SkylineRow {
	t.Helper()
	e, ok := s.table(table)
	if !ok {
		t.Fatalf("table %q missing", table)
	}
	snap := e.current()
	res, err := snap.table.SkylineWith("stss")
	if err != nil {
		t.Fatal(err)
	}
	return skylineRows(snap, res.Rows, 0)
}

// TestDurableRecoverRoundTrip: create, mutate over several batches,
// then bring up a fresh Server over the same store: every table comes
// back at its last published version with identical rows and skyline.
func TestDurableRecoverRoundTrip(t *testing.T) {
	for _, engine := range []string{"mem", "disk"} {
		t.Run(engine, func(t *testing.T) {
			var st store.Store
			if engine == "mem" {
				st = store.NewMem()
			} else {
				var err error
				st, err = store.OpenDisk(t.TempDir(), store.DiskOptions{})
				if err != nil {
					t.Fatal(err)
				}
			}
			s1 := NewWithConfig(Config{Store: st})
			if _, err := s1.CreateTable(durableSpec()); err != nil {
				t.Fatal(err)
			}
			e, _ := s1.table("flights")
			for i := 0; i < 5; i++ {
				req := BatchRequest{
					Remove: []int{i},
					Add: []RowSpec{
						{TO: []int64{int64(50 + i), 0}, PO: []string{"d"}},
						{TO: []int64{int64(60 + i), 1}, PO: []string{"a"}},
					},
				}
				if _, err := s1.applyBatch(e, req); err != nil {
					t.Fatalf("batch %d: %v", i, err)
				}
			}
			wantInfo := e.info()
			wantSky := skylineOf(t, s1, "flights")

			// "Restart": a fresh server over the same store.
			s2 := NewWithConfig(Config{Store: st})
			infos, err := s2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 1 {
				t.Fatalf("recovered %d tables", len(infos))
			}
			got := infos[0]
			if got.Version != wantInfo.Version || got.Rows != wantInfo.Rows || got.Groups != wantInfo.Groups {
				t.Fatalf("recovered %+v, want version=%d rows=%d groups=%d",
					got, wantInfo.Version, wantInfo.Rows, wantInfo.Groups)
			}
			if !reflect.DeepEqual(got.Orders, wantInfo.Orders) || !reflect.DeepEqual(got.TOColumns, wantInfo.TOColumns) {
				t.Fatal("recovered schema diverges")
			}
			gotSky := skylineOf(t, s2, "flights")
			if !reflect.DeepEqual(gotSky, wantSky) {
				t.Fatalf("recovered skyline diverges:\n got %v\nwant %v", gotSky, wantSky)
			}
			// Mutations continue from the recovered version.
			e2, _ := s2.table("flights")
			resp, err := s2.applyBatch(e2, BatchRequest{Add: []RowSpec{{TO: []int64{1, 1}, PO: []string{"b"}}}})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Version != wantInfo.Version+1 {
				t.Fatalf("post-recovery version %d, want %d", resp.Version, wantInfo.Version+1)
			}
		})
	}
}

// TestCheckpointTruncatesWAL: once the log passes the threshold, a
// batch checkpoints the table — the log shrinks and recovery still
// sees the same state.
func TestCheckpointTruncatesWAL(t *testing.T) {
	st := store.NewMem()
	s := NewWithConfig(Config{Store: st, CheckpointEvery: 256})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	e, _ := s.table("flights")
	var maxLog int64
	for i := 0; i < 16; i++ {
		if _, err := s.applyBatch(e, BatchRequest{Add: []RowSpec{{TO: []int64{int64(i), 2}, PO: []string{"c"}}}}); err != nil {
			t.Fatal(err)
		}
		size, err := st.LogSize("flights")
		if err != nil {
			t.Fatal(err)
		}
		if size > maxLog {
			maxLog = size
		}
	}
	// The threshold plus one batch bounds the log: it must have been
	// truncated along the way, not grown monotonically.
	if size, _ := st.LogSize("flights"); size >= maxLog && maxLog > 512 {
		t.Fatalf("log never checkpointed: now %d, max %d", size, maxLog)
	}
	snap, err := st.Load("flights")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != e.current().version {
		t.Fatalf("store at version %d, server at %d", snap.Version, e.current().version)
	}
	if s.Stats().CheckpointErrors != 0 {
		t.Fatal("checkpoint errors counted")
	}
}

// failingStore wraps Mem and fails AppendMutation on demand.
type failingStore struct {
	*store.Mem
	failAppend bool
}

func (f *failingStore) AppendMutation(name string, m *store.Mutation) error {
	if f.failAppend {
		return fmt.Errorf("injected append failure")
	}
	return f.Mem.AppendMutation(name, m)
}

// TestWALBeforePublish: if the WAL append fails, the batch is refused
// and readers never observe the new version — no acknowledged state
// can be lost on restart.
func TestWALBeforePublish(t *testing.T) {
	fs := &failingStore{Mem: store.NewMem()}
	s := NewWithConfig(Config{Store: fs})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	e, _ := s.table("flights")
	fs.failAppend = true
	_, err := s.applyBatch(e, BatchRequest{Add: []RowSpec{{TO: []int64{1, 1}, PO: []string{"a"}}}})
	if err == nil {
		t.Fatal("batch succeeded despite WAL failure")
	}
	if v := e.current().version; v != 0 {
		t.Fatalf("snapshot published despite WAL failure: version %d", v)
	}
	if n := e.current().table.Len(); n != 12 {
		t.Fatalf("rows changed: %d", n)
	}
	fs.failAppend = false
	if _, err := s.applyBatch(e, BatchRequest{Add: []RowSpec{{TO: []int64{1, 1}, PO: []string{"a"}}}}); err != nil {
		t.Fatal(err)
	}
	if v := e.current().version; v != 1 {
		t.Fatalf("recovery batch at version %d", v)
	}
}

// TestDropRemovesPersistedState: dropped tables do not resurrect on
// recovery.
func TestDropRemovesPersistedState(t *testing.T) {
	st := store.NewMem()
	s := NewWithConfig(Config{Store: st})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	if !s.DropTable("flights") {
		t.Fatal("drop failed")
	}
	if _, err := st.Load("flights"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("persisted state survived drop: %v", err)
	}
	s2 := NewWithConfig(Config{Store: st})
	infos, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 0 {
		t.Fatalf("dropped table resurrected: %v", infos)
	}
}

// TestRecoveredCacheCapacity: the table spec's cache sizing survives
// the round trip.
func TestRecoveredCacheCapacity(t *testing.T) {
	st := store.NewMem()
	s := NewWithConfig(Config{Store: st})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	s2 := NewWithConfig(Config{Store: st})
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	e, _ := s2.table("flights")
	if e.specCacheCap != 8 {
		t.Fatalf("cache capacity %d, want 8", e.specCacheCap)
	}
}

// TestStorageFailureIs5xx: a well-formed batch refused by a failing
// store answers 500, not 400 — clients must see a server fault.
func TestStorageFailureIs5xx(t *testing.T) {
	fs := &failingStore{Mem: store.NewMem()}
	s := NewWithConfig(Config{Store: fs})
	if _, err := s.CreateTable(durableSpec()); err != nil {
		t.Fatal(err)
	}
	fs.failAppend = true
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/tables/flights/rows:batch", "application/json",
		strings.NewReader(`{"add":[{"to":[1,1],"po":["a"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("storage failure answered HTTP %d, want 500", resp.StatusCode)
	}
	// A malformed batch is still the client's fault.
	resp, err = http.Post(srv.URL+"/tables/flights/rows:batch", "application/json",
		strings.NewReader(`{"remove":[999]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad batch answered HTTP %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentCreateKeepsWinnerDurable: racing creates of one name
// leave exactly one winner whose persisted state survives — the loser
// must not clean up (or overwrite) the winner's snapshot.
func TestConcurrentCreateKeepsWinnerDurable(t *testing.T) {
	st := store.NewMem()
	s := NewWithConfig(Config{Store: st})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.CreateTable(durableSpec())
		}(i)
	}
	wg.Wait()
	wins := 0
	for _, err := range errs {
		if err == nil {
			wins++
		} else if !errors.Is(err, ErrTableExists) {
			t.Fatalf("unexpected create error: %v", err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d creates won", wins)
	}
	if _, err := st.Load("flights"); err != nil {
		t.Fatalf("winner's durable state gone: %v", err)
	}
	// And the winner keeps accepting durable batches.
	e, _ := s.table("flights")
	if _, err := s.applyBatch(e, BatchRequest{Add: []RowSpec{{TO: []int64{1, 1}, PO: []string{"a"}}}}); err != nil {
		t.Fatal(err)
	}
}
