package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	tss "repro"
	"repro/internal/core"
	"repro/internal/store"
)

// DefaultCacheCapacity sizes a table's dynamic-query result cache when
// neither the server nor the table spec overrides it.
const DefaultCacheCapacity = 64

// DefaultCheckpointEvery is the WAL size past which a batch triggers a
// checkpoint (snapshot rewrite + log truncation).
const DefaultCheckpointEvery = 4 << 20

// Config tunes a Server.
type Config struct {
	// CacheCapacity sizes each new table's dynamic result cache
	// (0 = DefaultCacheCapacity).
	CacheCapacity int
	// SubspaceCacheCap sizes each table's subspace skyline-memo LRU
	// (0 = plan.DefaultSubspaceCap). Surfaced per table in /statsz as
	// planCache.subspaceCapacity.
	SubspaceCacheCap int
	// Store, when non-nil, makes every table durable: batches append
	// to a write-ahead log before publishing, logs checkpoint into
	// snapshots, and tables recover on startup (see Recover).
	Store store.Store
	// CheckpointEvery is the WAL byte size past which a batch
	// checkpoints its table (0 = DefaultCheckpointEvery).
	CheckpointEvery int64
	// Shard, when non-nil, declares this node's cluster identity
	// (tssserve -shard-of). It is surfaced in /statsz and enforced
	// against the coordinator's X-Tss-Expect-Shard routing assertion,
	// so a mis-wired topology (shard URLs in the wrong order, or a node
	// from another cluster) is a hard 409 instead of silently wrong
	// partitions.
	Shard *ShardIdentity
	// StreamHeartbeat is the idle interval between heartbeat records on
	// streamed responses (0 = DefaultStreamHeartbeat).
	StreamHeartbeat time.Duration
	// ReadOnly makes the HTTP surface reject mutations (creates, drops,
	// batches) with 403 — follower mode. Replicated state still applies
	// through the in-process ImportSnapshot/ApplyReplicated path, which
	// is how a follower stays a faithful mirror: the primary is the only
	// writer its tables ever see.
	ReadOnly bool
	// NoMaintain disables incremental skyline-memo maintenance: every
	// batch installs a fresh empty memo (the pre-maintenance behaviour)
	// and post-batch queries recompute from cold. For benchmarking and
	// differential testing.
	NoMaintain bool
}

// Server is the catalog of named skyline tables plus the HTTP handlers
// that serve them. The zero value is not usable; construct with New or
// NewWithConfig.
type Server struct {
	mu     sync.RWMutex
	tables map[string]*tableEntry

	cacheCap        int
	subspaceCap     int
	store           store.Store // nil = ephemeral
	checkpointEvery int64
	shard           *ShardIdentity
	streamHeartbeat time.Duration
	readOnly        bool
	noMaintain      bool
	checkpointErrs  atomic.Int64
	started         time.Time
	queries         atomic.Int64
}

// New creates an empty, ephemeral (storeless) catalog. cacheCap sizes
// each new table's dynamic result cache (0 selects
// DefaultCacheCapacity).
func New(cacheCap int) *Server {
	return NewWithConfig(Config{CacheCapacity: cacheCap})
}

// NewWithConfig creates a catalog with the given configuration. When a
// store is attached, call Recover before serving to load persisted
// tables.
func NewWithConfig(cfg Config) *Server {
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	return &Server{
		tables:          make(map[string]*tableEntry),
		cacheCap:        cfg.CacheCapacity,
		subspaceCap:     cfg.SubspaceCacheCap,
		store:           cfg.Store,
		checkpointEvery: cfg.CheckpointEvery,
		shard:           cfg.Shard,
		streamHeartbeat: cfg.StreamHeartbeat,
		readOnly:        cfg.ReadOnly,
		noMaintain:      cfg.NoMaintain,
		started:         time.Now(),
	}
}

// Recover loads every table persisted in the attached store — the
// latest snapshot with all logged batches replayed — and publishes
// each at its recovered version. Call once, before serving traffic.
func (s *Server) Recover() ([]TableInfo, error) {
	if s.store == nil {
		return nil, nil
	}
	names, err := s.store.List()
	if err != nil {
		return nil, err
	}
	var infos []TableInfo
	for _, name := range names {
		snap, err := s.store.Load(name)
		if err != nil {
			return infos, fmt.Errorf("recover table %q: %w", name, err)
		}
		spec, err := specFromStore(name, snap)
		if err != nil {
			return infos, fmt.Errorf("recover table %q: %w", name, err)
		}
		e, err := newTableEntry(spec, s.cacheCap, s.subspaceCap, snap.Version)
		if err != nil {
			return infos, fmt.Errorf("recover table %q: %w", name, err)
		}
		e.noMaintain = s.noMaintain
		// Resume the planner's learning where the checkpoint left it —
		// before the entry is visible to any query.
		if l := importLearned(snap.Stats); l != nil {
			e.current().table.SetLearned(l)
		}
		s.mu.Lock()
		s.tables[name] = e
		s.mu.Unlock()
		infos = append(infos, e.info())
	}
	return infos, nil
}

// CreateTable validates the spec, builds the initial snapshot and adds
// the table to the catalog. Fails if the name is taken — checked both
// before the (potentially expensive) snapshot build and again when
// publishing, so duplicate creates fail fast without burning an index
// build and concurrent same-name creates still serialize correctly.
// With a store attached, the initial snapshot is persisted before the
// table becomes visible.
func (s *Server) CreateTable(spec TableSpec) (TableInfo, error) {
	s.mu.RLock()
	_, dup := s.tables[spec.Name]
	s.mu.RUnlock()
	if dup {
		return TableInfo{}, ErrTableExists
	}
	e, err := newTableEntry(spec, s.cacheCap, s.subspaceCap, 0)
	if err != nil {
		return TableInfo{}, err
	}
	e.noMaintain = s.noMaintain
	// The snapshot build above ran without the lock; persisting runs
	// inside the critical section, after winning the name, so a losing
	// concurrent create can never overwrite — or clean up — the
	// winner's durable state.
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[spec.Name]; dup {
		return TableInfo{}, ErrTableExists
	}
	if s.store != nil {
		img, err := e.storeSnapshot(e.current())
		if err != nil {
			return TableInfo{}, err
		}
		if err := s.store.SaveSnapshot(spec.Name, img); err != nil {
			return TableInfo{}, fmt.Errorf("%w: persist table: %v", errStorage, err)
		}
	}
	s.tables[spec.Name] = e
	return e.info(), nil
}

// DropTable removes a table from the catalog and, with a store
// attached, its persisted state. In-flight queries on its last
// snapshot finish normally.
func (s *Server) DropTable(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tables[name]; !ok {
		return false
	}
	delete(s.tables, name)
	if s.store != nil {
		_ = s.store.Drop(name)
	}
	return true
}

// applyBatch runs a batch through the entry with the server's
// persistence hooks: the mutation is WAL-appended before the snapshot
// publishes, and an oversized log checkpoints afterwards.
func (s *Server) applyBatch(e *tableEntry, req BatchRequest) (BatchResponse, error) {
	var persist func(version int64) error
	if s.store != nil {
		persist = func(version int64) error {
			m, err := e.mutationRecord(version, req)
			if err != nil {
				return err
			}
			if err := s.store.AppendMutation(e.name, m); err != nil {
				return fmt.Errorf("%w: persist batch: %v", errStorage, err)
			}
			return nil
		}
	}
	resp, err := e.applyBatch(req, persist)
	if err != nil || s.store == nil {
		return resp, err
	}
	s.maybeCheckpoint(e)
	return resp, nil
}

// checkpointDegradedAfter is the consecutive-failure count past which a
// table's stuck checkpointing is surfaced as a degraded /healthz: the
// WAL is still absorbing batches durably, but it can no longer compact,
// so it grows without bound until an operator intervenes.
const checkpointDegradedAfter = 3

// checkpointMaxSkip caps the retry backoff (in oversized-log batches
// skipped between attempts).
const checkpointMaxSkip = 64

// maybeCheckpoint runs the checkpoint policy after a durable batch: an
// oversized log is compacted into a fresh snapshot. The batch itself is
// already durable in the WAL, so a failed checkpoint only defers
// compaction — it must never fail the request. But it must not be
// forgotten either: retries back off batch-counted (1, 2, 4, …
// oversized batches skipped between attempts, capped) so a broken disk
// isn't hammered with a full snapshot encode per batch yet recovers by
// itself, and the consecutive-failure streak drives the /healthz
// degraded flag once it crosses the threshold.
func (s *Server) maybeCheckpoint(e *tableEntry) {
	size, err := s.store.LogSize(e.name)
	if err != nil || size < s.checkpointEvery {
		return
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.ckptSkipLeft > 0 {
		e.ckptSkipLeft--
		return
	}
	cur := e.current()
	img, err := e.storeSnapshot(cur)
	if err == nil {
		err = s.store.SaveSnapshot(e.name, img)
	}
	if err != nil {
		s.checkpointErrs.Add(1)
		e.ckptStreak.Add(1)
		if e.ckptSkip == 0 {
			e.ckptSkip = 1
		} else if e.ckptSkip < checkpointMaxSkip {
			e.ckptSkip *= 2
		}
		e.ckptSkipLeft = e.ckptSkip
		return
	}
	e.ckptSkip, e.ckptSkipLeft = 0, 0
	e.ckptStreak.Store(0)
}

// CheckpointStuck lists the tables whose checkpointing has failed
// checkpointDegradedAfter or more times in a row — the /healthz
// degraded signal.
func (s *Server) CheckpointStuck() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	for name, e := range s.tables {
		if e.ckptStreak.Load() >= checkpointDegradedAfter {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Table looks a catalog entry up.
func (s *Server) table(name string) (*tableEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.tables[name]
	return e, ok
}

// Tables lists catalog entries sorted by name.
func (s *Server) Tables() []TableInfo {
	s.mu.RLock()
	entries := make([]*tableEntry, 0, len(s.tables))
	for _, e := range s.tables {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	infos := make([]TableInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.info()
	}
	return infos
}

// Stats renders the /statsz body.
func (s *Server) Stats() StatsResponse {
	domTests, blockSkips := core.KernelCounters()
	return StatsResponse{
		UptimeSeconds:    time.Since(s.started).Seconds(),
		Tables:           s.Tables(),
		TotalQueries:     s.queries.Load(),
		Algorithms:       core.AlgorithmNames(),
		Durable:          s.store != nil,
		CheckpointErrors: s.checkpointErrs.Load(),
		CheckpointStuck:  s.CheckpointStuck(),
		ReadOnly:         s.readOnly,
		Shard:            s.shard,
		KernelDomTests:   domTests,
		KernelBlockSkips: blockSkips,
	}
}

// ShardDirectHeader marks coordinator→shard (and follower→primary)
// traffic that a dual-role node must answer from its local catalog
// instead of routing back into the cluster layer. The cluster package
// re-exports it; the definition lives here beside ExpectShardHeader so
// clients below the cluster layer can set it.
const ShardDirectHeader = "X-Tss-Shard-Direct"

// ExpectShardHeader is the coordinator's routing assertion: every
// scatter request names the shard identity ("index/count") it believes
// it is talking to, and a node started with -shard-of rejects a
// mismatch with 409 — catching mis-ordered shard URL lists before they
// corrupt partitions.
const ExpectShardHeader = "X-Tss-Expect-Shard"

// checkShardIdentity enforces ExpectShardHeader when both sides declare
// an identity. Requests without the header (plain clients) always pass.
func (s *Server) checkShardIdentity(r *http.Request) error {
	want := r.Header.Get(ExpectShardHeader)
	if want == "" || s.shard == nil {
		return nil
	}
	if got := fmt.Sprintf("%d/%d", s.shard.Index, s.shard.Count); got != want {
		return fmt.Errorf("shard identity mismatch: this node is %s, coordinator expected %s", got, want)
	}
	return nil
}

// ErrTableExists is returned by CreateTable when the name is taken.
var ErrTableExists = errors.New("table already exists")

// errStorage marks server-side storage failures, so handlers answer
// them with a 5xx (the request was well-formed; the disk was not)
// instead of a client error.
var errStorage = errors.New("storage failure")

// statusFor maps a handler error to its HTTP status. Context errors
// surface when a server-side request timeout (or a disconnecting
// client) cancels a running query — the request was fine, the time
// budget was not.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errStorage):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	}
	return http.StatusBadRequest
}

// Handler returns the HTTP API:
//
//	GET    /healthz                     liveness
//	GET    /statsz                      catalog + traffic statistics
//	GET    /tables                      list tables
//	POST   /tables                      create a table (TableSpec)
//	GET    /tables/{name}               table info
//	DELETE /tables/{name}               drop a table
//	GET    /tables/{name}/skyline       static skyline (?algo=, ?parallel=, ?limit=)
//	POST   /tables/{name}/rows:batch    batched mutation (BatchRequest)
//	POST   /tables/{name}/query         dynamic query (QueryRequest)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Still 200 when degraded: the node serves reads and absorbs
		// durable batches fine, it just cannot compact its WAL — a
		// liveness probe must not kill it, but monitors must see it.
		body := map[string]any{"status": "ok"}
		if stuck := s.CheckpointStuck(); len(stuck) > 0 {
			body["status"] = "degraded"
			body["checkpointStuck"] = stuck
			body["checkpointErrors"] = s.checkpointErrs.Load()
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("GET /statsz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /tables", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Tables())
	})
	mux.HandleFunc("POST /tables", s.handleCreate)
	mux.HandleFunc("GET /tables/{name}", s.withTable(func(w http.ResponseWriter, r *http.Request, e *tableEntry) {
		writeJSON(w, http.StatusOK, e.info())
	}))
	mux.HandleFunc("DELETE /tables/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := s.checkWritable(); err != nil {
			writeError(w, http.StatusForbidden, err)
			return
		}
		if !s.DropTable(r.PathValue("name")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", r.PathValue("name")))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"dropped": r.PathValue("name")})
	})
	mux.HandleFunc("GET /tables/{name}/skyline", s.withTable(s.handleSkyline))
	mux.HandleFunc("GET /tables/{name}/stats", s.withTable(s.handleTableStats))
	mux.HandleFunc("POST /tables/{name}/rows:batch", s.withTable(s.handleBatch))
	mux.HandleFunc("POST /tables/{name}/query", s.withTable(s.handleQuery))
	mux.HandleFunc("POST /tables/{name}/domcount", s.withTable(s.handleDomCount))
	mux.HandleFunc("GET /tables/{name}/replica/snapshot", s.withTable(s.handleReplicaSnapshot))
	mux.HandleFunc("GET /tables/{name}/replica/log", s.withTable(s.handleReplicaLog))
	return mux
}

// checkWritable rejects external mutations on a read-only follower.
func (s *Server) checkWritable() error {
	if s.readOnly {
		return fmt.Errorf("read-only follower: mutations go to the primary")
	}
	return nil
}

// withTable resolves the {name} path value to a catalog entry and
// enforces read-at-version pinning: ?minVersion=N refuses to answer
// from a snapshot older than N with 412, so a coordinator failing a
// read over to a replica never observes state older than the query's
// pinned version — a stale follower is an explicit refusal, not a
// silently time-traveling answer.
func (s *Server) withTable(fn func(http.ResponseWriter, *http.Request, *tableEntry)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		e, ok := s.table(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
			return
		}
		if v := r.URL.Query().Get("minVersion"); v != "" {
			minV, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad minVersion=%q: %w", v, err))
				return
			}
			if cur := e.current().version; cur < minV {
				writeError(w, http.StatusPreconditionFailed,
					fmt.Errorf("table %q at version %d, below pinned minVersion %d", name, cur, minV))
				return
			}
		}
		fn(w, r, e)
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec TableSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad table spec: %w", err))
		return
	}
	// Partitioning is the coordinator's concern; a single node serving
	// it unpartitioned would silently defeat the request's intent.
	if spec.Partition != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("partition spec is only valid against a cluster coordinator"))
		return
	}
	if err := s.checkShardIdentity(r); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	if err := s.checkWritable(); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	info, err := s.CreateTable(spec)
	if errors.Is(err, ErrTableExists) {
		writeError(w, http.StatusConflict, fmt.Errorf("table %q already exists", spec.Name))
		return
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleSkyline answers a static skyline query on the current snapshot
// through the algorithm registry: ?algo= names any registered
// algorithm (default stss), ?parallel=N runs it behind the
// partition-and-merge executor, ?limit=K truncates the response rows.
func (s *Server) handleSkyline(w http.ResponseWriter, r *http.Request, e *tableEntry) {
	// Query decoding turns '+' into ' '; algorithm names ("sdc+",
	// "bbs+") contain '+' and never spaces, so map it back — ?algo=sdc+
	// works unescaped from curl.
	algo := strings.ReplaceAll(r.URL.Query().Get("algo"), " ", "+")
	if algo == "" {
		algo = "stss"
	}
	parallel, err := intParam(r, "parallel", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit, err := intParam(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if WantsStream(r) {
		s.handleSkylineStream(w, r, e, algo, parallel, limit)
		return
	}

	snap := e.current()
	var res *tss.SkylineResult
	if parallel != 0 {
		p := parallel
		if p < 0 {
			p = 0 // facade: 0 = one shard per CPU
		}
		res, err = snap.table.SkylineParallel(algo, p)
	} else {
		res, err = snap.table.SkylineWith(algo)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.countQuery(e)
	writeJSON(w, http.StatusOK, QueryResponse{
		Table:   e.name,
		Version: snap.version,
		Rows:    snap.table.Len(),
		Count:   len(res.Rows),
		Skyline: skylineRows(snap, res.Rows, limit),
		Metrics: res.Metrics,
		Algo:    algo,
	})
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, e *tableEntry) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch: %w", err))
		return
	}
	if len(req.RemoveSharded) > 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("removeSharded is only valid against a cluster coordinator (row indexes here are plain `remove`)"))
		return
	}
	if err := s.checkShardIdentity(r); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	if err := s.checkWritable(); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	resp, err := s.applyBatch(e, req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQuery answers POST /tables/{name}/query in one of two modes:
// a dynamic skyline query bringing its own preference DAGs (served
// through the snapshot's prepared dynamic database and its result
// cache), or — when planner-mode fields are present instead — a
// planned query over the table's own orders (subspace / constrained /
// top-k, algorithm and placement chosen by the cost-based optimizer).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, e *tableEntry) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad query: %w", err))
		return
	}
	if WantsStream(r) {
		s.handleQueryStream(w, r, e, req)
		return
	}
	if req.PlanMode() {
		s.handlePlanQuery(w, r, e, req)
		return
	}
	// A request that mixes both modes would otherwise silently drop its
	// planner fields — refuse instead.
	if req.HasPlanFields() {
		writeError(w, http.StatusBadRequest, fmt.Errorf(
			"subspace/where/topK/rank/algo/parallel/explain/noKernel cannot combine with orders/baseline (dynamic queries run dTSS as-is)"))
		return
	}
	// Refuse work whose budget already expired while the request was
	// queued or being read; dTSS, fully-dynamic and baseline (SDC+) runs
	// all additionally check the context cooperatively mid-run.
	if err := r.Context().Err(); err != nil {
		writeError(w, statusFor(err), fmt.Errorf("query canceled before start: %w", err))
		return
	}
	snap := e.current()
	orders, err := e.queryOrders(req.Orders)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var res *tss.SkylineResult
	switch {
	case req.Baseline && req.Ideal != nil:
		writeError(w, http.StatusBadRequest, fmt.Errorf("baseline does not support ideal-point queries"))
		return
	case req.Baseline:
		res, err = snap.dyn.QueryBaselineContext(r.Context(), orders...)
	case req.Ideal != nil:
		res, err = snap.dyn.QueryAtContext(r.Context(), req.Ideal, orders...)
	default:
		res, err = snap.dyn.QueryContext(r.Context(), orders...)
	}
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.countQuery(e)
	// The result cache serves only the plain dTSS path — baseline and
	// ideal-point queries bypass it and don't move the counters.
	if !req.Baseline && req.Ideal == nil {
		if res.CacheHit {
			e.cacheHits.Add(1)
		} else {
			e.cacheMisses.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Table:    e.name,
		Version:  snap.version,
		Rows:     snap.table.Len(),
		Count:    len(res.Rows),
		Skyline:  skylineRows(snap, res.Rows, req.Limit),
		Metrics:  res.Metrics,
		CacheHit: res.CacheHit,
	})
}

// handlePlanQuery runs a planner-mode query on the current snapshot.
// The request context rides along, so a server-side request timeout
// cancels the executor's scan loops cooperatively. The snapshot's
// full-skyline memo (not the dTSS result cache — its counters stay
// untouched) serves repeat full and provably-sound post-filter
// constrained queries without recomputation; `cacheHit` in the
// response reports that, and `plan` carries the optimizer's explain
// output when requested.
func (s *Server) handlePlanQuery(w http.ResponseWriter, r *http.Request, e *tableEntry, req QueryRequest) {
	snap := e.current()
	q, err := e.planQuery(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, explain, err := snap.table.QueryContext(r.Context(), q)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	s.countQuery(e)
	// A NoCache bypass is neither a hit nor a miss of the memo.
	if !req.NoCache {
		e.countPlanCache(explain, len(req.Subspace) > 0)
	}
	resp := QueryResponse{
		Table:    e.name,
		Version:  snap.version,
		Rows:     snap.table.Len(),
		Count:    len(res.Rows),
		Skyline:  skylineRows(snap, res.Rows, req.Limit),
		Metrics:  res.Metrics,
		CacheHit: res.CacheHit,
		Algo:     explain.Algorithm,
	}
	if req.Explain {
		resp.Plan = explain
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTableStats answers GET /tables/{name}/stats: the planner's
// statistics for the serving snapshot plus the learned feedback state.
// Computing the stats is lazy-cached on the snapshot's table, so
// polling this endpoint is cheap; the cluster coordinator reads it per
// query to plan once over merged statistics and to prune shards.
func (s *Server) handleTableStats(w http.ResponseWriter, r *http.Request, e *tableEntry) {
	snap := e.current()
	writeJSON(w, http.StatusOK, TableStatsInfo{
		Table:   e.name,
		Version: snap.version,
		Rows:    snap.table.Len(),
		Stats:   snap.table.Stats(),
		Learned: snap.table.Learned().Export(),
	})
}

// handleDomCount answers POST /tables/{name}/domcount: per candidate
// row (value-addressed), this shard's partial contribution to the
// requested ranking's global score — dominance counts for "domcount"
// (the default, and the endpoint's original contract), dominator-count
// histograms for "dpidp". This is the shard-side half of distributed
// ranked top-k.
func (s *Server) handleDomCount(w http.ResponseWriter, r *http.Request, e *tableEntry) {
	var req DomCountRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad domcount request: %w", err))
		return
	}
	q, err := e.planQuery(QueryRequest{Subspace: req.Subspace, Where: req.Where})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := e.current()
	rows := make([]tss.TableRow, len(req.Rows))
	for i, rw := range req.Rows {
		rows[i] = tss.TableRow{TO: rw.TO, PO: rw.PO}
	}
	if req.Rank != "" && req.Rank != "domcount" {
		parts, err := snap.table.RankPartials(r.Context(), q, req.Rank, rows)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		resp := DomCountResponse{Table: e.name, Version: snap.version, Counts: parts.Counts}
		for _, h := range parts.Hists {
			resp.Hists = append(resp.Hists, RankHist{Ks: h.Ks, Counts: h.Counts})
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	counts, err := snap.table.DomCounts(r.Context(), q, rows)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, DomCountResponse{Table: e.name, Version: snap.version, Counts: counts})
}

func (s *Server) countQuery(e *tableEntry) {
	s.queries.Add(1)
	e.queries.Add(1)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", name, v, err)
	}
	return n, nil
}

// encBufPool pools the per-response JSON encode buffers: every request
// (and every streamed record) encodes through one, so the hot path
// reuses buffer storage instead of allocating a fresh encoder sink per
// call.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, body any) {
	buf := encBufPool.Get().(*bytes.Buffer)
	defer encBufPool.Put(buf)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
