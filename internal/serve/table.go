// Package serve is the HTTP/JSON skyline query server behind
// cmd/tssserve: a catalog of named tables, each published as an
// immutable copy-on-write snapshot (a sealed tss.Table plus its
// prepared dynamic-query database), so any number of concurrent readers
// query lock-free while batched mutations derive the next snapshot and
// atomically swap it in. With a storage engine attached, every batch is
// appended to the table's write-ahead log before the snapshot is
// published, logs checkpoint into columnar snapshots past a size
// threshold, and tables recover on startup — see internal/store.
//
// Consistency model: a query is answered entirely by one snapshot — the
// one current when the request reached the table — and the response
// carries that snapshot's version. Row indexes are snapshot-scoped.
// Mutations are serialized per table and never touch a published
// snapshot; in-flight queries keep reading the version they started on.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	tss "repro"
	"repro/internal/plan"
)

// snapshot is one immutable published state of a table. The table is
// sealed (all lazily built per-domain indexes precompiled) and the
// dynamic database prepared with its result cache, so serving a
// snapshot never writes shared memory.
type snapshot struct {
	version int64
	table   *tss.Table
	dyn     *tss.Dynamic
}

// tableEntry is a catalog slot: the current snapshot behind an atomic
// pointer (readers), a mutation lock (writers), and traffic counters.
type tableEntry struct {
	name   string
	schema *Schema      // column names, label indexes, query translation
	orders []*tss.Order // compiled base orders, shared by all snapshots

	// specCacheCap preserves the table spec's cache sizing (0 = server
	// default) for persistence across restarts.
	specCacheCap int

	// subspaceCap sizes each fresh snapshot memo's subspace LRU
	// (Config.SubspaceCacheCap; 0 = plan.DefaultSubspaceCap). Advanced
	// memos inherit it through plan.MemoCache.Advance.
	subspaceCap int

	writeMu sync.Mutex // serializes mutations; readers never take it
	snap    atomic.Pointer[snapshot]

	// Checkpoint backoff state (see Server.maybeCheckpoint). ckptSkip
	// and ckptSkipLeft are guarded by writeMu; ckptStreak is atomic so
	// /healthz reads it without the write lock.
	ckptSkip     int
	ckptSkipLeft int
	ckptStreak   atomic.Int64

	// noMaintain disables carrying the skyline memo across batches
	// (Config.NoMaintain): every mutation installs a fresh empty memo.
	noMaintain bool

	queries   atomic.Int64
	mutations atomic.Int64
	// Cache counters, accumulated per served query (on the response's
	// CacheHit flag) rather than read from the snapshots' own caches:
	// snapshots retire while queries are still in flight on them, so
	// folding their internal stats at swap time would race and lose
	// counts. These stay exact and cumulative across swaps.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	// Planner-path memo counters, split by route: a maintained hit is a
	// memo entry carried across mutations by delta maintenance; full and
	// subspace hits are cold-computed entries of the current snapshot.
	// Misses count cacheable queries (no Where) that found no entry.
	planFullHits       atomic.Int64
	planFullMisses     atomic.Int64
	planSubHits        atomic.Int64
	planSubMisses      atomic.Int64
	planMaintainedHits atomic.Int64
	// Ranked top-k queries by score provenance (Explain.RankedFrom):
	// score index, memoised skyline, or cold compute.
	planRankedIndex atomic.Int64
	planRankedMemo  atomic.Int64
	planRankedCold  atomic.Int64
}

// buildOrders compiles OrderSpecs into tss Orders, converting the
// facade's construction panics (duplicate labels, unknown edge labels,
// preference cycles) into errors a handler can return as 400s.
func buildOrders(specs []OrderSpec) (orders []*tss.Order, err error) {
	defer func() {
		if r := recover(); r != nil {
			orders, err = nil, fmt.Errorf("%v", r)
		}
	}()
	for _, spec := range specs {
		o := tss.NewOrder(spec.Values...)
		for _, e := range spec.Edges {
			o.Prefer(e[0], e[1])
		}
		orders = append(orders, o)
	}
	return orders, nil
}

// newTableEntry validates a spec, builds the initial snapshot at the
// given version and returns the ready entry. cacheCap sizes the
// dynamic result cache; version is 0 for fresh tables and the
// recovered version when loading from a store.
func newTableEntry(spec TableSpec, cacheCap, subspaceCap int, version int64) (*tableEntry, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("table name is required")
	}
	// The dynamic database indexes each PO group's rows by their TO
	// coordinates, so a served table needs at least one TO column.
	if len(spec.TOColumns) == 0 {
		return nil, fmt.Errorf("table %q needs at least one totally ordered column", spec.Name)
	}
	orders, err := buildOrders(spec.Orders)
	if err != nil {
		return nil, err
	}
	// Schema construction also enforces the shared column namespace
	// (TO names, order names, "po<d>" fallbacks): a collision would make
	// one column silently unaddressable at query time.
	schema, err := NewSchema(spec.TOColumns, spec.Orders)
	if err != nil {
		return nil, err
	}
	e := &tableEntry{
		name:         spec.Name,
		schema:       schema,
		orders:       orders,
		specCacheCap: spec.CacheCapacity,
		subspaceCap:  subspaceCap,
	}
	if spec.CacheCapacity > 0 {
		cacheCap = spec.CacheCapacity
	}
	table, err := e.freshTable()
	if err != nil {
		return nil, err
	}
	for i, r := range spec.Rows {
		if err := table.Add(r.TO, r.PO...); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	e.publish(version, table, cacheCap)
	return e, nil
}

// freshTable builds an empty table over the entry's schema, converting
// compile panics (preference cycles) into errors.
func (e *tableEntry) freshTable() (t *tss.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return tss.NewTable(e.schema.toCols, e.orders...), nil
}

// publish seals table, prepares its dynamic database, attaches a fresh
// full-skyline memo for the planner's cache routing (snapshot-scoped:
// the memo describes exactly this row set) and swaps the new snapshot
// in. Callers hold writeMu (or own the entry exclusively).
func (e *tableEntry) publish(version int64, table *tss.Table, cacheCap int) {
	table.Seal()
	table.SetQueryCache(plan.NewMemoCacheWithCap(e.subspaceCap))
	dyn := table.PrepareDynamic()
	dyn.EnableCache(cacheCap)
	e.snap.Store(&snapshot{version: version, table: table, dyn: dyn})
}

// current returns the snapshot serving reads right now.
func (e *tableEntry) current() *snapshot { return e.snap.Load() }

// applyBatch atomically applies a batched mutation. The next snapshot
// is *derived*, not rebuilt: Table.ApplyBatch copies the row header
// (removals first — by current-snapshot row index — then appends,
// survivors renumbered) and Dynamic.ApplyDelta maintains the prepared
// group indexes incrementally, copy-on-write, in O(batch·log N).
// Reads issued while this runs are served by the old snapshot.
//
// persist, when non-nil, is called with the produced version *before*
// the snapshot is published; an error aborts the swap, so every
// version a client ever observes is in the log. This is the serving
// layer's write-ahead contract.
func (e *tableEntry) applyBatch(req BatchRequest, persist func(version int64) error) (BatchResponse, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.current()

	// A no-op batch must not rebuild the dynamic database or discard
	// the warm result cache.
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		return BatchResponse{Table: e.name, Version: cur.version, Rows: cur.table.Len()}, nil
	}

	adds := make([]tss.TableRow, len(req.Add))
	for i, r := range req.Add {
		adds[i] = tss.TableRow{TO: r.TO, PO: r.PO}
	}
	next, delta, err := cur.table.ApplyBatch(req.Remove, adds)
	if err != nil {
		return BatchResponse{}, err
	}
	next.Seal()
	// The skyline memo survives the mutation: Table.ApplyBatch already
	// advanced the old snapshot's memo across the delta (entries
	// re-certified by the incremental maintainer, over-churn entries
	// dropped), so post-batch repeat queries hit the maintained route
	// instead of recomputing from cold. NoMaintain restores the old
	// fresh-memo-per-batch behaviour.
	if e.noMaintain || next.QueryCache() == nil {
		next.SetQueryCache(plan.NewMemoCacheWithCap(e.subspaceCap))
	}
	dyn := cur.dyn.ApplyDelta(next, delta)

	version := cur.version + 1
	if persist != nil {
		if err := persist(version); err != nil {
			return BatchResponse{}, err
		}
	}
	e.snap.Store(&snapshot{version: version, table: next, dyn: dyn})
	e.mutations.Add(1)
	return BatchResponse{
		Table:   e.name,
		Version: version,
		Rows:    next.Len(),
		Added:   delta.Added,
		Removed: delta.OldLen - (delta.NewLen - delta.Added),
	}, nil
}

// info renders the entry for /tables and /statsz.
func (e *tableEntry) info() TableInfo {
	s := e.current()
	pc := PlanCacheStats{
		FullHits:       e.planFullHits.Load(),
		FullMisses:     e.planFullMisses.Load(),
		SubspaceHits:   e.planSubHits.Load(),
		SubspaceMisses: e.planSubMisses.Load(),
		MaintainedHits: e.planMaintainedHits.Load(),
		RankedIndex:    e.planRankedIndex.Load(),
		RankedMemo:     e.planRankedMemo.Load(),
		RankedCold:     e.planRankedCold.Load(),
	}
	// Maintenance counters live in the memo lineage itself (cumulative
	// across Advance calls, shared by every snapshot of the table).
	if mc, ok := s.table.QueryCache().(*plan.MemoCache); ok {
		ms := mc.MaintStats()
		pc.Advances = ms.Advances
		pc.Promotions = ms.Promotions
		pc.MaintFallbacks = ms.Fallbacks
		pc.SubspaceEvictions = ms.SubspaceEvictions
		pc.IndexAdvances = ms.IndexAdvances
		pc.IndexFallbacks = ms.IndexFallbacks
		pc.SubspaceCapacity = mc.SubspaceCap()
	}
	return TableInfo{
		Name:      e.name,
		Version:   s.version,
		Rows:      s.table.Len(),
		Groups:    s.dyn.Groups(),
		TOColumns: e.schema.TOColumns(),
		Orders:    e.schema.Orders(),
		Stats: TableStats{
			Queries:     e.queries.Load(),
			Mutations:   e.mutations.Load(),
			CacheHits:   e.cacheHits.Load(),
			CacheMisses: e.cacheMisses.Load(),
			PlanCache:   pc,
		},
	}
}

// countPlanCache folds one planner-path query outcome into the
// per-route memo counters. Maintained hits are exclusive of full and
// subspace hits; misses are counted only for memo-cacheable queries
// (no predicates — Where queries push down without consulting the
// memo, unless a post-filter cache hit is reported, which counts as a
// hit of its entry's route).
func (e *tableEntry) countPlanCache(ex *plan.Explain, subspace bool) {
	switch ex.RankedFrom {
	case "index":
		e.planRankedIndex.Add(1)
	case "memo":
		e.planRankedMemo.Add(1)
	case "cold":
		e.planRankedCold.Add(1)
	}
	switch {
	case ex.CacheHit && ex.Maintained:
		e.planMaintainedHits.Add(1)
	case ex.CacheHit && subspace:
		e.planSubHits.Add(1)
	case ex.CacheHit:
		e.planFullHits.Add(1)
	case ex.Route == plan.RouteDirect:
		if subspace {
			e.planSubMisses.Add(1)
		} else {
			e.planFullMisses.Add(1)
		}
	}
}

// queryOrders builds per-request preference Orders over the table's
// value labels, converting label/cycle panics into errors.
func (e *tableEntry) queryOrders(reqOrders []QueryOrder) ([]*tss.Order, error) {
	if len(reqOrders) != len(e.schema.orderSpecs) {
		return nil, fmt.Errorf("query has %d orders, table has %d PO columns",
			len(reqOrders), len(e.schema.orderSpecs))
	}
	specs := make([]OrderSpec, len(reqOrders))
	for d, q := range reqOrders {
		specs[d] = OrderSpec{Values: e.schema.orderSpecs[d].Values, Edges: q.Edges}
	}
	return buildOrders(specs)
}

// planQuery translates a planner-mode request through the schema (see
// Schema.PlanQuery).
func (e *tableEntry) planQuery(req QueryRequest) (plan.Query, error) {
	return e.schema.PlanQuery(req)
}

// skylineRows renders result row indexes with their values from the
// snapshot that produced them.
func skylineRows(s *snapshot, rows []int, limit int) []SkylineRow {
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out := make([]SkylineRow, len(rows))
	for i, r := range rows {
		to, po := s.table.RowValues(r)
		out[i] = SkylineRow{Row: r, TO: to, PO: po}
	}
	return out
}
