// Package serve is the HTTP/JSON skyline query server behind
// cmd/tssserve: a catalog of named tables, each published as an
// immutable copy-on-write snapshot (a sealed tss.Table plus its
// prepared dynamic-query database), so any number of concurrent readers
// query lock-free while batched mutations derive the next snapshot and
// atomically swap it in. With a storage engine attached, every batch is
// appended to the table's write-ahead log before the snapshot is
// published, logs checkpoint into columnar snapshots past a size
// threshold, and tables recover on startup — see internal/store.
//
// Consistency model: a query is answered entirely by one snapshot — the
// one current when the request reached the table — and the response
// carries that snapshot's version. Row indexes are snapshot-scoped.
// Mutations are serialized per table and never touch a published
// snapshot; in-flight queries keep reading the version they started on.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	tss "repro"
	"repro/internal/plan"
)

// snapshot is one immutable published state of a table. The table is
// sealed (all lazily built per-domain indexes precompiled) and the
// dynamic database prepared with its result cache, so serving a
// snapshot never writes shared memory.
type snapshot struct {
	version int64
	table   *tss.Table
	dyn     *tss.Dynamic
}

// tableEntry is a catalog slot: the current snapshot behind an atomic
// pointer (readers), a mutation lock (writers), and traffic counters.
type tableEntry struct {
	name       string
	toCols     []string
	orderSpecs []OrderSpec
	orders     []*tss.Order     // compiled base orders, shared by all snapshots
	poIndex    []map[string]int // per order: value label -> id (storage encoding)

	// specCacheCap preserves the table spec's cache sizing (0 = server
	// default) for persistence across restarts.
	specCacheCap int

	writeMu sync.Mutex // serializes mutations; readers never take it
	snap    atomic.Pointer[snapshot]

	queries   atomic.Int64
	mutations atomic.Int64
	// Cache counters, accumulated per served query (on the response's
	// CacheHit flag) rather than read from the snapshots' own caches:
	// snapshots retire while queries are still in flight on them, so
	// folding their internal stats at swap time would race and lose
	// counts. These stay exact and cumulative across swaps.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// buildOrders compiles OrderSpecs into tss Orders, converting the
// facade's construction panics (duplicate labels, unknown edge labels,
// preference cycles) into errors a handler can return as 400s.
func buildOrders(specs []OrderSpec) (orders []*tss.Order, err error) {
	defer func() {
		if r := recover(); r != nil {
			orders, err = nil, fmt.Errorf("%v", r)
		}
	}()
	for _, spec := range specs {
		o := tss.NewOrder(spec.Values...)
		for _, e := range spec.Edges {
			o.Prefer(e[0], e[1])
		}
		orders = append(orders, o)
	}
	return orders, nil
}

// newTableEntry validates a spec, builds the initial snapshot at the
// given version and returns the ready entry. cacheCap sizes the
// dynamic result cache; version is 0 for fresh tables and the
// recovered version when loading from a store.
func newTableEntry(spec TableSpec, cacheCap int, version int64) (*tableEntry, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("table name is required")
	}
	// The dynamic database indexes each PO group's rows by their TO
	// coordinates, so a served table needs at least one TO column.
	if len(spec.TOColumns) == 0 {
		return nil, fmt.Errorf("table %q needs at least one totally ordered column", spec.Name)
	}
	orders, err := buildOrders(spec.Orders)
	if err != nil {
		return nil, err
	}
	e := &tableEntry{
		name:         spec.Name,
		toCols:       append([]string(nil), spec.TOColumns...),
		orderSpecs:   append([]OrderSpec(nil), spec.Orders...),
		orders:       orders,
		specCacheCap: spec.CacheCapacity,
	}
	if spec.CacheCapacity > 0 {
		cacheCap = spec.CacheCapacity
	}
	for _, spec := range e.orderSpecs {
		idx := make(map[string]int, len(spec.Values))
		for i, v := range spec.Values {
			idx[v] = i
		}
		e.poIndex = append(e.poIndex, idx)
	}
	// Planner-mode queries address columns by name across one shared
	// namespace (TO names, order names, "po<d>" fallbacks); a collision
	// would make one column silently unaddressable, so refuse it here
	// rather than at query time.
	seen := make(map[string]bool, len(e.toCols)+len(e.orderSpecs))
	for _, c := range e.toCols {
		if seen[c] {
			return nil, fmt.Errorf("duplicate column name %q", c)
		}
		seen[c] = true
	}
	for d := range e.orderSpecs {
		name := e.poColName(d)
		if seen[name] {
			return nil, fmt.Errorf("column name %q is used by more than one column", name)
		}
		seen[name] = true
	}
	table, err := e.freshTable()
	if err != nil {
		return nil, err
	}
	for i, r := range spec.Rows {
		if err := table.Add(r.TO, r.PO...); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	e.publish(version, table, cacheCap)
	return e, nil
}

// freshTable builds an empty table over the entry's schema, converting
// compile panics (preference cycles) into errors.
func (e *tableEntry) freshTable() (t *tss.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return tss.NewTable(e.toCols, e.orders...), nil
}

// publish seals table, prepares its dynamic database, attaches a fresh
// full-skyline memo for the planner's cache routing (snapshot-scoped:
// the memo describes exactly this row set) and swaps the new snapshot
// in. Callers hold writeMu (or own the entry exclusively).
func (e *tableEntry) publish(version int64, table *tss.Table, cacheCap int) {
	table.Seal()
	table.SetQueryCache(plan.NewMemoCache())
	dyn := table.PrepareDynamic()
	dyn.EnableCache(cacheCap)
	e.snap.Store(&snapshot{version: version, table: table, dyn: dyn})
}

// current returns the snapshot serving reads right now.
func (e *tableEntry) current() *snapshot { return e.snap.Load() }

// applyBatch atomically applies a batched mutation. The next snapshot
// is *derived*, not rebuilt: Table.ApplyBatch copies the row header
// (removals first — by current-snapshot row index — then appends,
// survivors renumbered) and Dynamic.ApplyDelta maintains the prepared
// group indexes incrementally, copy-on-write, in O(batch·log N).
// Reads issued while this runs are served by the old snapshot.
//
// persist, when non-nil, is called with the produced version *before*
// the snapshot is published; an error aborts the swap, so every
// version a client ever observes is in the log. This is the serving
// layer's write-ahead contract.
func (e *tableEntry) applyBatch(req BatchRequest, persist func(version int64) error) (BatchResponse, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.current()

	// A no-op batch must not rebuild the dynamic database or discard
	// the warm result cache.
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		return BatchResponse{Table: e.name, Version: cur.version, Rows: cur.table.Len()}, nil
	}

	adds := make([]tss.TableRow, len(req.Add))
	for i, r := range req.Add {
		adds[i] = tss.TableRow{TO: r.TO, PO: r.PO}
	}
	next, delta, err := cur.table.ApplyBatch(req.Remove, adds)
	if err != nil {
		return BatchResponse{}, err
	}
	next.Seal()
	next.SetQueryCache(plan.NewMemoCache()) // new row set, fresh memo
	dyn := cur.dyn.ApplyDelta(next, delta)

	version := cur.version + 1
	if persist != nil {
		if err := persist(version); err != nil {
			return BatchResponse{}, err
		}
	}
	e.snap.Store(&snapshot{version: version, table: next, dyn: dyn})
	e.mutations.Add(1)
	return BatchResponse{
		Table:   e.name,
		Version: version,
		Rows:    next.Len(),
		Added:   delta.Added,
		Removed: delta.OldLen - (delta.NewLen - delta.Added),
	}, nil
}

// info renders the entry for /tables and /statsz.
func (e *tableEntry) info() TableInfo {
	s := e.current()
	return TableInfo{
		Name:      e.name,
		Version:   s.version,
		Rows:      s.table.Len(),
		Groups:    s.dyn.Groups(),
		TOColumns: append([]string(nil), e.toCols...),
		Orders:    append([]OrderSpec(nil), e.orderSpecs...),
		Stats: TableStats{
			Queries:     e.queries.Load(),
			Mutations:   e.mutations.Load(),
			CacheHits:   e.cacheHits.Load(),
			CacheMisses: e.cacheMisses.Load(),
		},
	}
}

// queryOrders builds per-request preference Orders over the table's
// value labels, converting label/cycle panics into errors.
func (e *tableEntry) queryOrders(reqOrders []QueryOrder) ([]*tss.Order, error) {
	if len(reqOrders) != len(e.orderSpecs) {
		return nil, fmt.Errorf("query has %d orders, table has %d PO columns",
			len(reqOrders), len(e.orderSpecs))
	}
	specs := make([]OrderSpec, len(reqOrders))
	for d, q := range reqOrders {
		specs[d] = OrderSpec{Values: e.orderSpecs[d].Values, Edges: q.Edges}
	}
	return buildOrders(specs)
}

// poColName returns the display/lookup name of PO column d: the
// OrderSpec's name, or the positional fallback "po<d>".
func (e *tableEntry) poColName(d int) string {
	if n := e.orderSpecs[d].Name; n != "" {
		return n
	}
	return fmt.Sprintf("po%d", d)
}

// lookupCol resolves a column name: TO columns by their declared name,
// PO columns by their OrderSpec name or "po<d>" fallback.
func (e *tableEntry) lookupCol(name string) (dim int, isTO bool, err error) {
	for d, c := range e.toCols {
		if c == name {
			return d, true, nil
		}
	}
	for d := range e.orderSpecs {
		if e.poColName(d) == name {
			return d, false, nil
		}
	}
	return 0, false, fmt.Errorf("unknown column %q", name)
}

// planQuery translates a planner-mode request into the plan package's
// logical query, resolving column names and PO value labels. The wire
// parallelism contract matches the CLI flag: > 0 forces that many
// shards, < 0 forces one shard per *server* CPU, 0 lets the planner
// decide — so `tssquery -parallel -1` means the same thing locally and
// against a server.
func (e *tableEntry) planQuery(req QueryRequest) (plan.Query, error) {
	par := req.Parallel
	if par < 0 {
		par = runtime.GOMAXPROCS(0)
	}
	q := plan.Query{
		TopK:  req.TopK,
		Rank:  plan.Rank(req.Rank),
		Ideal: req.Ideal,
		Hints: plan.Hints{Algorithm: req.Algo, Parallelism: par},
	}
	if len(req.Subspace) > 0 {
		s := &plan.Subspace{}
		for _, name := range req.Subspace {
			dim, isTO, err := e.lookupCol(name)
			if err != nil {
				return plan.Query{}, fmt.Errorf("subspace: %w", err)
			}
			if isTO {
				s.TO = append(s.TO, dim)
			} else {
				s.PO = append(s.PO, dim)
			}
		}
		s.TO = plan.NormalizeDims(s.TO)
		s.PO = plan.NormalizeDims(s.PO)
		q.Subspace = s
	}
	for i, w := range req.Where {
		dim, isTO, err := e.lookupCol(w.Col)
		if err != nil {
			return plan.Query{}, fmt.Errorf("where[%d]: %w", i, err)
		}
		switch {
		case len(w.In) > 0:
			if isTO {
				return plan.Query{}, fmt.Errorf("where[%d]: `in` needs a PO column, %q is totally ordered", i, w.Col)
			}
			if w.Le != nil || w.Ge != nil {
				return plan.Query{}, fmt.Errorf("where[%d]: `in` cannot combine with le/ge", i)
			}
			pr := plan.Predicate{Kind: plan.POIn, Dim: dim}
			for _, label := range w.In {
				id, ok := e.poIndex[dim][label]
				if !ok {
					return plan.Query{}, fmt.Errorf("where[%d]: unknown value %q for column %q", i, label, w.Col)
				}
				pr.In = append(pr.In, int32(id))
			}
			q.Where = append(q.Where, pr)
		case w.Le != nil || w.Ge != nil:
			if !isTO {
				return plan.Query{}, fmt.Errorf("where[%d]: le/ge need a TO column, %q is partially ordered", i, w.Col)
			}
			pr := plan.Predicate{Kind: plan.TORange, Dim: dim}
			if w.Ge != nil {
				pr.HasLo, pr.Lo = true, *w.Ge
			}
			if w.Le != nil {
				pr.HasHi, pr.Hi = true, *w.Le
			}
			q.Where = append(q.Where, pr)
		default:
			return plan.Query{}, fmt.Errorf("where[%d]: no le/ge/in on column %q", i, w.Col)
		}
	}
	return q, nil
}

// skylineRows renders result row indexes with their values from the
// snapshot that produced them.
func skylineRows(s *snapshot, rows []int, limit int) []SkylineRow {
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out := make([]SkylineRow, len(rows))
	for i, r := range rows {
		to, po := s.table.RowValues(r)
		out[i] = SkylineRow{Row: r, TO: to, PO: po}
	}
	return out
}
