// Package serve is the HTTP/JSON skyline query server behind
// cmd/tssserve: an in-memory catalog of named tables, each published as
// an immutable copy-on-write snapshot (a sealed tss.Table plus its
// prepared dynamic-query database), so any number of concurrent readers
// query lock-free while batched mutations build the next snapshot aside
// and atomically swap it in.
//
// Consistency model: a query is answered entirely by one snapshot — the
// one current when the request reached the table — and the response
// carries that snapshot's version. Row indexes are snapshot-scoped.
// Mutations are serialized per table and never touch a published
// snapshot; in-flight queries keep reading the version they started on.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	tss "repro"
)

// snapshot is one immutable published state of a table. The table is
// sealed (all lazily built per-domain indexes precompiled) and the
// dynamic database prepared with its result cache, so serving a
// snapshot never writes shared memory.
type snapshot struct {
	version int64
	table   *tss.Table
	dyn     *tss.Dynamic
}

// tableEntry is a catalog slot: the current snapshot behind an atomic
// pointer (readers), a mutation lock (writers), and traffic counters.
type tableEntry struct {
	name       string
	toCols     []string
	orderSpecs []OrderSpec
	orders     []*tss.Order // compiled base orders, shared by all snapshots

	writeMu sync.Mutex // serializes mutations; readers never take it
	snap    atomic.Pointer[snapshot]

	queries   atomic.Int64
	mutations atomic.Int64
	// Cache counters, accumulated per served query (on the response's
	// CacheHit flag) rather than read from the snapshots' own caches:
	// snapshots retire while queries are still in flight on them, so
	// folding their internal stats at swap time would race and lose
	// counts. These stay exact and cumulative across swaps.
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// buildOrders compiles OrderSpecs into tss Orders, converting the
// facade's construction panics (duplicate labels, unknown edge labels,
// preference cycles) into errors a handler can return as 400s.
func buildOrders(specs []OrderSpec) (orders []*tss.Order, err error) {
	defer func() {
		if r := recover(); r != nil {
			orders, err = nil, fmt.Errorf("%v", r)
		}
	}()
	for _, spec := range specs {
		o := tss.NewOrder(spec.Values...)
		for _, e := range spec.Edges {
			o.Prefer(e[0], e[1])
		}
		orders = append(orders, o)
	}
	return orders, nil
}

// newTableEntry validates a spec, builds the initial snapshot and
// returns the ready entry. cacheCap sizes the dynamic result cache.
func newTableEntry(spec TableSpec, cacheCap int) (*tableEntry, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("table name is required")
	}
	// The dynamic database indexes each PO group's rows by their TO
	// coordinates, so a served table needs at least one TO column.
	if len(spec.TOColumns) == 0 {
		return nil, fmt.Errorf("table %q needs at least one totally ordered column", spec.Name)
	}
	orders, err := buildOrders(spec.Orders)
	if err != nil {
		return nil, err
	}
	if spec.CacheCapacity > 0 {
		cacheCap = spec.CacheCapacity
	}
	e := &tableEntry{
		name:       spec.Name,
		toCols:     append([]string(nil), spec.TOColumns...),
		orderSpecs: append([]OrderSpec(nil), spec.Orders...),
		orders:     orders,
	}
	table, err := e.freshTable()
	if err != nil {
		return nil, err
	}
	for i, r := range spec.Rows {
		if err := table.Add(r.TO, r.PO...); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	e.publish(0, table, cacheCap)
	return e, nil
}

// freshTable builds an empty table over the entry's schema, converting
// compile panics (preference cycles) into errors.
func (e *tableEntry) freshTable() (t *tss.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return tss.NewTable(e.toCols, e.orders...), nil
}

// publish seals table, prepares its dynamic database and swaps the new
// snapshot in. Callers hold writeMu (or own the entry exclusively).
func (e *tableEntry) publish(version int64, table *tss.Table, cacheCap int) {
	table.Seal()
	dyn := table.PrepareDynamic()
	dyn.EnableCache(cacheCap)
	e.snap.Store(&snapshot{version: version, table: table, dyn: dyn})
}

// current returns the snapshot serving reads right now.
func (e *tableEntry) current() *snapshot { return e.snap.Load() }

// applyBatch atomically applies a batched mutation: removals (by
// current-snapshot row index) first, then appends, then the re-prepare
// hook rebuilds the dynamic database and the snapshot pointer swaps.
// Reads issued while this runs are served by the old snapshot.
func (e *tableEntry) applyBatch(req BatchRequest) (BatchResponse, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	cur := e.current()

	// A no-op batch must not rebuild the dynamic database or discard
	// the warm result cache.
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		return BatchResponse{Table: e.name, Version: cur.version, Rows: cur.table.Len()}, nil
	}

	var next *tss.Table
	removed := 0
	if len(req.Remove) == 0 {
		next = cur.table.Clone()
	} else {
		drop := make(map[int]bool, len(req.Remove))
		for _, i := range req.Remove {
			if i < 0 || i >= cur.table.Len() {
				return BatchResponse{}, fmt.Errorf("remove index %d out of range [0, %d)", i, cur.table.Len())
			}
			drop[i] = true
		}
		removed = len(drop)
		next = cur.table.Filter(func(i int) bool { return !drop[i] })
	}
	for i, r := range req.Add {
		if err := next.Add(r.TO, r.PO...); err != nil {
			return BatchResponse{}, fmt.Errorf("add row %d: %w", i, err)
		}
	}

	next.Seal()
	dyn := cur.dyn.Reprepare(next)
	e.snap.Store(&snapshot{version: cur.version + 1, table: next, dyn: dyn})
	e.mutations.Add(1)
	return BatchResponse{
		Table:   e.name,
		Version: cur.version + 1,
		Rows:    next.Len(),
		Added:   len(req.Add),
		Removed: removed,
	}, nil
}

// info renders the entry for /tables and /statsz.
func (e *tableEntry) info() TableInfo {
	s := e.current()
	return TableInfo{
		Name:      e.name,
		Version:   s.version,
		Rows:      s.table.Len(),
		Groups:    s.dyn.Groups(),
		TOColumns: append([]string(nil), e.toCols...),
		Orders:    append([]OrderSpec(nil), e.orderSpecs...),
		Stats: TableStats{
			Queries:     e.queries.Load(),
			Mutations:   e.mutations.Load(),
			CacheHits:   e.cacheHits.Load(),
			CacheMisses: e.cacheMisses.Load(),
		},
	}
}

// queryOrders builds per-request preference Orders over the table's
// value labels, converting label/cycle panics into errors.
func (e *tableEntry) queryOrders(reqOrders []QueryOrder) ([]*tss.Order, error) {
	if len(reqOrders) != len(e.orderSpecs) {
		return nil, fmt.Errorf("query has %d orders, table has %d PO columns",
			len(reqOrders), len(e.orderSpecs))
	}
	specs := make([]OrderSpec, len(reqOrders))
	for d, q := range reqOrders {
		specs[d] = OrderSpec{Values: e.orderSpecs[d].Values, Edges: q.Edges}
	}
	return buildOrders(specs)
}

// skylineRows renders result row indexes with their values from the
// snapshot that produced them.
func skylineRows(s *snapshot, rows []int, limit int) []SkylineRow {
	if limit > 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out := make([]SkylineRow, len(rows))
	for i, r := range rows {
		to, po := s.table.RowValues(r)
		out[i] = SkylineRow{Row: r, TO: to, PO: po}
	}
	return out
}
