package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/poset"
)

// SpecFromCSVDir builds a TableSpec from a tssgen output directory:
// <dir>/data.csv plus one <dir>/dag_<d>.txt per po_* column. PO value
// labels are the integer ids of the DAG files ("0", "1", …), matching
// the CSV's own encoding, so the same workloads drive the CLIs and the
// server interchangeably.
func SpecFromCSVDir(name, dir string) (TableSpec, error) {
	var dagPaths []string
	for d := 0; ; d++ {
		p := filepath.Join(dir, fmt.Sprintf("dag_%d.txt", d))
		if _, err := os.Stat(p); err != nil {
			break
		}
		dagPaths = append(dagPaths, p)
	}
	domains, err := data.ReadDomains(dagPaths)
	if err != nil {
		return TableSpec{}, err
	}
	ds, err := data.ReadCSVDataset(filepath.Join(dir, "data.csv"), domains)
	if err != nil {
		return TableSpec{}, fmt.Errorf("read %s: %w", filepath.Join(dir, "data.csv"), err)
	}
	if err := ds.Validate(); err != nil {
		return TableSpec{}, err
	}
	return SpecFromDataset(name, ds), nil
}

// SpecFromDataset converts a core dataset into the wire form: to_*/po_*
// column names and integer-id PO labels, the same encoding the CSV
// files use. The thin client (tssquery -serve -data) uses it to upload
// local workloads.
func SpecFromDataset(name string, ds *core.Dataset) TableSpec {
	spec := TableSpec{Name: name}
	for d := 0; d < ds.NumTO(); d++ {
		spec.TOColumns = append(spec.TOColumns, fmt.Sprintf("to_%d", d))
	}
	for d, dom := range ds.Domains {
		spec.Orders = append(spec.Orders, OrderSpecFromDAG(fmt.Sprintf("po_%d", d), dom.DAG()))
	}
	for i := range ds.Pts {
		p := &ds.Pts[i]
		row := RowSpec{TO: make([]int64, len(p.TO))}
		for d, v := range p.TO {
			row.TO[d] = int64(v)
		}
		for _, v := range p.PO {
			row.PO = append(row.PO, strconv.Itoa(int(v)))
		}
		spec.Rows = append(spec.Rows, row)
	}
	return spec
}

// OrderSpecFromDAG renders a DAG as an OrderSpec with integer-id labels
// — the wire form of tssgen's DAG files.
func OrderSpecFromDAG(name string, dag *poset.DAG) OrderSpec {
	spec := OrderSpec{Name: name}
	for v := 0; v < dag.N(); v++ {
		spec.Values = append(spec.Values, strconv.Itoa(v))
	}
	for v := 0; v < dag.N(); v++ {
		for _, u := range dag.Out(v) {
			spec.Edges = append(spec.Edges, [2]string{strconv.Itoa(v), strconv.Itoa(int(u))})
		}
	}
	return spec
}

// LoadCSVDir creates a catalog table from a tssgen output directory.
func (s *Server) LoadCSVDir(name, dir string) (TableInfo, error) {
	spec, err := SpecFromCSVDir(name, dir)
	if err != nil {
		return TableInfo{}, err
	}
	return s.CreateTable(spec)
}
