package serve

import (
	"fmt"
	"net/http"
	"sort"
	"testing"

	"repro/internal/plan"
	"repro/internal/store"
)

func queryRows(resp QueryResponse) []int {
	rows := make([]int, len(resp.Skyline))
	for i, r := range resp.Skyline {
		rows[i] = r.Row
	}
	sort.Ints(rows)
	return rows
}

func i64(v int64) *int64 { return &v }

// TestPlanQueryEndpoint drives every variant of the planner path over
// the Figure 1 flights table, against hand-derived expectations.
func TestPlanQueryEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/tables/flights/query"

	cases := []struct {
		name string
		req  QueryRequest
		want []int
	}{
		// Table I static skyline, through the planner.
		{"full", QueryRequest{Explain: true}, []int{0, 4, 5, 8, 9}},
		// price ≤ 1200 keeps rows 3,5,6,8,9; their skyline is 5,8,9.
		{"constrained-to", QueryRequest{Where: []WhereSpec{{Col: "price", Le: i64(1200)}}}, []int{5, 8, 9}},
		// airline ∈ {a,b} keeps rows 0..5; their skyline is 0,4,5.
		{"constrained-po", QueryRequest{Where: []WhereSpec{{Col: "airline", In: []string{"a", "b"}}}}, []int{0, 4, 5}},
		// price alone: the cheapest ticket wins.
		{"subspace-to", QueryRequest{Subspace: []string{"price"}}, []int{8}},
		// price + airline (stops projected away).
		{"subspace-mixed", QueryRequest{Subspace: []string{"price", "airline"}}, []int{4, 5, 8, 9}},
		// Forced algorithm still answers exactly.
		{"forced-bnl", QueryRequest{Algo: "bnl"}, []int{0, 4, 5, 8, 9}},
		// Non-anti-monotone lower bound: rows with price ≥ 1400 are
		// 0,1,4,7; their skyline is 0 (1800,0,a) and 4 (1400,1,a).
		{"constrained-lower", QueryRequest{Where: []WhereSpec{{Col: "price", Ge: i64(1400)}}}, []int{0, 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp QueryResponse
			if code := doJSON(t, http.MethodPost, url, tc.req, &resp); code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
			if got := queryRows(resp); fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Fatalf("rows %v, want %v", got, tc.want)
			}
			if resp.Count != len(tc.want) || resp.Algo == "" {
				t.Fatalf("count %d algo %q", resp.Count, resp.Algo)
			}
		})
	}

	// Top-k: two rows, both members of the full skyline; explain
	// reports the decisions.
	full := map[int]bool{0: true, 4: true, 5: true, 8: true, 9: true}
	for _, rank := range []string{"", "domcount", "ideal"} {
		req := QueryRequest{TopK: 2, Rank: rank, Explain: true}
		if rank == "ideal" {
			req.Ideal = []int64{500, 0}
		}
		var resp QueryResponse
		if code := doJSON(t, http.MethodPost, url, req, &resp); code != http.StatusOK {
			t.Fatalf("topk rank %q: status %d", rank, code)
		}
		if len(resp.Skyline) != 2 {
			t.Fatalf("topk rank %q: %d rows", rank, len(resp.Skyline))
		}
		for _, r := range resp.Skyline {
			if !full[r.Row] {
				t.Fatalf("topk rank %q: row %d outside the skyline", rank, r.Row)
			}
		}
		if resp.Plan == nil || resp.Plan.Algorithm == "" || resp.Plan.Variant != "top-k" {
			t.Fatalf("topk rank %q: plan %+v", rank, resp.Plan)
		}
	}
}

// TestPlanQueryExplainAndCacheRouting pins the optimizer's observable
// decisions: cold constrained queries push down; once a full query has
// warmed the snapshot's skyline memo, an anti-monotone constrained
// query is served post-filter from the cache, while a lower-bounded
// (non-anti-monotone) one still pushes down.
func TestPlanQueryExplainAndCacheRouting(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/tables/flights/query"
	am := QueryRequest{Where: []WhereSpec{{Col: "price", Le: i64(1200)}}, Explain: true}

	var cold QueryResponse
	doJSON(t, http.MethodPost, url, am, &cold)
	if cold.Plan == nil || cold.Plan.Route != plan.RoutePushdown || !cold.Plan.AntiMonotone {
		t.Fatalf("cold constrained plan: %+v", cold.Plan)
	}

	var fullResp QueryResponse
	doJSON(t, http.MethodPost, url, QueryRequest{Explain: true}, &fullResp)
	if fullResp.CacheHit {
		t.Fatal("first full query reported a cache hit")
	}

	var warm QueryResponse
	doJSON(t, http.MethodPost, url, am, &warm)
	if warm.Plan == nil || warm.Plan.Route != plan.RoutePostFilter || !warm.CacheHit {
		t.Fatalf("warm constrained plan: %+v cacheHit=%v", warm.Plan, warm.CacheHit)
	}
	if fmt.Sprint(queryRows(warm)) != fmt.Sprint(queryRows(cold)) {
		t.Fatalf("post-filter answer %v differs from pushdown %v", queryRows(warm), queryRows(cold))
	}

	nonAM := QueryRequest{Where: []WhereSpec{{Col: "price", Ge: i64(1400)}}, Explain: true}
	var lower QueryResponse
	doJSON(t, http.MethodPost, url, nonAM, &lower)
	if lower.Plan == nil || lower.Plan.Route != plan.RoutePushdown || lower.Plan.AntiMonotone || lower.CacheHit {
		t.Fatalf("non-anti-monotone plan: %+v cacheHit=%v", lower.Plan, lower.CacheHit)
	}

	// A batch advances the memo across the delta instead of dropping
	// it: the post-batch full query is a *maintained* cache hit — same
	// answer as a cold recompute on the new snapshot.
	var batch BatchResponse
	doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
		BatchRequest{Add: []RowSpec{{TO: []int64{400, 3}, PO: []string{"d"}}}}, &batch)
	var after QueryResponse
	doJSON(t, http.MethodPost, url, QueryRequest{Explain: true}, &after)
	if !after.CacheHit || after.Plan == nil || !after.Plan.Maintained {
		t.Fatalf("full query after a batch: cacheHit=%v plan=%+v, want maintained hit", after.CacheHit, after.Plan)
	}
	if after.Version != batch.Version {
		t.Fatalf("served version %d, batch produced %d", after.Version, batch.Version)
	}
	var afterCold QueryResponse
	doJSON(t, http.MethodPost, url, QueryRequest{Explain: true, NoCache: true}, &afterCold)
	if fmt.Sprint(queryRows(after)) != fmt.Sprint(queryRows(afterCold)) {
		t.Fatalf("maintained answer %v differs from cold recompute %v", queryRows(after), queryRows(afterCold))
	}
}

// TestPlanQueryErrors: every malformed planner request is a 400 with a
// diagnostic, and a bare {} keeps its legacy dTSS meaning.
func TestPlanQueryErrors(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/tables/flights/query"
	bad := []QueryRequest{
		{Subspace: []string{"bogus"}},
		{Where: []WhereSpec{{Col: "bogus", Le: i64(1)}}},
		{Where: []WhereSpec{{Col: "airline", Le: i64(1)}}},      // le on a PO column
		{Where: []WhereSpec{{Col: "price", In: []string{"a"}}}}, // in on a TO column
		{Where: []WhereSpec{{Col: "airline", In: []string{"z"}}}},
		{Where: []WhereSpec{{Col: "price"}}}, // no bounds
		{TopK: 2, Rank: "bogus"},
		{Rank: "domcount"}, // rank without topK
		{Algo: "bogus"},
		{Algo: "salsa"},                 // TO-only algorithm on a PO table
		{Subspace: []string{"airline"}}, // no TO column kept
	}
	for i, req := range bad {
		var e errorResponse
		if code := doJSON(t, http.MethodPost, url, req, &e); code != http.StatusBadRequest {
			t.Errorf("bad request %d (%+v): status %d (error %q)", i, req, code, e.Error)
		}
	}

	// Legacy: a bare {} still routes to the dynamic path — on this
	// table that means "orders required" (400), exactly as before.
	var e errorResponse
	if code := doJSON(t, http.MethodPost, url, QueryRequest{}, &e); code != http.StatusBadRequest {
		t.Fatalf("bare query: status %d", code)
	}

	// Mixing modes must be refused, not silently half-applied: orders
	// plus any planner field is a 400 naming the conflict.
	mixed := QueryRequest{
		Orders: []QueryOrder{{Edges: [][2]string{{"b", "a"}}}},
		TopK:   2,
	}
	if code := doJSON(t, http.MethodPost, url, mixed, &e); code != http.StatusBadRequest {
		t.Fatalf("orders+topK: status %d (want 400, error %q)", code, e.Error)
	}
}

// TestCreateRejectsColumnNameCollisions: the planner addresses columns
// through one shared namespace, so a table whose names collide across
// kinds (or with the po<d> fallback) is refused at creation.
func TestCreateRejectsColumnNameCollisions(t *testing.T) {
	order := OrderSpec{Name: "grade", Values: []string{"a", "b"}}
	cases := []TableSpec{
		{Name: "t", TOColumns: []string{"grade"}, Orders: []OrderSpec{order}},
		{Name: "t", TOColumns: []string{"x", "x"}},
		{Name: "t", TOColumns: []string{"po0"}, Orders: []OrderSpec{{Values: []string{"a"}}}},
		{Name: "t", TOColumns: []string{"x"}, Orders: []OrderSpec{
			{Name: "po1", Values: []string{"a"}}, {Values: []string{"a"}}}}, // named "po1" collides with fallback of column 1
	}
	s := New(4)
	for i, spec := range cases {
		if _, err := s.CreateTable(spec); err == nil {
			t.Errorf("case %d (%+v): colliding column names accepted", i, spec)
		}
	}
}

// TestLearnedStatsPersistAcrossRestart: planner feedback observed
// before a checkpoint comes back after recovery — the cost multipliers
// resume instead of restarting cold.
func TestLearnedStatsPersistAcrossRestart(t *testing.T) {
	st := store.NewMem()
	s := NewWithConfig(Config{Store: st})
	if _, err := s.CreateTable(flightsSpec("flights")); err != nil {
		t.Fatal(err)
	}
	e, _ := s.table("flights")
	// Observed feedback lands in the shared Learned store...
	if _, _, err := e.current().table.Query(plan.Query{}); err != nil {
		t.Fatal(err)
	}
	if frac, ok := e.current().table.Learned().SkylineFrac(plan.FullVariant); !ok || frac <= 0 {
		t.Fatalf("no skyline fraction observed (ok=%v frac=%f)", ok, frac)
	}
	// ...and a checkpoint persists it.
	img, err := e.storeSnapshot(e.current())
	if err != nil {
		t.Fatal(err)
	}
	if img.Stats == nil || img.Stats.SkyFracN == 0 {
		t.Fatalf("checkpoint carries no stats: %+v", img.Stats)
	}
	if err := st.SaveSnapshot("flights", img); err != nil {
		t.Fatal(err)
	}

	s2 := NewWithConfig(Config{Store: st})
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	e2, ok := s2.table("flights")
	if !ok {
		t.Fatal("table not recovered")
	}
	frac, ok := e2.current().table.Learned().SkylineFrac(plan.FullVariant)
	if !ok || frac <= 0 {
		t.Fatalf("recovered table lost its learned stats (ok=%v frac=%f)", ok, frac)
	}
	want, _ := e.current().table.Learned().SkylineFrac(plan.FullVariant)
	if frac != want {
		t.Fatalf("recovered skyline fraction %f, want %f", frac, want)
	}
}
