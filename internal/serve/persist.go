package serve

import (
	"fmt"

	"repro/internal/plan"
	"repro/internal/store"
)

// Conversions between the serving layer's wire/table types and the
// storage engine's columnar records. The storage schema keeps PO
// values as integer ids into each order's label list, so the label
// maps of the table entry translate in both directions.

// storeSchema renders the entry's schema in storage form.
func (e *tableEntry) storeSchema() store.Schema {
	sch := store.Schema{TOColumns: append([]string(nil), e.schema.toCols...)}
	for d, spec := range e.schema.orderSpecs {
		o := store.OrderSchema{Name: spec.Name, Values: append([]string(nil), spec.Values...)}
		for _, edge := range spec.Edges {
			o.Edges = append(o.Edges, [2]int32{
				int32(e.schema.poIndex[d][edge[0]]),
				int32(e.schema.poIndex[d][edge[1]]),
			})
		}
		sch.Orders = append(sch.Orders, o)
	}
	return sch
}

// storeRows converts row specs to columnar storage form, resolving PO
// labels to value ids. Row shape must already be validated (the table
// accepted these rows).
func (e *tableEntry) storeRows(rows []RowSpec) (store.Rows, error) {
	out := store.Rows{
		TO: make([][]int64, len(e.schema.toCols)),
		PO: make([][]int32, len(e.schema.orderSpecs)),
	}
	for c := range out.TO {
		out.TO[c] = make([]int64, 0, len(rows))
	}
	for c := range out.PO {
		out.PO[c] = make([]int32, 0, len(rows))
	}
	for i, r := range rows {
		if len(r.TO) != len(e.schema.toCols) || len(r.PO) != len(e.schema.orderSpecs) {
			return store.Rows{}, fmt.Errorf("row %d: %d TO / %d PO values, schema has %d / %d",
				i, len(r.TO), len(r.PO), len(e.schema.toCols), len(e.schema.orderSpecs))
		}
		for c, v := range r.TO {
			out.TO[c] = append(out.TO[c], v)
		}
		for c, label := range r.PO {
			id, ok := e.schema.poIndex[c][label]
			if !ok {
				return store.Rows{}, fmt.Errorf("row %d: unknown PO value %q", i, label)
			}
			out.PO[c] = append(out.PO[c], int32(id))
		}
	}
	return out, nil
}

// storeSnapshot captures one published snapshot in storage form.
func (e *tableEntry) storeSnapshot(snap *snapshot) (*store.Snapshot, error) {
	rows := make([]RowSpec, snap.table.Len())
	for i := range rows {
		to, po := snap.table.RowValues(i)
		rows[i] = RowSpec{TO: to, PO: po}
	}
	cols, err := e.storeRows(rows)
	if err != nil {
		return nil, err
	}
	return &store.Snapshot{
		Version:       snap.version,
		Schema:        e.storeSchema(),
		Rows:          cols,
		CacheCapacity: e.specCacheCap,
		Stats:         learnedRecord(snap.table.Learned()),
	}, nil
}

// learnedRecord renders the planner's feedback store for persistence
// (nil when nothing has been observed yet — the snapshot then encodes
// without a stats section).
func learnedRecord(l *plan.Learned) *store.TableStatsRecord {
	st := l.Export()
	if st.SkyFracN == 0 && len(st.Algos) == 0 {
		return nil
	}
	rec := &store.TableStatsRecord{SkyFrac: st.SkyFrac, SkyFracN: st.SkyFracN}
	for _, a := range st.Algos {
		rec.Algos = append(rec.Algos, store.AlgoCostRecord{Name: a.Name, Mult: a.Mult, N: a.N})
	}
	return rec
}

// importLearned rebuilds the feedback store from a recovered snapshot
// (nil record → fresh store semantics via a nil return).
func importLearned(rec *store.TableStatsRecord) *plan.Learned {
	if rec == nil {
		return nil
	}
	st := plan.LearnedState{SkyFrac: rec.SkyFrac, SkyFracN: rec.SkyFracN}
	for _, a := range rec.Algos {
		st.Algos = append(st.Algos, plan.AlgoCost{Name: a.Name, Mult: a.Mult, N: a.N})
	}
	return plan.ImportLearned(st)
}

// mutationRecord renders a validated batch request as a WAL record
// producing the given version.
func (e *tableEntry) mutationRecord(version int64, req BatchRequest) (*store.Mutation, error) {
	add, err := e.storeRows(req.Add)
	if err != nil {
		return nil, err
	}
	m := &store.Mutation{Version: version, Add: add}
	for _, r := range req.Remove {
		m.Remove = append(m.Remove, int32(r))
	}
	return m, nil
}

// specFromStore reconstructs the wire-form table spec from a recovered
// storage snapshot; the entry built from it is then published at the
// snapshot's version.
func specFromStore(name string, s *store.Snapshot) (TableSpec, error) {
	spec := TableSpec{
		Name:          name,
		TOColumns:     append([]string(nil), s.Schema.TOColumns...),
		CacheCapacity: s.CacheCapacity,
	}
	for _, o := range s.Schema.Orders {
		os := OrderSpec{Name: o.Name, Values: append([]string(nil), o.Values...)}
		for _, e := range o.Edges {
			if int(e[0]) >= len(o.Values) || int(e[1]) >= len(o.Values) {
				return TableSpec{}, fmt.Errorf("edge (%d,%d) outside %d values", e[0], e[1], len(o.Values))
			}
			os.Edges = append(os.Edges, [2]string{o.Values[e[0]], o.Values[e[1]]})
		}
		spec.Orders = append(spec.Orders, os)
	}
	n := s.Rows.N()
	for i := 0; i < n; i++ {
		r := RowSpec{TO: make([]int64, len(s.Rows.TO))}
		for c := range s.Rows.TO {
			r.TO[c] = s.Rows.TO[c][i]
		}
		for c := range s.Rows.PO {
			r.PO = append(r.PO, s.Schema.Orders[c].Values[s.Rows.PO[c][i]])
		}
		spec.Rows = append(spec.Rows, r)
	}
	return spec, nil
}
