package serve

import "repro/internal/core"

// Wire types of the tssserve HTTP/JSON API. Every request and response
// body is one of these; field names are the contract documented in the
// README's tssserve section.

// OrderSpec describes one partially ordered column: its value labels
// plus the preference edges ([better, worse] label pairs, transitive).
type OrderSpec struct {
	Name   string      `json:"name,omitempty"`
	Values []string    `json:"values"`
	Edges  [][2]string `json:"edges,omitempty"`
}

// RowSpec is one row: TO column values (smaller = better) and one PO
// value label per order.
type RowSpec struct {
	TO []int64  `json:"to"`
	PO []string `json:"po,omitempty"`
}

// TableSpec creates a table (POST /tables).
type TableSpec struct {
	Name      string      `json:"name"`
	TOColumns []string    `json:"toColumns"`
	Orders    []OrderSpec `json:"orders,omitempty"`
	Rows      []RowSpec   `json:"rows,omitempty"`
	// CacheCapacity sizes the table's dynamic-query result cache
	// (0 = the server default).
	CacheCapacity int `json:"cacheCapacity,omitempty"`
}

// TableInfo describes a table (GET /tables/{name}, /tables, /statsz).
type TableInfo struct {
	Name      string      `json:"name"`
	Version   int64       `json:"version"`
	Rows      int         `json:"rows"`
	Groups    int         `json:"groups"`
	TOColumns []string    `json:"toColumns"`
	Orders    []OrderSpec `json:"orders,omitempty"`
	Stats     TableStats  `json:"stats"`
}

// TableStats carries a table's served-traffic counters. Cache counters
// count served dynamic queries by their cache outcome, so they are
// exact and cumulative across snapshot swaps (a batch mutation
// rebuilds the prepared database with a fresh cache, but these
// counters never reset).
type TableStats struct {
	Queries     int64 `json:"queries"`
	Mutations   int64 `json:"mutations"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
}

// BatchRequest mutates rows (POST /tables/{name}/rows:batch). Remove
// lists row indexes of the *current* snapshot; removals are applied
// first, then Add appends, and surviving rows are renumbered — row
// indexes are snapshot-scoped, so clients correlate them through the
// returned version.
type BatchRequest struct {
	Add    []RowSpec `json:"add,omitempty"`
	Remove []int     `json:"remove,omitempty"`
}

// BatchResponse reports the snapshot the batch produced.
type BatchResponse struct {
	Table   string `json:"table"`
	Version int64  `json:"version"`
	Rows    int    `json:"rows"`
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
}

// QueryOrder is a per-request preference DAG over one PO column's value
// labels (exactly the labels the table was created with).
type QueryOrder struct {
	Edges [][2]string `json:"edges"`
}

// QueryRequest is a dynamic skyline query (POST /tables/{name}/query):
// one preference DAG per PO column, an optional ideal point (one value
// per TO column) turning it into a fully dynamic query, and an optional
// baseline switch answering through the rebuild-everything SDC+
// adaptation instead of dTSS.
type QueryRequest struct {
	Orders   []QueryOrder `json:"orders"`
	Ideal    []int64      `json:"ideal,omitempty"`
	Baseline bool         `json:"baseline,omitempty"`
	// Limit truncates the rows serialized into the response (0 = all);
	// Count always reports the full skyline size.
	Limit int `json:"limit,omitempty"`
}

// SkylineRow is one skyline member with its snapshot-scoped row index
// and raw values.
type SkylineRow struct {
	Row int      `json:"row"`
	TO  []int64  `json:"to"`
	PO  []string `json:"po,omitempty"`
}

// QueryResponse answers skyline and query requests. Version identifies
// the snapshot that served the request; every row index refers to it.
type QueryResponse struct {
	Table    string             `json:"table"`
	Version  int64              `json:"version"`
	Rows     int                `json:"rows"`
	Count    int                `json:"count"`
	Skyline  []SkylineRow       `json:"skyline"`
	Metrics  core.MetricsExport `json:"metrics"`
	CacheHit bool               `json:"cacheHit,omitempty"`
	Algo     string             `json:"algo,omitempty"`
}

// StatsResponse is the /statsz body.
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Tables        []TableInfo `json:"tables"`
	TotalQueries  int64       `json:"totalQueries"`
	Algorithms    []string    `json:"algorithms"`
	// Durable reports whether a storage engine is attached (batches
	// WAL-logged before publishing, tables recovered on restart).
	Durable bool `json:"durable"`
	// CheckpointErrors counts failed best-effort checkpoints (the WAL
	// still holds the batches; only log compaction was deferred).
	CheckpointErrors int64 `json:"checkpointErrors,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}
