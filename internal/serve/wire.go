package serve

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// Wire types of the tssserve HTTP/JSON API. Every request and response
// body is one of these; field names are the contract documented in the
// README's tssserve section.

// OrderSpec describes one partially ordered column: its value labels
// plus the preference edges ([better, worse] label pairs, transitive).
type OrderSpec struct {
	Name   string      `json:"name,omitempty"`
	Values []string    `json:"values"`
	Edges  [][2]string `json:"edges,omitempty"`
}

// RowSpec is one row: TO column values (smaller = better) and one PO
// value label per order.
type RowSpec struct {
	TO []int64  `json:"to"`
	PO []string `json:"po,omitempty"`
}

// TableSpec creates a table (POST /tables).
type TableSpec struct {
	Name      string      `json:"name"`
	TOColumns []string    `json:"toColumns"`
	Orders    []OrderSpec `json:"orders,omitempty"`
	Rows      []RowSpec   `json:"rows,omitempty"`
	// CacheCapacity sizes the table's dynamic-query result cache
	// (0 = the server default).
	CacheCapacity int `json:"cacheCapacity,omitempty"`
	// Partition selects how a cluster coordinator spreads rows over its
	// shards. Only meaningful against a coordinator; a single-node
	// server rejects it rather than silently serving an unpartitioned
	// table.
	Partition *PartitionSpec `json:"partition,omitempty"`
}

// PartitionSpec configures a cluster table's row placement.
type PartitionSpec struct {
	// By is "hash" (default: FNV over the row's values, uniform) or
	// "range" (contiguous slices of one TO column — the sorted
	// partitioning that makes statistics-driven shard pruning bite).
	By string `json:"by,omitempty"`
	// Column names the TO column range partitioning splits on (default:
	// the first TO column).
	Column string `json:"column,omitempty"`
	// Bounds are the N-1 ascending split points of an N-shard range
	// partition: shard i serves values < Bounds[i], the last shard the
	// rest. Empty bounds are derived from the create's rows by equal
	// frequency.
	Bounds []int64 `json:"bounds,omitempty"`
}

// TableInfo describes a table (GET /tables/{name}, /tables, /statsz).
// Coordinator responses aggregate over shards: Version is the sum of
// the shard versions (monotonic under mutations) and Versions carries
// the per-shard version vector.
type TableInfo struct {
	Name      string      `json:"name"`
	Version   int64       `json:"version"`
	Rows      int         `json:"rows"`
	Groups    int         `json:"groups"`
	TOColumns []string    `json:"toColumns"`
	Orders    []OrderSpec `json:"orders,omitempty"`
	Stats     TableStats  `json:"stats"`
	Versions  []int64     `json:"versions,omitempty"`
}

// TableStats carries a table's served-traffic counters. Cache counters
// count served dynamic queries by their cache outcome, so they are
// exact and cumulative across snapshot swaps (a batch mutation
// rebuilds the prepared database with a fresh cache, but these
// counters never reset).
type TableStats struct {
	Queries     int64 `json:"queries"`
	Mutations   int64 `json:"mutations"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	// PlanCache splits the planner-path skyline-memo counters by route
	// (full / subspace / maintained) and carries the memo-maintenance
	// counters, so maintenance efficacy is observable per table.
	PlanCache PlanCacheStats `json:"planCache"`
}

// PlanCacheStats is the by-route breakdown of the planner's skyline
// memo plus its maintenance counters. Hits are exclusive: a maintained
// hit (entry carried across mutations by delta maintenance) is not also
// counted as a full or subspace hit. Misses count memo-cacheable
// queries (no predicates) that found no entry. Advances, Promotions,
// MaintFallbacks and SubspaceEvictions come from the memo lineage and
// are cumulative across the table's whole mutation history.
type PlanCacheStats struct {
	FullHits          int64 `json:"fullHits"`
	FullMisses        int64 `json:"fullMisses"`
	SubspaceHits      int64 `json:"subspaceHits"`
	SubspaceMisses    int64 `json:"subspaceMisses"`
	MaintainedHits    int64 `json:"maintainedHits"`
	Advances          int64 `json:"advances"`
	Promotions        int64 `json:"promotions"`
	MaintFallbacks    int64 `json:"maintFallbacks"`
	SubspaceEvictions int64 `json:"subspaceEvictions"`
	// SubspaceCapacity is the configured subspace-memo LRU cap (tssserve
	// -subspace-cache-cap; not a counter).
	SubspaceCapacity int `json:"subspaceCapacity,omitempty"`
	// Ranked top-k queries by where their scores came from: the
	// incrementally maintained score index, the memoised skyline (scored
	// on demand), or a cold skyline compute.
	RankedIndex int64 `json:"rankedIndex,omitempty"`
	RankedMemo  int64 `json:"rankedMemo,omitempty"`
	RankedCold  int64 `json:"rankedCold,omitempty"`
	// Score-index maintenance counters from the memo lineage (see
	// plan.MaintStats).
	IndexAdvances  int64 `json:"indexAdvances,omitempty"`
	IndexFallbacks int64 `json:"indexFallbacks,omitempty"`
}

// Add folds another shard's counters in (cluster aggregation).
func (p *PlanCacheStats) Add(o PlanCacheStats) {
	p.FullHits += o.FullHits
	p.FullMisses += o.FullMisses
	p.SubspaceHits += o.SubspaceHits
	p.SubspaceMisses += o.SubspaceMisses
	p.MaintainedHits += o.MaintainedHits
	p.Advances += o.Advances
	p.Promotions += o.Promotions
	p.MaintFallbacks += o.MaintFallbacks
	p.SubspaceEvictions += o.SubspaceEvictions
	if p.SubspaceCapacity == 0 {
		p.SubspaceCapacity = o.SubspaceCapacity
	}
	p.RankedIndex += o.RankedIndex
	p.RankedMemo += o.RankedMemo
	p.RankedCold += o.RankedCold
	p.IndexAdvances += o.IndexAdvances
	p.IndexFallbacks += o.IndexFallbacks
}

// BatchRequest mutates rows (POST /tables/{name}/rows:batch). Remove
// lists row indexes of the *current* snapshot; removals are applied
// first, then Add appends, and surviving rows are renumbered — row
// indexes are snapshot-scoped, so clients correlate them through the
// returned version.
type BatchRequest struct {
	Add    []RowSpec `json:"add,omitempty"`
	Remove []int     `json:"remove,omitempty"`
	// RemoveSharded addresses rows of a *cluster* table: row indexes are
	// shard-scoped, so cluster removals name the shard too (both halves
	// taken from a coordinator query response). Single-node servers
	// reject it.
	RemoveSharded []ShardRef `json:"removeSharded,omitempty"`
}

// ShardRef addresses one row of one shard of a cluster table, as
// returned (shard, row) in coordinator query responses.
type ShardRef struct {
	Shard int `json:"shard"`
	Row   int `json:"row"`
}

// BatchResponse reports the snapshot the batch produced. Coordinator
// responses carry the per-shard version vector in Versions (every
// shard is listed, mutated or not) and sum it into Version.
type BatchResponse struct {
	Table    string  `json:"table"`
	Version  int64   `json:"version"`
	Rows     int     `json:"rows"`
	Added    int     `json:"added"`
	Removed  int     `json:"removed"`
	Versions []int64 `json:"versions,omitempty"`
}

// QueryOrder is a per-request preference DAG over one PO column's value
// labels (exactly the labels the table was created with).
type QueryOrder struct {
	Edges [][2]string `json:"edges"`
}

// WhereSpec is one predicate of a constrained (planner) query. Col
// names a TO column, or — for `in` — a PO column (its OrderSpec name,
// or the positional fallback "po0", "po1", …). `le`/`ge` bound a TO
// column inclusively; `in` lists the allowed PO value labels.
type WhereSpec struct {
	Col string   `json:"col"`
	Le  *int64   `json:"le,omitempty"`
	Ge  *int64   `json:"ge,omitempty"`
	In  []string `json:"in,omitempty"`
}

// QueryRequest is a skyline query (POST /tables/{name}/query) in one of
// two modes.
//
// With Orders set (one preference DAG per PO column) it is a *dynamic*
// query answered by the prepared dTSS database: an optional ideal point
// (one value per TO column) makes it fully dynamic, and Baseline
// switches to the rebuild-everything SDC+ adaptation.
//
// Without Orders it is a *planned* query over the table's own orders:
// Subspace, Where, TopK/Rank and the hint fields select the variant,
// and the cost-based planner picks algorithm, parallelism, predicate
// placement and cache routing (per-response decisions in the `plan`
// field when Explain is set). Ideal doubles as the RankIdeal reference
// point in this mode.
type QueryRequest struct {
	Orders   []QueryOrder `json:"orders,omitempty"`
	Ideal    []int64      `json:"ideal,omitempty"`
	Baseline bool         `json:"baseline,omitempty"`
	// Limit truncates the rows serialized into the response (0 = all);
	// Count always reports the full skyline size.
	Limit int `json:"limit,omitempty"`

	// Planner-mode fields (see plan.Query for the exact semantics).
	Subspace []string    `json:"subspace,omitempty"` // kept column names
	Where    []WhereSpec `json:"where,omitempty"`
	TopK     int         `json:"topK,omitempty"`
	Rank     string      `json:"rank,omitempty"` // "", or a registered ranking: "domcount", "ideal", "dpidp", "layer"
	// FWeights asks for the F-dominance *restricted* skyline: one lower
	// bound per table TO column, defining the linear-scoring family
	// { v : v >= w, sum(v) = 1 } over the kept TO dimensions. Combines
	// with Subspace/Where and unranked TopK, not with Rank.
	FWeights []float64 `json:"fweights,omitempty"`
	Algo     string    `json:"algo,omitempty"` // force an algorithm
	// Parallel > 0 forces that many shards, < 0 forces one shard per
	// server CPU, 0 lets the planner decide — the same contract as the
	// tssquery -parallel flag.
	Parallel int  `json:"parallel,omitempty"`
	Explain  bool `json:"explain,omitempty"`
	// NoKernel forces the scalar (interval) dominance path instead of the
	// bitset/columnar kernel — the server-side ablation and differential-
	// harness switch. A coordinator forwards it to its shards and uses the
	// scalar reference merge.
	NoKernel bool `json:"noKernel,omitempty"`
	// NoCache bypasses the snapshot's skyline memo (cold recompute) —
	// the differential switch for verifying maintained memo entries
	// against recomputation.
	NoCache bool `json:"noCache,omitempty"`
}

// HasPlanFields reports whether any planner-mode field is set.
func (r *QueryRequest) HasPlanFields() bool {
	return len(r.Subspace) > 0 || len(r.Where) > 0 || r.TopK > 0 || r.Rank != "" ||
		len(r.FWeights) > 0 ||
		r.Algo != "" || r.Parallel != 0 || r.Explain || r.NoKernel || r.NoCache
}

// PlanMode reports whether the request takes the planner path: no
// per-request preference DAGs, and at least one planner-mode field (a
// bare `{}` keeps its historical dTSS meaning). Mixing orders with
// planner fields is rejected by the handler rather than silently
// ignoring either half.
func (r *QueryRequest) PlanMode() bool {
	return len(r.Orders) == 0 && !r.Baseline && r.HasPlanFields()
}

// SkylineRow is one skyline member with its snapshot-scoped row index
// and raw values. Coordinator responses set Shard: together with Row it
// forms the ShardRef a cluster removal needs.
type SkylineRow struct {
	Row   int      `json:"row"`
	TO    []int64  `json:"to"`
	PO    []string `json:"po,omitempty"`
	Shard *int     `json:"shard,omitempty"`
}

// QueryResponse answers skyline and query requests. Version identifies
// the snapshot that served the request; every row index refers to it.
type QueryResponse struct {
	Table    string             `json:"table"`
	Version  int64              `json:"version"`
	Rows     int                `json:"rows"`
	Count    int                `json:"count"`
	Skyline  []SkylineRow       `json:"skyline"`
	Metrics  core.MetricsExport `json:"metrics"`
	CacheHit bool               `json:"cacheHit,omitempty"`
	Algo     string             `json:"algo,omitempty"`
	// Plan is the optimizer's explain output (planner-mode requests
	// with "explain": true).
	Plan *plan.Explain `json:"plan,omitempty"`
	// Cluster carries scatter/gather metadata on coordinator responses.
	Cluster *ClusterMeta `json:"cluster,omitempty"`
}

// ClusterMeta describes how a coordinator answered a query: the shard
// fan-out, the per-shard snapshot version vector (index = shard;
// pruned shards report the version their statistics were read at), and
// which shards were skipped because their best possible row (the
// statistics min-corner) was already dominated by a gathered candidate.
type ClusterMeta struct {
	Shards   int     `json:"shards"`
	Versions []int64 `json:"versions"`
	Pruned   []int   `json:"pruned,omitempty"`
}

// StreamRecord is one frame of a streamed query response (?stream=1 on
// the query POST and skyline GET routes). The stream is framed as NDJSON
// (one record per line, Content-Type application/x-ndjson) or — when the
// client asks via `Accept: text/event-stream` or ?sse=1 — as SSE data
// events carrying the same JSON. Frame order: exactly one "header",
// any number of "row" and "heartbeat" records, then exactly one
// "trailer" on success or one "error" after a mid-stream failure
// (everything before the error is valid; the stream is incomplete).
type StreamRecord struct {
	Type string `json:"type"` // "header", "row", "heartbeat", "trailer", "error"

	// Header fields: the serving snapshot. Version repeats on the
	// trailer so both framing edges identify the snapshot.
	Table   string `json:"table,omitempty"`
	Version int64  `json:"version,omitempty"`
	Rows    int    `json:"rows,omitempty"`

	// Row fields: the emitted row, its 0-based emission index, and the
	// elapsed seconds from query start to certification.
	Row      *SkylineRow `json:"row,omitempty"`
	Emission int         `json:"emission,omitempty"`
	Elapsed  float64     `json:"elapsedSeconds,omitempty"`
	// Key is the emission's L1 mindist key on progressive cursor rows:
	// non-decreasing along the stream, and a strict t-dominator always
	// has a strictly smaller key, so a consumer merging several
	// key-ordered streams can rule this stream out as a dominator source
	// for any candidate whose key the stream has reached. Absent on
	// replayed (buffered, cache-hit, rank-ordered, dTSS) streams, whose
	// emission order carries no such bound.
	Key *int64 `json:"key,omitempty"`

	// Trailer fields: the buffered QueryResponse's tail. Count is the
	// number of rows certified by the query (matching the emitted rows
	// unless ?limit truncated the stream).
	Count    int                 `json:"count,omitempty"`
	Metrics  *core.MetricsExport `json:"metrics,omitempty"`
	CacheHit bool                `json:"cacheHit,omitempty"`
	Algo     string              `json:"algo,omitempty"`
	Plan     *plan.Explain       `json:"plan,omitempty"`
	Cluster  *ClusterMeta        `json:"cluster,omitempty"`

	// Error is the mid-stream failure message ("error" records).
	Error string `json:"error,omitempty"`
}

// StatsResponse is the /statsz body.
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Tables        []TableInfo `json:"tables"`
	TotalQueries  int64       `json:"totalQueries"`
	Algorithms    []string    `json:"algorithms"`
	// Durable reports whether a storage engine is attached (batches
	// WAL-logged before publishing, tables recovered on restart).
	Durable bool `json:"durable"`
	// CheckpointErrors counts failed best-effort checkpoints (the WAL
	// still holds the batches; only log compaction was deferred).
	CheckpointErrors int64 `json:"checkpointErrors,omitempty"`
	// CheckpointStuck lists tables whose checkpointing keeps failing —
	// WAL compaction is stuck and the log grows until the disk recovers
	// (also the /healthz degraded flag).
	CheckpointStuck []string `json:"checkpointStuck,omitempty"`
	// ReadOnly reports follower mode: external mutations are rejected,
	// tables mirror a primary through the replication stream.
	ReadOnly bool `json:"readOnly,omitempty"`
	// Shard reports the node's cluster identity when started with
	// -shard-of (observability; also enforced against the coordinator's
	// routing header).
	Shard *ShardIdentity `json:"shard,omitempty"`
	// KernelDomTests / KernelBlockSkips are the process-wide cumulative
	// dominance-kernel counters: member dominance tests performed by the
	// columnar scans, and zone-mapped blocks skipped without scanning
	// (across every query this process served, kernel paths only).
	KernelDomTests   int64 `json:"kernelDomTests"`
	KernelBlockSkips int64 `json:"kernelBlockSkips"`
}

// ShardIdentity is a node's position in a cluster: shard Index out of
// Count.
type ShardIdentity struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// TableStatsInfo is the GET /tables/{t}/stats body: the planner's
// derivable statistics for the serving snapshot plus the learned
// feedback state. The cluster coordinator reads it from every shard to
// plan queries once (merged stats) and to prune shards whose
// statistics min-corner is dominated. Coordinator responses carry the
// merged view with the per-shard bodies in PerShard.
type TableStatsInfo struct {
	Table    string            `json:"table"`
	Version  int64             `json:"version"`
	Rows     int               `json:"rows"`
	Stats    *plan.Stats       `json:"stats"`
	Learned  plan.LearnedState `json:"learned"`
	PerShard []TableStatsInfo  `json:"perShard,omitempty"`
}

// DomCountRequest (POST /tables/{t}/domcount) asks for the number of
// rows of R — the table filtered by Where — each candidate row
// dominates on the Subspace dimensions. Candidates are value-addressed
// (not row-addressed): the cluster coordinator scores merged skyline
// rows whose ids are shard-scoped, and every shard contributes its
// partial count toward the global dominance-count rank.
type DomCountRequest struct {
	Rows     []RowSpec   `json:"rows"`
	Subspace []string    `json:"subspace,omitempty"`
	Where    []WhereSpec `json:"where,omitempty"`
	// Rank selects which ranking's per-shard partial scores to compute
	// ("" = "domcount", the endpoint's original meaning). Rankings with
	// histogram-shaped partials (dpidp) answer in Hists; count-shaped
	// ones (domcount) answer in Counts.
	Rank string `json:"rank,omitempty"`
}

// RankHist is one candidate's dominator-count histogram, ascending-k
// parallel arrays: Counts[i] rows are dominated by the candidate and
// have exactly Ks[i] dominators in this shard's filtered rows.
type RankHist struct {
	Ks     []int32 `json:"ks"`
	Counts []int64 `json:"counts"`
}

// DomCountResponse carries one partial score per candidate, in request
// order: Counts for count-shaped rankings, Hists for histogram-shaped
// ones (exactly one of the two is set).
type DomCountResponse struct {
	Table   string     `json:"table"`
	Version int64      `json:"version"`
	Counts  []int64    `json:"counts"`
	Hists   []RankHist `json:"hists,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}
