package serve

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// Wire types of the tssserve HTTP/JSON API. Every request and response
// body is one of these; field names are the contract documented in the
// README's tssserve section.

// OrderSpec describes one partially ordered column: its value labels
// plus the preference edges ([better, worse] label pairs, transitive).
type OrderSpec struct {
	Name   string      `json:"name,omitempty"`
	Values []string    `json:"values"`
	Edges  [][2]string `json:"edges,omitempty"`
}

// RowSpec is one row: TO column values (smaller = better) and one PO
// value label per order.
type RowSpec struct {
	TO []int64  `json:"to"`
	PO []string `json:"po,omitempty"`
}

// TableSpec creates a table (POST /tables).
type TableSpec struct {
	Name      string      `json:"name"`
	TOColumns []string    `json:"toColumns"`
	Orders    []OrderSpec `json:"orders,omitempty"`
	Rows      []RowSpec   `json:"rows,omitempty"`
	// CacheCapacity sizes the table's dynamic-query result cache
	// (0 = the server default).
	CacheCapacity int `json:"cacheCapacity,omitempty"`
}

// TableInfo describes a table (GET /tables/{name}, /tables, /statsz).
type TableInfo struct {
	Name      string      `json:"name"`
	Version   int64       `json:"version"`
	Rows      int         `json:"rows"`
	Groups    int         `json:"groups"`
	TOColumns []string    `json:"toColumns"`
	Orders    []OrderSpec `json:"orders,omitempty"`
	Stats     TableStats  `json:"stats"`
}

// TableStats carries a table's served-traffic counters. Cache counters
// count served dynamic queries by their cache outcome, so they are
// exact and cumulative across snapshot swaps (a batch mutation
// rebuilds the prepared database with a fresh cache, but these
// counters never reset).
type TableStats struct {
	Queries     int64 `json:"queries"`
	Mutations   int64 `json:"mutations"`
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
}

// BatchRequest mutates rows (POST /tables/{name}/rows:batch). Remove
// lists row indexes of the *current* snapshot; removals are applied
// first, then Add appends, and surviving rows are renumbered — row
// indexes are snapshot-scoped, so clients correlate them through the
// returned version.
type BatchRequest struct {
	Add    []RowSpec `json:"add,omitempty"`
	Remove []int     `json:"remove,omitempty"`
}

// BatchResponse reports the snapshot the batch produced.
type BatchResponse struct {
	Table   string `json:"table"`
	Version int64  `json:"version"`
	Rows    int    `json:"rows"`
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
}

// QueryOrder is a per-request preference DAG over one PO column's value
// labels (exactly the labels the table was created with).
type QueryOrder struct {
	Edges [][2]string `json:"edges"`
}

// WhereSpec is one predicate of a constrained (planner) query. Col
// names a TO column, or — for `in` — a PO column (its OrderSpec name,
// or the positional fallback "po0", "po1", …). `le`/`ge` bound a TO
// column inclusively; `in` lists the allowed PO value labels.
type WhereSpec struct {
	Col string   `json:"col"`
	Le  *int64   `json:"le,omitempty"`
	Ge  *int64   `json:"ge,omitempty"`
	In  []string `json:"in,omitempty"`
}

// QueryRequest is a skyline query (POST /tables/{name}/query) in one of
// two modes.
//
// With Orders set (one preference DAG per PO column) it is a *dynamic*
// query answered by the prepared dTSS database: an optional ideal point
// (one value per TO column) makes it fully dynamic, and Baseline
// switches to the rebuild-everything SDC+ adaptation.
//
// Without Orders it is a *planned* query over the table's own orders:
// Subspace, Where, TopK/Rank and the hint fields select the variant,
// and the cost-based planner picks algorithm, parallelism, predicate
// placement and cache routing (per-response decisions in the `plan`
// field when Explain is set). Ideal doubles as the RankIdeal reference
// point in this mode.
type QueryRequest struct {
	Orders   []QueryOrder `json:"orders,omitempty"`
	Ideal    []int64      `json:"ideal,omitempty"`
	Baseline bool         `json:"baseline,omitempty"`
	// Limit truncates the rows serialized into the response (0 = all);
	// Count always reports the full skyline size.
	Limit int `json:"limit,omitempty"`

	// Planner-mode fields (see plan.Query for the exact semantics).
	Subspace []string    `json:"subspace,omitempty"` // kept column names
	Where    []WhereSpec `json:"where,omitempty"`
	TopK     int         `json:"topK,omitempty"`
	Rank     string      `json:"rank,omitempty"` // "", "domcount", "ideal"
	Algo     string      `json:"algo,omitempty"` // force an algorithm
	// Parallel > 0 forces that many shards, < 0 forces one shard per
	// server CPU, 0 lets the planner decide — the same contract as the
	// tssquery -parallel flag.
	Parallel int  `json:"parallel,omitempty"`
	Explain  bool `json:"explain,omitempty"`
}

// hasPlanFields reports whether any planner-mode field is set.
func (r *QueryRequest) hasPlanFields() bool {
	return len(r.Subspace) > 0 || len(r.Where) > 0 || r.TopK > 0 || r.Rank != "" ||
		r.Algo != "" || r.Parallel != 0 || r.Explain
}

// planMode reports whether the request takes the planner path: no
// per-request preference DAGs, and at least one planner-mode field (a
// bare `{}` keeps its historical dTSS meaning). Mixing orders with
// planner fields is rejected by the handler rather than silently
// ignoring either half.
func (r *QueryRequest) planMode() bool {
	return len(r.Orders) == 0 && !r.Baseline && r.hasPlanFields()
}

// SkylineRow is one skyline member with its snapshot-scoped row index
// and raw values.
type SkylineRow struct {
	Row int      `json:"row"`
	TO  []int64  `json:"to"`
	PO  []string `json:"po,omitempty"`
}

// QueryResponse answers skyline and query requests. Version identifies
// the snapshot that served the request; every row index refers to it.
type QueryResponse struct {
	Table    string             `json:"table"`
	Version  int64              `json:"version"`
	Rows     int                `json:"rows"`
	Count    int                `json:"count"`
	Skyline  []SkylineRow       `json:"skyline"`
	Metrics  core.MetricsExport `json:"metrics"`
	CacheHit bool               `json:"cacheHit,omitempty"`
	Algo     string             `json:"algo,omitempty"`
	// Plan is the optimizer's explain output (planner-mode requests
	// with "explain": true).
	Plan *plan.Explain `json:"plan,omitempty"`
}

// StatsResponse is the /statsz body.
type StatsResponse struct {
	UptimeSeconds float64     `json:"uptimeSeconds"`
	Tables        []TableInfo `json:"tables"`
	TotalQueries  int64       `json:"totalQueries"`
	Algorithms    []string    `json:"algorithms"`
	// Durable reports whether a storage engine is attached (batches
	// WAL-logged before publishing, tables recovered on restart).
	Durable bool `json:"durable"`
	// CheckpointErrors counts failed best-effort checkpoints (the WAL
	// still holds the batches; only log compaction was deferred).
	CheckpointErrors int64 `json:"checkpointErrors,omitempty"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}
