package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/store"
)

// Primary-side replication endpoints and the follower-side apply path.
//
// A primary ships its committed state in two forms, both reusing the
// storage encodings verbatim:
//
//	GET /tables/{t}/replica/snapshot   the serving snapshot, columnar
//	                                   (EncodeSnapshot) — the follower
//	                                   bootstrap seed
//	GET /tables/{t}/replica/log?after=V
//	                                   WAL frames of every committed
//	                                   mutation with version > V, in the
//	                                   on-disk framing (WALHeader +
//	                                   length-prefixed, CRC-checked
//	                                   records) — the tail
//
// The log endpoint answers 410 Gone when version V+1 was compacted
// away by a checkpoint; the follower then re-seeds from the snapshot
// endpoint and resumes tailing from the seeded version. Followers
// apply records through the same applyBatch path as client batches
// (local WAL append before publish, checkpoint policy), so a follower
// is itself durable and restartable.

// ErrReplicaGap reports a replication tail out of sync with the local
// table version — the follower must re-seed from the primary snapshot.
var ErrReplicaGap = errors.New("replica version gap")

// handleReplicaSnapshot answers GET /tables/{name}/replica/snapshot.
// The bytes are rendered from the in-memory serving snapshot (no store
// needed), so they always describe exactly the version readers see,
// planner feedback included.
func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request, e *tableEntry) {
	snap := e.current()
	img, err := e.storeSnapshot(snap)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	b, err := store.EncodeSnapshot(img)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Tss-Version", strconv.FormatInt(snap.version, 10))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// handleReplicaLog answers GET /tables/{name}/replica/log?after=V with
// the committed WAL frames past version V. Only a durable node has a
// log to ship.
func (s *Server) handleReplicaLog(w http.ResponseWriter, r *http.Request, e *tableEntry) {
	if s.store == nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("replication log needs a durable primary (start it with -data-dir)"))
		return
	}
	after := int64(0)
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad after=%q: %w", v, err))
			return
		}
		after = n
	}
	muts, err := s.store.ReadLog(e.name, after)
	if errors.Is(err, store.ErrCompacted) {
		// The suffix was absorbed into the snapshot: tell the follower to
		// re-seed rather than pretending the log starts at V+1.
		writeError(w, http.StatusGone, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("%w: read log: %v", errStorage, err))
		return
	}
	b := store.WALHeader()
	for _, m := range muts {
		b = store.AppendWALRecord(b, m)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// Table returns one catalog entry's info (the in-process form of GET
// /tables/{name}; the follower loop reads local versions through it).
func (s *Server) Table(name string) (TableInfo, bool) {
	e, ok := s.table(name)
	if !ok {
		return TableInfo{}, false
	}
	return e.info(), true
}

// ImportSnapshot installs (or replaces) a table from a decoded storage
// snapshot at the snapshot's version — the follower bootstrap path.
// With a local store attached the seed is persisted first, so a
// restarted follower resumes from it instead of re-bootstrapping from
// zero.
func (s *Server) ImportSnapshot(name string, snap *store.Snapshot) (TableInfo, error) {
	spec, err := specFromStore(name, snap)
	if err != nil {
		return TableInfo{}, err
	}
	e, err := newTableEntry(spec, s.cacheCap, s.subspaceCap, snap.Version)
	if err != nil {
		return TableInfo{}, err
	}
	e.noMaintain = s.noMaintain
	if l := importLearned(snap.Stats); l != nil {
		e.current().table.SetLearned(l)
	}
	if s.store != nil {
		if err := s.store.SaveSnapshot(name, snap); err != nil {
			return TableInfo{}, fmt.Errorf("%w: persist snapshot: %v", errStorage, err)
		}
	}
	s.mu.Lock()
	s.tables[name] = e
	s.mu.Unlock()
	return e.info(), nil
}

// ApplyReplicated applies one shipped WAL record through the normal
// batch path (local WAL append before publish, checkpoint policy). The
// record's version must be exactly one past the table's current
// version; anything else is ErrReplicaGap and the caller re-seeds.
// Replication applies are expected to be serialized by the caller (one
// follower loop); the post-apply version check catches anything that
// slipped past regardless.
func (s *Server) ApplyReplicated(name string, m *store.Mutation) error {
	e, ok := s.table(name)
	if !ok {
		return fmt.Errorf("no table %q", name)
	}
	if cur := e.current().version; m.Version != cur+1 {
		return fmt.Errorf("%w: record version %d against local version %d", ErrReplicaGap, m.Version, cur)
	}
	req, err := e.batchFromMutation(m)
	if err != nil {
		return err
	}
	resp, err := s.applyBatch(e, req)
	if err != nil {
		return err
	}
	if resp.Version != m.Version {
		return fmt.Errorf("%w: applied as version %d, record says %d", ErrReplicaGap, resp.Version, m.Version)
	}
	return nil
}

// batchFromMutation renders a WAL record back into wire form — the
// inverse of mutationRecord, value ids resolved to labels so the
// replicated batch walks the exact same validation as a client's.
func (e *tableEntry) batchFromMutation(m *store.Mutation) (BatchRequest, error) {
	var req BatchRequest
	for _, r := range m.Remove {
		req.Remove = append(req.Remove, int(r))
	}
	if len(m.Add.TO) != e.schema.NumTO() || len(m.Add.PO) != e.schema.NumPO() {
		return BatchRequest{}, fmt.Errorf("mutation has %d TO / %d PO columns, table has %d / %d",
			len(m.Add.TO), len(m.Add.PO), e.schema.NumTO(), e.schema.NumPO())
	}
	n := m.Add.N()
	for i := 0; i < n; i++ {
		row := RowSpec{TO: make([]int64, len(m.Add.TO))}
		for c, col := range m.Add.TO {
			row.TO[c] = col[i]
		}
		for c, col := range m.Add.PO {
			label, ok := e.schema.POValueLabel(c, int(col[i]))
			if !ok {
				return BatchRequest{}, fmt.Errorf("PO value id %d outside column %d's domain", col[i], c)
			}
			row.PO = append(row.PO, label)
		}
		req.Add = append(req.Add, row)
	}
	return req, nil
}
