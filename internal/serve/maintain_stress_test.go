package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestMaintainedRouteUnderMutations is the maintenance stress test (run
// it under -race): plan-mode readers race batch mutators, and the test
// asserts both halves of the contract — every response replay-verifies
// against the snapshot it names, and repeat queries between batches are
// served from the maintained memo instead of recomputing from cold.
func TestMaintainedRouteUnderMutations(t *testing.T) {
	const (
		readers          = 4
		writers          = 2
		queriesPerReader = 30
		batchesPerWriter = 6
	)

	spec := flightsSpec("flights")
	s := New(8)
	if _, err := s.CreateTable(spec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	queryURL := ts.URL + "/tables/flights/query"

	// Sequential warm-up: miss, hit, batch, maintained hit — the exact
	// lifecycle the concurrent phase then hammers.
	var first, second QueryResponse
	doJSON(t, http.MethodPost, queryURL, QueryRequest{Explain: true}, &first)
	if first.CacheHit {
		t.Fatal("first full query reported a cache hit")
	}
	doJSON(t, http.MethodPost, queryURL, QueryRequest{Explain: true}, &second)
	if !second.CacheHit || second.Plan == nil || second.Plan.Maintained {
		t.Fatalf("repeat query on one snapshot: cacheHit=%v plan=%+v, want plain hit", second.CacheHit, second.Plan)
	}
	var warmBatch BatchResponse
	doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
		BatchRequest{Add: []RowSpec{{TO: []int64{275, 1}, PO: []string{"c"}}}}, &warmBatch)
	var maintained QueryResponse
	doJSON(t, http.MethodPost, queryURL, QueryRequest{Explain: true}, &maintained)
	if !maintained.CacheHit || maintained.Plan == nil || !maintained.Plan.Maintained {
		t.Fatalf("post-batch query: cacheHit=%v plan=%+v, want maintained hit", maintained.CacheHit, maintained.Plan)
	}
	if maintained.Version != warmBatch.Version {
		t.Fatalf("post-batch query served version %d, batch produced %d", maintained.Version, warmBatch.Version)
	}

	// Concurrent phase. Writers log version → batch; readers log every
	// response for post-hoc replay.
	var mu sync.Mutex
	batches := map[int64][]RowSpec{}
	type obs struct {
		version    int64
		rows       int
		maintained bool
		skyline    []SkylineRow
	}
	var observations []obs

	var wg sync.WaitGroup
	errCh := make(chan error, readers+writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batchesPerWriter; b++ {
				add := []RowSpec{
					{TO: []int64{int64(320 + 90*w + b), int64(b % 3)}, PO: []string{"b"}},
					{TO: []int64{int64(2600 + 10*w + b), int64(3 + b%2)}, PO: []string{"d"}},
				}
				var resp BatchResponse
				code := doJSON(t, http.MethodPost, ts.URL+"/tables/flights/rows:batch",
					BatchRequest{Add: add}, &resp)
				if code != http.StatusOK {
					errCh <- fmt.Errorf("writer %d batch %d: HTTP %d", w, b, code)
					return
				}
				mu.Lock()
				batches[resp.Version] = add
				mu.Unlock()
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for q := 0; q < queriesPerReader; q++ {
				var out QueryResponse
				code := doJSON(t, http.MethodPost, queryURL, QueryRequest{Explain: true}, &out)
				if code != http.StatusOK {
					errCh <- fmt.Errorf("reader %d query %d: HTTP %d", rd, q, code)
					return
				}
				if out.Plan == nil {
					errCh <- fmt.Errorf("reader %d query %d: no plan in explain response", rd, q)
					return
				}
				mu.Lock()
				observations = append(observations, obs{
					version: out.Version, rows: out.Rows,
					maintained: out.Plan.Maintained, skyline: out.Skyline,
				})
				mu.Unlock()
			}
		}(rd)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Replay-verify every response against the row set its version
	// names. Maintained responses get no special dispensation: a
	// re-certified memo must be byte-for-byte the recomputed skyline.
	versions := make([]int64, 0, len(batches))
	for v := range batches {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	rowsAt := map[int64][]RowSpec{warmBatch.Version: append(append([]RowSpec(nil), spec.Rows...), RowSpec{TO: []int64{275, 1}, PO: []string{"c"}})}
	cur := rowsAt[warmBatch.Version]
	for _, v := range versions {
		cur = append(append([]RowSpec(nil), cur...), batches[v]...)
		rowsAt[v] = cur
	}
	expected := map[int64][]string{}
	maintainedHits := 0
	for _, o := range observations {
		rows, ok := rowsAt[o.version]
		if !ok {
			t.Fatalf("response names unpublished version %d", o.version)
		}
		if o.rows != len(rows) {
			t.Fatalf("version %d: response says %d rows, snapshot had %d", o.version, o.rows, len(rows))
		}
		want, ok := expected[o.version]
		if !ok {
			want = computeSkyline(t, spec, rows, -1, nil)
			expected[o.version] = want
		}
		got := make([]string, len(o.skyline))
		for i, r := range o.skyline {
			got[i] = rowKey(r.TO, r.PO)
		}
		sort.Strings(got)
		if strings.Join(got, ";") != strings.Join(want, ";") {
			t.Fatalf("version %d (maintained=%v): skyline %v inconsistent with snapshot (want %v)",
				o.version, o.maintained, got, want)
		}
		if o.maintained {
			maintainedHits++
		}
	}

	// A final settled query pins the guarantee: after the last batch the
	// memo has been advanced through every delta and must serve the
	// maintained route, matching a cold recompute.
	var settled, cold QueryResponse
	doJSON(t, http.MethodPost, queryURL, QueryRequest{Explain: true}, &settled)
	if !settled.CacheHit || settled.Plan == nil || !settled.Plan.Maintained {
		t.Fatalf("settled query: cacheHit=%v plan=%+v, want maintained hit", settled.CacheHit, settled.Plan)
	}
	doJSON(t, http.MethodPost, queryURL, QueryRequest{Explain: true, NoCache: true}, &cold)
	if fmt.Sprint(sortedRowKeys(settled.Skyline)) != fmt.Sprint(sortedRowKeys(cold.Skyline)) {
		t.Fatalf("maintained %v != cold %v", sortedRowKeys(settled.Skyline), sortedRowKeys(cold.Skyline))
	}

	// And the split counters surfaced it all: /statsz must report the
	// maintained traffic and the memo's maintenance work.
	var stats StatsResponse
	doJSON(t, http.MethodGet, ts.URL+"/statsz", nil, &stats)
	if len(stats.Tables) != 1 {
		t.Fatalf("statsz lists %d tables", len(stats.Tables))
	}
	pc := stats.Tables[0].Stats.PlanCache
	if pc.MaintainedHits < int64(maintainedHits)+1 {
		t.Fatalf("statsz maintainedHits=%d, observed at least %d", pc.MaintainedHits, maintainedHits+1)
	}
	if pc.FullHits < 1 || pc.FullMisses < 1 {
		t.Fatalf("statsz full-route counters empty: %+v", pc)
	}
	if pc.Advances == 0 {
		t.Fatalf("statsz records no memo advances after %d batches: %+v", len(batches)+1, pc)
	}
}

func sortedRowKeys(rows []SkylineRow) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = rowKey(r.TO, r.PO)
	}
	sort.Strings(keys)
	return keys
}
