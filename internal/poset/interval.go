// Package poset implements partially ordered domains for skyline
// computation, following "Topologically Sorted Skylines for Partially
// Ordered Domains" (Sacharidis et al., ICDE 2009).
//
// A partially ordered (PO) domain is a DAG whose nodes are the domain
// values; a directed path x→y means x is preferred to y. The package
// provides:
//
//   - DAG construction, validation and topological sorting;
//   - the spanning-tree [minpost, post] interval encoding of
//     Agrawal, Borgida and Jagadish (SIGMOD 1989);
//   - interval propagation across non-tree edges, which makes the
//     encoding exact (TSS's t-preference check, Definition 1);
//   - the single-interval m-dominance mapping used by the baseline
//     methods of Chan et al. (SIGMOD 2005);
//   - uncovered levels (the strata of SDC/SDC+);
//   - a dyadic-range index that returns the merged interval set of any
//     ordinal range in logarithmic time (sTSS optimisation, §IV-B);
//   - a bitset reachability oracle used as ground truth in tests.
package poset

import (
	"fmt"
	"sort"
	"strings"
)

// Interval is a closed integer interval [Lo, Hi] of postorder positions
// (1-based). Tree intervals of distinct spanning-tree nodes are laminar:
// any two are either disjoint or nested.
type Interval struct {
	Lo, Hi int32
}

// Contains reports whether iv fully contains (or coincides with) other.
func (iv Interval) Contains(other Interval) bool {
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Stabs reports whether the postorder position p lies inside iv.
func (iv Interval) Stabs(p int32) bool {
	return iv.Lo <= p && p <= iv.Hi
}

// Len returns the number of postorder positions covered by iv.
func (iv Interval) Len() int32 { return iv.Hi - iv.Lo + 1 }

// String renders iv in the paper's [lo,hi] notation.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi) }

// IntervalSet is a minimal, sorted, pairwise-disjoint and non-adjacent
// collection of intervals. It represents the full set of postorder
// positions reachable from a DAG node. The zero value is the empty set.
type IntervalSet []Interval

// MergeIntervals normalises an arbitrary collection of intervals into an
// IntervalSet: it sorts by Lo, drops subsumed intervals and coalesces
// overlapping or adjacent runs ([a,b] and [b+1,c] become [a,c]).
//
// Coalescing adjacency is exact here because all inputs are (merges of)
// spanning-tree intervals, which form a laminar family over a contiguous
// integer postorder: no tree interval can partially overlap a coalesced
// run, so containment against the merged set equals containment against
// the original collection.
//
// The input slice may be reordered in place.
func MergeIntervals(ivs []Interval) IntervalSet {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].Lo != ivs[j].Lo {
			return ivs[i].Lo < ivs[j].Lo
		}
		return ivs[i].Hi > ivs[j].Hi
	})
	out := make(IntervalSet, 0, len(ivs))
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.Lo <= cur.Hi+1 {
			if iv.Hi > cur.Hi {
				cur.Hi = iv.Hi
			}
			continue
		}
		out = append(out, cur)
		cur = iv
	}
	return append(out, cur)
}

// Covers reports whether some interval of s fully contains iv.
// s must be normalised (as produced by MergeIntervals).
func (s IntervalSet) Covers(iv Interval) bool {
	// Find the last interval with Lo <= iv.Lo; disjointness makes it the
	// only candidate.
	i := sort.Search(len(s), func(k int) bool { return s[k].Lo > iv.Lo }) - 1
	return i >= 0 && s[i].Hi >= iv.Hi
}

// Stabs reports whether the postorder position p is covered by s.
func (s IntervalSet) Stabs(p int32) bool {
	i := sort.Search(len(s), func(k int) bool { return s[k].Lo > p }) - 1
	return i >= 0 && s[i].Hi >= p
}

// CoversSet reports whether every interval of other is covered by s,
// i.e. the covered position set of other is a subset of that of s.
func (s IntervalSet) CoversSet(other IntervalSet) bool {
	for _, iv := range other {
		if !s.Covers(iv) {
			return false
		}
	}
	return true
}

// Positions returns the total number of postorder positions covered.
func (s IntervalSet) Positions() int64 {
	var n int64
	for _, iv := range s {
		n += int64(iv.Len())
	}
	return n
}

// Clone returns an independent copy of s.
func (s IntervalSet) Clone() IntervalSet {
	if s == nil {
		return nil
	}
	out := make(IntervalSet, len(s))
	copy(out, s)
	return out
}

// Equal reports whether s and other contain exactly the same intervals.
func (s IntervalSet) Equal(other IntervalSet) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// String renders the set in the paper's "[1,2] [3,5]" notation.
func (s IntervalSet) String() string {
	parts := make([]string, len(s))
	for i, iv := range s {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ")
}
