package poset

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the domain substrate: these operations sit on
// the inner loops of every skyline algorithm (t-preference per
// dominance check) and on the dynamic-query critical path (full domain
// construction per query).

func benchRandomDomain(b *testing.B, n int, p float64) *Domain {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	return MustDomain(randomDAG(rng, n, p))
}

func BenchmarkNewDomain(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{64, 256, 1024} {
		dag := randomDAG(rng, n, 0.05)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewDomain(dag); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTPrefersStab(b *testing.B) {
	dm := benchRandomDomain(b, 512, 0.05)
	n := dm.Size()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Reduce modulo in int before converting: b.N can exceed what
		// int32 multiplication tolerates.
		_ = dm.TPrefers(int32(i%n), int32((i%n*31)%n))
	}
}

func BenchmarkTPrefersContainment(b *testing.B) {
	dm := benchRandomDomain(b, 512, 0.05)
	n := dm.Size()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dm.TPrefersContainment(int32(i%n), int32((i%n*31)%n))
	}
}

func BenchmarkOrdRange(b *testing.B) {
	direct := benchRandomDomain(b, 512, 0.05)
	dyadic := benchRandomDomain(b, 512, 0.05)
	dyadic.EnableDyadic()
	n := int32(512)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := int32(i) % (n / 2)
			_ = direct.OrdRangeIntervals(lo, lo+n/4)
		}
	})
	b.Run("dyadic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo := int32(i) % (n / 2)
			_ = dyadic.OrdRangeIntervals(lo, lo+n/4)
		}
	})
}

func BenchmarkReachabilityBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	dag := randomDAG(rng, 512, 0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewReachability(dag)
	}
}

func BenchmarkDomainMarshal(b *testing.B) {
	dm := benchRandomDomain(b, 512, 0.05)
	data, err := dm.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dm.MarshalBinary(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := UnmarshalDomain(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.ReportMetric(float64(len(data)), "encoded_bytes")
}

func sizeName(n int) string {
	switch {
	case n >= 1024:
		return "1k"
	case n >= 256:
		return "256"
	default:
		return "64"
	}
}
