package poset

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Domain is a fully preprocessed partially ordered domain: a DAG plus
// everything the TSS framework derives from it —
//
//   - a deterministic topological sort (value ↔ ordinal maps), which
//     gives the ATO coordinate that enforces *precedence*;
//   - a spanning tree with postorder [minpost, post] labels;
//   - per-value merged interval sets after non-tree-edge propagation,
//     which give the exact t-preference check (*exactness*);
//   - uncovered levels (strata used by the SDC/SDC+ baselines);
//   - an optional dyadic-range index for ordinal-range interval lookup.
//
// Domains are immutable after construction and safe for concurrent
// reads.
type Domain struct {
	dag *DAG

	ord   []int32 // value -> topological ordinal, 0-based
	byOrd []int32 // ordinal -> value

	treeParent []int32 // value -> spanning-tree parent, -1 for roots
	post       []int32 // value -> postorder number, 1-based
	minpost    []int32 // value -> min post among tree descendants (incl. self)

	sets  []IntervalSet // value -> merged interval set (propagation result)
	level []int32       // value -> uncovered level
	maxLv int32

	// dy is the lazily built dyadic-range index. It is published through
	// an atomic pointer so EnableDyadic may race concurrent readers
	// (skyline queries calling OrdRangeIntervals): tables cloned for a
	// snapshot swap share their compiled domains with the table still
	// serving queries, so sealing the clone must not perturb in-flight
	// reads of the original.
	dy   atomic.Pointer[dyadicIndex]
	dyMu sync.Mutex // serializes the one-time index build

	// reach is the lazily built transitive-closure bitset (the serving
	// fast path of TPrefers) and reachT its transpose (predecessor
	// rows, used by the dominance kernels' zone maps). Same publication
	// discipline as dy: built once under reachMu, published atomically,
	// shared by snapshot clones.
	reach   atomic.Pointer[Reachability]
	reachT  atomic.Pointer[Reachability]
	reachMu sync.Mutex
}

// domainConfig carries construction options.
type domainConfig struct {
	treeParents []int32
}

// Option customises Domain construction.
type Option func(*domainConfig)

// WithTreeParents fixes the spanning-tree parent of each value (-1 for
// roots). Used to reproduce published examples exactly; the default rule
// picks, for each value, the in-neighbour with the largest topological
// ordinal. Parents must be DAG in-neighbours of their children.
func WithTreeParents(parents []int32) Option {
	return func(c *domainConfig) { c.treeParents = parents }
}

// NewDomain preprocesses dag into a Domain. The DAG must be acyclic.
func NewDomain(dag *DAG, opts ...Option) (*Domain, error) {
	var cfg domainConfig
	for _, o := range opts {
		o(&cfg)
	}
	order, err := dag.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	n := dag.N()
	dm := &Domain{
		dag:   dag,
		byOrd: order,
		ord:   make([]int32, n),
	}
	for i, v := range order {
		dm.ord[v] = int32(i)
	}
	if err := dm.buildSpanningTree(cfg.treeParents); err != nil {
		return nil, err
	}
	dm.numberPostorder()
	dm.propagateIntervals()
	dm.computeLevels()
	return dm, nil
}

// MustDomain is NewDomain that panics on error.
func MustDomain(dag *DAG, opts ...Option) *Domain {
	dm, err := NewDomain(dag, opts...)
	if err != nil {
		panic(err)
	}
	return dm
}

// buildSpanningTree selects one tree parent per non-root value. The
// default policy picks the in-neighbour with the largest topological
// ordinal (the "closest" predecessor), which tends to keep tree paths
// long and capture more preferences in the tree intervals.
func (dm *Domain) buildSpanningTree(explicit []int32) error {
	n := dm.dag.N()
	dm.treeParent = make([]int32, n)
	if explicit != nil {
		if len(explicit) != n {
			return fmt.Errorf("poset: WithTreeParents length %d, want %d", len(explicit), n)
		}
		for v := 0; v < n; v++ {
			p := explicit[v]
			if p == -1 {
				dm.treeParent[v] = -1
				continue
			}
			ok := false
			for _, u := range dm.dag.In(v) {
				if u == p {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("poset: %d is not an in-neighbour of %d", p, v)
			}
			dm.treeParent[v] = p
		}
		return nil
	}
	for v := 0; v < n; v++ {
		best := int32(-1)
		for _, u := range dm.dag.In(v) {
			if best == -1 || dm.ord[u] > dm.ord[best] {
				best = u
			}
		}
		dm.treeParent[v] = best
	}
	return nil
}

// numberPostorder performs a postorder traversal of the spanning forest
// (roots and children visited in topological-ordinal order, matching the
// paper's Figure 2) and assigns 1-based post numbers and minposts.
func (dm *Domain) numberPostorder() {
	n := dm.dag.N()
	children := make([][]int32, n)
	var roots []int32
	// Iterating values in ordinal order makes children lists (and the
	// root list) ordinal-sorted without an extra sort.
	for i := 0; i < n; i++ {
		v := dm.byOrd[i]
		if p := dm.treeParent[v]; p >= 0 {
			children[p] = append(children[p], v)
		} else {
			roots = append(roots, v)
		}
	}
	dm.post = make([]int32, n)
	dm.minpost = make([]int32, n)
	next := int32(1)
	// Iterative postorder DFS; state is the child index per frame.
	type frame struct {
		v  int32
		ci int
	}
	stack := make([]frame, 0, 64)
	for _, r := range roots {
		stack = append(stack, frame{r, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ci < len(children[f.v]) {
				c := children[f.v][f.ci]
				f.ci++
				stack = append(stack, frame{c, 0})
				continue
			}
			// All children numbered: number v.
			dm.post[f.v] = next
			mp := next
			for _, c := range children[f.v] {
				if dm.minpost[c] < mp {
					mp = dm.minpost[c]
				}
			}
			dm.minpost[f.v] = mp
			next++
			stack = stack[:len(stack)-1]
		}
	}
}

// propagateIntervals computes the final merged interval set of every
// value: its own tree interval plus the full sets of all direct DAG
// successors, processed in reverse topological order so each successor
// set is already final. This mirrors the paper's Figure 2(d): intervals
// reachable only through non-tree edges are copied upward, then subsumed
// or coalesced.
func (dm *Domain) propagateIntervals() {
	n := dm.dag.N()
	dm.sets = make([]IntervalSet, n)
	scratch := make([]Interval, 0, 16)
	for i := n - 1; i >= 0; i-- {
		v := dm.byOrd[i]
		scratch = scratch[:0]
		scratch = append(scratch, Interval{dm.minpost[v], dm.post[v]})
		for _, c := range dm.dag.Out(int(v)) {
			scratch = append(scratch, dm.sets[c]...)
		}
		// MergeIntervals reorders scratch but returns fresh storage, so
		// reusing scratch across iterations is safe.
		dm.sets[v] = MergeIntervals(scratch)
	}
}

// computeLevels assigns each value its uncovered level: the maximum
// number of non-tree edges on any incoming path (paper §II-C). Values
// with level 0 are "completely covered"; SDC+ uses one stratum per
// level. Levels are monotone along edges: x→y implies level(x) ≤
// level(y).
func (dm *Domain) computeLevels() {
	n := dm.dag.N()
	dm.level = make([]int32, n)
	dm.maxLv = 0
	for i := 0; i < n; i++ {
		v := dm.byOrd[i]
		lv := int32(0)
		for _, u := range dm.dag.In(int(v)) {
			l := dm.level[u]
			if u != dm.treeParent[v] {
				l++ // non-tree edge
			}
			if l > lv {
				lv = l
			}
		}
		dm.level[v] = lv
		if lv > dm.maxLv {
			dm.maxLv = lv
		}
	}
}

// Size returns the number of values in the domain.
func (dm *Domain) Size() int { return dm.dag.N() }

// DAG returns the underlying preference graph.
func (dm *Domain) DAG() *DAG { return dm.dag }

// Ord returns the topological ordinal of value v (the ATO coordinate).
func (dm *Domain) Ord(v int32) int32 { return dm.ord[v] }

// ValueAt returns the value with topological ordinal i.
func (dm *Domain) ValueAt(i int32) int32 { return dm.byOrd[i] }

// Post returns the 1-based postorder number of v in the spanning tree.
func (dm *Domain) Post(v int32) int32 { return dm.post[v] }

// TreeInterval returns v's own spanning-tree interval [minpost, post].
func (dm *Domain) TreeInterval(v int32) Interval {
	return Interval{dm.minpost[v], dm.post[v]}
}

// TreeParent returns v's spanning-tree parent, or -1 for roots.
func (dm *Domain) TreeParent(v int32) int32 { return dm.treeParent[v] }

// Intervals returns the final merged interval set of v (paper Figure
// 2(d), fourth column). The slice is shared; callers must not modify it.
func (dm *Domain) Intervals(v int32) IntervalSet { return dm.sets[v] }

// Level returns the uncovered level of v.
func (dm *Domain) Level(v int32) int32 { return dm.level[v] }

// MaxLevel returns the largest uncovered level in the domain; the
// SDC/SDC+ stratum count is MaxLevel()+1.
func (dm *Domain) MaxLevel() int32 { return dm.maxLv }

// TPrefers reports whether x is t-preferred over y (Definition 1),
// which — after propagation — is exactly DAG reachability x→y for
// x ≠ y.
//
// Internally it uses the equivalent stabbing form: x reaches y iff
// post(y) lies inside some interval of Set(x). (If an interval of x
// stabs post(y), that interval is the tree interval of a node w
// reachable from x with y in w's subtree, hence x→w→y; conversely if
// x→y then y's tree interval was propagated into Set(x).)
func (dm *Domain) TPrefers(x, y int32) bool {
	if x == y {
		return false
	}
	// Bitset fast path: when the closure is built, preference is one
	// word test instead of an interval-set search. The interval form
	// below remains the fallback and the correctness reference the
	// closure is fuzzed against.
	if r := dm.reach.Load(); r != nil {
		return r.Reaches(x, y)
	}
	return dm.sets[x].Stabs(dm.post[y])
}

// TPrefersContainment is the paper-literal form of Definition 1: every
// interval of y must be contained in (or coincide with) some interval of
// x. It is semantically identical to TPrefers for x ≠ y and is kept for
// the ablation benchmarks.
func (dm *Domain) TPrefersContainment(x, y int32) bool {
	if x == y {
		return false
	}
	return dm.sets[x].CoversSet(dm.sets[y])
}

// Leq reports x == y or x t-preferred over y ("at least as good").
func (dm *Domain) Leq(x, y int32) bool {
	return x == y || dm.TPrefers(x, y)
}

// PostRun returns the interval of v's merged set that contains v's own
// postorder position. Covering this single run is necessary and
// sufficient for reaching v, which lets point-level dominance checks use
// one query instead of one per interval (the "stab-only" fast path).
func (dm *Domain) PostRun(v int32) Interval {
	p := dm.post[v]
	s := dm.sets[v]
	for _, iv := range s {
		if iv.Stabs(p) {
			return iv
		}
	}
	// Unreachable: the tree interval [minpost,post] always contains post
	// and survives merging.
	return Interval{p, p}
}

// MInterval returns the single spanning-tree interval used by the
// m-dominance mapping of Chan et al.: value v maps to the point
// (minpost-1, |D|-post) in the transformed I1×I2 space, where smaller is
// better on both axes. Interval containment in the original space is
// coordinate-wise ≤ in the transformed space.
func (dm *Domain) MInterval(v int32) Interval { return Interval{dm.minpost[v], dm.post[v]} }

// MCoords returns v's transformed m-dominance coordinates (both
// minimised): (minpost-1, N-post).
func (dm *Domain) MCoords(v int32) (int32, int32) {
	return dm.minpost[v] - 1, int32(dm.dag.N()) - dm.post[v]
}

// MDominatesValue reports whether x's single tree interval covers or
// coincides with y's — the per-dimension test of m-dominance. It is a
// *stronger* relation than preference: true implies x reaches-or-equals
// y, but false does not imply unreachability.
func (dm *Domain) MDominatesValue(x, y int32) bool {
	return dm.MInterval(x).Contains(dm.MInterval(y))
}

// OrdRangeIntervals returns the merged interval set of all values whose
// topological ordinal lies in [loOrd, hiOrd] — the interval set of an
// R-tree MBB's PO range. If the dyadic index is enabled the lookup costs
// O(log |D|); otherwise the sets are merged directly.
func (dm *Domain) OrdRangeIntervals(loOrd, hiOrd int32) IntervalSet {
	if loOrd < 0 {
		loOrd = 0
	}
	if hiOrd >= int32(dm.dag.N()) {
		hiOrd = int32(dm.dag.N()) - 1
	}
	if loOrd > hiOrd {
		return nil
	}
	if loOrd == hiOrd {
		return dm.sets[dm.byOrd[loOrd]]
	}
	if dy := dm.dy.Load(); dy != nil {
		return dy.rangeIntervals(loOrd, hiOrd)
	}
	// Pooled scratch: without the dyadic index this path runs per
	// MBB-pruning check, and growing a fresh slice each call dominated
	// the -benchmem profile. MergeIntervals reorders scratch but returns
	// fresh storage, so the pooled slice never escapes.
	sp := ordScratchPool.Get().(*[]Interval)
	scratch := (*sp)[:0]
	for i := loOrd; i <= hiOrd; i++ {
		scratch = append(scratch, dm.sets[dm.byOrd[i]]...)
	}
	out := MergeIntervals(scratch)
	*sp = scratch
	ordScratchPool.Put(sp)
	return out
}

// ordScratchPool recycles OrdRangeIntervals' merge scratch across
// calls on the slow (non-dyadic) path.
var ordScratchPool = sync.Pool{New: func() any { return new([]Interval) }}

// EnableDyadic precomputes the dyadic-range index (sTSS optimisation
// §IV-B): the merged interval sets of all dyadic ordinal ranges, linear
// space, turning OrdRangeIntervals into an O(log |D|) lookup.
//
// EnableDyadic is idempotent and safe to call concurrently with itself
// and with queries: the index is built once under a mutex and published
// atomically, so readers either see the finished index or fall back to
// the direct merge — never a partially built structure.
func (dm *Domain) EnableDyadic() {
	if dm.dy.Load() != nil {
		return
	}
	dm.dyMu.Lock()
	defer dm.dyMu.Unlock()
	if dm.dy.Load() == nil {
		dm.dy.Store(newDyadicIndex(dm))
	}
}

// DyadicEnabled reports whether the dyadic index has been built.
func (dm *Domain) DyadicEnabled() bool { return dm.dy.Load() != nil }
