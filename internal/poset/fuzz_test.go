package poset

import (
	"math/rand"
	"testing"
)

// FuzzMergeIntervals: the merge must always produce a normalised set
// covering exactly the input positions, for arbitrary byte-derived
// interval collections. Runs its seed corpus under `go test`; explore
// further with `go test -fuzz=FuzzMergeIntervals ./internal/poset`.
func FuzzMergeIntervals(f *testing.F) {
	f.Add([]byte{1, 3, 2, 5, 9, 9})
	f.Add([]byte{0, 0})
	f.Add([]byte{255, 1, 7, 7, 3, 4, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ivs []Interval
		covered := map[int32]bool{}
		for i := 0; i+1 < len(data); i += 2 {
			lo := int32(data[i])
			hi := lo + int32(data[i+1]%16)
			ivs = append(ivs, Interval{lo, hi})
			for p := lo; p <= hi; p++ {
				covered[p] = true
			}
		}
		got := MergeIntervals(ivs)
		for i := 1; i < len(got); i++ {
			if got[i].Lo <= got[i-1].Hi+1 {
				t.Fatalf("not normalised: %v", got)
			}
		}
		var total int64
		for _, iv := range got {
			for p := iv.Lo; p <= iv.Hi; p++ {
				if !covered[p] {
					t.Fatalf("position %d not in input", p)
				}
			}
			total += int64(iv.Len())
		}
		if total != int64(len(covered)) {
			t.Fatalf("covered %d positions, want %d", total, len(covered))
		}
	})
}

// FuzzUnmarshalDomain: the decoder must never panic and every accepted
// encoding must pass structural invariants.
func FuzzUnmarshalDomain(f *testing.F) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	good, _ := dm.MarshalBinary()
	f.Add(good)
	f.Add([]byte("TSSD"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := UnmarshalDomain(data)
		if err != nil {
			return
		}
		n := int32(back.Size())
		for v := int32(0); v < n; v++ {
			if !back.Intervals(v).Stabs(back.Post(v)) {
				t.Fatal("accepted domain whose own post is uncovered")
			}
			if back.ValueAt(back.Ord(v)) != v {
				t.Fatal("accepted domain with broken ordinal bijection")
			}
		}
	})
}

// FuzzClosureAgreement: enabling the transitive-closure bitset must
// never change a single TPrefers answer — the closure fast path, the
// interval stabbing form and raw DAG reachability agree on every pair —
// and a budget smaller than the closure refuses cleanly, leaving the
// interval path in place.
func FuzzClosureAgreement(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 3, 3, 4})
	f.Add([]byte{})
	f.Add([]byte{0, 7, 1, 6, 2, 5, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		dag := NewDAG(n)
		for i := 0; i+1 < len(data) && i < 40; i += 2 {
			a, b := int(data[i]%n), int(data[i+1]%n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a // forward edges only: always acyclic
			}
			dag.MustEdge(a, b)
		}
		dm := MustDomain(dag)

		var before [n][n]bool
		for x := int32(0); x < n; x++ {
			for y := int32(0); y < n; y++ {
				if x != y {
					before[x][y] = dm.TPrefers(x, y)
				}
			}
		}

		// The 8-value closure needs 64 bytes; a 1-byte budget must refuse
		// and leave the interval path untouched.
		if dm.EnableClosure(1) {
			t.Fatal("EnableClosure(1) accepted a closure larger than its budget")
		}
		if dm.ClosureEnabled() || dm.Closure() != nil || dm.ClosureTranspose() != nil {
			t.Fatal("refused closure left state behind")
		}
		if !dm.EnableClosure(0) {
			t.Fatal("EnableClosure(default) refused an 8-value domain")
		}
		if !dm.EnableClosure(1) {
			t.Fatal("EnableClosure is not sticky once the closure is built")
		}

		r := NewReachability(dag)
		for x := int32(0); x < n; x++ {
			for y := int32(0); y < n; y++ {
				if x == y {
					continue
				}
				got := dm.TPrefers(x, y)
				if got != before[x][y] {
					t.Fatalf("TPrefers(%d,%d) changed when the closure was enabled", x, y)
				}
				if got != r.Reaches(x, y) {
					t.Fatalf("closure TPrefers(%d,%d) diverges from reachability", x, y)
				}
				if got != dm.Closure().Reaches(x, y) {
					t.Fatalf("published closure row diverges on (%d,%d)", x, y)
				}
			}
		}
	})
}

// FuzzDomainConstruction: arbitrary edge lists either fail cleanly
// (cycle) or produce a domain whose t-preference matches reachability.
func FuzzDomainConstruction(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 0, 2})
	f.Add([]byte{1, 0, 0, 1}) // cycle
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		dag := NewDAG(n)
		for i := 0; i+1 < len(data) && i < 40; i += 2 {
			a, b := int(data[i]%n), int(data[i+1]%n)
			if a != b {
				dag.MustEdge(a, b)
			}
		}
		dm, err := NewDomain(dag)
		if err != nil {
			return // cyclic input: a clean failure is correct
		}
		r := NewReachability(dag)
		rng := rand.New(rand.NewSource(int64(len(data))))
		for trial := 0; trial < 16; trial++ {
			x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
			if x == y {
				continue
			}
			if dm.TPrefers(x, y) != r.Reaches(x, y) {
				t.Fatalf("TPrefers(%d,%d) diverges from reachability", x, y)
			}
		}
	})
}
