package poset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDyadicMatchesDirect: for every ordinal range, the dyadic lookup
// must return exactly the same merged set as the direct merge of all
// per-value sets in the range.
func TestDyadicMatchesDirect(t *testing.T) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	// Direct results captured before enabling the index.
	n := int32(dm.Size())
	direct := make(map[[2]int32]IntervalSet)
	for lo := int32(0); lo < n; lo++ {
		for hi := lo; hi < n; hi++ {
			direct[[2]int32{lo, hi}] = dm.OrdRangeIntervals(lo, hi).Clone()
		}
	}
	dm.EnableDyadic()
	if !dm.DyadicEnabled() {
		t.Fatal("dyadic index not enabled")
	}
	for lo := int32(0); lo < n; lo++ {
		for hi := lo; hi < n; hi++ {
			got := dm.OrdRangeIntervals(lo, hi)
			if !got.Equal(direct[[2]int32{lo, hi}]) {
				t.Errorf("range [%d,%d]: dyadic %v, direct %v",
					lo, hi, got, direct[[2]int32{lo, hi}])
			}
		}
	}
}

// TestDyadicRandomDomains repeats the equivalence check on random DAGs,
// including sizes that are not powers of two.
func TestDyadicRandomDomains(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%30) + 2
		p := float64(pRaw%80)/100 + 0.05
		dag := randomDAG(rng, n, p)
		plain := MustDomain(dag)
		indexed := MustDomain(dag.Clone())
		indexed.EnableDyadic()
		for trial := 0; trial < 20; trial++ {
			lo := int32(rng.Intn(n))
			hi := lo + int32(rng.Intn(n-int(lo)))
			if !plain.OrdRangeIntervals(lo, hi).Equal(indexed.OrdRangeIntervals(lo, hi)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOrdRangeClamping(t *testing.T) {
	dag, _ := figure2DAG()
	dm := MustDomain(dag)
	full := dm.OrdRangeIntervals(0, 8)
	if got := dm.OrdRangeIntervals(-5, 100); !got.Equal(full) {
		t.Errorf("clamped range = %v, want %v", got, full)
	}
	if got := dm.OrdRangeIntervals(5, 2); got != nil {
		t.Errorf("inverted range should be empty, got %v", got)
	}
}

// TestDyadicDecomposition: decomposed pieces jointly cover exactly the
// requested range's merged set.
func TestDyadicDecomposition(t *testing.T) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	dm.EnableDyadic()
	for lo := int32(0); lo < 9; lo++ {
		for hi := lo; hi < 9; hi++ {
			pieces := dm.decomposeOrdRange(lo, hi)
			var all []Interval
			for _, s := range pieces {
				all = append(all, s...)
			}
			if !MergeIntervals(all).Equal(dm.OrdRangeIntervals(lo, hi)) {
				t.Errorf("decomposition of [%d,%d] does not re-merge", lo, hi)
			}
			// Segment-tree decomposition uses O(2 log n) pieces.
			if len(pieces) > 8 {
				t.Errorf("range [%d,%d]: %d pieces, want ≤ 8", lo, hi, len(pieces))
			}
		}
	}
}

func TestReachabilityBasics(t *testing.T) {
	dag, _ := figure2DAG()
	r := NewReachability(dag)
	// a reaches everything (8 values); i reaches nothing.
	if r.Count(0) != 8 {
		t.Errorf("Count(a) = %d, want 8", r.Count(0))
	}
	if r.Count(8) != 0 {
		t.Errorf("Count(i) = %d, want 0", r.Count(8))
	}
	if r.Reaches(0, 0) {
		t.Error("Reaches must be irreflexive")
	}
	if !r.Leq(3, 3) {
		t.Error("Leq must be reflexive")
	}
	if !r.Reaches(5, 7) { // f→h via non-tree edge
		t.Error("f must reach h")
	}
	if r.Reaches(7, 5) {
		t.Error("h must not reach f")
	}
}

// TestReachabilityTransitive: reachability is transitively closed.
func TestReachabilityTransitive(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 2
		p := float64(pRaw%80)/100 + 0.05
		dag := randomDAG(rng, n, p)
		r := NewReachability(dag)
		for x := int32(0); x < int32(n); x++ {
			for y := int32(0); y < int32(n); y++ {
				if !r.Reaches(x, y) {
					continue
				}
				for z := int32(0); z < int32(n); z++ {
					if r.Reaches(y, z) && !r.Reaches(x, z) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
