package poset

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialization of a preprocessed Domain, so the topological
// sort, spanning tree and propagated interval sets — the expensive part
// of domain construction — can be computed once and persisted next to
// an index. The format is versioned, little-endian and self-describing:
//
//	magic "TSSD" | version u16 | n u32
//	edges:        m u32, then m × (better u32, worse u32)
//	byOrd:        n × u32
//	treeParent:   n × i32 (-1 for roots)
//	post,minpost: n × u32 each
//	levels:       n × u32
//	sets:         n × (k u16, then k × (lo u32, hi u32))
//
// The DAG's labels are not serialized (they are presentation data, not
// part of the encoding); the dyadic index is rebuilt on demand.

const (
	domainMagic   = "TSSD"
	domainVersion = 1
)

// ErrBadEncoding is returned when UnmarshalDomain rejects its input.
var ErrBadEncoding = errors.New("poset: malformed domain encoding")

// MarshalBinary serializes the domain.
func (dm *Domain) MarshalBinary() ([]byte, error) {
	n := dm.dag.N()
	var buf []byte
	buf = append(buf, domainMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, domainVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))

	edges := 0
	for v := 0; v < n; v++ {
		edges += len(dm.dag.Out(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(edges))
	for v := 0; v < n; v++ {
		for _, w := range dm.dag.Out(v) {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(w))
		}
	}
	for _, v := range dm.byOrd {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	for _, p := range dm.treeParent {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	}
	for _, p := range dm.post {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	}
	for _, p := range dm.minpost {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	}
	for _, l := range dm.level {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l))
	}
	for v := 0; v < n; v++ {
		set := dm.sets[v]
		if len(set) > 0xffff {
			return nil, fmt.Errorf("poset: interval set of value %d too large to encode", v)
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(set)))
		for _, iv := range set {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(iv.Lo))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(iv.Hi))
		}
	}
	return buf, nil
}

// UnmarshalDomain reconstructs a Domain serialized by MarshalBinary,
// without re-running the topological sort or interval propagation. The
// decoded derived data is cross-checked for internal consistency
// (ordinal bijection, interval sanity); deeper semantic validation is
// the job of VerifyAgainstDAG.
func UnmarshalDomain(data []byte) (*Domain, error) {
	r := reader{buf: data}
	if string(r.take(4)) != domainMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadEncoding)
	}
	if v := r.u16(); v != domainVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadEncoding, v)
	}
	n := int(r.u32())
	if n < 0 || n > 1<<24 {
		return nil, fmt.Errorf("%w: implausible domain size %d", ErrBadEncoding, n)
	}
	edges := int(r.u32())
	if edges < 0 {
		return nil, fmt.Errorf("%w: negative edge count", ErrBadEncoding)
	}
	// Reject undersized buffers before allocating anything proportional
	// to the claimed sizes: a well-formed encoding needs 8 bytes per
	// edge plus at least 22 bytes per value (five u32 arrays and a u16
	// set header). Without this check a tiny hostile input claiming a
	// 16M-value domain costs hundreds of MB and seconds of work.
	if minLen := r.off + edges*8 + n*22; len(data) < minLen {
		return nil, fmt.Errorf("%w: %d bytes cannot hold %d values / %d edges",
			ErrBadEncoding, len(data), n, edges)
	}
	dag := NewDAG(n)
	for i := 0; i < edges; i++ {
		a, b := int(r.u32()), int(r.u32())
		if r.err != nil {
			return nil, fmt.Errorf("%w: truncated edge list", ErrBadEncoding)
		}
		if err := dag.AddEdge(a, b); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
		}
	}
	dm := &Domain{dag: dag}
	dm.byOrd = r.i32s(n)
	dm.treeParent = r.i32s(n)
	dm.post = r.i32s(n)
	dm.minpost = r.i32s(n)
	dm.level = r.i32s(n)
	dm.sets = make([]IntervalSet, n)
	for v := 0; v < n && r.err == nil; v++ {
		k := int(r.u16())
		if r.off+k*8 > len(data) {
			return nil, fmt.Errorf("%w: truncated interval set", ErrBadEncoding)
		}
		set := make(IntervalSet, 0, k)
		for i := 0; i < k; i++ {
			lo, hi := int32(r.u32()), int32(r.u32())
			set = append(set, Interval{lo, hi})
		}
		dm.sets[v] = set
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadEncoding)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadEncoding, len(r.buf)-r.off)
	}
	// Rebuild ord from byOrd and sanity-check the bijection.
	dm.ord = make([]int32, n)
	seen := make([]bool, n)
	for i, v := range dm.byOrd {
		if v < 0 || int(v) >= n || seen[v] {
			return nil, fmt.Errorf("%w: ordinal map is not a bijection", ErrBadEncoding)
		}
		seen[v] = true
		dm.ord[v] = int32(i)
	}
	// Every preference edge must respect the decoded ordinals.
	for v := 0; v < n; v++ {
		for _, w := range dag.Out(v) {
			if dm.ord[v] >= dm.ord[w] {
				return nil, fmt.Errorf("%w: ordinals violate edge %d→%d", ErrBadEncoding, v, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if p := dm.treeParent[v]; p < -1 || int(p) >= n {
			return nil, fmt.Errorf("%w: tree parent out of range", ErrBadEncoding)
		}
		if dm.post[v] < 1 || dm.post[v] > int32(n) || dm.minpost[v] < 1 || dm.minpost[v] > dm.post[v] {
			return nil, fmt.Errorf("%w: bad postorder labels for value %d", ErrBadEncoding, v)
		}
		for i, iv := range dm.sets[v] {
			if iv.Lo < 1 || iv.Hi > int32(n) || iv.Lo > iv.Hi {
				return nil, fmt.Errorf("%w: bad interval for value %d", ErrBadEncoding, v)
			}
			if i > 0 && iv.Lo <= dm.sets[v][i-1].Hi+1 {
				return nil, fmt.Errorf("%w: interval set of value %d not normalised", ErrBadEncoding, v)
			}
		}
		if dm.level[v] > dm.maxLv {
			dm.maxLv = dm.level[v]
		}
	}
	return dm, nil
}

// VerifyAgainstDAG recomputes the encoding from the domain's own DAG
// and reports any divergence — a defence against loading stale or
// corrupted persisted domains whose structural checks still pass.
func (dm *Domain) VerifyAgainstDAG() error {
	fresh, err := NewDomain(dm.dag.Clone(), WithTreeParents(dm.treeParent))
	if err != nil {
		return err
	}
	n := dm.dag.N()
	for v := 0; v < n; v++ {
		if fresh.post[v] != dm.post[v] || fresh.minpost[v] != dm.minpost[v] {
			return fmt.Errorf("poset: postorder mismatch at value %d", v)
		}
		if fresh.level[v] != dm.level[v] {
			return fmt.Errorf("poset: level mismatch at value %d", v)
		}
		if !fresh.sets[v].Equal(dm.sets[v]) {
			return fmt.Errorf("poset: interval set mismatch at value %d", v)
		}
	}
	return nil
}

// reader is a minimal bounds-checked cursor over the encoded bytes.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		r.err = ErrBadEncoding
		return make([]byte, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }

func (r *reader) i32s(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.u32())
	}
	return out
}
