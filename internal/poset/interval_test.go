package poset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalContains(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{1, 9}, Interval{3, 6}, true},
		{Interval{1, 9}, Interval{1, 9}, true}, // coincide counts as contains
		{Interval{3, 6}, Interval{1, 9}, false},
		{Interval{3, 3}, Interval{1, 1}, false}, // disjoint
		{Interval{1, 5}, Interval{4, 6}, false}, // partial overlap
		{Interval{2, 2}, Interval{2, 2}, true},
	}
	for _, c := range cases {
		if got := c.a.Contains(c.b); got != c.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalStabs(t *testing.T) {
	iv := Interval{3, 6}
	for p, want := range map[int32]bool{2: false, 3: true, 5: true, 6: true, 7: false} {
		if got := iv.Stabs(p); got != want {
			t.Errorf("%v.Stabs(%d) = %v, want %v", iv, p, got, want)
		}
	}
}

func TestMergeIntervalsBasics(t *testing.T) {
	cases := []struct {
		name string
		in   []Interval
		want IntervalSet
	}{
		{"empty", nil, nil},
		{"single", []Interval{{3, 5}}, IntervalSet{{3, 5}}},
		{"subsumed", []Interval{{1, 8}, {3, 3}, {3, 5}}, IntervalSet{{1, 8}}},
		{"adjacent coalesce", []Interval{{1, 2}, {3, 3}, {3, 5}}, IntervalSet{{1, 5}}},
		{"disjoint kept", []Interval{{7, 7}, {3, 5}}, IntervalSet{{3, 5}, {7, 7}}},
		{"duplicates", []Interval{{4, 4}, {4, 4}}, IntervalSet{{4, 4}}},
		{"overlap", []Interval{{1, 4}, {3, 6}}, IntervalSet{{1, 6}}},
		{"unsorted input", []Interval{{9, 9}, {1, 1}, {5, 6}, {2, 2}}, IntervalSet{{1, 2}, {5, 6}, {9, 9}}},
	}
	for _, c := range cases {
		in := append([]Interval(nil), c.in...)
		got := MergeIntervals(in)
		if !got.Equal(c.want) {
			t.Errorf("%s: MergeIntervals(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

// TestMergeIntervalsProperties checks, on random inputs, that the merged
// set is sorted, disjoint, non-adjacent, and covers exactly the same
// integer positions as the input.
func TestMergeIntervalsProperties(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(n%20) + 1
		in := make([]Interval, k)
		covered := map[int32]bool{}
		for i := range in {
			lo := int32(rng.Intn(50))
			hi := lo + int32(rng.Intn(10))
			in[i] = Interval{lo, hi}
			for p := lo; p <= hi; p++ {
				covered[p] = true
			}
		}
		got := MergeIntervals(append([]Interval(nil), in...))
		// Sorted, disjoint, non-adjacent.
		for i := 1; i < len(got); i++ {
			if got[i].Lo <= got[i-1].Hi+1 {
				return false
			}
		}
		// Same covered set.
		var total int64
		for _, iv := range got {
			for p := iv.Lo; p <= iv.Hi; p++ {
				if !covered[p] {
					return false
				}
			}
			total += int64(iv.Len())
		}
		return total == int64(len(covered))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetCoversAndStabs(t *testing.T) {
	s := IntervalSet{{1, 2}, {5, 8}, {11, 11}}
	coverCases := []struct {
		iv   Interval
		want bool
	}{
		{Interval{1, 2}, true},
		{Interval{2, 2}, true},
		{Interval{5, 8}, true},
		{Interval{6, 7}, true},
		{Interval{4, 6}, false},
		{Interval{1, 5}, false},
		{Interval{11, 11}, true},
		{Interval{12, 12}, false},
		{Interval{0, 1}, false},
	}
	for _, c := range coverCases {
		if got := s.Covers(c.iv); got != c.want {
			t.Errorf("Covers(%v) = %v, want %v", c.iv, got, c.want)
		}
	}
	for p, want := range map[int32]bool{0: false, 1: true, 3: false, 5: true, 8: true, 9: false, 11: true} {
		if got := s.Stabs(p); got != want {
			t.Errorf("Stabs(%d) = %v, want %v", p, got, want)
		}
	}
	if !s.CoversSet(IntervalSet{{1, 1}, {6, 8}}) {
		t.Error("CoversSet should hold for a covered subset")
	}
	if s.CoversSet(IntervalSet{{1, 1}, {9, 9}}) {
		t.Error("CoversSet should fail when any interval is uncovered")
	}
	if s.Positions() != 2+4+1 {
		t.Errorf("Positions() = %d, want 7", s.Positions())
	}
}

func TestIntervalSetString(t *testing.T) {
	s := IntervalSet{{3, 5}, {7, 7}}
	if got := s.String(); got != "[3,5] [7,7]" {
		t.Errorf("String() = %q", got)
	}
}

func TestIntervalSetClone(t *testing.T) {
	s := IntervalSet{{1, 2}}
	c := s.Clone()
	c[0].Hi = 99
	if s[0].Hi != 2 {
		t.Error("Clone must not share storage")
	}
	if IntervalSet(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}
