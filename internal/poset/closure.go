package poset

// DefaultClosureBudget is the default per-domain memory budget for the
// transitive-closure bitset: 4 MiB covers domains up to ~5,700 values
// (the closure costs |D|·⌈|D|/64⌉·8 bytes), far beyond the paper's
// largest evaluated domain, while keeping a pathological million-value
// DAG on the interval fallback instead of allocating ~120 GB.
const DefaultClosureBudget = int64(4 << 20)

// ClosureBytes returns the memory the closure bitset of this domain
// occupies (or would occupy): one |D|-bit row per value.
func (dm *Domain) ClosureBytes() int64 {
	n := int64(dm.dag.N())
	words := (n + 63) / 64
	return n * words * 8
}

// ClosureFits reports whether the closure bitset fits in the given
// memory budget. It is deterministic from the domain size alone, so
// planners can predict the kernel choice without triggering a build.
func (dm *Domain) ClosureFits(budget int64) bool {
	return dm.ClosureBytes() <= budget
}

// EnableClosure builds the transitive-closure bitset and switches
// TPrefers to the O(1) word-test path, provided the closure fits in
// budget bytes (≤ 0 selects DefaultClosureBudget). Returns whether the
// closure is enabled after the call.
//
// Like EnableDyadic it is idempotent and safe to call concurrently
// with itself and with queries: the bitset is built once under a mutex
// and published atomically, so concurrent TPrefers calls either see
// the finished closure or use the interval fallback — never a
// partially built structure, and always the same answer.
func (dm *Domain) EnableClosure(budget int64) bool {
	if dm.reach.Load() != nil {
		return true
	}
	if budget <= 0 {
		budget = DefaultClosureBudget
	}
	if !dm.ClosureFits(budget) {
		return false
	}
	dm.reachMu.Lock()
	defer dm.reachMu.Unlock()
	if dm.reach.Load() == nil {
		dm.reach.Store(NewReachability(dm.dag))
	}
	return true
}

// ClosureEnabled reports whether the closure bitset has been built.
func (dm *Domain) ClosureEnabled() bool { return dm.reach.Load() != nil }

// Closure returns the published closure bitset, or nil when it has not
// been built (or did not fit its budget). Callers holding the returned
// pointer may use it freely — Reachability is immutable.
func (dm *Domain) Closure() *Reachability { return dm.reach.Load() }

// ClosureTranspose returns the transposed closure (row y = y's
// predecessor set), building and caching it on first use. Returns nil
// when the closure itself is not enabled.
func (dm *Domain) ClosureTranspose() *Reachability {
	if t := dm.reachT.Load(); t != nil {
		return t
	}
	r := dm.reach.Load()
	if r == nil {
		return nil
	}
	dm.reachMu.Lock()
	defer dm.reachMu.Unlock()
	if t := dm.reachT.Load(); t != nil {
		return t
	}
	t := r.Transpose()
	dm.reachT.Store(t)
	return t
}
