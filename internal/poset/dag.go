package poset

import (
	"errors"
	"fmt"
	"sort"
)

// ErrCycle is returned when a DAG operation detects a directed cycle.
var ErrCycle = errors.New("poset: partial order contains a cycle")

// DAG is a directed acyclic graph over the values 0..N-1 of a partially
// ordered domain. An edge x→y states that x is preferred to y; value x
// is preferred to y iff a directed path x→y exists (the DAG need not be
// a Hasse diagram — transitive edges are allowed, as in the paper's
// Figure 2 example).
//
// The zero value is not usable; construct with NewDAG.
type DAG struct {
	n      int
	labels []string
	out    [][]int32 // out[x] = values directly worse than x, sorted
	in     [][]int32 // in[y] = values directly better than y, sorted
	edges  int
	sorted bool // out/in adjacency currently sorted & deduped
}

// NewDAG creates a DAG over n values (initially with no preferences,
// i.e. all values incomparable).
func NewDAG(n int) *DAG {
	if n < 0 {
		panic("poset: negative domain size")
	}
	return &DAG{
		n:      n,
		out:    make([][]int32, n),
		in:     make([][]int32, n),
		sorted: true,
	}
}

// N returns the number of values in the domain.
func (d *DAG) N() int { return d.n }

// Edges returns the number of distinct preference edges.
func (d *DAG) Edges() int {
	d.normalize()
	return d.edges
}

// SetLabel attaches a human-readable label to value v (used by String
// methods and the CLI tools; optional).
func (d *DAG) SetLabel(v int, label string) {
	if d.labels == nil {
		d.labels = make([]string, d.n)
	}
	d.labels[v] = label
}

// Label returns the label of value v, or its decimal id if unlabelled.
func (d *DAG) Label(v int) string {
	if d.labels != nil && d.labels[v] != "" {
		return d.labels[v]
	}
	return fmt.Sprintf("%d", v)
}

// LabelIndex returns the value whose label is s, or -1.
func (d *DAG) LabelIndex(s string) int {
	for v, l := range d.labels {
		if l == s {
			return v
		}
	}
	return -1
}

// AddEdge records the preference better→worse. Self-loops are rejected;
// duplicate edges are ignored. Cycles are only detected by Validate or
// TopologicalOrder (adding edges stays O(1)).
func (d *DAG) AddEdge(better, worse int) error {
	if better < 0 || better >= d.n || worse < 0 || worse >= d.n {
		return fmt.Errorf("poset: edge (%d,%d) out of range [0,%d)", better, worse, d.n)
	}
	if better == worse {
		return fmt.Errorf("poset: self-loop on value %d", better)
	}
	d.out[better] = append(d.out[better], int32(worse))
	d.in[worse] = append(d.in[worse], int32(better))
	d.sorted = false
	return nil
}

// MustEdge is AddEdge that panics on error; convenient in tests and
// example construction where inputs are static.
func (d *DAG) MustEdge(better, worse int) {
	if err := d.AddEdge(better, worse); err != nil {
		panic(err)
	}
}

// normalize sorts and dedupes adjacency lists and recounts edges.
func (d *DAG) normalize() {
	if d.sorted {
		return
	}
	d.edges = 0
	for v := 0; v < d.n; v++ {
		d.out[v] = sortDedup(d.out[v])
		d.in[v] = sortDedup(d.in[v])
		d.edges += len(d.out[v])
	}
	d.sorted = true
}

func sortDedup(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Out returns the direct successors (worse values) of v, sorted.
// The returned slice is shared; callers must not modify it.
func (d *DAG) Out(v int) []int32 {
	d.normalize()
	return d.out[v]
}

// In returns the direct predecessors (better values) of v, sorted.
// The returned slice is shared; callers must not modify it.
func (d *DAG) In(v int) []int32 {
	d.normalize()
	return d.in[v]
}

// Validate checks acyclicity. It is equivalent to calling
// TopologicalOrder and discarding the order.
func (d *DAG) Validate() error {
	_, err := d.TopologicalOrder()
	return err
}

// TopologicalOrder returns a deterministic topological sort of the
// values: Kahn's algorithm breaking ties by smallest value id, so the
// result is stable across runs. Every DAG edge points from an earlier to
// a later position. Returns ErrCycle if the graph has a directed cycle.
func (d *DAG) TopologicalOrder() ([]int32, error) {
	d.normalize()
	indeg := make([]int32, d.n)
	for v := 0; v < d.n; v++ {
		indeg[v] = int32(len(d.in[v]))
	}
	// Min-heap over ready values keyed by id for determinism.
	ready := &int32Heap{}
	for v := 0; v < d.n; v++ {
		if indeg[v] == 0 {
			ready.push(int32(v))
		}
	}
	order := make([]int32, 0, d.n)
	for ready.len() > 0 {
		v := ready.pop()
		order = append(order, v)
		for _, w := range d.out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				ready.push(w)
			}
		}
	}
	if len(order) != d.n {
		return nil, ErrCycle
	}
	return order, nil
}

// Clone returns a deep copy of the DAG.
func (d *DAG) Clone() *DAG {
	d.normalize()
	c := NewDAG(d.n)
	for v := 0; v < d.n; v++ {
		c.out[v] = append([]int32(nil), d.out[v]...)
		c.in[v] = append([]int32(nil), d.in[v]...)
	}
	c.edges = d.edges
	if d.labels != nil {
		c.labels = append([]string(nil), d.labels...)
	}
	return c
}

// int32Heap is a tiny binary min-heap; container/heap's interface costs
// an allocation per op, and topological sorting is on the dynamic-query
// critical path, so we keep this hand-rolled.
type int32Heap struct{ a []int32 }

func (h *int32Heap) len() int { return len(h.a) }

func (h *int32Heap) push(x int32) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *int32Heap) pop() int32 {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.a[l] < h.a[m] {
			m = l
		}
		if r < last && h.a[r] < h.a[m] {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
