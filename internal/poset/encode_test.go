package poset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDomainRoundTrip: marshal/unmarshal preserves every observable
// behaviour of the domain, on random DAGs.
func TestDomainRoundTrip(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 2
		p := float64(pRaw%80)/100 + 0.05
		dag := randomDAG(rng, n, p)
		dm := MustDomain(dag)
		data, err := dm.MarshalBinary()
		if err != nil {
			t.Log(err)
			return false
		}
		back, err := UnmarshalDomain(data)
		if err != nil {
			t.Log(err)
			return false
		}
		if back.Size() != dm.Size() || back.MaxLevel() != dm.MaxLevel() {
			return false
		}
		for x := int32(0); x < int32(n); x++ {
			if back.Ord(x) != dm.Ord(x) || back.Post(x) != dm.Post(x) ||
				back.Level(x) != dm.Level(x) || back.TreeParent(x) != dm.TreeParent(x) {
				return false
			}
			if !back.Intervals(x).Equal(dm.Intervals(x)) {
				return false
			}
			for y := int32(0); y < int32(n); y++ {
				if back.TPrefers(x, y) != dm.TPrefers(x, y) {
					return false
				}
			}
		}
		// Range lookups agree (and the dyadic index rebuilds cleanly).
		back.EnableDyadic()
		for trial := 0; trial < 10; trial++ {
			lo := int32(rng.Intn(n))
			hi := lo + int32(rng.Intn(n-int(lo)))
			if !back.OrdRangeIntervals(lo, hi).Equal(dm.OrdRangeIntervals(lo, hi)) {
				return false
			}
		}
		return back.VerifyAgainstDAG() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	good, err := dm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)/2],
		"trailing":  append(append([]byte{}, good...), 0xff),
	}
	// Version flip.
	bad := append([]byte{}, good...)
	bad[4] = 0xff
	cases["bad version"] = bad
	for name, data := range cases {
		if _, err := UnmarshalDomain(data); err == nil {
			t.Errorf("%s: expected rejection", name)
		}
	}
	// Corrupt one interval bound: either the structural decode or the
	// deep verification must catch it.
	corrupt := append([]byte{}, good...)
	corrupt[len(corrupt)-1] ^= 0x40
	if back, err := UnmarshalDomain(corrupt); err == nil {
		if back.VerifyAgainstDAG() == nil {
			t.Error("corrupted interval escaped both checks")
		}
	}
}

func TestRoundTripFigure2(t *testing.T) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	data, err := dm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalDomain(data)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's e value keeps both intervals across the round trip.
	if !back.Intervals(4).Equal(IntervalSet{{3, 5}, {7, 7}}) {
		t.Errorf("intervals of e after round trip: %v", back.Intervals(4))
	}
	if err := back.VerifyAgainstDAG(); err != nil {
		t.Fatal(err)
	}
}
