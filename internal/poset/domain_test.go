package poset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure2DAG builds the paper's Figure 2(a) domain: values a..i (0..8),
// spanning-tree edges a→b, b→c, b→d, b→e, c→f, d→g, g→h, g→i and
// non-tree edges a→c, c→g, e→g, f→h. The explicit tree parents reproduce
// the paper's spanning tree exactly.
func figure2DAG() (*DAG, []int32) {
	const (
		a = iota
		b
		c
		d
		e
		f
		g
		h
		i
	)
	dag := NewDAG(9)
	for v, l := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"} {
		dag.SetLabel(v, l)
	}
	tree := [][2]int{{a, b}, {b, c}, {b, d}, {b, e}, {c, f}, {d, g}, {g, h}, {g, i}}
	nonTree := [][2]int{{a, c}, {c, g}, {e, g}, {f, h}}
	for _, e := range tree {
		dag.MustEdge(e[0], e[1])
	}
	for _, e := range nonTree {
		dag.MustEdge(e[0], e[1])
	}
	parents := []int32{-1, a, b, b, b, c, d, g, g}
	return dag, parents
}

// TestFigure2 reproduces the paper's Figure 2 worked example end to end:
// topological sort a<b<...<i, tree intervals (second column of Figure
// 2(d)), final merged interval sets (fourth column) and uncovered
// levels.
func TestFigure2(t *testing.T) {
	dag, parents := figure2DAG()
	dm, err := NewDomain(dag, WithTreeParents(parents))
	if err != nil {
		t.Fatal(err)
	}

	// Topological sort: a<b<c<...<i (Figure 2(c)). Kahn with min-id
	// tie-break yields exactly the alphabetical order here.
	for v := 0; v < 9; v++ {
		if dm.Ord(int32(v)) != int32(v) {
			t.Fatalf("ord(%s) = %d, want %d", dag.Label(v), dm.Ord(int32(v)), v)
		}
	}

	// Tree intervals, Figure 2(d) second column.
	wantTree := []Interval{
		{1, 9}, // a
		{1, 8}, // b
		{1, 2}, // c
		{3, 6}, // d
		{7, 7}, // e
		{1, 1}, // f
		{3, 5}, // g
		{3, 3}, // h
		{4, 4}, // i
	}
	for v, want := range wantTree {
		if got := dm.TreeInterval(int32(v)); got != want {
			t.Errorf("tree interval of %s = %v, want %v", dag.Label(v), got, want)
		}
	}

	// Final merged sets, Figure 2(d) fourth column.
	wantFinal := []IntervalSet{
		{{1, 9}},         // a
		{{1, 8}},         // b
		{{1, 5}},         // c: [1,2]+[3,3]+[3,5] coalesce
		{{3, 6}},         // d
		{{3, 5}, {7, 7}}, // e
		{{1, 1}, {3, 3}}, // f
		{{3, 5}},         // g
		{{3, 3}},         // h
		{{4, 4}},         // i
	}
	for v, want := range wantFinal {
		if got := dm.Intervals(int32(v)); !got.Equal(want) {
			t.Errorf("final intervals of %s = %v, want %v", dag.Label(v), got, want)
		}
	}

	// Uncovered levels (small numbers in Figure 2(a)): g's level is 2
	// via the path a,c,g whose two edges are both non-tree.
	wantLevel := []int32{0, 0, 1, 0, 0, 1, 2, 2, 2}
	for v, want := range wantLevel {
		if got := dm.Level(int32(v)); got != want {
			t.Errorf("level(%s) = %d, want %d", dag.Label(v), got, want)
		}
	}
	if dm.MaxLevel() != 2 {
		t.Errorf("MaxLevel() = %d, want 2", dm.MaxLevel())
	}

	// Spot checks from the text: f is t-preferred over h (via the
	// propagated [3,3]); c and d are incomparable although the
	// topological sort places c before d.
	const cVal, dVal, fVal, hVal = 2, 3, 5, 7
	if !dm.TPrefers(fVal, hVal) {
		t.Error("f should be t-preferred over h")
	}
	if dm.TPrefers(cVal, dVal) || dm.TPrefers(dVal, cVal) {
		t.Error("c and d should be incomparable")
	}
}

func TestFigure2MDominanceIsInexact(t *testing.T) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	// f(=5) reaches h(=7) only through the non-tree edge f→h, so the
	// single-interval m-mapping misses it: f's tree interval [1,1] does
	// not contain h's [3,3]. This is precisely the false-miss that
	// forces the baselines to cross-examine.
	if dm.MDominatesValue(5, 7) {
		t.Error("m-mapping should NOT capture f→h (non-tree edge)")
	}
	if !dm.TPrefers(5, 7) {
		t.Error("t-preference must capture f→h")
	}
	// Tree-path preferences are captured by both.
	if !dm.MDominatesValue(0, 3) || !dm.TPrefers(0, 3) {
		t.Error("a→d follows tree edges and must be captured by both relations")
	}
}

func TestDefaultSpanningTreeIsValid(t *testing.T) {
	dag, _ := figure2DAG()
	dm := MustDomain(dag) // default parent policy, no explicit parents
	r := NewReachability(dag)
	for x := int32(0); x < 9; x++ {
		for y := int32(0); y < 9; y++ {
			if x == y {
				continue
			}
			if dm.TPrefers(x, y) != r.Reaches(x, y) {
				t.Fatalf("default tree: TPrefers(%d,%d)=%v, reach=%v",
					x, y, dm.TPrefers(x, y), r.Reaches(x, y))
			}
		}
	}
}

func TestDomainChain(t *testing.T) {
	// Total order 0→1→2→3: every earlier value preferred to every later.
	dag := NewDAG(4)
	for v := 0; v < 3; v++ {
		dag.MustEdge(v, v+1)
	}
	dm := MustDomain(dag)
	for x := int32(0); x < 4; x++ {
		for y := int32(0); y < 4; y++ {
			want := x < y
			if got := dm.TPrefers(x, y); got != want {
				t.Errorf("chain TPrefers(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
	if dm.MaxLevel() != 0 {
		t.Errorf("chain has no non-tree edges; MaxLevel = %d", dm.MaxLevel())
	}
}

func TestDomainAntichain(t *testing.T) {
	dag := NewDAG(5) // no edges: all incomparable
	dm := MustDomain(dag)
	for x := int32(0); x < 5; x++ {
		for y := int32(0); y < 5; y++ {
			if dm.TPrefers(x, y) {
				t.Errorf("antichain: TPrefers(%d,%d) should be false", x, y)
			}
		}
	}
}

func TestDomainDiamond(t *testing.T) {
	// 0→1, 0→2, 1→3, 2→3. One of 1→3 / 2→3 must be non-tree.
	dag := NewDAG(4)
	dag.MustEdge(0, 1)
	dag.MustEdge(0, 2)
	dag.MustEdge(1, 3)
	dag.MustEdge(2, 3)
	dm := MustDomain(dag)
	r := NewReachability(dag)
	for x := int32(0); x < 4; x++ {
		for y := int32(0); y < 4; y++ {
			if x != y && dm.TPrefers(x, y) != r.Reaches(x, y) {
				t.Errorf("diamond TPrefers(%d,%d) mismatch", x, y)
			}
		}
	}
	if dm.MaxLevel() != 1 {
		t.Errorf("diamond MaxLevel = %d, want 1", dm.MaxLevel())
	}
	if dm.Level(3) != 1 {
		t.Errorf("level(3) = %d, want 1", dm.Level(3))
	}
}

func TestTopologicalOrderRespectsEdges(t *testing.T) {
	dag, _ := figure2DAG()
	order, err := dag.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 9)
	for i, v := range order {
		pos[v] = i
	}
	for v := 0; v < 9; v++ {
		for _, w := range dag.Out(v) {
			if pos[v] >= pos[int(w)] {
				t.Errorf("edge %d→%d violates topological order", v, w)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	dag := NewDAG(3)
	dag.MustEdge(0, 1)
	dag.MustEdge(1, 2)
	dag.MustEdge(2, 0)
	if _, err := dag.TopologicalOrder(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if _, err := NewDomain(dag); err == nil {
		t.Fatal("NewDomain must reject cyclic graphs")
	}
}

func TestDAGEdgeValidation(t *testing.T) {
	dag := NewDAG(2)
	if err := dag.AddEdge(0, 0); err == nil {
		t.Error("self-loop must be rejected")
	}
	if err := dag.AddEdge(0, 5); err == nil {
		t.Error("out-of-range edge must be rejected")
	}
	if err := dag.AddEdge(-1, 0); err == nil {
		t.Error("negative edge must be rejected")
	}
	dag.MustEdge(0, 1)
	dag.MustEdge(0, 1) // duplicate ignored
	if dag.Edges() != 1 {
		t.Errorf("Edges() = %d, want 1 after dedup", dag.Edges())
	}
}

func TestDAGLabels(t *testing.T) {
	dag := NewDAG(2)
	dag.SetLabel(0, "x")
	if dag.Label(0) != "x" || dag.Label(1) != "1" {
		t.Error("label lookup broken")
	}
	if dag.LabelIndex("x") != 0 || dag.LabelIndex("zzz") != -1 {
		t.Error("LabelIndex broken")
	}
}

func TestWithTreeParentsValidation(t *testing.T) {
	dag := NewDAG(3)
	dag.MustEdge(0, 1)
	dag.MustEdge(1, 2)
	if _, err := NewDomain(dag, WithTreeParents([]int32{-1, 0})); err == nil {
		t.Error("wrong-length parents must be rejected")
	}
	if _, err := NewDomain(dag, WithTreeParents([]int32{-1, 0, 0})); err == nil {
		t.Error("non-in-neighbour parent must be rejected")
	}
	if _, err := NewDomain(dag, WithTreeParents([]int32{-1, 0, 1})); err != nil {
		t.Errorf("valid parents rejected: %v", err)
	}
}

// randomDAG builds a random DAG over n nodes: a random permutation fixes
// the topological order; each forward pair becomes an edge with
// probability p.
func randomDAG(rng *rand.Rand, n int, p float64) *DAG {
	dag := NewDAG(n)
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				dag.MustEdge(perm[i], perm[j])
			}
		}
	}
	return dag
}

// TestTPreferenceEqualsReachability is the package's central property:
// after propagation, t-preference is exactly DAG reachability, for both
// the stabbing and the paper-literal containment forms, under the
// default spanning-tree policy.
func TestTPreferenceEqualsReachability(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 2
		p := float64(pRaw%90)/100 + 0.05
		dag := randomDAG(rng, n, p)
		dm := MustDomain(dag)
		r := NewReachability(dag)
		for x := int32(0); x < int32(n); x++ {
			for y := int32(0); y < int32(n); y++ {
				if x == y {
					if dm.TPrefers(x, y) || dm.TPrefersContainment(x, y) {
						return false
					}
					continue
				}
				want := r.Reaches(x, y)
				if dm.TPrefers(x, y) != want {
					return false
				}
				if dm.TPrefersContainment(x, y) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestMDominanceImpliesReachability: the m-mapping is sound (never
// claims a false preference) though incomplete.
func TestMDominanceImpliesReachability(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 2
		p := float64(pRaw%90)/100 + 0.05
		dag := randomDAG(rng, n, p)
		dm := MustDomain(dag)
		r := NewReachability(dag)
		for x := int32(0); x < int32(n); x++ {
			for y := int32(0); y < int32(n); y++ {
				if x != y && dm.MDominatesValue(x, y) && !r.Reaches(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLevelsMonotone: x→y implies level(x) ≤ level(y); this is what
// makes the SDC+ strata sound (no point dominated from a higher
// stratum).
func TestLevelsMonotone(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 2
		p := float64(pRaw%90)/100 + 0.05
		dag := randomDAG(rng, n, p)
		dm := MustDomain(dag)
		for v := 0; v < n; v++ {
			for _, w := range dag.Out(v) {
				if dm.Level(int32(v)) > dm.Level(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestOrdinalsRespectPreference: topological ordinals are a monotone
// embedding — x preferred to y implies ord(x) < ord(y). This is the
// precedence property sTSS builds on.
func TestOrdinalsRespectPreference(t *testing.T) {
	prop := func(seed int64, nRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%24) + 2
		p := float64(pRaw%90)/100 + 0.05
		dag := randomDAG(rng, n, p)
		dm := MustDomain(dag)
		r := NewReachability(dag)
		for x := int32(0); x < int32(n); x++ {
			for y := int32(0); y < int32(n); y++ {
				if r.Reaches(x, y) && dm.Ord(x) >= dm.Ord(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestOrdValueRoundTrip: Ord and ValueAt are inverse bijections.
func TestOrdValueRoundTrip(t *testing.T) {
	dag, _ := figure2DAG()
	dm := MustDomain(dag)
	seen := map[int32]bool{}
	for v := int32(0); v < 9; v++ {
		o := dm.Ord(v)
		if dm.ValueAt(o) != v {
			t.Fatalf("ValueAt(Ord(%d)) = %d", v, dm.ValueAt(o))
		}
		if seen[o] {
			t.Fatalf("duplicate ordinal %d", o)
		}
		seen[o] = true
	}
}

func TestMCoords(t *testing.T) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	// a has tree interval [1,9] in a 9-value domain → transformed (0,0):
	// the most preferable corner, consistent with "low I1, high I2".
	i1, i2 := dm.MCoords(0)
	if i1 != 0 || i2 != 0 {
		t.Errorf("MCoords(a) = (%d,%d), want (0,0)", i1, i2)
	}
	// h: [3,3] → (2, 6).
	i1, i2 = dm.MCoords(7)
	if i1 != 2 || i2 != 6 {
		t.Errorf("MCoords(h) = (%d,%d), want (2,6)", i1, i2)
	}
}

func TestDomainAccessors(t *testing.T) {
	dag, parents := figure2DAG()
	dm := MustDomain(dag, WithTreeParents(parents))
	if dm.DAG() != dag {
		t.Error("DAG() must return the underlying graph")
	}
	if err := dag.Validate(); err != nil {
		t.Errorf("acyclic DAG failed Validate: %v", err)
	}
	// Leq: reflexive and consistent with TPrefers.
	if !dm.Leq(3, 3) {
		t.Error("Leq must be reflexive")
	}
	if !dm.Leq(0, 8) || dm.Leq(8, 0) {
		t.Error("Leq must follow preference direction")
	}
	// PostRun: e (value 4) has runs [3,5] and [7,7]; its post 7 lives in
	// the second.
	if got := dm.PostRun(4); got != (Interval{7, 7}) {
		t.Errorf("PostRun(e) = %v, want [7,7]", got)
	}
	// c (value 2) merged to a single run [1,5] containing post 2.
	if got := dm.PostRun(2); got != (Interval{1, 5}) {
		t.Errorf("PostRun(c) = %v, want [1,5]", got)
	}
}

func TestMustEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEdge on a self-loop must panic")
		}
	}()
	NewDAG(2).MustEdge(1, 1)
}

func TestDAGClone(t *testing.T) {
	dag, _ := figure2DAG()
	c := dag.Clone()
	c.MustEdge(8, 7) // i→h, new edge in the clone only
	if dag.Edges() == c.Edges() {
		t.Error("clone must not share edge storage")
	}
	if c.Label(0) != "a" {
		t.Error("clone must copy labels")
	}
}
