package poset

import "math/bits"

// Reachability is a dense transitive-closure oracle over a DAG, stored
// as one bitset row per value. It costs O(V·E/64) to build and O(1) to
// query, and serves as the ground truth that the interval encoding is
// validated against (TPrefers ⟺ Reaches) and as the exact dominance
// oracle for the naive skyline used in tests.
type Reachability struct {
	n     int
	words int
	bits  []uint64 // row-major: rows of `words` uint64s
}

// NewReachability computes the transitive closure of dag. The DAG must
// be acyclic (panics on cycles, which NewDomain would have rejected
// earlier anyway).
func NewReachability(dag *DAG) *Reachability {
	order, err := dag.TopologicalOrder()
	if err != nil {
		panic(err)
	}
	n := dag.N()
	words := (n + 63) / 64
	r := &Reachability{n: n, words: words, bits: make([]uint64, n*words)}
	// Reverse topological order: successors' rows are complete first.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		row := r.row(v)
		for _, c := range dag.Out(int(v)) {
			row[c/64] |= 1 << (uint(c) % 64)
			crow := r.row(c)
			for w := 0; w < words; w++ {
				row[w] |= crow[w]
			}
		}
	}
	return r
}

func (r *Reachability) row(v int32) []uint64 {
	return r.bits[int(v)*r.words : (int(v)+1)*r.words]
}

// Row exposes v's closure row (bit y set ⟺ x reaches y) for bulk
// consumers — the dominance kernels OR rows together to build block
// zone maps. The slice aliases the closure; callers must not modify it.
func (r *Reachability) Row(v int32) []uint64 { return r.row(v) }

// Words returns the number of uint64 words per row.
func (r *Reachability) Words() int { return r.words }

// Reaches reports whether a directed path x→y exists (x strictly
// preferred to y). Reaches(x, x) is false.
func (r *Reachability) Reaches(x, y int32) bool {
	return r.bits[int(x)*r.words+int(y)/64]&(1<<(uint(y)%64)) != 0
}

// Leq reports x == y or Reaches(x, y).
func (r *Reachability) Leq(x, y int32) bool {
	return x == y || r.Reaches(x, y)
}

// Count returns the number of values strictly reachable from x.
func (r *Reachability) Count(x int32) int {
	c := 0
	for _, w := range r.row(x) {
		c += bits.OnesCount64(w)
	}
	return c
}

// Transpose returns the reversed closure: bit x of the transpose's row
// y is set iff x reaches y. Row y is therefore y's *predecessor* set —
// the values at least as good as y — which dominance kernels intersect
// against block presence bitsets to prune whole blocks at once.
func (r *Reachability) Transpose() *Reachability {
	t := &Reachability{n: r.n, words: r.words, bits: make([]uint64, len(r.bits))}
	for x := 0; x < r.n; x++ {
		row := r.row(int32(x))
		for w, word := range row {
			for word != 0 {
				j := bits.TrailingZeros64(word)
				word &^= 1 << uint(j)
				y := w*64 + j
				t.bits[y*t.words+x/64] |= 1 << (uint(x) % 64)
			}
		}
	}
	return t
}
