package poset

// dyadicIndex precomputes, for every dyadic range of the topologically
// sorted domain, the merged interval set of the values in that range
// (sTSS optimisation, paper §IV-B). A dyadic range at level l covers
// 2^(maxLevel-l) consecutive ordinals; any query range [lo,hi]
// decomposes into O(log |D|) dyadic ranges, so MBB interval lookup is
// logarithmic with linear storage (instead of the quadratic all-ranges
// hash table the paper first considers).
//
// The index is laid out as a complete binary segment tree over the
// ordinal axis, padded to the next power of two; node 1 is the root and
// node i's children are 2i and 2i+1. Leaves hold the per-value sets.
type dyadicIndex struct {
	size int           // padded leaf count (power of two)
	n    int           // true domain size
	sets []IntervalSet // 2*size entries, segment-tree order
}

func newDyadicIndex(dm *Domain) *dyadicIndex {
	n := dm.Size()
	size := 1
	for size < n {
		size <<= 1
	}
	dy := &dyadicIndex{size: size, n: n, sets: make([]IntervalSet, 2*size)}
	for i := 0; i < n; i++ {
		dy.sets[size+i] = dm.sets[dm.byOrd[i]]
	}
	scratch := make([]Interval, 0, 32)
	for i := size - 1; i >= 1; i-- {
		l, r := dy.sets[2*i], dy.sets[2*i+1]
		switch {
		case len(l) == 0:
			dy.sets[i] = r
		case len(r) == 0:
			dy.sets[i] = l
		default:
			scratch = scratch[:0]
			scratch = append(scratch, l...)
			scratch = append(scratch, r...)
			dy.sets[i] = MergeIntervals(scratch)
		}
	}
	return dy
}

// rangeIntervals returns the merged interval set of ordinals [lo, hi]
// by standard segment-tree decomposition into O(log) precomputed sets.
func (dy *dyadicIndex) rangeIntervals(lo, hi int32) IntervalSet {
	l := int(lo) + dy.size
	r := int(hi) + dy.size + 1 // exclusive
	var scratch []Interval
	var single IntervalSet
	pieces := 0
	add := func(s IntervalSet) {
		if len(s) == 0 {
			return
		}
		pieces++
		if pieces == 1 {
			single = s
			return
		}
		if pieces == 2 {
			scratch = append(scratch, single...)
		}
		scratch = append(scratch, s...)
	}
	for l < r {
		if l&1 == 1 {
			add(dy.sets[l])
			l++
		}
		if r&1 == 1 {
			r--
			add(dy.sets[r])
		}
		l >>= 1
		r >>= 1
	}
	if pieces <= 1 {
		return single
	}
	return MergeIntervals(scratch)
}

// DecomposeOrdRange returns the covering dyadic pieces' interval sets
// without the final merge; exposed for tests and instrumentation.
func (dm *Domain) decomposeOrdRange(lo, hi int32) []IntervalSet {
	dy := dm.dy.Load()
	if dy == nil {
		return nil
	}
	l := int(lo) + dy.size
	r := int(hi) + dy.size + 1
	var out []IntervalSet
	for l < r {
		if l&1 == 1 {
			out = append(out, dy.sets[l])
			l++
		}
		if r&1 == 1 {
			r--
			out = append(out, dy.sets[r])
		}
		l >>= 1
		r >>= 1
	}
	return out
}
