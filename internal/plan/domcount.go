package plan

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/poset"
)

// DomCounts counts, for each candidate point, how many rows of R — the
// dataset filtered by q.Where — it dominates on q.Subspace's kept
// dimensions (all of them when nil). Candidates are full-dimensional
// points identified by value, not by row id: this is the shard-side
// scoring primitive of distributed top-k by dominance count, where the
// coordinator holds merged skyline rows whose ids are shard-scoped and
// needs every shard's partial count for each. A row with values equal
// to a candidate is never counted (dominance is strict), matching the
// single-node executor's self-exclusion. O(len(cands)·|R|) with the
// exact dominance oracle; ctx is checked cooperatively.
func DomCounts(ctx context.Context, ds *core.Dataset, q Query, cands []core.Point) ([]int64, error) {
	proj, keptTO, keptPO, doms, err := projectCandidates(ds, q, cands)
	if err != nil {
		return nil, err
	}
	counts := make([]int64, len(cands))
	for i := range ds.Pts {
		if i%ctxCheckEvery == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		row := &ds.Pts[i]
		if len(q.Where) > 0 && !matchesAllPreds(q.Where, row) {
			continue
		}
		rp := projectInto(row, keptTO, keptPO)
		for j := range proj {
			if core.DominatesUnder(doms, &proj[j], &rp) {
				counts[j]++
			}
		}
	}
	return counts, nil
}

// projectCandidates validates q against ds's shape and maps the
// full-dimensional, value-addressed candidates of a distributed scoring
// request onto the kept dimensions, returning them with the resolved
// subspace and its PO domains.
func projectCandidates(ds *core.Dataset, q Query, cands []core.Point) (proj []core.Point, keptTO, keptPO []int, doms []*poset.Domain, err error) {
	sizes := make([]int, len(ds.Domains))
	for d, dom := range ds.Domains {
		sizes[d] = dom.Size()
	}
	if err := q.Validate(ds.NumTO(), ds.NumPO(), sizes); err != nil {
		return nil, nil, nil, nil, err
	}
	keptTO, keptPO = resolveSubspace(q.Subspace, ds.NumTO(), ds.NumPO())
	doms = keptPODomains(ds, keptPO)
	proj = make([]core.Point, len(cands))
	for i := range cands {
		c := &cands[i]
		if len(c.TO) != ds.NumTO() || len(c.PO) != ds.NumPO() {
			return nil, nil, nil, nil, fmt.Errorf("plan: candidate %d has %d/%d dims, table has %d/%d",
				i, len(c.TO), len(c.PO), ds.NumTO(), ds.NumPO())
		}
		proj[i] = projectInto(c, keptTO, keptPO)
	}
	return proj, keptTO, keptPO, doms, nil
}

// matchesAllPreds reports whether a row satisfies every predicate.
func matchesAllPreds(where []Predicate, pt *core.Point) bool {
	for i := range where {
		if !where[i].matches(pt) {
			return false
		}
	}
	return true
}

// projectInto maps a full-dimensional point into the kept dimensions.
func projectInto(pt *core.Point, keptTO, keptPO []int) core.Point {
	np := core.Point{ID: pt.ID}
	np.TO = make([]int32, len(keptTO))
	for j, d := range keptTO {
		np.TO[j] = pt.TO[d]
	}
	if len(keptPO) > 0 {
		np.PO = make([]int32, len(keptPO))
		for j, d := range keptPO {
			np.PO[j] = pt.PO[d]
		}
	}
	return np
}
