package plan

import (
	"context"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// StreamRow is one progressively delivered result row: the row id, its
// 0-based emission index in the stream, and the elapsed wall-clock time
// from query start to certification. Key is the cursor's L1 mindist key
// of the emission on the progressive unranked path — non-decreasing
// across a stream, with a strict t-dominator always holding a strictly
// smaller key — and nil on replayed (buffered or rank-ordered) streams,
// whose emission order carries no such bound.
type StreamRow struct {
	ID      int32
	Index   int
	Elapsed time.Duration
	Key     *int64
}

// RunStream executes the plan like Run, but delivers result rows through
// emit as soon as they are certified instead of materializing the whole
// result first. An emit error aborts the run and is returned verbatim.
//
// Three execution shapes, chosen per plan:
//
//   - Progressive: unranked queries (full, subspace, constrained, and
//     unranked top-k) run the sTSS cursor over the effective dataset —
//     pushdown filtering and projection applied before the index build,
//     post-filter predicates applied per emitted row — and emit each
//     certified row immediately. An unranked top-k stops the traversal
//     after K emissions. The stream order is the cursor's non-decreasing
//     mindist order, so a first-K stream is a prefix of the full stream.
//   - Score-threshold top-k: a ranking with the StreamBounder
//     capability (origin-ideal today) collects cursor emissions only
//     until the K-th best score provably beats every future emission
//     (cursor heap bound minus the ranker's slack), then emits the top
//     K in rank order — early termination without scanning the full
//     skyline.
//   - Buffered fallback: everything else (cache hits, forced non-sTSS
//     algorithms, forced parallelism, restricted skylines, and
//     rankings without a sound streaming bound) runs Run and replays
//     the finished rows through emit, so the wire protocol is uniform
//     even when progressiveness is impossible.
//
// Like the cursor route in Run, progressive runs feed no learned
// feedback; a fully exhausted unranked enumeration fills the result
// cache exactly as the buffered path would, and a canceled run stores
// nothing.
func (p *Plan) RunStream(ctx context.Context, ds *core.Dataset, env Env, emit func(StreamRow) error) (*core.Result, error) {
	start := time.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	hinted := strings.ToLower(p.Query.Hints.Algorithm)
	cursorOK := p.cached == nil && p.Query.Hints.Parallelism <= 0 &&
		len(p.Query.FWeights) == 0 && (hinted == "" || hinted == "stss")

	// A ranked stream is progressive only when the ranking provides a
	// sound bound on future emissions (StreamBounder) and accepts this
	// query's shape.
	var boundScore func(pt *core.Point) float64
	var boundSlack int64
	if cursorOK && p.Query.TopK > 0 && p.Query.Rank != RankNone {
		if r, ok := LookupRanker(string(p.Query.Rank)); ok {
			if sb, ok := r.(StreamBounder); ok {
				boundScore, boundSlack, ok = sb.StreamScorer(p.scoreContext(ds, env))
				if !ok {
					boundScore = nil
				}
			}
		}
	}

	var res *core.Result
	var err error
	switch {
	case cursorOK && p.Query.Rank == RankNone:
		res, err = p.streamCursor(ctx, ds, env, emit, start)
	case boundScore != nil:
		res, err = p.streamThresholdTopK(ctx, ds, emit, start, boundScore, boundSlack)
	default:
		if res, err = p.Run(ctx, ds, env); err == nil {
			for i, id := range res.SkylineIDs {
				if err := emit(StreamRow{ID: id, Index: i, Elapsed: time.Since(start)}); err != nil {
					return nil, err
				}
			}
		}
		return res, err
	}
	if err != nil {
		return nil, err
	}

	// Mirror Run's top-k emission trim: keep only the emission records of
	// rows in the result (a post-filter cursor run certifies rows the
	// per-row filter then drops).
	if p.Query.TopK > 0 && len(res.Metrics.Emissions) > 0 {
		kept := make(map[int32]bool, len(res.SkylineIDs))
		for _, id := range res.SkylineIDs {
			kept[id] = true
		}
		out := res.Metrics.Emissions[:0]
		for _, e := range res.Metrics.Emissions {
			if kept[e.ID] {
				out = append(out, e)
			}
		}
		res.Metrics.Emissions = out
	}

	// The progressive paths run the sequential sTSS cursor regardless of
	// the buffered plan's algorithm and parallelism choice — reflect that
	// in the explain output.
	p.Explain.Algorithm = "stss"
	p.Explain.Route = RouteCursor
	p.Explain.Parallelism = 0
	p.Explain.ObservedSeconds = time.Since(start).Seconds()
	p.Explain.ObservedRows = p.cursorRows
	p.Explain.ObservedSkyline = len(res.SkylineIDs)
	return res, nil
}

// streamCursor is the progressive unranked path: every certified cursor
// emission that survives the per-row post-filter is emitted immediately;
// TopK > 0 stops after K emissions.
func (p *Plan) streamCursor(ctx context.Context, ds *core.Dataset, env Env, emit func(StreamRow) error, start time.Time) (*core.Result, error) {
	eff, err := p.effective(ctx, ds)
	if err != nil {
		return nil, err
	}
	p.cursorRows = len(eff.Pts)
	cur := core.NewSTSSCursor(eff, core.Options{UseMemTree: true})
	res := &core.Result{}
	postFilter := p.route == RoutePostFilter
	k := p.Query.TopK
	for k == 0 || len(res.SkylineIDs) < k {
		// The cursor's own cooperative check fires every dynCtxCheckEvery
		// heap steps; an extra per-emission check keeps small groups — where
		// a whole query fits under that cadence — responsive to disconnects.
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		id, ok, err := cur.NextContext(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if postFilter && !p.matchesAll(&ds.Pts[id]) {
			continue
		}
		res.SkylineIDs = append(res.SkylineIDs, id)
		key := cur.LastKey()
		if err := emit(StreamRow{ID: id, Index: len(res.SkylineIDs) - 1, Elapsed: time.Since(start), Key: &key}); err != nil {
			return nil, err
		}
	}
	res.Metrics = cur.Metrics()
	// A fully exhausted unranked enumeration produced the exact skyline
	// the buffered route would have cached — store it so the stream warms
	// the same memo. Early-stopped or canceled runs store nothing.
	if k == 0 && cur.Exhausted() && p.route == RouteDirect &&
		env.Cache != nil && !p.Query.Hints.NoCache {
		ids := append([]int32(nil), res.SkylineIDs...)
		if p.Query.Subspace == nil {
			env.Cache.PutFull(ids)
		} else {
			env.Cache.PutSubspace(p.baseVariant, ids)
		}
	}
	return res, nil
}

// streamThresholdTopK answers a ranked top-k through the cursor with a
// sound early stop supplied by the ranking's StreamBounder capability:
// every future emission's score is bounded below by the cursor's heap
// bound (Σ kept TO + Σ topological ordinal of the next unexamined
// entry) minus the ranker's slack — for the origin-ideal ranking, an
// ordinal never undershoots its value's depth, so key − Σ(|domain|−1) ≤
// score. Once K collected scores beat that bound strictly, no future
// emission can displace them (nor tie into a different id order), and
// the traversal stops without enumerating the rest of the skyline.
func (p *Plan) streamThresholdTopK(ctx context.Context, ds *core.Dataset, emit func(StreamRow) error, start time.Time, score func(pt *core.Point) float64, slack int64) (*core.Result, error) {
	eff, err := p.effective(ctx, ds)
	if err != nil {
		return nil, err
	}
	p.cursorRows = len(eff.Pts)
	cur := core.NewSTSSCursor(eff, core.Options{UseMemTree: true})
	k := p.Query.TopK
	postFilter := p.route == RoutePostFilter

	type scored struct {
		id    int32
		score float64
	}
	var cands []scored
	best := make([]float64, 0, k) // k smallest scores so far, ascending
	for {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		id, ok, err := cur.NextContext(ctx)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if postFilter && !p.matchesAll(&ds.Pts[id]) {
			continue
		}
		s := score(&ds.Pts[id])
		cands = append(cands, scored{id: id, score: s})
		if i := sort.SearchFloat64s(best, s); i < k {
			if len(best) < k {
				best = append(best, 0)
			}
			copy(best[i+1:], best[i:])
			best[i] = s
		}
		if len(best) == k {
			if bound, ok := cur.PeekBound(); !ok || best[k-1] < float64(bound-slack) {
				break
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	res := &core.Result{Metrics: cur.Metrics()}
	for i, c := range cands {
		res.SkylineIDs = append(res.SkylineIDs, c.id)
		if err := emit(StreamRow{ID: c.id, Index: i, Elapsed: time.Since(start)}); err != nil {
			return nil, err
		}
	}
	return res, nil
}
