package plan

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
)

// streamPlan plans q and runs it through RunStream, returning the
// emitted rows (in emission order) and the final result.
func streamPlan(t *testing.T, ds *core.Dataset, q Query, env Env) ([]StreamRow, *core.Result, Explain) {
	t.Helper()
	p, err := New(ds, q, env)
	if err != nil {
		t.Fatalf("New(%+v): %v", q, err)
	}
	var rows []StreamRow
	res, err := p.RunStream(context.Background(), ds, env, func(r StreamRow) error {
		rows = append(rows, r)
		return nil
	})
	if err != nil {
		t.Fatalf("RunStream(%+v): %v", q, err)
	}
	return rows, res, p.Explain
}

// TestRunStreamAgreesWithRun is the streamed≡buffered differential: for
// every battery query — plus unranked top-k variants — the rows emitted
// through RunStream must be exactly the rows a fresh buffered Run
// returns (set-equal for unranked full queries, rank-equal for ranked
// top-k), and the emitted sequence must equal the stream's own final
// result order.
func TestRunStreamAgreesWithRun(t *testing.T) {
	ds := sampleDS(t, 200)
	queries := append(queryBattery(),
		Query{TopK: 4},
		Query{TopK: 100},
		Query{Where: []Predicate{{Kind: TORange, Dim: 0, HasHi: true, Hi: 25}}, TopK: 3},
	)
	for qi, q := range queries {
		buffered, _ := runPlan(t, ds, q, Env{Learned: NewLearned()})
		rows, res, _ := streamPlan(t, ds, q, Env{Learned: NewLearned()})

		if len(rows) != len(res.SkylineIDs) {
			t.Fatalf("query %d: %d emitted rows, result has %d", qi, len(rows), len(res.SkylineIDs))
		}
		for i, r := range rows {
			if r.ID != res.SkylineIDs[i] {
				t.Fatalf("query %d: emission %d is row %d, result[%d] = %d", qi, i, r.ID, i, res.SkylineIDs[i])
			}
			if r.Index != i {
				t.Fatalf("query %d: emission %d carries index %d", qi, i, r.Index)
			}
		}

		if q.TopK > 0 && q.Rank == RankNone {
			// Unranked top-k: any K members of the skyline are a valid
			// answer; check size and membership against the full skyline.
			full, err := Naive(ds, Query{Subspace: q.Subspace, Where: q.Where})
			if err != nil {
				t.Fatal(err)
			}
			want := q.TopK
			if len(full) < want {
				want = len(full)
			}
			if len(rows) != want {
				t.Fatalf("query %d: streamed %d rows, want %d", qi, len(rows), want)
			}
			member := make(map[int32]bool, len(full))
			for _, id := range full {
				member[id] = true
			}
			for _, r := range rows {
				if !member[r.ID] {
					t.Fatalf("query %d: streamed row %d outside the skyline", qi, r.ID)
				}
			}
			continue
		}
		if q.TopK > 0 {
			// Ranked top-k: the stream must reproduce the buffered ranking
			// exactly, including order.
			if !equal32(res.SkylineIDs, buffered) {
				t.Fatalf("query %d: streamed ranking %v, buffered %v", qi, res.SkylineIDs, buffered)
			}
			continue
		}
		if !equal32(sorted32(res.SkylineIDs), sorted32(buffered)) {
			t.Fatalf("query %d: streamed set %v, buffered %v", qi, sorted32(res.SkylineIDs), sorted32(buffered))
		}
	}
}

// TestRunStreamFirstKIsPrefix: a first-K stream (unranked TopK) must be
// an exact prefix of the full stream — the cursor's mindist order makes
// early termination a truncation, never a different answer.
func TestRunStreamFirstKIsPrefix(t *testing.T) {
	ds := sampleDS(t, 200)
	full, _, _ := streamPlan(t, ds, Query{}, Env{Learned: NewLearned()})
	for _, k := range []int{1, 2, 5, len(full), len(full) + 10} {
		rows, _, _ := streamPlan(t, ds, Query{TopK: k}, Env{Learned: NewLearned()})
		want := k
		if len(full) < want {
			want = len(full)
		}
		if len(rows) != want {
			t.Fatalf("TopK=%d: %d rows, want %d", k, len(rows), want)
		}
		for i := range rows {
			if rows[i].ID != full[i].ID {
				t.Fatalf("TopK=%d: position %d is row %d, full stream has %d", k, i, rows[i].ID, full[i].ID)
			}
		}
	}
}

// TestRunStreamThresholdTopK: the score-threshold early stop of the
// origin-ideal ranked stream must reproduce the buffered ranking
// exactly — same ids, same order — while visiting fewer rows than the
// full enumeration when the bound bites.
func TestRunStreamThresholdTopK(t *testing.T) {
	ds := sampleDS(t, 400)
	for _, k := range []int{1, 3, 10} {
		q := Query{TopK: k, Rank: RankIdeal}
		buffered, _ := runPlan(t, ds, q, Env{Learned: NewLearned()})
		rows, res, ex := streamPlan(t, ds, q, Env{Learned: NewLearned()})
		if ex.Route != RouteCursor || ex.Algorithm != "stss" {
			t.Fatalf("k=%d: streamed explain %s/%s, want cursor/stss", k, ex.Route, ex.Algorithm)
		}
		if !equal32(res.SkylineIDs, buffered) {
			t.Fatalf("k=%d: streamed %v, buffered %v", k, res.SkylineIDs, buffered)
		}
		if len(rows) != len(buffered) {
			t.Fatalf("k=%d: %d emissions for %d result rows", k, len(rows), len(buffered))
		}
	}
}

// TestRunStreamCacheFill: a fully exhausted unranked stream warms the
// same memo the buffered route would; an early-terminated stream and an
// aborted stream store nothing.
func TestRunStreamCacheFill(t *testing.T) {
	ds := sampleDS(t, 200)

	// Full exhaustion fills the cache.
	cache := &memCache{}
	env := Env{Learned: NewLearned(), Cache: cache}
	_, res, _ := streamPlan(t, ds, Query{}, env)
	got, _, ok := cache.GetFull()
	if !ok {
		t.Fatal("exhausted stream left the full-skyline cache empty")
	}
	if !equal32(sorted32(got), sorted32(res.SkylineIDs)) {
		t.Fatalf("cache holds %v, stream returned %v", sorted32(got), sorted32(res.SkylineIDs))
	}

	// Early termination must not: the stored "full skyline" would be a
	// K-row lie.
	cache = &memCache{}
	env = Env{Learned: NewLearned(), Cache: cache}
	streamPlan(t, ds, Query{TopK: 2}, env)
	if _, _, ok := cache.GetFull(); ok {
		t.Fatal("early-terminated stream poisoned the full-skyline cache")
	}

	// An abort (emit error) mid-stream must not either.
	cache = &memCache{}
	env = Env{Learned: NewLearned(), Cache: cache}
	p, err := New(ds, Query{}, env)
	if err != nil {
		t.Fatal(err)
	}
	abort := errors.New("client went away")
	n := 0
	_, err = p.RunStream(context.Background(), ds, env, func(StreamRow) error {
		n++
		if n == 2 {
			return abort
		}
		return nil
	})
	if !errors.Is(err, abort) {
		t.Fatalf("aborted stream returned %v, want the emit error", err)
	}
	if _, _, ok := cache.GetFull(); ok {
		t.Fatal("aborted stream poisoned the full-skyline cache")
	}

	// And a canceled context surfaces as such, also without a fill.
	cache = &memCache{}
	env = Env{Learned: NewLearned(), Cache: cache}
	p, err = New(ds, Query{}, env)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, err = p.RunStream(ctx, ds, env, func(StreamRow) error {
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled stream returned %v", err)
	}
	if _, _, ok := cache.GetFull(); ok {
		t.Fatal("canceled stream poisoned the full-skyline cache")
	}
}
