package plan

import (
	"sort"

	"repro/internal/core"
)

// Naive answers the query by brute force — filter, project, O(n²)
// skyline, O(n·m) rank — with no planner, no index and no cache. It is
// the ground truth every physical plan is differential-tested against
// (FuzzPlanAgreement, exp.FigurePlan's verification pass). The dataset
// must use the table layout (ds.Pts[i].ID == i).
func Naive(ds *core.Dataset, q Query) ([]int32, error) {
	sizes := make([]int, len(ds.Domains))
	for d, dom := range ds.Domains {
		sizes[d] = dom.Size()
	}
	if err := q.Validate(ds.NumTO(), ds.NumPO(), sizes); err != nil {
		return nil, err
	}
	keptTO, keptPO := resolveSubspace(q.Subspace, ds.NumTO(), ds.NumPO())
	doms := keptPODomains(ds, keptPO)

	// R: the filtered rows, projected onto the kept dimensions.
	var rows []core.Point
	for i := range ds.Pts {
		pt := &ds.Pts[i]
		ok := true
		for j := range q.Where {
			if !q.Where[j].matches(pt) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		np := core.Point{ID: pt.ID, TO: make([]int32, len(keptTO))}
		for j, d := range keptTO {
			np.TO[j] = pt.TO[d]
		}
		if len(keptPO) > 0 {
			np.PO = make([]int32, len(keptPO))
			for j, d := range keptPO {
				np.PO[j] = pt.PO[d]
			}
		}
		rows = append(rows, np)
	}

	sky := core.NaiveSkylineUnder(doms, rows)
	if q.TopK <= 0 {
		return sky, nil
	}
	switch q.Rank {
	case RankNone:
		if q.TopK < len(sky) {
			sky = sky[:q.TopK]
		}
		return sky, nil
	case RankDomCount:
		byID := make(map[int32]*core.Point, len(rows))
		for i := range rows {
			byID[rows[i].ID] = &rows[i]
		}
		counts := make(map[int32]float64, len(sky))
		for _, id := range sky {
			s := byID[id]
			var c float64
			for i := range rows {
				if rows[i].ID != id && core.DominatesUnder(doms, s, &rows[i]) {
					c++
				}
			}
			counts[id] = -c // ascending sort ranks bigger counts first
		}
		return sortByScore(sky, counts, q.TopK), nil
	case RankIdeal:
		scores := make(map[int32]float64, len(sky))
		byID := make(map[int32]*core.Point, len(rows))
		for i := range rows {
			byID[rows[i].ID] = &rows[i]
		}
		for _, id := range sky {
			s := byID[id]
			var sc float64
			for j, d := range keptTO {
				var ideal int64
				if q.Ideal != nil {
					ideal = q.Ideal[d]
				}
				diff := int64(s.TO[j]) - ideal
				if diff < 0 {
					diff = -diff
				}
				sc += float64(diff)
			}
			for j := range keptPO {
				dom := doms[j]
				for w := int32(0); int(w) < dom.Size(); w++ {
					if dom.TPrefers(w, s.PO[j]) {
						sc++
					}
				}
			}
			scores[id] = sc
		}
		return sortByScore(sky, scores, q.TopK), nil
	}
	return sky, nil
}

// sortByScore orders ids by ascending score (id-ascending on ties) and
// keeps the first k.
func sortByScore(ids []int32, scores map[int32]float64, k int) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := scores[out[i]], scores[out[j]]
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
