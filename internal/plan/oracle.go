package plan

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/poset"
)

// Naive answers the query by brute force — filter, project, O(n²)
// skyline, O(n·m) rank — with no planner, no index and no cache. It is
// the ground truth every physical plan is differential-tested against
// (FuzzPlanAgreement, exp.FigurePlan's verification pass). The dataset
// must use the table layout (ds.Pts[i].ID == i).
func Naive(ds *core.Dataset, q Query) ([]int32, error) {
	sizes := make([]int, len(ds.Domains))
	for d, dom := range ds.Domains {
		sizes[d] = dom.Size()
	}
	if err := q.Validate(ds.NumTO(), ds.NumPO(), sizes); err != nil {
		return nil, err
	}
	keptTO, keptPO := resolveSubspace(q.Subspace, ds.NumTO(), ds.NumPO())
	doms := keptPODomains(ds, keptPO)

	// R: the filtered rows, projected onto the kept dimensions.
	var rows []core.Point
	for i := range ds.Pts {
		pt := &ds.Pts[i]
		ok := true
		for j := range q.Where {
			if !q.Where[j].matches(pt) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		np := core.Point{ID: pt.ID, TO: make([]int32, len(keptTO))}
		for j, d := range keptTO {
			np.TO[j] = pt.TO[d]
		}
		if len(keptPO) > 0 {
			np.PO = make([]int32, len(keptPO))
			for j, d := range keptPO {
				np.PO[j] = pt.PO[d]
			}
		}
		rows = append(rows, np)
	}

	sky := core.NaiveSkylineUnder(doms, rows)
	if len(q.FWeights) > 0 {
		// Independent restricted check: eliminate over ALL rows of R
		// (not just skyline members) with a sampled superset of the
		// vertex vectors — F_S-dominance for S ⊇ vertices coincides
		// with the family's F-dominance, so agreement with the
		// executor's member-only vertex elimination is exactly the
		// soundness theorem under test.
		sky = oracleRestrict(doms, keptTO, q.FWeights, rows, sky)
	}
	if q.TopK <= 0 {
		return sky, nil
	}
	if q.Rank == RankNone {
		if q.TopK < len(sky) {
			sky = sky[:q.TopK]
		}
		return sky, nil
	}
	r, ok := LookupRanker(string(q.Rank))
	if !ok {
		return nil, fmt.Errorf("plan: unknown rank %q (have: %s)", q.Rank, quotedRankerNames())
	}
	oc := &OracleContext{Query: &q, KeptTO: keptTO, KeptPO: keptPO, Doms: doms, Rows: rows}
	return r.OracleRank(oc, sky, q.TopK), nil
}

// oracleRestrict is the brute-force restricted skyline: every row of R
// is checked against every other row under a deterministic sample of
// the weight family — the vertices plus their pairwise midpoints (a
// dyadic convex combination, so with dyadic weight bounds every dot
// product is exact in float64 and the check is FP-identical to the
// vertex-only one). The survivors are then intersected with the
// unrestricted skyline order the executor preserves.
func oracleRestrict(doms []*poset.Domain, keptTO []int, weights []float64, rows []core.Point, sky []int32) []int32 {
	vtx := FVertices(weights, keptTO)
	samples := append([][]float64(nil), vtx...)
	for i := 0; i < len(vtx); i++ {
		for j := i + 1; j < len(vtx); j++ {
			mid := make([]float64, len(vtx[i]))
			for d := range mid {
				mid[d] = (vtx[i][d] + vtx[j][d]) / 2
			}
			samples = append(samples, mid)
		}
	}
	surv := make(map[int32]bool)
	for i := range rows {
		dominated := false
		for j := range rows {
			if i == j {
				continue
			}
			if FDominates(doms, samples, &rows[j], &rows[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			surv[rows[i].ID] = true
		}
	}
	out := make([]int32, 0, len(surv))
	for _, id := range sky {
		if surv[id] {
			out = append(out, id)
		}
	}
	return out
}

// sortByScore orders ids by ascending score (id-ascending on ties) and
// keeps the first k.
func sortByScore(ids []int32, scores map[int32]float64, k int) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := scores[out[i]], scores[out[j]]
		if si != sj {
			return si < sj
		}
		return out[i] < out[j]
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
